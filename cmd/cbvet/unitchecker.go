// The go vet driver protocol (a trimmed analogue of
// golang.org/x/tools/go/analysis/unitchecker): `go vet -vettool=cbvet`
// first invokes the tool with -V=full to stamp the build cache, then
// once per package with a JSON config file describing the unit —
// sources, the import map, and the export-data file of every
// dependency. The unit is type-checked against that export data (no
// source reloading), the analyzers run with Partial set (whole-program
// verdicts disabled), findings go to stderr in the standard
// file:line:col format, and the facts file go vet expects is written
// empty — cbvet keeps its cross-package state internal to a single
// standalone run instead.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/load"
)

// vetConfig mirrors the fields cbvet needs from the JSON config file go
// vet hands a vettool; unknown fields are ignored.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOutput  string
}

// printVersion emits the identity line `go vet` hashes into its build
// cache key; it includes the binary's own digest so a rebuilt cbvet
// invalidates cached vet results.
func printVersion(w io.Writer) {
	digest := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			digest = fmt.Sprintf("%x", sha256.Sum256(data))[:16]
		}
	}
	fmt.Fprintf(w, "cbvet version 1 buildID=%s\n", digest)
}

func unitcheck(cfgPath string, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "cbvet:", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data the go command
	// already built, via the canonical-path import map.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	unit := &load.Unit{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Fset: fset, Info: info}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { unit.TypeErrors = append(unit.TypeErrors, err) },
	}
	unit.Pkg, _ = conf.Check(cfg.ImportPath, fset, files, info)

	runner := &analysis.Runner{Analyzers: all, Partial: true}
	res, err := runner.Run([]*load.Unit{unit})
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 1
	}

	// go vet requires the facts file to exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "cbvet:", err)
			return 1
		}
	}
	if len(res.Findings) > 0 {
		for _, f := range res.Findings {
			f.File = relTo(cfg.Dir, f.File)
			fmt.Fprintln(stderr, f)
		}
		return 2
	}
	return 0
}

// relTo shortens file to a path relative to dir when that is strictly
// shorter to read; otherwise the absolute path stays.
func relTo(dir, file string) string {
	if rel, err := filepath.Rel(dir, file); err == nil && len(rel) < len(file) {
		return rel
	}
	return file
}
