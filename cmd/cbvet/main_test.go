package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture drives run() with temp files standing in for the
// process's stdout/stderr, since the vet protocol path wants real
// *os.File handles.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	out, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errb, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errb)
}

// The -json artifact must be byte-stable: CI uploads it and diffs
// against history, so the shape is pinned by a golden file. The demo
// fixture contains one live finding, one suppressed finding, and two
// malformed directives (missing reason, unknown analyzer name).
//
// To regenerate after an intentional shape change:
//
//	cd cmd/cbvet && go run . -json testdata/demo > testdata/golden.json
//
// (ignore the non-zero exit; findings are expected).
func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-json", "testdata/demo")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr:\n%s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(stdout), want) {
		t.Errorf("-json output differs from testdata/golden.json\n--- got ---\n%s\n--- want ---\n%s", stdout, want)
	}
}

// Human mode: findings go to stdout in file:line:col form, and the
// suppression count is reported on stderr so a growing pile of
// //cbvet:ignore directives stays visible.
func TestSuppressionAccounting(t *testing.T) {
	code, stdout, stderr := runCapture(t, "testdata/demo")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "timerleak: time.After in a") {
		t.Errorf("stdout missing the live timerleak finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "cbvet: //cbvet:ignore") {
		t.Errorf("stdout missing the malformed-directive findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s) suppressed by //cbvet:ignore") {
		t.Errorf("stderr missing the suppression count:\n%s", stderr)
	}
}

// A clean package exits 0 with no output.
func TestCleanPackage(t *testing.T) {
	code, stdout, _ := runCapture(t, "-run", "timerleak", "../../internal/locks")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("unexpected findings on a clean package:\n%s", stdout)
	}
}

func TestUnknownAnalyzerSelection(t *testing.T) {
	code, _, stderr := runCapture(t, "-run", "nosuch", "testdata/demo")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing selection error:\n%s", stderr)
	}
}

// The go vet driver protocol end to end: build the real binary, hand
// it to `go vet -vettool`, and check it reports the fixture's finding
// through the .cfg/export-data path rather than our own loader.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "cbvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cbvet: %v\n%s", err, out)
	}

	// -V=full identity line, required by the vet driver handshake.
	idOut, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(idOut), "cbvet version ") {
		t.Fatalf("-V=full output %q lacks the identity prefix", idOut)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin,
		"cbreak/internal/analysis/timerleak/testdata/a")
	vet.Dir = "../.."
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0, want findings; output:\n%s", out)
	}
	if !strings.Contains(string(out), "time.After in a") {
		t.Fatalf("go vet output missing the timerleak finding:\n%s", out)
	}
	// The fixture's suppressed site must stay suppressed under the vet
	// protocol too: exactly the three live wants, nothing more.
	if n := strings.Count(string(out), "timerleak:"); n != 3 {
		t.Fatalf("go vet reported %d timerleak findings, want 3:\n%s", n, out)
	}
}
