// Command cbvet is the multichecker driver for the static analyzers
// under internal/analysis: breakpoint-key hygiene (bpkeys), shared
// cells with inconsistent locksets (conflicts), predicate purity
// (predpure), raw-sync usage in app packages (rawsync), static
// lock-order cycles (lockorder), and timer leaks in loops (timerleak).
//
// Standalone use:
//
//	cbvet ./...            # human-readable findings, exit 1 when any
//	cbvet -json ./... > cbvet.json
//	cbvet -run bpkeys,lockorder ./internal/apps/...
//
// It also speaks the go vet driver protocol, so it can run as
//
//	go vet -vettool=$(which cbvet) ./...
//
// In that mode each package is analyzed in isolation with the build
// cache's export data, and the whole-program checks (orphaned
// breakpoint keys) are disabled — see docs/USAGE.md, "Static analysis
// with cbvet".
//
// Findings are suppressed with a trailing or preceding comment:
//
//	//cbvet:ignore <analyzer> <reason>
//
// The reason is mandatory and the analyzer name must exist ("all"
// matches every analyzer); malformed directives are themselves
// findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/bpkeys"
	"cbreak/internal/analysis/conflicts"
	"cbreak/internal/analysis/load"
	"cbreak/internal/analysis/lockorder"
	"cbreak/internal/analysis/predpure"
	"cbreak/internal/analysis/rawsync"
	"cbreak/internal/analysis/timerleak"
)

// all is the registered analyzer suite, alphabetical.
var all = []*analysis.Analyzer{
	bpkeys.Analyzer,
	conflicts.Analyzer,
	lockorder.Analyzer,
	predpure.Analyzer,
	rawsync.Analyzer,
	timerleak.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// The go vet driver protocol: `cbvet -V=full` prints an identity
	// line, `cbvet <file>.cfg` analyzes one compilation unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags":
			// go vet queries the tool's flag set before running it;
			// cbvet exposes no analyzer flags in driver mode.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return unitcheck(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("cbvet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON artifact on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	runSel := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*runSel)
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 2
	}
	loader, err := load.New(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 2
	}
	units, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 2
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			fmt.Fprintf(stderr, "cbvet: %s: type error: %v\n", u.Path, e)
		}
	}

	runner := &analysis.Runner{Analyzers: analyzers, Known: analyzerNames(all)}
	res, err := runner.Run(units)
	if err != nil {
		fmt.Fprintln(stderr, "cbvet:", err)
		return 2
	}

	if *jsonOut {
		report := analysis.NewReport(analyzers, res, loader.ModuleRoot())
		out, err := report.Encode()
		if err != nil {
			fmt.Fprintln(stderr, "cbvet:", err)
			return 2
		}
		stdout.Write(out)
	} else {
		for _, f := range res.Findings {
			f.File = relTo(cwd, f.File)
			fmt.Fprintln(stdout, f)
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(stderr, "cbvet: %d finding(s) suppressed by //cbvet:ignore\n", n)
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func analyzerNames(as []*analysis.Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

func selectAnalyzers(sel string) ([]*analysis.Analyzer, error) {
	if sel == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(sel, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
