// Fixture for the cbvet driver tests: one live finding, one suppressed
// finding, and two malformed directives, pinning the JSON artifact
// shape and the suppression accounting.
package demo

import "time"

func leak(ch chan int) {
	for {
		select {
		case <-ch:
		case <-time.After(time.Second):
			return
		}
	}
}

func quiet(ch chan int) {
	for {
		//cbvet:ignore timerleak demo suppression for the driver test
		<-time.After(time.Millisecond)
		<-ch
	}
}

//cbvet:ignore timerleak
func missingReason() {}

//cbvet:ignore nosuch the analyzer name is validated
func unknownName() {}
