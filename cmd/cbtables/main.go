// Command cbtables regenerates the paper's evaluation artifacts from the
// Go reproduction: Table 1 (Java benchmarks), Table 2 (C/C++ analogs),
// the section 5 log4j resolve-order table, the section 6.2 pause sweep,
// the section 6.3 precision ablation, and the section 3 / Figure 4 model
// comparison.
//
// Usage:
//
//	cbtables -table all -runs 20
//	cbtables -table log4j -runs 100
//	cbtables -table 1 -runs 100   # the paper used 100 runs per row
//
// Supervised campaigns (-json) run every trial in a killable child
// process with deadlines, retries, a crash-safe checkpoint journal, and
// quarantine, so one deadlocked or crashing reproduction cannot wedge
// the run — and a killed run loses nothing:
//
//	cbtables -table 1 -runs 100 -json -seed 7 -parallel 4
//	cbtables -table 1 -runs 100 -json -seed 7 -resume   # after ANY death
//
// The checkpoint is a write-ahead journal directory (-checkpoint); with
// the default -checkpoint-sync=record every finished trial is fsynced
// before the campaign moves on, so -resume recovers everything up to a
// SIGKILL or power cut (docs/USAGE.md, "Durability & crash recovery").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/campaign"
	"cbreak/internal/core"
	"cbreak/internal/harness"
	"cbreak/internal/journal"
	"cbreak/internal/journal/sink"
)

// durableEventsEnv carries the -durable-events directory to trial
// worker subprocesses; each worker journals its engines' events and
// incidents into its own pid-named subdirectory (journals are
// single-writer).
const durableEventsEnv = "CB_DURABLE_EVENTS"

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1, 2, log4j, pause, precision, model, netload, all")
	runs := flag.Int("runs", 10, "runs per configuration (the paper used 100)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	seed := flag.Int64("seed", 1, "campaign seed: derives each trial's workload jitter and the retry backoff, so runs reproduce run-to-run")
	deadline := flag.Duration("deadline", 30*time.Second, "hard per-trial wall-clock deadline; hung trials are killed and counted as 'trial timeout'")
	jsonMode := flag.Bool("json", false, "run as a supervised campaign: subprocess-isolated trials journaled to the -checkpoint journal")
	resume := flag.Bool("resume", false, "resume the -checkpoint journal, skipping completed trials (requires the same -seed it was written with)")
	checkpoint := flag.String("checkpoint", "cbtables-campaign.ckpt", "checkpoint journal directory for supervised campaigns (a legacy .jsonl file here is migrated on -resume)")
	checkpointSync := flag.String("checkpoint-sync", "record", "checkpoint durability: record (fsync per trial), interval (group commit), none")
	parallel := flag.Int("parallel", 1, "concurrently running trial workers in supervised campaigns")
	retries := flag.Int("retries", 2, "retries per trial for infrastructure failures (worker crash/timeout), with jittered exponential backoff")
	quarantineAfter := flag.Int("quarantine-after", 3, "consecutive worker failures before a configuration is quarantined and its row marked partial")
	chaosCrash := flag.Int("chaos-crash", 0, "inject a worker crash into the Nth trial dispatch (1-based); CI uses this to prove campaigns survive crashing trials")
	chaosKill := flag.Int("chaos-kill-dispatch", 0, "SIGKILL this process at the Nth trial dispatch (1-based); the CI crash-recovery smoke proves -resume recovers from it")
	synthetic := flag.Bool("synthetic-trials", false, "derive every trial outcome deterministically from its seed instead of executing it (campaign-machinery testing; output depends only on -seed)")
	durableEvents := flag.String("durable-events", "", "journal every engine event and guard incident under this directory for post-mortem recovery (one journal per process)")
	trialWorker := flag.Bool("trial-worker", false, "internal: run one trial from a JSON request on stdin and report on stdout")
	flag.Parse()

	if *trialWorker {
		os.Exit(workerMain())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	render := func(t harness.Table) string {
		if *csv {
			return t.CSV()
		}
		return t.Render()
	}

	if *durableEvents != "" {
		// Tee engine events/incidents to disk: in-process trials journal
		// here, worker subprocesses into their own subdirectories via the
		// environment (inherited through SubprocessExecutor).
		os.Setenv(durableEventsEnv, *durableEvents)
		s, err := openDurableSink(*durableEvents)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbtables: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
	}

	var run harness.Runner
	var sup *campaign.Supervisor
	var cp *campaign.Checkpoint
	if *jsonMode || *resume {
		pol, err := journal.ParseSyncPolicy(*checkpointSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbtables: -checkpoint-sync: %v\n", err)
			os.Exit(2)
		}
		bin, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbtables: cannot locate own binary for worker re-exec: %v\n", err)
			os.Exit(1)
		}
		cp, err = campaign.OpenOptions(*checkpoint, *seed, *resume, pol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbtables: %v\n", err)
			os.Exit(1)
		}
		defer cp.Close()
		if m := cp.Migrated(); m != "" {
			fmt.Fprintf(os.Stderr, "cbtables: migrated legacy checkpoint to a journal; original kept at %s\n", m)
		}
		if rec := cp.Recovery(); rec.TruncatedBytes > 0 {
			fmt.Fprintf(os.Stderr, "cbtables: checkpoint recovery truncated a torn tail: %d byte(s) of %s (%s); that trial will re-run\n",
				rec.TruncatedBytes, rec.TornSegment, rec.TornReason)
		}
		if *resume && cp.Len() > 0 {
			fmt.Fprintf(os.Stderr, "cbtables: resuming %s: %d trials already journaled\n", *checkpoint, cp.Len())
		}
		if *retries == 0 {
			*retries = -1 // flag 0 means "no retries"; Config 0 means default
		}
		execute := campaign.SubprocessExecutor(bin, "-trial-worker")
		if *synthetic {
			execute = campaign.SyntheticExecutor()
		}
		sup, err = campaign.New(campaign.Config{
			Context:            ctx,
			Execute:            execute,
			Checkpoint:         cp,
			Seed:               *seed,
			Deadline:           *deadline,
			Retries:            *retries,
			QuarantineAfter:    *quarantineAfter,
			Parallel:           *parallel,
			ChaosCrashDispatch: *chaosCrash,
			ChaosKillDispatch:  *chaosKill,
			Log:                os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbtables: %v\n", err)
			os.Exit(1)
		}
		run = sup.Runner()
	} else {
		run = harness.InProcess(ctx, *deadline, *seed)
	}

	start := time.Now()
	appkit.SeedJitter(*seed)
	switch *table {
	case "1":
		fmt.Print(render(harness.Table1With(*runs, run)))
	case "2":
		fmt.Print(render(harness.Table2With(*runs, run)))
	case "log4j":
		fmt.Print(render(harness.Log4jTableWith(*runs, run)))
	case "pause":
		fmt.Print(render(harness.PauseSweepWith(*runs, run)))
	case "precision":
		fmt.Print(render(harness.PrecisionAblationWith(*runs, run)))
	case "model":
		fmt.Print(render(harness.ModelTableWith(20000, *runs, run)))
	case "netload":
		fmt.Print(render(harness.NetLoadTableWith(*runs, run)))
	case "all":
		fmt.Print(render(harness.Table1With(*runs, run)))
		fmt.Println()
		fmt.Print(render(harness.Table2With(*runs, run)))
		fmt.Println()
		fmt.Print(render(harness.Log4jTableWith(*runs, run)))
		fmt.Println()
		fmt.Print(render(harness.PauseSweepWith(*runs, run)))
		fmt.Println()
		fmt.Print(render(harness.PrecisionAblationWith(*runs, run)))
		fmt.Println()
		fmt.Print(render(harness.ModelTableWith(20000, *runs, run)))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n(%d runs per configuration, %.1fs total)\n", *runs, time.Since(start).Seconds())
	if sup != nil {
		if q := sup.Quarantined(); len(q) > 0 {
			fmt.Fprintf(os.Stderr, "cbtables: %d configuration(s) quarantined after repeated worker failures:\n", len(q))
			for _, k := range q {
				fmt.Fprintf(os.Stderr, "  %s\n", k)
			}
		}
		fmt.Fprintf(os.Stderr, "cbtables: %d trial record(s) journaled to %s\n", cp.Len(), *checkpoint)
		if sup.Interrupted() {
			cp.Close()
			fmt.Fprintf(os.Stderr, "cbtables: interrupted; checkpoint flushed — resume with -resume -seed %d\n", *seed)
			os.Exit(130)
		}
	}
}

// openDurableSink opens this process's event/incident journal under
// base (pid-named, so concurrent worker processes never share a
// single-writer journal) and installs it on every trial engine.
func openDurableSink(base string) (*sink.Sink, error) {
	dir := filepath.Join(base, fmt.Sprintf("proc-%d", os.Getpid()))
	s, err := sink.Open(dir, journal.SyncInterval)
	if err != nil {
		return nil, fmt.Errorf("durable events: %w", err)
	}
	harness.SetTrialEngineObserver(func(e *core.Engine, _ harness.TrialSpec) {
		e.SetDurableSink(s)
	})
	return s, nil
}

// workerMain is the hidden -trial-worker mode: execute exactly one
// trial, addressed by the JSON WorkerRequest on stdin, and report the
// TrialOutcome as one JSON line on stdout. The supervisor enforces the
// trial deadline by killing this process.
func workerMain() int {
	if os.Getenv(campaign.ChaosEnv) == campaign.ChaosCrash {
		// CI's injected infrastructure failure: die without reporting.
		return 3
	}
	if dir := os.Getenv(durableEventsEnv); dir != "" {
		s, err := openDurableSink(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trial-worker: %v\n", err)
			return 1
		}
		defer s.Close()
	}
	if err := campaign.ServeTrial(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "trial-worker: %v\n", err)
		return 1
	}
	return 0
}
