// Command cbtables regenerates the paper's evaluation artifacts from the
// Go reproduction: Table 1 (Java benchmarks), Table 2 (C/C++ analogs),
// the section 5 log4j resolve-order table, the section 6.2 pause sweep,
// the section 6.3 precision ablation, and the section 3 / Figure 4 model
// comparison.
//
// Usage:
//
//	cbtables -table all -runs 20
//	cbtables -table log4j -runs 100
//	cbtables -table 1 -runs 100   # the paper used 100 runs per row
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cbreak/internal/harness"
)

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 1, 2, log4j, pause, precision, model, all")
	runs := flag.Int("runs", 10, "runs per configuration (the paper used 100)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()
	render := func(t harness.Table) string {
		if *csv {
			return t.CSV()
		}
		return t.Render()
	}

	start := time.Now()
	switch *table {
	case "1":
		fmt.Print(render(harness.Table1(*runs)))
	case "2":
		fmt.Print(render(harness.Table2(*runs)))
	case "log4j":
		fmt.Print(render(harness.Log4jTable(*runs)))
	case "pause":
		fmt.Print(render(harness.PauseSweep(*runs)))
	case "precision":
		fmt.Print(render(harness.PrecisionAblation(*runs)))
	case "model":
		fmt.Print(render(harness.ModelTable(20000, *runs)))
	case "all":
		fmt.Print(render(harness.Table1(*runs)))
		fmt.Println()
		fmt.Print(render(harness.Table2(*runs)))
		fmt.Println()
		fmt.Print(render(harness.Log4jTable(*runs)))
		fmt.Println()
		fmt.Print(render(harness.PauseSweep(*runs)))
		fmt.Println()
		fmt.Print(render(harness.PrecisionAblation(*runs)))
		fmt.Println()
		fmt.Print(render(harness.ModelTable(20000, *runs)))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n(%d runs per configuration, %.1fs total)\n", *runs, time.Since(start).Seconds())
}
