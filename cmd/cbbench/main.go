// Command cbbench converts `go test -bench` text output into a stable
// JSON artifact, so CI can archive the engine's benchmark numbers per
// commit and diffs between runs are machine-readable.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkEngine -benchtime=100x ./internal/core \
//	    | cbbench -o BENCH_engine.json
//
// Unknown lines (goos/pkg headers, PASS, ok) are folded into the report
// header or skipped; only lines starting with "Benchmark" become
// entries. The command fails if the input contains no benchmark lines,
// so a mis-scoped -bench pattern breaks the CI step instead of silently
// uploading an empty artifact.
//
// With -baseline, the fresh numbers are additionally gated against a
// committed prior artifact:
//
//	go test -run=NONE -bench=BenchmarkEngine -benchtime=100x ./internal/core \
//	    | cbbench -baseline BENCH_engine.json \
//	        -gate BenchmarkEngineContention,BenchmarkEngineDisabled
//
// Each gated series (sub-benchmarks included) must stay within
// -max-regress of its baseline ns/op or the command exits nonzero,
// naming every regressed series — the hot-path perf contract as a CI
// check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Pkg is the package the line came from; multi-package bench runs
	// (core + waitgraph) produce one artifact with each entry
	// attributed to its source.
	Pkg string `json:"pkg,omitempty"`
	// Metrics holds any additional unit pairs (MB/s, custom ReportMetric
	// units) keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Delta compares one matched benchmark pair: the supervised variant's
// ns/op over its unsupervised baseline, so the artifact answers "what
// does the wait-graph supervisor cost on the contended hot path?"
// without post-processing (a ratio near 1.0 means within noise).
type Delta struct {
	Base  string  `json:"base"`
	With  string  `json:"with"`
	Ratio float64 `json:"ratio"`
}

// Report is the whole artifact: the run's environment header plus every
// benchmark line, in input order.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SupervisorDeltas pairs each "...SupervisorOn..." series with its
	// "...SupervisorOff..." baseline.
	SupervisorDeltas []Delta `json:"supervisor_deltas,omitempty"`
	// RecorderDeltas pairs each "...RecorderOn..." series with its
	// "...RecorderOff..." baseline: the cost of the predictive-race
	// trace recorder on instrumented traffic.
	RecorderDeltas []Delta `json:"recorder_deltas,omitempty"`
}

// parse reads `go test -bench` text output into a Report.
func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if rep.Pkg == "" {
				rep.Pkg = pkg
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return rep, err
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	rep.SupervisorDeltas = pairDeltas(rep.Benchmarks, "SupervisorOn", "SupervisorOff")
	rep.RecorderDeltas = pairDeltas(rep.Benchmarks, "RecorderOn", "RecorderOff")
	return rep, nil
}

// pairDeltas pairs every entry whose name contains the `on` marker
// with the matching `off` baseline (same name otherwise) and reports
// the ns/op ratio.
func pairDeltas(bs []Benchmark, on, off string) []Delta {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []Delta
	for _, b := range bs {
		if !strings.Contains(b.Name, on) {
			continue
		}
		base, ok := byName[strings.Replace(b.Name, on, off, 1)]
		if !ok || base.NsPerOp == 0 {
			continue
		}
		out = append(out, Delta{Base: base.Name, With: b.Name, Ratio: b.NsPerOp / base.NsPerOp})
	}
	return out
}

// parseLine parses one "BenchmarkName-P  iters  v1 unit1  v2 unit2 ..."
// result line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %v", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// baseName strips the trailing "-P" GOMAXPROCS suffix from a benchmark
// name, so artifacts recorded at different -cpu values still pair.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gated reports whether a benchmark base name falls under one of the
// gate patterns: an exact match, or the pattern followed by a
// sub-benchmark path ("BenchmarkEngineContention" gates ".../K=8" but
// not BenchmarkEngineContentionSupervisorOn).
func gated(base string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if base == p || strings.HasPrefix(base, p+"/") {
			return true
		}
	}
	return false
}

// regression is one gated series that exceeded its allowance.
type regression struct {
	Name          string
	BaseNs, CurNs float64
	Ratio         float64
}

// minNsPerOp reduces a report to the minimum ns/op per series: with
// `go test -count=N`, each series appears N times, and the minimum is
// the standard noise-robust representative (nothing runs faster than
// the hardware; only slower).
func minNsPerOp(rep Report) map[string]float64 {
	out := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			continue
		}
		key := b.Pkg + " " + baseName(b.Name)
		if cur, ok := out[key]; !ok || b.NsPerOp < cur {
			out[key] = b.NsPerOp
		}
	}
	return out
}

// gate compares cur against base: every gated series present in both
// must hold its best (minimum over -count repeats) ns/op within
// (1 + maxRegress) of the baseline's best. It returns the regressed
// series and how many series were compared; zero comparisons is the
// caller's error (a renamed benchmark must break the gate, not silently
// pass it).
func gate(cur, base Report, patterns []string, maxRegress float64) (regs []regression, compared int) {
	baseline := minNsPerOp(base)
	fresh := minNsPerOp(cur)
	keys := make([]string, 0, len(fresh))
	for key := range fresh {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		name := key[strings.Index(key, " ")+1:]
		if !gated(name, patterns) {
			continue
		}
		prior, ok := baseline[key]
		if !ok {
			continue
		}
		compared++
		ratio := fresh[key] / prior
		if ratio > 1+maxRegress {
			regs = append(regs, regression{Name: name, BaseNs: prior, CurNs: fresh[key], Ratio: ratio})
		}
	}
	return regs, compared
}

func splitPatterns(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed cbbench JSON artifact to gate fresh numbers against")
	gatePats := flag.String("gate", "", "comma-separated benchmark names to gate (default: every series present in both artifacts)")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional ns/op regression against -baseline")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "cbbench: no benchmark result lines in input")
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbbench: baseline: %v\n", err)
			os.Exit(1)
		}
		var prior Report
		if err := json.Unmarshal(data, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "cbbench: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		regs, compared := gate(rep, prior, splitPatterns(*gatePats), *maxRegress)
		if compared == 0 {
			fmt.Fprintf(os.Stderr, "cbbench: no gated series matched between input and %s (renamed benchmark?)\n", *baseline)
			os.Exit(1)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "cbbench: REGRESSION %s: %.1f ns/op -> %.1f ns/op (%.2fx, allowed %.2fx)\n",
				r.Name, r.BaseNs, r.CurNs, r.Ratio, 1+*maxRegress)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cbbench: %d gated series within %.0f%% of %s\n",
			compared, *maxRegress*100, *baseline)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
}
