// Command cbbench converts `go test -bench` text output into a stable
// JSON artifact, so CI can archive the engine's benchmark numbers per
// commit and diffs between runs are machine-readable.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkEngine -benchtime=100x ./internal/core \
//	    | cbbench -o BENCH_engine.json
//
// Unknown lines (goos/pkg headers, PASS, ok) are folded into the report
// header or skipped; only lines starting with "Benchmark" become
// entries. The command fails if the input contains no benchmark lines,
// so a mis-scoped -bench pattern breaks the CI step instead of silently
// uploading an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Pkg is the package the line came from; multi-package bench runs
	// (core + waitgraph) produce one artifact with each entry
	// attributed to its source.
	Pkg string `json:"pkg,omitempty"`
	// Metrics holds any additional unit pairs (MB/s, custom ReportMetric
	// units) keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Delta compares one matched benchmark pair: the supervised variant's
// ns/op over its unsupervised baseline, so the artifact answers "what
// does the wait-graph supervisor cost on the contended hot path?"
// without post-processing (a ratio near 1.0 means within noise).
type Delta struct {
	Base  string  `json:"base"`
	With  string  `json:"with"`
	Ratio float64 `json:"ratio"`
}

// Report is the whole artifact: the run's environment header plus every
// benchmark line, in input order.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SupervisorDeltas pairs each "...SupervisorOn..." series with its
	// "...SupervisorOff..." baseline.
	SupervisorDeltas []Delta `json:"supervisor_deltas,omitempty"`
}

// parse reads `go test -bench` text output into a Report.
func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if rep.Pkg == "" {
				rep.Pkg = pkg
			}
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return rep, err
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	rep.SupervisorDeltas = supervisorDeltas(rep.Benchmarks)
	return rep, nil
}

// supervisorDeltas pairs every "...SupervisorOn..." entry with the
// matching "...SupervisorOff..." baseline (same name otherwise) and
// reports the ns/op ratio.
func supervisorDeltas(bs []Benchmark) []Delta {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []Delta
	for _, b := range bs {
		if !strings.Contains(b.Name, "SupervisorOn") {
			continue
		}
		base, ok := byName[strings.Replace(b.Name, "SupervisorOn", "SupervisorOff", 1)]
		if !ok || base.NsPerOp == 0 {
			continue
		}
		out = append(out, Delta{Base: base.Name, With: b.Name, Ratio: b.NsPerOp / base.NsPerOp})
	}
	return out
}

// parseLine parses one "BenchmarkName-P  iters  v1 unit1  v2 unit2 ..."
// result line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %v", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "cbbench: no benchmark result lines in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cbbench: %v\n", err)
		os.Exit(1)
	}
}
