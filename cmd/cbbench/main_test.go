package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cbreak/internal/core
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineContention/K=1-4         	     100	       158.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineContention/K=8-4         	     100	       162.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineDisabled-4               	     100	        19.01 ns/op
BenchmarkEngineRendezvous/K=1-4         	     100	      6829 ns/op	     488 B/op	       5 allocs/op
BenchmarkThroughput-4                   	     100	       100 ns/op	      12.5 MB/s
PASS
ok  	cbreak/internal/core	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "cbreak/internal/core" {
		t.Fatalf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	k8 := rep.Benchmarks[1]
	if k8.Name != "BenchmarkEngineContention/K=8-4" || k8.Iterations != 100 ||
		k8.NsPerOp != 162.6 || k8.BytesPerOp != 0 || k8.AllocsPerOp != 0 {
		t.Fatalf("K=8 entry = %+v", k8)
	}
	rv := rep.Benchmarks[3]
	if rv.NsPerOp != 6829 || rv.BytesPerOp != 488 || rv.AllocsPerOp != 5 {
		t.Fatalf("rendezvous entry = %+v", rv)
	}
	tp := rep.Benchmarks[4]
	if tp.Metrics["MB/s"] != 12.5 {
		t.Fatalf("throughput metrics = %+v", tp.Metrics)
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok  \tcbreak/internal/core\t1.2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-benchmark input", len(rep.Benchmarks))
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4",                     // no iteration count
		"BenchmarkX-4\tnope\t1 ns/op",      // non-numeric iterations
		"BenchmarkX-4\t100\t1.5 ns/op 2.0", // dangling value
		"BenchmarkX-4\t100\tx ns/op",       // non-numeric value
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse accepted malformed line %q", bad)
		}
	}
}
