package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cbreak/internal/core
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkEngineContention/K=1-4         	     100	       158.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineContention/K=8-4         	     100	       162.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineDisabled-4               	     100	        19.01 ns/op
BenchmarkEngineRendezvous/K=1-4         	     100	      6829 ns/op	     488 B/op	       5 allocs/op
BenchmarkThroughput-4                   	     100	       100 ns/op	      12.5 MB/s
PASS
ok  	cbreak/internal/core	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "cbreak/internal/core" {
		t.Fatalf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	k8 := rep.Benchmarks[1]
	if k8.Name != "BenchmarkEngineContention/K=8-4" || k8.Iterations != 100 ||
		k8.NsPerOp != 162.6 || k8.BytesPerOp != 0 || k8.AllocsPerOp != 0 {
		t.Fatalf("K=8 entry = %+v", k8)
	}
	rv := rep.Benchmarks[3]
	if rv.NsPerOp != 6829 || rv.BytesPerOp != 488 || rv.AllocsPerOp != 5 {
		t.Fatalf("rendezvous entry = %+v", rv)
	}
	tp := rep.Benchmarks[4]
	if tp.Metrics["MB/s"] != 12.5 {
		t.Fatalf("throughput metrics = %+v", tp.Metrics)
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok  \tcbreak/internal/core\t1.2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-benchmark input", len(rep.Benchmarks))
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4",                     // no iteration count
		"BenchmarkX-4\tnope\t1 ns/op",      // non-numeric iterations
		"BenchmarkX-4\t100\t1.5 ns/op 2.0", // dangling value
		"BenchmarkX-4\t100\tx ns/op",       // non-numeric value
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse accepted malformed line %q", bad)
		}
	}
}

const multiPkgOutput = `goos: linux
goarch: amd64
pkg: cbreak/internal/core
BenchmarkEngineContention/K=1-4  	     100	       158.4 ns/op
PASS
ok  	cbreak/internal/core	1.234s
pkg: cbreak/internal/waitgraph
BenchmarkEngineContentionSupervisorOff/K=1-4	     100	       160.0 ns/op
BenchmarkEngineContentionSupervisorOn/K=1-4 	     100	       168.0 ns/op
BenchmarkEngineContentionSupervisorOn/K=8-4 	     100	       170.0 ns/op
PASS
ok  	cbreak/internal/waitgraph	1.1s
`

func TestParseMultiPackageAndSupervisorDeltas(t *testing.T) {
	rep, err := parse(strings.NewReader(multiPkgOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pkg != "cbreak/internal/core" {
		t.Fatalf("header pkg = %q, want the first package", rep.Pkg)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Pkg != "cbreak/internal/core" ||
		rep.Benchmarks[1].Pkg != "cbreak/internal/waitgraph" {
		t.Fatalf("per-benchmark pkgs = %q, %q", rep.Benchmarks[0].Pkg, rep.Benchmarks[1].Pkg)
	}
	// K=1 has both variants; K=8 has no Off baseline and is skipped.
	if len(rep.SupervisorDeltas) != 1 {
		t.Fatalf("deltas = %+v, want exactly the K=1 pair", rep.SupervisorDeltas)
	}
	d := rep.SupervisorDeltas[0]
	if d.Base != "BenchmarkEngineContentionSupervisorOff/K=1-4" ||
		d.With != "BenchmarkEngineContentionSupervisorOn/K=1-4" {
		t.Fatalf("delta pair = %+v", d)
	}
	if d.Ratio < 1.04 || d.Ratio > 1.06 {
		t.Fatalf("delta ratio = %v, want 168/160", d.Ratio)
	}
}

func TestParseRecorderDeltas(t *testing.T) {
	const out = `
BenchmarkTraceRecordOverhead/RecorderOff-4	    1000	       50.0 ns/op
BenchmarkTraceRecordOverhead/RecorderOn-4 	    1000	      200.0 ns/op
PASS
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RecorderDeltas) != 1 {
		t.Fatalf("recorder deltas = %+v, want exactly one pair", rep.RecorderDeltas)
	}
	d := rep.RecorderDeltas[0]
	if d.Base != "BenchmarkTraceRecordOverhead/RecorderOff-4" ||
		d.With != "BenchmarkTraceRecordOverhead/RecorderOn-4" {
		t.Fatalf("recorder delta pair = %+v", d)
	}
	if d.Ratio != 4.0 {
		t.Fatalf("recorder delta ratio = %v, want 4.0", d.Ratio)
	}
	if len(rep.SupervisorDeltas) != 0 {
		t.Fatalf("supervisor deltas leaked into recorder-only input: %+v", rep.SupervisorDeltas)
	}
}

func TestGate(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkEngineContention/K=8-4", Pkg: "core", NsPerOp: 100},
		{Name: "BenchmarkEngineDisabled-4", Pkg: "core", NsPerOp: 20},
		{Name: "BenchmarkEngineContentionSupervisorOn-4", Pkg: "wg", NsPerOp: 100},
	}}
	cur := Report{Benchmarks: []Benchmark{
		// Recorded at a different GOMAXPROCS: still pairs.
		{Name: "BenchmarkEngineContention/K=8-16", Pkg: "core", NsPerOp: 115},
		{Name: "BenchmarkEngineDisabled-16", Pkg: "core", NsPerOp: 30},
		// Gated patterns must not swallow the SupervisorOn series by
		// prefix; it regressed 3x but is outside the gate set.
		{Name: "BenchmarkEngineContentionSupervisorOn-16", Pkg: "wg", NsPerOp: 300},
	}}
	pats := []string{"BenchmarkEngineContention", "BenchmarkEngineDisabled"}

	regs, compared := gate(cur, base, pats, 0.20)
	if compared != 2 {
		t.Fatalf("compared %d series, want 2", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkEngineDisabled" || regs[0].Ratio != 1.5 {
		t.Fatalf("regressions = %+v, want one 1.5x on BenchmarkEngineDisabled", regs)
	}

	// Within the allowance: clean.
	if regs, _ := gate(cur, base, []string{"BenchmarkEngineContention"}, 0.20); len(regs) != 0 {
		t.Fatalf("contention within 20%% flagged: %+v", regs)
	}
	// No patterns gates everything present in both.
	if _, compared := gate(cur, base, nil, 0.20); compared != 3 {
		t.Fatalf("ungated comparison covered %d series, want 3", compared)
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkEngineDisabled-4":        "BenchmarkEngineDisabled",
		"BenchmarkEngineContention/K=8-16": "BenchmarkEngineContention/K=8",
		"BenchmarkOdd":                     "BenchmarkOdd",
		"BenchmarkDash-suffix":             "BenchmarkDash-suffix",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
