// Command cbpredict runs the predictive race pipeline end to end on
// the instrumented mysql scenario:
//
//	record   a bounded workload writes a sync-annotated trace journal
//	predict  the sync-aware closure reports racy pairs, including pairs
//	         the recorded interleaving never exhibited
//	emit     predicted-only pairs compile to ConflictTrigger configs
//	verify   a short campaign re-runs the workload with the triggers
//	         armed and proves the manufactured conflict state is
//	         reachable (trigger-fired counts land in the checkpoint)
//
//	cbpredict -dir /tmp/cbpredict
//	cbpredict -dir /tmp/cbpredict -trials 3 -timeout 5s -seed 42
//
// The tool exits nonzero when any stage fails: no predicted-only race,
// an oracle cross-check mismatch, or a verification campaign in which
// no manufactured trigger fired.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cbreak/internal/campaign"
	"cbreak/internal/core"
	"cbreak/internal/harness"
	"cbreak/internal/journal"
	"cbreak/internal/predict"
)

func main() {
	var (
		dir     = flag.String("dir", "", "working directory for trace, config, and checkpoint (required)")
		trials  = flag.Int("trials", 3, "verification campaign trials")
		seed    = flag.Int64("seed", 1, "campaign seed")
		timeout = flag.Duration("timeout", 5*time.Second, "breakpoint postponement timeout T")
		control = flag.Bool("control", true, "also record the sync-ordered control trace and require zero predictions from it")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "cbpredict: -dir is required")
		os.Exit(2)
	}
	if err := run(*dir, *trials, *seed, *timeout, *control); err != nil {
		fmt.Fprintln(os.Stderr, "cbpredict:", err)
		os.Exit(1)
	}
}

func run(dir string, trials int, seed int64, timeout time.Duration, control bool) error {
	// Stage 1: record.
	traceDir := filepath.Join(dir, "trace")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		return err
	}
	n, err := predict.RecordRacyMySQL(traceDir)
	if err != nil {
		return fmt.Errorf("recording: %w", err)
	}
	tr, err := predict.Load(traceDir)
	if err != nil {
		return fmt.Errorf("loading trace: %w", err)
	}
	fmt.Printf("record:  %d events, %d goroutines -> %s\n", n, len(tr.Gids()), traceDir)

	// Stage 2: predict, cross-checked against the dynamic detectors.
	res := predict.Predict(tr)
	oracle := predict.CrossCheck(tr, res)
	if err := oracle.Err(); err != nil {
		return err
	}
	only := res.PredictedOnly()
	fmt.Printf("predict: %d racy pair(s), %d predicted-only (observed interleaving never exhibited them)\n",
		len(res.Predictions), len(only))
	for _, p := range res.Predictions {
		fmt.Println("  ", p)
	}
	if len(only) == 0 {
		return fmt.Errorf("no predicted-only race; nothing to manufacture")
	}

	if control {
		controlDir := filepath.Join(dir, "control")
		if err := os.MkdirAll(controlDir, 0o755); err != nil {
			return err
		}
		if _, err := predict.RecordSyncedMySQL(controlDir); err != nil {
			return fmt.Errorf("recording control: %w", err)
		}
		ctr, err := predict.Load(controlDir)
		if err != nil {
			return fmt.Errorf("loading control trace: %w", err)
		}
		cres := predict.Predict(ctr)
		if len(cres.Predictions) != 0 {
			return fmt.Errorf("control trace predicted %d race(s); the closure is unsound:\n%s",
				len(cres.Predictions), predict.FormatAll(cres.Predictions))
		}
		fmt.Println("control: sync-ordered trace predicts nothing (closure keeps real synchronization)")
	}

	// Stage 3: emit trigger configs.
	plans := predict.Compile(only, timeout)
	configPath := filepath.Join(dir, "config.json")
	if err := predict.WritePlans(configPath, plans); err != nil {
		return fmt.Errorf("writing config: %w", err)
	}
	fmt.Printf("emit:    %d ConflictTrigger plan(s) -> %s\n", len(plans), configPath)

	// Stage 4: verify under a short campaign. Each trial arms the plans
	// on a fresh engine and re-runs the workload; the supervisor
	// journals every outcome (with per-breakpoint hit counters) to the
	// checkpoint, so the trigger-fired evidence is a durable artifact.
	ckptPath := filepath.Join(dir, "checkpoint")
	ckpt, err := campaign.OpenOptions(ckptPath, seed, false, journal.SyncEachRecord)
	if err != nil {
		return fmt.Errorf("opening checkpoint: %w", err)
	}
	defer ckpt.Close()
	sup, err := campaign.New(campaign.Config{
		Execute: func(_ context.Context, req campaign.WorkerRequest) (harness.TrialOutcome, error) {
			out := predict.VerifyMySQL(core.NewEngine(), plans)
			return harness.TrialOutcome{Result: out.Result, Stats: out.Stats}, nil
		},
		Checkpoint: ckpt,
		Seed:       seed,
		Deadline:   timeout + 30*time.Second,
		Log:        os.Stderr,
	})
	if err != nil {
		return err
	}
	m := sup.Runner()(harness.TrialSpec{
		Key:        harness.TrialKey{Table: "predict", Row: 1, Variant: harness.VariantWith},
		Label:      "predicted-race verification",
		Runs:       trials,
		Breakpoint: true,
		Timeout:    timeout,
	})
	fmt.Printf("verify:  %d/%d trial(s) fired a manufactured trigger (checkpoint %s)\n",
		m.BPHits, m.Completed, ckptPath)
	if m.BPHits == 0 {
		return fmt.Errorf("verification: no trial fired a manufactured trigger")
	}
	fmt.Println("ok: predicted race is reachable; breakpoint config reproduces it on demand")
	return nil
}
