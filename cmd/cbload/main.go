// Command cbload drives concurrent retrying load clients through the
// netchaos fault-injecting proxy against a real-socket benchmark server
// (httpd or mysql) with concurrent breakpoints optionally armed. It is
// the network-chaos analog of cbtables' single rows: one seeded, fully
// reproducible load run with every injected fault attributed in the
// engine's incident log and — when the armed bug is the mysql
// FLUSH-vs-DML deadlock — a wait-graph supervisor confirming the cycle
// behind the sockets.
//
// Usage:
//
//	cbload -app httpd -bug log-corruption -clients 16 -requests 8 -seed 7 \
//	    -reset 0.15 -latency 200us
//	cbload -app mysql -bug deadlock -seed 7 -expect-deadlock
//	cbload -app httpd -clients 1000 -requests 2 -reset 0.1 -truncate 0.1   # load smoke
//	cbload -describe 8 -seed 7 -reset 0.2    # print the fault schedule and exit
//	cbload -app httpd -connect 127.0.0.1:7177 -clients 32    # drive a live cbserverd
//
// The fault schedule and every client's retry jitter derive from -seed,
// so a run replays fault-for-fault; -describe prints the schedule
// fingerprint two runs can diff.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal"
	"cbreak/internal/journal/sink"
	"cbreak/internal/netchaos"
	"cbreak/internal/waitgraph"
)

func main() {
	app := flag.String("app", "httpd", "server to load: httpd or mysql")
	bug := flag.String("bug", "none", "bug to arm: none, log-corruption (httpd), deadlock (mysql)")
	clients := flag.Int("clients", 16, "concurrent load clients")
	requests := flag.Int("requests", 8, "sequential requests per client")
	seed := flag.Int64("seed", 1, "seed for the fault schedule and all retry jitter")
	pause := flag.Duration("pause", 50*time.Millisecond, "breakpoint pause time T")

	latency := flag.Duration("latency", 0, "base injected latency per forwarded chunk")
	latencyJitter := flag.Duration("latency-jitter", 0, "extra per-connection latency bound (defaults to -latency)")
	reset := flag.Float64("reset", 0, "connection reset probability")
	truncate := flag.Float64("truncate", 0, "stream truncation probability")
	halfOpen := flag.Float64("halfopen", 0, "half-open drop probability")
	throttle := flag.Float64("throttle", 0, "bandwidth throttle probability")
	throttleBps := flag.Int("throttle-bps", 0, "throttled connection cap in bytes/second (default 2048)")
	slowLoris := flag.Float64("slowloris", 0, "slow-loris trickle probability")
	partitionAt := flag.Int("partition-at", 0, "begin a full partition at this connection ordinal (0 = never)")
	partitionFor := flag.Int("partition-for", 0, "partition window width in ordinals (default 8)")

	attempts := flag.Int("attempts", 3, "attempts per request (1 try + retries)")
	retryBudget := flag.Int("retry-budget", 0, "per-client lifetime retry cap (0 = unlimited)")
	attemptTimeout := flag.Duration("attempt-timeout", time.Second, "per-attempt dial+roundtrip bound")
	requestTimeout := flag.Duration("request-timeout", 5*time.Second, "per-request bound including retries and backoff")

	connect := flag.String("connect", "", "drive an already-running server at this address (e.g. a live cbserverd proxy); skips the self-hosted server, proxy, engine, and verdict")
	describe := flag.Int("describe", 0, "print the fault plans of the first N connection ordinals and exit (determinism fingerprint)")
	expectDeadlock := flag.Bool("expect-deadlock", false, "exit nonzero unless the wait-graph supervisor confirms a deadlock")
	stallWait := flag.Duration("stall-wait", 2*time.Second, "how long to wait for a deadlock confirmation after the load drains")
	durableEvents := flag.String("durable-events", "", "journal engine events and guard incidents under this directory")
	flag.Parse()

	appkit.SeedJitter(*seed)
	faults := netchaos.Faults{
		Latency: *latency, LatencyJitter: *latencyJitter,
		ResetRate: *reset, TruncateRate: *truncate, HalfOpenRate: *halfOpen,
		ThrottleRate: *throttle, ThrottleBps: *throttleBps, SlowLorisRate: *slowLoris,
		PartitionAt: *partitionAt, PartitionFor: *partitionFor,
	}
	if *describe > 0 {
		fmt.Print(netchaos.NewSchedule(appkit.JitterSeed(), faults).Describe(*describe))
		return
	}

	clientCfg := netchaos.ClientConfig{
		Attempts: *attempts, RetryBudget: *retryBudget,
		AttemptTimeout: *attemptTimeout, RequestTimeout: *requestTimeout,
	}

	if *connect != "" {
		// Remote mode: the server (and any chaos proxy in front of it)
		// is someone else's — typically a live cbserverd — so the run is
		// pure client load: no engine, no verdict, no local faults.
		makeRequest, err := appboot.RequestGenerator(*app)
		if err != nil {
			fatal("%v", err)
		}
		// Preflight the target under the attempt timeout (the tightest
		// bound in the AttemptTimeout ≤ RequestTimeout hierarchy): a
		// down daemon fails the run in one clear line instead of every
		// client burning its full retry schedule against a dead socket.
		conn, err := net.DialTimeout("tcp", *connect, *attemptTimeout)
		if err != nil {
			fatal("target %s is unreachable: %v (is cbserverd running? check its /status proxy_addr)", *connect, err)
		}
		conn.Close()
		rep := netchaos.RunLoad(netchaos.LoadConfig{
			Addr: *connect, Seed: appkit.JitterSeed(),
			Clients: *clients, Requests: *requests,
			MakeRequest: makeRequest,
			Client:      clientCfg,
		})
		fmt.Printf("load: %s\n", rep)
		return
	}

	e := core.NewEngine()
	if *durableEvents != "" {
		s, err := sink.Open(*durableEvents, journal.SyncInterval)
		if err != nil {
			fatal("durable events: %v", err)
		}
		defer s.Close()
		e.SetDurableSink(s)
	}
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	defer sup.Stop()

	server, err := appboot.Start(e, *app, *bug, *pause, "")
	if err != nil {
		fatal("%v", err)
	}
	defer server.Close()
	makeRequest, err := appboot.RequestGenerator(*app)
	if err != nil {
		fatal("%v", err)
	}

	px, err := netchaos.Start(server.Addr, netchaos.Config{
		Seed:   appkit.JitterSeed(),
		Faults: faults,
		OnFault: func(ev netchaos.FaultEvent) {
			e.RecordIncident(guard.KindNetFault, "netchaos."+ev.Kind.String(), 0, ev.String())
		},
	})
	if err != nil {
		fatal("proxy start: %v", err)
	}
	defer px.Close()

	rep := netchaos.RunLoad(netchaos.LoadConfig{
		Addr: px.Addr(), Seed: appkit.JitterSeed(),
		Clients: *clients, Requests: *requests,
		MakeRequest: makeRequest,
		Client:      clientCfg,
	})

	fmt.Printf("load: %s\n", rep)
	fmt.Printf("proxy: %d connection(s), %d fault(s) injected\n", px.Connections(), px.TotalFaults())
	for _, k := range netchaos.Kinds() {
		if n := px.FaultCount(k); n > 0 {
			fmt.Printf("  %-10s %d\n", k, n)
		}
	}
	fmt.Printf("server: %d request(s) served, %d connection(s) shed\n", server.Served(), server.ShedCount())
	if inc := e.IncidentCounts(); len(inc) > 0 {
		keys := make([]string, 0, len(inc))
		for k := range inc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("incidents:")
		for _, k := range keys {
			fmt.Printf("  %-20s %d\n", k, inc[k])
		}
	}

	confirmed := false
	select {
	case <-sup.Confirmed():
		confirmed = true
	default:
		if *expectDeadlock {
			select {
			case <-sup.Confirmed():
				confirmed = true
			case <-time.After(*stallWait):
			}
		}
	}
	if confirmed {
		fmt.Println("verdict: wait-graph deadlock confirmed")
		for _, r := range sup.Reports() {
			if r.Kind == waitgraph.ReportDeadlock {
				fmt.Printf("  %s\n", r.Desc)
			}
		}
	} else {
		fmt.Println("verdict: no deadlock confirmed")
	}
	if *expectDeadlock && !confirmed {
		fatal("expected a confirmed deadlock; none observed")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cbload: "+format+"\n", args...)
	os.Exit(1)
}
