// Command cbprob explores the section 3 probability model: for a grid
// of pause times it prints the no-trigger probability, the with-trigger
// lower bound, the Monte Carlo estimate, and the improvement factor —
// the quantitative argument behind BTrigger.
//
// Usage:
//
//	cbprob -n 100000 -M 10 -m 2 -t 1,10,100,1000,10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cbreak/internal/prob"
)

func main() {
	n := flag.Int("n", 100000, "steps per thread (N)")
	mBig := flag.Int("M", 10, "states satisfying the local predicate (M)")
	m := flag.Int("m", 2, "states satisfying the full breakpoint (m)")
	ts := flag.String("t", "1,10,100,1000,10000", "comma-separated pause times (T)")
	mc := flag.Int("mc", 20000, "Monte Carlo runs (0 to skip)")
	flag.Parse()

	var pauses []int
	for _, s := range strings.Split(*ts, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad pause %q\n", s)
			os.Exit(2)
		}
		pauses = append(pauses, v)
	}

	fmt.Printf("model: N=%d M=%d m=%d\n", *n, *mBig, *m)
	fmt.Printf("base probability: exact=%.6g approx=%.6g", prob.ExactBase(*n, *m), prob.ApproxBase(*n, *m))
	if *mc > 0 {
		fmt.Printf(" monte-carlo=%.6g", prob.MonteCarloBase(*n, *m, *mc, 42))
	}
	fmt.Println()
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s %-10s\n", "T", "trigger-LB", "approx", "monte-carlo", "gain", "runtime-x")
	for _, p := range prob.Sweep(*n, *mBig, *m, pauses) {
		mcv := "-"
		if *mc > 0 {
			mcv = fmt.Sprintf("%.6g", prob.MonteCarloTrigger(*n, *mBig, *m, p.T, *mc, 42))
		}
		fmt.Printf("%-8d %-12.6g %-12.6g %-12s %-10.1f %-10.3f\n",
			p.T, p.Trigger, prob.ApproxTrigger(*n, *mBig, *m, p.T), mcv, p.Improvement,
			prob.RuntimeFactor(*n, *mBig, p.T))
	}
}
