// Command cbscen runs the process-chaos scenario suite against a real
// cbserverd binary: supervised worker processes are SIGKILLed,
// SIGSTOPped, crash-looped, partitioned from their load, and hit with
// disk faults under their durable journals, and every recovery claim is
// verified from the outside — /metrics, /status, live sockets, and the
// journals themselves. Artifacts (daemon logs, journal directories) are
// kept per scenario for post-mortem upload.
//
// Usage:
//
//	cbscen -list
//	cbscen -run all -artifacts scen-artifacts
//	cbscen -run multiproc-deadlock-sigkill,crashloop-quarantine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cbreak/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list registered scenarios and exit")
	run := flag.String("run", "all", "comma-separated scenario names, or all")
	artifacts := flag.String("artifacts", "cbscen-artifacts", "artifact directory (logs, journals; one subdirectory per scenario)")
	bin := flag.String("bin", "", "prebuilt cbserverd binary (default: go build it into the artifact directory)")
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-28s %s\n", s.Name, s.Desc)
		}
		return
	}

	var picked []scenario.Scenario
	if *run == "all" {
		picked = scenario.All()
	} else {
		for _, name := range strings.Split(*run, ",") {
			s, ok := scenario.Find(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "cbscen: unknown scenario %q (see -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, s)
		}
	}

	binary := *bin
	if binary == "" {
		b, err := scenario.BuildDaemon(*artifacts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbscen: %v\n", err)
			os.Exit(2)
		}
		binary = b
	}

	failed := 0
	for _, s := range picked {
		fmt.Printf("=== %s\n", s.Name)
		start := time.Now()
		err := scenario.RunOne(s, binary, *artifacts, os.Stdout)
		if err != nil {
			failed++
			fmt.Printf("--- FAIL %s (%.1fs): %v\n", s.Name, time.Since(start).Seconds(), err)
		} else {
			fmt.Printf("--- PASS %s (%.1fs)\n", s.Name, time.Since(start).Seconds())
		}
	}
	fmt.Printf("cbscen: %d/%d scenarios passed (artifacts in %s)\n", len(picked)-failed, len(picked), *artifacts)
	if failed > 0 {
		os.Exit(1)
	}
}
