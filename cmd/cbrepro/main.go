// Command cbrepro reproduces one of the evaluation's bugs on demand:
// pick a benchmark row, run it N times with its concurrent breakpoints,
// and print the outcome distribution — the paper's core claim, one bug
// at a time.
//
// Usage:
//
//	cbrepro -list
//	cbrepro -bug stringbuffer/atomicity1 -runs 20
//	cbrepro -bug jigsaw/deadlock1 -runs 20 -timeout 100ms
//	cbrepro -bug "pbzip2 0.9.4/program crash" -runs 10
//	cbrepro -bug log4j/missed-notify1 -no-breakpoint   # the Heisenbug, naturally
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/harness"
)

type entry struct {
	name     string
	comments string
	run      harness.RunFunc
	timeout  time.Duration
}

func catalog() []entry {
	var out []entry
	for _, row := range harness.Table1Rows() {
		name := row.Benchmark + "/" + row.BugLabel
		// Pause-sweep repeat rows share a name; keep the first.
		dup := false
		for _, e := range out {
			if e.name == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, entry{name: name, comments: row.Comments, run: row.Run, timeout: row.Timeout})
	}
	for _, row := range harness.Table2Rows() {
		out = append(out, entry{name: row.Benchmark + "/" + row.Error, comments: row.Comments, run: row.Run})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func main() {
	bug := flag.String("bug", "", "bug to reproduce (see -list)")
	runs := flag.Int("runs", 10, "number of runs")
	timeout := flag.Duration("timeout", 0, "breakpoint pause (default: the row's)")
	noBP := flag.Bool("no-breakpoint", false, "run without breakpoints (observe the natural Heisenbug rate)")
	list := flag.Bool("list", false, "list reproducible bugs")
	flag.Parse()

	entries := catalog()
	if *list || *bug == "" {
		fmt.Println("reproducible bugs:")
		for _, e := range entries {
			line := "  " + e.name
			if e.comments != "" {
				line += "  (" + e.comments + ")"
			}
			fmt.Println(line)
		}
		if *bug == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var chosen *entry
	for i := range entries {
		if entries[i].name == *bug {
			chosen = &entries[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown bug %q — try -list\n", *bug)
		os.Exit(2)
	}

	to := *timeout
	if to == 0 {
		to = chosen.timeout
	}
	if to == 0 {
		to = harness.ShortPause
	}

	fmt.Printf("reproducing %s (%d runs, pause %v, breakpoints %v)\n",
		chosen.name, *runs, to, !*noBP)
	counts := map[string]int{}
	hits := 0
	var mtte time.Duration
	buggy := 0
	for i := 0; i < *runs; i++ {
		e := core.NewEngine()
		if *noBP {
			e.SetEnabled(false)
		}
		res := chosen.run(e, !*noBP, to)
		counts[res.Status.String()]++
		if res.BPHit {
			hits++
		}
		if res.Status.Buggy() {
			buggy++
			mtte += res.Elapsed
		}
		fmt.Printf("  run %2d: %s\n", i+1, res)
	}
	fmt.Println()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-16s %d/%d\n", k+":", counts[k], *runs)
	}
	fmt.Printf("%-16s %d/%d\n", "breakpoint hit:", hits, *runs)
	if buggy > 0 {
		fmt.Printf("%-16s %.3fs\n", "mean TTE:", (mtte / time.Duration(buggy)).Seconds())
	}
	if buggy < *runs && !*noBP {
		os.Exit(1)
	}
}
