// Command cbdetect demonstrates the two breakpoint-insertion
// methodologies of section 5 of the paper on instrumented scenarios:
//
//	cbdetect -scenario race        # Methodology I: a data-race report
//	cbdetect -scenario deadlock    # Methodology I: a deadlock report
//	cbdetect -scenario contention  # Methodology II: the lock-contention list
//
// Each scenario runs a small concurrent program under the conflict
// detectors (Eraser-style lockset + vector-clock happens-before + lock
// contention/order), prints the CalFuzzer-style report, and shows the
// concurrent-breakpoint insertion it suggests.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"cbreak/internal/detect"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

func main() {
	scenario := flag.String("scenario", "race", "race, deadlock, contention, atomicity, or lostnotify")
	flag.Parse()
	switch *scenario {
	case "race":
		raceScenario()
	case "deadlock":
		deadlockScenario()
	case "contention":
		contentionScenario()
	case "atomicity":
		atomicityScenario()
	case "lostnotify":
		lostNotifyScenario()
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

// atomicityScenario runs the StringBuffer stale-length pattern inside a
// declared atomic block; the Atomizer-style checker names the
// interfering site.
func atomicityScenario() {
	d := detect.New(detect.WithEraser(false), detect.WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	length := memory.NewCell(sp, "sb.length", 32)

	step := make(chan struct{})
	go func() { // the interferer
		<-step
		length.Store("StringBuffer.java:239", 0) // setLength(0)
		step <- struct{}{}
	}()
	d.BeginAtomic("StringBuffer.append")
	length.Load("StringBuffer.java:444") // int len = sb.length()
	step <- struct{}{}                   // the unlucky interleaving
	<-step
	length.Load("StringBuffer.java:449") // sb.getChars(0, len, ...)
	d.EndAtomic()

	fmt.Println(d.FormatAll())
	fmt.Println()
	fmt.Println("Methodology I: order the interferer into the window:")
	fmt.Println(`  cbreak.TriggerHereAnd(cbreak.NewAtomicityTrigger("trigger3", sb), true, opts, func(){ sb.SetLength(0) })`)
	fmt.Println(`  cbreak.TriggerHere(cbreak.NewAtomicityTrigger("trigger3", sb), false, 0) // between length() and getChars()`)
}

// lostNotifyScenario shows the missed-notification candidate report the
// Methodology II walk-through starts from.
func lostNotifyScenario() {
	d := detect.New()
	mon := locks.NewMutex("AsyncAppender.this")
	cv := locks.NewCond("dataAvailable", mon)
	d.InstrumentConds(cv)

	// The dispatcher decided to sleep; setBufferSize's notification
	// fires first and is lost; the dispatcher then waits.
	cv.NotifyAt("AsyncAppender.java:236")
	mon.Lock()
	cv.WaitTimeoutAt(10*time.Millisecond, "AsyncAppender.java:309")
	mon.Unlock()

	fmt.Println(d.FormatAll())
	fmt.Println()
	fmt.Println("Methodology II: force the notify before the wait with a NotifyTrigger")
	fmt.Println("pair and watch the stall become deterministic (`cbtables -table log4j`).")
}

// raceScenario is Figure 1 of the paper under the detectors: foo writes
// p.x while bar reads it, unsynchronized.
func raceScenario() {
	d := detect.New()
	sp := memory.NewSpace()
	d.Instrument(sp)
	x := memory.NewCell(sp, "p.x", 0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); x.Store("sample/Test1.go:3", 10) }() // foo
	go func() { defer wg.Done(); x.Load("sample/Test1.go:9") }()      // bar
	wg.Wait()

	fmt.Println(d.FormatAll())
	fmt.Println()
	fmt.Println("Methodology I: insert at the two reported sites:")
	fmt.Println(`  cbreak.TriggerHere(cbreak.NewConflictTrigger("trigger1", p), true, 0)   // before the read`)
	fmt.Println(`  cbreak.TriggerHere(cbreak.NewConflictTrigger("trigger1", p), false, 0)  // before the write`)
}

// deadlockScenario is Figure 2 of the paper under the detectors: the
// Jigsaw killClients / clientConnectionFinished lock inversion.
func deadlockScenario() {
	d := detect.New()
	factory := locks.NewMutex("this")
	csList := locks.NewMutex("csList")
	factory.Observe(d)
	csList.Observe(d)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // clientConnectionFinished
		defer wg.Done()
		csList.LockAt("SocketClientFactory.java:623")
		//cbvet:ignore lockorder intentional inversion: this demo exists to reproduce the Jigsaw deadlock
		factory.LockAt("SocketClientFactory.java:574")
		factory.Unlock()
		csList.Unlock()
	}()
	go func() { // killClients
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		factory.LockAt("SocketClientFactory.java:867")
		//cbvet:ignore lockorder intentional inversion: this demo exists to reproduce the Jigsaw deadlock
		csList.LockAt("SocketClientFactory.java:872")
		csList.Unlock()
		factory.Unlock()
	}()
	wg.Wait()

	fmt.Println(d.FormatAll())
	fmt.Println()
	fmt.Println("Methodology I: insert at the two reported sites:")
	fmt.Println(`  cbreak.TriggerHere(cbreak.NewDeadlockTrigger("trigger2", csList, this), true, 0)`)
	fmt.Println(`  cbreak.TriggerHere(cbreak.NewDeadlockTrigger("trigger2", this, csList), false, 0)`)
}

// contentionScenario mirrors the log4j walk-through: several threads
// contend for the AsyncAppender monitor from the four sites of section
// 5; the report lists the contention pairs a developer then tries one
// by one.
func contentionScenario() {
	d := detect.New()
	monitor := locks.NewMutex("AsyncAppender.this")
	monitor.Observe(d)

	sites := []string{
		"org/apache/log4j/AsyncAppender.java:line 100",
		"org/apache/log4j/AsyncAppender.java:line 236",
		"org/apache/log4j/AsyncAppender.java:line 277",
		"org/apache/log4j/AsyncAppender.java:line 309",
	}
	var wg sync.WaitGroup
	for _, site := range sites {
		wg.Add(1)
		go func(site string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				monitor.LockAt(site)
				time.Sleep(100 * time.Microsecond)
				monitor.UnlockAt(site)
			}
		}(site)
	}
	wg.Wait()

	for _, r := range d.ReportsOf(detect.KindContention) {
		fmt.Println(r.Format())
		fmt.Println()
	}
	fmt.Println("Methodology II: insert a breakpoint for each pair, try both")
	fmt.Println("resolve orders, and keep the pair whose forced order makes the")
	fmt.Println("Heisenbug (the system stall) reproducible — see")
	fmt.Println("`cbtables -table log4j` for the resulting table.")
}
