package main

// The admin HTTP surface: every handler reads or writes engine state
// through the same public accessors the in-process drivers use, so the
// control plane adds no new mutation paths — a live toggle is exactly
// core.Engine.SetBreakpointEnabled, a live release exactly
// core.Engine.ForceRelease.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal/sink"
	"cbreak/internal/netchaos"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

// daemon is the serving state shared by every admin handler.
type daemon struct {
	e        *core.Engine
	sup      *waitgraph.Supervisor
	reg      *telemetry.Registry
	hosts    *appboot.Supervisor
	specs    []appboot.Spec
	front    *appboot.Host // the host the chaos proxy targets
	px       *netchaos.Proxy
	snk      *sink.Sink // nil without -durable-events
	started  time.Time
	draining atomic.Bool
}

// frontApp returns the front host's in-process App (nil in -supervise
// mode, where counters live in the worker's own journal and /metrics).
func (d *daemon) frontApp() *appboot.App {
	if inst := d.front.Instance(); inst != nil {
		return appboot.InstanceApp(inst)
	}
	return nil
}

// bugFor looks up the armed bug for an app name.
func (d *daemon) bugFor(app string) string {
	for _, s := range d.specs {
		if s.App == app {
			return s.Bug
		}
	}
	return ""
}

// shedding reports whether the engine's overload policy has the accept
// loops shedding right now — the postponed population is at or above
// the global high-water mark.
func (d *daemon) shedding() (string, bool) {
	ov, ok := d.e.Overload()
	if !ok || ov.GlobalHighWater <= 0 {
		return "", false
	}
	if pop := d.e.PostponedTotal(); pop >= int64(ov.GlobalHighWater) {
		return fmt.Sprintf("postponed population %d at high water %d", pop, ov.GlobalHighWater), true
	}
	return "", false
}

// Serving-layer metric descriptors: app and proxy counters that live
// outside the engine's catalog but render through the same registry.
var (
	descUptime = telemetry.Desc{Name: "cbreak_uptime_seconds",
		Help: "Seconds since cbserverd started.", Kind: telemetry.Gauge}
	descAppServed = telemetry.Desc{Name: "cbreak_app_served_requests_total",
		Help: "Request lines the app server answered.", Kind: telemetry.Counter, Labels: []string{"app"}}
	descAppShed = telemetry.Desc{Name: "cbreak_app_shed_connections_total",
		Help: "Connections the app server's accept loop shed.", Kind: telemetry.Counter, Labels: []string{"app"}}
	descProxyConns = telemetry.Desc{Name: "cbreak_proxy_connections_total",
		Help: "Connections the chaos proxy accepted.", Kind: telemetry.Counter}
	descProxyFaults = telemetry.Desc{Name: "cbreak_proxy_faults_total",
		Help: "Faults the chaos proxy injected, by kind.", Kind: telemetry.Counter, Labels: []string{"kind"}}
)

// registerServingMetrics adds the app/proxy collectors to the registry.
// Served/shed counters are visible only for in-process apps; supervised
// worker processes account their own serving in their own journals,
// while their supervision (state, restarts, crashes, quarantines) is
// exported here by the host supervisor's collector.
func (d *daemon) registerServingMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Desc: &descUptime, Value: time.Since(d.started).Seconds()})
		for _, h := range d.hosts.Hosts() {
			inst := h.Instance()
			if inst == nil {
				continue
			}
			if app := appboot.InstanceApp(inst); app != nil {
				emit(telemetry.Sample{Desc: &descAppServed,
					Labels: []string{app.Name}, Value: float64(app.Served())})
				emit(telemetry.Sample{Desc: &descAppShed,
					Labels: []string{app.Name}, Value: float64(app.ShedCount())})
			}
		}
		emit(telemetry.Sample{Desc: &descProxyConns, Value: float64(d.px.Connections())})
		for _, k := range netchaos.Kinds() {
			emit(telemetry.Sample{Desc: &descProxyFaults,
				Labels: []string{k.String()}, Value: float64(d.px.FaultCount(k))})
		}
	})
}

// mux routes the admin API.
func (d *daemon) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", d.handleHealthz)
	m.HandleFunc("/readyz", d.handleReadyz)
	m.HandleFunc("/metrics", d.handleMetrics)
	m.HandleFunc("/stream", d.handleStream)
	m.HandleFunc("/status", d.handleStatus)
	m.HandleFunc("/breakpoints", d.handleBreakpoints)
	m.HandleFunc("/breakpoints/toggle", d.handleToggle)
	m.HandleFunc("/engine", d.handleEngine)
	m.HandleFunc("/tune/overload", d.handleTuneOverload)
	m.HandleFunc("/tune/breaker", d.handleTuneBreaker)
	m.HandleFunc("/release", d.handleRelease)
	m.HandleFunc("/waiters", d.handleWaiters)
	m.HandleFunc("/incidents", d.handleIncidents)
	m.HandleFunc("/reports", d.handleReports)
	m.HandleFunc("/chaos/partition", d.handlePartition)
	m.HandleFunc("/apps/revive", d.handleRevive)
	return m
}

// handleHealthz is honest liveness: 503 while the daemon is draining
// (a balancer must stop sending load the drain will sever) and 503
// while the overload policy has the accept loops shedding (the daemon
// is alive but refusing the very work a health-checked pool would
// route to it). Plain 200 "ok" otherwise.
func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if reason, shed := d.shedding(); shed {
		http.Error(w, "shedding: "+reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz gates readiness on the hosted apps: 200 only when every
// supervised app is up (not restarting, not quarantined) and the daemon
// is not draining.
func (d *daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if d.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !d.hosts.AllUp() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "apps": d.hosts.Statuses()})
		return
	}
	fmt.Fprintln(w, "ready")
}

// handlePartition severs the chaos proxy for a window: every live
// proxied connection is reset and new ones are refused until the window
// closes — the network-partition scenario's trigger.
func (d *daemon) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	dur, err := time.ParseDuration(r.FormValue("duration"))
	if err != nil || dur <= 0 {
		http.Error(w, "duration required (e.g. ?duration=2s)", http.StatusBadRequest)
		return
	}
	dropped := d.px.ForcePartition(dur)
	writeJSON(w, map[string]any{"partition_for": dur.String(), "dropped_connections": dropped})
}

// handleRevive lifts a quarantine on the named app.
func (d *daemon) handleRevive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	h := d.hosts.Host(r.FormValue("name"))
	if h == nil {
		http.Error(w, "unknown app (see /status)", http.StatusBadRequest)
		return
	}
	h.Revive()
	writeJSON(w, map[string]any{"app": r.FormValue("name"), "state": h.State().String()})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.reg.WritePrometheus(w)
}

// handleStream serves the live NDJSON telemetry feed: one JSON object
// per bus record until the client disconnects. The subscription's
// bounded buffer means a slow consumer drops records (counted on the
// bus) instead of stalling the engine.
func (d *daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	sub := d.e.Bus().Subscribe(1024)
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case rec := <-sub.C():
			if err := telemetry.WriteNDJSON(w, rec); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

func (d *daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	ov, ovSet := d.e.Overload()
	// Per-app supervision rows, with the armed bug joined in.
	type appStatus struct {
		appboot.HostStatus
		Bug string `json:"bug"`
	}
	hostRows := d.hosts.Statuses()
	rows := make([]appStatus, 0, len(hostRows))
	for _, hs := range hostRows {
		rows = append(rows, appStatus{HostStatus: hs, Bug: d.bugFor(hs.Name)})
	}
	st := map[string]any{
		// Legacy single-app keys describe the front app (what the proxy
		// targets); the full supervisor picture is under "apps".
		"app":            d.front.Status().Name,
		"bug":            d.bugFor(d.front.Status().Name),
		"app_addr":       d.front.Addr(),
		"apps":           rows,
		"ready":          d.hosts.AllUp() && !d.draining.Load(),
		"draining":       d.draining.Load(),
		"supervised":     true,
		"proxy_addr":     d.px.Addr(),
		"uptime_seconds": time.Since(d.started).Seconds(),
		"engine_enabled": d.e.Enabled(),
		"postponed":      d.e.PostponedTotal(),
		"proxy_conns":    d.px.Connections(),
		"proxy_faults":   d.px.TotalFaults(),
		"watchdog":       d.e.WatchdogRunning(),
		"durable_sink":   d.e.DurableSinkInstalled(),
		"scans":          d.sup.Scans(),
		"bus_dropped":    d.e.Bus().Dropped(),
	}
	if app := d.frontApp(); app != nil {
		st["served"] = app.Served()
		st["shed"] = app.ShedCount()
	}
	if ovSet {
		st["overload"] = ov
	}
	writeJSON(w, st)
}

// breakpointView is one row of GET /breakpoints.
type breakpointView struct {
	core.StatsSnapshot
	Enabled   bool
	Postponed int
}

func (d *daemon) handleBreakpoints(w http.ResponseWriter, r *http.Request) {
	snaps := d.e.SnapshotAll()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	out := make([]breakpointView, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, breakpointView{
			StatsSnapshot: s,
			Enabled:       d.e.BreakpointEnabled(s.Name),
			Postponed:     d.e.PostponedCount(s.Name) + d.e.MultiPostponedCount(s.Name),
		})
	}
	writeJSON(w, out)
}

// handleToggle registers, enables, or disables one breakpoint live.
// Toggling an unseen name registers it (its shard is created), so an
// operator can pre-disable a breakpoint before the first arrival.
func (d *daemon) handleToggle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.FormValue("name")
	if name == "" {
		http.Error(w, "name required", http.StatusBadRequest)
		return
	}
	enabled, err := strconv.ParseBool(r.FormValue("enabled"))
	if err != nil {
		http.Error(w, "enabled must be true or false", http.StatusBadRequest)
		return
	}
	d.e.SetBreakpointEnabled(name, enabled)
	writeJSON(w, map[string]any{"breakpoint": name, "enabled": d.e.BreakpointEnabled(name)})
}

func (d *daemon) handleEngine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	enabled, err := strconv.ParseBool(r.FormValue("enabled"))
	if err != nil {
		http.Error(w, "enabled must be true or false", http.StatusBadRequest)
		return
	}
	d.e.SetEnabled(enabled)
	writeJSON(w, map[string]any{"engine_enabled": d.e.Enabled()})
}

// handleTuneOverload replaces the engine's overload policy live.
// Omitted parameters keep the currently-installed value; clear=true
// removes the policy entirely.
func (d *daemon) handleTuneOverload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if ok, _ := strconv.ParseBool(r.FormValue("clear")); ok {
		d.e.SetOverloadConfig(nil)
		writeJSON(w, map[string]any{"overload": nil})
		return
	}
	cfg, _ := d.e.Overload() // zero value when none installed
	if err := firstErr(
		intParam(r, "high-water", &cfg.GlobalHighWater),
		intParam(r, "soft-water", &cfg.SoftWater),
		intParam(r, "max-per-shard", &cfg.MaxPerShard),
		durParam(r, "min-budget", &cfg.MinBudget),
	); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.e.SetOverloadConfig(&cfg)
	writeJSON(w, map[string]any{"overload": cfg})
}

// handleTuneBreaker replaces the per-breakpoint circuit-breaker policy
// live. Omitted parameters take the production defaults; clear=true
// removes breakers (existing ones disengage on their next arrival).
func (d *daemon) handleTuneBreaker(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if ok, _ := strconv.ParseBool(r.FormValue("clear")); ok {
		d.e.SetBreakerConfig(nil)
		writeJSON(w, map[string]any{"breaker": nil})
		return
	}
	cfg := guard.DefaultBreakerConfig()
	if err := firstErr(
		intParam(r, "min-samples", &cfg.MinSamples),
		intParam(r, "window", &cfg.Window),
		floatParam(r, "timeout-rate", &cfg.TimeoutRate),
		durParam(r, "backoff", &cfg.Backoff),
		durParam(r, "max-backoff", &cfg.MaxBackoff),
	); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.e.SetBreakerConfig(&cfg)
	writeJSON(w, map[string]any{"breaker": cfg})
}

// handleRelease force-releases one postponed goroutine with a timeout
// outcome — the operator's manual override when a victim is wedged and
// neither the watchdog nor the supervisor has claimed it.
func (d *daemon) handleRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.FormValue("breakpoint")
	gid, err := strconv.ParseUint(r.FormValue("gid"), 10, 64)
	if name == "" || err != nil {
		http.Error(w, "breakpoint and numeric gid required (see GET /waiters)", http.StatusBadRequest)
		return
	}
	released := d.e.ForceRelease(name, gid, guard.KindWatchdogRelease,
		fmt.Sprintf("admin force-release of gid %d", gid))
	writeJSON(w, map[string]any{"breakpoint": name, "gid": gid, "released": released})
}

func (d *daemon) handleWaiters(w http.ResponseWriter, r *http.Request) {
	ws := d.e.PostponedWaiters()
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Breakpoint != ws[j].Breakpoint {
			return ws[i].Breakpoint < ws[j].Breakpoint
		}
		return ws[i].GID < ws[j].GID
	})
	writeJSON(w, ws)
}

func (d *daemon) handleIncidents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"counts":    d.e.IncidentCounts(),
		"incidents": d.e.Incidents(),
	})
}

func (d *daemon) handleReports(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.sup.Reports())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// intParam, floatParam, and durParam overwrite *dst only when the query
// parameter is present, so tuning endpoints merge over current values.
func intParam(r *http.Request, key string, dst *int) error {
	v := r.FormValue(key)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	*dst = n
	return nil
}

func floatParam(r *http.Request, key string, dst *float64) error {
	v := r.FormValue(key)
	if v == "" {
		return nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	*dst = f
	return nil
}

func durParam(r *http.Request, key string, dst *time.Duration) error {
	v := r.FormValue(key)
	if v == "" {
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	*dst = d
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
