// Command cbserverd is the always-on face of the breakpoint engine: it
// boots a benchmark app server (httpd or mysql) behind the netchaos
// fault-injecting proxy and serves a live control plane over HTTP —
// Prometheus-text metrics from the typed telemetry registry, an NDJSON
// stream of every record on the engine's telemetry bus, and an admin
// API that registers/enables/disables breakpoints, tunes overload and
// breaker policy, and force-releases wedged victims, all without a
// restart.
//
// Usage:
//
//	cbserverd -addr 127.0.0.1:7070 -app httpd -bug log-corruption
//	cbserverd -addr 127.0.0.1:7070 -app mysql -bug deadlock \
//	    -proxy-addr 127.0.0.1:7177 -reset 0.05 -latency 200us
//
// Endpoints (admin listener):
//
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//	GET  /stream                   NDJSON telemetry feed (until disconnect)
//	GET  /status                   process/server/proxy status JSON
//	GET  /breakpoints              per-breakpoint stats + enabled flags
//	GET  /waiters                  currently postponed goroutines
//	GET  /incidents                guard incident log snapshot
//	GET  /reports                  wait-graph supervisor reports
//	POST /breakpoints/toggle       ?name=X&enabled=true|false
//	POST /engine                   ?enabled=true|false
//	POST /tune/overload            ?high-water=&soft-water=&max-per-shard=&min-budget= | ?clear=true
//	POST /tune/breaker             ?min-samples=&window=&timeout-rate=&backoff=&max-backoff= | ?clear=true
//	POST /release                  ?breakpoint=X&gid=N
//
// Load clients dial the chaos proxy address (-proxy-addr, reported in
// /status); cbload -connect drives it directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal"
	"cbreak/internal/journal/sink"
	"cbreak/internal/netchaos"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "admin/metrics HTTP listen address")
	app := flag.String("app", "httpd", "server to run: httpd or mysql")
	bug := flag.String("bug", "none", "bug to arm: none, log-corruption (httpd), deadlock (mysql)")
	pause := flag.Duration("pause", 50*time.Millisecond, "breakpoint pause time T")
	appAddr := flag.String("app-addr", "127.0.0.1:0", "app server listen address")
	proxyAddr := flag.String("proxy-addr", "127.0.0.1:0", "chaos proxy listen address (what load clients dial)")
	seed := flag.Int64("seed", 1, "seed for the fault schedule")

	latency := flag.Duration("latency", 0, "base injected latency per forwarded chunk")
	latencyJitter := flag.Duration("latency-jitter", 0, "extra per-connection latency bound (defaults to -latency)")
	reset := flag.Float64("reset", 0, "connection reset probability")
	truncate := flag.Float64("truncate", 0, "stream truncation probability")
	halfOpen := flag.Float64("halfopen", 0, "half-open drop probability")
	throttle := flag.Float64("throttle", 0, "bandwidth throttle probability")
	throttleBps := flag.Int("throttle-bps", 0, "throttled connection cap in bytes/second (default 2048)")
	slowLoris := flag.Float64("slowloris", 0, "slow-loris trickle probability")

	watchdog := flag.Duration("watchdog", 0, "watchdog scan interval (0 = off)")
	watchdogGrace := flag.Duration("watchdog-grace", time.Second, "watchdog release grace past a waiter's deadline")
	durableEvents := flag.String("durable-events", "", "journal engine events and guard incidents under this directory")
	drainTimeout := flag.Duration("drain", 5*time.Second, "graceful drain bound on shutdown")
	flag.Parse()

	appkit.SeedJitter(*seed)
	e := core.NewEngine()
	if *durableEvents != "" {
		s, err := sink.Open(*durableEvents, journal.SyncInterval)
		if err != nil {
			fatal("durable events: %v", err)
		}
		defer s.Close()
		e.SetDurableSink(s)
	}
	if *watchdog > 0 {
		e.StartWatchdog(*watchdog, *watchdogGrace)
		defer e.StopWatchdog()
	}
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	defer sup.Stop()

	server, err := appboot.Start(e, *app, *bug, *pause, *appAddr)
	if err != nil {
		fatal("%v", err)
	}
	defer server.Close()

	px, err := netchaos.Start(server.Addr, netchaos.Config{
		ListenAddr: *proxyAddr,
		Seed:       appkit.JitterSeed(),
		Faults: netchaos.Faults{
			Latency: *latency, LatencyJitter: *latencyJitter,
			ResetRate: *reset, TruncateRate: *truncate, HalfOpenRate: *halfOpen,
			ThrottleRate: *throttle, ThrottleBps: *throttleBps, SlowLorisRate: *slowLoris,
		},
		OnFault: func(ev netchaos.FaultEvent) {
			e.RecordIncident(guard.KindNetFault, "netchaos."+ev.Kind.String(), 0, ev.String())
		},
	})
	if err != nil {
		fatal("proxy start: %v", err)
	}
	defer px.Close()

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	sup.RegisterMetrics(reg)
	reg.WireBus("engine", e.Bus())

	d := &daemon{e: e, sup: sup, reg: reg, app: server, px: px, started: time.Now()}
	d.registerServingMetrics(reg)

	httpSrv := &http.Server{Addr: *addr, Handler: d.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	fmt.Printf("cbserverd: admin http://%s  app %s(%s) %s  proxy %s\n",
		*addr, server.Name, server.Bug, server.Addr, px.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal("admin listener: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admin intake first (in-flight scrapes and
	// streams get the drain bound), then sever the chaos proxy so the
	// app server's own drain isn't racing injected faults, then the
	// deferred closes drain the app, supervisor, watchdog, and sink.
	fmt.Println("cbserverd: draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		httpSrv.Close()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cbserverd: "+format+"\n", args...)
	os.Exit(1)
}
