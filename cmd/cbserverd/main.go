// Command cbserverd is the always-on face of the breakpoint engine: it
// boots one or more benchmark app servers (httpd, mysql) behind the
// netchaos fault-injecting proxy and serves a live control plane over
// HTTP — Prometheus-text metrics from the typed telemetry registry, an
// NDJSON stream of every record on the engine's telemetry bus, and an
// admin API that registers/enables/disables breakpoints, tunes overload
// and breaker policy, and force-releases wedged victims, all without a
// restart.
//
// Hosted apps run under a self-healing supervisor: each is
// health-probed over its own socket protocol, restarted with jittered
// exponential backoff when it crashes or wedges, and quarantined when
// it crash-loops. With -supervise the apps run as re-exec'd child
// worker processes (cbserverd -app-worker), so the supervision covers
// real process death — SIGKILL, SIGSTOP wedges, disk faults under a
// worker's durable journal — not just in-process failures.
//
// Usage:
//
//	cbserverd -addr 127.0.0.1:7070 -app httpd -bug log-corruption
//	cbserverd -addr 127.0.0.1:7070 -apps mysql:deadlock,httpd -supervise \
//	    -durable-events /var/lib/cbreak/journal
//
// Endpoints (admin listener):
//
//	GET  /healthz                  honest liveness: 503 while draining or shedding
//	GET  /readyz                   readiness: 200 only when every hosted app is up
//	GET  /metrics                  Prometheus text exposition
//	GET  /stream                   NDJSON telemetry feed (until disconnect)
//	GET  /status                   process/server/proxy/supervisor status JSON
//	GET  /breakpoints              per-breakpoint stats + enabled flags
//	GET  /waiters                  currently postponed goroutines
//	GET  /incidents                guard incident log snapshot
//	GET  /reports                  wait-graph supervisor reports
//	POST /breakpoints/toggle       ?name=X&enabled=true|false
//	POST /engine                   ?enabled=true|false
//	POST /tune/overload            ?high-water=&soft-water=&max-per-shard=&min-budget= | ?clear=true
//	POST /tune/breaker             ?min-samples=&window=&timeout-rate=&backoff=&max-backoff= | ?clear=true
//	POST /release                  ?breakpoint=X&gid=N
//	POST /chaos/partition          ?duration=2s   (sever the proxy for a window)
//	POST /apps/revive              ?name=X        (lift a quarantine)
//
// Load clients dial the chaos proxy address (-proxy-addr, reported in
// /status); cbload -connect drives it directly. With both httpd and
// mysql hosted, httpd is automatically wired to mysql as its backend,
// so proxied GETs fan into statements across the process boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal"
	"cbreak/internal/journal/sink"
	"cbreak/internal/netchaos"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "admin/metrics HTTP listen address")
	app := flag.String("app", "httpd", "server to run: httpd or mysql")
	bug := flag.String("bug", "none", "bug to arm: none, log-corruption (httpd), deadlock (mysql)")
	apps := flag.String("apps", "", "host several apps: comma-separated app[:bug] list (overrides -app/-bug), e.g. mysql:deadlock,httpd")
	pause := flag.Duration("pause", 50*time.Millisecond, "breakpoint pause time T")
	appAddr := flag.String("app-addr", "127.0.0.1:0", "app server listen address (first app; later apps always take ephemeral ports)")
	proxyAddr := flag.String("proxy-addr", "127.0.0.1:0", "chaos proxy listen address (what load clients dial)")
	seed := flag.Int64("seed", 1, "seed for the fault schedule")

	latency := flag.Duration("latency", 0, "base injected latency per forwarded chunk")
	latencyJitter := flag.Duration("latency-jitter", 0, "extra per-connection latency bound (defaults to -latency)")
	reset := flag.Float64("reset", 0, "connection reset probability")
	truncate := flag.Float64("truncate", 0, "stream truncation probability")
	halfOpen := flag.Float64("halfopen", 0, "half-open drop probability")
	throttle := flag.Float64("throttle", 0, "bandwidth throttle probability")
	throttleBps := flag.Int("throttle-bps", 0, "throttled connection cap in bytes/second (default 2048)")
	slowLoris := flag.Float64("slowloris", 0, "slow-loris trickle probability")

	supervise := flag.Bool("supervise", false, "run hosted apps as re-exec'd child worker processes under the self-healing supervisor")
	restartBackoff := flag.Duration("restart-backoff", 100*time.Millisecond, "supervisor base restart delay (doubles per consecutive crash)")
	maxRestartBackoff := flag.Duration("max-restart-backoff", 5*time.Second, "supervisor restart delay ceiling")
	crashloopWindow := flag.Duration("crashloop-window", 30*time.Second, "crash-loop detection window")
	crashloopThreshold := flag.Int("crashloop-threshold", 5, "crashes inside the window that quarantine an app")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health-probe period (negative disables probing)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health-probe round-trip bound")
	probeFailures := flag.Int("probe-failures", 3, "consecutive probe failures that declare an app wedged")

	watchdog := flag.Duration("watchdog", 0, "watchdog scan interval (0 = off)")
	watchdogGrace := flag.Duration("watchdog-grace", time.Second, "watchdog release grace past a waiter's deadline")
	durableEvents := flag.String("durable-events", "", "journal engine events and guard incidents under this directory (per-app subdirectories with -supervise)")
	drainTimeout := flag.Duration("drain", 5*time.Second, "graceful drain bound on shutdown")

	appWorker := flag.Bool("app-worker", false, "internal: run as a supervised app worker process")
	backend := flag.String("backend", "", "internal (worker): mysql backend address for a hosted httpd")
	crashApp := flag.String("crash-app", "", "chaos: arm a one-shot disk fault under this app's durable journal (needs -supervise and -durable-events)")
	crashAppends := flag.Int("crash-appends", 0, "chaos: the durability operation ordinal at which the armed disk fault fires")
	flag.Parse()

	if *appWorker {
		err := appboot.RunWorker(appboot.WorkerConfig{
			Spec: appboot.Spec{App: *app, Bug: *bug, Pause: *pause, Listen: *appAddr, Backend: *backend},
			Seed: *seed, DurableDir: *durableEvents, CrashAppends: *crashAppends,
		})
		if err != nil {
			fatal("%v", err)
		}
		return
	}

	specs, err := resolveSpecs(*apps, *app, *bug, *pause, *appAddr)
	if err != nil {
		fatal("%v", err)
	}

	appkit.SeedJitter(*seed)
	e := core.NewEngine()
	var snk *sink.Sink
	if *durableEvents != "" {
		// With -supervise each worker journals into its own per-app
		// subdirectory; the daemon keeps its own journal alongside.
		dir := *durableEvents
		if *supervise {
			dir = filepath.Join(dir, "daemon")
		}
		snk, err = sink.Open(dir, journal.SyncInterval)
		if err != nil {
			fatal("durable events: %v", err)
		}
		defer snk.Close()
		e.SetDurableSink(snk)
	}
	if *watchdog > 0 {
		e.StartWatchdog(*watchdog, *watchdogGrace)
		defer e.StopWatchdog()
	}
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	defer sup.Stop()

	hosts := appboot.NewSupervisor()
	hostCfg := appboot.HostConfig{
		RestartBackoff: *restartBackoff, MaxRestartBackoff: *maxRestartBackoff,
		CrashLoopWindow: *crashloopWindow, CrashLoopThreshold: *crashloopThreshold,
		ProbeInterval: *probeInterval, ProbeTimeout: *probeTimeout,
		ProbeFailures: *probeFailures, Seed: *seed,
		OnEvent: func(ev appboot.HostEvent) { fmt.Println("cbserverd: " + ev.String()) },
	}
	var mysqlHost *appboot.Host
	self, _ := os.Executable()
	for i, spec := range specs {
		spec, i := spec, i
		cfg := hostCfg
		cfg.Name = spec.App
		if *supervise {
			if self == "" {
				fatal("-supervise: cannot resolve own binary for re-exec")
			}
			cfg.Launch = appboot.ProcLauncher(appboot.ProcConfig{
				Bin: self,
				Args: func(listenAddr string) []string {
					a := []string{"-app-worker",
						"-app", spec.App, "-bug", spec.Bug,
						"-pause", spec.Pause.String(),
						"-seed", strconv.FormatInt(appkit.DeriveSeed(*seed, int64(i+1)), 10),
					}
					switch {
					case listenAddr != "":
						a = append(a, "-app-addr", listenAddr)
					case spec.Listen != "":
						a = append(a, "-app-addr", spec.Listen)
					default:
						a = append(a, "-app-addr", "127.0.0.1:0")
					}
					if spec.App == "httpd" && mysqlHost != nil {
						a = append(a, "-backend", mysqlHost.Addr())
					}
					if *durableEvents != "" {
						a = append(a, "-durable-events", filepath.Join(*durableEvents, spec.App))
						if *crashApp == spec.App && *crashAppends > 0 {
							a = append(a, "-crash-appends", strconv.Itoa(*crashAppends))
						}
					}
					return a
				},
			})
		} else {
			cfg.Launch = func(prevAddr string) (appboot.Instance, error) {
				s := spec
				if s.App == "httpd" && mysqlHost != nil {
					s.Backend = mysqlHost.Addr()
				}
				return appboot.InProcLauncher(e, s)(prevAddr)
			}
		}
		h := hosts.Add(cfg)
		if spec.App == "mysql" {
			mysqlHost = h
		}
	}
	if err := hosts.StartAll(); err != nil {
		fatal("%v", err)
	}
	defer hosts.StopAll()

	// The proxy fronts the app load clients dial: httpd when hosted
	// (it fans into mysql itself), otherwise the first app. Host
	// addresses are pinned across restarts, so the target stays valid
	// through supervisor relaunches.
	front := hosts.Hosts()[0]
	if h := hosts.Host("httpd"); h != nil {
		front = h
	}
	px, err := netchaos.Start(front.Addr(), netchaos.Config{
		ListenAddr: *proxyAddr,
		Seed:       appkit.JitterSeed(),
		Faults: netchaos.Faults{
			Latency: *latency, LatencyJitter: *latencyJitter,
			ResetRate: *reset, TruncateRate: *truncate, HalfOpenRate: *halfOpen,
			ThrottleRate: *throttle, ThrottleBps: *throttleBps, SlowLorisRate: *slowLoris,
		},
		OnFault: func(ev netchaos.FaultEvent) {
			e.RecordIncident(guard.KindNetFault, "netchaos."+ev.Kind.String(), 0, ev.String())
		},
	})
	if err != nil {
		fatal("proxy start: %v", err)
	}
	defer px.Close()

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	sup.RegisterMetrics(reg)
	hosts.RegisterMetrics(reg)
	reg.WireBus("engine", e.Bus())

	d := &daemon{e: e, sup: sup, reg: reg, hosts: hosts, specs: specs,
		front: front, px: px, snk: snk, started: time.Now()}
	d.registerServingMetrics(reg)

	// Listen before serving so an ephemeral -addr (:0) prints the real
	// port — the scenario harness boots daemons this way.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("admin listener: %v", err)
	}
	httpSrv := &http.Server{Handler: d.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	fmt.Printf("cbserverd: admin http://%s  apps %s  proxy %s -> %s\n",
		ln.Addr(), describeSpecs(specs, hosts), px.Addr(), front.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal("admin listener: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: flip /healthz to 503 and flush the durable sink
	// first — everything journaled so far is on disk even if the rest
	// of the drain is cut short — then stop admin intake (in-flight
	// scrapes and streams get the drain bound), then sever the chaos
	// proxy so the app servers' own drains aren't racing injected
	// faults, then the deferred closes drain the hosts, supervisor,
	// watchdog, and sink.
	fmt.Println("cbserverd: draining")
	d.draining.Store(true)
	if snk != nil {
		if err := snk.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "cbserverd: drain sink sync: %v\n", err)
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		httpSrv.Close()
	}
}

// resolveSpecs turns the flag surface into the ordered spec list:
// -apps wins over -app/-bug, mysql boots before httpd (httpd's backend
// wiring needs the mysql address), and the first spec gets -app-addr.
func resolveSpecs(apps, app, bug string, pause time.Duration, appAddr string) ([]appboot.Spec, error) {
	var specs []appboot.Spec
	if apps != "" {
		var err error
		specs, err = appboot.ParseApps(apps, pause)
		if err != nil {
			return nil, err
		}
	} else {
		specs = []appboot.Spec{{App: app, Bug: bug, Pause: pause}}
	}
	// Backends before dependents: mysql first.
	for i, s := range specs {
		if s.App == "mysql" && i != 0 {
			specs[0], specs[i] = specs[i], specs[0]
		}
	}
	if len(specs) == 1 {
		specs[0].Listen = appAddr
	}
	return specs, nil
}

// describeSpecs formats the hosted apps for the boot banner.
func describeSpecs(specs []appboot.Spec, hosts *appboot.Supervisor) string {
	out := ""
	for i, s := range specs {
		if i > 0 {
			out += ","
		}
		addr := ""
		if h := hosts.Host(s.App); h != nil {
			addr = h.Addr()
		}
		out += fmt.Sprintf("%s(%s)@%s", s.App, s.Bug, addr)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cbserverd: "+format+"\n", args...)
	os.Exit(1)
}
