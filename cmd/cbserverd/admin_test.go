package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/netchaos"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

// startDaemon boots the full serving stack (engine, wait-graph
// supervisor, a supervised in-process httpd host, transparent chaos
// proxy, admin mux) on ephemeral ports.
func startDaemon(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	d := buildDaemon(t)
	ts := httptest.NewServer(d.mux())
	t.Cleanup(ts.Close)
	return d, ts
}

// buildDaemon assembles the daemon without an admin listener (tests
// that need a real http.Server attach their own). Tweaks adjust the
// host supervision config (probing is off by default for test speed).
func buildDaemon(t *testing.T, tweaks ...func(*appboot.HostConfig)) *daemon {
	t.Helper()
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	t.Cleanup(sup.Stop)

	spec := appboot.Spec{App: "httpd", Bug: "none", Pause: 10 * time.Millisecond}
	hosts := appboot.NewSupervisor()
	cfg := appboot.HostConfig{
		Name: "httpd", Launch: appboot.InProcLauncher(e, spec),
		ProbeInterval: -1, Seed: 1,
	}
	for _, tweak := range tweaks {
		tweak(&cfg)
	}
	hosts.Add(cfg)
	if err := hosts.StartAll(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hosts.StopAll)
	front := hosts.Host("httpd")

	px, err := netchaos.Start(front.Addr(), netchaos.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	sup.RegisterMetrics(reg)
	hosts.RegisterMetrics(reg)
	reg.WireBus("engine", e.Bus())
	d := &daemon{e: e, sup: sup, reg: reg, hosts: hosts, specs: []appboot.Spec{spec},
		front: front, px: px, started: time.Now()}
	d.registerServingMetrics(reg)
	return d
}

func get(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func post(t *testing.T, ts *httptest.Server, path string, params url.Values) string {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, params)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// roundtrip drives one request line through the chaos proxy to the app.
func roundtrip(t *testing.T, addr, req string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(conn, "%s\n", req)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("roundtrip %q: %v", req, err)
	}
	return strings.TrimSpace(line)
}

func TestAdminSurface(t *testing.T) {
	d, ts := startDaemon(t)

	if got := get(t, ts, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz = %q", got)
	}

	// One real request through the proxy, so serving counters move.
	if resp := roundtrip(t, d.px.Addr(), "GET /page/1"); !strings.HasPrefix(resp, "200 ") {
		t.Fatalf("proxied request = %q", resp)
	}

	metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		"cbreak_engine_enabled 1",
		"cbreak_uptime_seconds",
		"cbreak_proxy_connections_total 1",
		`cbreak_app_served_requests_total{app="httpd"} 1`,
		"# TYPE cbreak_bus_records_total counter",
		`cbreak_bus_dropped_total{bus="engine"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	var status map[string]any
	if err := json.Unmarshal([]byte(get(t, ts, "/status")), &status); err != nil {
		t.Fatal(err)
	}
	if status["app"] != "httpd" || status["served"].(float64) < 1 {
		t.Fatalf("status = %v", status)
	}

	// Live toggle: disable, observe in /breakpoints and /metrics,
	// re-enable — no restart anywhere.
	post(t, ts, "/breakpoints/toggle", url.Values{"name": {"live.bp"}, "enabled": {"false"}})
	if d.e.BreakpointEnabled("live.bp") {
		t.Fatal("toggle did not disable the breakpoint")
	}
	if bps := get(t, ts, "/breakpoints"); !strings.Contains(bps, `"Name": "live.bp"`) {
		t.Errorf("breakpoints listing missing toggled name: %s", bps)
	}
	if m := get(t, ts, "/metrics"); !strings.Contains(m, `cbreak_bp_enabled{breakpoint="live.bp"} 0`) {
		t.Error("metrics do not show the disabled breakpoint")
	}
	post(t, ts, "/breakpoints/toggle", url.Values{"name": {"live.bp"}, "enabled": {"true"}})
	if !d.e.BreakpointEnabled("live.bp") {
		t.Fatal("toggle did not re-enable the breakpoint")
	}

	// Live tuning lands in the engine and the exposition.
	post(t, ts, "/tune/overload", url.Values{"high-water": {"64"}, "soft-water": {"16"}})
	if ov, ok := d.e.Overload(); !ok || ov.GlobalHighWater != 64 || ov.SoftWater != 16 {
		t.Fatalf("overload tune not applied: %+v ok=%v", ov, ok)
	}
	if m := get(t, ts, "/metrics"); !strings.Contains(m, "cbreak_overload_global_high_water 64") {
		t.Error("tuned high-water mark not exposed")
	}
	post(t, ts, "/tune/overload", url.Values{"clear": {"true"}})
	if _, ok := d.e.Overload(); ok {
		t.Fatal("overload clear not applied")
	}
	post(t, ts, "/tune/breaker", url.Values{"timeout-rate": {"0.5"}, "min-samples": {"4"}})

	// Releasing a goroutine that is not postponed reports false.
	out := post(t, ts, "/release", url.Values{"breakpoint": {"live.bp"}, "gid": {"12345"}})
	if !strings.Contains(out, `"released": false`) {
		t.Fatalf("bogus release = %s", out)
	}

	get(t, ts, "/waiters")
	get(t, ts, "/incidents")
	get(t, ts, "/reports")
}

// TestHealthzHonest: /healthz answers 200 normally, 503 while the
// overload policy has accept loops shedding, and 503 while draining —
// a balancer must never route load a shedding or draining daemon will
// refuse.
func TestHealthzHonest(t *testing.T) {
	d, ts := startDaemon(t)
	if got := get(t, ts, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz = %q", got)
	}

	// Shedding: install a high-water of 1 and park one goroutine
	// postponed at a breakpoint — the same condition the accept loops
	// shed on.
	d.e.SetOverloadConfig(&core.OverloadConfig{GlobalHighWater: 1})
	obj := new(int)
	release := make(chan struct{})
	go func() {
		d.e.TriggerOutcome(core.NewConflictTrigger("hz.bp", obj), true,
			core.Options{Timeout: 5 * time.Second})
		close(release)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.e.PostponedTotal() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "shedding") {
		t.Fatalf("healthz while shedding = %d %q, want 503 shedding", resp.StatusCode, body)
	}
	d.e.ForceRelease("hz.bp", d.e.PostponedWaiters()[0].GID, guard.KindWatchdogRelease, "test cleanup")
	<-release
	d.e.SetOverloadConfig(nil)
	if got := get(t, ts, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz after release = %q", got)
	}

	// Draining beats everything.
	d.draining.Store(true)
	defer d.draining.Store(false)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestReadyzSelfHealing kills the hosted app's socket out from under
// the supervisor: probes notice, the host restarts the app on its
// pinned address, /readyz dips to 503 and recovers, and the restart
// lands in the supervisor counter family on /metrics.
func TestReadyzSelfHealing(t *testing.T) {
	d := buildDaemon(t, func(cfg *appboot.HostConfig) {
		cfg.ProbeInterval = 10 * time.Millisecond
		cfg.ProbeTimeout = 100 * time.Millisecond
		cfg.ProbeFailures = 2
		cfg.RestartBackoff = 20 * time.Millisecond
		cfg.MaxRestartBackoff = 50 * time.Millisecond
	})
	ts := httptest.NewServer(d.mux())
	t.Cleanup(ts.Close)
	if got := get(t, ts, "/readyz"); !strings.Contains(got, "ready") {
		t.Fatalf("readyz = %q", got)
	}

	// Kill the app's listener directly (not through the host): the
	// supervisor must discover the wedge by probing.
	d.front.Instance().Kill()
	deadline := time.Now().Add(10 * time.Second)
	sawDown := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawDown = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDown {
		t.Fatal("readyz never reported the killed app")
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp := roundtrip(t, d.front.Addr(), "GET /healed"); !strings.HasPrefix(resp, "200 ") {
		t.Fatalf("restarted app answered %q", resp)
	}
	if m := get(t, ts, "/metrics"); !strings.Contains(m, `cbreak_supervisor_restarts_total{app="httpd"}`) {
		t.Fatalf("metrics missing supervisor restart counter:\n%s", m)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(get(t, ts, "/status")), &status); err != nil {
		t.Fatal(err)
	}
	apps := status["apps"].([]any)
	if len(apps) != 1 {
		t.Fatalf("status apps = %v", apps)
	}
	row := apps[0].(map[string]any)
	if row["restarts"].(float64) < 1 || row["state"] != "up" {
		t.Fatalf("status app row = %v, want restarts >= 1 and up", row)
	}
}

// TestPartitionEndpoint: POST /chaos/partition severs proxied service
// for the window, then service restores.
func TestPartitionEndpoint(t *testing.T) {
	d, ts := startDaemon(t)
	if resp := roundtrip(t, d.px.Addr(), "GET /pre"); !strings.HasPrefix(resp, "200 ") {
		t.Fatalf("pre-partition = %q", resp)
	}
	post(t, ts, "/chaos/partition", url.Values{"duration": {"400ms"}})
	if _, err := tryRoundtrip(d.px.Addr(), "GET /during"); err == nil {
		t.Fatal("request succeeded inside the partition window")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := tryRoundtrip(d.px.Addr(), "GET /after"); err == nil && strings.HasPrefix(resp, "200 ") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never restored after the partition window")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Bad requests are rejected.
	resp, err := http.PostForm(ts.URL+"/chaos/partition", url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partition without duration = %d, want 400", resp.StatusCode)
	}
}

// TestReviveEndpointValidation: unknown apps are a 400.
func TestReviveEndpointValidation(t *testing.T) {
	_, ts := startDaemon(t)
	resp, err := http.PostForm(ts.URL+"/apps/revive", url.Values{"name": {"nope"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("revive unknown = %d, want 400", resp.StatusCode)
	}
}

// tryRoundtrip is roundtrip without the test fatals.
func tryRoundtrip(addr, req string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	fmt.Fprintf(conn, "%s\n", req)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// TestShutdownOrderingUnderConcurrentAdmin is the drain regression
// test: a real admin http.Server is shut down in exactly main's drain
// order — draining flag, sink sync point, admin Shutdown, proxy close,
// hosts stop, supervisor stop — while concurrent admin requests
// (scrapes, status, a live NDJSON stream) hammer it. Run under -race
// this pins the teardown against the serving paths; the draining flag
// must be observable as /healthz 503 before admin intake stops.
func TestShutdownOrderingUnderConcurrentAdmin(t *testing.T) {
	d := buildDaemon(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: d.mux()}
	serveDone := make(chan struct{})
	go func() { srv.Serve(ln); close(serveDone) }()
	base := "http://" + ln.Addr().String()

	stopLoad := make(chan struct{})
	var workers sync.WaitGroup
	var drainRefusals atomic.Int64
	for _, path := range []string{"/metrics", "/status", "/healthz", "/breakpoints", "/waiters"} {
		workers.Add(1)
		go func(path string) {
			defer workers.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					return // listener gone: drain completed under us
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if path == "/healthz" && resp.StatusCode == http.StatusServiceUnavailable {
					drainRefusals.Add(1)
				}
			}
		}(path)
	}
	// One live stream subscriber: Shutdown must not wait forever on it
	// (main bounds the drain and falls back to Close).
	workers.Add(1)
	go func() {
		defer workers.Done()
		resp, err := http.Get(base + "/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 256)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return
			}
		}
	}()
	// Keep records flowing onto the bus during the whole drain.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			d.e.RecordIncident(guard.KindStall, "drain.bp", uint64(i), "drain load")
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the load loops get going

	// main's drain order.
	d.draining.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for drainRefusals.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if drainRefusals.Load() == 0 {
		t.Error("no /healthz 503 observed while draining with admin intake still open")
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		srv.Close()
	}
	d.px.Close()
	d.hosts.StopAll()
	d.sup.Stop()
	close(stopLoad)
	workers.Wait()
	<-serveDone
	for _, h := range d.hosts.Hosts() {
		if h.State() != appboot.StateStopped {
			t.Fatalf("host state %v after drain", h.State())
		}
	}
}

func TestStreamDeliversLiveRecords(t *testing.T) {
	d, ts := startDaemon(t)

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}

	// A request through the proxy with the log-corruption breakpoint
	// names armed produces engine events... the "none" bug arms no
	// breakpoints, so drive the bus directly through the engine instead:
	// a trigger arrival is the canonical record source.
	go d.e.TriggerOutcome(core.NewPredTrigger("stream.bp", nil, nil, nil), true,
		core.Options{Timeout: 5 * time.Millisecond})

	lineCh := make(chan string, 1)
	go func() {
		line, err := bufio.NewReader(resp.Body).ReadString('\n')
		if err == nil {
			lineCh <- line
		}
	}()
	select {
	case line := <-lineCh:
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		if rec["kind"] != "engine-event" || rec["breakpoint"] != "stream.bp" {
			t.Fatalf("stream record = %v", rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no record arrived on the stream")
	}
}
