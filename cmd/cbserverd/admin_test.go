package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/core"
	"cbreak/internal/netchaos"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

// startDaemon boots the full serving stack (engine, supervisor, httpd
// app, transparent chaos proxy, admin mux) on ephemeral ports.
func startDaemon(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	t.Cleanup(sup.Stop)

	app, err := appboot.Start(e, "httpd", "none", 10*time.Millisecond, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Close() })

	px, err := netchaos.Start(app.Addr, netchaos.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	sup.RegisterMetrics(reg)
	reg.WireBus("engine", e.Bus())
	d := &daemon{e: e, sup: sup, reg: reg, app: app, px: px, started: time.Now()}
	d.registerServingMetrics(reg)
	ts := httptest.NewServer(d.mux())
	t.Cleanup(ts.Close)
	return d, ts
}

func get(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func post(t *testing.T, ts *httptest.Server, path string, params url.Values) string {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, params)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// roundtrip drives one request line through the chaos proxy to the app.
func roundtrip(t *testing.T, addr, req string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(conn, "%s\n", req)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("roundtrip %q: %v", req, err)
	}
	return strings.TrimSpace(line)
}

func TestAdminSurface(t *testing.T) {
	d, ts := startDaemon(t)

	if got := get(t, ts, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz = %q", got)
	}

	// One real request through the proxy, so serving counters move.
	if resp := roundtrip(t, d.px.Addr(), "GET /page/1"); !strings.HasPrefix(resp, "200 ") {
		t.Fatalf("proxied request = %q", resp)
	}

	metrics := get(t, ts, "/metrics")
	for _, want := range []string{
		"cbreak_engine_enabled 1",
		"cbreak_uptime_seconds",
		"cbreak_proxy_connections_total 1",
		`cbreak_app_served_requests_total{app="httpd"} 1`,
		"# TYPE cbreak_bus_records_total counter",
		`cbreak_bus_dropped_total{bus="engine"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	var status map[string]any
	if err := json.Unmarshal([]byte(get(t, ts, "/status")), &status); err != nil {
		t.Fatal(err)
	}
	if status["app"] != "httpd" || status["served"].(float64) < 1 {
		t.Fatalf("status = %v", status)
	}

	// Live toggle: disable, observe in /breakpoints and /metrics,
	// re-enable — no restart anywhere.
	post(t, ts, "/breakpoints/toggle", url.Values{"name": {"live.bp"}, "enabled": {"false"}})
	if d.e.BreakpointEnabled("live.bp") {
		t.Fatal("toggle did not disable the breakpoint")
	}
	if bps := get(t, ts, "/breakpoints"); !strings.Contains(bps, `"Name": "live.bp"`) {
		t.Errorf("breakpoints listing missing toggled name: %s", bps)
	}
	if m := get(t, ts, "/metrics"); !strings.Contains(m, `cbreak_bp_enabled{breakpoint="live.bp"} 0`) {
		t.Error("metrics do not show the disabled breakpoint")
	}
	post(t, ts, "/breakpoints/toggle", url.Values{"name": {"live.bp"}, "enabled": {"true"}})
	if !d.e.BreakpointEnabled("live.bp") {
		t.Fatal("toggle did not re-enable the breakpoint")
	}

	// Live tuning lands in the engine and the exposition.
	post(t, ts, "/tune/overload", url.Values{"high-water": {"64"}, "soft-water": {"16"}})
	if ov, ok := d.e.Overload(); !ok || ov.GlobalHighWater != 64 || ov.SoftWater != 16 {
		t.Fatalf("overload tune not applied: %+v ok=%v", ov, ok)
	}
	if m := get(t, ts, "/metrics"); !strings.Contains(m, "cbreak_overload_global_high_water 64") {
		t.Error("tuned high-water mark not exposed")
	}
	post(t, ts, "/tune/overload", url.Values{"clear": {"true"}})
	if _, ok := d.e.Overload(); ok {
		t.Fatal("overload clear not applied")
	}
	post(t, ts, "/tune/breaker", url.Values{"timeout-rate": {"0.5"}, "min-samples": {"4"}})

	// Releasing a goroutine that is not postponed reports false.
	out := post(t, ts, "/release", url.Values{"breakpoint": {"live.bp"}, "gid": {"12345"}})
	if !strings.Contains(out, `"released": false`) {
		t.Fatalf("bogus release = %s", out)
	}

	get(t, ts, "/waiters")
	get(t, ts, "/incidents")
	get(t, ts, "/reports")
}

func TestStreamDeliversLiveRecords(t *testing.T) {
	d, ts := startDaemon(t)

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}

	// A request through the proxy with the log-corruption breakpoint
	// names armed produces engine events... the "none" bug arms no
	// breakpoints, so drive the bus directly through the engine instead:
	// a trigger arrival is the canonical record source.
	go d.e.TriggerOutcome(core.NewPredTrigger("stream.bp", nil, nil, nil), true,
		core.Options{Timeout: 5 * time.Millisecond})

	lineCh := make(chan string, 1)
	go func() {
		line, err := bufio.NewReader(resp.Body).ReadString('\n')
		if err == nil {
			lineCh <- line
		}
	}()
	select {
	case line := <-lineCh:
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		if rec["kind"] != "engine-event" || rec["breakpoint"] != "stream.bp" {
			t.Fatalf("stream record = %v", rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no record arrived on the stream")
	}
}
