package harness

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func fakeRun(status appkit.Status, hit bool, d time.Duration) RunFunc {
	return func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
		return appkit.Result{Status: status, BPHit: hit, Elapsed: d}
	}
}

func TestMeasureAggregates(t *testing.T) {
	m := Measure(4, true, time.Millisecond, fakeRun(appkit.Stall, true, 10*time.Millisecond))
	if m.Runs != 4 || m.Buggy != 4 || m.BPHits != 4 {
		t.Fatalf("m = %+v", m)
	}
	if m.Probability() != 1 || m.HitRate() != 1 {
		t.Fatalf("prob=%v hit=%v", m.Probability(), m.HitRate())
	}
	if m.MeanTimeToError != 10*time.Millisecond {
		t.Fatalf("MTTE = %v", m.MeanTimeToError)
	}
	if m.DominantError() != "stall" {
		t.Fatalf("DominantError = %q", m.DominantError())
	}
}

func TestMeasureOKRuns(t *testing.T) {
	m := Measure(3, false, time.Millisecond, fakeRun(appkit.OK, false, time.Millisecond))
	if m.Buggy != 0 || m.Probability() != 0 || m.DominantError() != "" {
		t.Fatalf("m = %+v", m)
	}
	if m.MeanTimeToError != 0 {
		t.Fatalf("MTTE for clean runs = %v", m.MeanTimeToError)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(100*time.Millisecond, 150*time.Millisecond); got != 50 {
		t.Fatalf("Overhead = %v", got)
	}
	if got := Overhead(0, time.Second); got != 0 {
		t.Fatalf("Overhead with zero base = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Headers: []string{"A", "Bee"},
		Rows:    [][]string{{"x", "y"}, {"longer", "z"}},
	}
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "longer") {
		t.Fatalf("render:\n%s", out)
	}
	// Title, header, separator, and two data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestCountLoC(t *testing.T) {
	n := CountLoC(".")
	if n < 100 {
		t.Fatalf("CountLoC(.) = %d, suspiciously small", n)
	}
	if CountLoC("/nonexistent-path-xyz") != 0 {
		t.Fatal("missing dir should count 0")
	}
}

func TestTable1RowsComplete(t *testing.T) {
	// 33 rows: 31 distinct breakpoints plus the two pause-time repeat
	// rows (hedc race1 and swing deadlock1 appear at two waits), as in
	// the paper's table.
	rows := Table1Rows()
	if len(rows) != 33 {
		t.Fatalf("Table 1 rows = %d, want 33", len(rows))
	}
	benchmarks := map[string]bool{}
	for _, r := range rows {
		benchmarks[r.Benchmark] = true
		if r.Run == nil {
			t.Fatalf("row %s/%s has no runner", r.Benchmark, r.BugLabel)
		}
	}
	for _, want := range []string{"cache4j", "hedc", "jigsaw", "log4j", "logging", "lucene",
		"moldyn", "montecarlo", "pool", "raytracer", "stringbuffer", "swing",
		"synchronizedList", "synchronizedMap", "synchronizedSet"} {
		if !benchmarks[want] {
			t.Errorf("benchmark %s missing from Table 1", want)
		}
	}
}

func TestTable2RowsComplete(t *testing.T) {
	rows := Table2Rows()
	if len(rows) != 7 {
		t.Fatalf("Table 2 rows = %d, want 7", len(rows))
	}
	totalCBRs := 0
	for _, r := range rows {
		totalCBRs += r.CBRs
	}
	if totalCBRs != 13 {
		t.Fatalf("total CBRs = %d, want 13 (2+1+3+2+1+3+1)", totalCBRs)
	}
}

// TestSmokeSmallTables runs each generator with a tiny run count to keep
// the suite fast while still exercising every measurement path
// end-to-end.
func TestSmokeSmallTables(t *testing.T) {
	if testing.Short() {
		t.Skip("table smoke test is slow")
	}
	t2 := Table2(1)
	if len(t2.Rows) != 7 {
		t.Fatalf("Table2 rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row[4] != "1/1" {
			t.Errorf("Table2 %s did not reproduce: %v", row[0], row)
		}
	}
	model := ModelTable(2000, 2)
	if len(model.Rows) != 10 {
		t.Fatalf("ModelTable rows = %d", len(model.Rows))
	}
	out := model.Render()
	if !strings.Contains(out, "improvement factor") {
		t.Fatalf("model table:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Headers: []string{"A", "B"},
		Rows:    [][]string{{"plain", `quote"y`}, {"comma,cell", "z"}},
	}
	got := tb.CSV()
	want := "A,B\nplain,\"quote\"\"y\"\n\"comma,cell\",z\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}
