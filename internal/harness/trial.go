package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

// engineObserver holds the optional per-trial engine hook (see
// SetTrialEngineObserver).
var engineObserver atomic.Pointer[func(e *core.Engine, spec TrialSpec)]

// SetTrialEngineObserver installs a process-wide hook invoked with
// every freshly created trial engine before the trial body runs, or
// removes it with nil. Trials create their engines internally (one
// fresh engine per trial, so no state leaks between trials); the
// observer is how cross-cutting instrumentation — notably a durable
// event/incident sink (core.Engine.SetDurableSink with a
// journal/sink.Sink) — reaches them. Safe to swap concurrently with
// running trials; each trial sees the hook installed at its start.
func SetTrialEngineObserver(f func(e *core.Engine, spec TrialSpec)) {
	if f == nil {
		engineObserver.Store(nil)
		return
	}
	engineObserver.Store(&f)
}

// trialEngine builds the fresh engine for one trial and runs the
// observer hook on it.
func trialEngine(spec TrialSpec) *core.Engine {
	e := core.NewEngine()
	if !spec.Breakpoint {
		e.SetEnabled(false)
	}
	if f := engineObserver.Load(); f != nil {
		(*f)(e, spec)
	}
	return e
}

// TrialKey is the stable address of one measurement configuration: a
// table, a row index within that table's spec list, and a variant
// ("base" = breakpoints disabled, "with" = enabled). Campaign
// supervisors journal trials by key and campaign workers resolve a key
// back to runnable code with ResolveSpec, so a trial can be re-executed
// in a different process than the one that scheduled it.
type TrialKey struct {
	Table   string `json:"table"`
	Row     int    `json:"row"`
	Variant string `json:"variant"`
}

// Trial variants.
const (
	// VariantBase runs with breakpoints disabled (the "Normal" columns).
	VariantBase = "base"
	// VariantWith runs with breakpoints enabled.
	VariantWith = "with"
)

// String formats the key as table/row/variant.
func (k TrialKey) String() string {
	return fmt.Sprintf("%s/%d/%s", k.Table, k.Row, k.Variant)
}

// TrialSpec is one runnable measurement configuration: the key plus the
// resolved in-process runner and its parameters.
type TrialSpec struct {
	// Key addresses the spec across processes.
	Key TrialKey
	// Label is the human-readable benchmark/bug name for logs.
	Label string
	// Runs is how many trials the measurement aggregates.
	Runs int
	// Breakpoint selects whether concurrent breakpoints are inserted.
	Breakpoint bool
	// Timeout is the breakpoint pause time T.
	Timeout time.Duration
	// Run executes one trial (not serialized; workers re-resolve it).
	Run RunFunc
}

// TrialOutcome is the full record of one executed trial: the
// application result plus the engine's observability snapshots, so
// journaled campaign output doubles as a hardening artifact.
type TrialOutcome struct {
	// Result is the application outcome.
	Result appkit.Result `json:"result"`
	// BPWait is the trial's total time spent postponed at breakpoints.
	BPWait time.Duration `json:"bp_wait_ns"`
	// Stats holds the per-breakpoint counter snapshots at trial end.
	Stats []core.StatsSnapshot `json:"stats,omitempty"`
	// Incidents holds the guard incident totals (panics, stalls,
	// watchdog releases, breaker transitions) keyed by kind label.
	Incidents map[string]int64 `json:"incidents,omitempty"`
	// Cycles holds the wait-graph supervisor's confirmed findings for
	// the trial — deadlock cycles and postponement stalls, each naming
	// the goroutines, locks, classes, sites, and breakpoints involved.
	// Campaign journals embed the full outcome, so a deadlocked trial's
	// checkpoint record carries its own diagnosis.
	Cycles []waitgraph.Report `json:"cycles,omitempty"`
}

// outcomeFrom snapshots the engine's counters around a finished (or
// abandoned) trial. Snapshots are atomic, so reading them while an
// abandoned trial goroutine still runs is safe.
func outcomeFrom(e *core.Engine, sup *waitgraph.Supervisor, res appkit.Result) TrialOutcome {
	out := TrialOutcome{Result: res, Stats: e.SnapshotAll(), Incidents: e.IncidentCounts()}
	if sup != nil {
		out.Cycles = sup.Reports()
	}
	for _, s := range out.Stats {
		out.BPWait += s.TotalWait
	}
	return out
}

// PublishOutcome publishes one executed trial's outcome on the
// process-wide telemetry bus (telemetry.Default() — trial outcomes
// outlive any single trial engine, so they do not ride an engine bus).
// RunTrial/RunTrialCtx publish their own outcomes with attempts=0; the
// campaign supervisor publishes at its journal site with the real retry
// count (its workers run in subprocesses, so the two publishes land on
// different processes' buses and never double-count).
func PublishOutcome(key TrialKey, out TrialOutcome, attempts int) {
	telemetry.Default().Publish(telemetry.Record{Kind: telemetry.RecordTrial,
		Trial: telemetry.Trial{
			When: time.Now(), Table: key.Table, Row: key.Row, Variant: key.Variant,
			Status: out.Result.Status.String(), Attempts: attempts,
			Elapsed: out.Result.Elapsed, Wait: out.BPWait,
		}})
}

// trialSupervisor starts the per-trial wait-graph supervisor. Every
// trial gets one: a confirmed application deadlock classifies the trial
// as a stall in milliseconds instead of waiting out the app's own stall
// deadline (or the per-trial wall clock), and a confirmed postponement
// stall is healed through the engine's shared forced-release path.
func trialSupervisor(e *core.Engine) *waitgraph.Supervisor {
	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	return sup
}

// confirmedStall builds the early-exit result for a wait-graph deadlock
// confirmation, naming the cycle in the detail.
func confirmedStall(sup *waitgraph.Supervisor, elapsed time.Duration) appkit.Result {
	detail := "wait-graph deadlock confirmed"
	for _, r := range sup.Reports() {
		if r.Kind == waitgraph.ReportDeadlock {
			detail = "wait-graph deadlock confirmed: " + r.Desc
			break
		}
	}
	return appkit.Result{Status: appkit.Stall, Detail: detail, Elapsed: elapsed}
}

// RunTrial executes one trial of the spec on a fresh engine with no
// deadline. The trial body runs on its own goroutine WITHOUT a recover
// wrapper: a panicking trial still crashes the worker process (the
// campaign supervisor's WorkerCrash classification depends on that),
// while the calling goroutine stays free to classify a confirmed
// deadlock early instead of blocking forever on the wedged trial.
func RunTrial(spec TrialSpec) TrialOutcome {
	e := trialEngine(spec)
	sup := trialSupervisor(e)
	defer sup.Stop()
	start := time.Now()
	done := make(chan appkit.Result, 1)
	go func() { done <- spec.Run(e, spec.Breakpoint, spec.Timeout) }()
	var out TrialOutcome
	select {
	case res := <-done:
		out = outcomeFrom(e, sup, res)
	case <-sup.Confirmed():
		out = outcomeFrom(e, sup, confirmedStall(sup, time.Since(start)))
	}
	PublishOutcome(spec.Key, out, 0)
	return out
}

// RunTrialCtx executes one trial with a hard per-trial wall-clock
// deadline (0 = unbounded) and context cancellation. The trial runs on
// its own goroutine; if the deadline expires or ctx is cancelled first,
// the goroutine is abandoned — exactly how appkit.RunWithDeadline
// detects stalls — and the trial reports appkit.TrialTimeout with
// best-effort engine snapshots. This is the in-process answer to a
// RunFunc that hangs: Measure no longer blocks forever on it. A
// wait-graph deadlock confirmation short-circuits the same way, but as
// an application Stall carrying the cycle diagnosis.
func RunTrialCtx(ctx context.Context, deadline time.Duration, spec TrialSpec) TrialOutcome {
	e := trialEngine(spec)
	sup := trialSupervisor(e)
	defer sup.Stop()
	start := time.Now()
	done := make(chan appkit.Result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- appkit.Result{Status: appkit.Exception, Detail: fmt.Sprint(p), Elapsed: time.Since(start)}
			}
		}()
		done <- spec.Run(e, spec.Breakpoint, spec.Timeout)
	}()
	var expire <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		expire = t.C
	}
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	var res appkit.Result
	select {
	case res = <-done:
	case <-sup.Confirmed():
		res = confirmedStall(sup, time.Since(start))
	case <-expire:
		res = appkit.Result{Status: appkit.TrialTimeout,
			Detail: fmt.Sprintf("trial exceeded %s deadline", deadline), Elapsed: deadline}
	case <-cancelled:
		res = appkit.Result{Status: appkit.TrialTimeout,
			Detail: "trial cancelled: " + ctx.Err().Error(), Elapsed: time.Since(start)}
	}
	out := outcomeFrom(e, sup, res)
	PublishOutcome(spec.Key, out, 0)
	return out
}

// TrialSeed derives the deterministic per-trial seed from the campaign
// seed and the trial's address, so trial N of a spec draws the same
// jitter stream whether it runs in-process, in a worker, first time or
// on a -resume.
func TrialSeed(campaignSeed int64, key TrialKey, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, trial)
	return campaignSeed ^ int64(h.Sum64())
}

// Runner executes one measurement configuration (all of spec.Runs
// trials) and aggregates it. Table generators take a Runner so the same
// rendering code serves the classic in-process path and the supervised
// subprocess campaigns of internal/campaign.
type Runner func(spec TrialSpec) Measurement

// InProcess returns the default Runner: trials execute in this process,
// each bounded by the per-trial deadline (0 = unbounded). A non-zero
// seed reseeds the appkit jitter stream with each trial's TrialSeed, so
// an in-process run is trial-for-trial comparable with a supervised
// campaign using the same seed.
func InProcess(ctx context.Context, deadline time.Duration, seed int64) Runner {
	return func(spec TrialSpec) Measurement {
		outs := make([]TrialOutcome, 0, spec.Runs)
		for i := 0; i < spec.Runs; i++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			if seed != 0 {
				appkit.SeedJitter(TrialSeed(seed, spec.Key, i))
			}
			outs = append(outs, RunTrialCtx(ctx, deadline, spec))
		}
		return Aggregate(outs)
	}
}
