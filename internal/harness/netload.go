package harness

import (
	"fmt"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/httpd"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/netchaos"
)

// This file is the network-chaos trial family: the httpd and mysql
// reproductions promoted to real socket servers, driven by concurrent
// retrying load clients through the netchaos fault-injecting proxy.
// The classification discipline is the whole point of the rows:
// application verdicts (log corruption, a wait-graph-confirmed
// deadlock) must survive the proxy's injected faults, while the faults
// themselves surface only as net-fault-injected guard incidents and
// client retries — never as an application outcome.
//
// Every chaos source descends from the trial seed: the proxy's fault
// schedule and each client's retry jitter are seeded from the appkit
// jitter stream, so a seeded trial replays its fault schedule and its
// retry timing exactly.

// recordNetFaults forwards every injected proxy fault to the engine's
// incident log as a net-fault-injected record: visible, attributable
// infrastructure noise, segregated from application verdicts.
func recordNetFaults(e *core.Engine) func(netchaos.FaultEvent) {
	return func(ev netchaos.FaultEvent) {
		e.RecordIncident(guard.KindNetFault, "netchaos."+ev.Kind.String(), 0, ev.String())
	}
}

// startFail reports a server or proxy that failed to come up — an
// infrastructure failure, deliberately not a bug verdict.
func startFail(stage string, err error) appkit.Result {
	return appkit.Result{Status: appkit.TestFail, Detail: stage + ": " + err.Error()}
}

// netHTTPDCorruption runs the Apache #25520 log-corruption race over
// real sockets: eight concurrent clients (mixed connection parity = the
// two racing worker identities) through a proxy injecting latency and
// connection resets. Corruption is judged server-side from the access
// log; client-visible transport failures only mark the run degraded.
func netHTTPDCorruption(e *core.Engine, bp bool, to time.Duration) appkit.Result {
	ns, err := httpd.StartNet(
		httpd.Config{Engine: e, Bug: httpd.LogCorruption, Breakpoint: bp, Timeout: to},
		httpd.NetConfig{ConnTimeout: 5 * time.Second, DrainTimeout: time.Second})
	if err != nil {
		return startFail("httpd start", err)
	}
	defer ns.Close()
	px, err := netchaos.Start(ns.Addr(), netchaos.Config{
		Seed: appkit.JitterSeed(),
		Faults: netchaos.Faults{
			Latency:       200 * time.Microsecond,
			LatencyJitter: 300 * time.Microsecond,
			ResetRate:     0.15,
		},
		OnFault: recordNetFaults(e),
	})
	if err != nil {
		return startFail("proxy start", err)
	}
	defer px.Close()

	rep := netchaos.RunLoad(netchaos.LoadConfig{
		Addr:    px.Addr(),
		Seed:    appkit.JitterSeed(),
		Clients: 8, Requests: 6,
		MakeRequest: func(client, request int) string {
			return fmt.Sprintf("GET /page/%d", client*100+request)
		},
		Client: netchaos.ClientConfig{
			Attempts: 3, AttemptTimeout: time.Second,
			RequestTimeout: 4 * time.Second, Backoff: 2 * time.Millisecond,
		},
	})

	res := appkit.Result{Status: appkit.OK}
	intact, _ := ns.LogLines()
	if served := ns.HandledCount(); int64(intact) < served {
		res = appkit.Result{Status: appkit.LogCorrupt,
			Detail: fmt.Sprintf("only %d/%d log lines intact under chaos", intact, served)}
	} else if rep.Degraded() {
		res.Detail = "degraded: " + rep.String()
	}
	res.BPHit = e.Stats(httpd.BPLogOffset).Hits() > 0
	return res
}

// netMySQLDeadlock runs the FLUSH-vs-DML lock-order deadlock over real
// sockets behind chaos (latency, resets, and one mid-run partition).
// Three INSERT clients and three FLUSH clients race with retries, so a
// reset that eats one protagonist's statement is survived by the next
// attempt; once a pair rendezvous, the crossing lock orders wedge the
// handlers server-side. The wait-graph supervisor watching the trial
// engine confirms the cycle (RunTrial classifies on its channel); the
// direct probe below is the in-row fallback so even a supervisor-less
// runner reports Stall, never OK, for a wedged server.
func netMySQLDeadlock(e *core.Engine, bp bool, to time.Duration) appkit.Result {
	ns, err := mysql.StartNet(
		mysql.Config{Engine: e, Bug: mysql.Deadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline},
		mysql.NetConfig{ConnTimeout: 5 * time.Second, DrainTimeout: 500 * time.Millisecond})
	if err != nil {
		return startFail("mysql start", err)
	}
	defer ns.Close()
	px, err := netchaos.Start(ns.Addr(), netchaos.Config{
		Seed: appkit.JitterSeed(),
		Faults: netchaos.Faults{
			Latency:       200 * time.Microsecond,
			LatencyJitter: 300 * time.Microsecond,
			ResetRate:     0.1,
			PartitionAt:   13, PartitionFor: 3,
		},
		OnFault: recordNetFaults(e),
	})
	if err != nil {
		return startFail("proxy start", err)
	}
	defer px.Close()

	res := appkit.RunWithDeadline(10*time.Second, func() appkit.Result {
		// Background SELECT traffic keeps the proxy busy (and, once the
		// deadlock forms, piles harmlessly behind the catalog lock until
		// its request timeouts fire — infra failures, retried and then
		// shed, never a verdict).
		bgDone := make(chan netchaos.LoadReport, 1)
		go func() {
			bgDone <- netchaos.RunLoad(netchaos.LoadConfig{
				Addr:    px.Addr(),
				Seed:    appkit.JitterSeed(),
				Clients: 4, Requests: 3,
				MakeRequest: func(int, int) string { return "SELECT COUNT(*) FROM t1" },
				Client: netchaos.ClientConfig{
					Attempts: 2, AttemptTimeout: 300 * time.Millisecond,
					RequestTimeout: time.Second, Backoff: 2 * time.Millisecond,
				},
			})
		}()

		protagonist := netchaos.ClientConfig{
			Attempts: 3, AttemptTimeout: 500 * time.Millisecond,
			RequestTimeout: 2 * time.Second, Backoff: 2 * time.Millisecond,
		}
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			for _, stmt := range []string{"INSERT INTO t1 VALUES ('net')", "FLUSH LOGS"} {
				wg.Add(1)
				go func(ord int, stmt string) {
					defer wg.Done()
					ccfg := protagonist
					ccfg.Addr = px.Addr()
					ccfg.Seed = appkit.DeriveSeed(appkit.JitterSeed(), int64(ord))
					netchaos.NewClient(ccfg).Do(stmt)
				}(i, stmt)
			}
		}
		wg.Wait()
		bg := <-bgDone

		// Wedge probe, direct to the server (no proxy): with the catalog
		// lock held across a blocked binlog append, a SELECT cannot
		// complete — a timeout here is the deadlock, not the network.
		probe := netchaos.NewClient(netchaos.ClientConfig{
			Addr: ns.Addr(), Seed: appkit.JitterSeed(),
			Attempts: 1, AttemptTimeout: 300 * time.Millisecond,
			RequestTimeout: 300 * time.Millisecond,
		})
		if _, err := probe.Do("SELECT COUNT(*) FROM t1"); err != nil {
			return appkit.Result{Status: appkit.Stall,
				Detail: "socket probe wedged behind FLUSH-vs-DML locks: " + err.Error()}
		}
		res := appkit.Result{Status: appkit.OK}
		if bg.Degraded() {
			res.Detail = "degraded: " + bg.String()
		}
		return res
	})
	res.BPHit = e.Stats(mysql.BPDeadlock).Hits() > 0
	return res
}

// netHTTPDDegradation is the graceful-degradation row: the httpd socket
// server with no bug armed, behind the full fault mix (latency, resets,
// truncation, half-open drops, throttling, slow-loris, and a
// partition). The application verdict must stay OK — every failure is
// absorbed by retries, budgets, and fail-fast — and only a total outage
// (zero completed requests) fails the row.
func netHTTPDDegradation(e *core.Engine, _ bool, to time.Duration) appkit.Result {
	// Breakpoints deliberately unarmed: this row measures the transport
	// discipline, so any non-OK outcome would be a misclassified
	// infrastructure fault.
	ns, err := httpd.StartNet(
		httpd.Config{Engine: e, Bug: httpd.LogCorruption, Breakpoint: false, Timeout: to},
		httpd.NetConfig{ConnTimeout: 5 * time.Second, DrainTimeout: time.Second})
	if err != nil {
		return startFail("httpd start", err)
	}
	defer ns.Close()
	px, err := netchaos.Start(ns.Addr(), netchaos.Config{
		Seed: appkit.JitterSeed(),
		Faults: netchaos.Faults{
			Latency:       300 * time.Microsecond,
			LatencyJitter: 500 * time.Microsecond,
			ResetRate:     0.12,
			TruncateRate:  0.10,
			HalfOpenRate:  0.08,
			ThrottleRate:  0.10,
			ThrottleBps:   8 << 10,
			SlowLorisRate: 0.08,
			PartitionAt:   30, PartitionFor: 4,
		},
		OnFault: recordNetFaults(e),
	})
	if err != nil {
		return startFail("proxy start", err)
	}
	defer px.Close()

	rep := netchaos.RunLoad(netchaos.LoadConfig{
		Addr:    px.Addr(),
		Seed:    appkit.JitterSeed(),
		Clients: 12, Requests: 4,
		MakeRequest: func(client, request int) string {
			return fmt.Sprintf("GET /page/%d", client*100+request)
		},
		Client: netchaos.ClientConfig{
			Attempts: 3, AttemptTimeout: 400 * time.Millisecond,
			RequestTimeout: 1500 * time.Millisecond, Backoff: 2 * time.Millisecond,
			RetryBudget: 24,
		},
	})
	if rep.Stats.OK == 0 {
		return appkit.Result{Status: appkit.TestFail,
			Detail: "total outage under chaos: " + rep.String()}
	}
	res := appkit.Result{Status: appkit.OK, Detail: rep.String()}
	if rep.Degraded() {
		res.Detail = "degraded: " + rep.String()
	}
	return res
}

// NetLoadRows returns the network-chaos row specs. Row indices are
// campaign checkpoint keys: new rows only ever go at the end.
func NetLoadRows() []RowSpec {
	return []RowSpec{
		{Benchmark: "httpd (socket)", BugLabel: "log corruption",
			Comments: "chaos: latency+resets", Run: netHTTPDCorruption},
		{Benchmark: "mysql (socket)", BugLabel: "deadlock",
			Comments: "chaos: latency+resets+partition", Run: netMySQLDeadlock},
		{Benchmark: "httpd (socket)", BugLabel: "degradation",
			Comments: "chaos: full fault mix, no bug armed", Run: netHTTPDDegradation},
	}
}

// netloadSpecs returns the addressable trial specs of the netload
// table: one breakpoint-armed measurement per row (the degradation row
// ignores the flag — it never arms triggers).
func netloadSpecs(runs int) []TrialSpec {
	rows := NetLoadRows()
	specs := make([]TrialSpec, 0, len(rows))
	for i, row := range rows {
		timeout := row.Timeout
		if timeout == 0 {
			timeout = ShortPause
		}
		specs = append(specs, TrialSpec{
			Key:   TrialKey{Table: "netload", Row: i, Variant: VariantWith},
			Label: row.Benchmark + "/" + row.BugLabel,
			Runs:  runs, Breakpoint: true, Timeout: timeout, Run: row.Run})
	}
	return specs
}

// NetLoadTable measures the chaos rows with the default runner.
func NetLoadTable(runs int) Table { return NetLoadTableWith(runs, defaultRunner()) }

// NetLoadTableWith is NetLoadTable with a pluggable trial runner.
func NetLoadTableWith(runs int, run Runner) Table {
	t := Table{
		Title:   "Network chaos: socket servers under fault injection",
		Headers: []string{"Benchmark", "Error", "MTTE(s)", "Reproduced", "Comments"},
	}
	specs := netloadSpecs(runs)
	for i, row := range NetLoadRows() {
		m := run(specs[i])
		t.Rows = append(t.Rows, []string{
			partialMark(row.Benchmark, m),
			row.BugLabel,
			fmtDur(m.MeanTimeToError),
			fmt.Sprintf("%d/%d", m.Buggy, m.Completed),
			row.Comments,
		})
	}
	return t
}
