package harness

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/core"
	"cbreak/internal/waitgraph"
)

func TestRunTrialCtxDeadlineAbandonsHungTrial(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	spec := TrialSpec{
		Key: TrialKey{Table: "test", Row: 0, Variant: VariantWith},
		Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			<-hang
			return appkit.Result{Status: appkit.OK}
		},
	}
	start := time.Now()
	out := RunTrialCtx(context.Background(), 30*time.Millisecond, spec)
	if out.Result.Status != appkit.TrialTimeout {
		t.Fatalf("status = %v, want TrialTimeout", out.Result.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

func TestRunTrialCtxCancellation(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunTrialCtx(ctx, 0, TrialSpec{
		Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			<-hang
			return appkit.Result{Status: appkit.OK}
		},
	})
	if out.Result.Status != appkit.TrialTimeout {
		t.Fatalf("status = %v, want TrialTimeout on cancellation", out.Result.Status)
	}
}

func TestMeasureCtxDeadlineProducesPartialMeasurement(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	var calls atomic.Int32
	m := MeasureCtx(context.Background(), 20*time.Millisecond, 3, true, time.Millisecond,
		func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			if calls.Add(1) == 2 {
				<-hang // trial 2 hangs; the deadline must rescue Measure
			}
			return appkit.Result{Status: appkit.TestFail, Elapsed: time.Millisecond, BPHit: true}
		})
	if m.Completed != 2 || m.InfraFailures != 1 {
		t.Fatalf("completed/infra = %d/%d, want 2/1 (m=%+v)", m.Completed, m.InfraFailures, m)
	}
	if m.Statuses[appkit.TrialTimeout] != 1 {
		t.Fatalf("statuses = %v", m.Statuses)
	}
	if !m.Partial() {
		t.Fatal("a measurement with a timed-out trial must report Partial")
	}
}

func TestAggregateExcludesInfrastructureFailures(t *testing.T) {
	outs := []TrialOutcome{
		{Result: appkit.Result{Status: appkit.TestFail, Elapsed: 10 * time.Millisecond, BPHit: true}, BPWait: time.Millisecond},
		{Result: appkit.Result{Status: appkit.TrialTimeout, Elapsed: time.Hour}},
		{Result: appkit.Result{Status: appkit.WorkerCrash}},
		{Result: appkit.Result{Status: appkit.OK, Elapsed: 20 * time.Millisecond}},
	}
	m := Aggregate(outs)
	if m.Runs != 4 || m.Completed != 2 || m.InfraFailures != 2 {
		t.Fatalf("runs/completed/infra = %d/%d/%d", m.Runs, m.Completed, m.InfraFailures)
	}
	if m.Buggy != 1 {
		t.Fatalf("buggy = %d, want 1 (infra failures are not bugs)", m.Buggy)
	}
	// The hour-long "elapsed" of the killed trial must not pollute timing.
	if m.MeanTime != 15*time.Millisecond {
		t.Fatalf("mean time = %v, want 15ms over completed trials only", m.MeanTime)
	}
	if m.Probability() != 0.5 || m.HitRate() != 0.5 {
		t.Fatalf("probability/hitrate = %v/%v, want 0.5/0.5", m.Probability(), m.HitRate())
	}
	if !m.Partial() {
		t.Fatal("want Partial: 2 of 4 scheduled trials completed")
	}
}

// TestRunTrialHandleStatsFlow pins that breakpoints exercised through
// the handle API (core.Engine.Breakpoint) land in the trial outcome's
// stats snapshots exactly like string-keyed arrivals do.
func TestRunTrialHandleStatsFlow(t *testing.T) {
	spec := TrialSpec{
		Key:        TrialKey{Table: "test", Row: 1, Variant: VariantWith},
		Breakpoint: true,
		Timeout:    2 * time.Second,
		Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			h := e.Breakpoint("h.trial")
			obj := new(int)
			done := make(chan bool, 1)
			go func() {
				done <- h.Trigger(core.NewConflictTrigger("h.trial", obj), false, core.Options{Timeout: to})
			}()
			hit := h.Trigger(core.NewConflictTrigger("h.trial", obj), true, core.Options{Timeout: to})
			return appkit.Result{Status: appkit.OK, BPHit: hit && <-done}
		},
	}
	out := RunTrial(spec)
	if !out.Result.BPHit {
		t.Fatal("handle rendezvous missed inside trial")
	}
	var snap *core.StatsSnapshot
	for i := range out.Stats {
		if out.Stats[i].Name == "h.trial" {
			snap = &out.Stats[i]
		}
	}
	if snap == nil {
		t.Fatalf("handle-registered breakpoint absent from outcome stats: %+v", out.Stats)
	}
	if snap.Hits != 1 || snap.Arrivals != 2 {
		t.Fatalf("outcome stats hits/arrivals = %d/%d, want 1/2", snap.Hits, snap.Arrivals)
	}
}

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	k1 := TrialKey{Table: "1", Row: 0, Variant: VariantWith}
	k2 := TrialKey{Table: "1", Row: 0, Variant: VariantBase}
	if TrialSeed(7, k1, 3) != TrialSeed(7, k1, 3) {
		t.Fatal("TrialSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, k := range []TrialKey{k1, k2} {
		for trial := 0; trial < 10; trial++ {
			s := TrialSeed(7, k, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s#%d and %s", k, trial, prev)
			}
			seen[s] = k.String()
		}
	}
	if TrialSeed(7, k1, 0) == TrialSeed(8, k1, 0) {
		t.Fatal("campaign seed does not influence trial seed")
	}
}

func TestResolveSpecRoundTripsAllTables(t *testing.T) {
	for _, table := range []string{"1", "2", "log4j", "pause", "precision", "model"} {
		specs := TableSpecs(table, 1)
		if len(specs) == 0 {
			t.Fatalf("table %s has no specs", table)
		}
		for _, spec := range specs {
			got, ok := ResolveSpec(spec.Key)
			if !ok {
				t.Fatalf("ResolveSpec(%s) not found", spec.Key)
			}
			if got.Key != spec.Key || got.Label != spec.Label ||
				got.Breakpoint != spec.Breakpoint || got.Timeout != spec.Timeout {
				t.Fatalf("ResolveSpec(%s) = %+v, want %+v", spec.Key, got, spec)
			}
			if got.Run == nil {
				t.Fatalf("ResolveSpec(%s) has no Run", spec.Key)
			}
		}
	}
	if _, ok := ResolveSpec(TrialKey{Table: "nope", Row: 0, Variant: VariantWith}); ok {
		t.Fatal("unknown table resolved")
	}
}

func TestTableSpecsKeysAreUnique(t *testing.T) {
	seen := map[TrialKey]bool{}
	for _, table := range []string{"1", "2", "log4j", "pause", "precision", "model"} {
		for _, spec := range TableSpecs(table, 1) {
			if seen[spec.Key] {
				t.Fatalf("duplicate trial key %s", spec.Key)
			}
			seen[spec.Key] = true
			if spec.Key.Table != table {
				t.Fatalf("spec key %s filed under table %s", spec.Key, table)
			}
		}
	}
}

func TestQuarantinedRowRendersPartialMarker(t *testing.T) {
	// A fake Runner quarantines every "with" variant; the rendered rows
	// must carry the explicit partial-data marker.
	run := func(spec TrialSpec) Measurement {
		m := Measurement{Runs: spec.Runs}
		if spec.Key.Variant == VariantWith {
			m.Quarantined = true
			m.InfraFailures = spec.Runs
			m.Statuses = map[appkit.Status]int{appkit.WorkerCrash: spec.Runs}
		} else {
			m.Completed = spec.Runs
			m.MeanTime = time.Millisecond
			m.Statuses = map[appkit.Status]int{appkit.OK: spec.Runs}
		}
		return m
	}
	tbl := Table1With(2, run)
	text := tbl.Render()
	if !strings.Contains(text, "(partial)") {
		t.Fatalf("quarantined rows missing partial marker:\n%s", text)
	}
}

// The per-trial wait-graph supervisor must classify a confirmed
// application deadlock in milliseconds — long before the app's own
// stall deadline or the per-trial wall clock — and the journaled
// outcome must carry the cycle diagnosis through a JSON round-trip.
func TestRunTrialCtxConfirmsDeadlockEarly(t *testing.T) {
	spec := TrialSpec{
		Key:        TrialKey{Table: "test", Row: 0, Variant: VariantWith},
		Label:      "mysql/deadlock",
		Breakpoint: true,
		Timeout:    2 * time.Second,
		Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			// A 30s in-app stall deadline: only the wait-graph
			// confirmation can classify this trial quickly.
			return mysql.Run(mysql.Config{Engine: e, Bug: mysql.Deadlock,
				Breakpoint: bp, Timeout: to, StallAfter: 30 * time.Second})
		},
	}
	start := time.Now()
	out := RunTrialCtx(context.Background(), 60*time.Second, spec)
	elapsed := time.Since(start)
	if out.Result.Status != appkit.Stall {
		t.Fatalf("status = %v (%s), want Stall", out.Result.Status, out.Result.Detail)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadlock classification took %v", elapsed)
	}
	if !strings.Contains(out.Result.Detail, "wait-graph deadlock confirmed") {
		t.Fatalf("detail = %q", out.Result.Detail)
	}
	var cycle *waitgraph.Report
	for i := range out.Cycles {
		if out.Cycles[i].Kind == waitgraph.ReportDeadlock {
			cycle = &out.Cycles[i]
		}
	}
	if cycle == nil {
		t.Fatalf("no deadlock cycle in outcome: %+v", out.Cycles)
	}
	joined := strings.Join(cycle.Locks, ",")
	if !strings.Contains(joined, "mysql.binlog") || !strings.Contains(joined, "mysql.catalog") {
		t.Fatalf("cycle locks = %v", cycle.Locks)
	}

	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back TrialOutcome
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cycles) != len(out.Cycles) || back.Cycles[0].Desc != out.Cycles[0].Desc {
		t.Fatalf("cycles did not survive the JSON round-trip: %+v", back.Cycles)
	}
}
