package harness

import (
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/fig4"
	"cbreak/internal/apps/log4j"
	"cbreak/internal/core"
)

// This file enumerates every measurement configuration each table runs,
// as addressable TrialSpecs. The table generators in tables.go render
// from these lists, and campaign workers resolve a journaled TrialKey
// back to runnable code with ResolveSpec — the two must agree, which is
// why both are derived from the same builders.

func table1Specs(runs int) []TrialSpec {
	rows := Table1Rows()
	specs := make([]TrialSpec, 0, 2*len(rows))
	for i, row := range rows {
		timeout := row.Timeout
		if timeout == 0 {
			timeout = ShortPause
		}
		label := row.Benchmark + "/" + row.BugLabel
		specs = append(specs,
			TrialSpec{Key: TrialKey{Table: "1", Row: i, Variant: VariantBase}, Label: label,
				Runs: runs, Breakpoint: false, Timeout: timeout, Run: row.Run},
			TrialSpec{Key: TrialKey{Table: "1", Row: i, Variant: VariantWith}, Label: label,
				Runs: runs, Breakpoint: true, Timeout: timeout, Run: row.Run})
	}
	return specs
}

func table2Specs(runs int) []TrialSpec {
	rows := Table2Rows()
	specs := make([]TrialSpec, 0, len(rows))
	for i, row := range rows {
		specs = append(specs, TrialSpec{Key: TrialKey{Table: "2", Row: i, Variant: VariantWith},
			Label: row.Benchmark, Runs: runs, Breakpoint: true, Timeout: ShortPause, Run: row.Run})
	}
	return specs
}

func log4jSpecs(runs int) []TrialSpec {
	pairs := log4j.Section5Pairs()
	specs := make([]TrialSpec, 0, len(pairs))
	for i, pair := range pairs {
		pair := pair
		specs = append(specs, TrialSpec{Key: TrialKey{Table: "log4j", Row: i, Variant: VariantWith},
			Label: "log4j/" + pair.String(), Runs: runs, Breakpoint: true, Timeout: ShortPause,
			Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				return log4j.Run(log4j.Config{Engine: e, Mode: log4j.ModeContention, Pair: pair,
					Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
			}})
	}
	return specs
}

func pauseSpecs(runs int) []TrialSpec {
	points := pauseSweepPoints()
	specs := make([]TrialSpec, 0, len(points))
	for i, pt := range points {
		specs = append(specs, TrialSpec{Key: TrialKey{Table: "pause", Row: i, Variant: VariantWith},
			Label: pt.name, Runs: runs, Breakpoint: true, Timeout: pt.pause, Run: pt.run})
	}
	return specs
}

func precisionSpecs(runs int) []TrialSpec {
	variants := PrecisionVariants()
	specs := make([]TrialSpec, 0, len(variants))
	for i, v := range variants {
		specs = append(specs, TrialSpec{Key: TrialKey{Table: "precision", Row: i, Variant: VariantWith},
			Label: v.Name, Runs: runs, Breakpoint: true, Timeout: ShortPause, Run: v.Run})
	}
	return specs
}

func modelSpecs(runs int) []TrialSpec {
	fig4Run := func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
		return fig4.Run(fig4.Config{Engine: e, Breakpoint: bp, Timeout: to})
	}
	return []TrialSpec{
		{Key: TrialKey{Table: "model", Row: 0, Variant: VariantBase}, Label: "fig4",
			Runs: runs, Breakpoint: false, Timeout: ShortPause, Run: fig4Run},
		{Key: TrialKey{Table: "model", Row: 0, Variant: VariantWith}, Label: "fig4",
			Runs: runs, Breakpoint: true, Timeout: LongPause, Run: fig4Run},
	}
}

// TableSpecs returns every measurement configuration the named table
// runs, in rendering order. Unknown tables return nil.
func TableSpecs(table string, runs int) []TrialSpec {
	switch table {
	case "1":
		return table1Specs(runs)
	case "2":
		return table2Specs(runs)
	case "log4j":
		return log4jSpecs(runs)
	case "pause":
		return pauseSpecs(runs)
	case "precision":
		return precisionSpecs(runs)
	case "model":
		return modelSpecs(runs)
	case "netload":
		return netloadSpecs(runs)
	}
	return nil
}

// ResolveSpec resolves a trial key back to its runnable spec (with
// Runs=1): this is how a campaign worker process turns the address it
// was handed into the actual benchmark closure.
func ResolveSpec(key TrialKey) (TrialSpec, bool) {
	for _, s := range TableSpecs(key.Table, 1) {
		if s.Key == key {
			return s, true
		}
	}
	return TrialSpec{}, false
}
