package harness

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/cache4j"
	"cbreak/internal/apps/fig4"
	"cbreak/internal/apps/hedc"
	"cbreak/internal/apps/httpd"
	"cbreak/internal/apps/jigsaw"
	"cbreak/internal/apps/log4j"
	"cbreak/internal/apps/logging"
	"cbreak/internal/apps/lucene"
	"cbreak/internal/apps/moldyn"
	"cbreak/internal/apps/montecarlo"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/apps/pbzip2"
	"cbreak/internal/apps/pool"
	"cbreak/internal/apps/raytracer"
	"cbreak/internal/apps/stringbuffer"
	"cbreak/internal/apps/swing"
	"cbreak/internal/apps/synclist"
	"cbreak/internal/apps/syncmap"
	"cbreak/internal/apps/syncset"
	"cbreak/internal/core"
	"cbreak/internal/prob"
)

// Pause presets: the paper's defaults are 100ms and 1s; the harness
// scales them down so a full table fits in CI time while preserving the
// ratios that matter (pause vs workload jitter vs stall deadline).
const (
	// ShortPause is the "100 ms" analog.
	ShortPause = 50 * time.Millisecond
	// LongPause is the "1 s" analog.
	LongPause = 250 * time.Millisecond
	// StallDeadline bounds stall detection in table runs.
	StallDeadline = 600 * time.Millisecond
)

// RowSpec describes one Table 1 row.
type RowSpec struct {
	Benchmark string
	BugLabel  string
	Comments  string
	// Timeout overrides the default ShortPause when non-zero.
	Timeout time.Duration
	Run     RunFunc
}

// Table1Rows returns the specs for every Java-benchmark row of the
// paper's Table 1.
func Table1Rows() []RowSpec {
	rows := []RowSpec{
		{Benchmark: "cache4j", BugLabel: "race1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Race1, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "cache4j", BugLabel: "race2", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Race2, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "cache4j", BugLabel: "race3", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Race3, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "cache4j", BugLabel: "atomicity1", Comments: "ignoreFirst=100", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Atomicity1, Breakpoint: bp, Timeout: to, IgnoreFirst: 100})
		}},
		{Benchmark: "hedc", BugLabel: "race1", Comments: "wait=" + ShortPause.String(), Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return hedc.Run(hedc.Config{Engine: e, Bug: hedc.Race1, Breakpoint: bp, Timeout: to, Jitter: 4 * time.Millisecond})
		}},
		{Benchmark: "hedc", BugLabel: "race1", Comments: "wait=" + LongPause.String(), Timeout: LongPause, Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return hedc.Run(hedc.Config{Engine: e, Bug: hedc.Race1, Breakpoint: bp, Timeout: to, Jitter: 4 * time.Millisecond})
		}},
		{Benchmark: "hedc", BugLabel: "race2", Comments: "wait=" + LongPause.String(), Timeout: LongPause, Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return hedc.Run(hedc.Config{Engine: e, Bug: hedc.Race2, Breakpoint: bp, Timeout: to, Jitter: 4 * time.Millisecond})
		}},
		{Benchmark: "jigsaw", BugLabel: "deadlock1", Run: jigsawRun(jigsaw.Deadlock1)},
		{Benchmark: "jigsaw", BugLabel: "deadlock2", Run: jigsawRun(jigsaw.Deadlock2)},
		{Benchmark: "jigsaw", BugLabel: "missed-notify1", Comments: "Meth. II", Run: jigsawRun(jigsaw.MissedNotify)},
		{Benchmark: "jigsaw", BugLabel: "race1", Run: jigsawRun(jigsaw.Race1)},
		{Benchmark: "jigsaw", BugLabel: "race2", Run: jigsawRun(jigsaw.Race2)},
		{Benchmark: "log4j", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return log4j.Run(log4j.Config{Engine: e, Mode: log4j.ModeDeadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "log4j", BugLabel: "missed-notify1", Comments: "Meth. II", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return log4j.Run(log4j.Config{Engine: e, Mode: log4j.ModeContention, Pair: log4j.Pair{First: log4j.S236, Second: log4j.S309},
				Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "logging", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return logging.Run(logging.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "lucene", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return lucene.Run(lucene.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "moldyn", BugLabel: "race1", Comments: "bound=4", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return moldyn.Run(moldyn.Config{Engine: e, Bug: moldyn.Race1, Breakpoint: bp, Timeout: to, Bound: 4})
		}},
		{Benchmark: "moldyn", BugLabel: "race2", Comments: "bound=10", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return moldyn.Run(moldyn.Config{Engine: e, Bug: moldyn.Race2, Breakpoint: bp, Timeout: to, Bound: 10})
		}},
		{Benchmark: "montecarlo", BugLabel: "race1", Comments: "bound=10", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return montecarlo.Run(montecarlo.Config{Engine: e, Breakpoint: bp, Timeout: to, Bound: 10})
		}},
		{Benchmark: "pool", BugLabel: "missed-notify1", Comments: "Meth. II", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return pool.Run(pool.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "raytracer", BugLabel: "race1", Run: raytracerRun(raytracer.Race1)},
		{Benchmark: "raytracer", BugLabel: "race2", Run: raytracerRun(raytracer.Race2)},
		{Benchmark: "raytracer", BugLabel: "race3", Run: raytracerRun(raytracer.Race3)},
		{Benchmark: "raytracer", BugLabel: "race4", Run: raytracerRun(raytracer.Race4)},
		{Benchmark: "stringbuffer", BugLabel: "atomicity1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return stringbuffer.Run(stringbuffer.Config{Engine: e, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "swing", BugLabel: "deadlock1", Comments: "wait=" + ShortPause.String(), Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: 2 * StallDeadline})
		}},
		{Benchmark: "swing", BugLabel: "deadlock1", Comments: "wait=" + LongPause.String(), Timeout: LongPause, Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: 2 * StallDeadline})
		}},
		{Benchmark: "synchronizedList", BugLabel: "atomicity1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return synclist.Run(synclist.Config{Engine: e, Bug: synclist.Atomicity, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "synchronizedList", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return synclist.Run(synclist.Config{Engine: e, Bug: synclist.Deadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "synchronizedMap", BugLabel: "atomicity1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return syncmap.Run(syncmap.Config{Engine: e, Bug: syncmap.Atomicity, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "synchronizedMap", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return syncmap.Run(syncmap.Config{Engine: e, Bug: syncmap.Deadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
		{Benchmark: "synchronizedSet", BugLabel: "atomicity1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return syncset.Run(syncset.Config{Engine: e, Bug: syncset.Atomicity, Breakpoint: bp, Timeout: to})
		}},
		{Benchmark: "synchronizedSet", BugLabel: "deadlock1", Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return syncset.Run(syncset.Config{Engine: e, Bug: syncset.Deadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
	}
	return rows
}

func jigsawRun(bug jigsaw.Bug) RunFunc {
	return func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
		return jigsaw.Run(jigsaw.Config{Engine: e, Bug: bug, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
	}
}

func raytracerRun(bug raytracer.Bug) RunFunc {
	return func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
		return raytracer.Run(raytracer.Config{Engine: e, Bug: bug, Breakpoint: bp, Timeout: to, Width: 48, Height: 36})
	}
}

// defaultRunner is the classic in-process, no-deadline execution path.
func defaultRunner() Runner { return InProcess(nil, 0, 0) }

// partialMark appends the explicit partial-data marker to a row's first
// cell when any of its measurements is missing trials (quarantined
// configuration or infrastructure failures): degraded campaign rows
// stay in the table, but never masquerade as complete data.
func partialMark(cell string, ms ...Measurement) string {
	for _, m := range ms {
		if m.Partial() {
			return cell + " (partial)"
		}
	}
	return cell
}

// Table1 measures every row with and without breakpoints and renders the
// paper's Table 1 columns.
func Table1(runs int) Table { return Table1With(runs, defaultRunner()) }

// Table1With is Table1 with a pluggable trial runner (e.g. a campaign
// supervisor's subprocess-isolated runner).
func Table1With(runs int, run Runner) Table {
	t := Table{
		Title:   "Table 1: Java benchmark results",
		Headers: []string{"Benchmark", "Normal(s)", "w/ctr(s)", "Overhead", "Breakpoint", "Error", "Prob.", "Comments"},
	}
	specs := table1Specs(runs)
	for i, row := range Table1Rows() {
		base := run(specs[2*i])
		with := run(specs[2*i+1])
		// Stall rows report the stall-detection deadline as their
		// runtime, so an overhead percentage is meaningless — the paper
		// likewise omits runtimes for stalls ("we report the time that
		// we first detected the stall").
		overhead := fmtPct(Overhead(base.MedianTime, with.MedianTime))
		if with.DominantError() == "stall" {
			overhead = "-"
		}
		t.Rows = append(t.Rows, []string{
			partialMark(row.Benchmark, base, with),
			fmtDur(base.MedianTime),
			fmtDur(with.MedianTime),
			overhead,
			row.BugLabel,
			with.DominantError(),
			fmtProb(with.Probability()),
			row.Comments,
		})
	}
	return t
}

// Table2Rows returns the C/C++-analog specs of the paper's Table 2.
func Table2Rows() []struct {
	Benchmark string
	Error     string
	CBRs      int
	Comments  string
	Run       RunFunc
} {
	return []struct {
		Benchmark string
		Error     string
		CBRs      int
		Comments  string
		Run       RunFunc
	}{
		{"pbzip2 0.9.4", "program crash", 2, "null pointer dereference", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return pbzip2.Run(pbzip2.Config{Engine: e, Breakpoint: bp, Timeout: to})
		}},
		{"Apache httpd 2.0.45", "log corruption", 1, "(Bug #25520)", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return httpd.Run(httpd.Config{Engine: e, Bug: httpd.LogCorruption, Breakpoint: bp, Timeout: to})
		}},
		{"Apache httpd 2.0.45", "server crash", 3, "buffer overflow", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return httpd.Run(httpd.Config{Engine: e, Bug: httpd.ServerCrash, Breakpoint: bp, Timeout: to})
		}},
		{"MySQL 4.0.12", "log omission", 2, "(Bug #791)", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return mysql.Run(mysql.Config{Engine: e, Bug: mysql.LogOmission, Breakpoint: bp, Timeout: to})
		}},
		{"MySQL 3.23.56", "log disorder", 1, "(Bug #169)", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return mysql.Run(mysql.Config{Engine: e, Bug: mysql.LogDisorder, Breakpoint: bp, Timeout: to})
		}},
		{"MySQL 4.0.19", "server crash", 3, "null pointer dereference (Bug #3596)", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return mysql.Run(mysql.Config{Engine: e, Bug: mysql.ServerCrash, Breakpoint: bp, Timeout: to})
		}},
		// Appended after the original six: row indices are campaign
		// checkpoint keys, so new rows only ever go at the end.
		{"MySQL 4.0.x", "deadlock", 1, "FLUSH LOGS vs DML lock order", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return mysql.Run(mysql.Config{Engine: e, Bug: mysql.Deadlock, Breakpoint: bp, Timeout: to, StallAfter: StallDeadline})
		}},
	}
}

// Table2 measures the C/C++-analog rows: error kind, MTTE, and
// breakpoint count.
func Table2(runs int) Table { return Table2With(runs, defaultRunner()) }

// Table2With is Table2 with a pluggable trial runner.
func Table2With(runs int, run Runner) Table {
	t := Table{
		Title:   "Table 2: C/C++ benchmark results",
		Headers: []string{"Benchmark", "Error", "MTTE(s)", "#CBR", "Reproduced", "Comments"},
	}
	specs := table2Specs(runs)
	for i, row := range Table2Rows() {
		with := run(specs[i])
		t.Rows = append(t.Rows, []string{
			partialMark(row.Benchmark, with),
			row.Error,
			fmtDur(with.MeanTimeToError),
			fmt.Sprintf("%d", row.CBRs),
			fmt.Sprintf("%d/%d", with.Buggy, with.Completed),
			row.Comments,
		})
	}
	return t
}

// Log4jTable reproduces the section 5 resolve-order table: for each of
// the eight contention resolutions, the stall rate and breakpoint hit
// rate over `runs` executions.
func Log4jTable(runs int) Table { return Log4jTableWith(runs, defaultRunner()) }

// Log4jTableWith is Log4jTable with a pluggable trial runner.
func Log4jTableWith(runs int, run Runner) Table {
	t := Table{
		Title:   "Section 5: log4j conflict resolve orders",
		Headers: []string{"Conflict resolve order", "System stall (%)", "BP hit (%)"},
	}
	specs := log4jSpecs(runs)
	for i, pair := range log4j.Section5Pairs() {
		m := run(specs[i])
		stallPct := 0.0
		if m.Completed > 0 {
			stallPct = 100 * float64(m.Statuses[appkit.Stall]) / float64(m.Completed)
		}
		t.Rows = append(t.Rows, []string{partialMark(pair.String(), m),
			fmtPct(stallPct), fmtPct(100 * m.HitRate())})
	}
	return t
}

// PauseSweep reproduces section 6.2: reproduction probability and
// runtime as the pause grows, for hedc race1 and the swing deadlock.
// Each benchmark sweeps pauses spanning its workload's jitter scale, so
// the short end misses the rendezvous sometimes (the paper's 0.87 and
// 0.63) and the long end essentially never does.
func PauseSweep(runs int) Table { return PauseSweepWith(runs, defaultRunner()) }

// pauseSweepPoint is one (benchmark, pause) cell of the sweep.
type pauseSweepPoint struct {
	name  string
	pause time.Duration
	run   RunFunc
}

// pauseSweepPoints flattens the sweep grid in rendering order, so
// specs.go can address each cell by row index.
func pauseSweepPoints() []pauseSweepPoint {
	grid := []struct {
		name   string
		pauses []time.Duration
		run    RunFunc
	}{
		{"hedc/race1", []time.Duration{time.Millisecond, 5 * time.Millisecond, ShortPause},
			func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				return hedc.Run(hedc.Config{Engine: e, Bug: hedc.Race1, Breakpoint: bp, Timeout: to, Jitter: 8 * time.Millisecond})
			}},
		{"swing/deadlock1", []time.Duration{5 * time.Millisecond, 16 * time.Millisecond, ShortPause},
			func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to,
					StallAfter: 2 * StallDeadline, EventJitter: 4 * time.Millisecond})
			}},
	}
	var points []pauseSweepPoint
	for _, g := range grid {
		for _, pause := range g.pauses {
			points = append(points, pauseSweepPoint{name: g.name, pause: pause, run: g.run})
		}
	}
	return points
}

// PauseSweepWith is PauseSweep with a pluggable trial runner.
func PauseSweepWith(runs int, run Runner) Table {
	t := Table{
		Title:   "Section 6.2: pause time vs probability",
		Headers: []string{"Benchmark", "Pause", "Prob.", "Runtime(s)"},
	}
	specs := pauseSpecs(runs)
	for i, pt := range pauseSweepPoints() {
		m := run(specs[i])
		t.Rows = append(t.Rows, []string{
			partialMark(pt.name, m), pt.pause.String(), fmtProb(m.Probability()), fmtDur(m.MedianTime)})
	}
	return t
}

// PrecisionVariant is one configuration of the section 6.3 ablation.
type PrecisionVariant struct {
	Name       string
	Refinement string
	Run        RunFunc
}

// PrecisionVariants returns the section 6.3 configurations: each
// benchmark with and without its local-predicate refinement.
func PrecisionVariants() []PrecisionVariant {
	return []PrecisionVariant{
		{"cache4j/atomicity1", "none", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Atomicity1, Breakpoint: bp, Timeout: to, WarmupObjects: 60})
		}},
		{"cache4j/atomicity1", "ignoreFirst=60", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return cache4j.Run(cache4j.Config{Engine: e, Bug: cache4j.Atomicity1, Breakpoint: bp, Timeout: to, WarmupObjects: 60, IgnoreFirst: 60})
		}},
		{"moldyn/race1", "bound=100", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return moldyn.Run(moldyn.Config{Engine: e, Bug: moldyn.Race1, Breakpoint: bp, Timeout: to, Bound: 100})
		}},
		{"moldyn/race1", "bound=4", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return moldyn.Run(moldyn.Config{Engine: e, Bug: moldyn.Race1, Breakpoint: bp, Timeout: to, Bound: 4})
		}},
		{"swing/deadlock1", "none", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to, StallAfter: 2 * StallDeadline})
		}},
		{"swing/deadlock1", "isLockTypeHeld(BasicCaret)", func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to, Refined: true, StallAfter: 2 * StallDeadline})
		}},
	}
}

// PrecisionAblation reproduces section 6.3: the runtime effect of the
// local-predicate refinements (ignoreFirst for cache4j, bound for
// moldyn, isLockTypeHeld for swing), with the reproduction probability
// alongside to show precision does not cost probability.
func PrecisionAblation(runs int) Table { return PrecisionAblationWith(runs, defaultRunner()) }

// PrecisionAblationWith is PrecisionAblation with a pluggable trial
// runner.
func PrecisionAblationWith(runs int, run Runner) Table {
	t := Table{
		Title:   "Section 6.3: precision refinements",
		Headers: []string{"Benchmark", "Refinement", "Prob.", "Runtime(s)", "BPWait(s)"},
	}
	specs := precisionSpecs(runs)
	for i, v := range PrecisionVariants() {
		m := run(specs[i])
		t.Rows = append(t.Rows, []string{partialMark(v.Name, m), v.Refinement,
			fmtProb(m.Probability()), fmtDur(m.MedianTime), fmtDur(m.MeanBPWait)})
	}
	return t
}

// ModelTable reproduces the section 3 analysis around Figure 4: the
// closed-form probabilities, their Monte Carlo validation, and the
// empirical Figure 4 program with and without its breakpoint.
func ModelTable(mcRuns, fig4Runs int) Table {
	return ModelTableWith(mcRuns, fig4Runs, defaultRunner())
}

// ModelTableWith is ModelTable with a pluggable trial runner for its
// empirical Figure 4 measurements (the closed-form and Monte Carlo rows
// are deterministic and always computed in-process).
func ModelTableWith(mcRuns, fig4Runs int, run Runner) Table {
	t := Table{
		Title:   "Section 3 / Figure 4: model vs measurement",
		Headers: []string{"Quantity", "Value"},
	}
	const n, mBig, m, tPause = 100000, 10, 2, 1000
	t.Rows = append(t.Rows,
		[]string{"exact base P (N=1e5, m=2)", fmt.Sprintf("%.6f", prob.ExactBase(n, m))},
		[]string{"approx base m^2/(N-m+1)", fmt.Sprintf("%.6f", prob.ApproxBase(n, m))},
		[]string{"Monte Carlo base", fmt.Sprintf("%.6f", prob.MonteCarloBase(n, m, mcRuns, 42))},
		[]string{"trigger LB (M=10, T=1000)", fmt.Sprintf("%.6f", prob.ExactTriggerLB(n, mBig, m, tPause))},
		[]string{"approx trigger m^2T/(N+MT-M)", fmt.Sprintf("%.6f", prob.ApproxTrigger(n, mBig, m, tPause))},
		[]string{"Monte Carlo trigger", fmt.Sprintf("%.6f", prob.MonteCarloTrigger(n, mBig, m, tPause, mcRuns, 42))},
		[]string{"improvement factor", fmt.Sprintf("%.1fx", prob.ImprovementFactor(n, mBig, m, tPause))},
	)
	specs := modelSpecs(fig4Runs)
	noBP := run(specs[0])
	withBP := run(specs[1])
	t.Rows = append(t.Rows,
		[]string{partialMark("Figure 4 ERROR rate, no breakpoint", noBP), fmtProb(noBP.Probability())},
		[]string{partialMark("Figure 4 ERROR rate, with breakpoint", withBP), fmtProb(withBP.Probability())},
		[]string{"Figure 4 step-model P(read<write), N=200", fmt.Sprintf("%.4f", fig4.StepProbability(200, 5, mcRuns, 7))},
	)
	return t
}
