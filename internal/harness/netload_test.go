package harness

import (
	"strings"
	"testing"

	"cbreak/internal/apps/appkit"
)

// TestNetLoadMySQLDeadlockClassifiedAsAppBug is the chaos layer's
// acceptance check: with the proxy injecting latency, resets, and a
// mid-run partition, the FLUSH-vs-DML deadlock behind real sockets must
// still classify as an application stall — never as a trial timeout or
// a worker crash, which are infrastructure verdicts.
func TestNetLoadMySQLDeadlockClassifiedAsAppBug(t *testing.T) {
	appkit.SeedJitter(7)
	spec := netloadSpecs(1)[1]
	out := RunTrial(spec)
	res := out.Result
	if res.Status != appkit.Stall {
		t.Fatalf("deadlock trial classified %v (%s); want Stall", res.Status, res.Detail)
	}
	if !strings.Contains(res.Detail, "deadlock") && !strings.Contains(res.Detail, "wedged") {
		t.Fatalf("stall detail %q names neither the confirmed deadlock nor the wedge probe", res.Detail)
	}
	if out.Incidents["net-fault-injected"] == 0 {
		t.Fatalf("no net-fault-injected incidents recorded; chaos was not exercised: %v", out.Incidents)
	}
}

// TestNetLoadDegradationStaysOK pins the blame-localization contract
// from the other side: under the full fault mix with no bug armed,
// every proxy-induced failure must be absorbed by retries and budgets —
// the application verdict stays OK.
func TestNetLoadDegradationStaysOK(t *testing.T) {
	appkit.SeedJitter(11)
	spec := netloadSpecs(1)[2]
	out := RunTrial(spec)
	if out.Result.Status != appkit.OK {
		t.Fatalf("degradation trial classified %v (%s); infra faults leaked into the app verdict",
			out.Result.Status, out.Result.Detail)
	}
	if out.Incidents["net-fault-injected"] == 0 {
		t.Fatalf("no net-fault-injected incidents recorded; the fault mix never fired")
	}
}

// TestNetLoadHTTPDCorruptionReproduces drives the log-corruption race
// over sockets through chaos. The race is probabilistic by design, so
// the test allows a few seeded attempts before declaring failure.
func TestNetLoadHTTPDCorruptionReproduces(t *testing.T) {
	spec := netloadSpecs(1)[0]
	for attempt, seed := range []int64{7, 11, 13} {
		appkit.SeedJitter(seed)
		out := RunTrial(spec)
		if out.Result.Status == appkit.LogCorrupt && out.Result.BPHit {
			return
		}
		t.Logf("attempt %d (seed %d): %v", attempt, seed, out.Result)
	}
	t.Fatalf("log corruption never reproduced over sockets in 3 seeded attempts")
}
