// Package harness runs the paper's experiments: it executes benchmark
// applications repeatedly, with and without their concurrent
// breakpoints, and aggregates the measurements the evaluation section
// reports — reproduction probability, runtime overhead, breakpoint hit
// rate, and mean time to error (MTTE).
//
// The table generators (Table1, Table2, Log4jTable, PauseSweep,
// PrecisionAblation, ModelTable) produce the same rows/series as the
// paper's Tables 1 and 2, the section 5 resolve-order table, and the
// section 6.2/6.3 studies, so `cmd/cbtables` can regenerate each
// artifact.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

// RunFunc executes one application run on the given engine. breakpoint
// selects whether the app's concurrent breakpoints are inserted; timeout
// is the pause time T.
type RunFunc func(e *core.Engine, breakpoint bool, timeout time.Duration) appkit.Result

// Measurement aggregates repeated runs of one configuration.
type Measurement struct {
	Runs       int
	Buggy      int // runs where the bug manifested
	BPHits     int // runs where a breakpoint was hit
	Statuses   map[appkit.Status]int
	MeanTime   time.Duration // mean wall-clock of all runs
	MedianTime time.Duration
	// MeanTimeToError is the mean elapsed time of the buggy runs only
	// (the paper's MTTE).
	MeanTimeToError time.Duration
	// MeanBPWait is the mean per-run total time goroutines spent
	// postponed at breakpoints — the overhead the section 6.3
	// refinements cut.
	MeanBPWait time.Duration
}

// Probability returns the fraction of runs in which the bug manifested.
func (m Measurement) Probability() float64 {
	if m.Runs == 0 {
		return 0
	}
	return float64(m.Buggy) / float64(m.Runs)
}

// HitRate returns the fraction of runs in which a breakpoint was hit.
func (m Measurement) HitRate() float64 {
	if m.Runs == 0 {
		return 0
	}
	return float64(m.BPHits) / float64(m.Runs)
}

// Measure runs fn `runs` times with fresh engines and aggregates.
func Measure(runs int, breakpoint bool, timeout time.Duration, fn RunFunc) Measurement {
	m := Measurement{Runs: runs, Statuses: make(map[appkit.Status]int)}
	var total time.Duration
	var errTotal time.Duration
	var waitTotal time.Duration
	times := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		e := core.NewEngine()
		if !breakpoint {
			e.SetEnabled(false)
		}
		res := fn(e, breakpoint, timeout)
		m.Statuses[res.Status]++
		if res.Status.Buggy() {
			m.Buggy++
			errTotal += res.Elapsed
		}
		if res.BPHit {
			m.BPHits++
		}
		for _, snap := range e.SnapshotAll() {
			waitTotal += snap.TotalWait
		}
		total += res.Elapsed
		times = append(times, res.Elapsed)
	}
	m.MeanTime = total / time.Duration(runs)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	m.MedianTime = times[runs/2]
	if m.Buggy > 0 {
		m.MeanTimeToError = errTotal / time.Duration(m.Buggy)
	}
	m.MeanBPWait = waitTotal / time.Duration(runs)
	return m
}

// DominantError returns the most frequent buggy status label, or "".
func (m Measurement) DominantError() string {
	best, bestN := "", 0
	for s, n := range m.Statuses {
		if s.Buggy() && n > bestN {
			best, bestN = s.String(), n
		}
	}
	return best
}

// Overhead returns the percentage runtime increase of with relative to
// without.
func Overhead(without, with time.Duration) float64 {
	if without <= 0 {
		return 0
	}
	return 100 * (float64(with) - float64(without)) / float64(without)
}

// CountLoC counts non-test Go source lines under dir (recursively); it
// fills the LoC column of the result tables. Returns 0 when the tree is
// unreadable (e.g. the binary runs away from the repo).
func CountLoC(dir string) int {
	total := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		total += strings.Count(string(data), "\n")
		return nil
	})
	return total
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells that
// need them), for piping table output into analysis tools.
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// fmtDur renders a duration in seconds with millisecond precision.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// fmtPct renders a percentage.
func fmtPct(p float64) string { return fmt.Sprintf("%.0f%%", p) }

// fmtProb renders a probability like the paper (two decimals).
func fmtProb(p float64) string { return fmt.Sprintf("%.2f", p) }
