// Package harness runs the paper's experiments: it executes benchmark
// applications repeatedly, with and without their concurrent
// breakpoints, and aggregates the measurements the evaluation section
// reports — reproduction probability, runtime overhead, breakpoint hit
// rate, and mean time to error (MTTE).
//
// The table generators (Table1, Table2, Log4jTable, PauseSweep,
// PrecisionAblation, ModelTable) produce the same rows/series as the
// paper's Tables 1 and 2, the section 5 resolve-order table, and the
// section 6.2/6.3 studies, so `cmd/cbtables` can regenerate each
// artifact.
package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

// RunFunc executes one application run on the given engine. breakpoint
// selects whether the app's concurrent breakpoints are inserted; timeout
// is the pause time T.
type RunFunc func(e *core.Engine, breakpoint bool, timeout time.Duration) appkit.Result

// Measurement aggregates repeated runs of one configuration.
type Measurement struct {
	// Runs is how many trials the measurement covers, including trials
	// that never produced an application result.
	Runs int
	// Completed counts trials that produced an application result
	// (infrastructure failures — timed-out or crashed trials — are
	// excluded, so rates stay honest when a campaign degrades).
	Completed int
	Buggy     int // completed runs where the bug manifested
	BPHits    int // completed runs where a breakpoint was hit
	// InfraFailures counts trials lost to the harness itself: killed at
	// the per-trial deadline or dead workers, after retries.
	InfraFailures int
	Statuses      map[appkit.Status]int
	MeanTime      time.Duration // mean wall-clock of completed runs
	MedianTime    time.Duration
	// MeanTimeToError is the mean elapsed time of the buggy runs only
	// (the paper's MTTE).
	MeanTimeToError time.Duration
	// MeanBPWait is the mean per-run total time goroutines spent
	// postponed at breakpoints — the overhead the section 6.3
	// refinements cut.
	MeanBPWait time.Duration
	// Quarantined marks a configuration a campaign supervisor gave up
	// on after K consecutive worker failures; the counters above cover
	// only the trials that ran before quarantine.
	Quarantined bool
}

// Probability returns the fraction of completed runs in which the bug
// manifested.
func (m Measurement) Probability() float64 {
	if m.Completed == 0 {
		return 0
	}
	return float64(m.Buggy) / float64(m.Completed)
}

// HitRate returns the fraction of completed runs in which a breakpoint
// was hit.
func (m Measurement) HitRate() float64 {
	if m.Completed == 0 {
		return 0
	}
	return float64(m.BPHits) / float64(m.Completed)
}

// Partial reports whether the measurement is missing trials — the
// configuration was quarantined or some trials were lost to
// infrastructure failures — so tables can mark the row instead of
// presenting degraded data as complete.
func (m Measurement) Partial() bool {
	return m.Quarantined || m.Completed < m.Runs
}

// Aggregate folds per-trial outcomes into a Measurement. It is the
// single aggregation path shared by the in-process Measure and the
// campaign supervisor's journal replay, which is what makes a resumed
// campaign's tables byte-identical to an uninterrupted run's.
func Aggregate(outs []TrialOutcome) Measurement {
	m := Measurement{Runs: len(outs), Statuses: make(map[appkit.Status]int)}
	var total, errTotal, waitTotal time.Duration
	times := make([]time.Duration, 0, len(outs))
	for _, o := range outs {
		m.Statuses[o.Result.Status]++
		if o.Result.Status.Infrastructure() {
			m.InfraFailures++
			continue
		}
		m.Completed++
		if o.Result.Status.Buggy() {
			m.Buggy++
			errTotal += o.Result.Elapsed
		}
		if o.Result.BPHit {
			m.BPHits++
		}
		waitTotal += o.BPWait
		total += o.Result.Elapsed
		times = append(times, o.Result.Elapsed)
	}
	if m.Completed > 0 {
		m.MeanTime = total / time.Duration(m.Completed)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		m.MedianTime = times[len(times)/2]
		m.MeanBPWait = waitTotal / time.Duration(m.Completed)
	}
	if m.Buggy > 0 {
		m.MeanTimeToError = errTotal / time.Duration(m.Buggy)
	}
	return m
}

// Measure runs fn `runs` times with fresh engines and aggregates. Each
// trial executes in the calling goroutine with no deadline — the
// historical behaviour; use MeasureCtx when a hung RunFunc must not
// hang the caller.
func Measure(runs int, breakpoint bool, timeout time.Duration, fn RunFunc) Measurement {
	outs := make([]TrialOutcome, 0, runs)
	for i := 0; i < runs; i++ {
		outs = append(outs, RunTrial(TrialSpec{Breakpoint: breakpoint, Timeout: timeout, Run: fn}))
	}
	return Aggregate(outs)
}

// MeasureCtx is Measure with context cancellation and a hard per-trial
// wall-clock deadline (0 = unbounded): a RunFunc that deadlocks is
// abandoned at the deadline and counted as appkit.TrialTimeout instead
// of wedging the measurement.
func MeasureCtx(ctx context.Context, deadline time.Duration, runs int, breakpoint bool, timeout time.Duration, fn RunFunc) Measurement {
	spec := TrialSpec{Runs: runs, Breakpoint: breakpoint, Timeout: timeout, Run: fn}
	return InProcess(ctx, deadline, 0)(spec)
}

// DominantError returns the most frequent buggy status label, or "".
func (m Measurement) DominantError() string {
	best, bestN := "", 0
	for s, n := range m.Statuses {
		if s.Buggy() && n > bestN {
			best, bestN = s.String(), n
		}
	}
	return best
}

// Overhead returns the percentage runtime increase of with relative to
// without.
func Overhead(without, with time.Duration) float64 {
	if without <= 0 {
		return 0
	}
	return 100 * (float64(with) - float64(without)) / float64(without)
}

// CountLoC counts non-test Go source lines under dir (recursively); it
// fills the LoC column of the result tables. Returns 0 when the tree is
// unreadable (e.g. the binary runs away from the repo).
func CountLoC(dir string) int {
	total := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		total += strings.Count(string(data), "\n")
		return nil
	})
	return total
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells that
// need them), for piping table output into analysis tools.
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// fmtDur renders a duration in seconds with millisecond precision.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// fmtPct renders a percentage.
func fmtPct(p float64) string { return fmt.Sprintf("%.0f%%", p) }

// fmtProb renders a probability like the paper (two decimals).
func fmtProb(p float64) string { return fmt.Sprintf("%.2f", p) }
