package memory

import (
	"bytes"
	"runtime"
	"strconv"
)

// goroutineID parses the current goroutine's id from the runtime stack
// header.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		return 0
	}
	return id
}
