// Package memory provides instrumented shared-memory cells.
//
// The benchmark applications in this repository deliberately contain
// "data races" — unsynchronized logical accesses to shared state — because
// those races are the bugs the paper makes reproducible. Expressing them
// as raw Go memory races would be undefined behaviour, so racy variables
// are routed through Cell values instead: a Cell uses atomics internally
// (the Go program stays well-defined) while preserving racy semantics at
// the logical level (stale reads, lost updates, broken check-then-act
// sequences all remain possible).
//
// Cells also serve as the instrumentation point for the conflict
// detectors in internal/detect: every Load/Store is reported to the
// tracer attached to the cell's Space, which is how the Eraser-style and
// happens-before detectors observe the program (Methodology I/II of the
// paper).
package memory

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Op is the kind of a memory access.
type Op int

const (
	// Read is a load.
	Read Op = iota
	// Write is a store.
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Tracer observes memory accesses. OnAccess is called before the access
// takes effect, with the accessing goroutine's id, the cell, the kind of
// access, and the source location label of the access site.
type Tracer interface {
	OnAccess(gid uint64, c *Cell, op Op, site string)
}

// Space groups cells under one tracer. Applications typically create one
// Space per run so detector state does not leak across runs. The zero
// value is usable and untraced.
type Space struct {
	mu     sync.RWMutex
	tracer Tracer
}

// NewSpace returns an empty, untraced space.
func NewSpace() *Space { return &Space{} }

// Trace attaches a tracer (nil detaches).
func (s *Space) Trace(t Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

func (s *Space) emit(gid uint64, c *Cell, op Op, site string) {
	if s == nil {
		return
	}
	s.mu.RLock()
	t := s.tracer
	s.mu.RUnlock()
	if t != nil {
		t.OnAccess(gid, c, op, site)
	}
}

// Cell is a shared int64 variable with instrumented, atomic access. A
// Cell belongs to a Space (possibly nil) and carries a name for
// diagnostics and detector reports.
type Cell struct {
	v     atomic.Int64
	space *Space
	name  string
}

// NewCell returns a named cell in space s (s may be nil) with initial
// value init.
func NewCell(s *Space, name string, init int64) *Cell {
	c := &Cell{space: s, name: name}
	c.v.Store(init)
	return c
}

// Name returns the cell's name.
func (c *Cell) Name() string { return c.name }

// Load reads the cell. site labels the access location in detector
// reports (e.g. "cache.go:42").
func (c *Cell) Load(site string) int64 {
	c.space.emit(gid(), c, Read, site)
	return c.v.Load()
}

// Store writes the cell.
func (c *Cell) Store(site string, v int64) {
	c.space.emit(gid(), c, Write, site)
	c.v.Store(v)
}

// Add performs a racy read-modify-write: it is deliberately NOT an atomic
// Add but a Load followed by a Store, so concurrent Adds can lose
// updates. This models the classic `x++` data race.
func (c *Cell) Add(site string, delta int64) int64 {
	v := c.Load(site)
	nv := v + delta
	c.Store(site, nv)
	return nv
}

// AtomicAdd performs a correct atomic add (the "fixed" version of a racy
// counter; used by apps after the bug is repaired and in ablations).
func (c *Cell) AtomicAdd(site string, delta int64) int64 {
	c.space.emit(gid(), c, Write, site)
	return c.v.Add(delta)
}

// CompareAndSwap exposes CAS for building correct algorithms on cells.
func (c *Cell) CompareAndSwap(site string, old, new int64) bool {
	c.space.emit(gid(), c, Write, site)
	return c.v.CompareAndSwap(old, new)
}

// String implements fmt.Stringer.
func (c *Cell) String() string { return fmt.Sprintf("Cell(%s=%d)", c.name, c.v.Load()) }

// Ref is a shared reference variable (pointer-like) with instrumented,
// atomic access; the analog of Cell for object references. Nil
// dereference bugs in the C/C++ benchmarks are modelled as loading a nil
// Ref and invoking a method through it.
type Ref[T any] struct {
	v     atomic.Pointer[T]
	space *Space
	name  string
}

// NewRef returns a named reference in space s holding init (may be nil).
func NewRef[T any](s *Space, name string, init *T) *Ref[T] {
	r := &Ref[T]{space: s, name: name}
	r.v.Store(init)
	return r
}

// Name returns the reference's name.
func (r *Ref[T]) Name() string { return r.name }

// Load reads the reference.
func (r *Ref[T]) Load(site string) *T {
	r.space.emit(gid(), refCell(r), Read, site)
	return r.v.Load()
}

// Store writes the reference.
func (r *Ref[T]) Store(site string, p *T) {
	r.space.emit(gid(), refCell(r), Write, site)
	r.v.Store(p)
}

// refCells gives each Ref a stable Cell identity for tracer reports, so
// detectors can treat cells and refs uniformly.
var (
	refCellsMu sync.Mutex
	refCells   = map[any]*Cell{}
)

func refCell[T any](r *Ref[T]) *Cell {
	refCellsMu.Lock()
	defer refCellsMu.Unlock()
	c, ok := refCells[r]
	if !ok {
		c = &Cell{space: nil, name: r.name}
		refCells[r] = c
	}
	return c
}

// gid returns the current goroutine id; duplicated from internal/locks to
// keep the packages independent.
func gid() uint64 {
	return goroutineID()
}
