package memory

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

type recTracer struct {
	mu     sync.Mutex
	events []string
}

func (r *recTracer) OnAccess(gid uint64, c *Cell, op Op, site string) {
	r.mu.Lock()
	r.events = append(r.events, fmt.Sprintf("%s %s @%s", op, c.Name(), site))
	r.mu.Unlock()
}

func (r *recTracer) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func TestCellLoadStore(t *testing.T) {
	c := NewCell(nil, "x", 7)
	if got := c.Load("t:1"); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	c.Store("t:2", 42)
	if got := c.Load("t:3"); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	if c.Name() != "x" {
		t.Errorf("Name = %q", c.Name())
	}
	if s := c.String(); s != "Cell(x=42)" {
		t.Errorf("String = %q", s)
	}
}

func TestTracerSeesAccesses(t *testing.T) {
	sp := NewSpace()
	tr := &recTracer{}
	sp.Trace(tr)
	c := NewCell(sp, "y", 0)
	//cbvet:ignore conflicts unrelated test fixtures share the class name "y" (detect_test locks its own); class identity merges them
	c.Store("s:1", 1)
	c.Load("s:2")
	c.Add("s:3", 1) // one read + one write
	if got := tr.len(); got != 4 {
		t.Fatalf("tracer events = %d, want 4", got)
	}
	sp.Trace(nil)
	c.Store("s:4", 9)
	if got := tr.len(); got != 4 {
		t.Fatalf("detached tracer still receiving events: %d", got)
	}
}

func TestNilSpaceIsSafe(t *testing.T) {
	c := NewCell(nil, "z", 0)
	c.Store("n:1", 5)
	if c.Load("n:2") != 5 {
		t.Fatal("nil-space cell broken")
	}
}

func TestRacyAddCanLoseUpdates(t *testing.T) {
	// Not strictly deterministic, but with enough contention the racy
	// Add virtually always loses updates; the atomic version never does.
	const goroutines, iters = 8, 5000
	racy := NewCell(nil, "racy", 0)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				racy.Add("r", 1)
			}
		}()
	}
	wg.Wait()
	if got := racy.Load("r"); got > goroutines*iters {
		t.Fatalf("racy counter exceeded total increments: %d", got)
	}

	atomicCell := NewCell(nil, "atomic", 0)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				atomicCell.AtomicAdd("a", 1)
			}
		}()
	}
	wg.Wait()
	if got := atomicCell.Load("a"); got != goroutines*iters {
		t.Fatalf("atomic counter = %d, want %d", got, goroutines*iters)
	}
}

func TestCompareAndSwap(t *testing.T) {
	c := NewCell(nil, "cas", 1)
	if !c.CompareAndSwap("c", 1, 2) {
		t.Fatal("CAS 1->2 failed")
	}
	if c.CompareAndSwap("c", 1, 3) {
		t.Fatal("CAS with stale old value succeeded")
	}
	if c.Load("c") != 2 {
		t.Fatalf("value = %d, want 2", c.Load("c"))
	}
}

func TestRefLoadStore(t *testing.T) {
	type obj struct{ v int }
	sp := NewSpace()
	tr := &recTracer{}
	sp.Trace(tr)
	r := NewRef[obj](sp, "ref", nil)
	if r.Load("r:1") != nil {
		t.Fatal("initial ref not nil")
	}
	o := &obj{v: 3}
	r.Store("r:2", o)
	if got := r.Load("r:3"); got != o {
		t.Fatal("ref did not round-trip")
	}
	if r.Name() != "ref" {
		t.Errorf("Name = %q", r.Name())
	}
	if tr.len() != 3 {
		t.Fatalf("ref tracer events = %d, want 3", tr.len())
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op.String broken")
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	c := NewCell(nil, "prop", 0)
	f := func(v int64) bool {
		c.Store("p", v)
		return c.Load("p") == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSequentialProperty(t *testing.T) {
	// Sequentially, racy Add must behave exactly like arithmetic.
	f := func(init int64, deltas []int8) bool {
		c := NewCell(nil, "seq", init)
		want := init
		for _, d := range deltas {
			want += int64(d)
			if got := c.Add("p", int64(d)); got != want {
				return false
			}
		}
		return c.Load("p") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
