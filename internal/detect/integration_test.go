package detect

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// TestMethodologyIEndToEnd closes the paper's full Methodology I loop in
// one test: (1) run a buggy scenario under the detector and get the
// CalFuzzer-style race report; (2) insert a concurrent breakpoint at the
// two reported sites; (3) verify the bug now reproduces deterministically.
func TestMethodologyIEndToEnd(t *testing.T) {
	type account struct{ balance *memory.Cell }

	buildScenario := func(sp *memory.Space, engine *core.Engine, bp bool) (run func(), doubleSpent func() bool) {
		acct := &account{balance: memory.NewCell(sp, "acct.balance", 100)}
		var ok1, ok2 bool
		run = func() {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // withdraw: check-then-act
				defer wg.Done()
				bal := acct.balance.Load("bank.go:17")
				if bal < 80 {
					return
				}
				if bp {
					engine.TriggerHere(core.NewConflictTrigger("bank", acct.balance), false,
						core.Options{Timeout: 300 * time.Millisecond})
				}
				acct.balance.Store("bank.go:19", bal-80)
				ok1 = true
			}()
			go func() { // concurrent spend, naturally later
				defer wg.Done()
				time.Sleep(time.Millisecond)
				bal := acct.balance.Load("bank.go:28")
				if bal < 80 {
					return
				}
				store := func() { acct.balance.Store("bank.go:30", bal-80); ok2 = true }
				if bp {
					engine.TriggerHereAnd(core.NewConflictTrigger("bank", acct.balance), true,
						core.Options{Timeout: 300 * time.Millisecond}, store)
				} else {
					store()
				}
			}()
			wg.Wait()
		}
		doubleSpent = func() bool { return ok1 && ok2 }
		return run, doubleSpent
	}

	// Step 1: detect.
	sp := memory.NewSpace()
	d := New()
	sp.Trace(d)
	offEngine := core.NewEngine()
	offEngine.SetEnabled(false)
	run, _ := buildScenario(sp, offEngine, false)
	run()
	sp.Trace(nil)
	races := d.ReportsOf(KindRace)
	if len(races) == 0 {
		t.Fatal("step 1: detector found no race")
	}
	found := false
	for _, r := range races {
		if r.Var == "acct.balance" && strings.Contains(r.Format(), "bank.go:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("step 1: wrong report(s):\n%s", d.FormatAll())
	}

	// Steps 2-3: the breakpoint at the reported sites reproduces the
	// double-spend every time.
	engine := core.NewEngine()
	for i := 0; i < 5; i++ {
		engine.Reset()
		run, doubleSpent := buildScenario(nil, engine, true)
		run()
		if !doubleSpent() {
			t.Fatalf("step 3: run %d did not reproduce the double-spend", i)
		}
	}
}

// TestMethodologyIIEndToEnd runs the lost-notification loop: detect the
// candidate, force the notify-first order, observe the stall.
func TestMethodologyIIEndToEnd(t *testing.T) {
	// Step 1-2: the candidate report.
	d := New()
	mon := locks.NewMutex("mon")
	cv := locks.NewCond("available", mon)
	d.InstrumentConds(cv)
	cv.NotifyAt("pool.go:return")
	mon.Lock()
	cv.WaitTimeoutAt(5*time.Millisecond, "pool.go:borrow")
	mon.Unlock()
	if len(d.ReportsOf(KindLostNotify)) == 0 {
		t.Fatal("no lost-notification candidate detected")
	}

	// Step 3: force notify-before-wait with a breakpoint; the waiter
	// must miss the wakeup (timeout) every time.
	engine := core.NewEngine()
	for i := 0; i < 3; i++ {
		engine.Reset()
		m2 := locks.NewMutex("mon2")
		cv2 := locks.NewCond("available2", m2)
		missed := make(chan bool, 1)
		go func() { // waiter: test, window, wait
			engine.TriggerHere(core.NewNotifyTrigger("lost", cv2), false,
				core.Options{Timeout: time.Second})
			m2.Lock()
			got := cv2.WaitTimeout(50 * time.Millisecond)
			m2.Unlock()
			missed <- !got
		}()
		go func() { // notifier, ordered first
			time.Sleep(time.Millisecond)
			engine.TriggerHereAnd(core.NewNotifyTrigger("lost", cv2), true,
				core.Options{Timeout: time.Second}, cv2.Notify)
		}()
		select {
		case m := <-missed:
			if !m {
				t.Fatalf("run %d: notification was delivered despite the forced order", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never returned")
		}
	}
}
