package detect

import (
	"strings"
	"testing"

	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// workers gives a test a fixed set of goroutines (distinct gids) that
// execute closures one at a time, so detector scenarios are fully
// deterministic.
type workers struct {
	chans []chan func()
	done  chan struct{}
}

func newWorkers(n int) *workers {
	w := &workers{done: make(chan struct{})}
	for i := 0; i < n; i++ {
		ch := make(chan func())
		w.chans = append(w.chans, ch)
		go func() {
			for f := range ch {
				f()
				w.done <- struct{}{}
			}
		}()
	}
	return w
}

func (w *workers) run(i int, f func()) {
	w.chans[i] <- f
	<-w.done
}

func (w *workers) gid(i int) uint64 {
	var g uint64
	w.run(i, func() { g = locks.GoroutineID() })
	return g
}

func (w *workers) stop() {
	for _, ch := range w.chans {
		close(ch)
	}
}

func TestEraserUnprotectedWriteWriteRace(t *testing.T) {
	d := New(WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "x.f", 0)
	w := newWorkers(2)
	defer w.stop()
	w.run(0, func() { c.Store("Test1.java:15", 1) })
	w.run(1, func() { c.Store("Test1.java:20", 2) })
	races := d.ReportsOf(KindRace)
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1\n%s", len(races), d.FormatAll())
	}
	r := races[0]
	if r.Var != "x.f" || r.Site2 != "Test1.java:20" {
		t.Fatalf("unexpected report: %+v", r)
	}
}

func TestEraserConsistentLockingNoRace(t *testing.T) {
	d := New(WithHappensBefore(false))
	sp := memory.NewSpace()
	m := locks.NewMutex("l")
	d.Instrument(sp, m)
	c := memory.NewCell(sp, "y", 0)
	w := newWorkers(2)
	defer w.stop()
	for i := 0; i < 2; i++ {
		i := i
		for j := 0; j < 3; j++ {
			w.run(i, func() {
				m.Lock()
				c.Store("s", int64(i))
				m.Unlock()
			})
		}
	}
	if races := d.ReportsOf(KindRace); len(races) != 0 {
		t.Fatalf("false positive: %s", d.FormatAll())
	}
}

func TestEraserReadSharingNoRace(t *testing.T) {
	d := New(WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "cfg", 0)
	w := newWorkers(3)
	defer w.stop()
	// Initialization by one thread, then read-only sharing: Eraser's
	// state machine must not report.
	w.run(0, func() { c.Store("init", 42) })
	w.run(1, func() { c.Load("r1") })
	w.run(2, func() { c.Load("r2") })
	if races := d.ReportsOf(KindRace); len(races) != 0 {
		t.Fatalf("read sharing flagged: %s", d.FormatAll())
	}
}

func TestEraserWriteAfterReadShareRace(t *testing.T) {
	d := New(WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "z", 0)
	w := newWorkers(2)
	defer w.stop()
	w.run(0, func() { c.Store("w0", 1) })
	w.run(1, func() { c.Load("r1") })
	w.run(1, func() { c.Store("w1", 2) }) // unprotected write-share
	if races := d.ReportsOf(KindRace); len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
}

func TestHBForkEdgeSuppressesFalseRace(t *testing.T) {
	sp := memory.NewSpace()
	w := newWorkers(2)
	defer w.stop()
	parent, child := w.gid(0), w.gid(1)

	// Without a fork edge the two accesses look concurrent.
	d1 := New(WithEraser(false))
	sp.Trace(d1)
	c1 := memory.NewCell(sp, "a", 0)
	w.run(0, func() { c1.Store("p", 1) })
	w.run(1, func() { c1.Store("c", 2) })
	if len(d1.ReportsOf(KindRace)) != 1 {
		t.Fatalf("expected race without fork edge:\n%s", d1.FormatAll())
	}

	// With a fork edge the same pattern is ordered.
	d2 := New(WithEraser(false))
	sp.Trace(d2)
	c2 := memory.NewCell(sp, "b", 0)
	w.run(0, func() { c2.Store("p", 1) })
	d2.ForkEdge(parent, child)
	w.run(1, func() { c2.Store("c", 2) })
	if races := d2.ReportsOf(KindRace); len(races) != 0 {
		t.Fatalf("fork edge ignored: %s", d2.FormatAll())
	}
}

func TestHBJoinEdgeOrdersChildThenParent(t *testing.T) {
	sp := memory.NewSpace()
	w := newWorkers(2)
	defer w.stop()
	parent, child := w.gid(0), w.gid(1)
	d := New(WithEraser(false))
	sp.Trace(d)
	c := memory.NewCell(sp, "j", 0)
	w.run(1, func() { c.Store("child", 1) })
	d.JoinEdge(parent, child)
	w.run(0, func() { c.Store("parent", 2) })
	if races := d.ReportsOf(KindRace); len(races) != 0 {
		t.Fatalf("join edge ignored: %s", d.FormatAll())
	}
}

func TestHBLockSynchronizedNoRace(t *testing.T) {
	sp := memory.NewSpace()
	m := locks.NewMutex("hl")
	d := New(WithEraser(false))
	d.Instrument(sp, m)
	c := memory.NewCell(sp, "h", 0)
	w := newWorkers(2)
	defer w.stop()
	w.run(0, func() { m.Lock(); c.Store("s0", 1); m.Unlock() })
	w.run(1, func() { m.Lock(); c.Store("s1", 2); m.Unlock() })
	if races := d.ReportsOf(KindRace); len(races) != 0 {
		t.Fatalf("HB false positive under lock: %s", d.FormatAll())
	}
}

func TestHBConcurrentReadsThenWrite(t *testing.T) {
	sp := memory.NewSpace()
	d := New(WithEraser(false))
	sp.Trace(d)
	c := memory.NewCell(sp, "rr", 0)
	w := newWorkers(3)
	defer w.stop()
	w.run(0, func() { c.Load("r0") })
	w.run(1, func() { c.Load("r1") })
	w.run(2, func() { c.Store("w2", 1) })
	races := d.ReportsOf(KindRace)
	if len(races) < 2 {
		t.Fatalf("write after concurrent reads: races = %d, want >= 2\n%s",
			len(races), d.FormatAll())
	}
}

func TestContentionReport(t *testing.T) {
	d := New()
	m := locks.NewMutex("csList")
	m.Observe(d)
	w := newWorkers(2)
	defer w.stop()
	w.run(0, func() { m.LockAt("AsyncAppender.java:100") })
	// Worker 1 tries to lock while held; use TryLock-like probe via a
	// goroutine that will block, so run it async and release.
	done := make(chan struct{})
	go func() {
		m.LockAt("AsyncAppender.java:309")
		m.Unlock()
		close(done)
	}()
	// The BeforeLock hook fires before blocking; wait for the report.
	deadlineExceeded := true
	for i := 0; i < 1000; i++ {
		if len(d.ReportsOf(KindContention)) > 0 {
			deadlineExceeded = false
			break
		}
	}
	_ = deadlineExceeded
	w.run(0, func() { m.Unlock() })
	<-done
	cont := d.ReportsOf(KindContention)
	if len(cont) != 1 {
		t.Fatalf("contentions = %d, want 1\n%s", len(cont), d.FormatAll())
	}
	r := cont[0]
	if r.Site1 != "AsyncAppender.java:309" || r.Site2 != "AsyncAppender.java:100" {
		t.Fatalf("contention sites: %+v", r)
	}
	if !strings.Contains(r.Format(), "Lock contention:") {
		t.Fatalf("format: %s", r.Format())
	}
}

func TestLockOrderCycleReport(t *testing.T) {
	d := New()
	factory := locks.NewMutex("this")
	csList := locks.NewMutex("csList")
	factory.Observe(d)
	csList.Observe(d)
	w := newWorkers(2)
	defer w.stop()
	// Thread 0: csList then factory (clientConnectionFinished path).
	w.run(0, func() {
		csList.LockAt("SocketClientFactory.java:623")
		//cbvet:ignore lockorder intentional inversion: this test feeds the runtime detector the Jigsaw cycle
		factory.LockAt("SocketClientFactory.java:574")
		factory.Unlock()
		csList.Unlock()
	})
	// Thread 1: factory then csList (killClients path).
	w.run(1, func() {
		factory.LockAt("SocketClientFactory.java:867")
		//cbvet:ignore lockorder intentional inversion: this test feeds the runtime detector the Jigsaw cycle
		csList.LockAt("SocketClientFactory.java:872")
		csList.Unlock()
		factory.Unlock()
	})
	dl := d.ReportsOf(KindLockOrder)
	if len(dl) != 1 {
		t.Fatalf("lock-order reports = %d, want 1\n%s", len(dl), d.FormatAll())
	}
	out := dl[0].Format()
	if !strings.Contains(out, "Deadlock found:") {
		t.Fatalf("format: %s", out)
	}
}

func TestRaceReportFormatMatchesPaper(t *testing.T) {
	r := Report{Kind: KindRace, Var: "x.f", Site1: "sample/Test1.java:15", Site2: "sample/Test1.java:20"}
	got := r.Format()
	want := "Data race detected between\n  access of x.f at sample/Test1.java:15, and\n  access of x.f at sample/Test1.java:20."
	if got != want {
		t.Fatalf("format:\n%s\nwant:\n%s", got, want)
	}
}

func TestDeduplication(t *testing.T) {
	d := New(WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "dup", 0)
	w := newWorkers(2)
	defer w.stop()
	for k := 0; k < 5; k++ {
		w.run(0, func() { c.Store("sA", 1) })
		w.run(1, func() { c.Store("sB", 2) })
	}
	if races := d.ReportsOf(KindRace); len(races) != 1 {
		t.Fatalf("dedup failed: %d reports", len(races))
	}
}

func TestSummaryAndKinds(t *testing.T) {
	d := New()
	if s := d.Summary(); !strings.Contains(s, "data race: 0") {
		t.Fatalf("summary: %s", s)
	}
	if KindRace.String() != "data race" || KindContention.String() != "lock contention" ||
		KindLockOrder.String() != "deadlock" || Kind(9).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
	if (Report{Kind: Kind(9)}).Format() != "unknown report" {
		t.Fatal("unknown format broken")
	}
}

func TestReportKeyNormalizesSymmetricSites(t *testing.T) {
	a := Report{Kind: KindRace, Var: "v", Site1: "b", Site2: "a"}
	b := Report{Kind: KindRace, Var: "v", Site1: "a", Site2: "b"}
	if a.Key() != b.Key() {
		t.Fatal("symmetric race keys differ")
	}
	c := Report{Kind: KindLockOrder, Var: "v", Site1: "b", Site2: "a"}
	e := Report{Kind: KindLockOrder, Var: "v", Site1: "a", Site2: "b"}
	if c.Key() == e.Key() {
		t.Fatal("lock-order keys must preserve site order")
	}
}

func TestBothDetectorsTogether(t *testing.T) {
	d := New()
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "both", 0)
	w := newWorkers(2)
	defer w.stop()
	w.run(0, func() { c.Store("sA", 1) })
	w.run(1, func() { c.Store("sB", 2) })
	// Both detectors fire, but dedup folds identical (kind,var,sites).
	races := d.ReportsOf(KindRace)
	if len(races) == 0 {
		t.Fatalf("no race from combined detectors")
	}
}
