package detect

import (
	"strings"
	"testing"

	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

func TestAtomicityViolationDetected(t *testing.T) {
	d := New(WithEraser(false), WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "sb.len", 8)
	w := newWorkers(2)
	defer w.stop()

	// Worker 0 runs the "append" block: read length, (interference),
	// read again — the StringBuffer stale-length pattern.
	w.run(0, func() { d.BeginAtomic("StringBuffer.append") })
	w.run(0, func() { c.Load("append:444") })
	w.run(1, func() { c.Store("setLength:239", 0) }) // interferer
	w.run(0, func() { c.Load("append:449") })        // unserializable
	w.run(0, func() { d.EndAtomic() })

	got := d.ReportsOf(KindAtomicity)
	if len(got) != 1 {
		t.Fatalf("atomicity reports = %d\n%s", len(got), d.FormatAll())
	}
	r := got[0]
	if r.Site1 != "setLength:239" || r.Site2 != "append:449" || r.Held1 != "StringBuffer.append" {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(r.Format(), "Atomicity violation detected") {
		t.Fatalf("format: %s", r.Format())
	}
}

func TestAtomicitySerialExecutionClean(t *testing.T) {
	d := New(WithEraser(false), WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "x", 0)
	w := newWorkers(2)
	defer w.stop()

	// Interference before or after the block, but not between two block
	// accesses: serializable, no report.
	w.run(1, func() { c.Store("before", 1) })
	w.run(0, func() { d.BeginAtomic("blk") })
	w.run(0, func() { c.Load("in1") })
	w.run(0, func() { c.Load("in2") })
	w.run(0, func() { d.EndAtomic() })
	w.run(1, func() { c.Store("after", 2) })

	if got := d.ReportsOf(KindAtomicity); len(got) != 0 {
		t.Fatalf("false positive: %s", d.FormatAll())
	}
}

func TestAtomicityReadReadNotConflicting(t *testing.T) {
	d := New(WithEraser(false), WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "x", 0)
	w := newWorkers(2)
	defer w.stop()

	// Reads interleaving reads are serializable.
	w.run(0, func() { d.BeginAtomic("blk") })
	w.run(0, func() { c.Load("in1") })
	w.run(1, func() { c.Load("other-read") })
	w.run(0, func() { c.Load("in2") })
	w.run(0, func() { d.EndAtomic() })

	if got := d.ReportsOf(KindAtomicity); len(got) != 0 {
		t.Fatalf("read-read flagged: %s", d.FormatAll())
	}
}

func TestAtomicityWriteInBlockReadOutside(t *testing.T) {
	d := New(WithEraser(false), WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "x", 0)
	w := newWorkers(2)
	defer w.stop()

	// Block writes, other goroutine reads, block writes again: the
	// intermediate read observed a half-done state — unserializable.
	w.run(0, func() { d.BeginAtomic("blk") })
	w.run(0, func() { c.Store("w1", 1) })
	w.run(1, func() { c.Load("peek") })
	w.run(0, func() { c.Store("w2", 2) })
	w.run(0, func() { d.EndAtomic() })

	if got := d.ReportsOf(KindAtomicity); len(got) != 1 {
		t.Fatalf("reports = %d\n%s", len(got), d.FormatAll())
	}
}

func TestEndAtomicStopsTracking(t *testing.T) {
	d := New(WithEraser(false), WithHappensBefore(false))
	sp := memory.NewSpace()
	d.Instrument(sp)
	c := memory.NewCell(sp, "x", 0)
	w := newWorkers(2)
	defer w.stop()

	w.run(0, func() { d.BeginAtomic("blk") })
	w.run(0, func() { c.Load("in") })
	w.run(0, func() { d.EndAtomic() })
	w.run(1, func() { c.Store("later", 1) })
	w.run(0, func() { c.Load("outside") })

	if got := d.ReportsOf(KindAtomicity); len(got) != 0 {
		t.Fatalf("closed block still tracked: %s", d.FormatAll())
	}
}

func TestThreeLockCycleDetected(t *testing.T) {
	d := New()
	a := locks.NewMutex("A")
	b := locks.NewMutex("B")
	c := locks.NewMutex("C")
	for _, m := range []*locks.Mutex{a, b, c} {
		m.Observe(d)
	}
	w := newWorkers(3)
	defer w.stop()
	// A->B, B->C, C->A: a three-lock cycle with no two-lock reversal.
	//cbvet:ignore lockorder intentional: this test builds a three-way cycle to exercise the detector
	w.run(0, func() { a.LockAt("t0:a"); b.LockAt("t0:b"); b.Unlock(); a.Unlock() })
	//cbvet:ignore lockorder intentional: this test builds a three-way cycle to exercise the detector
	w.run(1, func() { b.LockAt("t1:b"); c.LockAt("t1:c"); c.Unlock(); b.Unlock() })
	//cbvet:ignore lockorder intentional: this test builds a three-way cycle to exercise the detector
	w.run(2, func() { c.LockAt("t2:c"); a.LockAt("t2:a"); a.Unlock(); c.Unlock() })

	var chained []Report
	for _, r := range d.ReportsOf(KindLockOrder) {
		if len(r.Chain) > 0 {
			chained = append(chained, r)
		}
	}
	if len(chained) == 0 {
		t.Fatalf("three-lock cycle not detected:\n%s", d.FormatAll())
	}
	if !strings.Contains(chained[0].Format(), "lock-order cycle") {
		t.Fatalf("format: %s", chained[0].Format())
	}
}

func TestAtomicityKindString(t *testing.T) {
	if KindAtomicity.String() != "atomicity violation" {
		t.Fatal("kind label wrong")
	}
}
