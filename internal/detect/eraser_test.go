package detect

import (
	"testing"
	"testing/quick"

	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// TestEraserStateMachineDirect drives the lockset algorithm directly
// through its states.
func TestEraserStateMachineDirect(t *testing.T) {
	e := newEraser()
	c := memory.NewCell(nil, "v", 0)
	l := locks.NewMutex("l")

	// virgin -> exclusive: first access never reports.
	if rs := e.access(1, c, memory.Write, "s1"); len(rs) != 0 {
		t.Fatal("first access reported")
	}
	if e.state[c].st != exclusive {
		t.Fatalf("state = %v, want exclusive", e.state[c].st)
	}
	// Same-owner accesses stay exclusive.
	e.access(1, c, memory.Read, "s2")
	if e.state[c].st != exclusive {
		t.Fatal("same-owner access left exclusive")
	}
	// Second thread reading under the lock moves to shared with
	// C(v) = {l}; no report.
	e.lockAcquired(2, l)
	if rs := e.access(2, c, memory.Read, "s3"); len(rs) != 0 {
		t.Fatal("read-share reported")
	}
	if e.state[c].st != shared {
		t.Fatalf("state = %v, want shared", e.state[c].st)
	}
	// Writing while still holding the lock: sharedModified but C(v)
	// stays {l} — still no report.
	if rs := e.access(2, c, memory.Write, "s4"); len(rs) != 0 {
		t.Fatal("locked write reported")
	}
	if e.state[c].st != sharedModified {
		t.Fatalf("state = %v, want sharedModified", e.state[c].st)
	}
	// Thread 3 writing without the lock empties C(v): report.
	e.lockReleased(2, l)
	if rs := e.access(3, c, memory.Write, "s5"); len(rs) != 1 {
		t.Fatalf("unlocked write reports = %d, want 1", len(rs))
	}
	// Only one report per variable.
	if rs := e.access(1, c, memory.Write, "s6"); len(rs) != 0 {
		t.Fatal("second report for same variable")
	}
}

// Property: the lockset C(v) only ever shrinks once refinement starts.
func TestLocksetMonotoneShrinkProperty(t *testing.T) {
	lockPool := []*locks.Mutex{locks.NewMutex("a"), locks.NewMutex("b"), locks.NewMutex("c")}
	f := func(ops []uint8) bool {
		e := newEraser()
		c := memory.NewCell(nil, "p", 0)
		e.access(1, c, memory.Write, "init") // exclusive by thread 1
		prevSize := -1
		for _, op := range ops {
			gid := uint64(2 + op%2) // threads 2 and 3
			// Hold a pseudo-random subset of locks.
			var held []*locks.Mutex
			for j, l := range lockPool {
				if op&(1<<uint(j+2)) != 0 {
					held = append(held, l)
					e.lockAcquired(gid, l)
				}
			}
			kind := memory.Read
			if op&2 != 0 {
				kind = memory.Write
			}
			e.access(gid, c, kind, "s")
			v := e.state[c]
			if v.cset != nil {
				if prevSize >= 0 && len(v.cset) > prevSize {
					return false // lockset grew
				}
				prevSize = len(v.cset)
			}
			for _, l := range held {
				e.lockReleased(gid, l)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a variable only ever accessed by one goroutine never
// reports, whatever the access mix.
func TestSingleThreadNeverReportsProperty(t *testing.T) {
	f := func(ops []bool) bool {
		e := newEraser()
		c := memory.NewCell(nil, "solo", 0)
		for _, w := range ops {
			kind := memory.Read
			if w {
				kind = memory.Write
			}
			if rs := e.access(7, c, kind, "s"); len(rs) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
