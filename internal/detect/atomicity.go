package detect

import (
	"cbreak/internal/memory"
)

// This file implements an Atomizer-style dynamic atomicity-violation
// detector (Flanagan & Freund, POPL 2004 — reference [11] of the paper):
// a developer declares blocks that should be serializable with
// BeginAtomic/EndAtomic, and the detector reports an observed
// unserializable pattern — a cell accessed inside the block, then
// conflictingly accessed by another goroutine, then accessed again by
// the block. That three-access pattern (e.g. read-write'-read, the
// StringBuffer stale-length shape) cannot be reordered into a serial
// execution of the block.
//
// Methodology I uses these reports exactly like race reports: the two
// outer sites become the breakpoint sides, with the interferer ordered
// into the block's window.

// atomicBlock tracks one goroutine's active atomic block.
type atomicBlock struct {
	gid  uint64
	name string
	// accessed records the block's accesses: cell -> strongest op seen
	// (write dominates read) and the first access site.
	accessed map[*memory.Cell]blockAccess
	// interfered records conflicting accesses by other goroutines since
	// the block accessed the cell: cell -> interfering site.
	interfered map[*memory.Cell]string
}

type blockAccess struct {
	op   memory.Op
	site string
}

// BeginAtomic declares that the calling goroutine enters a block that
// should be serializable. Blocks do not nest; a second BeginAtomic
// replaces the first.
func (d *Detector) BeginAtomic(name string) {
	gid := gidOf()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.atomic == nil {
		d.atomic = make(map[uint64]*atomicBlock)
	}
	d.atomic[gid] = &atomicBlock{
		gid:        gid,
		name:       name,
		accessed:   make(map[*memory.Cell]blockAccess),
		interfered: make(map[*memory.Cell]string),
	}
}

// EndAtomic closes the calling goroutine's atomic block.
func (d *Detector) EndAtomic() {
	gid := gidOf()
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.atomic, gid)
}

// atomicityCheck processes one access for the atomicity detector; the
// caller holds d.mu.
func (d *Detector) atomicityCheck(gid uint64, c *memory.Cell, op memory.Op, site string) {
	blk := d.atomic[gid]
	if blk != nil {
		if interferer, hit := blk.interfered[c]; hit {
			// Third access of an unserializable pattern.
			first := blk.accessed[c]
			d.report(Report{
				Kind:  KindAtomicity,
				Var:   c.Name(),
				Site1: interferer,
				Site2: site,
				Held1: blk.name,
				Held2: first.site,
			})
			delete(blk.interfered, c)
		}
		prev, seen := blk.accessed[c]
		if !seen || op == memory.Write {
			blk.accessed[c] = blockAccess{op: op, site: site}
		} else {
			_ = prev
		}
	}
	// Record interference against every other goroutine's active block.
	for otherGid, other := range d.atomic {
		if otherGid == gid {
			continue
		}
		if first, ok := other.accessed[c]; ok {
			if op == memory.Write || first.op == memory.Write {
				other.interfered[c] = site
			}
		}
	}
}
