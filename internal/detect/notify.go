package detect

import (
	"cbreak/internal/locks"
)

// This file extends the conflict detector to "contentions over
// synchronization objects" in the missed-notification sense: the paper's
// Methodology II relies on a detector that can surface the wait/notify
// conflicts behind stalls like log4j's, pool's, and Jigsaw's.
//
// A lost-notification candidate is a Notify that found no waiter on a
// condition variable that the program does wait on (before or after).
// Such a notify is not necessarily a bug — many protocols notify
// opportunistically — but every missed-notification stall starts with
// one, so the candidates are exactly what a developer walks through
// with concurrent breakpoints (section 5).

// condState tracks one observed condition variable.
type condState struct {
	waitSites   map[string]struct{}
	missedSites map[string]struct{} // notify sites that fired with no waiter
}

// OnWait implements locks.CondObserver.
func (d *Detector) OnWait(c *locks.Cond, gid uint64, site string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.condStateFor(c)
	st.waitSites[site] = struct{}{}
	// A wait after a missed notify on the same condition completes the
	// lost-wakeup pattern: report each (notifySite, waitSite) pair.
	for notifySite := range st.missedSites {
		d.report(Report{
			Kind:  KindLostNotify,
			Var:   c.Name(),
			Site1: notifySite,
			Site2: site,
		})
	}
}

// OnNotify implements locks.CondObserver.
func (d *Detector) OnNotify(c *locks.Cond, gid uint64, site string, delivered bool) {
	if delivered {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.condStateFor(c)
	st.missedSites[site] = struct{}{}
	// If the program already waited on this condition, the pattern is
	// complete in the other order too.
	for waitSite := range st.waitSites {
		d.report(Report{
			Kind:  KindLostNotify,
			Var:   c.Name(),
			Site1: site,
			Site2: waitSite,
		})
	}
}

// condStateFor returns (creating) the state record; caller holds d.mu.
func (d *Detector) condStateFor(c *locks.Cond) *condState {
	if d.conds == nil {
		d.conds = make(map[*locks.Cond]*condState)
	}
	st, ok := d.conds[c]
	if !ok {
		st = &condState{
			waitSites:   make(map[string]struct{}),
			missedSites: make(map[string]struct{}),
		}
		d.conds[c] = st
	}
	return st
}

// InstrumentConds attaches the detector to condition variables.
func (d *Detector) InstrumentConds(cs ...*locks.Cond) {
	for _, c := range cs {
		c.Observe(d)
	}
}
