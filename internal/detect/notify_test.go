package detect

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/locks"
)

func TestLostNotifyMissedThenWait(t *testing.T) {
	d := New()
	m := locks.NewMutex("mon")
	c := locks.NewCond("cv", m)
	d.InstrumentConds(c)

	// Notify with no waiter (lost), then a wait: the classic lost
	// wakeup pattern, in notification-first order.
	c.NotifyAt("Pool.java:return")
	m.Lock()
	if c.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("wait should time out (the notification was lost)")
	}
	m.Unlock()

	got := d.ReportsOf(KindLostNotify)
	if len(got) != 1 {
		t.Fatalf("reports = %d\n%s", len(got), d.FormatAll())
	}
	r := got[0]
	if r.Site1 != "Pool.java:return" || r.Var != "cv" {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(r.Format(), "Lost notification candidate") {
		t.Fatalf("format: %s", r.Format())
	}
}

func TestLostNotifyWaitThenMiss(t *testing.T) {
	d := New()
	m := locks.NewMutex("mon2")
	c := locks.NewCond("cv2", m)
	d.InstrumentConds(c)

	// A wait that times out, then a missed notify: still a candidate
	// (the program does wait on this condition).
	m.Lock()
	c.WaitTimeout(5 * time.Millisecond)
	m.Unlock()
	c.NotifyAt("late-notify")

	got := d.ReportsOf(KindLostNotify)
	if len(got) != 1 {
		t.Fatalf("reports = %d\n%s", len(got), d.FormatAll())
	}
}

func TestDeliveredNotifyNotReported(t *testing.T) {
	d := New()
	m := locks.NewMutex("mon3")
	c := locks.NewCond("cv3", m)
	d.InstrumentConds(c)

	woke := make(chan struct{})
	go func() {
		m.Lock()
		c.Wait()
		m.Unlock()
		close(woke)
	}()
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.NotifyAt("delivered")
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
	if got := d.ReportsOf(KindLostNotify); len(got) != 0 {
		t.Fatalf("delivered notify reported: %s", d.FormatAll())
	}
}

func TestLostNotifyKindLabel(t *testing.T) {
	if KindLostNotify.String() != "lost notification" {
		t.Fatal("label wrong")
	}
}
