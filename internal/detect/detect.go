// Package detect implements the dynamic conflict detectors that feed
// breakpoint insertion in the paper's two methodologies (section 5):
//
//   - Methodology I uses bug reports from a testing tool (CalFuzzer in
//     the paper). The Eraser-style lockset detector and the
//     FastTrack-style happens-before detector here produce data-race
//     reports in the same "access of x at file:line" format, and the
//     lock-order detector produces deadlock reports.
//   - Methodology II runs a conflict detector to list *all* potential
//     conflict states — data races, lock contentions, and contentions
//     over synchronization objects — which the developer then turns into
//     candidate breakpoints one by one.
//
// A Detector attaches to the instrumented substrates: it implements
// memory.Tracer for data accesses and locks.Observer for lock events.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/vclock"
)

// Kind labels a conflict report.
type Kind int

const (
	// KindRace is a data race: same location, at least one write, no
	// common lock / no happens-before edge.
	KindRace Kind = iota
	// KindContention is two threads contending for the same lock.
	KindContention
	// KindLockOrder is a lock-order cycle (potential deadlock).
	KindLockOrder
	// KindAtomicity is an observed unserializable interleaving inside a
	// declared atomic block.
	KindAtomicity
	// KindLostNotify is a notification that fired with no waiter on a
	// condition the program waits on — a missed-notification candidate.
	KindLostNotify
)

// String returns the report-kind label.
func (k Kind) String() string {
	switch k {
	case KindRace:
		return "data race"
	case KindContention:
		return "lock contention"
	case KindLockOrder:
		return "deadlock"
	case KindAtomicity:
		return "atomicity violation"
	case KindLostNotify:
		return "lost notification"
	default:
		return "unknown"
	}
}

// Report is one detected potential conflict state. Site1/Site2 are the
// source labels of the two conflicting operations; Var is the shared
// variable (races) or lock (contention/deadlock) name. For lock-order
// reports, Held1/Held2 name the locks each thread already held.
type Report struct {
	Kind         Kind
	Var          string
	Site1, Site2 string
	Held1, Held2 string
	// Chain carries the lock-name sequence of a lock-order cycle longer
	// than two locks (nil for two-lock cycles).
	Chain []string
}

// Key returns a canonical identity for deduplication: site pair order is
// normalized for symmetric kinds.
func (r Report) Key() string {
	s1, s2 := r.Site1, r.Site2
	if r.Kind != KindLockOrder && s1 > s2 {
		s1, s2 = s2, s1
	}
	return fmt.Sprintf("%d|%s|%s|%s|%s", r.Kind, r.Var, s1, s2, strings.Join(r.Chain, ">"))
}

// Format renders the report in the paper's CalFuzzer-like shape.
func (r Report) Format() string {
	switch r.Kind {
	case KindRace:
		return fmt.Sprintf("Data race detected between\n  access of %s at %s, and\n  access of %s at %s.",
			r.Var, r.Site1, r.Var, r.Site2)
	case KindContention:
		return fmt.Sprintf("Lock contention:\n  %s,\n  %s", r.Site1, r.Site2)
	case KindLockOrder:
		if len(r.Chain) > 0 {
			return fmt.Sprintf("Deadlock found (lock-order cycle):\n  %s -> %s",
				strings.Join(r.Chain, " -> "), r.Held1)
		}
		return fmt.Sprintf("Deadlock found:\n  Thread trying to acquire lock %s while holding lock %s at %s\n  Thread trying to acquire lock %s while holding lock %s at %s",
			r.Var, r.Held1, r.Site1, r.Held2, r.Var, r.Site2)
	case KindAtomicity:
		return fmt.Sprintf("Atomicity violation detected:\n  atomic block %q re-accessed %s at %s after a conflicting access at %s.",
			r.Held1, r.Var, r.Site2, r.Site1)
	case KindLostNotify:
		return fmt.Sprintf("Lost notification candidate on %s:\n  notify with no waiter at %s,\n  wait at %s",
			r.Var, r.Site1, r.Site2)
	default:
		return "unknown report"
	}
}

// Detector aggregates the sub-detectors. Attach it to a memory.Space via
// Space.Trace and to each instrumented Mutex via Mutex.Observe (or use
// locks through helpers that register automatically).
type Detector struct {
	mu sync.Mutex

	lockset   *eraser
	hb        *fasttrack
	seen      map[string]Report
	order     []string
	useEraser bool
	useHB     bool

	// lock-order graph: edge held -> want with the sites involved.
	edges map[edgeKey]edgeInfo

	// atomic tracks each goroutine's active atomic block (atomicity.go).
	atomic map[uint64]*atomicBlock

	// conds tracks observed condition variables (notify.go).
	conds map[*locks.Cond]*condState
}

// gidOf returns the calling goroutine's id (alias of the locks package's
// parser, re-exported for the atomicity detector).
func gidOf() uint64 { return locks.GoroutineID() }

type edgeKey struct {
	held, want *locks.Mutex
}

type edgeInfo struct {
	heldSite, wantSite string
}

// Option configures a Detector.
type Option func(*Detector)

// WithEraser enables the lockset race detector (default on).
func WithEraser(on bool) Option { return func(d *Detector) { d.useEraser = on } }

// WithHappensBefore enables the vector-clock race detector (default on).
func WithHappensBefore(on bool) Option { return func(d *Detector) { d.useHB = on } }

// New returns a Detector with both race detectors enabled.
func New(opts ...Option) *Detector {
	d := &Detector{
		lockset:   newEraser(),
		hb:        newFastTrack(),
		seen:      make(map[string]Report),
		edges:     make(map[edgeKey]edgeInfo),
		useEraser: true,
		useHB:     true,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

func (d *Detector) report(r Report) {
	k := r.Key()
	if _, dup := d.seen[k]; dup {
		return
	}
	d.seen[k] = r
	d.order = append(d.order, k)
}

// Reports returns all distinct reports in detection order.
func (d *Detector) Reports() []Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Report, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.seen[k])
	}
	return out
}

// ReportsOf returns the distinct reports of one kind.
func (d *Detector) ReportsOf(kind Kind) []Report {
	var out []Report
	for _, r := range d.Reports() {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// FormatAll renders every report, separated by blank lines, in a
// deterministic order (detection order).
func (d *Detector) FormatAll() string {
	var parts []string
	for _, r := range d.Reports() {
		parts = append(parts, r.Format())
	}
	return strings.Join(parts, "\n\n")
}

// OnAccess implements memory.Tracer: feed the access to the enabled race
// detectors.
func (d *Detector) OnAccess(gid uint64, c *memory.Cell, op memory.Op, site string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.useEraser {
		for _, r := range d.lockset.access(gid, c, op, site) {
			d.report(r)
		}
	}
	if d.useHB {
		for _, r := range d.hb.access(gid, c, op, site) {
			d.report(r)
		}
	}
	if d.atomic != nil {
		d.atomicityCheck(gid, c, op, site)
	}
}

// BeforeLock implements locks.Observer: contention and lock-order
// detection happen at acquisition requests.
func (d *Detector) BeforeLock(m *locks.Mutex, gid uint64, site string) {
	// Contention: the lock is currently held by another goroutine.
	if owner, ownerSite := m.Owner(); owner != 0 && owner != gid {
		d.mu.Lock()
		d.report(Report{Kind: KindContention, Var: m.Name(), Site1: site, Site2: ownerSite})
		d.mu.Unlock()
	}
	// Lock-order: add edge held->m for every held lock; report when the
	// new edge closes a cycle in the lock-order graph. Two-lock cycles
	// (the common case) report the paper's two-site shape; longer
	// cycles (GoodLock-style) carry the full chain.
	held := locks.HeldBy(gid)
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range held {
		if h == m {
			continue
		}
		k := edgeKey{held: h, want: m}
		if _, ok := d.edges[k]; !ok {
			_, hSite := h.Owner()
			d.edges[k] = edgeInfo{heldSite: hSite, wantSite: site}
		}
		if rev, ok := d.edges[edgeKey{held: m, want: h}]; ok {
			d.report(Report{
				Kind:  KindLockOrder,
				Var:   m.Name(),
				Held1: h.Name(),
				Site1: site,
				Held2: h.Name(),
				Site2: rev.wantSite,
			})
			continue
		}
		if chain := d.findCycle(m, h); chain != nil {
			d.report(Report{
				Kind:  KindLockOrder,
				Var:   m.Name(),
				Held1: h.Name(),
				Site1: site,
				Held2: chain[0],
				Site2: "(chain)",
				Chain: chain,
			})
		}
	}
}

// findCycle searches the lock-order graph for a path from `from` back to
// `to` of length >= 2 edges (longer cycles than the direct reversal,
// which is handled separately). It returns the lock-name chain or nil.
func (d *Detector) findCycle(from, to *locks.Mutex) []string {
	visited := map[*locks.Mutex]bool{}
	var path []string
	var dfs func(cur *locks.Mutex, depth int) bool
	dfs = func(cur *locks.Mutex, depth int) bool {
		if depth > 8 {
			return false // bound the search; real chains are short
		}
		for k := range d.edges {
			if k.held != cur || visited[k.want] {
				continue
			}
			if k.want == to && depth >= 1 {
				path = append(path, cur.Name(), to.Name())
				return true
			}
			visited[k.want] = true
			if dfs(k.want, depth+1) {
				path = append([]string{cur.Name()}, path...)
				return true
			}
		}
		return false
	}
	visited[from] = true
	if dfs(from, 0) {
		return path
	}
	return nil
}

// AfterLock implements locks.Observer: acquire edge for happens-before.
func (d *Detector) AfterLock(m *locks.Mutex, gid uint64, site string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.useHB {
		d.hb.acquire(gid, m)
	}
	if d.useEraser {
		d.lockset.lockAcquired(gid, m)
	}
}

// BeforeUnlock implements locks.Observer: release edge for
// happens-before.
func (d *Detector) BeforeUnlock(m *locks.Mutex, gid uint64, site string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.useHB {
		d.hb.release(gid, m)
	}
	if d.useEraser {
		d.lockset.lockReleased(gid, m)
	}
}

// ForkEdge records that parent started child (happens-before edge from
// the fork point); call it right before spawning a traced goroutine.
func (d *Detector) ForkEdge(parent, child uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hb.fork(parent, child)
}

// JoinEdge records that parent joined child (happens-before edge to the
// join point).
func (d *Detector) JoinEdge(parent, child uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hb.join(parent, child)
}

// Instrument attaches the detector to a memory space and a set of locks
// in one call.
func (d *Detector) Instrument(sp *memory.Space, ms ...*locks.Mutex) {
	if sp != nil {
		sp.Trace(d)
	}
	for _, m := range ms {
		m.Observe(d)
	}
}

// Summary returns per-kind report counts, formatted.
func (d *Detector) Summary() string {
	counts := map[Kind]int{}
	for _, r := range d.Reports() {
		counts[r.Kind]++
	}
	kinds := []Kind{KindRace, KindContention, KindLockOrder}
	var parts []string
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s: %d", k, counts[k]))
	}
	return strings.Join(parts, ", ")
}

// sortedNames is a helper used by sub-detectors for deterministic
// diagnostics.
func sortedNames(ms map[*locks.Mutex]struct{}) []string {
	out := make([]string, 0, len(ms))
	for m := range ms {
		out = append(out, m.Name())
	}
	sort.Strings(out)
	return out
}

// hbVC exposes the detector's current clock for a goroutine (testing).
func (d *Detector) hbVC(gid uint64) vclock.VC {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hb.threadVC(gid).Clone()
}
