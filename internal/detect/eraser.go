package detect

import (
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// eraser implements the lockset algorithm of Savage et al. (Eraser,
// 1997), the detector the paper's Methodology II names for enumerating
// potential conflict states.
//
// Each shared variable v carries a candidate set C(v) of locks. On every
// access by thread t, C(v) is intersected with the set of locks t holds;
// if C(v) becomes empty while v is in a write-shared state, the accesses
// are not consistently protected and a race is reported.
//
// The standard state machine limits false positives from initialization
// and read-sharing:
//
//	virgin -> exclusive (first access, owned by one thread)
//	exclusive -> shared (read by a second thread)
//	exclusive|shared -> sharedModified (write by a second thread)
//
// Lockset refinement starts when the variable leaves exclusive; races
// are only reported in sharedModified.
type eraser struct {
	held  map[uint64]map[*locks.Mutex]struct{} // gid -> held locks
	state map[*memory.Cell]*eraserVar
}

type eraserState int

const (
	virgin eraserState = iota
	exclusive
	shared
	sharedModified
)

type eraserVar struct {
	st        eraserState
	owner     uint64
	cset      map[*locks.Mutex]struct{} // candidate lockset C(v)
	firstSite string
	reported  bool
}

func newEraser() *eraser {
	return &eraser{
		held:  make(map[uint64]map[*locks.Mutex]struct{}),
		state: make(map[*memory.Cell]*eraserVar),
	}
}

func (e *eraser) lockAcquired(gid uint64, m *locks.Mutex) {
	s, ok := e.held[gid]
	if !ok {
		s = make(map[*locks.Mutex]struct{})
		e.held[gid] = s
	}
	s[m] = struct{}{}
}

func (e *eraser) lockReleased(gid uint64, m *locks.Mutex) {
	if s, ok := e.held[gid]; ok {
		delete(s, m)
		if len(s) == 0 {
			delete(e.held, gid)
		}
	}
}

func (e *eraser) heldSet(gid uint64) map[*locks.Mutex]struct{} { return e.held[gid] }

// access runs the state machine for one access and returns any new race
// reports.
func (e *eraser) access(gid uint64, c *memory.Cell, op memory.Op, site string) []Report {
	v, ok := e.state[c]
	if !ok {
		v = &eraserVar{st: virgin}
		e.state[c] = v
	}
	switch v.st {
	case virgin:
		v.st = exclusive
		v.owner = gid
		v.firstSite = site
		return nil
	case exclusive:
		if gid == v.owner {
			v.firstSite = site
			return nil
		}
		// Second thread: initialize C(v) to current holder's locks and
		// move to shared / sharedModified.
		v.cset = intersect(nil, e.heldSet(gid))
		if op == memory.Write {
			v.st = sharedModified
		} else {
			v.st = shared
		}
	case shared:
		v.cset = intersect(v.cset, e.heldSet(gid))
		if op == memory.Write {
			v.st = sharedModified
		}
	case sharedModified:
		v.cset = intersect(v.cset, e.heldSet(gid))
	}
	if v.st == sharedModified && len(v.cset) == 0 && !v.reported {
		v.reported = true
		return []Report{{
			Kind:  KindRace,
			Var:   c.Name(),
			Site1: v.firstSite,
			Site2: site,
		}}
	}
	// Remember the latest access site for more precise pairing.
	v.firstSite = site
	return nil
}

// intersect returns a∩b, treating nil a as "unconstrained" (first
// refinement) and nil b as the empty set.
func intersect(a, b map[*locks.Mutex]struct{}) map[*locks.Mutex]struct{} {
	out := make(map[*locks.Mutex]struct{})
	if a == nil {
		for m := range b {
			out[m] = struct{}{}
		}
		return out
	}
	for m := range a {
		if _, ok := b[m]; ok {
			out[m] = struct{}{}
		}
	}
	return out
}
