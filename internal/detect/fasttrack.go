package detect

import (
	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/vclock"
)

// fasttrack implements a happens-before race detector in the style of
// FastTrack (Flanagan & Freund, PLDI 2009): per-thread vector clocks,
// per-lock release clocks, and per-variable access metadata that stays in
// the compact epoch representation for the common totally-ordered case
// and inflates to a full read vector clock only under concurrent reads.
//
// Compared to the lockset detector it reports no false positives for
// programs synchronized by fork/join or lock happens-before edges, at
// the cost of missing races the observed schedule happened to order.
// Running both (the Detector default) mirrors how a CalFuzzer-like tool
// combines imprecise candidate generation with precise confirmation.
type fasttrack struct {
	threads map[uint64]vclock.VC
	lockRel map[*locks.Mutex]vclock.VC
	vars    map[*memory.Cell]*ftVar
}

type ftVar struct {
	write     vclock.Epoch
	writeSite string
	read      vclock.Epoch // valid when readVC == nil
	readSite  string
	readVC    vclock.VC         // inflated read clock (concurrent reads)
	readSites map[uint64]string // per-thread last read site when inflated
}

func newFastTrack() *fasttrack {
	return &fasttrack{
		threads: make(map[uint64]vclock.VC),
		lockRel: make(map[*locks.Mutex]vclock.VC),
		vars:    make(map[*memory.Cell]*ftVar),
	}
}

// threadVC returns (creating on demand) the clock of thread gid; a new
// thread starts with its own component at 1.
func (f *fasttrack) threadVC(gid uint64) vclock.VC {
	vc, ok := f.threads[gid]
	if !ok {
		vc = vclock.New()
		vc.Set(gid, 1)
		f.threads[gid] = vc
	}
	return vc
}

func (f *fasttrack) acquire(gid uint64, m *locks.Mutex) {
	if rel, ok := f.lockRel[m]; ok {
		f.threadVC(gid).Join(rel)
	}
}

func (f *fasttrack) release(gid uint64, m *locks.Mutex) {
	vc := f.threadVC(gid)
	f.lockRel[m] = vc.Clone()
	vc.Tick(gid)
}

func (f *fasttrack) fork(parent, child uint64) {
	pvc := f.threadVC(parent)
	cvc := f.threadVC(child)
	cvc.Join(pvc)
	pvc.Tick(parent)
}

func (f *fasttrack) join(parent, child uint64) {
	cvc := f.threadVC(child)
	f.threadVC(parent).Join(cvc)
	cvc.Tick(child)
}

func (f *fasttrack) access(gid uint64, c *memory.Cell, op memory.Op, site string) []Report {
	vc := f.threadVC(gid)
	v, ok := f.vars[c]
	if !ok {
		v = &ftVar{}
		f.vars[c] = v
	}
	var reports []Report
	race := func(otherSite string) {
		reports = append(reports, Report{
			Kind:  KindRace,
			Var:   c.Name(),
			Site1: otherSite,
			Site2: site,
		})
	}

	// Write-X check: any access races with a concurrent previous write.
	if !v.write.Zero() && !v.write.LEqVC(vc) && v.write.ID != gid {
		race(v.writeSite)
	}

	if op == memory.Write {
		// Write also races with concurrent previous reads.
		if v.readVC != nil {
			for id, t := range v.readVC {
				if id != gid && t > vc.Get(id) {
					race(v.readSites[id])
				}
			}
		} else if !v.read.Zero() && !v.read.LEqVC(vc) && v.read.ID != gid {
			race(v.readSite)
		}
		v.write = vclock.Epoch{ID: gid, T: vc.Get(gid)}
		v.writeSite = site
		// Same-epoch reads are subsumed by the write.
		v.read = vclock.Epoch{}
		v.readVC = nil
		v.readSites = nil
		return reports
	}

	// Read: record in epoch or inflated form.
	cur := vclock.Epoch{ID: gid, T: vc.Get(gid)}
	switch {
	case v.readVC != nil:
		v.readVC.Set(gid, cur.T)
		v.readSites[gid] = site
	case v.read.Zero() || v.read.ID == gid || v.read.LEqVC(vc):
		// Totally ordered with the previous read: stay in epoch form.
		v.read = cur
		v.readSite = site
	default:
		// Concurrent reads: inflate.
		v.readVC = vclock.New()
		v.readVC.Set(v.read.ID, v.read.T)
		v.readVC.Set(gid, cur.T)
		v.readSites = map[uint64]string{v.read.ID: v.readSite, gid: site}
	}
	return reports
}
