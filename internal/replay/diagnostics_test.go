package replay

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScheduleViolationDetails(t *testing.T) {
	// Declared order a, b, c — but a never arrives. b and c both block
	// and time out; each violation must name the stuck point, the
	// blocker (a), and the other blocked point.
	s := NewSchedule(50*time.Millisecond, "a", "b", "c")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Reach("b") }()
	go func() { defer wg.Done(); s.Reach("c") }()
	wg.Wait()

	vs := s.ViolationDetails()
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2: %+v", len(vs), vs)
	}
	sawPending := false
	for _, v := range vs {
		if v.Blocker != "a" {
			t.Fatalf("violation blocker = %q, want %q (the point that never arrived): %+v", v.Blocker, "a", v)
		}
		if v.Point != "b" && v.Point != "c" {
			t.Fatalf("violation point = %q, want b or c", v.Point)
		}
		if v.Wait < 50*time.Millisecond {
			t.Fatalf("violation wait = %v, want >= timeout", v.Wait)
		}
		if len(v.Pending) > 0 {
			sawPending = true
			if other := v.Pending[0]; other == v.Point || (other != "b" && other != "c") {
				t.Fatalf("pending = %v for point %q, want the other blocked point", v.Pending, v.Point)
			}
		}
	}
	// The first point to time out must see the other still blocked.
	if !sawPending {
		t.Fatal("no violation recorded the concurrently blocked points")
	}
	// The formatted view stays available for logs.
	strs := s.Violations()
	if len(strs) != 2 || !strings.Contains(strs[0], `"a"`) {
		t.Fatalf("formatted violations = %v", strs)
	}
}

func TestGraphViolationDetails(t *testing.T) {
	g := NewGraph(30 * time.Millisecond)
	g.Point("sink", "dep1", "dep2")
	g.Reach("dep1")
	if g.Reach("sink") {
		t.Fatal("sink proceeded without dep2")
	}
	vs := g.ViolationDetails()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.Point != "sink" || v.Blocker != "dep2" {
		t.Fatalf("violation = %+v, want sink blocked by dep2", v)
	}
	if len(v.Pending) != 1 || v.Pending[0] != "dep2" {
		t.Fatalf("pending = %v, want exactly the unmet dependency dep2", v.Pending)
	}
	if !strings.Contains(g.Violations()[0], `"dep2"`) {
		t.Fatalf("formatted violation %q does not name the unmet dependency", g.Violations()[0])
	}
}
