package replay

import (
	"fmt"
	"strings"
	"time"
)

// Violation is the structured record of one timed-out schedule wait,
// answering the two questions a failing pinned test needs answered:
// which named point was stuck, and who held it up.
type Violation struct {
	// Point is the point whose Reach wait exceeded the timeout.
	Point string
	// Blocker is what never arrived: for a Schedule, the next undone
	// point in the declared total order; for a Graph, the first unmet
	// dependency of Point.
	Blocker string
	// Pending lists everything still outstanding at the moment of the
	// timeout: for a Schedule, the other points with a Reach call
	// blocked alongside this one; for a Graph, all of Point's unmet
	// dependencies.
	Pending []string
	// Wait is how long the point waited before giving up.
	Wait time.Duration
}

// String formats the violation the way Violations() reports it.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "point %q waited %s for %q", v.Point, v.Wait.Round(time.Millisecond), v.Blocker)
	if len(v.Pending) > 0 {
		fmt.Fprintf(&b, " (also pending: %s)", strings.Join(v.Pending, ", "))
	}
	return b.String()
}

// formatViolations renders structured violations as strings for the
// backward-compatible Violations accessors.
func formatViolations(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
