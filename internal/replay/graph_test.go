package replay

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGraphDiamondOrdering(t *testing.T) {
	// a -> {b, c} -> d: b and c run concurrently after a; d after both.
	g := NewGraph(5 * time.Second)
	g.Point("a").Point("b", "a").Point("c", "a").Point("d", "b", "c")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	rec := func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for _, p := range []string{"d", "c", "b", "a"} { // start in reverse
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Reach(p)
			rec(p)
		}()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	pos := map[string]int{}
	for i, p := range order {
		pos[p] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Fatalf("dependency order violated: %v", order)
	}
	if len(g.Violations()) != 0 {
		t.Fatalf("violations: %v", g.Violations())
	}
}

func TestGraphIndependentPointsDoNotBlock(t *testing.T) {
	g := NewGraph(time.Second)
	g.Point("x").Point("y")
	start := time.Now()
	if !g.Reach("y") || !g.Reach("x") {
		t.Fatal("independent points failed")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("independent points blocked")
	}
}

func TestGraphUndeclaredUnconstrained(t *testing.T) {
	g := NewGraph(time.Second)
	g.Point("a", "never")
	if !g.Reach("mystery") {
		t.Fatal("undeclared point constrained")
	}
}

func TestGraphTimeoutRecordsViolation(t *testing.T) {
	g := NewGraph(50 * time.Millisecond)
	g.Point("late", "never-reached")
	if g.Reach("late") {
		t.Fatal("unmet dependency reported success")
	}
	v := g.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "never-reached") {
		t.Fatalf("violations = %v", v)
	}
	if !g.Reached("late") {
		t.Fatal("timed-out point not marked done")
	}
}

func TestGraphValidateDetectsCycle(t *testing.T) {
	g := NewGraph(time.Second)
	g.Point("a", "b").Point("b", "c").Point("c", "a")
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	ok := NewGraph(time.Second)
	ok.Point("a").Point("b", "a")
	if err := ok.Validate(); err != nil {
		t.Fatalf("acyclic graph rejected: %v", err)
	}
}

func TestGraphConcurrentFanIn(t *testing.T) {
	// Many producers, one consumer gated on all of them.
	g := NewGraph(5 * time.Second)
	names := []string{"p0", "p1", "p2", "p3", "p4"}
	g.Point("consume", names...)
	var produced atomic.Int32
	var wg sync.WaitGroup
	for _, n := range names {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(len(n)) * time.Millisecond)
			produced.Add(1)
			g.Reach(n)
		}()
	}
	consumed := make(chan int32, 1)
	go func() {
		g.Reach("consume")
		consumed <- produced.Load()
	}()
	wg.Wait()
	select {
	case got := <-consumed:
		if got != int32(len(names)) {
			t.Fatalf("consumer ran after %d/%d producers", got, len(names))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never ran")
	}
}
