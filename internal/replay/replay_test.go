package replay

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cbreak/internal/core"
)

func TestScheduleEnforcesDeclaredOrder(t *testing.T) {
	s := NewSchedule(5*time.Second, "w1", "r2", "w3")
	var order []string
	var mu sync.Mutex
	rec := func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // this thread wants r2 between the two writes
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // try to run early
		s.Reach("r2")
		rec("r2")
	}()
	go func() {
		defer wg.Done()
		s.Reach("w1")
		rec("w1")
		time.Sleep(20 * time.Millisecond)
		s.Reach("w3")
		rec("w3")
	}()
	wg.Wait()
	if len(order) != 3 || order[0] != "w1" || order[1] != "r2" || order[2] != "w3" {
		t.Fatalf("order = %v, want [w1 r2 w3]", order)
	}
	if !s.Done() {
		t.Fatal("schedule not done")
	}
	if len(s.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", s.Violations())
	}
}

func TestScheduleUndeclaredPointUnconstrained(t *testing.T) {
	s := NewSchedule(time.Second, "a")
	if !s.Reach("not-declared") {
		t.Fatal("undeclared point was constrained")
	}
	if !s.Reach("a") {
		t.Fatal("declared point failed")
	}
	if !s.Reach("a") {
		t.Fatal("consumed point should be unconstrained on re-reach")
	}
}

func TestScheduleTimeoutRecordsViolation(t *testing.T) {
	s := NewSchedule(50*time.Millisecond, "never", "late")
	start := time.Now()
	ok := s.Reach("late") // "never" is never reached
	if ok {
		t.Fatal("infeasible order reported success")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timed out too early")
	}
	if len(s.Violations()) != 1 {
		t.Fatalf("violations = %v", s.Violations())
	}
	if s.Done() {
		t.Fatal("schedule reported done despite violation")
	}
}

func TestScheduleRepeatedPoints(t *testing.T) {
	s := NewSchedule(2*time.Second, "a", "b", "a")
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.Reach("a")
		mu.Lock()
		order = append(order, "a1")
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		s.Reach("a")
		mu.Lock()
		order = append(order, "a2")
		mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		s.Reach("b")
		mu.Lock()
		order = append(order, "b")
		mu.Unlock()
	}()
	wg.Wait()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("order = %v, want [a1 b a2]", order)
	}
}

func TestRegressionAllHit(t *testing.T) {
	e := core.NewEngine()
	reg := &Regression{Engine: e, Required: []string{"rbp"}}
	obj := new(int)
	res := reg.Run(func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("rbp", obj), true, core.Options{Timeout: time.Second})
		}()
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("rbp", obj), false, core.Options{Timeout: time.Second})
		}()
		wg.Wait()
	})
	if !res.AllHit || !res.Hit["rbp"] {
		t.Fatalf("regression missed: %s", res)
	}
	if res.String() != "regression: all breakpoints hit" {
		t.Fatalf("String = %q", res.String())
	}
}

func TestRegressionMiss(t *testing.T) {
	e := core.NewEngine()
	reg := &Regression{Engine: e, Required: []string{"never-hit"}}
	res := reg.Run(func() {})
	if res.AllHit {
		t.Fatal("regression reported success without hits")
	}
	if res.String() == "regression: all breakpoints hit" {
		t.Fatal("String hides the miss")
	}
}

func TestRegressionResetsBetweenRuns(t *testing.T) {
	e := core.NewEngine()
	reg := &Regression{Engine: e, Required: []string{"bp2"}}
	obj := new(int)
	hitScenario := func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("bp2", obj), true, core.Options{Timeout: time.Second})
		}()
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("bp2", obj), false, core.Options{Timeout: time.Second})
		}()
		wg.Wait()
	}
	if !reg.Run(hitScenario).AllHit {
		t.Fatal("first run missed")
	}
	// Second run with an empty scenario must not inherit old stats.
	if reg.Run(func() {}).AllHit {
		t.Fatal("stale stats leaked across Run")
	}
}

func TestScheduleFeasibleOrdersNeverViolateProperty(t *testing.T) {
	// For any declared order, goroutines that each Reach their own
	// points in declared relative order always complete with no
	// violations, however they interleave.
	f := func(seed int64, nPoints uint8) bool {
		n := int(nPoints)%6 + 2
		points := make([]string, n)
		for i := range points {
			points[i] = fmt.Sprintf("p%d", i)
		}
		s := NewSchedule(10*time.Second, points...)
		// Split points between two goroutines by parity of a seeded
		// hash; each reaches its points in global declared order.
		var mine, theirs []string
		h := uint64(seed)
		for i, p := range points {
			h = h*6364136223846793005 + 1442695040888963407
			if (h>>33)&1 == 0 || i == 0 {
				mine = append(mine, p)
			} else {
				theirs = append(theirs, p)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, p := range mine {
				s.Reach(p)
			}
		}()
		go func() {
			defer wg.Done()
			for _, p := range theirs {
				s.Reach(p)
			}
		}()
		wg.Wait()
		return s.Done() && len(s.Violations()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
