package replay

import (
	"fmt"
	"sync"
	"time"
)

// Graph pins a *partial* order over named program points: each point
// waits for its declared dependencies and nothing else, so independent
// points stay concurrent. It generalizes Schedule (a chain) the same way
// a set of concurrent breakpoints generalizes a single one — section 8's
// "limit the number of allowed thread schedules" with exactly the edges
// that matter.
//
// Like Schedule, waits are bounded: an infeasible declaration degrades
// to the natural schedule and is recorded as a violation instead of
// deadlocking the test.
type Graph struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deps    map[string][]string
	done    map[string]bool
	timeout time.Duration

	violations []Violation
}

// NewGraph returns an empty dependency graph. timeout bounds each Reach
// wait; zero means one second.
func NewGraph(timeout time.Duration) *Graph {
	if timeout <= 0 {
		timeout = time.Second
	}
	g := &Graph{
		deps:    make(map[string][]string),
		done:    make(map[string]bool),
		timeout: timeout,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Point declares a point and its dependencies. Dependencies need not be
// declared themselves (they become bare points). Declaring a point
// twice merges the dependency lists. Point returns the graph for
// chaining.
func (g *Graph) Point(name string, deps ...string) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.deps[name] = append(g.deps[name], deps...)
	for _, d := range deps {
		if _, ok := g.deps[d]; !ok {
			g.deps[d] = nil
		}
	}
	return g
}

// Reach blocks until every dependency of point has been reached, then
// marks point done and returns true. An undeclared point is
// unconstrained. If the wait exceeds the timeout, the violation is
// recorded, the point is marked done anyway, and Reach returns false.
func (g *Graph) Reach(point string) bool {
	start := time.Now()
	deadline := start.Add(g.timeout)
	g.mu.Lock()
	defer g.mu.Unlock()
	deps, declared := g.deps[point]
	if !declared {
		return true
	}
	for {
		var unmet []string
		for _, d := range deps {
			if !g.done[d] {
				unmet = append(unmet, d)
			}
		}
		if len(unmet) == 0 {
			g.done[point] = true
			g.cond.Broadcast()
			return true
		}
		if time.Now().After(deadline) {
			g.violations = append(g.violations, Violation{
				Point:   point,
				Blocker: unmet[0],
				Pending: unmet,
				Wait:    time.Since(start),
			})
			g.done[point] = true
			g.cond.Broadcast()
			return false
		}
		g.timedWait(deadline)
	}
}

// timedWait waits on the condition with a coarse poll so deadline checks
// happen even without a Broadcast. Called with g.mu held.
func (g *Graph) timedWait(deadline time.Time) {
	stop := make(chan struct{})
	go func() {
		select {
		case <-time.After(10 * time.Millisecond):
		case <-stop:
		}
		g.cond.Broadcast()
	}()
	g.cond.Wait()
	close(stop)
	_ = deadline
}

// Reached reports whether the point has been reached.
func (g *Graph) Reached(point string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done[point]
}

// Violations returns the recorded unmet-dependency proceeds, formatted.
func (g *Graph) Violations() []string {
	return formatViolations(g.ViolationDetails())
}

// ViolationDetails returns the structured records of the timed-out
// waits: which point was stuck and which of its dependencies were
// still unmet when it gave up.
func (g *Graph) ViolationDetails() []Violation {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Violation(nil), g.violations...)
}

// Validate checks the declared graph for dependency cycles and returns
// an error naming one if found. Infeasible graphs still degrade safely
// at runtime; Validate lets tests fail fast instead.
func (g *Graph) Validate() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.deps))
	var cycle string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = gray
		for _, d := range g.deps[n] {
			switch color[d] {
			case gray:
				cycle = fmt.Sprintf("%s -> %s", n, d)
				return true
			case white:
				if dfs(d) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range g.deps {
		if color[n] == white && dfs(n) {
			return fmt.Errorf("schedule graph has a cycle through %s", cycle)
		}
	}
	return nil
}
