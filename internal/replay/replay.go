// Package replay turns concurrent breakpoints into schedule constraints,
// realizing the paper's section 8 discussion: a set of breakpoints, each
// pinning the resolution of one conflict state, restricts the set of
// feasible thread schedules; enough of them pin a unique schedule, which
// makes concurrent unit tests ("run exactly the buggy interleaving")
// expressible without a special runtime.
//
// Two tools are provided:
//
//   - Schedule: a named-point total order. Threads call Reach(point);
//     each call blocks until every earlier point in the declared order
//     has been reached. Like breakpoints, the wait is bounded by a
//     timeout so a wrong declaration degrades to the natural schedule
//     (recorded as a violation) instead of deadlocking the test.
//   - Regression: a wrapper that runs a function while asserting that a
//     given set of breakpoints was hit — the paper's "keep the
//     breakpoints as a regression test" workflow.
package replay

import (
	"sort"
	"sync"
	"time"

	"cbreak/internal/core"
)

// Schedule is a declared total order over named points. It is safe for
// concurrent use; each Reach call consumes the next occurrence of its
// point in the declared order.
type Schedule struct {
	mu      sync.Mutex
	cond    *sync.Cond
	points  []string
	next    int
	timeout time.Duration

	waiting    map[string]int // points with a Reach call currently blocked
	violations []Violation
}

// NewSchedule declares an order of points. timeout bounds each Reach
// wait; zero means one second.
func NewSchedule(timeout time.Duration, points ...string) *Schedule {
	if timeout <= 0 {
		timeout = time.Second
	}
	s := &Schedule{points: points, timeout: timeout, waiting: make(map[string]int)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Reach blocks the caller until point is the next undone point in the
// schedule, then marks it done and returns true. If the wait exceeds the
// schedule's timeout — the declared order is infeasible for this run —
// the violation is recorded, the point is treated as consumed out of
// order, and Reach returns false.
func (s *Schedule) Reach(point string) bool {
	start := time.Now()
	deadline := start.Add(s.timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	blocked := false
	defer func() {
		if blocked {
			if s.waiting[point]--; s.waiting[point] == 0 {
				delete(s.waiting, point)
			}
		}
	}()
	for {
		if s.next >= len(s.points) {
			// Past the declared schedule: unconstrained.
			return true
		}
		if s.points[s.next] == point {
			s.next++
			s.cond.Broadcast()
			return true
		}
		if !s.contains(point) {
			// Point not declared (or all its occurrences consumed):
			// unconstrained.
			return true
		}
		if time.Now().After(deadline) {
			s.violations = append(s.violations, Violation{
				Point:   point,
				Blocker: s.points[s.next],
				Pending: s.otherWaiters(point),
				Wait:    time.Since(start),
			})
			return false
		}
		if !blocked {
			blocked = true
			s.waiting[point]++
		}
		// Wake periodically to re-check the deadline.
		s.timedWait(deadline)
	}
}

// otherWaiters lists the points (other than point) with a Reach call
// currently blocked, sorted. Called with s.mu held.
func (s *Schedule) otherWaiters(point string) []string {
	var out []string
	for p := range s.waiting {
		if p != point {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// contains reports whether point still occurs at or after next.
func (s *Schedule) contains(point string) bool {
	for _, p := range s.points[s.next:] {
		if p == point {
			return true
		}
	}
	return false
}

// timedWait waits on the condition with a coarse poll so deadline checks
// happen even if no Broadcast arrives. Called with s.mu held.
func (s *Schedule) timedWait(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(10 * time.Millisecond):
		case <-done:
		}
		s.cond.Broadcast()
	}()
	s.cond.Wait()
	close(done)
	_ = deadline
}

// Done reports whether every declared point has been reached in order.
func (s *Schedule) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next >= len(s.points)
}

// Violations returns the recorded out-of-order waits, formatted.
func (s *Schedule) Violations() []string {
	return formatViolations(s.ViolationDetails())
}

// ViolationDetails returns the structured records of the timed-out
// waits: which point was stuck, which declared point never arrived, and
// what else was blocked at that moment.
func (s *Schedule) ViolationDetails() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Violation(nil), s.violations...)
}

// Regression asserts that running a concurrent scenario hits a set of
// breakpoints — the executable form of "keep the concurrent breakpoints
// of a fixed Heisenbug as a regression test".
type Regression struct {
	// Engine is the breakpoint engine the scenario's triggers use.
	Engine *core.Engine
	// Required lists breakpoint names that must all be hit.
	Required []string
}

// Result is the outcome of a regression run.
type Result struct {
	// Hit maps each required breakpoint to whether it was hit.
	Hit map[string]bool
	// AllHit is true when every required breakpoint was hit.
	AllHit bool
}

// Run resets the engine, executes the scenario, and checks the required
// breakpoints' hit counts.
func (r *Regression) Run(scenario func()) Result {
	r.Engine.Reset()
	scenario()
	res := Result{Hit: make(map[string]bool, len(r.Required)), AllHit: true}
	for _, name := range r.Required {
		hit := r.Engine.Stats(name).Hits() > 0
		res.Hit[name] = hit
		if !hit {
			res.AllHit = false
		}
	}
	return res
}

// String formats the result for test logs.
func (res Result) String() string {
	if res.AllHit {
		return "regression: all breakpoints hit"
	}
	out := "regression: MISSED:"
	for name, hit := range res.Hit {
		if !hit {
			out += " " + name
		}
	}
	return out
}
