// Package lucene models the Lucene indexing library's commit/flush
// deadlock (Table 1 row "lucene / deadlock1"): IndexWriter.commit locks
// the writer and then the DocumentsWriter to flush buffered documents,
// while the document-add path flushes under the DocumentsWriter lock and
// then calls back into the writer — opposite acquisition orders.
//
// The index itself is a real (small) inverted index: documents are
// tokenized, postings accumulated per term, and a Search method answers
// term queries, so the deadlock sites sit on genuinely working code
// paths.
package lucene

import (
	"fmt"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// BPDeadlock identifies the breakpoint in engine statistics.
const BPDeadlock = "lucene.deadlock1"

// Posting is one document occurrence of a term.
type Posting struct {
	DocID int
	Freq  int
}

// DocumentsWriter buffers documents and their postings until a flush
// merges them into the committed index.
type DocumentsWriter struct {
	mu       *locks.Mutex
	buffered map[string][]Posting
	pending  int
}

func newDocumentsWriter() *DocumentsWriter {
	return &DocumentsWriter{
		mu:       locks.NewMutex("lucene.docsWriter"),
		buffered: make(map[string][]Posting),
	}
}

// addLocked tokenizes and buffers a document; caller holds dw.mu.
func (dw *DocumentsWriter) addLocked(docID int, text string) {
	freqs := make(map[string]int)
	for _, tok := range strings.Fields(strings.ToLower(text)) {
		tok = strings.Trim(tok, ".,;:!?\"'()")
		if tok != "" {
			freqs[tok]++
		}
	}
	for term, f := range freqs {
		dw.buffered[term] = append(dw.buffered[term], Posting{DocID: docID, Freq: f})
	}
	dw.pending++
}

// drainLocked removes and returns the buffered postings; caller holds
// dw.mu.
func (dw *DocumentsWriter) drainLocked() map[string][]Posting {
	out := dw.buffered
	dw.buffered = make(map[string][]Posting)
	dw.pending = 0
	return out
}

// IndexWriter is the top-level index: committed postings plus a
// DocumentsWriter buffer.
type IndexWriter struct {
	mu        *locks.Mutex
	committed map[string][]Posting
	docs      *DocumentsWriter
	nextDoc   int
	flushEach int
	cfg       *Config
}

// NewIndexWriter returns an index writer that auto-flushes every
// flushEach documents.
func NewIndexWriter(flushEach int, cfg *Config) *IndexWriter {
	return &IndexWriter{
		mu:        locks.NewMutex("lucene.indexWriter"),
		committed: make(map[string][]Posting),
		docs:      newDocumentsWriter(),
		flushEach: flushEach,
		cfg:       cfg,
	}
}

// mergeLocked merges drained postings into the committed index; caller
// holds w.mu.
func (w *IndexWriter) mergeLocked(batch map[string][]Posting) {
	for term, ps := range batch {
		w.committed[term] = append(w.committed[term], ps...)
	}
}

// AddDocument buffers a document; when the buffer is full it flushes:
// DocumentsWriter monitor first, then the writer's — one side of the
// inversion.
func (w *IndexWriter) AddDocument(text string) int {
	w.docs.mu.LockAt("DocumentsWriter.java:add")
	id := w.nextDoc
	w.nextDoc++
	w.docs.addLocked(id, text)
	needFlush := w.docs.pending >= w.flushEach
	if !needFlush {
		w.docs.mu.Unlock()
		return id
	}
	if w.cfg != nil && w.cfg.Breakpoint {
		w.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, w.docs.mu, w.mu), true,
			core.Options{Timeout: w.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the Lucene deadlock repro (DocumentsWriter then IndexWriter)
	w.mu.LockAt("IndexWriter.java:doFlush")
	batch := w.docs.drainLocked()
	w.mergeLocked(batch)
	w.mu.Unlock()
	w.docs.mu.Unlock()
	return id
}

// Commit publishes all buffered documents: writer monitor first, then
// the DocumentsWriter's — the other side of the inversion.
func (w *IndexWriter) Commit() {
	w.mu.LockAt("IndexWriter.java:commit")
	defer w.mu.Unlock()
	if w.cfg != nil && w.cfg.Breakpoint {
		w.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, w.mu, w.docs.mu), false,
			core.Options{Timeout: w.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the Lucene deadlock repro (IndexWriter then DocumentsWriter)
	w.docs.mu.LockAt("DocumentsWriter.java:flushAll")
	batch := w.docs.drainLocked()
	w.docs.mu.Unlock()
	w.mergeLocked(batch)
}

// Search returns the committed postings for a term.
func (w *IndexWriter) Search(term string) []Posting {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Posting(nil), w.committed[strings.ToLower(term)]...)
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// StallAfter bounds deadlock detection (default 2s).
	StallAfter time.Duration
	// Docs is the number of documents indexed (default 40).
	Docs int
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

func (c *Config) docs() int {
	if c.Docs <= 0 {
		return 40
	}
	return c.Docs
}

// Run indexes documents on one goroutine while another commits; the
// crossed lock orders deadlock when the breakpoint aligns them.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	w := NewIndexWriter(4, &cfg)
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		go func() {
			for i := 0; i < cfg.docs(); i++ {
				w.AddDocument(fmt.Sprintf("the quick brown fox %d jumps over the lazy dog", i))
			}
			done <- struct{}{}
		}()
		go func() {
			time.Sleep(200 * time.Microsecond)
			w.Commit()
			done <- struct{}{}
		}()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
