package lucene

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestIndexAndSearch(t *testing.T) {
	w := NewIndexWriter(2, quietCfg())
	w.AddDocument("The quick brown fox")
	w.AddDocument("the lazy dog sleeps") // triggers auto-flush at 2 docs
	w.AddDocument("a fox and a dog")
	w.Commit()
	foxes := w.Search("fox")
	if len(foxes) != 2 {
		t.Fatalf("fox postings = %v", foxes)
	}
	dogs := w.Search("dog")
	if len(dogs) != 2 {
		t.Fatalf("dog postings = %v", dogs)
	}
	if len(w.Search("cat")) != 0 {
		t.Fatal("phantom postings")
	}
}

func TestTokenizationNormalizes(t *testing.T) {
	w := NewIndexWriter(100, quietCfg())
	w.AddDocument("Hello, HELLO! (hello)")
	w.Commit()
	ps := w.Search("hello")
	if len(ps) != 1 || ps[0].Freq != 3 {
		t.Fatalf("postings = %v", ps)
	}
}

func TestDocIDsIncrease(t *testing.T) {
	w := NewIndexWriter(100, quietCfg())
	a := w.AddDocument("one")
	b := w.AddDocument("two")
	if b != a+1 {
		t.Fatalf("doc ids: %d then %d", a, b)
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, StallAfter: 500 * time.Millisecond}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 3 {
		t.Fatalf("deadlock manifested %d/10 without breakpoint", bugs)
	}
}
