// Package raytracer models the Java Grande Forum "raytracer" benchmark:
// a small Whitted-style ray tracer (sphere scene, point light, shadow
// rays) parallelized by image row. The pixel buffer is partitioned and
// race-free; the seeded bugs are four shared statistics updated
// read-modify-write without synchronization, mirroring the well-known
// checksum race in the original benchmark (Table 1 rows "raytracer"
// race1-race4):
//
//	race1: the image checksum accumulator        (paper: no visible error)
//	race2: the rows-completed counter            (paper: test fail)
//	race3: the rays-traced counter
//	race4: the shadow-hit counter
//
// Each race manifests as a final statistic that disagrees with the
// sequential reference — a validation failure.
package raytracer

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPRace1 = "raytracer.race1" // checksum
	BPRace2 = "raytracer.race2" // rows done
	BPRace3 = "raytracer.race3" // rays traced
	BPRace4 = "raytracer.race4" // shadow hits
)

// Vec is a 3-vector.
type Vec struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec) Add(b Vec) Vec { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec) Sub(b Vec) Vec { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec) Scale(s float64) Vec { return Vec{a.X * s, a.Y * s, a.Z * s} }

// Dot returns a . b.
func (a Vec) Dot(b Vec) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns the unit vector of a.
func (a Vec) Norm() Vec {
	l := math.Sqrt(a.Dot(a))
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Sphere is a scene object.
type Sphere struct {
	Center Vec
	Radius float64
	Color  float64 // grayscale albedo
}

// Intersect returns the nearest positive ray parameter t for ray
// origin+dir*t hitting the sphere, or +Inf.
func (s Sphere) Intersect(origin, dir Vec) float64 {
	oc := origin.Sub(s.Center)
	b := oc.Dot(dir)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return math.Inf(1)
	}
	sq := math.Sqrt(disc)
	if t := -b - sq; t > 1e-6 {
		return t
	}
	if t := -b + sq; t > 1e-6 {
		return t
	}
	return math.Inf(1)
}

// Scene holds the objects, light, and camera of a render.
type Scene struct {
	Spheres []Sphere
	Light   Vec
	Eye     Vec
	W, H    int
}

// DefaultScene returns the benchmark scene: a triangle of spheres over a
// large ground sphere.
func DefaultScene(w, h int) *Scene {
	return &Scene{
		Spheres: []Sphere{
			{Center: Vec{0, 0, 5}, Radius: 1, Color: 0.9},
			{Center: Vec{-1.8, 0.4, 6}, Radius: 0.8, Color: 0.7},
			{Center: Vec{1.6, -0.3, 4.5}, Radius: 0.6, Color: 0.8},
			{Center: Vec{0, -101, 5}, Radius: 100, Color: 0.5}, // ground
		},
		Light: Vec{-3, 5, 0},
		Eye:   Vec{0, 0, -1},
		W:     w, H: h,
	}
}

// tracePixel shades pixel (x, y) and reports the 0-255 luminance, the
// number of rays cast, and whether the shadow ray was blocked.
func (sc *Scene) tracePixel(x, y int) (lum int64, rays int64, shadowed bool) {
	u := (float64(x)/float64(sc.W) - 0.5) * 2 * float64(sc.W) / float64(sc.H)
	v := (0.5 - float64(y)/float64(sc.H)) * 2
	dir := Vec{u, v, 2}.Norm()
	rays++

	tMin := math.Inf(1)
	var hit *Sphere
	for i := range sc.Spheres {
		if t := sc.Spheres[i].Intersect(sc.Eye, dir); t < tMin {
			tMin = t
			hit = &sc.Spheres[i]
		}
	}
	if hit == nil {
		return 16, rays, false // sky
	}
	p := sc.Eye.Add(dir.Scale(tMin))
	n := p.Sub(hit.Center).Norm()
	l := sc.Light.Sub(p).Norm()

	// Shadow ray.
	rays++
	lightDist := math.Sqrt(sc.Light.Sub(p).Dot(sc.Light.Sub(p)))
	for i := range sc.Spheres {
		if t := sc.Spheres[i].Intersect(p.Add(n.Scale(1e-4)), l); t < lightDist {
			shadowed = true
			break
		}
	}
	diffuse := math.Max(0, n.Dot(l))
	if shadowed {
		diffuse *= 0.1
	}
	val := hit.Color * (0.1 + 0.9*diffuse) * 255
	return int64(val), rays, shadowed
}

// RenderImage renders the scene single-threaded into a luminance image
// (row-major, one byte per pixel).
func (sc *Scene) RenderImage() []byte {
	img := make([]byte, sc.W*sc.H)
	for y := 0; y < sc.H; y++ {
		for x := 0; x < sc.W; x++ {
			lum, _, _ := sc.tracePixel(x, y)
			if lum > 255 {
				lum = 255
			}
			img[y*sc.W+x] = byte(lum)
		}
	}
	return img
}

// WritePGM writes the scene as a binary PGM (P5) image — a real artifact
// a user of the benchmark can view.
func (sc *Scene) WritePGM(w io.Writer) error {
	img := sc.RenderImage()
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", sc.W, sc.H); err != nil {
		return err
	}
	_, err := w.Write(img)
	return err
}

// Stats are the render's validation statistics.
type Stats struct {
	Checksum   int64
	RowsDone   int64
	RaysTraced int64
	ShadowHits int64
}

// RenderSequential renders the scene single-threaded and returns the
// reference statistics.
func (sc *Scene) RenderSequential() Stats {
	var st Stats
	for y := 0; y < sc.H; y++ {
		var rowSum, rowRays, rowShadow int64
		for x := 0; x < sc.W; x++ {
			lum, rays, sh := sc.tracePixel(x, y)
			rowSum += lum
			rowRays += rays
			if sh {
				rowShadow++
			}
		}
		st.Checksum += rowSum
		st.RaysTraced += rowRays
		st.ShadowHits += rowShadow
		st.RowsDone++
	}
	return st
}

// Bug selects which racy statistic a run exercises.
type Bug int

// The raytracer bugs of Table 1.
const (
	Race1 Bug = iota // checksum
	Race2            // rows done (test fail)
	Race3            // rays traced
	Race4            // shadow hits
)

func bpName(b Bug) string {
	switch b {
	case Race1:
		return BPRace1
	case Race2:
		return BPRace2
	case Race3:
		return BPRace3
	default:
		return BPRace4
	}
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	// Bound limits breakpoint hits (default 2).
	Bound int
	// Width and Height of the image (default 64x48).
	Width, Height int
}

func (c *Config) dims() (int, int) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 48
	}
	return w, h
}

func (c *Config) bound() int {
	if c.Bound > 0 {
		return c.Bound
	}
	return 2
}

// Run renders the scene with two row-partitioned workers whose
// statistics updates are racy, then validates against the sequential
// reference. A mismatch in the statistic selected by cfg.Bug is the
// manifested race.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	w, h := cfg.dims()
	scene := DefaultScene(w, h)
	ref := scene.RenderSequential()

	res := appkit.RunWithDeadline(120*time.Second, func() appkit.Result {
		sp := memory.NewSpace()
		checksum := memory.NewCell(sp, "rt.checksum", 0)
		rowsDone := memory.NewCell(sp, "rt.rowsDone", 0)
		raysTraced := memory.NewCell(sp, "rt.rays", 0)
		shadowHits := memory.NewCell(sp, "rt.shadow", 0)

		racyAdd := func(cell *memory.Cell, bug Bug, worker int, d int64) {
			v := cell.Load(bpName(bug) + ".read")
			if cfg.Breakpoint && cfg.Bug == bug {
				cfg.Engine.TriggerHere(core.NewConflictTrigger(bpName(bug), cell), worker == 0,
					core.Options{Timeout: cfg.Timeout, Bound: cfg.bound()})
			}
			cell.Store(bpName(bug)+".write", v+d)
		}

		var wg sync.WaitGroup
		for wk := 0; wk < 2; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for y := wk; y < h; y += 2 {
					var rowSum, rowRays, rowShadow int64
					for x := 0; x < w; x++ {
						lum, rays, sh := scene.tracePixel(x, y)
						rowSum += lum
						rowRays += rays
						if sh {
							rowShadow++
						}
					}
					racyAdd(checksum, Race1, wk, rowSum)
					racyAdd(raysTraced, Race3, wk, rowRays)
					racyAdd(shadowHits, Race4, wk, rowShadow)
					racyAdd(rowsDone, Race2, wk, 1)
				}
			}(wk)
		}
		wg.Wait()

		got := Stats{
			Checksum:   checksum.Load("check"),
			RowsDone:   rowsDone.Load("check"),
			RaysTraced: raysTraced.Load("check"),
			ShadowHits: shadowHits.Load("check"),
		}
		type pair struct {
			bug       Bug
			got, want int64
			label     string
		}
		for _, p := range []pair{
			{Race1, got.Checksum, ref.Checksum, "checksum"},
			{Race2, got.RowsDone, ref.RowsDone, "rowsDone"},
			{Race3, got.RaysTraced, ref.RaysTraced, "raysTraced"},
			{Race4, got.ShadowHits, ref.ShadowHits, "shadowHits"},
		} {
			if p.got != p.want {
				return appkit.Result{Status: appkit.TestFail,
					Detail: fmt.Sprintf("%s mismatch: got %d want %d", p.label, p.got, p.want)}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(bpName(cfg.Bug)).Hits() > 0
	return res
}
