package raytracer

import (
	"bytes"
	"math"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestVecOps(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) || b.Sub(a) != (Vec{3, 3, 3}) {
		t.Fatal("Add/Sub broken")
	}
	if a.Dot(b) != 32 {
		t.Fatalf("Dot = %v", a.Dot(b))
	}
	n := Vec{3, 0, 4}.Norm()
	if math.Abs(n.Dot(n)-1) > 1e-12 {
		t.Fatalf("Norm not unit: %v", n)
	}
	if (Vec{}).Norm() != (Vec{}) {
		t.Fatal("zero Norm should be zero")
	}
	if a.Scale(2) != (Vec{2, 4, 6}) {
		t.Fatal("Scale broken")
	}
}

func TestSphereIntersect(t *testing.T) {
	s := Sphere{Center: Vec{0, 0, 5}, Radius: 1}
	// Ray straight at the sphere hits at t=4.
	if got := s.Intersect(Vec{0, 0, 0}, Vec{0, 0, 1}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("t = %v, want 4", got)
	}
	// Ray away from the sphere misses.
	if got := s.Intersect(Vec{0, 0, 0}, Vec{0, 0, -1}); !math.IsInf(got, 1) {
		t.Fatalf("t = %v, want +Inf", got)
	}
	// Ray from inside hits the far wall.
	if got := s.Intersect(Vec{0, 0, 5}, Vec{0, 0, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("t = %v, want 1", got)
	}
}

func TestSequentialRenderDeterministicAndPlausible(t *testing.T) {
	sc := DefaultScene(32, 24)
	a := sc.RenderSequential()
	b := sc.RenderSequential()
	if a != b {
		t.Fatalf("render not deterministic: %+v vs %+v", a, b)
	}
	if a.RowsDone != 24 {
		t.Fatalf("RowsDone = %d", a.RowsDone)
	}
	if a.Checksum <= 0 || a.RaysTraced < int64(32*24) {
		t.Fatalf("implausible stats: %+v", a)
	}
	if a.ShadowHits == 0 {
		t.Fatal("scene has no shadows — shadow-ray path untested")
	}
}

func TestParallelCleanMatchesReference(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	okRuns := 0
	for i := 0; i < 5; i++ {
		if Run(Config{Engine: e, Width: 32, Height: 24}).Status == appkit.OK {
			okRuns++
		}
	}
	if okRuns < 3 {
		t.Fatalf("clean parallel render failed validation %d/5 times", 5-okRuns)
	}
}

func TestAllFourRacesReproduce(t *testing.T) {
	for _, bug := range []Bug{Race1, Race2, Race3, Race4} {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: bug, Breakpoint: true,
			Timeout: 200 * time.Millisecond, Width: 32, Height: 24})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("bug %v: %s", bug, r)
		}
	}
}

func TestBoundRespected(t *testing.T) {
	e := core.NewEngine()
	Run(Config{Engine: e, Bug: Race3, Breakpoint: true,
		Timeout: 100 * time.Millisecond, Bound: 2, Width: 32, Height: 24})
	if hits := e.Stats(BPRace3).Hits(); hits > 2 {
		t.Fatalf("bound=2 exceeded: %d", hits)
	}
}

func TestRenderImageAndPGM(t *testing.T) {
	sc := DefaultScene(16, 12)
	img := sc.RenderImage()
	if len(img) != 16*12 {
		t.Fatalf("image size = %d", len(img))
	}
	// The scene has bright sphere pixels and dark sky pixels.
	var hasBright, hasDark bool
	for _, p := range img {
		if p > 100 {
			hasBright = true
		}
		if p < 32 {
			hasDark = true
		}
	}
	if !hasBright || !hasDark {
		t.Fatalf("implausible image: bright=%v dark=%v", hasBright, hasDark)
	}
	var buf bytes.Buffer
	if err := sc.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n16 12\n255\n")) {
		t.Fatalf("PGM header: %q", out[:20])
	}
	if len(out) != len("P5\n16 12\n255\n")+16*12 {
		t.Fatalf("PGM size = %d", len(out))
	}
}
