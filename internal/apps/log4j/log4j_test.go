package log4j

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func run(t *testing.T, cfg Config) appkit.Result {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	if cfg.StallAfter == 0 {
		cfg.StallAfter = time.Second
	}
	if cfg.EventsPerAppender == 0 {
		cfg.EventsPerAppender = 20
	}
	return Run(cfg)
}

func TestCleanRunDeliversEverything(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	ok := 0
	const runs = 6
	for i := 0; i < runs; i++ {
		r := run(t, Config{Engine: e, Pair: Pair{S236, S309}})
		if r.Status == appkit.OK {
			ok++
		}
	}
	// The natural lost-wakeup window exists (paper: ~5% stalls) and
	// widens under heavy test-machine load, which stretches the
	// dispatcher's check-to-wait window. The property under test is
	// that the stall is a Heisenbug, not deterministic: a meaningful
	// fraction of unforced runs must come out clean.
	if ok < 2 {
		t.Fatalf("only %d/%d clean runs without breakpoints", ok, runs)
	}
}

func Test236Before309Stalls(t *testing.T) {
	for i := 0; i < 3; i++ {
		r := run(t, Config{Breakpoint: true, Pair: Pair{S236, S309}})
		if r.Status != appkit.Stall {
			t.Fatalf("run %d: 236->309 did not stall: %s", i, r)
		}
		if !r.BPHit {
			t.Fatalf("run %d: stall without breakpoint hit", i)
		}
	}
}

func Test309Before236DoesNotStall(t *testing.T) {
	stalls := 0
	for i := 0; i < 3; i++ {
		r := run(t, Config{Breakpoint: true, Pair: Pair{S309, S236}})
		if r.Status == appkit.Stall {
			stalls++
		} else if !r.BPHit {
			t.Fatalf("run %d: no breakpoint hit: %s", i, r)
		}
	}
	if stalls > 1 {
		t.Fatalf("309->236 stalled %d/3 times", stalls)
	}
}

func TestAppendPairsDoNotStall(t *testing.T) {
	for _, pair := range []Pair{{S100, S309}, {S309, S100}, {S100, S236}, {S236, S100}} {
		stalls, hits := 0, 0
		for i := 0; i < 3; i++ {
			r := run(t, Config{Breakpoint: true, Pair: pair})
			if r.Status == appkit.Stall {
				stalls++
			}
			if r.BPHit {
				hits++
			}
		}
		if stalls > 1 {
			t.Errorf("pair %v stalled %d/3", pair, stalls)
		}
		if hits < 2 {
			t.Errorf("pair %v hit only %d/3", pair, hits)
		}
	}
}

func TestClosePairStallsViaOtherConflict(t *testing.T) {
	// Paper section 5 step 4(b): with the breakpoint on (277, 309) the
	// system stalls in almost every run, but the breakpoint itself is
	// rarely hit — the stall comes from the un-instrumented resize
	// conflict, aggravated by the dispatcher's pauses at site 309.
	stalls, hits := 0, 0
	for i := 0; i < 5; i++ {
		r := run(t, Config{Breakpoint: true, Pair: Pair{S277, S309}})
		if r.Status == appkit.Stall {
			stalls++
		}
		if r.BPHit {
			hits++
		}
	}
	if stalls < 4 {
		t.Fatalf("(277,309) stalled only %d/5", stalls)
	}
	if hits > stalls-2 {
		t.Logf("note: hits=%d stalls=%d (paper saw hits ~1-3%%)", hits, stalls)
	}
}

func TestDeadlockModeReproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		r := run(t, Config{Breakpoint: true, Mode: ModeDeadlock})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestDeadlockModeCleanWithoutBreakpoint(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	bugs := 0
	for i := 0; i < 5; i++ {
		if run(t, Config{Engine: e, Mode: ModeDeadlock}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 2 {
		t.Fatalf("deadlock manifested %d/5 without breakpoint", bugs)
	}
}

func TestSection5PairsList(t *testing.T) {
	pairs := Section5Pairs()
	if len(pairs) != 8 {
		t.Fatalf("pairs = %d, want 8", len(pairs))
	}
	if pairs[2].String() != "236 -> 309" {
		t.Fatalf("pair string = %q", pairs[2].String())
	}
}
