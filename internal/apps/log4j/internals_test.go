package log4j

import (
	"fmt"
	"testing"
	"time"

	"cbreak/internal/core"
)

func quietAppender(buf int) *AsyncAppender {
	e := core.NewEngine()
	e.SetEnabled(false)
	return NewAsyncAppender(buf, &Config{Engine: e})
}

func TestAppendAndDispatcherDrain(t *testing.T) {
	app := quietAppender(8)
	done := make(chan struct{})
	go app.Dispatcher(done)
	for i := 0; i < 20; i++ {
		app.Append(Event{Seq: i, Msg: fmt.Sprintf("m%d", i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for app.Dispatched() != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("dispatched %d/20", app.Dispatched())
		}
		time.Sleep(time.Millisecond)
	}
	app.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never exited after close")
	}
	if len(app.target.lines) != 20 {
		t.Fatalf("file appender lines = %d", len(app.target.lines))
	}
}

func TestAppendBlocksWhenBufferFull(t *testing.T) {
	app := quietAppender(2)
	// No dispatcher: the third append must block on the full buffer.
	app.Append(Event{Seq: 0, Msg: "a"})
	app.Append(Event{Seq: 1, Msg: "b"})
	third := make(chan struct{})
	go func() {
		app.Append(Event{Seq: 2, Msg: "c"})
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("append did not block on a full buffer")
	case <-time.After(30 * time.Millisecond):
	}
	// Start the dispatcher; the blocked append must complete.
	done := make(chan struct{})
	go app.Dispatcher(done)
	select {
	case <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked append never released")
	}
	app.Close()
	<-done
}

func TestSetBufferSizeAppliedByDispatcher(t *testing.T) {
	app := quietAppender(4)
	done := make(chan struct{})
	go app.Dispatcher(done)
	app.Append(Event{Seq: 0, Msg: "warm"})
	app.SetBufferSize(16)
	app.m.Lock()
	got := app.bufferSize
	app.m.Unlock()
	if got != 16 {
		t.Fatalf("bufferSize = %d after ack", got)
	}
	app.Close()
	<-done
}

func TestDeadTeardownUnblocksEverything(t *testing.T) {
	app := quietAppender(1)
	app.Append(Event{Seq: 0, Msg: "fill"})
	blocked := make(chan struct{})
	go func() {
		app.Append(Event{Seq: 1, Msg: "stuck"}) // no dispatcher: blocks
		close(blocked)
	}()
	time.Sleep(10 * time.Millisecond)
	app.dead.Store(true)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("dead switch did not unblock the producer")
	}
}

func TestPairStringAndSites(t *testing.T) {
	p := Pair{First: S100, Second: S309}
	if p.String() != "100 -> 309" {
		t.Fatalf("Pair.String = %q", p.String())
	}
	if S236.String() != "236" {
		t.Fatalf("Site.String = %q", S236.String())
	}
}
