// Package log4j models the log4j 1.2.13 AsyncAppender missed-
// notification stall that the paper's section 5 walks through with
// Methodology II, including the four lock-contention sites the conflict
// detector reports:
//
//	line 100: append()        — producers enqueue under the monitor
//	line 236: setBufferSize() — resize request + notification
//	line 277: close()         — shutdown + notification
//	line 309: Dispatcher.run  — drain / sleep decision
//
// The seeded bug is a classic lost wakeup: the dispatcher decides to
// sleep and then waits, while setBufferSize (and close) deliver their
// notification outside the monitor without setting the dispatcher's
// signal flag. A notification that fires in the dispatcher's
// decide-to-sleep window is lost; because control requests are only
// processed on a *notified* wakeup (the missing-recheck bug), a lost
// resize notification leaves setBufferSize blocked forever on its
// acknowledgement — the system stall. append() is robust (it sets the
// signal flag under the monitor), so contention pairs involving line 100
// never stall, and only the 236-before-309 resolution stalls
// deterministically — the shape of the paper's section 5 table.
//
// A separate lock-order deadlock (Table 1 row "log4j / deadlock1")
// crosses the AsyncAppender monitor with the downstream FileAppender
// lock on the dispatch and closeTarget paths.
package log4j

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// Breakpoint names for engine statistics.
const (
	BPPair     = "log4j.pair"      // the section-5 contention pair breakpoint
	BPDeadlock = "log4j.deadlock1" // dispatch vs closeTarget lock inversion
)

// Site identifies one of the four contention sites of section 5.
type Site int

// The contention sites, named by the paper's line numbers.
const (
	S100 Site = 100 // append
	S236 Site = 236 // setBufferSize
	S277 Site = 277 // close
	S309 Site = 309 // dispatcher run
)

// String returns the paper's line-number label.
func (s Site) String() string { return fmt.Sprintf("%d", int(s)) }

// Pair is a contention pair with a resolution order: First's lock
// acquisition is ordered before Second's.
type Pair struct{ First, Second Site }

// String renders "236 -> 309" like the paper's table.
func (p Pair) String() string { return fmt.Sprintf("%v -> %v", p.First, p.Second) }

// Section5Pairs lists the eight resolve orders of the paper's table, in
// table order.
func Section5Pairs() []Pair {
	return []Pair{
		{S100, S309}, {S309, S100},
		{S236, S309}, {S309, S236},
		{S100, S236}, {S236, S100},
		{S309, S277}, {S277, S309},
	}
}

// Event is one log record.
type Event struct {
	Seq int
	Msg string
}

// FileAppender is the downstream appender with its own lock (the
// deadlock1 partner).
type FileAppender struct {
	mu      *locks.Mutex
	lines   []string
	flushes int
}

func newFileAppender() *FileAppender {
	return &FileAppender{mu: locks.NewMutex("log4j.fileAppender")}
}

// AsyncAppender is the buffered appender with a dispatcher goroutine.
type AsyncAppender struct {
	m    *locks.Mutex
	full *locks.Cond // producers wait here when the buffer is full
	data *locks.Cond // dispatcher waits here for work/control signals
	ack  *locks.Cond // setBufferSize waits here for the resize ack

	buffer     []Event
	bufferSize int
	signal     bool // set by append under the monitor (robust path)
	resizeReq  int  // pending setBufferSize request (0 = none)
	resizeDone bool
	closed     bool

	target       *FileAppender
	dispatched   []Event
	lastFlushSeq int
	dispCount    atomic.Int64

	dead atomic.Bool // run teardown: force the dispatcher to exit
	cfg  *Config
}

// NewAsyncAppender returns an appender with the given buffer size.
func NewAsyncAppender(bufferSize int, cfg *Config) *AsyncAppender {
	m := locks.NewMutex("log4j.monitor")
	return &AsyncAppender{
		m:          m,
		full:       locks.NewCond("log4j.bufferNotFull", m),
		data:       locks.NewCond("log4j.dataAvailable", m),
		ack:        locks.NewCond("log4j.resizeAck", m),
		bufferSize: bufferSize,
		target:     newFileAppender(),
		cfg:        cfg,
	}
}

// pairTrigger fires the contention breakpoint side for site s, if the
// run's pair includes it. action, when non-nil, is the site's guarded
// next instruction (used by the first-action side for strict ordering).
func (a *AsyncAppender) pairTrigger(s Site, action func()) {
	cfg := a.cfg
	if cfg == nil || !cfg.Breakpoint || (cfg.Pair.First != s && cfg.Pair.Second != s) {
		if action != nil {
			action()
		}
		return
	}
	first := cfg.Pair.First == s
	opts := core.Options{Timeout: cfg.Timeout, Bound: 1}
	cfg.Engine.TriggerHereAnd(core.NewConflictTrigger(BPPair, a.m), first, opts, action)
}

// Append enqueues an event (site 100). The signal flag is set under the
// monitor and the notification is delivered under it too — the robust
// producer path.
func (a *AsyncAppender) Append(e Event) {
	a.pairTrigger(S100, func() {
		a.m.LockAt("AsyncAppender.java:100")
		for len(a.buffer) >= a.bufferSize && !a.dead.Load() {
			if !a.full.WaitTimeout(50*time.Millisecond) && a.dead.Load() {
				break
			}
		}
		a.buffer = append(a.buffer, e)
		a.signal = true
		a.data.Notify()
		a.m.Unlock()
	})
}

// SetBufferSize requests a resize (site 236) and blocks until the
// dispatcher acknowledges it. The notification is sent outside the
// monitor and the signal flag is NOT set — the seeded bug.
func (a *AsyncAppender) SetBufferSize(n int) {
	a.pairTrigger(S236, func() {
		a.m.LockAt("AsyncAppender.java:236")
		a.resizeReq = n
		a.resizeDone = false
		a.m.Unlock()
		a.data.Notify() // lossy: fired outside the monitor, no signal flag
	})
	a.m.Lock()
	for !a.resizeDone && !a.dead.Load() {
		a.ack.WaitTimeout(50 * time.Millisecond)
	}
	a.m.Unlock()
}

// Close requests shutdown (site 277); same lossy notification pattern.
func (a *AsyncAppender) Close() {
	a.pairTrigger(S277, func() {
		a.m.LockAt("AsyncAppender.java:277")
		a.closed = true
		a.m.Unlock()
		a.data.Notify() // lossy
	})
}

// Dispatcher is the background drain loop (site 309). Control requests
// (resize, close) are handled only after a *notified* wakeup — the
// missing-recheck that turns a lost notification into a stall.
func (a *AsyncAppender) Dispatcher(done chan<- struct{}) {
	defer close(done)
	notified := true // treat startup as notified
	for !a.dead.Load() {
		a.m.LockAt("AsyncAppender.java:309")
		batch := a.buffer
		a.buffer = nil
		if len(batch) > 0 {
			a.full.NotifyAll()
		}
		sig := a.signal
		a.signal = false
		doControl := sig || notified
		notified = false
		var exit bool
		if doControl {
			if a.resizeReq > 0 {
				a.bufferSize = a.resizeReq
				a.resizeReq = 0
				a.resizeDone = true
				a.ack.Notify()
			}
			if a.closed {
				exit = true
			}
		}
		a.m.Unlock()
		a.dispatch(batch)
		if exit {
			return
		}
		if len(batch) == 0 && !doControl {
			// The window: the sleep decision is made; a notification
			// arriving before the wait below registers is lost.
			a.pairTrigger(S309, nil)
			a.m.Lock()
			if !a.signal {
				notified = a.data.WaitTimeout(a.cfg.pollInterval())
			} else {
				notified = true
			}
			a.m.Unlock()
		}
	}
}

// dispatch forwards a batch to the file appender: FileAppender lock,
// then (to record the flush high-water mark) the AsyncAppender monitor —
// one side of the deadlock1 inversion.
func (a *AsyncAppender) dispatch(batch []Event) {
	if len(batch) == 0 {
		return
	}
	a.target.mu.LockAt("FileAppender.java:doAppend")
	for _, e := range batch {
		a.target.lines = append(a.target.lines, e.Msg)
	}
	a.target.flushes++
	if a.cfg != nil && a.cfg.Breakpoint && a.cfg.Mode == ModeDeadlock {
		a.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, a.target.mu, a.m), true,
			core.Options{Timeout: a.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the log4j deadlock repro (FileAppender then AsyncAppender)
	a.m.LockAt("AsyncAppender.java:recordFlush")
	a.lastFlushSeq = batch[len(batch)-1].Seq
	a.m.Unlock()
	a.target.mu.Unlock()
	a.dispatched = append(a.dispatched, batch...)
	a.dispCount.Add(int64(len(batch)))
}

// CloseTarget shuts the downstream appender: AsyncAppender monitor, then
// FileAppender lock — the other side of the deadlock1 inversion.
func (a *AsyncAppender) CloseTarget() {
	a.m.LockAt("AsyncAppender.java:closeTarget")
	defer a.m.Unlock()
	if a.cfg != nil && a.cfg.Breakpoint && a.cfg.Mode == ModeDeadlock {
		a.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, a.m, a.target.mu), false,
			core.Options{Timeout: a.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the log4j deadlock repro (AsyncAppender then FileAppender)
	a.target.mu.LockAt("FileAppender.java:close")
	defer a.target.mu.Unlock()
	a.target.flushes++
}

// Dispatched returns the number of events the dispatcher forwarded.
func (a *AsyncAppender) Dispatched() int64 { return a.dispCount.Load() }

// Mode selects the scenario a run exercises.
type Mode int

// Run modes.
const (
	// ModeContention runs the section-5 workload with the configured
	// contention Pair breakpoint.
	ModeContention Mode = iota
	// ModeDeadlock runs the dispatch/closeTarget lock-order deadlock.
	ModeDeadlock
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	Mode       Mode
	// Pair is the contention pair and resolve order (ModeContention).
	Pair Pair
	// Appenders and EventsPerAppender shape the producer workload
	// (defaults 2 and 40).
	Appenders, EventsPerAppender int
	// Poll is the dispatcher's timed-wait interval (default 3ms).
	Poll time.Duration
	// StallAfter bounds stall detection (default 3s).
	StallAfter time.Duration
}

func (c *Config) appenders() int {
	if c.Appenders <= 0 {
		return 2
	}
	return c.Appenders
}

func (c *Config) events() int {
	if c.EventsPerAppender <= 0 {
		return 40
	}
	return c.EventsPerAppender
}

func (c *Config) pollInterval() time.Duration {
	if c == nil || c.Poll <= 0 {
		return 3 * time.Millisecond
	}
	return c.Poll
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 3 * time.Second
	}
	return c.StallAfter
}

// pairInvolves100 reports whether the configured pair touches the append
// site; those runs overlap the resize with the producers (the only phase
// in which the pair can rendezvous).
func (c *Config) pairInvolves100() bool {
	return c.Pair.First == S100 || c.Pair.Second == S100
}

// Run executes the log4j workload once: producers append, the buffer is
// resized, the appender is closed, and the dispatcher drains. A stall in
// any phase is the manifested bug.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	if cfg.Mode == ModeDeadlock {
		return runDeadlock(cfg)
	}
	return runContention(cfg)
}

func runContention(cfg Config) appkit.Result {
	app := NewAsyncAppender(8, &cfg)
	total := cfg.appenders() * cfg.events()
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		dispDone := make(chan struct{})
		go app.Dispatcher(dispDone)

		var wg sync.WaitGroup
		for w := 0; w < cfg.appenders(); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < cfg.events(); i++ {
					app.Append(Event{Seq: w*cfg.events() + i, Msg: fmt.Sprintf("w%d-%d", w, i)})
					// Pace the producers so resize/close phases overlap
					// a live event stream when they need to.
					time.Sleep(200 * time.Microsecond)
				}
			}(w)
		}

		if cfg.pairInvolves100() {
			// Overlap the resize with the producers so append-site
			// pairs can rendezvous.
			time.Sleep(2 * time.Millisecond)
			app.SetBufferSize(16)
			wg.Wait()
		} else {
			// Quiet phase: resize after the producers finish and the
			// dispatcher has drained everything and consumed the last
			// producer signal — the phase in which a lost notification
			// cannot be rescued.
			wg.Wait()
			for app.Dispatched() != int64(total) {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(3 * cfg.pollInterval())
			app.SetBufferSize(4)
		}
		app.Close()
		<-dispDone
		if got := app.Dispatched(); got != int64(total) {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("dispatched %d/%d events", got, total)}
		}
		return appkit.Result{Status: appkit.OK}
	})
	app.dead.Store(true) // release any stalled goroutines' periodic waits
	res.BPHit = cfg.Engine.Stats(BPPair).Hits() > 0
	return res
}

func runDeadlock(cfg Config) appkit.Result {
	app := NewAsyncAppender(8, &cfg)
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		dispDone := make(chan struct{})
		go app.Dispatcher(dispDone)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.events(); i++ {
				app.Append(Event{Seq: i, Msg: fmt.Sprintf("e%d", i)})
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			app.CloseTarget()
		}()
		wg.Wait()
		app.Close()
		<-dispDone
		return appkit.Result{Status: appkit.OK}
	})
	app.dead.Store(true)
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
