package mysql

import (
	"fmt"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/guard"
)

// This file promotes the mysql reproduction from an in-process driver
// to a real socket server: a net.Listener accept loop (via the appkit
// socket kit) with per-connection deadlines, graceful drain, and
// accept-loop shedding wired to the engine's OverloadConfig high-water
// marks. Sessions are connection ordinals, so concurrent network
// clients drive the same commit/FLUSH interleavings the in-process
// scenarios did — including the FLUSH-vs-DML lock-order deadlock, which
// a wait-graph supervisor watching the same engine confirms while the
// wedged handler goroutines sit behind real sockets.
//
// Protocol (one statement per line):
//
//	INSERT INTO t VALUES ('v') | SELECT ... | UPDATE ... | DELETE ...
//	DROP TABLE t | FLUSH LOGS          → ok <n> | err <msg>
//
// With Config.Bug == Deadlock (breakpoints armed), INSERT statements
// take the locked-commit path (catalog lock held across the binlog
// append) and FLUSH takes the rotation path (binlog lock held across a
// catalog scan) — the crossing acquisition orders of MySQL #9801.
// Overloaded accepts answer "err shed <reason>" and close.

// NetServer is the mysql reproduction listening on a real socket.
type NetServer struct {
	kit *appkit.SocketServer
	srv *Server
	cfg *Config
}

// NetConfig parameterizes StartNet beyond the run Config.
type NetConfig struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// ConnTimeout bounds each connection read/write (default 30s).
	ConnTimeout time.Duration
	// DrainTimeout bounds graceful drain on Close (default 5s).
	DrainTimeout time.Duration
	// Tables are created before serving (default: t1).
	Tables []string
}

// StartNet starts the server on a loopback listener, with the engine's
// OverloadConfig high-water mark as the accept loop's shedding policy.
func StartNet(cfg Config, ncfg NetConfig) (*NetServer, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("mysql: StartNet requires Config.Engine")
	}
	cfg.resolveHandles()
	ns := &NetServer{cfg: &cfg}
	ns.srv = NewServer(ns.cfg)
	tables := ncfg.Tables
	if len(tables) == 0 {
		tables = []string{"t1"}
	}
	for _, t := range tables {
		ns.srv.CreateTable(t)
	}
	e := cfg.Engine
	kit, err := appkit.StartSocketServer(appkit.SocketServerConfig{
		Addr:    ncfg.Addr,
		Handler: ns.handle,
		Shed: func() (string, bool) {
			ov, ok := e.Overload()
			if !ok || ov.GlobalHighWater <= 0 {
				return "", false
			}
			if pop := e.PostponedTotal(); pop >= int64(ov.GlobalHighWater) {
				return fmt.Sprintf("accept shed: postponed population %d at high water %d", pop, ov.GlobalHighWater), true
			}
			return "", false
		},
		OnShed:       func(reason string) { e.RecordIncident(guard.KindOverloadShed, "mysql.accept", 0, reason) },
		ShedResponse: "err shed",
		ConnTimeout:  ncfg.ConnTimeout,
		DrainTimeout: ncfg.DrainTimeout,
	})
	if err != nil {
		return nil, err
	}
	ns.kit = kit
	return ns, nil
}

// Addr returns the server's listen address.
func (ns *NetServer) Addr() string { return ns.kit.Addr() }

// Server returns the underlying mini SQL engine (binlog inspection).
func (ns *NetServer) Server() *Server { return ns.srv }

// ShedCount returns how many connections the accept loop shed.
func (ns *NetServer) ShedCount() int64 { return ns.kit.ShedCount() }

// Served returns how many statements were answered.
func (ns *NetServer) Served() int64 { return ns.kit.Served() }

// Close drains the server gracefully. Handler goroutines wedged in a
// confirmed deadlock are abandoned at the drain bound — the deadlock is
// the application bug under study, not the server's to untangle.
func (ns *NetServer) Close() error { return ns.kit.Close() }

// handle executes one statement on behalf of session ordinal conn.
func (ns *NetServer) handle(conn, _ int, line string) (resp string) {
	defer func() {
		if p := recover(); p != nil {
			// The crash reproductions dereference freed storage; over a
			// socket that is a wire-visible server error, not a process
			// death (the subprocess campaign worker covers that shape).
			resp = fmt.Sprintf("err server crash: %v", p)
		}
	}()
	if ns.cfg.bug(Deadlock) {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			switch strings.ToUpper(fields[0]) {
			case "INSERT":
				val, err := unquote(line, line)
				if err != nil {
					val = fmt.Sprintf("session-%d", conn)
				}
				ns.srv.commitWithBinlog(val)
				return "ok 1"
			case "FLUSH":
				return fmt.Sprintf("ok %d", ns.srv.flushWithReadLock())
			}
		}
	}
	n, err := ns.srv.Exec(conn, line)
	if err != nil {
		return "err " + err.Error()
	}
	return fmt.Sprintf("ok %d", n)
}
