package mysql

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietServer() *Server {
	e := core.NewEngine()
	e.SetEnabled(false)
	s := NewServer(&Config{Engine: e})
	s.CreateTable("t1")
	return s
}

func TestInsertAndCount(t *testing.T) {
	s := quietServer()
	if _, err := s.Exec(1, "INSERT INTO t1 VALUES ('hello')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(1, "INSERT INTO t1 VALUES ('world');"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Exec(1, "SELECT COUNT(*) FROM t1")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

func TestBinlogRecordsCommits(t *testing.T) {
	s := quietServer()
	lsn, err := s.Exec(1, "INSERT INTO t1 VALUES ('a')")
	if err != nil {
		t.Fatal(err)
	}
	if !s.binlog.Contains(lsn) {
		t.Fatal("binlog missing committed record")
	}
	s.Exec(1, "FLUSH LOGS")
	if !s.binlog.Contains(lsn) {
		t.Fatal("rotation lost an archived record")
	}
}

func TestDropTable(t *testing.T) {
	s := quietServer()
	if _, err := s.Exec(1, "DROP TABLE t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(1, "SELECT COUNT(*) FROM t1"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := s.Exec(1, "DROP TABLE missing"); err == nil {
		t.Fatal("dropping a missing table should fail")
	}
}

func TestParseErrors(t *testing.T) {
	s := quietServer()
	for _, stmt := range []string{"", "INSERT t1", "SELECT COUNT(*) t1", "DROP t1", "TRUNCATE t1"} {
		if _, err := s.Exec(1, stmt); err == nil {
			t.Errorf("statement %q should not parse", stmt)
		}
	}
}

func TestDelayedInsertHappyPath(t *testing.T) {
	s := quietServer()
	if err := s.DelayedInsert("t1", "x"); err != nil {
		t.Fatal(err)
	}
	n, _ := s.count("t1", nil)
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestLogOmissionReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: LogOmission, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.LogOmission || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestLogDisorderReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: LogDisorder, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.LogDisorder || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestServerCrashReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: ServerCrash, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.Crash || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
		if !strings.Contains(r.Detail, "null pointer dereference") {
			t.Fatalf("run %d: detail %q", i, r.Detail)
		}
	}
}

func TestWithoutBreakpointsMostlyOK(t *testing.T) {
	for _, bug := range []Bug{LogOmission, LogDisorder, ServerCrash} {
		bugs := 0
		for i := 0; i < 5; i++ {
			e := core.NewEngine()
			e.SetEnabled(false)
			if Run(Config{Engine: e, Bug: bug}).Status.Buggy() {
				bugs++
			}
		}
		if bugs > 1 {
			t.Errorf("bug %v manifested %d/5 without breakpoints", bug, bugs)
		}
	}
}

func TestSelectWhere(t *testing.T) {
	s := quietServer()
	s.Exec(1, "INSERT INTO t1 VALUES ('apple')")
	s.Exec(1, "INSERT INTO t1 VALUES ('banana')")
	s.Exec(1, "INSERT INTO t1 VALUES ('apple')")
	n, err := s.Exec(1, "SELECT COUNT(*) FROM t1 WHERE value = 'apple'")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
	n, err = s.Exec(1, "SELECT COUNT(*) FROM t1 WHERE value = 'cherry'")
	if err != nil || n != 0 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
	if _, err := s.Exec(1, "SELECT COUNT(*) FROM t1 WHERE id = 1"); err == nil {
		t.Fatal("unsupported WHERE column parsed")
	}
}

func TestUpdate(t *testing.T) {
	s := quietServer()
	s.Exec(1, "INSERT INTO t1 VALUES ('old')")
	s.Exec(1, "INSERT INTO t1 VALUES ('old')")
	s.Exec(1, "INSERT INTO t1 VALUES ('keep')")
	before := len(s.binlog.AllLSNs())
	changed, err := s.Exec(1, "UPDATE t1 SET value = 'new' WHERE value = 'old'")
	if err != nil || changed != 2 {
		t.Fatalf("changed = %d, err = %v", changed, err)
	}
	if n, _ := s.Exec(1, "SELECT COUNT(*) FROM t1 WHERE value = 'new'"); n != 2 {
		t.Fatalf("new rows = %d", n)
	}
	if got := len(s.binlog.AllLSNs()); got != before+1 {
		t.Fatalf("update not binlogged: %d records", got)
	}
	// No-op update is not binlogged.
	changed, _ = s.Exec(1, "UPDATE t1 SET value = 'x' WHERE value = 'missing'")
	if changed != 0 || len(s.binlog.AllLSNs()) != before+1 {
		t.Fatal("no-op update binlogged")
	}
}

func TestDelete(t *testing.T) {
	s := quietServer()
	s.Exec(1, "INSERT INTO t1 VALUES ('x')")
	s.Exec(1, "INSERT INTO t1 VALUES ('y')")
	removed, err := s.Exec(1, "DELETE FROM t1 WHERE value = 'x'")
	if err != nil || removed != 1 {
		t.Fatalf("removed = %d, err = %v", removed, err)
	}
	if n, _ := s.count("t1", nil); n != 1 {
		t.Fatalf("remaining = %d", n)
	}
	if _, err := s.Exec(1, "DELETE FROM t1"); err == nil {
		t.Fatal("DELETE without WHERE accepted")
	}
}
