package mysql

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/waitgraph"
)

// The FLUSH-vs-DML deadlock must be classified by the wait-graph
// supervisor well before the repro's own stall deadline, naming the
// exact locks, classes, and wait sites of the cycle.
func TestDeadlockReproConfirmedByWaitGraph(t *testing.T) {
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{Interval: time.Millisecond})
	sup.Start()
	defer sup.Stop()

	const stallAfter = 1500 * time.Millisecond
	start := time.Now()
	resCh := make(chan appkit.Result, 1)
	go func() {
		resCh <- Run(Config{Engine: e, Bug: Deadlock, Breakpoint: true,
			Timeout: 2 * time.Second, StallAfter: stallAfter})
	}()

	select {
	case <-sup.Confirmed():
	case <-time.After(10 * time.Second):
		t.Fatal("wait graph never confirmed the mysql deadlock")
	}
	confirmAt := time.Since(start)
	if confirmAt > stallAfter/2 {
		t.Fatalf("confirmation took %v, not well before the %v stall deadline", confirmAt, stallAfter)
	}

	var cycle *waitgraph.Report
	for i, r := range sup.Reports() {
		for _, l := range r.Locks {
			if l == "mysql.binlog" {
				cycle = &sup.Reports()[i]
			}
		}
	}
	if cycle == nil {
		t.Fatalf("no report names mysql.binlog: %v", sup.Reports())
	}
	if cycle.Kind != waitgraph.ReportDeadlock {
		t.Fatalf("kind = %s", cycle.Kind)
	}
	if len(cycle.GIDs) != 2 {
		t.Fatalf("cycle gids = %v, want 2 goroutines", cycle.GIDs)
	}
	locks := strings.Join(cycle.Locks, ",")
	if !strings.Contains(locks, "mysql.binlog") || !strings.Contains(locks, "mysql.catalog") {
		t.Fatalf("cycle locks = %v", cycle.Locks)
	}
	sites := strings.Join(cycle.Sites, ",")
	if !strings.Contains(sites, "sql/log.cc:append") ||
		!strings.Contains(sites, "sql/sql_table.cc:lock_table_names") {
		t.Fatalf("cycle sites = %v", cycle.Sites)
	}
	if len(cycle.Breakpoints) != 0 {
		t.Fatalf("application-only cycle lists breakpoints: %v", cycle.Breakpoints)
	}

	// The repro itself still classifies as a stall at its deadline —
	// the supervisor's diagnosis just arrives much earlier.
	res := <-resCh
	if res.Status != appkit.Stall {
		t.Fatalf("repro status = %v, want stall", res.Status)
	}
	if !res.BPHit {
		t.Fatal("deadlock breakpoint never hit")
	}
}

// Without the breakpoint the lock-order window is a few instructions
// wide: the repro completes.
func TestDeadlockReproCompletesWithoutBreakpoint(t *testing.T) {
	res := Run(Config{Engine: core.NewEngine(), Bug: Deadlock, Breakpoint: false,
		Timeout: 10 * time.Millisecond, StallAfter: 5 * time.Second})
	if res.Status != appkit.OK {
		t.Fatalf("status = %v, want ok", res.Status)
	}
}
