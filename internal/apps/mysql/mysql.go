// Package mysql models the MySQL server versions of the paper's Table 2
// as one mini SQL engine (tables, a statement executor, and a binary
// log) with the three reproducible bugs:
//
//   - Log omission (MySQL 4.0.12, bug #791, 2 CBRs): a committed write's
//     binlog record is appended concurrently with FLUSH LOGS rotation;
//     if the append lands between the rotation's snapshot and its
//     truncation, the record vanishes from every log segment.
//
//   - Log disorder (MySQL 3.23.56, bug #169, 1 CBR): commit sequence
//     numbers are assigned before the binlog append, so two sessions can
//     append in the opposite order of their commits, producing a binlog
//     that replays incorrectly.
//
//   - Server crash (MySQL 4.0.19, bug #3596, 3 CBRs): a DROP TABLE frees
//     a table's row storage while a delayed-insert handler that already
//     looked the table up dereferences it — a null-pointer crash.
//
//   - Deadlock (FLUSH-vs-DML, 1 CBR): a commit path that holds the
//     catalog lock across its binlog append crosses a FLUSH LOGS path
//     that holds the binlog lock across a catalog scan — the classic
//     lock-order inversion, observable as a wait-graph cycle over
//     mysql.catalog and mysql.binlog.
package mysql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPOmitApply  = "mysql.omit.cbr1" // commit apply vs rotation snapshot
	BPOmitAppend = "mysql.omit.cbr2" // binlog append vs rotation truncate
	BPDisorder   = "mysql.disorder.cbr1"
	BPCrashAlign = "mysql.crash.cbr1"    // handler entry vs drop entry
	BPCrashFree  = "mysql.crash.cbr2"    // storage free vs row use
	BPCrashHide  = "mysql.crash.cbr3"    // map removal vs handler lookup
	BPDeadlock   = "mysql.deadlock.cbr1" // catalog-vs-binlog lock order
)

// Row is one table row.
type Row struct {
	ID    int64
	Value string
}

// rows is the heap-allocated row storage a DROP frees.
type rows struct {
	data []Row
}

// Table is a named table whose row storage is reachable through a
// pointer that DROP TABLE nils out (the crash bug's freed object).
type Table struct {
	Name    string
	storage *memory.Ref[rows]
	dropped *memory.Cell
}

func newTable(sp *memory.Space, name string) *Table {
	return &Table{
		Name:    name,
		storage: memory.NewRef(sp, "mysql.storage."+name, &rows{}),
		dropped: memory.NewCell(sp, "mysql.dropped."+name, 0),
	}
}

// LogRecord is one binlog entry.
type LogRecord struct {
	LSN int64
	SQL string
}

// Binlog is the binary log: a current segment plus rotated archives.
type Binlog struct {
	mu       *locks.Mutex
	current  []LogRecord
	archives [][]LogRecord
}

func newBinlog() *Binlog { return &Binlog{mu: locks.NewMutex("mysql.binlog")} }

// Append adds a record to the current segment.
func (b *Binlog) Append(r LogRecord) {
	b.mu.WithAt("sql/log.cc:append", func() { b.current = append(b.current, r) })
}

// snapshot returns the current segment's contents.
func (b *Binlog) snapshot() []LogRecord {
	var out []LogRecord
	b.mu.WithAt("sql/log.cc:snapshot", func() {
		out = append(out, b.current...)
	})
	return out
}

// truncate archives snap and resets the current segment to empty —
// discarding anything appended after the snapshot (the omission bug's
// destructive half).
func (b *Binlog) truncate(snap []LogRecord) {
	b.mu.WithAt("sql/log.cc:truncate", func() {
		b.archives = append(b.archives, snap)
		b.current = nil
	})
}

// Contains reports whether any segment holds a record with the given
// LSN.
func (b *Binlog) Contains(lsn int64) bool {
	found := false
	b.mu.With(func() {
		for _, r := range b.current {
			if r.LSN == lsn {
				found = true
			}
		}
		for _, seg := range b.archives {
			for _, r := range seg {
				if r.LSN == lsn {
					found = true
				}
			}
		}
	})
	return found
}

// AllLSNs returns every logged LSN in append order (current segment
// after archives).
func (b *Binlog) AllLSNs() []int64 {
	var out []int64
	b.mu.With(func() {
		for _, seg := range b.archives {
			for _, r := range seg {
				out = append(out, r.LSN)
			}
		}
		for _, r := range b.current {
			out = append(out, r.LSN)
		}
	})
	return out
}

// Server is the mini SQL engine.
type Server struct {
	mu      *locks.Mutex // guards the table catalog
	tables  map[string]*Table
	binlog  *Binlog
	nextLSN *memory.Cell
	cfg     *Config
}

// NewServer returns a server with an empty catalog. When cfg carries a
// Space, every shared cell of the server is created in it, so a tracer
// on the space (the predictive recorder of internal/predict, or a
// dynamic detector) observes all of the server's racy state.
func NewServer(cfg *Config) *Server {
	return &Server{
		mu:      locks.NewMutex("mysql.catalog"),
		tables:  make(map[string]*Table),
		binlog:  newBinlog(),
		nextLSN: memory.NewCell(cfg.space(), "mysql.lsn", 0),
		cfg:     cfg,
	}
}

// Mutexes returns the server's instrumented locks (catalog and binlog),
// so recorders and detectors can Observe them alongside the memory
// space: detect-style attachment is d.Instrument(sp, srv.Mutexes()...).
func (s *Server) Mutexes() []*locks.Mutex {
	return []*locks.Mutex{s.mu, s.binlog.mu}
}

// CreateTable registers a new table.
func (s *Server) CreateTable(name string) *Table {
	t := newTable(s.cfg.space(), name)
	s.mu.With(func() { s.tables[name] = t })
	return t
}

// lookup returns the named table or nil.
func (s *Server) lookup(name string) *Table {
	var t *Table
	s.mu.With(func() { t = s.tables[name] })
	return t
}

// Exec parses and executes one SQL-ish statement on behalf of session
// id. Supported:
//
//	INSERT INTO t VALUES ('v')
//	SELECT COUNT(*) FROM t [WHERE value = 'v']
//	UPDATE t SET value = 'new' WHERE value = 'old'   (returns rows changed)
//	DELETE FROM t WHERE value = 'v'                   (returns rows removed)
//	DROP TABLE t
//	FLUSH LOGS
func (s *Server) Exec(session int, stmt string) (int64, error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if len(fields) == 0 {
		return 0, fmt.Errorf("empty statement")
	}
	switch strings.ToUpper(fields[0]) {
	case "INSERT":
		// INSERT INTO <t> VALUES ('<v>')
		if len(fields) < 4 || !strings.EqualFold(fields[1], "INTO") ||
			!strings.EqualFold(strings.TrimRight(fields[3], "('\""), "VALUES") {
			return 0, fmt.Errorf("parse error: %q", stmt)
		}
		val, err := unquote(strings.Join(fields[3:], " "), stmt)
		if err != nil {
			return 0, err
		}
		return s.insert(session, fields[2], val, stmt)
	case "SELECT":
		// SELECT COUNT(*) FROM <t> [WHERE value = '<v>']
		if len(fields) < 4 || !strings.EqualFold(fields[2], "FROM") {
			return 0, fmt.Errorf("parse error: %q", stmt)
		}
		filter, err := parseWhere(fields[4:], stmt)
		if err != nil {
			return 0, err
		}
		return s.count(fields[3], filter)
	case "UPDATE":
		// UPDATE <t> SET value = '<new>' WHERE value = '<old>'
		return s.update(session, fields, stmt)
	case "DELETE":
		// DELETE FROM <t> WHERE value = '<v>'
		if len(fields) < 3 || !strings.EqualFold(fields[1], "FROM") {
			return 0, fmt.Errorf("parse error: %q", stmt)
		}
		filter, err := parseWhere(fields[3:], stmt)
		if err != nil {
			return 0, err
		}
		if filter == nil {
			return 0, fmt.Errorf("DELETE requires a WHERE clause: %q", stmt)
		}
		return s.delete(session, fields[2], filter, stmt)
	case "DROP":
		if len(fields) < 3 || !strings.EqualFold(fields[1], "TABLE") {
			return 0, fmt.Errorf("parse error: %q", stmt)
		}
		return 0, s.dropTable(fields[2])
	case "FLUSH":
		s.FlushLogs()
		return 0, nil
	default:
		return 0, fmt.Errorf("unsupported statement: %q", stmt)
	}
}

// unquote extracts the text between the first pair of matching quotes
// (single or double) in s.
func unquote(s, stmt string) (string, error) {
	for _, q := range []byte{'\'', '"'} {
		if i := strings.IndexByte(s, q); i >= 0 {
			if j := strings.IndexByte(s[i+1:], q); j >= 0 {
				return s[i+1 : i+1+j], nil
			}
		}
	}
	return "", fmt.Errorf("missing quoted value in %q", stmt)
}

// parseWhere parses an optional trailing "WHERE value = '<v>'" clause
// and returns a row predicate (nil = match all).
func parseWhere(fields []string, stmt string) (func(Row) bool, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	if len(fields) < 4 || !strings.EqualFold(fields[0], "WHERE") ||
		!strings.EqualFold(fields[1], "value") || fields[2] != "=" {
		return nil, fmt.Errorf("parse error in WHERE clause: %q", stmt)
	}
	want, err := unquote(strings.Join(fields[3:], " "), stmt)
	if err != nil {
		return nil, err
	}
	return func(r Row) bool { return r.Value == want }, nil
}

// update applies UPDATE ... SET value = 'new' WHERE value = 'old' and
// binlogs the statement when it changed rows.
func (s *Server) update(session int, fields []string, stmt string) (int64, error) {
	// UPDATE t SET value = 'new' WHERE ...
	if len(fields) < 6 || !strings.EqualFold(fields[2], "SET") ||
		!strings.EqualFold(fields[3], "value") || fields[4] != "=" {
		return 0, fmt.Errorf("parse error: %q", stmt)
	}
	rest := fields[5:]
	newVal := strings.Trim(rest[0], "'\" ")
	var filter func(Row) bool
	for i, f := range rest {
		if strings.EqualFold(f, "WHERE") {
			newVal = strings.Trim(strings.Join(rest[:i], " "), "'\" ")
			var err error
			if filter, err = parseWhere(rest[i:], stmt); err != nil {
				return 0, err
			}
			break
		}
	}
	t := s.lookup(fields[1])
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", fields[1])
	}
	var changed int64
	t.withStorage(func(r *rows) {
		for i := range r.data {
			if filter == nil || filter(r.data[i]) {
				r.data[i].Value = newVal
				changed++
			}
		}
	})
	if changed > 0 {
		//cbvet:ignore conflicts intentional mysql race: the lock-free LSN assignment vs the locked commit path is the cbpredict demo pair
		lsn := s.nextLSN.AtomicAdd("mysql:lsn", 1)
		s.binlog.Append(LogRecord{LSN: lsn, SQL: stmt})
	}
	return changed, nil
}

// delete removes matching rows and binlogs the statement when it
// removed any.
func (s *Server) delete(session int, table string, filter func(Row) bool, stmt string) (int64, error) {
	t := s.lookup(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	var removed int64
	t.withStorage(func(r *rows) {
		kept := r.data[:0]
		for _, row := range r.data {
			if filter(row) {
				removed++
			} else {
				kept = append(kept, row)
			}
		}
		r.data = kept
	})
	if removed > 0 {
		lsn := s.nextLSN.AtomicAdd("mysql:lsn", 1)
		s.binlog.Append(LogRecord{LSN: lsn, SQL: stmt})
	}
	return removed, nil
}

// insert applies the write and then logs it — with the omission and
// disorder windows between LSN assignment, apply, and append.
func (s *Server) insert(session int, table, value, stmt string) (int64, error) {
	t := s.lookup(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	lsn := s.nextLSN.AtomicAdd("mysql:lsn", 1)
	st := t.storage.Load("mysql:insert.load")
	if st == nil {
		panic("null pointer dereference in write_row (storage freed)")
	}
	t.withStorage(func(r *rows) {
		r.data = append(r.data, Row{ID: lsn, Value: value})
	})
	if s.cfg.bug(LogOmission) {
		// cbr1: the apply is ordered before the rotation snapshot, so
		// the row exists but its record is not yet in the log.
		s.cfg.bpOmitApply().Trigger(core.NewConflictTrigger(BPOmitApply, s.binlog), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	if s.cfg.bug(LogDisorder) {
		// One CBR: the later committer's append is ordered before the
		// earlier committer's.
		s.cfg.bpDisorder().Trigger(core.NewConflictTrigger(BPDisorder, s.binlog), session == 2,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	append := func() { s.binlog.Append(LogRecord{LSN: lsn, SQL: stmt}) }
	if s.cfg.bug(LogOmission) {
		// cbr2: the append is ordered before the rotation truncate —
		// landing in the segment the truncate is about to discard.
		s.cfg.bpOmitAppend().TriggerAnd(core.NewConflictTrigger(BPOmitAppend, s.binlog), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1}, append)
	} else {
		append()
	}
	return lsn, nil
}

// withStorage mutates the row storage through the freeable pointer.
func (t *Table) withStorage(f func(*rows)) {
	st := t.storage.Load("mysql:storage.use")
	if st == nil {
		panic("null pointer dereference in storage access (table dropped)")
	}
	f(st)
}

// count is SELECT COUNT(*) with an optional row filter.
func (s *Server) count(table string, filter func(Row) bool) (int64, error) {
	t := s.lookup(table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	st := t.storage.Load("mysql:count.load")
	if st == nil {
		panic("null pointer dereference in rnd_init (storage freed)")
	}
	if filter == nil {
		return int64(len(st.data)), nil
	}
	var n int64
	for _, r := range st.data {
		if filter(r) {
			n++
		}
	}
	return n, nil
}

// FlushLogs rotates the binlog: snapshot, then truncate. The window
// between them is where a concurrent append's record is lost.
func (s *Server) FlushLogs() {
	if s.cfg.bug(LogOmission) {
		// cbr1 second side: wait for the committer's apply.
		s.cfg.bpOmitApply().Trigger(core.NewConflictTrigger(BPOmitApply, s.binlog), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	snap := s.binlog.snapshot()
	if s.cfg.bug(LogOmission) {
		// cbr2 second side: let the committer's append land before the
		// truncate discards the segment.
		s.cfg.bpOmitAppend().Trigger(core.NewConflictTrigger(BPOmitAppend, s.binlog), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	s.binlog.truncate(snap)
}

// DelayedInsert is the INSERT DELAYED handler path of the crash bug: it
// looks the table up, re-checks the dropped flag, and then uses the row
// storage — with breakpoint windows letting a concurrent DROP TABLE
// free the storage in between.
func (s *Server) DelayedInsert(table, value string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("server crash: %v", p)
		}
	}()
	if s.cfg.bug(ServerCrash) {
		s.cfg.bpCrashAlign().Trigger(core.NewConflictTrigger(BPCrashAlign, s), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	t := s.lookup(table)
	if t == nil {
		return fmt.Errorf("table %q does not exist", table)
	}
	if s.cfg.bug(ServerCrash) {
		// cbr3: keep the catalog entry visible until after this lookup.
		s.cfg.bpCrashHide().Trigger(core.NewConflictTrigger(BPCrashHide, s.mu), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	if t.dropped.Load("mysql:delayed.check") != 0 {
		return fmt.Errorf("table %q is being dropped", table)
	}
	if s.cfg.bug(ServerCrash) {
		// cbr2 second side: the DROP's free lands between the check and
		// the use.
		s.cfg.bpCrashFree().Trigger(core.NewConflictTrigger(BPCrashFree, t.storage), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	lsn := s.nextLSN.AtomicAdd("mysql:lsn", 1)
	t.withStorage(func(r *rows) {
		r.data = append(r.data, Row{ID: lsn, Value: value})
	})
	s.binlog.Append(LogRecord{LSN: lsn, SQL: "INSERT DELAYED " + value})
	return nil
}

// commitWithBinlog models the DML side of the FLUSH-vs-DML deadlock: a
// commit path that keeps the catalog lock across its binlog append (as
// the original server does while the query cache and table locks are
// pinned). The breakpoint pauses it between the two acquisitions so the
// crossing FLUSH path can take the binlog lock first.
func (s *Server) commitWithBinlog(value string) {
	s.mu.LockAt("sql/sql_parse.cc:mysql_execute_command")
	defer s.mu.Unlock()
	if s.cfg.bug(Deadlock) {
		s.cfg.bpDeadlock().Trigger(core.NewDeadlockTrigger(BPDeadlock, s.mu, s.binlog.mu), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	lsn := s.nextLSN.AtomicAdd("mysql:commit.lsn", 1)
	//cbvet:ignore lockorder intentional: the FLUSH-vs-DML inversion (MySQL #9801) the waitgraph test confirms at runtime
	s.binlog.Append(LogRecord{LSN: lsn, SQL: "INSERT /* locked commit */ " + value})
}

// LockedCommit exposes the catalog-locked commit path: it assigns the
// LSN while holding the catalog lock, where the plain INSERT path
// assigns it with no lock held — the inconsistent locking the
// predictive analyzer (internal/predict, cbvet's conflicts pass)
// surfaces as a predicted race on mysql.lsn.
func (s *Server) LockedCommit(value string) { s.commitWithBinlog(value) }

// flushWithReadLock models the FLUSH LOGS side: rotation holds the
// binlog lock while it walks the catalog to block new table writes —
// the opposite acquisition order of commitWithBinlog.
func (s *Server) flushWithReadLock() int {
	s.binlog.mu.LockAt("sql/log.cc:rotate")
	defer s.binlog.mu.Unlock()
	if s.cfg.bug(Deadlock) {
		s.cfg.bpDeadlock().Trigger(core.NewDeadlockTrigger(BPDeadlock, s.binlog.mu, s.mu), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	locked := 0
	//cbvet:ignore lockorder intentional: the FLUSH-vs-DML inversion (MySQL #9801) the waitgraph test confirms at runtime
	s.mu.WithAt("sql/sql_table.cc:lock_table_names", func() { locked = len(s.tables) })
	return locked
}

// dropTable removes the table and frees its storage: catalog removal,
// then the free — with breakpoint windows aligning it against a
// concurrent delayed insert.
func (s *Server) dropTable(name string) error {
	if s.cfg.bug(ServerCrash) {
		s.cfg.bpCrashAlign().Trigger(core.NewConflictTrigger(BPCrashAlign, s), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	t := s.lookup(name)
	if t == nil {
		return fmt.Errorf("table %q does not exist", name)
	}
	if s.cfg.bug(ServerCrash) {
		// cbr3 second side: the removal waits for the handler's lookup.
		s.cfg.bpCrashHide().Trigger(core.NewConflictTrigger(BPCrashHide, s.mu), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	t.dropped.Store("mysql:drop.flag", 1)
	s.mu.With(func() { delete(s.tables, name) })
	free := func() { t.storage.Store("mysql:drop.free", nil) }
	if s.cfg.bug(ServerCrash) {
		// cbr2 first side: the free executes before the handler's use.
		s.cfg.bpCrashFree().TriggerAnd(core.NewConflictTrigger(BPCrashFree, t.storage), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1}, free)
	} else {
		free()
	}
	return nil
}

// Bug selects which Table 2 bug a run exercises.
type Bug int

// The MySQL bugs of Table 2, plus the FLUSH-vs-DML deadlock used by the
// wait-graph supervision row.
const (
	LogOmission Bug = iota // bug #791
	LogDisorder            // bug #169
	ServerCrash            // bug #3596
	Deadlock               // FLUSH-vs-DML lock-order inversion
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	// StallAfter bounds stall detection for the Deadlock bug (default
	// 2s); the other bugs never stall and keep the long safety deadline.
	StallAfter time.Duration
	// Space, when non-nil, is the memory space the server's shared
	// cells are created in, so a tracer attached to it (recorder or
	// detector) observes every racy access. Nil keeps cells untraced —
	// the zero-overhead default.
	Space *memory.Space

	// bps caches the run's breakpoint handles, resolved once in Run so
	// the trigger sites skip the per-call registry lookup. Left nil when
	// a Config is built directly (tests); the accessors then resolve per
	// call rather than populating the cache lazily, because the scenario
	// goroutines race by design and a lazy write would add an unrelated
	// data race on the Config itself.
	bps *bpHandles
}

// bpHandles bundles one handle per mysql breakpoint.
type bpHandles struct {
	omitApply, omitAppend, disorder  *core.Breakpoint
	crashAlign, crashFree, crashHide *core.Breakpoint
	deadlock                         *core.Breakpoint
}

func (c *Config) resolveHandles() {
	c.bps = &bpHandles{
		omitApply:  c.Engine.Breakpoint(BPOmitApply),
		omitAppend: c.Engine.Breakpoint(BPOmitAppend),
		disorder:   c.Engine.Breakpoint(BPDisorder),
		crashAlign: c.Engine.Breakpoint(BPCrashAlign),
		crashFree:  c.Engine.Breakpoint(BPCrashFree),
		crashHide:  c.Engine.Breakpoint(BPCrashHide),
		deadlock:   c.Engine.Breakpoint(BPDeadlock),
	}
}

func (c *Config) handle(cached func(*bpHandles) *core.Breakpoint, name string) *core.Breakpoint {
	if h := c.bps; h != nil {
		return cached(h)
	}
	return c.Engine.Breakpoint(name)
}

func (c *Config) bpOmitApply() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.omitApply }, BPOmitApply)
}

func (c *Config) bpOmitAppend() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.omitAppend }, BPOmitAppend)
}

func (c *Config) bpDisorder() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.disorder }, BPDisorder)
}

func (c *Config) bpCrashAlign() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.crashAlign }, BPCrashAlign)
}

func (c *Config) bpCrashFree() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.crashFree }, BPCrashFree)
}

func (c *Config) bpCrashHide() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.crashHide }, BPCrashHide)
}

func (c *Config) bpDeadlock() *core.Breakpoint {
	return c.handle(func(h *bpHandles) *core.Breakpoint { return h.deadlock }, BPDeadlock)
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

func (c *Config) bug(b Bug) bool {
	return c != nil && c.Breakpoint && c.Bug == b
}

func (c *Config) space() *memory.Space {
	if c == nil {
		return nil
	}
	return c.Space
}

// Run drives the scenario for the configured bug and classifies the
// outcome.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	cfg.resolveHandles()
	srv := NewServer(&cfg)
	srv.CreateTable("t1")
	deadline := 60 * time.Second
	if cfg.Bug == Deadlock {
		// The deadlock repro IS a stall: detect it at the configured
		// stall deadline rather than the long safety net.
		deadline = cfg.stallAfter()
	}
	res := appkit.RunWithDeadline(deadline, func() appkit.Result {
		switch cfg.Bug {
		case LogOmission:
			return runOmission(srv)
		case LogDisorder:
			return runDisorder(srv)
		case Deadlock:
			return runDeadlockRepro(srv)
		default:
			return runCrash(srv)
		}
	})
	switch cfg.Bug {
	case LogOmission:
		res.BPHit = cfg.Engine.Stats(BPOmitAppend).Hits() > 0
	case LogDisorder:
		res.BPHit = cfg.Engine.Stats(BPDisorder).Hits() > 0
	case Deadlock:
		res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	default:
		res.BPHit = cfg.Engine.Stats(BPCrashFree).Hits() > 0
	}
	return res
}

// runDeadlockRepro races a locked commit against a FLUSH LOGS rotation.
// With the breakpoint the two sides rendezvous while each holds its
// first lock, then cross — a guaranteed lock cycle the wait-graph
// supervisor confirms in milliseconds; without it the window is a few
// instructions wide and the run completes.
func runDeadlockRepro(srv *Server) appkit.Result {
	done := make(chan struct{}, 2)
	go func() {
		srv.commitWithBinlog("d1")
		done <- struct{}{}
	}()
	go func() {
		time.Sleep(time.Millisecond)
		srv.flushWithReadLock()
		done <- struct{}{}
	}()
	<-done
	<-done
	return appkit.Result{Status: appkit.OK}
}

func runOmission(srv *Server) appkit.Result {
	var lsn int64
	var insErr error
	done := make(chan struct{}, 2)
	go func() {
		lsn, insErr = srv.Exec(1, "INSERT INTO t1 VALUES ('a')")
		done <- struct{}{}
	}()
	go func() {
		time.Sleep(time.Millisecond)
		srv.Exec(2, "FLUSH LOGS")
		done <- struct{}{}
	}()
	<-done
	<-done
	if insErr != nil {
		return appkit.Result{Status: appkit.TestFail, Detail: insErr.Error()}
	}
	n, _ := srv.count("t1", nil)
	if n == 1 && !srv.binlog.Contains(lsn) {
		return appkit.Result{Status: appkit.LogOmission,
			Detail: fmt.Sprintf("row with LSN %d committed but absent from every binlog segment", lsn)}
	}
	return appkit.Result{Status: appkit.OK}
}

func runDisorder(srv *Server) appkit.Result {
	done := make(chan struct{}, 2)
	for session := 1; session <= 2; session++ {
		go func(session int) {
			if session == 2 {
				// Session 2 commits after session 1, so its binlog
				// record belongs after session 1's.
				time.Sleep(time.Millisecond)
			}
			srv.Exec(session, fmt.Sprintf("INSERT INTO t1 VALUES ('s%d')", session))
			done <- struct{}{}
		}(session)
	}
	<-done
	<-done
	lsns := srv.binlog.AllLSNs()
	if len(lsns) != 2 {
		return appkit.Result{Status: appkit.TestFail,
			Detail: fmt.Sprintf("binlog has %d records, want 2", len(lsns))}
	}
	if !sort.SliceIsSorted(lsns, func(i, j int) bool { return lsns[i] < lsns[j] }) {
		return appkit.Result{Status: appkit.LogDisorder,
			Detail: "binlog LSNs out of commit order: " + fmtLSNs(lsns)}
	}
	return appkit.Result{Status: appkit.OK}
}

func fmtLSNs(lsns []int64) string {
	parts := make([]string, len(lsns))
	for i, l := range lsns {
		parts[i] = strconv.FormatInt(l, 10)
	}
	return strings.Join(parts, ",")
}

func runCrash(srv *Server) appkit.Result {
	errCh := make(chan error, 2)
	go func() { errCh <- srv.DelayedInsert("t1", "x") }()
	go func() {
		time.Sleep(time.Millisecond)
		_, err := srv.Exec(2, "DROP TABLE t1")
		errCh <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil && strings.Contains(err.Error(), "crash") {
			return appkit.Result{Status: appkit.Crash, Detail: err.Error()}
		}
	}
	return appkit.Result{Status: appkit.OK}
}
