package mysql

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cbreak/internal/core"
)

func netExec(t *testing.T, addr, stmt string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", stmt); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(resp, "\n")
}

func TestNetServerStatements(t *testing.T) {
	e := core.NewEngine()
	ns, err := StartNet(Config{Engine: e, Bug: Deadlock, Breakpoint: false, Timeout: time.Millisecond},
		NetConfig{Tables: []string{"t1"}})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer ns.Close()

	if resp := netExec(t, ns.Addr(), "INSERT INTO t1 VALUES ('a')"); resp != "ok 1" {
		t.Fatalf("INSERT = %q", resp)
	}
	if resp := netExec(t, ns.Addr(), "SELECT COUNT(*) FROM t1"); resp != "ok 1" {
		t.Fatalf("SELECT = %q", resp)
	}
	if resp := netExec(t, ns.Addr(), "FLUSH LOGS"); !strings.HasPrefix(resp, "ok ") {
		t.Fatalf("FLUSH = %q", resp)
	}
	if resp := netExec(t, ns.Addr(), "GARBAGE"); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("garbage = %q, want err", resp)
	}
	if ns.Served() == 0 {
		t.Fatalf("served counter never advanced")
	}
}

func TestNetServerRequiresEngine(t *testing.T) {
	if _, err := StartNet(Config{}, NetConfig{}); err == nil {
		t.Fatalf("StartNet accepted a nil engine")
	}
}
