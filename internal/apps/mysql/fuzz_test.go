package mysql

import (
	"strings"
	"testing"
)

// FuzzExec hardens the statement executor: arbitrary statement text must
// produce an error or a result, never a panic (crashes in this package
// are reserved for the seeded storage-free bug, which fuzzing never
// arms).
func FuzzExec(f *testing.F) {
	seeds := []string{
		"INSERT INTO t1 VALUES ('a')",
		"SELECT COUNT(*) FROM t1",
		"SELECT COUNT(*) FROM t1 WHERE value = 'a'",
		"UPDATE t1 SET value = 'b' WHERE value = 'a'",
		"DELETE FROM t1 WHERE value = 'b'",
		"DROP TABLE t1",
		"FLUSH LOGS",
		"",
		";;;",
		"INSERT INTO",
		"SELECT * FROM t1",
		"UPDATE t1 SET",
		"INSERT INTO t1 VALUES ('unterminated",
		"insert into t1 values (\"mixed quotes')",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stmt string) {
		s := quietServer()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Exec(%q) panicked: %v", stmt, p)
			}
		}()
		s.Exec(1, stmt)
		// The engine must stay usable afterwards.
		if _, err := s.Exec(1, "INSERT INTO t1 VALUES ('post')"); err != nil &&
			!strings.Contains(err.Error(), "does not exist") {
			t.Fatalf("engine wedged after %q: %v", stmt, err)
		}
	})
}
