package montecarlo

import (
	"math"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestSimulatePathDeterministic(t *testing.T) {
	a := SimulatePath(7, 100)
	b := SimulatePath(7, 100)
	if a != b {
		t.Fatalf("same task differs: %v vs %v", a, b)
	}
	c := SimulatePath(8, 100)
	if a.Final == c.Final {
		t.Fatal("different tasks produced identical paths")
	}
	if a.Final <= 0 {
		t.Fatalf("non-positive price: %v", a.Final)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := newRNG(42)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		g := r.gaussian()
		sum += g
		sum2 += g * g
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("gaussian variance = %v", variance)
	}
}

func TestPriceMeanPlausible(t *testing.T) {
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += SimulatePath(i, 50).Final
	}
	mean := sum / n
	// E[S_T] = S0 * e^mu ≈ 105.1
	if mean < 95 || mean > 115 {
		t.Fatalf("mean price = %.2f, want ~105", mean)
	}
}

func TestCleanRunOK(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	r := Run(Config{Engine: e, Tasks: 50, Steps: 20})
	if r.Status == appkit.TestFail && r.Elapsed > 0 {
		// Racy counter can rarely lose an update naturally; tolerate
		// but log.
		t.Logf("natural race manifested: %s", r)
	}
}

func TestRace1Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true, Timeout: 200 * time.Millisecond,
			Tasks: 100, Steps: 20})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestBoundRespected(t *testing.T) {
	e := core.NewEngine()
	Run(Config{Engine: e, Breakpoint: true, Timeout: 50 * time.Millisecond,
		Tasks: 100, Steps: 20, Bound: 10})
	if hits := e.Stats(BPRace1).Hits(); hits > 10 {
		t.Fatalf("bound=10 exceeded: %d", hits)
	}
}
