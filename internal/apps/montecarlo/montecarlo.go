// Package montecarlo models the Java Grande Forum "montecarlo"
// benchmark: Monte Carlo pricing of an asset by simulating geometric
// Brownian motion paths across a worker pool. The results vector is
// correctly locked; the seeded bug (Table 1 row "montecarlo / race1",
// bound=10) is the tasks-completed counter, updated read-modify-write
// without synchronization — exactly the kind of bookkeeping race the
// original harness exhibited. A lost update makes the final count
// disagree with the number of tasks.
package montecarlo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// BPRace1 identifies the tasks-done counter race in engine statistics.
const BPRace1 = "montecarlo.race1"

// PathResult is the outcome of simulating one price path.
type PathResult struct {
	Task  int
	Final float64
}

// rng is a small deterministic PRNG (xorshift*) with a Box-Muller
// gaussian, so tasks are reproducible across runs.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 1
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) gaussian() float64 {
	u1 := r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	u2 := r.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// SimulatePath runs one geometric-Brownian-motion path of the given
// number of steps and returns the final price (S0=100, mu=0.05,
// sigma=0.2, dt=1/steps).
func SimulatePath(task, steps int) PathResult {
	r := newRNG(uint64(task)*2654435761 + 1)
	s := 100.0
	dt := 1.0 / float64(steps)
	const mu, sigma = 0.05, 0.2
	for i := 0; i < steps; i++ {
		s *= math.Exp((mu-0.5*sigma*sigma)*dt + sigma*math.Sqrt(dt)*r.gaussian())
	}
	return PathResult{Task: task, Final: s}
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// Bound limits breakpoint hits (paper: 10).
	Bound int
	// Tasks is the number of paths (default 200).
	Tasks int
	// Steps per path (default 100).
	Steps int
	// Workers in the pool (default 2).
	Workers int
}

func (c *Config) tasks() int {
	if c.Tasks <= 0 {
		return 200
	}
	return c.Tasks
}

func (c *Config) steps() int {
	if c.Steps <= 0 {
		return 100
	}
	return c.Steps
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

func (c *Config) bound() int {
	if c.Bound > 0 {
		return c.Bound
	}
	return 10
}

// Run prices the asset across the worker pool and validates the
// bookkeeping: a tasks-done counter that disagrees with the number of
// results is the manifested race.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	res := appkit.RunWithDeadline(120*time.Second, func() appkit.Result {
		nTasks := cfg.tasks()
		tasksCh := make(chan int, nTasks)
		for i := 0; i < nTasks; i++ {
			tasksCh <- i
		}
		close(tasksCh)

		resMu := locks.NewMutex("montecarlo.results")
		var results []PathResult
		done := memory.NewCell(memory.NewSpace(), "montecarlo.tasksDone", 0)

		var wg sync.WaitGroup
		for w := 0; w < cfg.workers(); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Resolve the handle once per worker; the trigger site
				// below runs per task and skips the registry lookup.
				var bpRace *core.Breakpoint
				if cfg.Breakpoint {
					bpRace = cfg.Engine.Breakpoint(BPRace1)
				}
				for task := range tasksCh {
					pr := SimulatePath(task, cfg.steps())
					resMu.With(func() { results = append(results, pr) })
					// Racy read-modify-write bookkeeping (race1).
					v := done.Load("montecarlo.go:done.read")
					if cfg.Breakpoint {
						bpRace.Trigger(core.NewConflictTrigger(BPRace1, done), w == 0,
							core.Options{Timeout: cfg.Timeout, Bound: cfg.bound()})
					}
					done.Store("montecarlo.go:done.write", v+1)
				}
			}(w)
		}
		wg.Wait()

		if len(results) != nTasks {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("results vector short: %d/%d", len(results), nTasks)}
		}
		if got := done.Load("check"); got != int64(nTasks) {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("tasksDone counter lost updates: %d/%d", got, nTasks)}
		}
		// Sanity: mean final price should be near S0*exp(mu) ~ 105.
		var sum float64
		for _, r := range results {
			sum += r.Final
		}
		mean := sum / float64(len(results))
		if mean < 80 || mean > 140 {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("price mean implausible: %.2f", mean)}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPRace1).Hits() > 0
	return res
}
