package cache4j

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/guard/faultinject"
)

// Chaos tests: run the cache4j reproduction with faults injected into
// its breakpoints and assert the hardened engine keeps the application
// alive and consistent — no stall, no escaped panic, no leaked waiter.
// The plans are ordinal-keyed, so each scenario injects the same faults
// at the same call sites on every run.

func chaosEngine(t *testing.T, plan *faultinject.Plan) *core.Engine {
	t.Helper()
	e := core.NewEngine()
	e.DefaultTimeout = 20 * time.Millisecond
	e.SetInjector(plan)
	e.StartWatchdog(10*time.Millisecond, 20*time.Millisecond)
	t.Cleanup(e.StopWatchdog)
	return e
}

// assertEngineConsistent checks the post-run invariants every chaos
// scenario must preserve.
func assertEngineConsistent(t *testing.T, e *core.Engine, bp string, res appkit.Result) {
	t.Helper()
	if res.Status == appkit.Stall || res.Status == appkit.Exception {
		t.Fatalf("application did not survive the faults: %v", res)
	}
	if n := e.PostponedCount(bp) + e.MultiPostponedCount(bp); n != 0 {
		t.Fatalf("%d waiters leaked on %s", n, bp)
	}
}

func TestChaosPanickingPredicates(t *testing.T) {
	plan := faultinject.NewPlan().
		PanicLocal(BPRace1, faultinject.SecondSide, 1, 3).
		PanicExtra(BPRace1, faultinject.SecondSide, 5).
		PanicGlobal(BPRace1, faultinject.FirstSide, 1)
	e := chaosEngine(t, plan)

	res := Run(Config{Engine: e, Bug: Race1, Breakpoint: true, Ops: 200})
	assertEngineConsistent(t, e, BPRace1, res)

	if len(plan.Applied()) == 0 {
		t.Fatal("no faults fired; the scenario must exercise the injected sites")
	}
	if got := e.Stats(BPRace1).Panics(); got == 0 {
		t.Fatal("no absorbed panics counted despite injected predicate panics")
	}
	if got := e.IncidentCount(guard.KindPanic); got == 0 {
		t.Fatal("no panic incidents recorded")
	}
}

func TestChaosStalledActionAndNoShow(t *testing.T) {
	plan := faultinject.NewPlan().
		StallAction(BPRace1, faultinject.FirstSide, 60*time.Millisecond, 1).
		Drop(BPRace1, faultinject.SecondSide, 2, 4)
	e := chaosEngine(t, plan)

	res := Run(Config{Engine: e, Bug: Race1, Breakpoint: true, Ops: 200})
	assertEngineConsistent(t, e, BPRace1, res)
	if len(plan.Applied()) == 0 {
		t.Fatal("no faults fired")
	}
}

func TestChaosWedgedWaiterFreedByWatchdog(t *testing.T) {
	// Wedge the evictor side of race2: its postponement timer never
	// fires, so only the partner or the watchdog can free it.
	plan := faultinject.NewPlan().WedgeWait(BPRace2, faultinject.SecondSide)
	e := chaosEngine(t, plan)

	res := Run(Config{Engine: e, Bug: Race2, Breakpoint: true, Ops: 100})
	assertEngineConsistent(t, e, BPRace2, res)
}

func TestChaosDeterministicInjection(t *testing.T) {
	build := func() *faultinject.Plan {
		return faultinject.NewPlan().
			PanicLocal(BPRace3, faultinject.FirstSide, 2).
			Drop(BPRace3, faultinject.SecondSide, 1)
	}
	// The faults fire on fixed arrival ordinals; the remover side of
	// race3 is sequential, so the fired set is identical across runs.
	var fired [2][]faultinject.Applied
	for i := range fired {
		plan := build()
		e := chaosEngine(t, plan)
		res := Run(Config{Engine: e, Bug: Race3, Breakpoint: true, Ops: 100})
		assertEngineConsistent(t, e, BPRace3, res)
		for _, a := range plan.Applied() {
			if a.First {
				fired[i] = append(fired[i], a)
			}
		}
	}
	if len(fired[0]) == 0 {
		t.Fatal("no first-side faults fired")
	}
	if len(fired[0]) != len(fired[1]) || fired[0][0] != fired[1][0] {
		t.Fatalf("injection not deterministic across runs:\n%+v\n%+v", fired[0], fired[1])
	}
}

func TestChaosBreakerDisablesDeadBreakpoint(t *testing.T) {
	// Drop every reader-side arrival of race1: the reset side becomes a
	// 100%-timeout breakpoint. With breakers on, it trips, auto-disables
	// (sheds), and later re-arms via a half-open probe.
	plan := faultinject.NewPlan().Drop(BPRace1, faultinject.SecondSide)
	e := chaosEngine(t, plan)
	e.SetBreakerConfig(&guard.BreakerConfig{
		MinSamples: 2, TimeoutRate: 0.9, Backoff: 150 * time.Millisecond,
	})

	// Trip: repeated reset-side arrivals with no partner.
	cfg := &Config{Engine: e, Bug: Race1, Breakpoint: true}
	cache := NewCache(1<<30, cfg)
	cache.Put("k", 1)
	for i := 0; i < 3; i++ {
		cache.ResetStats()
	}
	if snap, ok := e.BreakerSnapshot(BPRace1); !ok || snap.State != guard.BreakerOpen {
		t.Fatalf("breaker = %v/%v after 100%% timeouts, want open", snap.State, ok)
	}
	if got := e.Stats(BPRace1).Trips(); got == 0 {
		t.Fatal("no trips counted")
	}
	// Tripped: arrivals shed at near-zero cost.
	start := time.Now()
	cache.ResetStats()
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("tripped breakpoint paused %v; must shed instantly", d)
	}
	if got := e.Stats(BPRace1).Sheds(); got == 0 {
		t.Fatal("no sheds counted")
	}

	// Re-arm: stop dropping (fresh no-op injector), wait out the backoff,
	// and run a real rendezvous as the half-open probe.
	e.SetInjector(faultinject.NewPlan())
	time.Sleep(200 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cache.Get("k") // reader side arrives and matches the reset probe
	}()
	cache.ResetStats()
	<-done
	if snap, _ := e.BreakerSnapshot(BPRace1); snap.State != guard.BreakerClosed {
		t.Fatalf("breaker = %v after probe hit, want closed (re-armed)", snap.State)
	}
	if got := e.Stats(BPRace1).Rearms(); got == 0 {
		t.Fatal("no re-arms counted")
	}
}
