// Package cache4j models cache4j, the thread-safe Java object cache of
// the paper's evaluation (Table 1 rows "cache4j": race1-3 and
// atomicity1). The cache itself — a capacity-bounded LRU map — is
// correctly synchronized; the seeded bugs are in its statistics and
// object-initialization paths, mirroring where the real races lived:
//
//   - race1: the hit counter is updated read-modify-write without
//     synchronization and races with the statistics reset, resurrecting
//     a stale count.
//   - race2: the evictor reads an entry's last-access time, decides to
//     evict, and races with a getter refreshing that time — evicting a
//     hot entry.
//   - race3: the size counter is maintained by racy increments and
//     decrements and drifts from the true map size.
//   - atomicity1: CacheObject construction publishes the object before
//     its expiry field is initialized; a concurrent getter observes the
//     half-built object and reports a spurious miss. The constructor
//     site is executed thousands of times during warm-up with no
//     concurrent reader, which is why the paper refines the breakpoint
//     with ignoreFirst=7200 (section 6.3) — reproduced here with the
//     IgnoreFirst option.
//
// Shared racy scalars go through memory.Cell (atomic inside, racy
// semantics preserved) as described in DESIGN.md.
package cache4j

import (
	"fmt"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPRace1     = "cache4j.race1"
	BPRace2     = "cache4j.race2"
	BPRace3     = "cache4j.race3"
	BPAtomicity = "cache4j.atomicity1"
)

// CacheObject is a cached entry. Expiry is set in a second
// initialization step after the object is published (the atomicity1
// bug); LastAccess is refreshed by getters and read by the evictor
// (race2).
type CacheObject struct {
	Key        string
	Value      int64
	Expiry     *memory.Cell // 0 until the second init step completes
	LastAccess *memory.Cell
}

// Cache is a capacity-bounded cache with LRU-ish eviction and (buggy)
// statistics counters.
type Cache struct {
	mu       *locks.Mutex
	entries  map[string]*CacheObject
	capacity int
	space    *memory.Space

	hits  *memory.Cell // racy (race1)
	size  *memory.Cell // racy (race3)
	clock *memory.Cell // logical time for LRU

	// evictedHot is set when the evictor removes an entry whose
	// LastAccess was refreshed after the eviction decision (race2
	// manifestation).
	evictedHot *memory.Cell

	cfg *Config
}

// NewCache returns a cache with the given capacity.
func NewCache(capacity int, cfg *Config) *Cache {
	sp := memory.NewSpace()
	return &Cache{
		mu:         locks.NewMutex("cache4j"),
		entries:    make(map[string]*CacheObject),
		capacity:   capacity,
		space:      sp,
		hits:       memory.NewCell(sp, "cache.hits", 0),
		size:       memory.NewCell(sp, "cache.size", 0),
		clock:      memory.NewCell(sp, "cache.clock", 0),
		evictedHot: memory.NewCell(sp, "cache.evictedHot", 0),
		cfg:        cfg,
	}
}

// Space exposes the cache's memory space so detectors can attach.
func (c *Cache) Space() *memory.Space { return c.space }

func (c *Cache) now() int64 { return c.clock.AtomicAdd("cache.go:now", 1) }

// Put inserts a new object. Construction is two-step: the object is
// published into the map with a zero Expiry and the expiry is stored
// afterwards — the atomicity1 window. The size counter is updated
// outside the map lock (the race3 bug).
func (c *Cache) Put(key string, value int64) *CacheObject {
	obj := &CacheObject{
		Key:        key,
		Value:      value,
		Expiry:     memory.NewCell(c.space, "obj.expiry."+key, 0),
		LastAccess: memory.NewCell(c.space, "obj.lastAccess."+key, c.now()),
	}
	var newKey bool
	c.mu.WithAt("cache.go:put", func() {
		_, exists := c.entries[key]
		newKey = !exists
		c.entries[key] = obj
	})
	if newKey {
		// race3: racy size increment, unsynchronized with the map.
		c.sizeAdd(1, "cache.go:put.size++")
	}
	// atomicity1 window: object visible, expiry not yet set. The
	// trigger carries the object, so only a reader of this same object
	// matches (the paper's t1.sb == t2.this predicate).
	if c.cfg.bug(Atomicity1) {
		c.cfg.handle().Trigger(core.NewAtomicityTrigger(BPAtomicity, obj), false,
			core.Options{Timeout: c.cfg.Timeout, IgnoreFirst: c.cfg.IgnoreFirst, Bound: 1})
	}
	obj.Expiry.Store("cache.go:put.expiry", c.now()+1_000_000)
	c.maybeEvict()
	return obj
}

// Get returns the object for key. A published-but-uninitialized object
// (zero expiry) is treated as expired — the spurious miss of atomicity1.
func (c *Cache) Get(key string) (*CacheObject, bool) {
	var obj *CacheObject
	c.mu.WithAt("cache.go:get", func() { obj = c.entries[key] })
	if obj == nil {
		return nil, false
	}
	readExpiry := func() bool {
		return obj.Expiry.Load("cache.go:get.expiry") > 0
	}
	ok := true
	if c.cfg.bug(Atomicity1) {
		// ExtraLocal keeps the reader from pausing on fully-initialized
		// objects: only a zero expiry (mid-construction) is a
		// breakpoint state. This is a precision refinement in the
		// sense of section 6.3 — it shrinks M without changing m.
		c.cfg.handle().TriggerAnd(core.NewAtomicityTrigger(BPAtomicity, obj), true,
			core.Options{
				Timeout:    c.cfg.Timeout,
				Bound:      1,
				ExtraLocal: func() bool { return obj.Expiry.Load("cache.go:get.peek") == 0 },
			}, func() { ok = readExpiry() })
	} else {
		ok = readExpiry()
	}
	if !ok {
		return nil, false // spurious miss: object looked expired mid-init
	}
	//cbvet:ignore conflicts intentional cache4j race: the lock-free touch vs the locked reaper IS the reproduced bug
	obj.LastAccess.Store("cache.go:get.touch", c.now())
	c.recordHit()
	return obj, true
}

// recordHit is the race1 site: a read-modify-write hit-count update with
// a breakpoint window between the read and the write. The reader side's
// local predicate is refined (section 6.3) to pause only while a stats
// reset is actually pending, so request traffic outside that window
// costs nothing.
func (c *Cache) recordHit() {
	v := c.hits.Load("cache.go:get.hits.read")
	if c.cfg.bug(Race1) {
		opts := core.Options{Timeout: c.cfg.Timeout, Bound: 1}
		if p := c.cfg.race1Pending; p != nil {
			opts.ExtraLocal = func() bool { return p.Load("cache.go:pending") != 0 }
		}
		c.cfg.handle().Trigger(core.NewConflictTrigger(BPRace1, c.hits), false, opts)
	}
	c.hits.Store("cache.go:get.hits.write", v+1)
}

// ResetStats zeroes the hit counter (the other side of race1).
func (c *Cache) ResetStats() {
	reset := func() { c.hits.Store("cache.go:resetStats", 0) }
	if c.cfg.bug(Race1) {
		c.cfg.handle().TriggerAnd(core.NewConflictTrigger(BPRace1, c.hits), true,
			core.Options{Timeout: c.cfg.Timeout, Bound: 1}, reset)
	} else {
		reset()
	}
}

// Hits returns the current hit count.
func (c *Cache) Hits() int64 { return c.hits.Load("cache.go:hits") }

// Remove deletes key (race3: racy size decrement outside the map lock).
func (c *Cache) Remove(key string) {
	var had bool
	c.mu.WithAt("cache.go:remove", func() {
		if _, ok := c.entries[key]; ok {
			delete(c.entries, key)
			had = true
		}
	})
	if had {
		c.sizeAdd(-1, "cache.go:remove.size--")
	}
}

// sizeAdd is the race3 site: a read-modify-write counter update. The
// increment (put) side skips its warm-up arrivals via IgnoreFirst.
func (c *Cache) sizeAdd(delta int64, site string) {
	v := c.size.Load(site + ".read")
	if c.cfg.bug(Race3) {
		first := delta < 0 // removals are the first-action side
		opts := core.Options{Timeout: c.cfg.Timeout, Bound: 1}
		if !first {
			opts.IgnoreFirst = c.cfg.IgnoreFirst
		}
		c.cfg.handle().Trigger(core.NewConflictTrigger(BPRace3, c.size), first, opts)
	}
	c.size.Store(site+".write", v+delta)
}

// Size returns the (possibly drifted) size counter.
func (c *Cache) Size() int64 { return c.size.Load("cache.go:size") }

// TrueSize returns the actual map size.
func (c *Cache) TrueSize() int {
	var n int
	c.mu.With(func() { n = len(c.entries) })
	return n
}

// maybeEvict removes the least recently used entry when over capacity.
// The decision (read of LastAccess) and the removal race with getters
// refreshing LastAccess — race2.
func (c *Cache) maybeEvict() {
	var victim *CacheObject
	c.mu.WithAt("cache.go:evict.scan", func() {
		if len(c.entries) <= c.capacity {
			return
		}
		var oldest int64 = 1 << 62
		for _, e := range c.entries {
			if t := e.LastAccess.Load("cache.go:evict.read"); t < oldest {
				oldest = t
				victim = e
			}
		}
	})
	if victim == nil {
		return
	}
	decidedAt := victim.LastAccess.Load("cache.go:evict.decide")
	if c.cfg.bug(Race2) {
		// Second-action side: the getter's refresh is ordered into the
		// window between the eviction decision and the removal. The
		// local predicate is refined (section 6.3) to the entry the
		// bug report names, so evictions of other entries don't pause.
		opts := core.Options{Timeout: c.cfg.Timeout, Bound: 1}
		if hot := c.cfg.race2Hot; hot != nil {
			opts.ExtraLocal = func() bool { return victim == hot }
		}
		c.cfg.handle().Trigger(core.NewConflictTrigger(BPRace2, victim.LastAccess), false, opts)
	}
	var removed, hot bool
	c.mu.WithAt("cache.go:evict.remove", func() {
		if _, ok := c.entries[victim.Key]; ok {
			delete(c.entries, victim.Key)
			removed = true
			hot = victim.LastAccess.Load("cache.go:evict.recheck") > decidedAt
		}
	})
	if removed {
		c.sizeAdd(-1, "cache.go:evict.size--")
		if hot {
			c.evictedHot.Store("cache.go:evict.hot", 1)
		}
	}
}

// touchForRace2 is the getter side of race2: refresh LastAccess between
// the evictor's decision and removal (the first-action side of the
// breakpoint, so the refresh lands inside the evictor's window).
func (c *Cache) touchForRace2(obj *CacheObject) {
	touch := func() { obj.LastAccess.Store("cache.go:get.touch2", c.now()) }
	if c.cfg.bug(Race2) {
		c.cfg.handle().TriggerAnd(core.NewConflictTrigger(BPRace2, obj.LastAccess), true,
			core.Options{Timeout: c.cfg.Timeout, Bound: 1}, touch)
	} else {
		touch()
	}
}

// Bug selects the seeded bug a run exercises.
type Bug int

// The cache4j bugs of Table 1.
const (
	Race1 Bug = iota
	Race2
	Race3
	Atomicity1
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	// Timeout is the breakpoint pause (zero = engine default).
	Timeout time.Duration
	// IgnoreFirst skips the first n constructor-side arrivals
	// (section 6.3; the paper uses 7200).
	IgnoreFirst int
	// WarmupObjects is how many objects the harness creates before
	// readers start (default 100); each warm-up Put passes the
	// atomicity1 trigger site with no partner.
	WarmupObjects int
	// Ops is the number of worker operations (default 400).
	Ops int

	// race2Hot is the entry the race2 breakpoint is refined to (set by
	// Run).
	race2Hot *CacheObject
	// race1Pending gates the reader side of race1 to the reset window
	// (set by Run).
	race1Pending *memory.Cell
	// bp is the run's breakpoint handle (each run exercises one bug, so
	// one handle covers every site), resolved once by Run.
	bp *core.Breakpoint
}

// handle returns the run's breakpoint handle. Configs built directly
// (tests driving Cache methods without Run) fall back to per-call
// resolution; the fallback deliberately does not cache, so concurrent
// callers never race on the field.
func (c *Config) handle() *core.Breakpoint {
	if bp := c.bp; bp != nil {
		return bp
	}
	return c.Engine.Breakpoint(bpName(c.Bug))
}

func (c *Config) bug(b Bug) bool {
	return c != nil && c.Breakpoint && c.Bug == b && c.Engine != nil
}

func (c *Config) warmup() int {
	if c.WarmupObjects <= 0 {
		return 100
	}
	return c.WarmupObjects
}

func (c *Config) ops() int {
	if c.Ops <= 0 {
		return 400
	}
	return c.Ops
}

func bpName(b Bug) string {
	switch b {
	case Race1:
		return BPRace1
	case Race2:
		return BPRace2
	case Race3:
		return BPRace3
	default:
		return BPAtomicity
	}
}

// Run executes the test harness once: warm-up Puts, then concurrent
// workers exercising the path of the selected bug. The result reports
// whether the bug's observable effect manifested.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	cfg.bp = cfg.Engine.Breakpoint(bpName(cfg.Bug))
	cache := NewCache(1<<30, &cfg) // effectively unbounded unless race2
	warm := cfg.warmup()
	if cfg.Bug == Race3 && cfg.Breakpoint && cfg.IgnoreFirst == 0 {
		// Skip the warm-up puts on the increment side before they run.
		cfg.IgnoreFirst = warm
	}
	if cfg.Bug == Race2 {
		// Small capacity so the concurrent phase evicts; warm-up stays
		// within capacity to avoid partnerless evictor pauses.
		cache.capacity = 8
		warm = 8
	}

	res := appkit.RunWithDeadline(60*time.Second, func() appkit.Result {
		// Warm-up: fixed number of objects, no concurrency (the phase
		// that motivates ignoreFirst).
		for i := 0; i < warm; i++ {
			cache.Put(fmt.Sprintf("warm-%d", i), int64(i))
		}
		switch cfg.Bug {
		case Race1:
			return runRace1(cache, &cfg)
		case Race2:
			return runRace2(cache, &cfg)
		case Race3:
			return runRace3(cache, &cfg)
		default:
			return runAtomicity(cache, &cfg)
		}
	})
	res.BPHit = cfg.Engine.Stats(bpName(cfg.Bug)).Hits() > 0
	return res
}

func runRace1(cache *Cache, cfg *Config) appkit.Result {
	cfg.race1Pending = memory.NewCell(nil, "cache4j.resetPending", 0)
	lost := memory.NewCell(nil, "lostReset", 0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // reader: a burst of traffic, then a steady cadence
		defer wg.Done()
		for i := 0; i < cfg.ops()/2; i++ {
			cache.Get("warm-1") // accumulates a realistic hit count fast
		}
		for i := 0; i < cfg.ops()/2; i++ {
			cache.Get("warm-1")
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // stats reset mid-run
		defer wg.Done()
		time.Sleep(time.Millisecond)
		cfg.race1Pending.Store("cache.go:reset.arm", 1)
		cache.ResetStats() // returns after the reset ran (post-match on a hit)
		cfg.race1Pending.Store("cache.go:reset.disarm", 0)
		// A successful reset leaves hits near zero (only the paced
		// requests of the next moment); a lost reset resurrects the
		// large pre-reset count via the reader's stale store.
		time.Sleep(time.Millisecond)
		if cache.Hits() > int64(cfg.ops())/4 {
			lost.Store("check", 1)
		}
	}()
	wg.Wait()
	if lost.Load("check") > 0 {
		return appkit.Result{Status: appkit.TestFail, Detail: "hit counter resurrected a stale value"}
	}
	return appkit.Result{Status: appkit.OK}
}

func runRace2(cache *Cache, cfg *Config) appkit.Result {
	obj, ok := cache.Get("warm-1")
	if !ok {
		return appkit.Result{Status: appkit.TestFail, Detail: "warm object missing"}
	}
	cfg.race2Hot = obj
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // getter refreshing the hot entry on a slow cadence
		defer wg.Done()
		for i := 0; i < cfg.ops()/4; i++ {
			cache.touchForRace2(obj)
			time.Sleep(time.Millisecond)
			if cache.evictedHot.Load("cache.go:getter.check") > 0 {
				return
			}
		}
	}()
	go func() { // writer pushing the cache over capacity (evictions)
		defer wg.Done()
		for i := 0; i < cfg.ops(); i++ {
			cache.Put(fmt.Sprintf("new-%d", i), int64(i))
			if cache.evictedHot.Load("cache.go:writer.check") > 0 {
				return
			}
		}
	}()
	wg.Wait()
	if cache.evictedHot.Load("cache.go:check") > 0 {
		return appkit.Result{Status: appkit.TestFail, Detail: "hot entry evicted after refresh"}
	}
	return appkit.Result{Status: appkit.OK}
}

func runRace3(cache *Cache, cfg *Config) appkit.Result {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // adder of fresh keys
		defer wg.Done()
		for i := 0; i < cfg.ops(); i++ {
			cache.Put(fmt.Sprintf("k-%d", i), int64(i))
		}
	}()
	go func() { // remover of warm keys (guaranteed-present removals)
		defer wg.Done()
		for i := 0; i < cfg.warmup(); i++ {
			cache.Remove(fmt.Sprintf("warm-%d", i))
		}
	}()
	wg.Wait()
	if cache.Size() != int64(cache.TrueSize()) {
		return appkit.Result{
			Status: appkit.TestFail,
			Detail: fmt.Sprintf("size counter drift: counter=%d actual=%d", cache.Size(), cache.TrueSize()),
		}
	}
	return appkit.Result{Status: appkit.OK}
}

func runAtomicity(cache *Cache, cfg *Config) appkit.Result {
	miss := memory.NewCell(nil, "spuriousMiss", 0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer creating fresh objects
		defer wg.Done()
		for i := 0; i < cfg.ops()/4; i++ {
			cache.Put(fmt.Sprintf("fresh-%d", i), int64(i))
		}
	}()
	go func() { // reader chasing the writer on a polling cadence
		defer wg.Done()
		keys := cfg.ops() / 4
		for i := 0; i < cfg.ops()*4; i++ {
			key := fmt.Sprintf("fresh-%d", i%keys)
			var present bool
			cache.mu.With(func() { _, present = cache.entries[key] })
			if !present {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			if _, ok := cache.Get(key); !ok {
				miss.Store("run", 1)
				return
			}
		}
	}()
	wg.Wait()
	if miss.Load("run") > 0 {
		return appkit.Result{Status: appkit.TestFail, Detail: "spurious miss on half-initialized object"}
	}
	return appkit.Result{Status: appkit.OK}
}
