package cache4j

import (
	"fmt"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(100, quietCfg())
	c.Put("a", 1)
	c.Put("b", 2)
	obj, ok := c.Get("a")
	if !ok || obj.Value != 1 {
		t.Fatalf("Get(a) = %+v %v", obj, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) returned ok")
	}
	if c.TrueSize() != 2 || c.Size() != 2 {
		t.Fatalf("sizes: true=%d counter=%d", c.TrueSize(), c.Size())
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still present")
	}
	if c.Size() != 1 {
		t.Fatalf("counter after remove = %d", c.Size())
	}
}

func TestHitCounting(t *testing.T) {
	c := NewCache(100, quietCfg())
	c.Put("k", 1)
	for i := 0; i < 5; i++ {
		c.Get("k")
	}
	if c.Hits() != 5 {
		t.Fatalf("Hits = %d, want 5", c.Hits())
	}
	c.ResetStats()
	if c.Hits() != 0 {
		t.Fatalf("Hits after reset = %d", c.Hits())
	}
}

func TestEvictionKeepsCapacity(t *testing.T) {
	c := NewCache(4, quietCfg())
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), int64(i))
	}
	if got := c.TrueSize(); got > 5 {
		t.Fatalf("TrueSize = %d, want <= capacity+1", got)
	}
}

func TestEvictionPrefersOldest(t *testing.T) {
	c := NewCache(2, quietCfg())
	c.Put("old", 1)
	c.Put("mid", 2)
	c.Get("old") // refresh old
	c.Put("new", 3)
	if _, ok := c.Get("mid"); ok {
		t.Fatal("LRU evicted the wrong entry (mid should be gone)")
	}
	if _, ok := c.Get("old"); !ok {
		t.Fatal("refreshed entry was evicted")
	}
}

func reproduce(t *testing.T, bug Bug, runs int) int {
	t.Helper()
	got := 0
	for i := 0; i < runs; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: bug, Breakpoint: true, Timeout: 200 * time.Millisecond})
		if r.Status == appkit.TestFail {
			if !r.BPHit {
				t.Fatalf("bug %v manifested without breakpoint hit: %s", bug, r)
			}
			got++
		} else if r.Status != appkit.OK {
			t.Fatalf("bug %v run %d: unexpected status %s", bug, i, r)
		}
	}
	return got
}

func TestRace1Reproduces(t *testing.T) {
	if got := reproduce(t, Race1, 5); got != 5 {
		t.Fatalf("race1 reproduced %d/5", got)
	}
}

func TestRace2Reproduces(t *testing.T) {
	if got := reproduce(t, Race2, 5); got != 5 {
		t.Fatalf("race2 reproduced %d/5", got)
	}
}

func TestRace3Reproduces(t *testing.T) {
	if got := reproduce(t, Race3, 5); got != 5 {
		t.Fatalf("race3 reproduced %d/5", got)
	}
}

func TestAtomicity1Reproduces(t *testing.T) {
	got := 0
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Atomicity1, Breakpoint: true,
			Timeout: 200 * time.Millisecond, IgnoreFirst: 100})
		if r.Status == appkit.TestFail && r.BPHit {
			got++
		}
	}
	if got != 5 {
		t.Fatalf("atomicity1 reproduced %d/5", got)
	}
}

func TestWithoutBreakpointsMostlyOK(t *testing.T) {
	for _, bug := range []Bug{Race1, Race2, Race3, Atomicity1} {
		bugs := 0
		for i := 0; i < 5; i++ {
			e := core.NewEngine()
			e.SetEnabled(false)
			if Run(Config{Engine: e, Bug: bug}).Status.Buggy() {
				bugs++
			}
		}
		if bugs > 2 {
			t.Errorf("bug %v manifested %d/5 without breakpoints", bug, bugs)
		}
	}
}

func TestIgnoreFirstReducesRuntime(t *testing.T) {
	// Section 6.3: without ignoreFirst, each warm-up Put pauses at the
	// constructor breakpoint; with ignoreFirst=warmup they are skipped.
	timeout := 20 * time.Millisecond
	e1 := core.NewEngine()
	start := time.Now()
	Run(Config{Engine: e1, Bug: Atomicity1, Breakpoint: true, Timeout: timeout,
		WarmupObjects: 30, Ops: 40})
	slow := time.Since(start)

	e2 := core.NewEngine()
	start = time.Now()
	Run(Config{Engine: e2, Bug: Atomicity1, Breakpoint: true, Timeout: timeout,
		WarmupObjects: 30, Ops: 40, IgnoreFirst: 30})
	fast := time.Since(start)

	if fast >= slow {
		t.Fatalf("ignoreFirst did not reduce runtime: with=%v without=%v", fast, slow)
	}
	// The saving should be roughly warmup * timeout.
	if slow-fast < 10*timeout {
		t.Fatalf("saving too small: with=%v without=%v", fast, slow)
	}
}
