package appboot

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/telemetry"
)

// This file is the self-healing supervision layer: each hosted app runs
// behind a Host that launches it (in-process or as a re-exec'd worker
// process, see proc.go), health-probes it over its own socket protocol,
// restarts it with jittered exponential backoff when it crashes or
// wedges, and — when it crash-loops — stops burning restarts and
// quarantines it so the rest of the daemon stays useful. The state
// machine is deliberately small:
//
//	        launch ok                 crash / probe wedge
//	  ────▶ StateUp ────────────────▶ StateRestarting ──▶ (backoff, relaunch)
//	           │                            │
//	           │ Stop()                     │ threshold crashes inside window
//	           ▼                            ▼
//	      StateStopped ◀──── Stop() ── StateQuarantined
//
// Quarantine is terminal until an operator intervenes (Revive): a
// supervisor that restarts a deterministic crasher forever is just a
// hot loop with extra telemetry.

// State is a Host's position in the supervision state machine.
type State int32

const (
	// StateUp: the instance is launched and passing probes.
	StateUp State = iota
	// StateRestarting: the last instance died; the host is in backoff
	// before the relaunch.
	StateRestarting
	// StateQuarantined: the instance crash-looped past the threshold;
	// the host has given up restarting it.
	StateQuarantined
	// StateStopped: the host was stopped deliberately.
	StateStopped
)

// String returns the state label used by /status and the scenarios.
func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateRestarting:
		return "restarting"
	case StateQuarantined:
		return "quarantined"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Instance is one launched incarnation of a hosted app — either an
// in-process socket server or a child worker process.
type Instance interface {
	// Addr is the instance's listen address.
	Addr() string
	// Pid is the OS process id (0 for in-process instances).
	Pid() int
	// Done is closed when the instance dies on its own. In-process
	// instances may return nil (they only die via probes or Stop).
	Done() <-chan struct{}
	// ExitErr reports why the instance died (valid after Done).
	ExitErr() error
	// Stop tears the instance down gracefully.
	Stop() error
	// Kill tears the instance down immediately (wedged instance).
	Kill() error
}

// Launcher launches one instance. prevAddr is empty on the first launch
// and the previous instance's address afterwards: launchers must pin the
// relaunch to it so an app keeps its address across restarts (peers hold
// the address, not the incarnation).
type Launcher func(prevAddr string) (Instance, error)

// HostEvent is one supervision transition, for logs and scenarios.
type HostEvent struct {
	App    string
	Kind   string // launched|crash|probe-failure|wedged|restarting|quarantined|stopped
	Detail string
}

// String formats the event as one log line.
func (ev HostEvent) String() string {
	if ev.Detail == "" {
		return fmt.Sprintf("supervisor: app %s %s", ev.App, ev.Kind)
	}
	return fmt.Sprintf("supervisor: app %s %s: %s", ev.App, ev.Kind, ev.Detail)
}

// HostConfig parameterizes one Host.
type HostConfig struct {
	// Name is the hosted app's name (telemetry label, /status key).
	Name string
	// Launch launches one incarnation.
	Launch Launcher
	// RestartBackoff is the base restart delay; each consecutive crash
	// doubles it up to MaxRestartBackoff, jittered down to avoid
	// synchronized relaunch herds. Defaults 100ms / 5s.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration
	// CrashLoopWindow and CrashLoopThreshold define a crash loop: at
	// least Threshold crashes inside one Window quarantines the app.
	// Defaults 30s / 5. An instance that stays up a full Window resets
	// the crash streak.
	CrashLoopWindow    time.Duration
	CrashLoopThreshold int
	// ProbeInterval is the health-probe period (default 500ms; negative
	// disables probing). ProbeTimeout bounds one probe round trip
	// (default 1s); ProbeFailures consecutive failures declare the
	// instance wedged and it is killed and restarted (default 3) — the
	// SIGSTOP case, where the process is alive but the socket is dead.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbeFailures int
	// Probe overrides the health probe (default: protocol line probe —
	// send one line, any answered line is healthy).
	Probe func(addr string, timeout time.Duration) error
	// Seed derives the backoff jitter stream (reproducible chaos runs).
	Seed int64
	// OnEvent, when set, observes every transition (called on the
	// supervision goroutine; keep it fast).
	OnEvent func(HostEvent)
}

func (cfg *HostConfig) fill() {
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 100 * time.Millisecond
	}
	if cfg.MaxRestartBackoff <= 0 {
		cfg.MaxRestartBackoff = 5 * time.Second
	}
	if cfg.CrashLoopWindow <= 0 {
		cfg.CrashLoopWindow = 30 * time.Second
	}
	if cfg.CrashLoopThreshold <= 0 {
		cfg.CrashLoopThreshold = 5
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.Probe == nil {
		cfg.Probe = LineProbe
	}
}

// LineProbe is the default health probe: dial, send one protocol line,
// and require any answered line inside the timeout. Both hosted apps
// answer unparseable lines with an error line without taking any app
// locks, so the probe is cheap, lock-free on the server, and still
// end-to-end: a SIGSTOPped process accepts the dial (kernel backlog)
// but never answers, which is exactly the wedge the probe must catch.
func LineProbe(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(conn, "PING supervisor\n"); err != nil {
		return err
	}
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		return fmt.Errorf("no probe answer: %w", err)
	}
	return nil
}

// HostStatus is one host's observable state (for /status and tests).
type HostStatus struct {
	Name          string `json:"name"`
	State         string `json:"state"`
	Addr          string `json:"addr"`
	Pid           int    `json:"pid,omitempty"`
	Restarts      int64  `json:"restarts"`
	Crashes       int64  `json:"crashes"`
	Quarantines   int64  `json:"quarantines"`
	ProbeFailures int64  `json:"probe_failures"`
	LastExit      string `json:"last_exit,omitempty"`
}

// Host supervises one app through crashes, wedges, and restarts.
type Host struct {
	cfg    HostConfig
	jitter *appkit.Stream

	//cbvet:ignore rawsync guards supervisor bookkeeping, not an application lock in any modeled deadlock
	mu       sync.Mutex
	inst     Instance
	addr     string // pinned across restarts
	lastExit string
	state    atomic.Int32

	restarts      atomic.Int64
	crashes       atomic.Int64
	quarantines   atomic.Int64
	probeFailures atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	revive   chan struct{}
	done     chan struct{}
}

// NewHost builds (but does not start) a host.
func NewHost(cfg HostConfig) *Host {
	cfg.fill()
	var nameOrd int64
	for _, b := range []byte(cfg.Name) {
		nameOrd = nameOrd*31 + int64(b)
	}
	return &Host{
		cfg:    cfg,
		jitter: appkit.NewStream(appkit.DeriveSeed(cfg.Seed, nameOrd)),
		stop:   make(chan struct{}),
		revive: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Start launches the first instance synchronously — a boot-time failure
// surfaces to the caller, not to the restart loop — then hands the
// lifecycle to the supervision goroutine.
func (h *Host) Start() error {
	inst, err := h.cfg.Launch("")
	if err != nil {
		close(h.done)
		return fmt.Errorf("app %s: first launch: %w", h.cfg.Name, err)
	}
	h.mu.Lock()
	h.inst, h.addr = inst, inst.Addr()
	h.mu.Unlock()
	h.state.Store(int32(StateUp))
	h.event("launched", fmt.Sprintf("addr=%s pid=%d", inst.Addr(), inst.Pid()))
	go h.run(inst)
	return nil
}

// Stop tears the host down and waits for the supervision goroutine.
func (h *Host) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// Revive lifts a quarantine: the host re-enters the restart path with a
// fresh crash streak. No-op outside StateQuarantined.
func (h *Host) Revive() {
	select {
	case h.revive <- struct{}{}:
	default:
	}
}

// State returns the host's current supervision state.
func (h *Host) State() State { return State(h.state.Load()) }

// Addr returns the host's pinned address (stable across restarts).
func (h *Host) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// Instance returns the current instance (nil while restarting).
func (h *Host) Instance() Instance {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inst
}

// Status snapshots the host for /status.
func (h *Host) Status() HostStatus {
	h.mu.Lock()
	inst, addr, lastExit := h.inst, h.addr, h.lastExit
	h.mu.Unlock()
	st := HostStatus{
		Name: h.cfg.Name, State: h.State().String(), Addr: addr,
		Restarts: h.restarts.Load(), Crashes: h.crashes.Load(),
		Quarantines: h.quarantines.Load(), ProbeFailures: h.probeFailures.Load(),
		LastExit: lastExit,
	}
	if inst != nil {
		st.Pid = inst.Pid()
	}
	return st
}

func (h *Host) event(kind, detail string) {
	if h.cfg.OnEvent != nil {
		h.cfg.OnEvent(HostEvent{App: h.cfg.Name, Kind: kind, Detail: detail})
	}
}

func (h *Host) setInstance(inst Instance) {
	h.mu.Lock()
	h.inst = inst
	if inst != nil {
		h.addr = inst.Addr()
	}
	h.mu.Unlock()
}

func (h *Host) setLastExit(reason string) {
	h.mu.Lock()
	h.lastExit = reason
	h.mu.Unlock()
}

// run is the supervision loop. inst is the already-launched first
// instance; every later incarnation is launched here.
func (h *Host) run(first Instance) {
	defer close(h.done)
	inst := first
	var streak int // consecutive crashes with short uptimes (backoff exponent)
	var crashTimes []time.Time
	for {
		if inst == nil {
			var err error
			inst, err = h.cfg.Launch(h.Addr())
			if err != nil {
				// A failed launch is a crash that never got to run.
				h.setLastExit(fmt.Sprintf("relaunch failed: %v", err))
				h.event("crash", fmt.Sprintf("relaunch failed: %v", err))
				if h.noteCrash(&streak, &crashTimes) {
					if h.quarantineWait() {
						streak, crashTimes = 0, nil
						continue
					}
					return
				}
				if !h.backoff(streak) {
					return
				}
				continue
			}
			h.setInstance(inst)
			h.state.Store(int32(StateUp))
			h.event("launched", fmt.Sprintf("addr=%s pid=%d", inst.Addr(), inst.Pid()))
		}

		up := time.Now()
		reason, stopping := h.watch(inst)
		if stopping {
			h.shutdown(inst)
			return
		}
		// The instance is dead (or was killed as wedged): account the
		// crash, decide quarantine vs backoff-and-relaunch.
		h.setInstance(nil)
		h.setLastExit(reason)
		h.crashes.Add(1)
		h.event("crash", reason)
		if time.Since(up) >= h.cfg.CrashLoopWindow {
			streak, crashTimes = 0, nil // it was healthy for a full window
		}
		inst = nil
		if h.noteCrash(&streak, &crashTimes) {
			if h.quarantineWait() {
				streak, crashTimes = 0, nil
				continue
			}
			return
		}
		h.state.Store(int32(StateRestarting))
		h.event("restarting", fmt.Sprintf("backoff exponent %d", streak))
		if !h.backoff(streak) {
			return
		}
		h.restarts.Add(1)
	}
}

// watch blocks until the instance dies (reason, false), is declared
// wedged and killed (reason, false), or the host is stopped ("", true).
func (h *Host) watch(inst Instance) (reason string, stopping bool) {
	var probeC <-chan time.Time
	if h.cfg.ProbeInterval > 0 {
		t := time.NewTicker(h.cfg.ProbeInterval)
		defer t.Stop()
		probeC = t.C
	}
	consecutive := 0
	for {
		select {
		case <-h.stop:
			return "", true
		case <-inst.Done():
			if err := inst.ExitErr(); err != nil {
				return err.Error(), false
			}
			return "exited", false
		case <-probeC:
			err := h.cfg.Probe(inst.Addr(), h.cfg.ProbeTimeout)
			if err == nil {
				consecutive = 0
				continue
			}
			consecutive++
			h.probeFailures.Add(1)
			h.event("probe-failure", fmt.Sprintf("%d/%d: %v", consecutive, h.cfg.ProbeFailures, err))
			if consecutive < h.cfg.ProbeFailures {
				continue
			}
			// Wedged: alive (or at least not reaped) but not answering.
			// Kill it and let the crash path relaunch.
			h.event("wedged", fmt.Sprintf("%d consecutive probe failures, killing pid %d", consecutive, inst.Pid()))
			_ = inst.Kill()
			if done := inst.Done(); done != nil {
				reap := time.NewTimer(5 * time.Second)
				select {
				case <-done:
				case <-reap.C:
				}
				reap.Stop()
			}
			return fmt.Sprintf("killed after %d consecutive probe failures", consecutive), false
		}
	}
}

// noteCrash records a crash into the streak/window bookkeeping and
// reports whether the host just crossed into quarantine.
func (h *Host) noteCrash(streak *int, crashTimes *[]time.Time) bool {
	*streak++
	now := time.Now()
	*crashTimes = append(*crashTimes, now)
	recent := (*crashTimes)[:0]
	for _, t := range *crashTimes {
		if now.Sub(t) < h.cfg.CrashLoopWindow {
			recent = append(recent, t)
		}
	}
	*crashTimes = recent
	if len(recent) < h.cfg.CrashLoopThreshold {
		return false
	}
	h.state.Store(int32(StateQuarantined))
	h.quarantines.Add(1)
	h.event("quarantined", fmt.Sprintf("%d crashes inside %s", len(recent), h.cfg.CrashLoopWindow))
	return true
}

// quarantineWait parks the host in quarantine until Stop (false) or
// Revive (true).
func (h *Host) quarantineWait() (revived bool) {
	select {
	case <-h.stop:
		h.state.Store(int32(StateStopped))
		h.event("stopped", "stopped while quarantined")
		return false
	case <-h.revive:
		h.event("revived", "quarantine lifted")
		return true
	}
}

// backoff sleeps the jittered exponential restart delay; false means
// the host was stopped mid-backoff.
func (h *Host) backoff(streak int) bool {
	d := h.cfg.RestartBackoff
	for i := 1; i < streak && d < h.cfg.MaxRestartBackoff; i++ {
		d *= 2
	}
	if d > h.cfg.MaxRestartBackoff {
		d = h.cfg.MaxRestartBackoff
	}
	// Jitter into [d/2, d): herds of workers relaunching in lockstep
	// would re-synchronize the very contention that killed them.
	half := d / 2
	d = half + h.jitter.Duration(half+1)
	select {
	case <-h.stop:
		h.state.Store(int32(StateStopped))
		h.event("stopped", "stopped during restart backoff")
		return false
	case <-time.After(d):
		return true
	}
}

// shutdown stops the live instance on host Stop.
func (h *Host) shutdown(inst Instance) {
	h.state.Store(int32(StateStopped))
	if err := inst.Stop(); err != nil {
		h.event("stopped", fmt.Sprintf("instance stop: %v", err))
		return
	}
	h.event("stopped", "")
}

// Supervisor is the collection of hosts a daemon runs, with the
// telemetry binding for the supervisor counter families.
type Supervisor struct {
	//cbvet:ignore rawsync guards supervisor bookkeeping, not an application lock in any modeled deadlock
	mu     sync.Mutex
	hosts  []*Host
	byName map[string]*Host
}

// NewSupervisor returns an empty supervisor.
func NewSupervisor() *Supervisor {
	return &Supervisor{byName: make(map[string]*Host)}
}

// Add builds a host from cfg and registers it (not yet started).
func (s *Supervisor) Add(cfg HostConfig) *Host {
	h := NewHost(cfg)
	s.mu.Lock()
	s.hosts = append(s.hosts, h)
	s.byName[cfg.Name] = h
	s.mu.Unlock()
	return h
}

// Host returns the named host (nil if unknown).
func (s *Supervisor) Host(name string) *Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byName[name]
}

// Hosts returns the hosts in registration order.
func (s *Supervisor) Hosts() []*Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Host(nil), s.hosts...)
}

// StartAll starts every host in registration order (so an app whose
// launcher depends on an earlier app's address — httpd's backend —
// boots after it). The first failure stops the ones already started
// and is returned.
func (s *Supervisor) StartAll() error {
	for i, h := range s.Hosts() {
		if err := h.Start(); err != nil {
			for _, prev := range s.Hosts()[:i] {
				prev.Stop()
			}
			return err
		}
	}
	return nil
}

// StopAll stops every host in reverse registration order (dependents
// before their backends).
func (s *Supervisor) StopAll() {
	hosts := s.Hosts()
	for i := len(hosts) - 1; i >= 0; i-- {
		hosts[i].Stop()
	}
}

// Statuses snapshots every host in registration order.
func (s *Supervisor) Statuses() []HostStatus {
	hosts := s.Hosts()
	out := make([]HostStatus, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, h.Status())
	}
	return out
}

// AllUp reports whether every host is in StateUp — the /readyz gate.
func (s *Supervisor) AllUp() bool {
	hosts := s.Hosts()
	if len(hosts) == 0 {
		return false
	}
	for _, h := range hosts {
		if h.State() != StateUp {
			return false
		}
	}
	return true
}

// RegisterMetrics registers the supervisor counter families on the
// registry: per-app state gauge, restarts, crashes, quarantines, and
// probe failures — all pulled from the hosts' atomics at scrape time.
func (s *Supervisor) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		for _, h := range s.Hosts() {
			name := h.cfg.Name
			emit(telemetry.Sample{Desc: telemetry.DescAppState, Labels: []string{name}, Value: float64(h.state.Load())})
			emit(telemetry.Sample{Desc: telemetry.DescAppRestarts, Labels: []string{name}, Value: float64(h.restarts.Load())})
			emit(telemetry.Sample{Desc: telemetry.DescAppCrashes, Labels: []string{name}, Value: float64(h.crashes.Load())})
			emit(telemetry.Sample{Desc: telemetry.DescAppQuarantines, Labels: []string{name}, Value: float64(h.quarantines.Load())})
			emit(telemetry.Sample{Desc: telemetry.DescAppProbeFailures, Labels: []string{name}, Value: float64(h.probeFailures.Load())})
		}
	})
}

// InProcLauncher hosts the spec'd app inside this process: restarts are
// a fresh StartApp pinned to the previous address. The engine is shared
// across incarnations, so admin breakpoint toggles survive restarts.
func InProcLauncher(e *core.Engine, spec Spec) Launcher {
	return func(prevAddr string) (Instance, error) {
		s := spec
		if prevAddr != "" {
			s.Listen = prevAddr
		}
		app, err := StartApp(e, s)
		if err != nil {
			return nil, err
		}
		return &inProcInstance{app: app}, nil
	}
}

// inProcInstance adapts an in-process App to the Instance interface.
type inProcInstance struct {
	app     *App
	stopped sync.Once
	err     error
}

func (i *inProcInstance) Addr() string          { return i.app.Addr }
func (i *inProcInstance) Pid() int              { return 0 }
func (i *inProcInstance) Done() <-chan struct{} { return nil }
func (i *inProcInstance) ExitErr() error        { return i.err }
func (i *inProcInstance) Stop() error {
	i.stopped.Do(func() { i.err = i.app.Close() })
	return i.err
}
func (i *inProcInstance) Kill() error { return i.Stop() }

// App returns the hosted in-process app (counter access).
func (i *inProcInstance) App() *App { return i.app }

// InstanceApp unwraps an in-process instance's App (nil for process
// instances) — how the daemon reads Served/ShedCount in in-process mode.
func InstanceApp(inst Instance) *App {
	if ip, ok := inst.(*inProcInstance); ok {
		return ip.App()
	}
	return nil
}

// ParseApps parses a comma-separated "app[:bug]" list ("httpd,mysql" or
// "httpd:log-corruption,mysql:deadlock") into specs with the given
// pause. Bugs default to "none".
func ParseApps(list string, pause time.Duration) ([]Spec, error) {
	var specs []Spec
	seen := make(map[string]bool)
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec := Spec{App: item, Bug: "none", Pause: pause}
		if i := strings.IndexByte(item, ':'); i >= 0 {
			spec.App, spec.Bug = item[:i], item[i+1:]
		}
		if seen[spec.App] {
			return nil, fmt.Errorf("app %q listed twice", spec.App)
		}
		seen[spec.App] = true
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no apps in %q", list)
	}
	return specs, nil
}
