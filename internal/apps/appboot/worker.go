package appboot

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard/faultinject"
	"cbreak/internal/journal"
	"cbreak/internal/journal/sink"
	"cbreak/internal/waitgraph"
)

// This file is the body of an app worker process (cbserverd
// -app-worker): one engine, one app server, its own wait-graph
// supervisor, and — when configured — its own durable telemetry journal
// in a directory that survives the process. The worker prints one
// handshake line once its socket listens, then runs until SIGTERM
// (graceful drain) or until its durable journal fails (it exits so the
// supervisor can relaunch it against the recovered journal: durability
// failures are process-fatal in a worker, never silent).

// crashArmedMarker, inside the worker's journal directory, records that
// the one-shot disk-fault plan has already been armed once: the
// relaunched worker after the injected crash runs on the real
// filesystem, so a disk-fault scenario produces exactly one crash, not
// a crash loop.
const crashArmedMarker = "chaos-armed"

// WorkerConfig parameterizes one app worker process.
type WorkerConfig struct {
	// Spec is the app to host (Listen pinned by the supervisor on
	// relaunch).
	Spec
	// Seed seeds the worker's jitter stream.
	Seed int64
	// DurableDir, when set, journals engine events and guard incidents
	// under this directory. The directory outlives the process: a
	// relaunched worker appends to the recovered journal (continuity).
	DurableDir string
	// CrashAppends, with DurableDir, arms a one-shot faultinject crash
	// plan under the journal: the CrashAppends-th durability operation
	// fails, the worker exits, and the relaunch runs clean (see
	// crashArmedMarker).
	CrashAppends int
	// Out receives the ready handshake (default os.Stdout).
	Out io.Writer
	// Log receives worker log lines (default os.Stderr).
	Log io.Writer
	// Signals overrides the OS signal source (tests). Nil installs
	// SIGTERM/SIGINT.
	Signals <-chan os.Signal
}

// RunWorker hosts one app until a drain signal (returns nil) or a fatal
// condition such as a dead durable journal (returns the error; the
// process exit then tells the supervisor this incarnation crashed).
func RunWorker(cfg WorkerConfig) error {
	if cfg.Out == nil {
		cfg.Out = os.Stdout
	}
	if cfg.Log == nil {
		cfg.Log = os.Stderr
	}
	appkit.SeedJitter(cfg.Seed)
	e := core.NewEngine()

	var s *sink.Sink
	if cfg.DurableDir != "" {
		opts := journal.Options{Dir: cfg.DurableDir, Sync: journal.SyncInterval}
		if cfg.CrashAppends > 0 {
			marker := filepath.Join(cfg.DurableDir, crashArmedMarker)
			if _, err := os.Stat(marker); os.IsNotExist(err) {
				// Write the marker before arming: even a crash during
				// boot must not re-arm on the next launch.
				if err := os.MkdirAll(cfg.DurableDir, 0o755); err != nil {
					return fmt.Errorf("worker: journal dir: %w", err)
				}
				if err := os.WriteFile(marker, []byte("armed\n"), 0o644); err != nil {
					return fmt.Errorf("worker: arm marker: %w", err)
				}
				opts.FS = journal.CrashFS(journal.OSFS(), faultinject.NewCrashPlan(cfg.CrashAppends))
				fmt.Fprintf(cfg.Log, "worker %s: one-shot disk fault armed at durability op %d\n", cfg.App, cfg.CrashAppends)
			}
		}
		var err error
		s, err = sink.OpenOptions(opts)
		if err != nil {
			return fmt.Errorf("worker: durable journal: %w", err)
		}
		defer s.Close()
		e.SetDurableSink(s)
	}

	sup := waitgraph.New(e, waitgraph.Config{})
	sup.Start()
	defer sup.Stop()

	app, err := StartApp(e, cfg.Spec)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	defer app.Close()
	fmt.Fprintln(cfg.Out, Handshake(app.Name, app.Addr))

	sigs := cfg.Signals
	if sigs == nil {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(ch)
		sigs = ch
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case sig := <-sigs:
			fmt.Fprintf(cfg.Log, "worker %s: %v, draining (served %d)\n", cfg.App, sig, app.Served())
			if s != nil {
				// Flush buffered telemetry before the teardown that
				// still produces records; Close syncs again at the end.
				if err := s.Sync(); err != nil {
					fmt.Fprintf(cfg.Log, "worker %s: drain sync: %v\n", cfg.App, err)
				}
			}
			return nil
		case <-tick.C:
			if s != nil {
				if err := s.Err(); err != nil {
					// A dead journal means telemetry is being lost:
					// crash out so the supervisor relaunches this app
					// against the recovered journal.
					app.Close()
					return fmt.Errorf("worker %s: durable journal failed: %w", cfg.App, err)
				}
			}
		}
	}
}
