// Package appboot boots the benchmark applications (httpd, mysql) as
// real socket servers behind one app-agnostic surface, shared by the
// drivers that put them under load: cmd/cbload (one seeded chaos run)
// and cmd/cbserverd (the always-on control plane). The package owns the
// app/bug flag vocabulary so every driver arms the same reproductions
// the same way. On top of the boot layer sits a self-healing process
// supervisor (supervisor.go): hosted apps can run as re-exec'd child
// worker processes (worker.go, proc.go) that are health-probed,
// restarted with jittered exponential backoff after crashes, and
// quarantined instead of restarted forever when they crash-loop.
package appboot

import (
	"fmt"
	"time"

	"cbreak/internal/apps/httpd"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/core"
)

// Spec names one bootable app server: which reproduction, which bug is
// armed, where it listens, and (httpd only) which mysql backend its
// requests fan into.
type Spec struct {
	// App is the application to boot ("httpd" or "mysql").
	App string
	// Bug is the bug to arm ("none", "log-corruption" for httpd,
	// "deadlock" for mysql).
	Bug string
	// Pause is the breakpoint pause time T from the paper's methodology.
	Pause time.Duration
	// Listen is the listen address (empty = ephemeral loopback port).
	Listen string
	// Backend, for httpd, wires every GET into a derived statement
	// against this mysql address — the two-communicating-services
	// topology the multi-process deadlock scenarios drive.
	Backend string
	// BackendTimeout bounds one backend round trip (default 2s).
	BackendTimeout time.Duration
}

// App is one running socket server behind an app-agnostic surface.
type App struct {
	// Name is the booted application ("httpd" or "mysql").
	Name string
	// Bug is the armed bug name ("none" when breakpoints are unarmed).
	Bug string
	// Addr is the server's listen address.
	Addr string
	// Close drains the server gracefully.
	Close func() error
	// Served returns how many request lines were answered.
	Served func() int64
	// ShedCount returns how many connections the accept loop shed.
	ShedCount func() int64
}

// StartApp boots the spec'd app server against e. Recognized app/bug
// pairs:
//
//	httpd: none, log-corruption
//	mysql: none, deadlock
func StartApp(e *core.Engine, spec Spec) (*App, error) {
	switch spec.App {
	case "httpd":
		cfg := httpd.Config{Engine: e, Timeout: spec.Pause}
		switch spec.Bug {
		case "none":
			cfg.Bug, cfg.Breakpoint = httpd.LogCorruption, false
		case "log-corruption":
			cfg.Bug, cfg.Breakpoint = httpd.LogCorruption, true
		default:
			return nil, fmt.Errorf("unknown httpd bug %q (want none or log-corruption)", spec.Bug)
		}
		ns, err := httpd.StartNet(cfg, httpd.NetConfig{
			Addr: spec.Listen, Backend: spec.Backend, BackendTimeout: spec.BackendTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("httpd start: %w", err)
		}
		return &App{Name: spec.App, Bug: spec.Bug, Addr: ns.Addr(),
			Close: ns.Close, Served: ns.Served, ShedCount: ns.ShedCount}, nil
	case "mysql":
		cfg := mysql.Config{Engine: e, Timeout: spec.Pause, StallAfter: 30 * time.Second}
		switch spec.Bug {
		case "none":
			cfg.Bug, cfg.Breakpoint = mysql.Deadlock, false
		case "deadlock":
			cfg.Bug, cfg.Breakpoint = mysql.Deadlock, true
		default:
			return nil, fmt.Errorf("unknown mysql bug %q (want none or deadlock)", spec.Bug)
		}
		ns, err := mysql.StartNet(cfg, mysql.NetConfig{Addr: spec.Listen})
		if err != nil {
			return nil, fmt.Errorf("mysql start: %w", err)
		}
		return &App{Name: spec.App, Bug: spec.Bug, Addr: ns.Addr(),
			Close: ns.Close, Served: ns.Served, ShedCount: ns.ShedCount}, nil
	}
	return nil, fmt.Errorf("unknown app %q (want httpd or mysql)", spec.App)
}

// Start boots the named app server on listen (empty = ephemeral
// loopback port) with the named bug armed against e — the historical
// single-app entry point, kept as a thin wrapper over StartApp.
func Start(e *core.Engine, app, bug string, pause time.Duration, listen string) (*App, error) {
	return StartApp(e, Spec{App: app, Bug: bug, Pause: pause, Listen: listen})
}

// RequestGenerator returns the canonical load-request generator for the
// named app — the request a load client with ordinal client issues as
// its request'th call. Decoupled from Start so a driver can generate
// load against a server it did not boot (cbload -connect).
func RequestGenerator(app string) (func(client, request int) string, error) {
	switch app {
	case "httpd":
		return func(client, request int) string {
			return fmt.Sprintf("GET /page/%d", client*1000+request)
		}, nil
	case "mysql":
		return func(client, request int) string {
			// Even clients write, odd clients rotate logs: with the
			// deadlock armed this drives the crossing lock orders.
			if client%2 == 0 {
				return fmt.Sprintf("INSERT INTO t1 VALUES ('c%d-r%d')", client, request)
			}
			return "FLUSH LOGS"
		}, nil
	}
	return nil, fmt.Errorf("unknown app %q (want httpd or mysql)", app)
}
