//go:build linux

package appboot

import (
	"os/exec"
	"syscall"
)

// workerSysProcAttr places each app worker in its own process group and
// arms the parent-death signal — the campaign worker's belt-and-braces
// answer to orphaned children, reused here for hosted app workers:
//
//   - Setpgid: the worker and everything it forks share a process
//     group, so a supervisor kill reaches grandchildren too.
//   - Pdeathsig: the kernel SIGKILLs the worker the moment its parent
//     thread dies, so even `kill -9` of the daemon reaps the tree.
func workerSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Setpgid: true, Pdeathsig: syscall.SIGKILL}
}

// terminateWorker delivers the graceful-drain signal (SIGTERM).
func terminateWorker(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	return cmd.Process.Signal(syscall.SIGTERM)
}

// killWorkerTree kills the worker's whole process group (negative pid),
// falling back to a direct kill if the group is already gone.
func killWorkerTree(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err == nil {
		return nil
	}
	return cmd.Process.Kill()
}
