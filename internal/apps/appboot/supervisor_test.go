package appboot

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/telemetry"
)

// fakeInstance is a scriptable Instance for state-machine tests.
type fakeInstance struct {
	addr    string
	pid     int
	done    chan struct{}
	once    sync.Once
	exitErr error
	healthy atomic.Bool
}

func newFakeInstance(addr string, pid int) *fakeInstance {
	f := &fakeInstance{addr: addr, pid: pid, done: make(chan struct{})}
	f.healthy.Store(true)
	return f
}

func (f *fakeInstance) Addr() string          { return f.addr }
func (f *fakeInstance) Pid() int              { return f.pid }
func (f *fakeInstance) Done() <-chan struct{} { return f.done }
func (f *fakeInstance) ExitErr() error        { return f.exitErr }
func (f *fakeInstance) Stop() error           { f.die(nil); return nil }
func (f *fakeInstance) Kill() error           { f.die(errors.New("killed")); return nil }
func (f *fakeInstance) die(err error) {
	f.once.Do(func() { f.exitErr = err; close(f.done) })
}
func (f *fakeInstance) crash(msg string) { f.die(errors.New(msg)) }

// launchLog is a Launcher that records every launch and hands out fresh
// fake instances until it is told to start failing.
type launchLog struct {
	//cbvet:ignore rawsync guards test-only bookkeeping that never participates in a modeled deadlock
	mu        sync.Mutex
	instances []*fakeInstance
	failNext  int
	launches  int
}

func (l *launchLog) launcher() Launcher {
	return func(prevAddr string) (Instance, error) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.launches++
		if l.failNext > 0 {
			l.failNext--
			return nil, fmt.Errorf("scripted launch failure")
		}
		addr := prevAddr
		if addr == "" {
			addr = "127.0.0.1:9999"
		}
		inst := newFakeInstance(addr, 1000+l.launches)
		l.instances = append(l.instances, inst)
		return inst, nil
	}
}

func (l *launchLog) last() *fakeInstance {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.instances) == 0 {
		return nil
	}
	return l.instances[len(l.instances)-1]
}

func (l *launchLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.launches
}

// waitState polls for a host state (probing and backoff are time-driven).
func waitState(t *testing.T, h *Host, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("host never reached %v (now %v)", want, h.State())
}

func waitLaunches(t *testing.T, l *launchLog, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l.count() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("launch count stuck at %d, want >= %d", l.count(), want)
}

// fastCfg is a host config with test-speed timers and probing disabled.
func fastCfg(name string, l *launchLog) HostConfig {
	return HostConfig{
		Name: name, Launch: l.launcher(),
		RestartBackoff: time.Millisecond, MaxRestartBackoff: 5 * time.Millisecond,
		CrashLoopWindow: 200 * time.Millisecond, CrashLoopThreshold: 4,
		ProbeInterval: -1, Seed: 7,
	}
}

// TestHostRestartsAfterCrash: a crash relaunches the instance on the
// same pinned address and counts a restart.
func TestHostRestartsAfterCrash(t *testing.T) {
	l := &launchLog{}
	h := NewHost(fastCfg("httpd", l))
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	first := l.last()
	first.crash("signal: killed")
	waitLaunches(t, l, 2)
	waitState(t, h, StateUp)
	if got := l.last().Addr(); got != first.Addr() {
		t.Fatalf("relaunch addr = %q, want pinned %q", got, first.Addr())
	}
	st := h.Status()
	if st.Restarts < 1 || st.Crashes < 1 {
		t.Fatalf("status = %+v, want restarts and crashes >= 1", st)
	}
	if st.LastExit != "signal: killed" {
		t.Fatalf("LastExit = %q", st.LastExit)
	}
}

// TestHostQuarantinesCrashLoop: threshold crashes inside the window
// flips the host to quarantined and stops relaunching; Revive lifts it.
func TestHostQuarantinesCrashLoop(t *testing.T) {
	l := &launchLog{}
	h := NewHost(fastCfg("mysql", l))
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	for i := 0; ; i++ {
		if h.State() == StateQuarantined {
			break
		}
		if i > 100 {
			t.Fatalf("never quarantined after %d crashes", i)
		}
		if inst := l.last(); inst != nil {
			inst.crash("boom")
		}
		time.Sleep(5 * time.Millisecond)
	}
	launchesAtQuarantine := l.count()
	time.Sleep(50 * time.Millisecond)
	if got := l.count(); got != launchesAtQuarantine {
		t.Fatalf("quarantined host kept launching: %d -> %d", launchesAtQuarantine, got)
	}
	if q := h.Status().Quarantines; q != 1 {
		t.Fatalf("quarantines = %d, want 1", q)
	}
	h.Revive()
	waitState(t, h, StateUp)
	if l.count() <= launchesAtQuarantine {
		t.Fatalf("revive did not relaunch")
	}
}

// TestHostLaunchFailuresQuarantine: scripted launch errors count as
// crashes and quarantine too (a binary that cannot even boot must not
// spin forever).
func TestHostLaunchFailuresQuarantine(t *testing.T) {
	l := &launchLog{failNext: 0}
	cfg := fastCfg("httpd", l)
	h := NewHost(cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	l.mu.Lock()
	l.failNext = 100
	l.mu.Unlock()
	l.last().crash("first death")
	waitState(t, h, StateQuarantined)
}

// TestHostFirstLaunchFailure: a boot-time failure surfaces from Start.
func TestHostFirstLaunchFailure(t *testing.T) {
	l := &launchLog{failNext: 1}
	h := NewHost(fastCfg("httpd", l))
	if err := h.Start(); err == nil {
		t.Fatal("Start succeeded despite scripted launch failure")
	}
}

// TestHostProbeWedgeKill: an instance that stays "alive" but fails
// probes is killed and relaunched — the SIGSTOP wedge path.
func TestHostProbeWedgeKill(t *testing.T) {
	l := &launchLog{}
	cfg := fastCfg("httpd", l)
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbeTimeout = 5 * time.Millisecond
	cfg.ProbeFailures = 3
	cfg.Probe = func(addr string, timeout time.Duration) error {
		inst := l.last()
		if inst != nil && !inst.healthy.Load() {
			return errors.New("no probe answer")
		}
		return nil
	}
	h := NewHost(cfg)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	first := l.last()
	first.healthy.Store(false)
	waitLaunches(t, l, 2)
	waitState(t, h, StateUp)
	select {
	case <-first.done:
	default:
		t.Fatal("wedged instance was not killed")
	}
	if pf := h.Status().ProbeFailures; pf < 3 {
		t.Fatalf("probe failures = %d, want >= 3", pf)
	}
}

// TestSupervisorLifecycle: StartAll boots in order, AllUp gates on
// every host, StopAll stops cleanly, metrics emit one family per app.
func TestSupervisorLifecycle(t *testing.T) {
	s := NewSupervisor()
	l1, l2 := &launchLog{}, &launchLog{}
	s.Add(fastCfg("mysql", l1))
	// Gate httpd relaunches (not the first launch) so the restart window
	// is observable deterministically rather than by racing the backoff.
	cfg2 := fastCfg("httpd", l2)
	inner := cfg2.Launch
	relaunchGate := make(chan struct{})
	var launchCalls atomic.Int64
	cfg2.Launch = func(prevAddr string) (Instance, error) {
		if launchCalls.Add(1) > 1 {
			<-relaunchGate
		}
		return inner(prevAddr)
	}
	s.Add(cfg2)
	if err := s.StartAll(); err != nil {
		t.Fatal(err)
	}
	if !s.AllUp() {
		t.Fatal("AllUp false with both hosts up")
	}
	l2.last().crash("kill")
	// Between death and relaunch AllUp must go false.
	deadline := time.Now().Add(10 * time.Second)
	for s.AllUp() {
		if time.Now().After(deadline) {
			t.Fatal("AllUp never dropped during a restart")
		}
		time.Sleep(time.Millisecond)
	}
	close(relaunchGate)
	waitState(t, s.Host("httpd"), StateUp)

	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	byName := map[string]bool{}
	for _, sm := range reg.Gather() {
		byName[sm.Desc.Name+":"+sm.Labels[0]] = true
	}
	for _, want := range []string{
		"cbreak_supervisor_app_state:mysql",
		"cbreak_supervisor_app_state:httpd",
		"cbreak_supervisor_restarts_total:httpd",
		"cbreak_supervisor_crashes_total:httpd",
		"cbreak_supervisor_quarantines_total:mysql",
		"cbreak_supervisor_probe_failures_total:mysql",
	} {
		if !byName[want] {
			t.Fatalf("metrics missing %s (got %v)", want, byName)
		}
	}
	s.StopAll()
	for _, h := range s.Hosts() {
		if h.State() != StateStopped {
			t.Fatalf("host %s state %v after StopAll", h.cfg.Name, h.State())
		}
	}
}

// TestParseApps covers the -apps flag grammar.
func TestParseApps(t *testing.T) {
	specs, err := ParseApps("httpd:log-corruption, mysql:deadlock", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].App != "httpd" || specs[0].Bug != "log-corruption" ||
		specs[1].App != "mysql" || specs[1].Bug != "deadlock" {
		t.Fatalf("specs = %+v", specs)
	}
	if specs, err = ParseApps("httpd", 0); err != nil || specs[0].Bug != "none" {
		t.Fatalf("bare app: %+v, %v", specs, err)
	}
	if _, err = ParseApps("httpd,httpd", 0); err == nil {
		t.Fatal("duplicate app accepted")
	}
	if _, err = ParseApps("", 0); err == nil {
		t.Fatal("empty list accepted")
	}
}

// TestStateStrings pins the /status vocabulary.
func TestStateStrings(t *testing.T) {
	for want, s := range map[string]State{
		"up": StateUp, "restarting": StateRestarting,
		"quarantined": StateQuarantined, "stopped": StateStopped,
	} {
		if s.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int32(s), s, want)
		}
	}
}
