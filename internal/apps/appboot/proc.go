package appboot

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// This file is the process-worker launcher: the hosted app runs in a
// re-exec'd child (cbserverd -app-worker, see worker.go) so the
// supervisor can observe and survive real process death — SIGKILL,
// SIGSTOP wedges, crash-loops — the faults the scenario harness
// injects. The child is placed in its own process group with the
// parent-death signal armed (procattr_*.go, the campaign worker's
// pattern), so killing the daemon never strands a worker.

// HandshakePrefix opens the one line a worker prints to stdout once its
// socket is listening; the launcher parses the address out of it.
const HandshakePrefix = "appboot-worker: "

// Handshake formats the worker's ready line.
func Handshake(app, addr string) string {
	return fmt.Sprintf("%sapp=%s addr=%s", HandshakePrefix, app, addr)
}

// parseHandshake extracts the addr= field from a ready line.
func parseHandshake(line string) (addr string, ok bool) {
	if !strings.HasPrefix(line, HandshakePrefix) {
		return "", false
	}
	for _, f := range strings.Fields(line[len(HandshakePrefix):]) {
		if v, found := strings.CutPrefix(f, "addr="); found {
			return v, v != ""
		}
	}
	return "", false
}

// ProcConfig parameterizes a process launcher.
type ProcConfig struct {
	// Bin is the worker binary (usually os.Executable(): the daemon
	// re-execs itself in -app-worker mode).
	Bin string
	// Args builds the argv for one launch given the pinned listen
	// address ("" on the first launch).
	Args func(listenAddr string) []string
	// HandshakeTimeout bounds the wait for the ready line (default 10s).
	HandshakeTimeout time.Duration
	// StopTimeout bounds graceful SIGTERM stop before the process group
	// is killed (default 5s).
	StopTimeout time.Duration
	// Output receives the worker's stderr and post-handshake stdout
	// (default os.Stderr).
	Output io.Writer
}

// ProcLauncher launches the worker binary as a supervised child
// process. The returned launcher blocks until the worker prints its
// ready handshake, so a worker that dies during boot is a launch error
// (and counts as a crash), not a silent zombie host.
func ProcLauncher(cfg ProcConfig) Launcher {
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.StopTimeout <= 0 {
		cfg.StopTimeout = 5 * time.Second
	}
	if cfg.Output == nil {
		cfg.Output = os.Stderr
	}
	return func(prevAddr string) (Instance, error) {
		cmd := exec.Command(cfg.Bin, cfg.Args(prevAddr)...)
		cmd.SysProcAttr = workerSysProcAttr()
		cmd.Stderr = cfg.Output
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		inst := &procInstance{
			cmd:         cmd,
			stopTimeout: cfg.StopTimeout,
			done:        make(chan struct{}),
		}
		// Reap in the background; the exit error is latched before done
		// closes so ExitErr is race-free for watchers.
		ready := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			handshook := false
			for sc.Scan() {
				line := sc.Text()
				if !handshook {
					if addr, ok := parseHandshake(line); ok {
						handshook = true
						ready <- addr
						continue
					}
				}
				fmt.Fprintln(cfg.Output, line)
			}
			inst.exitErr = cmd.Wait()
			if inst.exitErr == nil {
				inst.exitErr = fmt.Errorf("worker exited")
			}
			close(inst.done)
		}()
		select {
		case addr := <-ready:
			inst.addr = addr
			return inst, nil
		case <-inst.done:
			return nil, fmt.Errorf("worker died before handshake: %v", inst.exitErr)
		case <-time.After(cfg.HandshakeTimeout):
			_ = inst.Kill()
			return nil, fmt.Errorf("worker handshake timed out after %s", cfg.HandshakeTimeout)
		}
	}
}

// procInstance is one live worker process.
type procInstance struct {
	cmd         *exec.Cmd
	addr        string
	stopTimeout time.Duration

	killOnce sync.Once
	done     chan struct{}
	exitErr  error
}

func (p *procInstance) Addr() string          { return p.addr }
func (p *procInstance) Pid() int              { return p.cmd.Process.Pid }
func (p *procInstance) Done() <-chan struct{} { return p.done }

func (p *procInstance) ExitErr() error {
	select {
	case <-p.done:
		return p.exitErr
	default:
		return nil
	}
}

// Stop asks the worker to drain (SIGTERM), escalating to a group kill
// at the stop timeout.
func (p *procInstance) Stop() error {
	if err := terminateWorker(p.cmd); err != nil {
		return p.Kill()
	}
	select {
	case <-p.done:
		return nil
	case <-time.After(p.stopTimeout):
		return p.Kill()
	}
}

// Kill kills the worker's whole process group and waits for the reap.
func (p *procInstance) Kill() error {
	var err error
	p.killOnce.Do(func() { err = killWorkerTree(p.cmd) })
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
	}
	return err
}
