//go:build !linux

package appboot

import (
	"os"
	"os/exec"
	"syscall"
)

// workerSysProcAttr: no process-group/parent-death support wired on
// this platform; workers are killed individually.
func workerSysProcAttr() *syscall.SysProcAttr { return nil }

// terminateWorker delivers the graceful-drain signal where the platform
// has one, falling back to a kill.
func terminateWorker(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		return cmd.Process.Kill()
	}
	return nil
}

// killWorkerTree kills the worker process directly.
func killWorkerTree(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	return cmd.Process.Kill()
}
