package logging

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestLogLevelFiltering(t *testing.T) {
	h := NewHandler(Info)
	l := NewLogger(Fine, h, quietCfg())
	l.Log(Record{Level: Fine, Message: "debug"}) // logger passes, handler filters
	l.Log(Record{Level: Info, Message: "hello"})
	l.Log(Record{Level: Severe, Message: "boom"})
	recs := h.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %v", recs)
	}
	if !strings.Contains(recs[0], "hello") || !strings.Contains(recs[1], "boom") {
		t.Fatalf("records = %v", recs)
	}
}

func TestLoggerLevelFilters(t *testing.T) {
	h := NewHandler(Fine)
	l := NewLogger(Warning, h, quietCfg())
	l.Log(Record{Level: Info, Message: "suppressed"})
	if len(h.Records()) != 0 {
		t.Fatal("logger-level filtering broken")
	}
}

func TestReconfigure(t *testing.T) {
	h := NewHandler(Fine)
	l := NewLogger(Info, h, quietCfg())
	l.Reconfigure(Warning)
	l.Log(Record{Level: Info, Message: "now filtered"})
	if len(h.Records()) != 0 {
		t.Fatal("reconfigured level not applied")
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, StallAfter: 500 * time.Millisecond}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 3 {
		t.Fatalf("deadlock manifested %d/10 without breakpoint", bugs)
	}
}
