// Package logging models java.util.logging's classic lock-order
// deadlock (Table 1 row "logging / deadlock1"): the log path locks the
// Logger and then its Handler to publish, while a concurrent
// reconfiguration locks the Handler and then the Logger to re-read its
// level — opposite acquisition orders on the same two monitors.
package logging

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// BPDeadlock identifies the breakpoint in engine statistics.
const BPDeadlock = "logging.deadlock1"

// Level is a log severity.
type Level int

// Severity levels.
const (
	Fine Level = iota
	Info
	Warning
	Severe
)

// Record is one log record.
type Record struct {
	Level   Level
	Message string
}

// Handler formats and stores records, guarded by its own monitor.
type Handler struct {
	mu      *locks.Mutex
	level   Level
	records []string
}

// NewHandler returns a handler accepting records at or above level.
func NewHandler(level Level) *Handler {
	return &Handler{mu: locks.NewMutex("logging.handler"), level: level}
}

// publishLocked formats r; caller holds h.mu.
func (h *Handler) publishLocked(r Record) {
	if r.Level >= h.level {
		h.records = append(h.records, fmt.Sprintf("[%d] %s", r.Level, r.Message))
	}
}

// Records returns the published records.
func (h *Handler) Records() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.records...)
}

// Logger dispatches records to its handler, guarded by its own monitor.
type Logger struct {
	mu      *locks.Mutex
	level   Level
	handler *Handler
	cfg     *Config
}

// NewLogger returns a logger at the given level with one handler.
func NewLogger(level Level, h *Handler, cfg *Config) *Logger {
	return &Logger{mu: locks.NewMutex("logging.logger"), level: level, handler: h, cfg: cfg}
}

// Log publishes a record: Logger monitor, then Handler monitor.
func (l *Logger) Log(r Record) {
	l.mu.LockAt("Logger.java:log")
	defer l.mu.Unlock()
	if r.Level < l.level {
		return
	}
	if l.cfg != nil && l.cfg.Breakpoint {
		l.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, l.mu, l.handler.mu), true,
			core.Options{Timeout: l.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the java.util.logging deadlock repro (Logger then Handler)
	l.handler.mu.LockAt("Handler.java:publish")
	defer l.handler.mu.Unlock()
	l.handler.publishLocked(r)
}

// Reconfigure adjusts the handler's level based on the logger's:
// Handler monitor, then Logger monitor — the inverted order.
func (l *Logger) Reconfigure(level Level) {
	l.handler.mu.LockAt("Handler.java:setLevel")
	defer l.handler.mu.Unlock()
	if l.cfg != nil && l.cfg.Breakpoint {
		l.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, l.handler.mu, l.mu), false,
			core.Options{Timeout: l.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: the java.util.logging deadlock repro (Handler then Logger)
	l.mu.LockAt("Logger.java:getLevel")
	defer l.mu.Unlock()
	if level < l.level {
		level = l.level
	}
	l.handler.level = level
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// StallAfter bounds deadlock detection (default 2s).
	StallAfter time.Duration
	// Records is the log volume (default 50).
	Records int
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

func (c *Config) records() int {
	if c.Records <= 0 {
		return 50
	}
	return c.Records
}

// Run logs records on one goroutine while another reconfigures the
// handler; the crossed lock orders deadlock when the breakpoint aligns
// them.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	h := NewHandler(Info)
	l := NewLogger(Fine, h, &cfg)
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		go func() {
			for i := 0; i < cfg.records(); i++ {
				l.Log(Record{Level: Info, Message: fmt.Sprintf("event %d", i)})
			}
			done <- struct{}{}
		}()
		go func() {
			l.Reconfigure(Warning)
			done <- struct{}{}
		}()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
