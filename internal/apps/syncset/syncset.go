// Package syncset models a synchronized Set wrapper (Table 1 rows
// "synchronizedSet"). Individual methods are synchronized; cross-method
// sequences race:
//
//   - atomicity1: the classic toArray pattern — size() followed by
//     copyInto(array-of-that-size) — interleaved with a concurrent add
//     overflows the preallocated array and panics (Java's
//     ArrayIndexOutOfBoundsException / ConcurrentModificationException).
//   - deadlock1: two sets cross-calling addAll acquire the two monitors
//     in opposite orders and deadlock.
package syncset

import (
	"fmt"
	"sort"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// Breakpoint names for engine statistics.
const (
	BPAtomicity = "syncset.atomicity1"
	BPDeadlock  = "syncset.deadlock1"
)

// Set is a synchronized set of int64.
type Set struct {
	mu *locks.Mutex
	m  map[int64]struct{}
}

// NewSet returns an empty synchronized set.
func NewSet(name string) *Set {
	return &Set{mu: locks.NewMutex(name), m: make(map[int64]struct{})}
}

// Add inserts v and reports whether it was new (synchronized).
func (s *Set) Add(v int64) bool {
	var added bool
	s.mu.With(func() {
		if _, ok := s.m[v]; !ok {
			s.m[v] = struct{}{}
			added = true
		}
	})
	return added
}

// Contains reports membership (synchronized).
func (s *Set) Contains(v int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[v]
	return ok
}

// Remove deletes v and reports whether it was present (synchronized).
func (s *Set) Remove(v int64) bool {
	var had bool
	s.mu.With(func() {
		if _, ok := s.m[v]; ok {
			delete(s.m, v)
			had = true
		}
	})
	return had
}

// Size returns the element count (synchronized).
func (s *Set) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// CopyInto writes the elements into dst (synchronized); like Java's
// toArray(T[]) with a too-small array, it panics when the set has grown
// past len(dst) since the caller sized it.
func (s *Set) CopyInto(dst []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) > len(dst) {
		panic(fmt.Sprintf("ArrayIndexOutOfBounds: size=%d capacity=%d", len(s.m), len(dst)))
	}
	i := 0
	for v := range s.m {
		dst[i] = v
		i++
	}
	sort.Slice(dst[:i], func(a, b int) bool { return dst[a] < dst[b] })
}

// AddAll inserts every element of other, holding s's monitor then
// other's — the crossed-acquisition deadlock site.
func (s *Set) AddAll(other *Set, cfg *Config) {
	s.mu.LockAt("SynchronizedSet.addAll:outer")
	defer s.mu.Unlock()
	if cfg != nil && cfg.Breakpoint && cfg.Bug == Deadlock {
		cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, s.mu, other.mu), cfg.first(s),
			core.Options{Timeout: cfg.Timeout})
	}
	other.mu.LockAt("SynchronizedSet.addAll:inner")
	defer other.mu.Unlock()
	for v := range other.m {
		s.m[v] = struct{}{}
	}
}

// Bug selects the seeded bug.
type Bug int

const (
	// Atomicity is the size/copyInto vs add violation.
	Atomicity Bug = iota
	// Deadlock is the crossed addAll deadlock.
	Deadlock
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	StallAfter time.Duration

	firstSet *Set
}

func (c *Config) first(s *Set) bool { return s == c.firstSet }

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

// Run executes the selected scenario once.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	switch cfg.Bug {
	case Deadlock:
		return runDeadlock(cfg)
	default:
		return runAtomicity(cfg)
	}
}

// runAtomicity races a snapshotter (size then copyInto) against a writer
// that periodically grows the set.
func runAtomicity(cfg Config) appkit.Result {
	s := NewSet("set")
	for i := int64(0); i < 8; i++ {
		s.Add(i)
	}
	opts := core.Options{Timeout: cfg.Timeout, Bound: 1}
	res := appkit.RunWithDeadline(30*time.Second, func() appkit.Result {
		errCh := make(chan any, 2)
		spawn := func(f func()) {
			go func() {
				defer func() { errCh <- recover() }()
				f()
			}()
		}
		// Resolve the handle once; the trigger sites below run per
		// iteration and skip the registry lookup.
		var bpAtom *core.Breakpoint
		if cfg.Breakpoint {
			bpAtom = cfg.Engine.Breakpoint(BPAtomicity)
		}
		// Snapshotter.
		spawn(func() {
			for j := 0; j < 2000; j++ {
				n := s.Size()
				if cfg.Breakpoint {
					bpAtom.Trigger(core.NewAtomicityTrigger(BPAtomicity, s), false, opts)
				}
				s.CopyInto(make([]int64, n))
			}
		})
		// Grower: periodically adds a batch, then trims back.
		spawn(func() {
			next := int64(1000)
			for j := 0; j < 50; j++ {
				grow := func() {
					for k := 0; k < 4; k++ {
						s.Add(next)
						next++
					}
				}
				if cfg.Breakpoint {
					bpAtom.TriggerAnd(core.NewAtomicityTrigger(BPAtomicity, s), true, opts, grow)
				} else {
					grow()
				}
				time.Sleep(time.Millisecond) // unrelated work
				for k := int64(1); k <= 4; k++ {
					s.Remove(next - k)
				}
			}
		})
		for i := 0; i < 2; i++ {
			if p := <-errCh; p != nil {
				return appkit.Result{Status: appkit.Exception, Detail: fmt.Sprint(p)}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPAtomicity).Hits() > 0
	return res
}

func runDeadlock(cfg Config) appkit.Result {
	s1 := NewSet("s1")
	s2 := NewSet("s2")
	s1.Add(1)
	s2.Add(2)
	cfg.firstSet = s1
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		go func() { s1.AddAll(s2, &cfg); done <- struct{}{} }()
		go func() { s2.AddAll(s1, &cfg); done <- struct{}{} }()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
