package syncset

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("s")
	if !s.Add(1) || s.Add(1) {
		t.Fatal("Add dedup broken")
	}
	s.Add(2)
	if !s.Contains(1) || s.Contains(3) || s.Size() != 2 {
		t.Fatal("Contains/Size broken")
	}
	if !s.Remove(1) || s.Remove(1) || s.Size() != 1 {
		t.Fatal("Remove broken")
	}
}

func TestCopyInto(t *testing.T) {
	s := NewSet("s")
	s.Add(3)
	s.Add(1)
	s.Add(2)
	dst := make([]int64, 3)
	s.CopyInto(dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("CopyInto = %v", dst)
	}
}

func TestCopyIntoTooSmallPanics(t *testing.T) {
	s := NewSet("s")
	s.Add(1)
	s.Add(2)
	defer func() {
		if p := recover(); p == nil || !strings.Contains(p.(string), "ArrayIndexOutOfBounds") {
			t.Fatalf("panic = %v", p)
		}
	}()
	s.CopyInto(make([]int64, 1))
}

func TestAddAllSequential(t *testing.T) {
	a, b := NewSet("a"), NewSet("b")
	a.Add(1)
	b.Add(2)
	b.Add(3)
	a.AddAll(b, nil)
	if a.Size() != 3 || !a.Contains(3) {
		t.Fatal("AddAll broken")
	}
}

func TestAtomicityBreakpointReproducesException(t *testing.T) {
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Atomicity, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.Exception || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
		if !strings.Contains(r.Detail, "ArrayIndexOutOfBounds") {
			t.Fatalf("run %d: wrong exception %q", i, r.Detail)
		}
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Deadlock, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 20; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, Bug: Atomicity}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 5 {
		t.Fatalf("bug manifested %d/20 without breakpoint", bugs)
	}
}
