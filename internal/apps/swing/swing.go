// Package swing models the javax.swing RepaintManager / BasicCaret
// deadlock of the paper's evaluation (Table 1 rows "swing / deadlock1"):
//
//   - The event-dispatch thread (EDT) processes UI events. A caret blink
//     locks the BasicCaret monitor and then calls
//     RepaintManager.addDirtyRegion, which locks the RepaintManager.
//   - The repaint timer runs paintDirtyRegions under the RepaintManager
//     lock and calls back into components — locking the caret — to read
//     their bounds. Opposite acquisition orders: a deadlock.
//
// addDirtyRegion is called from many contexts (paper section 6.3); only
// the caret-holding context can actually deadlock. The unrefined
// breakpoint pauses the EDT at every addDirtyRegion call — which is why
// the paper's swing rows show 5x-12x runtime overhead — while the
// isLockTypeHeld(BasicCaret) refinement (Config.Refined here, using
// locks.ClassHeldPred) pauses only in the deadlock-capable context,
// cutting the overhead without losing probability. Event jitter makes
// the rendezvous probabilistic at short pauses (0.63 at 100ms in the
// paper) and near-certain at long ones (0.99 at 1s) — the section 6.2
// sweep.
package swing

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// BPDeadlock identifies the breakpoint in engine statistics.
const BPDeadlock = "swing.deadlock1"

// CaretClass is the lock class of caret monitors (the paper's
// BasicCaret type).
var CaretClass = locks.NewClass("BasicCaret")

// Rect is a dirty rectangle.
type Rect struct{ X, Y, W, H int }

// union returns the bounding box of a and b.
func union(a, b Rect) Rect {
	if a.W == 0 && a.H == 0 {
		return b
	}
	x1, y1 := min(a.X, b.X), min(a.Y, b.Y)
	x2 := max(a.X+a.W, b.X+b.W)
	y2 := max(a.Y+a.H, b.Y+b.H)
	return Rect{x1, y1, x2 - x1, y2 - y1}
}

// Component is a UI component with a monitor guarding its geometry.
type Component struct {
	mu     *locks.Mutex
	name   string
	bounds Rect
}

// NewComponent returns a component with a plain monitor.
func NewComponent(name string, bounds Rect) *Component {
	return &Component{mu: locks.NewMutex("swing." + name), name: name, bounds: bounds}
}

// NewCaretComponent returns a text component whose monitor belongs to
// the BasicCaret lock class.
func NewCaretComponent(name string, bounds Rect) *Component {
	return &Component{mu: locks.NewClassMutex("swing."+name, CaretClass), name: name, bounds: bounds}
}

// Bounds reads the geometry under the component's monitor.
func (c *Component) Bounds() Rect {
	c.mu.LockAt("Component.java:getBounds")
	defer c.mu.Unlock()
	return c.bounds
}

// RepaintManager collects dirty regions per component and repaints them.
type RepaintManager struct {
	mu      *locks.Mutex
	dirty   map[*Component]Rect
	painted int
	cfg     *Config
}

// NewRepaintManager returns an empty manager.
func NewRepaintManager(cfg *Config) *RepaintManager {
	return &RepaintManager{
		mu:    locks.NewMutex("swing.repaintManager"),
		dirty: make(map[*Component]Rect),
		cfg:   cfg,
	}
}

// AddDirtyRegion merges r into comp's dirty region: the EDT-side
// deadlock site. The breakpoint side inserted here reports the lock the
// caller actually holds, so only the caret-holding context can match the
// repaint thread's crossed pair.
func (rm *RepaintManager) AddDirtyRegion(comp *Component, r Rect) {
	if rm.cfg != nil && rm.cfg.Breakpoint {
		var held any
		if locks.IsHeld(comp.mu) {
			held = comp.mu
		}
		opts := core.Options{Timeout: rm.cfg.Timeout}
		if rm.cfg.Refined {
			// isLockTypeHeld(BasicCaret): skip the pause in contexts
			// that cannot deadlock (section 6.3).
			opts.ExtraLocal = locks.ClassHeldPred(CaretClass)
		}
		rm.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, held, rm.mu), true, opts)
	}
	rm.mu.LockAt("RepaintManager.java:addDirtyRegion")
	defer rm.mu.Unlock()
	rm.dirty[comp] = union(rm.dirty[comp], r)
}

// PaintDirtyRegions walks the dirty set under the manager lock, reading
// each component's bounds — the repaint-thread-side deadlock site.
func (rm *RepaintManager) PaintDirtyRegions() int {
	rm.mu.LockAt("RepaintManager.java:paintDirtyRegions")
	defer rm.mu.Unlock()
	painted := 0
	// Resolve the handle once; the trigger site below runs per dirty
	// component and skips the registry lookup.
	var bpDeadlock *core.Breakpoint
	if rm.cfg != nil && rm.cfg.Breakpoint {
		bpDeadlock = rm.cfg.Engine.Breakpoint(BPDeadlock)
	}
	for comp, r := range rm.dirty {
		if bpDeadlock != nil {
			bpDeadlock.Trigger(
				core.NewDeadlockTrigger(BPDeadlock, rm.mu, comp.mu), false,
				core.Options{Timeout: rm.cfg.Timeout})
		}
		// Bounds locks the component while holding rm.mu.
		//cbvet:ignore lockorder intentional: the Swing repaint-vs-caret deadlock repro (manager then component)
		b := comp.Bounds()
		clipped := r
		if clipped.W > b.W {
			clipped.W = b.W
		}
		if clipped.H > b.H {
			clipped.H = b.H
		}
		painted++
		delete(rm.dirty, comp)
	}
	rm.painted += painted
	return painted
}

// Painted returns the number of regions repainted so far.
func (rm *RepaintManager) Painted() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.painted
}

// Caret is a blinking text caret: each blink updates geometry under the
// caret monitor and requests a repaint while still holding it.
type Caret struct {
	comp    *Component
	rm      *RepaintManager
	visible bool
}

// NewCaret returns a caret on comp.
func NewCaret(comp *Component, rm *RepaintManager) *Caret {
	return &Caret{comp: comp, rm: rm}
}

// Blink toggles the caret: BasicCaret monitor, then AddDirtyRegion —
// the deadlock-capable context.
func (c *Caret) Blink() {
	c.comp.mu.LockAt("BasicCaret.java:blink")
	defer c.comp.mu.Unlock()
	c.visible = !c.visible
	//cbvet:ignore lockorder intentional: the Swing repaint-vs-caret deadlock repro (component then manager)
	c.rm.AddDirtyRegion(c.comp, Rect{X: 10, Y: 4, W: 2, H: 14})
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	// Timeout is the breakpoint pause (section 6.2 knob: 100ms vs 1s).
	Timeout time.Duration
	// Refined enables the isLockTypeHeld(BasicCaret) local-predicate
	// refinement (section 6.3).
	Refined bool
	// StallAfter bounds deadlock detection (default 3s).
	StallAfter time.Duration
	// Events is the EDT workload length (default 60).
	Events int
	// EventJitter is the per-event processing time scale (default
	// 500µs): the source of rendezvous misses at short pauses.
	EventJitter time.Duration
	// PaintCycles is how many repaint-timer cycles run (default 10).
	PaintCycles int
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 3 * time.Second
	}
	return c.StallAfter
}

func (c *Config) events() int {
	if c.Events <= 0 {
		return 60
	}
	return c.Events
}

func (c *Config) jitter() time.Duration {
	if c.EventJitter <= 0 {
		return 500 * time.Microsecond
	}
	return c.EventJitter
}

func (c *Config) paintCycles() int {
	if c.PaintCycles <= 0 {
		return 10
	}
	return c.PaintCycles
}

// Run drives an EDT processing a mixed event stream (caret blinks and
// plain repaints) against a repaint timer; the crossed lock orders
// deadlock when the breakpoint aligns a blink with a paint cycle.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	rm := NewRepaintManager(&cfg)
	text := NewCaretComponent("textField", Rect{0, 0, 200, 20})
	button := NewComponent("button", Rect{0, 30, 80, 24})
	caret := NewCaret(text, rm)

	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		edtDone := make(chan struct{})
		// EDT: mixed event stream with deterministic jitter.
		go func() {
			h := uint64(99991)
			for i := 0; i < cfg.events(); i++ {
				h = h*6364136223846793005 + 1442695040888963407
				d := time.Duration(h % uint64(cfg.jitter()))
				time.Sleep(d)
				switch i % 3 {
				case 0:
					caret.Blink() // deadlock-capable context
				case 1:
					// Resize damage to the text field — same component,
					// but without the caret lock: a harmless context.
					rm.AddDirtyRegion(text, Rect{0, 0, 200, 20})
				default:
					rm.AddDirtyRegion(button, Rect{0, 30, 80, 24}) // harmless context
				}
			}
			close(edtDone)
			done <- struct{}{}
		}()
		// Repaint timer: runs for the EDT's whole lifetime (like the
		// real Swing repaint timer), at least paintCycles times.
		go func() {
			i := 0
			for {
				time.Sleep(2 * time.Millisecond)
				rm.PaintDirtyRegions()
				i++
				if i >= cfg.paintCycles() {
					select {
					case <-edtDone:
						rm.PaintDirtyRegions()
						done <- struct{}{}
						return
					default:
					}
				}
			}
		}()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	if res.Status == appkit.Stall {
		res.Detail = fmt.Sprintf("EDT and repaint timer deadlocked (refined=%v)", cfg.Refined)
	}
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
