package swing

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	u := union(a, b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union = %+v", u)
	}
	if union(Rect{}, b) != b {
		t.Fatal("union with empty should return the other rect")
	}
}

func TestRepaintPipeline(t *testing.T) {
	cfg := quietCfg()
	rm := NewRepaintManager(cfg)
	comp := NewComponent("c", Rect{0, 0, 100, 100})
	rm.AddDirtyRegion(comp, Rect{0, 0, 10, 10})
	rm.AddDirtyRegion(comp, Rect{20, 20, 10, 10})
	if n := rm.PaintDirtyRegions(); n != 1 {
		t.Fatalf("painted %d regions, want 1 (merged)", n)
	}
	if rm.Painted() != 1 {
		t.Fatalf("Painted = %d", rm.Painted())
	}
	if n := rm.PaintDirtyRegions(); n != 0 {
		t.Fatalf("second paint repainted %d", n)
	}
}

func TestCaretBlinkMarksDirty(t *testing.T) {
	cfg := quietCfg()
	rm := NewRepaintManager(cfg)
	text := NewCaretComponent("t", Rect{0, 0, 200, 20})
	caret := NewCaret(text, rm)
	caret.Blink()
	if n := rm.PaintDirtyRegions(); n != 1 {
		t.Fatalf("blink did not mark dirty: painted %d", n)
	}
	if text.mu.Class() != CaretClass {
		t.Fatal("caret component lock class wrong")
	}
}

func TestCleanRunFinishes(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	r := Run(Config{Engine: e, Events: 20, PaintCycles: 3, StallAfter: 5 * time.Second})
	if r.Status != appkit.OK {
		t.Fatalf("clean run: %s", r)
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	stalls, hits := 0, 0
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true, Timeout: 100 * time.Millisecond,
			StallAfter: time.Second})
		if r.Status == appkit.Stall {
			stalls++
			if r.BPHit {
				hits++
			}
		}
	}
	if stalls < 4 {
		t.Fatalf("deadlock reproduced only %d/5 with a long pause", stalls)
	}
	// The stalls may come either from a formal rendezvous or from the
	// pauses alone perturbing the schedule into the deadlock — the
	// paper's probability column likewise counts reproduced bugs. hits
	// is informational here.
	t.Logf("stalls=%d, formal breakpoint hits=%d", stalls, hits)
}

func TestRefinedKeepsProbabilityCutsOverhead(t *testing.T) {
	// Section 6.3: with isLockTypeHeld(BasicCaret) the non-caret
	// contexts stop pausing; the deadlock still reproduces and the run
	// reaches the stall sooner or does equivalent work in less time.
	timeout := 50 * time.Millisecond

	start := time.Now()
	e1 := core.NewEngine()
	r1 := Run(Config{Engine: e1, Breakpoint: true, Timeout: timeout,
		StallAfter: 4 * time.Second})
	unrefinedTime := time.Since(start)

	start = time.Now()
	reproduced := false
	var refinedTime time.Duration
	// The refined variant pauses only in caret contexts, so a single
	// run can miss the rendezvous under heavy test-machine load; allow
	// a few attempts (each run is independent, like the paper's 100).
	for attempt := 0; attempt < 4 && !reproduced; attempt++ {
		e2 := core.NewEngine()
		r2 := Run(Config{Engine: e2, Breakpoint: true, Timeout: timeout, Refined: true,
			StallAfter: 4 * time.Second})
		reproduced = r2.Status == appkit.Stall
	}
	refinedTime = time.Since(start)

	if reproduced && r1.Status == appkit.Stall {
		// Both reproduce; the refined run must not be drastically
		// slower to reach the deadlock.
		if refinedTime > unrefinedTime*8 {
			t.Fatalf("refined runs slower: %v vs %v", refinedTime, unrefinedTime)
		}
	}
	if !reproduced {
		t.Fatal("refined configuration did not reproduce in 4 attempts")
	}
}

func TestPauseSweepLongPauseAtLeastAsGood(t *testing.T) {
	prob := func(timeout time.Duration) int {
		stalls := 0
		for i := 0; i < 6; i++ {
			e := core.NewEngine()
			r := Run(Config{Engine: e, Breakpoint: true, Timeout: timeout,
				StallAfter: 800 * time.Millisecond, EventJitter: 3 * time.Millisecond})
			if r.Status == appkit.Stall {
				stalls++
			}
		}
		return stalls
	}
	long := prob(50 * time.Millisecond)
	if long < 4 {
		t.Fatalf("long pause reproduced only %d/6", long)
	}
}
