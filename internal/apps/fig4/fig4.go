// Package fig4 implements the paper's Figure 4 program: a two-threaded
// example engineered so that its concurrent breakpoint
// (8, 10, t1.o1 == t2.o2) is almost never reached by plain execution.
//
// threadl runs foo(o): a long synchronized block (statements 1-7)
// followed by the check `if (o1.x == 0) ERROR` at line 8. thread2 runs
// bar(o): the write `o2.x = 1` at line 10 followed by a short
// synchronized block. The ERROR fires only if line 8's read executes
// before line 10's write — but line 8 runs late in thread1 and line 10
// runs first in thread2, so the window is tiny. BTrigger postpones
// thread2 at line 10 until thread1 reaches line 8, making ERROR certain.
//
// The package also exposes a step-program version of the same structure
// for the internal/sched interleaving explorer, which measures the
// no-trigger hit probability empirically for the section 3 model
// (experiment E6).
package fig4

import (
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/sched"
)

// BPName identifies the Figure 4 breakpoint in engine statistics.
const BPName = "fig4.bp"

// XObject is the shared object of Figure 4.
type XObject struct {
	X  *memory.Cell
	mu *locks.Mutex
}

// NewXObject returns an object with x = 0.
func NewXObject() *XObject {
	return &XObject{
		X:  memory.NewCell(nil, "o.x", 0),
		mu: locks.NewMutex("fig4.o"),
	}
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// Work is the length of foo's synchronized block, in busy-work
	// iterations (the f1()..f5() calls; default 50000).
	Work int

	// bp is the breakpoint handle, resolved once per run so the trigger
	// sites skip the per-call registry lookup.
	bp *core.Breakpoint
}

func (c *Config) work() int {
	if c.Work <= 0 {
		return 50000
	}
	return c.Work
}

// busy performs deterministic work standing in for f1()..f6().
func busy(n int) int64 {
	var acc int64 = 1
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// foo is thread1 of Figure 4: lines 1-9.
func foo(o *XObject, cfg *Config, sink *int64) bool {
	o.mu.With(func() { // line 1
		*sink += busy(cfg.work()) // lines 2-6: f1()..f5()
	}) // line 7
	if cfg.Breakpoint {
		// Line 8 side: the check must execute before line 10's write.
		cfg.bp.Trigger(core.NewConflictTrigger(BPName, o), true,
			core.Options{Timeout: cfg.Timeout})
	}
	if o.X.Load("fig4:8") == 0 { // line 8
		return true // line 9: ERROR
	}
	return false
}

// bar is thread2 of Figure 4: lines 10-13.
func bar(o *XObject, cfg *Config, sink *int64) {
	if cfg.Breakpoint {
		// Line 10 side: postponed until thread1 reaches line 8.
		cfg.bp.Trigger(core.NewConflictTrigger(BPName, o), false,
			core.Options{Timeout: cfg.Timeout})
	}
	o.X.Store("fig4:10", 1) // line 10
	o.mu.With(func() {      // line 11
		*sink += busy(cfg.work() / 100) // line 12: f6()
	}) // line 13
}

// Run executes Figure 4 once; an Exception status means ERROR was
// reached (the breakpoint's purpose).
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	cfg.bp = cfg.Engine.Breakpoint(BPName)
	o := NewXObject()
	var sink1, sink2 int64
	res := appkit.RunWithDeadline(60*time.Second, func() appkit.Result {
		errCh := make(chan bool, 1)
		done := make(chan struct{}, 1)
		go func() { errCh <- foo(o, &cfg, &sink1) }()
		go func() { bar(o, &cfg, &sink2); done <- struct{}{} }()
		hitError := <-errCh
		<-done
		if hitError {
			return appkit.Result{Status: appkit.Exception, Detail: "line 9: ERROR reached"}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPName).Hits() > 0
	return res
}

// StepProbability measures, over `runs` seeded random interleavings of
// the step-program version of Figure 4 (thread1: n steps then the read;
// thread2: the write then a short tail), the fraction in which the read
// executes before the write — the no-trigger hit probability of the
// section 3 model with m = 1.
func StepProbability(n, tail, runs int, seed0 int64) float64 {
	hits := sched.CountSchedules(seed0, runs, func() ([]*sched.Thread, func() bool) {
		x := 0
		sawZero := false
		t1 := sched.NewThread("foo")
		for i := 0; i < n; i++ {
			t1.AddStep(func() {}) // the synchronized block body
		}
		t1.AddStep(func() { sawZero = x == 0 }) // line 8
		t2 := sched.NewThread("bar")
		t2.AddStep(func() { x = 1 }) // line 10
		for i := 0; i < tail; i++ {
			t2.AddStep(func() {}) // lines 11-13
		}
		return []*sched.Thread{t1, t2}, func() bool { return sawZero }
	})
	return float64(hits) / float64(runs)
}
