package fig4

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestBreakpointMakesErrorCertain(t *testing.T) {
	// Paper Figure 4: with the breakpoint, ERROR is reached essentially
	// always.
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true, Timeout: 2 * time.Second})
		if r.Status != appkit.Exception || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointErrorIsRare(t *testing.T) {
	// thread2's write at line 10 runs at the start; thread1's read at
	// line 8 runs after a long block — the natural hit probability is
	// tiny.
	errors := 0
	for i := 0; i < 20; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e}).Status == appkit.Exception {
			errors++
		}
	}
	if errors > 4 {
		t.Fatalf("ERROR reached %d/20 without the breakpoint", errors)
	}
}

func TestStepProbabilityMatchesIntuition(t *testing.T) {
	// With a long thread1 prefix, the read-before-write interleaving is
	// rare; shortening the prefix raises the probability.
	long := StepProbability(200, 5, 400, 1)
	short := StepProbability(2, 5, 400, 1)
	if long >= short {
		t.Fatalf("probabilities inverted: long=%v short=%v", long, short)
	}
	if long > 0.01 {
		t.Fatalf("long-prefix probability too high: %v", long)
	}
	// Read-before-write for a 2-step prefix requires the first three
	// scheduling choices to pick thread1: p = (1/2)^3 = 0.125.
	if short < 0.06 || short > 0.25 {
		t.Fatalf("short-prefix probability implausible: %v (want ~0.125)", short)
	}
}

func TestBusyDeterministic(t *testing.T) {
	if busy(1000) != busy(1000) {
		t.Fatal("busy not deterministic")
	}
	if busy(10) == busy(11) {
		t.Fatal("busy ignores n")
	}
}
