package appkit

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		OK: "ok", Exception: "exception", Stall: "stall", TestFail: "test fail",
		Crash: "crash", LogCorrupt: "log corruption", LogOmission: "log omission",
		LogDisorder: "log disorder", Status(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if OK.Buggy() {
		t.Error("OK must not be buggy")
	}
	for _, s := range []Status{Exception, Stall, TestFail, Crash, LogCorrupt, LogOmission, LogDisorder} {
		if !s.Buggy() {
			t.Errorf("%v should be buggy", s)
		}
	}
}

func TestRunWithDeadlineCompletes(t *testing.T) {
	r := RunWithDeadline(time.Second, func() Result {
		return Result{Status: OK}
	})
	if r.Status != OK || r.Elapsed <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunWithDeadlineStall(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := RunWithDeadline(30*time.Millisecond, func() Result {
		<-block
		return Result{Status: OK}
	})
	if r.Status != Stall {
		t.Fatalf("status = %v, want stall", r.Status)
	}
	if r.Elapsed < 25*time.Millisecond {
		t.Fatalf("stall elapsed = %v", r.Elapsed)
	}
}

func TestRunWithDeadlinePanic(t *testing.T) {
	r := RunWithDeadline(time.Second, func() Result {
		panic("index out of range")
	})
	if r.Status != Exception || !strings.Contains(r.Detail, "index out of range") {
		t.Fatalf("result = %+v", r)
	}
}

func TestCapture(t *testing.T) {
	r := Capture(func() Result { return Result{Status: TestFail, Detail: "sum"} })
	if r.Status != TestFail {
		t.Fatalf("result = %+v", r)
	}
	r = Capture(func() Result { panic("boom") })
	if r.Status != Exception || r.Detail != "boom" {
		t.Fatalf("result = %+v", r)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Status: OK, Elapsed: time.Second}
	if !strings.Contains(r.String(), "ok") {
		t.Fatalf("String = %q", r.String())
	}
	r = Result{Status: Stall, Detail: "x", Elapsed: time.Second, BPHit: true}
	if !strings.Contains(r.String(), "stall: x") || !strings.Contains(r.String(), "bp=true") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for s := OK; s <= WorkerCrash; s++ {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %s -> %v", s, data, got)
		}
	}
	var bad Status
	if err := json.Unmarshal([]byte(`"not a status"`), &bad); err == nil {
		t.Fatal("unknown label should fail to unmarshal")
	}
}

func TestStatusClassification(t *testing.T) {
	for s := OK; s <= WorkerCrash; s++ {
		infra := s == TrialTimeout || s == WorkerCrash
		if s.Infrastructure() != infra {
			t.Fatalf("%v Infrastructure() = %v", s, s.Infrastructure())
		}
		buggy := s != OK && !infra
		if s.Buggy() != buggy {
			t.Fatalf("%v Buggy() = %v", s, s.Buggy())
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	want := Result{Status: Stall, Detail: "lost wakeup", Elapsed: 1500 * time.Millisecond, BPHit: true}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	// The wire format is the greppable flat object the checkpoint
	// journal stores.
	for _, frag := range []string{`"status":"stall"`, `"detail":"lost wakeup"`, `"elapsed_ns":1500000000`, `"bp_hit":true`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("wire form %s missing %s", data, frag)
		}
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
}

func TestSeededJitterIsDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		SeedJitter(seed)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = JitterDuration(time.Second)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded stream diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= time.Second {
			t.Fatalf("jitter %v outside [0, 1s)", a[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
	if JitterDuration(0) != 0 || JitterDuration(-time.Second) != 0 {
		t.Fatal("non-positive scale should yield zero jitter")
	}
}
