package appkit

import (
	"strings"
	"testing"
	"time"
)

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		OK: "ok", Exception: "exception", Stall: "stall", TestFail: "test fail",
		Crash: "crash", LogCorrupt: "log corruption", LogOmission: "log omission",
		LogDisorder: "log disorder", Status(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if OK.Buggy() {
		t.Error("OK must not be buggy")
	}
	for _, s := range []Status{Exception, Stall, TestFail, Crash, LogCorrupt, LogOmission, LogDisorder} {
		if !s.Buggy() {
			t.Errorf("%v should be buggy", s)
		}
	}
}

func TestRunWithDeadlineCompletes(t *testing.T) {
	r := RunWithDeadline(time.Second, func() Result {
		return Result{Status: OK}
	})
	if r.Status != OK || r.Elapsed <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunWithDeadlineStall(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	r := RunWithDeadline(30*time.Millisecond, func() Result {
		<-block
		return Result{Status: OK}
	})
	if r.Status != Stall {
		t.Fatalf("status = %v, want stall", r.Status)
	}
	if r.Elapsed < 25*time.Millisecond {
		t.Fatalf("stall elapsed = %v", r.Elapsed)
	}
}

func TestRunWithDeadlinePanic(t *testing.T) {
	r := RunWithDeadline(time.Second, func() Result {
		panic("index out of range")
	})
	if r.Status != Exception || !strings.Contains(r.Detail, "index out of range") {
		t.Fatalf("result = %+v", r)
	}
}

func TestCapture(t *testing.T) {
	r := Capture(func() Result { return Result{Status: TestFail, Detail: "sum"} })
	if r.Status != TestFail {
		t.Fatalf("result = %+v", r)
	}
	r = Capture(func() Result { panic("boom") })
	if r.Status != Exception || r.Detail != "boom" {
		t.Fatalf("result = %+v", r)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Status: OK, Elapsed: time.Second}
	if !strings.Contains(r.String(), "ok") {
		t.Fatalf("String = %q", r.String())
	}
	r = Result{Status: Stall, Detail: "x", Elapsed: time.Second, BPHit: true}
	if !strings.Contains(r.String(), "stall: x") || !strings.Contains(r.String(), "bp=true") {
		t.Fatalf("String = %q", r.String())
	}
}
