// Package appkit provides the shared vocabulary of the benchmark
// applications: run outcomes matching the error classes of the paper's
// Tables 1 and 2 (exception, stall, test failure, crash, log corruption,
// log omission, log disorder), stall detection by deadline, and panic
// capture.
//
// Every application package under internal/apps exposes a Run function
// returning a Result, so the harness can measure reproduction
// probability, runtime overhead, and mean-time-to-error uniformly.
package appkit

import (
	"fmt"
	"time"
)

// Status classifies the outcome of one application run.
type Status int

const (
	// OK: the run completed without observing the bug.
	OK Status = iota
	// Exception: the run panicked (Java exception analog).
	Exception
	// Stall: the run exceeded its deadline (deadlock or missed
	// notification).
	Stall
	// TestFail: the run completed but produced a wrong result.
	TestFail
	// Crash: the run hit a fatal error such as a nil dereference
	// (C/C++ program crash analog).
	Crash
	// LogCorrupt: interleaved/garbled log output (Apache bug #25520
	// analog).
	LogCorrupt
	// LogOmission: a log record was silently dropped (MySQL bug #791
	// analog).
	LogOmission
	// LogDisorder: log records appear out of order (MySQL bug #169
	// analog).
	LogDisorder
)

// String returns the outcome label used in result tables.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Exception:
		return "exception"
	case Stall:
		return "stall"
	case TestFail:
		return "test fail"
	case Crash:
		return "crash"
	case LogCorrupt:
		return "log corruption"
	case LogOmission:
		return "log omission"
	case LogDisorder:
		return "log disorder"
	default:
		return "unknown"
	}
}

// Buggy reports whether the status represents an observed bug.
func (s Status) Buggy() bool { return s != OK }

// Result is the outcome of one application run.
type Result struct {
	// Status classifies the run.
	Status Status
	// Detail is a human-readable elaboration (panic message, which
	// worker stalled, ...).
	Detail string
	// Elapsed is the run's wall-clock duration (stalled runs report
	// the deadline).
	Elapsed time.Duration
	// BPHit reports whether the run's concurrent breakpoint(s) were
	// hit.
	BPHit bool
}

// String formats the result compactly.
func (r Result) String() string {
	if r.Detail == "" {
		return fmt.Sprintf("%s (%.3fs, bp=%v)", r.Status, r.Elapsed.Seconds(), r.BPHit)
	}
	return fmt.Sprintf("%s: %s (%.3fs, bp=%v)", r.Status, r.Detail, r.Elapsed.Seconds(), r.BPHit)
}

// RunWithDeadline executes f on a fresh goroutine and waits up to
// deadline for it to finish. If f panics, the panic is captured as an
// Exception result; if the deadline expires first, a Stall result is
// returned and f's goroutine is abandoned (exactly how the paper detects
// stalls: "stalls due to missed notifications are detected by large
// timeouts").
func RunWithDeadline(deadline time.Duration, f func() Result) Result {
	start := time.Now()
	ch := make(chan Result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- Result{Status: Exception, Detail: fmt.Sprint(p)}
			}
		}()
		ch <- f()
	}()
	select {
	case r := <-ch:
		r.Elapsed = time.Since(start)
		return r
	case <-time.After(deadline):
		return Result{Status: Stall, Detail: "deadline exceeded", Elapsed: deadline}
	}
}

// Capture runs f and converts a panic into an Exception result; a normal
// return yields the given ok result.
func Capture(f func() Result) (res Result) {
	defer func() {
		if p := recover(); p != nil {
			res = Result{Status: Exception, Detail: fmt.Sprint(p)}
		}
	}()
	return f()
}
