// Package appkit provides the shared vocabulary of the benchmark
// applications: run outcomes matching the error classes of the paper's
// Tables 1 and 2 (exception, stall, test failure, crash, log corruption,
// log omission, log disorder), stall detection by deadline, and panic
// capture.
//
// Every application package under internal/apps exposes a Run function
// returning a Result, so the harness can measure reproduction
// probability, runtime overhead, and mean-time-to-error uniformly.
package appkit

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// Status classifies the outcome of one application run.
type Status int

const (
	// OK: the run completed without observing the bug.
	OK Status = iota
	// Exception: the run panicked (Java exception analog).
	Exception
	// Stall: the run exceeded its deadline (deadlock or missed
	// notification).
	Stall
	// TestFail: the run completed but produced a wrong result.
	TestFail
	// Crash: the run hit a fatal error such as a nil dereference
	// (C/C++ program crash analog).
	Crash
	// LogCorrupt: interleaved/garbled log output (Apache bug #25520
	// analog).
	LogCorrupt
	// LogOmission: a log record was silently dropped (MySQL bug #791
	// analog).
	LogOmission
	// LogDisorder: log records appear out of order (MySQL bug #169
	// analog).
	LogDisorder
	// TrialTimeout: the harness killed the trial at its per-trial
	// wall-clock deadline. This is an infrastructure outcome (the trial
	// never reported), not an observed bug: a deadlock the *application*
	// detects within its own StallAfter budget reports Stall instead.
	TrialTimeout
	// WorkerCrash: the trial's worker process died without reporting a
	// result (abnormal exit, killed, or garbled report). Infrastructure
	// outcome, not an observed bug.
	WorkerCrash
)

// String returns the outcome label used in result tables.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Exception:
		return "exception"
	case Stall:
		return "stall"
	case TestFail:
		return "test fail"
	case Crash:
		return "crash"
	case LogCorrupt:
		return "log corruption"
	case LogOmission:
		return "log omission"
	case LogDisorder:
		return "log disorder"
	case TrialTimeout:
		return "trial timeout"
	case WorkerCrash:
		return "worker crash"
	default:
		return "unknown"
	}
}

// statusNames maps every label back to its Status for deserialization.
var statusNames = func() map[string]Status {
	m := make(map[string]Status)
	for s := OK; s <= WorkerCrash; s++ {
		m[s.String()] = s
	}
	return m
}()

// ParseStatus inverts Status.String. Unknown labels report ok=false.
func ParseStatus(label string) (Status, bool) {
	s, ok := statusNames[label]
	return s, ok
}

// MarshalJSON encodes the status as its table label, so JSONL trial
// records stay greppable and stable across reorderings of the enum.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a status label.
func (s *Status) UnmarshalJSON(data []byte) error {
	var label string
	if err := json.Unmarshal(data, &label); err != nil {
		return err
	}
	v, ok := ParseStatus(label)
	if !ok {
		return fmt.Errorf("appkit: unknown status label %q", label)
	}
	*s = v
	return nil
}

// Infrastructure reports whether the status describes a harness-level
// failure (timed-out or crashed trial) rather than an application
// outcome. Infrastructure outcomes are retried by campaign supervisors;
// application outcomes are not.
func (s Status) Infrastructure() bool { return s == TrialTimeout || s == WorkerCrash }

// Buggy reports whether the status represents an observed bug.
// Infrastructure failures are not bugs: the trial produced no
// application verdict at all.
func (s Status) Buggy() bool { return s != OK && !s.Infrastructure() }

// Result is the outcome of one application run. It marshals to a flat
// JSON object (status as its label, elapsed in nanoseconds) so campaign
// workers can report it over a pipe and checkpoints can journal it.
type Result struct {
	// Status classifies the run.
	Status Status `json:"status"`
	// Detail is a human-readable elaboration (panic message, which
	// worker stalled, ...).
	Detail string `json:"detail,omitempty"`
	// Elapsed is the run's wall-clock duration (stalled runs report
	// the deadline).
	Elapsed time.Duration `json:"elapsed_ns"`
	// BPHit reports whether the run's concurrent breakpoint(s) were
	// hit.
	BPHit bool `json:"bp_hit"`
}

// String formats the result compactly.
func (r Result) String() string {
	if r.Detail == "" {
		return fmt.Sprintf("%s (%.3fs, bp=%v)", r.Status, r.Elapsed.Seconds(), r.BPHit)
	}
	return fmt.Sprintf("%s: %s (%.3fs, bp=%v)", r.Status, r.Detail, r.Elapsed.Seconds(), r.BPHit)
}

// RunWithDeadline executes f on a fresh goroutine and waits up to
// deadline for it to finish. If f panics, the panic is captured as an
// Exception result; if the deadline expires first, a Stall result is
// returned and f's goroutine is abandoned (exactly how the paper detects
// stalls: "stalls due to missed notifications are detected by large
// timeouts").
func RunWithDeadline(deadline time.Duration, f func() Result) Result {
	start := time.Now()
	ch := make(chan Result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- Result{Status: Exception, Detail: fmt.Sprint(p)}
			}
		}()
		ch <- f()
	}()
	select {
	case r := <-ch:
		r.Elapsed = time.Since(start)
		return r
	case <-time.After(deadline):
		return Result{Status: Stall, Detail: "deadline exceeded", Elapsed: deadline}
	}
}

// jitterState is the shared workload-jitter RNG state (splitmix64,
// advanced atomically so concurrent app goroutines draw independent
// values without a lock). Benchmark applications derive their simulated
// latency skews from this stream instead of wall-clock noise, so a
// campaign seeded with -seed replays the same jitter run-to-run.
var jitterState atomic.Uint64

func init() { jitterState.Store(uint64(time.Now().UnixNano()) | 1) }

// SeedJitter resets the workload-jitter RNG. The harness and the
// campaign worker call this with the per-trial seed derived from the
// campaign -seed, making trial workloads reproducible; unseeded
// processes start from wall-clock entropy.
func SeedJitter(seed int64) { jitterState.Store(streamOrigin(seed)) }

// streamOrigin maps a seed to the splitmix64 start state shared by the
// global jitter stream and every derived Stream, so "seeded from the
// appkit stream" means the same thing everywhere.
func streamOrigin(seed int64) uint64 { return uint64(seed)*2654435761 + 0x9e3779b97f4a7c15 }

// mix64 is the splitmix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jitterNext advances the splitmix64 stream one step.
func jitterNext() uint64 {
	return mix64(jitterState.Add(0x9e3779b97f4a7c15))
}

// JitterSeed draws one value from the shared jitter stream for seeding
// derived deterministic components (a chaos proxy's fault schedule, a
// load client's retry jitter), so everything a trial does descends from
// the single per-trial seed.
func JitterSeed() int64 { return int64(jitterNext()) }

// Stream is an independent, deterministic splitmix64 stream derived
// from an explicit seed. Unlike the process-global jitter stream it is
// not perturbed by unrelated goroutines, so two Streams built from the
// same seed produce identical sequences no matter what else the process
// is doing — the property the chaos layer's replayable fault schedules
// and the campaign's replayable retry backoff are built on. Draws are
// atomic, so one Stream may be shared across goroutines (the sequence
// as a whole stays deterministic; the per-goroutine interleaving does
// not, which is fine for jitter).
type Stream struct {
	state atomic.Uint64
}

// NewStream returns a deterministic stream for the seed.
func NewStream(seed int64) *Stream {
	s := &Stream{}
	s.state.Store(streamOrigin(seed))
	return s
}

// DeriveSeed maps (seed, ord) to the deterministic sub-seed for the
// ord-th component of a seeded system: pure in both arguments, so
// schedules indexed by an ordinal (the chaos proxy's per-connection
// plans, the load generator's per-client retry jitter) can be recomputed
// independently and in any order.
func DeriveSeed(seed int64, ord int64) int64 {
	return seed ^ int64(mix64(uint64(ord)+0x9e3779b97f4a7c15))
}

// DeriveStream returns the deterministic sub-stream for (seed, ord).
func DeriveStream(seed int64, ord int64) *Stream {
	return NewStream(DeriveSeed(seed, ord))
}

// Next advances the stream one step and returns the draw.
func (s *Stream) Next() uint64 {
	return mix64(s.state.Add(0x9e3779b97f4a7c15))
}

// Intn returns a draw in [0, n) (0 when n <= 0).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Next() % uint64(n))
}

// Float64 returns a draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Duration returns a draw in [0, scale) (zero when scale <= 0).
func (s *Stream) Duration(scale time.Duration) time.Duration {
	if scale <= 0 {
		return 0
	}
	return time.Duration(s.Next() % uint64(scale))
}

// JitterDuration returns a pseudo-random duration in [0, scale) from the
// seedable jitter stream (zero when scale <= 0).
func JitterDuration(scale time.Duration) time.Duration {
	if scale <= 0 {
		return 0
	}
	return time.Duration(jitterNext() % uint64(scale))
}

// Capture runs f and converts a panic into an Exception result; a normal
// return yields the given ok result.
func Capture(f func() Result) (res Result) {
	defer func() {
		if p := recover(); p != nil {
			res = Result{Status: Exception, Detail: fmt.Sprint(p)}
		}
	}()
	return f()
}
