package appkit

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the socket-serving kit shared by the benchmark
// applications that run as real network servers (httpd, mysql): a
// line-protocol accept loop with per-connection deadlines, accept-loop
// load shedding, and graceful drain. The applications own the protocol
// (the Handler); the kit owns the transport discipline, so every app
// server degrades the same way under the chaos layer's faults.

// LineHandler serves one request line from connection ordinal conn
// (1-based, accept order) and returns the response line. seq is the
// request ordinal within the connection (0-based).
type LineHandler func(conn, seq int, line string) string

// SocketServerConfig parameterizes a SocketServer.
type SocketServerConfig struct {
	// Handler serves each request line (required).
	Handler LineHandler
	// Addr is the listen address (default "127.0.0.1:0", an ephemeral
	// loopback port). Always-on deployments (cmd/cbserverd) pin it so
	// the served address survives restarts.
	Addr string
	// Shed, when non-nil, is consulted before serving each accepted
	// connection; a true verdict sheds it: the server writes
	// ShedResponse and closes instead of serving — accept-loop
	// degradation wired to the engine's overload water marks by the
	// app wrappers.
	Shed func() (reason string, shed bool)
	// OnShed, when non-nil, observes each shed connection's reason
	// (the app wrappers record a guard overload-shed incident).
	OnShed func(reason string)
	// ShedResponse is the line written to shed connections (default
	// "err overloaded").
	ShedResponse string
	// ConnTimeout bounds each read and write on a connection (default
	// 30s); an idle or wedged peer is disconnected, never accumulated.
	ConnTimeout time.Duration
	// DrainTimeout bounds Close's graceful drain (default 5s); live
	// connections still open at the bound are severed.
	DrainTimeout time.Duration
}

// SocketServer is a line-protocol TCP server on a loopback listener.
type SocketServer struct {
	cfg SocketServerConfig
	ln  net.Listener

	accepted atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64

	//cbvet:ignore rawsync guards server-kit connection bookkeeping, not an application lock in any modeled deadlock
	mu     sync.Mutex
	active map[net.Conn]struct{}
	closed bool

	acceptDone chan struct{}
	inflight   sync.WaitGroup
}

// StartSocketServer listens on cfg.Addr (default 127.0.0.1:0) and
// serves cfg.Handler.
func StartSocketServer(cfg SocketServerConfig) (*SocketServer, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("appkit: SocketServerConfig.Handler is required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ShedResponse == "" {
		cfg.ShedResponse = "err overloaded"
	}
	if cfg.ConnTimeout <= 0 {
		cfg.ConnTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("appkit: listen: %w", err)
	}
	s := &SocketServer{
		cfg:        cfg,
		ln:         ln,
		active:     make(map[net.Conn]struct{}),
		acceptDone: make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *SocketServer) Addr() string { return s.ln.Addr().String() }

// Accepted returns how many connections the server accepted.
func (s *SocketServer) Accepted() int64 { return s.accepted.Load() }

// Served returns how many request lines were answered.
func (s *SocketServer) Served() int64 { return s.served.Load() }

// ShedCount returns how many connections were shed at the accept loop.
func (s *SocketServer) ShedCount() int64 { return s.shed.Load() }

func (s *SocketServer) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain begins
		}
		ord := int(s.accepted.Add(1))
		if s.cfg.Shed != nil {
			if reason, shed := s.cfg.Shed(); shed {
				s.shed.Add(1)
				if s.cfg.OnShed != nil {
					s.cfg.OnShed(reason)
				}
				conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
				fmt.Fprintf(conn, "%s\n", s.cfg.ShedResponse)
				conn.Close()
				continue
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.active[conn] = struct{}{}
		s.inflight.Add(1)
		s.mu.Unlock()
		go s.serve(conn, ord)
	}
}

// serve answers request lines on one connection until EOF, a transport
// error, or a deadline.
func (s *SocketServer) serve(conn net.Conn, ord int) {
	defer func() {
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
		conn.Close()
		s.inflight.Done()
	}()
	rd := bufio.NewReader(conn)
	for seq := 0; ; seq++ {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ConnTimeout))
		line, err := rd.ReadString('\n')
		if err != nil {
			return
		}
		resp := s.cfg.Handler(ord, seq, strings.TrimRight(line, "\r\n"))
		s.served.Add(1)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
		if _, err := fmt.Fprintf(conn, "%s\n", resp); err != nil {
			return
		}
	}
}

// Close drains the server gracefully: stop accepting, wait up to
// DrainTimeout for in-flight connections to finish, then sever whatever
// remains. Idempotent.
func (s *SocketServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	<-s.acceptDone

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		// Drain bound hit: sever the stragglers. Handler goroutines
		// wedged inside the application (the deadlock reproductions do
		// exactly that) are abandoned with their connections closed.
		s.mu.Lock()
		for conn := range s.active {
			conn.Close()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(s.cfg.DrainTimeout):
		}
	}
	return err
}
