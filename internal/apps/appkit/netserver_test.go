package appkit

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func dialLine(t *testing.T, addr, line string, timeout time.Duration) (string, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

func TestSocketServerServesLines(t *testing.T) {
	s, err := StartSocketServer(SocketServerConfig{
		Handler: func(conn, seq int, line string) string {
			return fmt.Sprintf("conn=%d seq=%d %s", conn, seq, line)
		},
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()

	conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	rd := bufio.NewReader(conn)
	for seq := 0; seq < 3; seq++ {
		fmt.Fprintf(conn, "ping\n")
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("read %d: %v", seq, err)
		}
		want := fmt.Sprintf("conn=1 seq=%d ping\n", seq)
		if resp != want {
			t.Fatalf("resp = %q, want %q", resp, want)
		}
	}
	if s.Served() != 3 || s.Accepted() != 1 {
		t.Fatalf("served=%d accepted=%d, want 3/1", s.Served(), s.Accepted())
	}
}

func TestSocketServerConnOrdinals(t *testing.T) {
	s, err := StartSocketServer(SocketServerConfig{
		Handler: func(conn, _ int, _ string) string { return fmt.Sprintf("%d", conn) },
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := dialLine(t, s.Addr(), "hi", time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		seen[resp] = true
	}
	for _, want := range []string{"1", "2", "3"} {
		if !seen[want] {
			t.Fatalf("ordinal %s never handed to a connection; saw %v", want, seen)
		}
	}
}

func TestSocketServerShedding(t *testing.T) {
	var shedReasons []string
	//cbvet:ignore rawsync guards test-only bookkeeping that never participates in a modeled deadlock
	var mu sync.Mutex
	shed := false
	s, err := StartSocketServer(SocketServerConfig{
		Handler: func(_, _ int, _ string) string { return "ok" },
		Shed: func() (string, bool) {
			mu.Lock()
			defer mu.Unlock()
			if shed {
				return "over high water", true
			}
			return "", false
		},
		OnShed: func(reason string) {
			mu.Lock()
			shedReasons = append(shedReasons, reason)
			mu.Unlock()
		},
		ShedResponse: "503 shed",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer s.Close()

	if resp, err := dialLine(t, s.Addr(), "a", time.Second); err != nil || resp != "ok" {
		t.Fatalf("unshedded roundtrip = %q, %v", resp, err)
	}
	mu.Lock()
	shed = true
	mu.Unlock()
	conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || resp != "503 shed\n" {
		t.Fatalf("shed response = %q, %v; want 503 shed", resp, err)
	}
	// The shed connection is closed without serving.
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatalf("shed connection stayed open")
	}
	mu.Lock()
	defer mu.Unlock()
	if s.ShedCount() != 1 || len(shedReasons) != 1 || shedReasons[0] != "over high water" {
		t.Fatalf("shed count=%d reasons=%v, want 1 recorded shed", s.ShedCount(), shedReasons)
	}
}

func TestSocketServerGracefulClose(t *testing.T) {
	release := make(chan struct{})
	s, err := StartSocketServer(SocketServerConfig{
		Handler: func(_, _ int, _ string) string {
			<-release
			return "slow ok"
		},
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "work\n")
	time.Sleep(20 * time.Millisecond) // let the handler pick up the line

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	time.Sleep(20 * time.Millisecond)
	close(release) // in-flight request finishes during the drain window

	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || resp != "slow ok\n" {
		t.Fatalf("in-flight response = %q, %v; want it served through the drain", resp, err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	// New connections are refused after close.
	if _, err := dialLine(t, s.Addr(), "late", 200*time.Millisecond); err == nil {
		t.Fatalf("closed server accepted a connection")
	}
}

func TestSocketServerDrainBoundSevers(t *testing.T) {
	s, err := StartSocketServer(SocketServerConfig{
		Handler: func(_, _ int, _ string) string {
			select {} // wedged forever, like a deadlocked reproduction
		},
		DrainTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "wedge\n")
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("close took %s; the drain bound should have severed the wedged conn", elapsed)
	}
}

func TestStreamDeterminismAndBounds(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 64; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("draw %d: same seed gave %d vs %d", i, av, bv)
		}
	}
	s := NewStream(7)
	for i := 0; i < 256; i++ {
		if n := s.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn(10) = %d out of range", n)
		}
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f out of range", f)
		}
		if d := s.Duration(time.Second); d < 0 || d >= time.Second {
			t.Fatalf("Duration(1s) = %s out of range", d)
		}
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatalf("DeriveSeed is not a pure function")
	}
	seen := map[int64]int64{}
	for ord := int64(0); ord < 128; ord++ {
		s := DeriveSeed(7, ord)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ordinals %d and %d derived the same seed %d", prev, ord, s)
		}
		seen[s] = ord
	}
}

func TestStreamConcurrentDraws(t *testing.T) {
	s := NewStream(7)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Next()
			}
		}()
	}
	wg.Wait()
}
