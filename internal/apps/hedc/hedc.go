// Package hedc models "hedc", the ETH web-crawler/meta-search benchmark
// of the paper's evaluation (Table 1 rows "hedc": race1, race2). The
// paper's hedc fetches pages over the network; here the web is an
// in-memory page graph with simulated fetch latency, which preserves the
// property that matters for breakpoints: the racing operations arrive at
// random, jittered times, so a short pause sometimes misses the
// rendezvous (probability 0.87 at 100ms in the paper) while a long pause
// almost never does (1.0 at 1s) — the section 6.2 sweep.
//
//   - race1: the completed-task counter is updated read-modify-write
//     without synchronization; a lost update makes the crawler's final
//     count disagree with the number of pages crawled.
//   - race2: result publication uses a racy slot-index counter; two
//     workers can claim the same slot and one result is lost.
package hedc

import (
	"fmt"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPRace1 = "hedc.race1"
	BPRace2 = "hedc.race2"
)

// Page is one document in the synthetic web.
type Page struct {
	URL   string
	Links []string
	Size  int
}

// Web is an immutable in-memory page graph.
type Web struct {
	pages map[string]*Page
}

// BuildWeb generates a deterministic page tree with the given fanout and
// depth rooted at "http://root".
func BuildWeb(fanout, depth int) *Web {
	w := &Web{pages: make(map[string]*Page)}
	var build func(url string, d int)
	build = func(url string, d int) {
		p := &Page{URL: url, Size: 100 + len(url)*7}
		if d < depth {
			for i := 0; i < fanout; i++ {
				child := fmt.Sprintf("%s/%d", url, i)
				p.Links = append(p.Links, child)
			}
		}
		w.pages[url] = p
		for _, l := range p.Links {
			build(l, d+1)
		}
	}
	build("http://root", 0)
	return w
}

// Len returns the number of pages.
func (w *Web) Len() int { return len(w.pages) }

// Fetch simulates a network fetch: a deterministic-pseudo-random latency
// followed by the page lookup.
func (w *Web) Fetch(url string, jitter time.Duration) (*Page, bool) {
	if jitter > 0 {
		// Hash the URL into a latency in [jitter/2, jitter).
		h := uint64(14695981039346656037)
		for i := 0; i < len(url); i++ {
			h = (h ^ uint64(url[i])) * 1099511628211
		}
		d := jitter/2 + time.Duration(h%uint64(jitter/2))
		time.Sleep(d)
	}
	p, ok := w.pages[url]
	return p, ok
}

// Bug selects which race a run exercises.
type Bug int

// The hedc bugs of Table 1.
const (
	Race1 Bug = iota
	Race2
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	// Timeout is the breakpoint pause (the section 6.2 knob).
	Timeout time.Duration
	// Fanout and Depth shape the synthetic web (default 3 and 3: 40
	// pages).
	Fanout, Depth int
	// Jitter is the simulated per-fetch latency scale (default 2ms).
	Jitter time.Duration
	// Workers is the crawler pool size (default 2).
	Workers int
}

func (c *Config) fanout() int {
	if c.Fanout <= 0 {
		return 3
	}
	return c.Fanout
}

func (c *Config) depth() int {
	if c.Depth <= 0 {
		return 3
	}
	return c.Depth
}

func (c *Config) jitter() time.Duration {
	if c.Jitter <= 0 {
		return 2 * time.Millisecond
	}
	return c.Jitter
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

func bpName(b Bug) string {
	if b == Race1 {
		return BPRace1
	}
	return BPRace2
}

// Crawler crawls the web from the root with a worker pool, maintaining a
// locked visited set (correct) and racy statistics (the seeded bugs).
type Crawler struct {
	web     *Web
	cfg     *Config
	visited map[string]bool
	visMu   *locks.Mutex
	queue   chan string
	pending sync.WaitGroup

	completed *memory.Cell // race1: racy task counter
	slotIdx   *memory.Cell // race2: racy result slot index
	results   []*Page      // race2: slot per crawled page
	resMu     *locks.Mutex // guards the slot write itself (the bug is
	// the racy index, not the store; the lock keeps the Go program
	// well-defined while the duplicate-slot overwrite still loses a
	// result)
}

// NewCrawler builds a crawler over web.
func NewCrawler(web *Web, cfg *Config) *Crawler {
	sp := memory.NewSpace()
	return &Crawler{
		web:       web,
		cfg:       cfg,
		visited:   make(map[string]bool),
		visMu:     locks.NewMutex("hedc.visited"),
		resMu:     locks.NewMutex("hedc.results"),
		queue:     make(chan string, web.Len()+16),
		completed: memory.NewCell(sp, "hedc.completed", 0),
		slotIdx:   memory.NewCell(sp, "hedc.slotIdx", 0),
		results:   make([]*Page, web.Len()+16),
	}
}

// enqueue adds url if not yet visited (correctly locked).
func (c *Crawler) enqueue(url string) {
	var fresh bool
	c.visMu.With(func() {
		if !c.visited[url] {
			c.visited[url] = true
			fresh = true
		}
	})
	if fresh {
		c.pending.Add(1)
		c.queue <- url
	}
}

// work processes queue items until the queue closes, keeping a local
// task count that is merged into the shared total at the end.
func (c *Crawler) work(worker int) {
	local := int64(0)
	for url := range c.queue {
		page, ok := c.web.Fetch(url, c.cfg.jitter())
		if ok {
			for _, l := range page.Links {
				c.enqueue(l)
			}
			c.publish(page, worker)
			local++
		}
		c.pending.Done()
	}
	// Post-processing (result de-duplication, stats) takes a random,
	// worker-dependent time, so the final merges arrive skewed by up to
	// the fetch-jitter scale.
	skew := appkit.JitterDuration(c.cfg.jitter())
	time.Sleep(skew)
	c.mergeCount(worker, local)
}

// mergeCount is the race1 site: each worker merges its local count into
// the shared total with an unsynchronized read-modify-write, once, at
// the end of its crawl. The two merges arrive skewed by the crawl's
// fetch jitter, so a short breakpoint pause misses the rendezvous
// sometimes while a long one essentially never does — the section 6.2
// behaviour the paper reports for hedc.
func (c *Crawler) mergeCount(worker int, local int64) {
	v := c.completed.Load("hedc.go:merge.read")
	if c.cfg.Breakpoint && c.cfg.Bug == Race1 {
		c.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPRace1, c.completed), worker == 0,
			core.Options{Timeout: c.cfg.Timeout, Bound: 1})
	}
	c.completed.Store("hedc.go:merge.write", v+local)
}

// publish is the race2 site: claim a result slot with a racy index
// counter, then store the page there.
func (c *Crawler) publish(page *Page, worker int) {
	idx := c.slotIdx.Load("hedc.go:publish.read")
	if c.cfg.Breakpoint && c.cfg.Bug == Race2 {
		c.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPRace2, c.slotIdx), worker == 0,
			core.Options{Timeout: c.cfg.Timeout, Bound: 1})
	}
	c.slotIdx.Store("hedc.go:publish.write", idx+1)
	c.resMu.Lock()
	c.results[idx] = page
	c.resMu.Unlock()
}

// Crawl runs the crawl to completion (including the workers' final
// count merges) and returns the number of pages whose results were
// successfully published.
func (c *Crawler) Crawl() int {
	var workers sync.WaitGroup
	for w := 0; w < c.cfg.workers(); w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			c.work(w)
		}(w)
	}
	c.enqueue("http://root")
	c.pending.Wait()
	close(c.queue)
	workers.Wait()
	n := 0
	for _, r := range c.results {
		if r != nil {
			n++
		}
	}
	return n
}

// Completed returns the racy counter's final value.
func (c *Crawler) Completed() int64 { return c.completed.Load("check") }

// Run crawls the synthetic web and validates the statistics; a lost
// update in the selected counter is the manifested race.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	web := BuildWeb(cfg.fanout(), cfg.depth())
	res := appkit.RunWithDeadline(120*time.Second, func() appkit.Result {
		crawler := NewCrawler(web, &cfg)
		published := crawler.Crawl()
		total := web.Len()
		if cfg.Bug == Race1 && crawler.Completed() != int64(total) {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("completed counter lost updates: %d/%d", crawler.Completed(), total)}
		}
		if cfg.Bug == Race2 && published != total {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("results lost: %d/%d", published, total)}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(bpName(cfg.Bug)).Hits() > 0
	return res
}
