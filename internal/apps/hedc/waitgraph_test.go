package hedc

import (
	"testing"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/waitgraph"
)

// Negative control for the wait-graph supervisor: hedc's bugs are data
// races, not deadlocks — a supervised run must produce no deadlock
// cycles and never latch Confirmed.
func TestRacesProduceNoDeadlockCycles(t *testing.T) {
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{Interval: time.Millisecond})
	sup.Start()
	defer sup.Stop()

	for _, bug := range []Bug{Race1, Race2} {
		Run(Config{Engine: e, Bug: bug, Breakpoint: true,
			Timeout: 20 * time.Millisecond, Jitter: time.Millisecond})
	}
	// Let the supervisor look a few more times after the runs drain.
	for target := sup.Scans() + 5; sup.Scans() < target; {
		time.Sleep(time.Millisecond)
	}

	for _, r := range sup.Reports() {
		if r.Kind == waitgraph.ReportDeadlock {
			t.Fatalf("race run produced a deadlock cycle: %v", r)
		}
	}
	select {
	case <-sup.Confirmed():
		t.Fatal("Confirmed latched on a race-only run")
	default:
	}
}
