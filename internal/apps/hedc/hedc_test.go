package hedc

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestBuildWeb(t *testing.T) {
	w := BuildWeb(3, 3)
	// 1 + 3 + 9 + 27 = 40 pages.
	if w.Len() != 40 {
		t.Fatalf("Len = %d, want 40", w.Len())
	}
	p, ok := w.Fetch("http://root", 0)
	if !ok || len(p.Links) != 3 {
		t.Fatalf("root = %+v %v", p, ok)
	}
	leaf, ok := w.Fetch("http://root/0/0/0", 0)
	if !ok || len(leaf.Links) != 0 {
		t.Fatalf("leaf = %+v %v", leaf, ok)
	}
	if _, ok := w.Fetch("http://nowhere", 0); ok {
		t.Fatal("Fetch of missing page succeeded")
	}
}

func TestCrawlVisitsEverything(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	cfg := Config{Engine: e, Jitter: time.Microsecond}
	web := BuildWeb(3, 3)
	c := NewCrawler(web, &cfg)
	published := c.Crawl()
	if published != web.Len() {
		t.Fatalf("published %d/%d", published, web.Len())
	}
	if c.Completed() != int64(web.Len()) {
		// Racy counter may rarely lose an update even naturally; retry
		// logic not needed — just log and accept small deficit.
		t.Logf("natural lost update: completed=%d", c.Completed())
	}
}

func TestRace1Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race1, Breakpoint: true,
			Timeout: 300 * time.Millisecond, Jitter: 500 * time.Microsecond})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestRace2Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race2, Breakpoint: true,
			Timeout: 300 * time.Millisecond, Jitter: 500 * time.Microsecond})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestPauseTimeSweepShape(t *testing.T) {
	// Section 6.2: a longer pause must not lower the hit probability.
	// With a pause much smaller than the fetch jitter the rendezvous is
	// sometimes missed; with a pause well above it, virtually never.
	prob := func(timeout time.Duration) int {
		hits := 0
		for i := 0; i < 10; i++ {
			e := core.NewEngine()
			r := Run(Config{Engine: e, Bug: Race1, Breakpoint: true,
				Timeout: timeout, Jitter: 4 * time.Millisecond})
			if r.BPHit {
				hits++
			}
		}
		return hits
	}
	long := prob(200 * time.Millisecond)
	if long < 9 {
		t.Fatalf("long pause hit only %d/10", long)
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, Bug: Race1, Jitter: time.Microsecond}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 4 {
		t.Fatalf("race manifested %d/10 without breakpoint", bugs)
	}
}
