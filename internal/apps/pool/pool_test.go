package pool

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestBorrowReturnBasics(t *testing.T) {
	p := NewPool(2, quietCfg())
	a := p.Borrow()
	b := p.Borrow()
	if a == nil || b == nil || a == b {
		t.Fatal("borrow broken")
	}
	if p.Active() != 2 || p.FreeCount() != 0 {
		t.Fatalf("active=%d free=%d", p.Active(), p.FreeCount())
	}
	p.Return(a)
	if p.Active() != 1 || p.FreeCount() != 1 {
		t.Fatalf("after return: active=%d free=%d", p.Active(), p.FreeCount())
	}
	c := p.Borrow()
	if c != a {
		t.Fatal("returned object not reused")
	}
}

func TestBorrowBlocksUntilReturn(t *testing.T) {
	p := NewPool(1, quietCfg())
	a := p.Borrow()
	got := make(chan *Object, 1)
	go func() { got <- p.Borrow() }()
	select {
	case <-got:
		t.Fatal("borrow from exhausted pool returned immediately")
	case <-time.After(20 * time.Millisecond):
	}
	p.Return(a)
	select {
	case obj := <-got:
		if obj != a {
			t.Fatal("wrong object")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("borrower never woke after return")
	}
}

func TestMissedNotifyBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, StallAfter: 500 * time.Millisecond}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 3 {
		t.Fatalf("stall manifested %d/10 without breakpoint", bugs)
	}
}
