// Package pool models the Apache commons-pool object pool with the
// missed-notification stall of the paper's evaluation (Table 1 row
// "pool / missed-notify1", found with Methodology II). The borrow path
// tests the exhausted condition, releases the monitor, and later waits
// on the stale flag; the return path notifies outside the monitor. If
// the return's notification fires in the window between the borrower's
// test and its wait, the wakeup is lost and the borrower blocks forever.
package pool

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// BPMissedNotify identifies the breakpoint in engine statistics.
const BPMissedNotify = "pool.missed-notify1"

// Object is a pooled resource.
type Object struct {
	ID int
}

// Pool is a bounded object pool. The monitor protocol contains the
// seeded stale-condition bug described in the package comment.
type Pool struct {
	mu     *locks.Mutex
	cond   *locks.Cond
	free   []*Object
	active int
	max    int
	cfg    *Config
}

// NewPool returns a pool of max objects.
func NewPool(max int, cfg *Config) *Pool {
	mu := locks.NewMutex("pool.monitor")
	p := &Pool{mu: mu, cond: locks.NewCond("pool.available", mu), max: max, cfg: cfg}
	for i := 0; i < max; i++ {
		p.free = append(p.free, &Object{ID: i})
	}
	return p
}

// Borrow takes an object, blocking while the pool is exhausted. The
// exhausted test and the wait are separated by an unprotected window
// (the bug); the second-action side of the breakpoint sits in that
// window.
func (p *Pool) Borrow() *Object {
	// Resolve the handle once; the trigger site below runs per loop
	// iteration and skips the registry lookup.
	var bpNotify *core.Breakpoint
	if p.cfg != nil && p.cfg.Breakpoint {
		bpNotify = p.cfg.Engine.Breakpoint(BPMissedNotify)
	}
	for {
		var exhausted bool
		var obj *Object
		p.mu.LockAt("Pool.java:borrow.test")
		if p.active < p.max && len(p.free) > 0 {
			obj = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			p.active++
		} else {
			exhausted = true
		}
		p.mu.Unlock()
		if obj != nil {
			return obj
		}
		if exhausted {
			// The window: a return's notification arriving right here
			// is lost, and the wait below uses the stale flag.
			if bpNotify != nil {
				bpNotify.Trigger(core.NewNotifyTrigger(BPMissedNotify, p.cond), false,
					core.Options{Timeout: p.cfg.Timeout, Bound: 1})
			}
			p.mu.LockAt("Pool.java:borrow.wait")
			p.cond.Wait() // no re-test: waits on the stale condition
			p.mu.Unlock()
		}
	}
}

// Return puts an object back and notifies a waiting borrower — but the
// notification is sent outside the monitor (the first-action side of
// the breakpoint), so it can fire before a borrower's wait registers.
func (p *Pool) Return(obj *Object) {
	p.mu.LockAt("Pool.java:return")
	p.free = append(p.free, obj)
	p.active--
	p.mu.Unlock()
	notify := p.cond.Notify
	if p.cfg != nil && p.cfg.Breakpoint {
		p.cfg.Engine.TriggerHereAnd(core.NewNotifyTrigger(BPMissedNotify, p.cond), true,
			core.Options{Timeout: p.cfg.Timeout, Bound: 1}, notify)
	} else {
		notify()
	}
}

// Active returns the number of borrowed objects.
func (p *Pool) Active() int {
	var n int
	p.mu.With(func() { n = p.active })
	return n
}

// FreeCount returns the number of idle objects.
func (p *Pool) FreeCount() int {
	var n int
	p.mu.With(func() { n = len(p.free) })
	return n
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// StallAfter bounds stall detection (default 2s).
	StallAfter time.Duration
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

// Run exercises the missed-notification scenario: the pool is
// exhausted, a third borrower arrives, and a holder returns its object
// concurrently. A lost wakeup stalls the borrower.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	pool := NewPool(2, &cfg)
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		a := pool.Borrow()
		b := pool.Borrow()
		_ = b

		borrowed := make(chan *Object, 1)
		go func() { borrowed <- pool.Borrow() }()
		go func() {
			// Give the borrower time to reach the exhausted test.
			time.Sleep(time.Millisecond)
			pool.Return(a)
		}()
		obj := <-borrowed
		if obj == nil {
			return appkit.Result{Status: appkit.TestFail, Detail: "nil object borrowed"}
		}
		return appkit.Result{Status: appkit.OK}
	})
	if res.Status == appkit.Stall {
		res.Detail = fmt.Sprintf("borrower stalled waiting on %q", "pool.available")
	}
	res.BPHit = cfg.Engine.Stats(BPMissedNotify).Hits() > 0
	return res
}
