package stringbuffer

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestBufferBasics(t *testing.T) {
	b := New("b", "hello")
	if b.Length() != 5 {
		t.Fatalf("Length = %d", b.Length())
	}
	dst := make([]byte, 5)
	b.GetChars(0, 5, dst)
	if string(dst) != "hello" {
		t.Fatalf("GetChars = %q", dst)
	}
	b.AppendString(" world")
	if b.String() != "hello world" {
		t.Fatalf("String = %q", b.String())
	}
	b.SetLength(5)
	if b.String() != "hello" {
		t.Fatalf("after SetLength: %q", b.String())
	}
	b.SetLength(7)
	if b.Length() != 7 {
		t.Fatalf("zero-extend failed: %d", b.Length())
	}
}

func TestGetCharsOutOfRangePanics(t *testing.T) {
	b := New("b", "ab")
	defer func() {
		if p := recover(); p == nil || !strings.Contains(p.(string), "StringIndexOutOfBounds") {
			t.Fatalf("panic = %v", p)
		}
	}()
	b.GetChars(0, 3, make([]byte, 3))
}

func TestSetLengthNegativePanics(t *testing.T) {
	b := New("b", "ab")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative length")
		}
	}()
	b.SetLength(-1)
}

func TestSequentialAppendIsCorrect(t *testing.T) {
	sb := New("sb", "abc")
	dst := New("dst", "")
	dst.Append(sb, nil)
	if dst.String() != "abc" {
		t.Fatalf("Append result = %q", dst.String())
	}
}

func TestBreakpointReproducesException(t *testing.T) {
	// Paper Table 1: stringbuffer atomicity1 -> exception with
	// probability 1.00.
	hits := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status == appkit.Exception {
			hits++
			if !r.BPHit {
				t.Fatalf("exception without breakpoint hit: %s", r)
			}
			if !strings.Contains(r.Detail, "StringIndexOutOfBounds") {
				t.Fatalf("wrong exception: %s", r.Detail)
			}
		}
	}
	if hits != 10 {
		t.Fatalf("exception reproduced %d/10 times, want 10/10", hits)
	}
}

func TestWithoutBreakpointUsuallyOK(t *testing.T) {
	// The natural race window is a few instructions; without the
	// breakpoint the run should almost always complete OK.
	bugs := 0
	for i := 0; i < 20; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e}).Status != appkit.OK {
			bugs++
		}
	}
	if bugs > 5 {
		t.Fatalf("bug manifested %d/20 times without breakpoint", bugs)
	}
}

func TestRunDefaultEngine(t *testing.T) {
	r := Run(Config{Payload: 8})
	_ = r // must not panic or hang; status depends on schedule
}

func TestAppendAtomicFixSurvivesTheScenario(t *testing.T) {
	// The regression-test story: after the fix, the same concurrent
	// scenario never throws, even with the breakpoint machinery active.
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		cfg := &Config{Engine: e, Breakpoint: true, Timeout: 20 * time.Millisecond}
		sb := New("sb", "hello world")
		dst := New("dst", "")
		errCh := make(chan any, 2)
		go func() {
			defer func() { errCh <- recover() }()
			dst.AppendAtomic(sb, cfg)
		}()
		go func() {
			defer func() { errCh <- recover() }()
			e.TriggerHereAnd(core.NewAtomicityTrigger(BreakpointName+".fixed", sb), true,
				core.Options{Timeout: 20 * time.Millisecond}, func() { sb.SetLength(0) })
		}()
		for j := 0; j < 2; j++ {
			if p := <-errCh; p != nil {
				t.Fatalf("run %d: fixed append still throws: %v", i, p)
			}
		}
	}
}
