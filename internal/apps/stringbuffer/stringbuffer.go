// Package stringbuffer reproduces the classic atomicity violation in
// java.lang.StringBuffer.append (Figure 3 of the paper): append(sb)
// reads sb's length (line 444) and then calls sb.getChars(0, len, ...)
// (line 449) under separate acquisitions of sb's monitor. A concurrent
// sb.setLength(0) (line 239) between the two calls makes len stale and
// getChars throws StringIndexOutOfBoundsException.
//
// The breakpoint (239, 449, t1.sb == t2.this) — setLength ordered before
// getChars while the appender sits between its two reads — makes the
// exception deterministic (Table 1 row "stringbuffer / atomicity1 /
// exception").
package stringbuffer

import (
	"fmt"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// BreakpointName identifies the atomicity breakpoint in engine
// statistics.
const BreakpointName = "stringbuffer.atomicity1"

// Buffer is a synchronized string buffer: every public method holds the
// buffer's monitor, exactly like java.lang.StringBuffer, so each method
// is individually atomic but sequences of methods are not.
type Buffer struct {
	mu   *locks.Mutex
	data []byte
}

// New returns a buffer initialized with s.
func New(name, s string) *Buffer {
	return &Buffer{mu: locks.NewMutex(name), data: []byte(s)}
}

// Length returns the current length (synchronized; Figure 3 line 143).
func (b *Buffer) Length() int {
	b.mu.LockAt("StringBuffer.java:143")
	defer b.mu.Unlock()
	return len(b.data)
}

// GetChars copies [start, end) into dst (synchronized; Figure 3 line
// 322). Like the Java method it panics when end exceeds the current
// length — the manifestation of the atomicity violation.
func (b *Buffer) GetChars(start, end int, dst []byte) {
	b.mu.LockAt("StringBuffer.java:322")
	defer b.mu.Unlock()
	if start < 0 || end > len(b.data) || start > end {
		panic(fmt.Sprintf("StringIndexOutOfBounds: srcEnd=%d length=%d", end, len(b.data)))
	}
	copy(dst, b.data[start:end])
}

// SetLength truncates or zero-extends the buffer (synchronized; Figure 3
// line 239).
func (b *Buffer) SetLength(n int) {
	b.mu.LockAt("StringBuffer.java:239")
	defer b.mu.Unlock()
	b.setLengthLocked(n)
}

func (b *Buffer) setLengthLocked(n int) {
	if n < 0 {
		panic("negative length")
	}
	for len(b.data) < n {
		b.data = append(b.data, 0)
	}
	b.data = b.data[:n]
}

// AppendString appends a plain string (synchronized).
func (b *Buffer) AppendString(s string) {
	b.mu.With(func() { b.data = append(b.data, s...) })
}

// String returns the buffer contents (synchronized).
func (b *Buffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.data)
}

// Append appends sb's contents (Figure 3 line 437). The length read
// (line 444) and the character copy (line 449) acquire sb's monitor
// separately: the atomicity bug. cfg carries the breakpoint engine; when
// breakpoints are enabled, the second side of the (239, 449) breakpoint
// sits between the two acquisitions.
func (b *Buffer) Append(sb *Buffer, cfg *Config) {
	ln := sb.Length() // line 444
	if cfg != nil && cfg.Breakpoint {
		cfg.Engine.TriggerHere(core.NewAtomicityTrigger(BreakpointName, sb), false,
			core.Options{Timeout: cfg.Timeout})
	}
	tmp := make([]byte, ln)
	sb.GetChars(0, ln, tmp) // line 449 — panics if len is stale
	b.mu.With(func() { b.data = append(b.data, tmp...) })
}

// AppendAtomic is the repaired append: it holds sb's monitor across the
// length read and the character copy, so no setLength can interleave.
// With the fix in place the (239, 449) breakpoint can still be hit, but
// hitting it no longer produces the exception — which is exactly what
// the paper's regression-test use case checks for after a fix.
func (b *Buffer) AppendAtomic(sb *Buffer, cfg *Config) {
	sb.mu.LockAt("StringBuffer.java:appendAtomic")
	ln := len(sb.data)
	if cfg != nil && cfg.Breakpoint {
		// The breakpoint site remains, but the monitor is held: the
		// interleaving the breakpoint asks for is no longer feasible,
		// so the trigger times out (the local state can still be
		// inspected by tooling).
		cfg.Engine.TriggerHere(core.NewAtomicityTrigger(BreakpointName+".fixed", sb), false,
			core.Options{Timeout: cfg.Timeout})
	}
	tmp := make([]byte, ln)
	copy(tmp, sb.data[:ln])
	sb.mu.Unlock()
	b.mu.With(func() { b.data = append(b.data, tmp...) })
}

// Config parameterizes a run.
type Config struct {
	// Engine is the breakpoint engine (required when Breakpoint).
	Engine *core.Engine
	// Breakpoint inserts the (239, 449) concurrent breakpoint.
	Breakpoint bool
	// Timeout is the breakpoint pause time (zero = engine default).
	Timeout time.Duration
	// Payload sizes the shared buffer (default 64 characters).
	Payload int
}

func (c *Config) payload() string {
	n := c.Payload
	if n <= 0 {
		n = 64
	}
	return strings.Repeat("x", n)
}

// Run executes the two-thread append/setLength scenario once and reports
// whether the atomicity violation manifested (Exception) or not (OK).
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	sb := New("sb", cfg.payload())
	dst := New("dst", "")

	res := appkit.RunWithDeadline(30*time.Second, func() appkit.Result {
		errCh := make(chan any, 2)
		run := func(f func()) {
			go func() {
				defer func() { errCh <- recover() }()
				f()
			}()
		}
		run(func() { dst.Append(sb, &cfg) })
		run(func() {
			if cfg.Breakpoint {
				// First-action side: setLength's truncation runs before
				// the appender's getChars.
				cfg.Engine.TriggerHereAnd(core.NewAtomicityTrigger(BreakpointName, sb), true,
					core.Options{Timeout: cfg.Timeout}, func() { sb.SetLength(0) })
			} else {
				sb.SetLength(0)
			}
		})
		for i := 0; i < 2; i++ {
			if p := <-errCh; p != nil {
				return appkit.Result{Status: appkit.Exception, Detail: fmt.Sprint(p)}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BreakpointName).Hits() > 0
	return res
}
