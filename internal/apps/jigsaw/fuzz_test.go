package jigsaw

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzParseRequest hardens the HTTP request parser: arbitrary bytes must
// parse or error, never panic, and accepted requests must be internally
// consistent.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET / HTTP/1.0\r\n\r\n",
		"POST /p HTTP/1.1\r\nConnection: close\r\n\r\n",
		"HEAD /h HTTP/1.1\r\nA:B\r\n\r\n",
		"",
		"\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\nno-colon\n\n",
		"BREW /pot HTCPCP/1.0\r\n\r\n",
		strings.Repeat("A", 1000) + "\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		req, err := ParseRequest(bufio.NewReader(strings.NewReader(raw)))
		if err != nil {
			return
		}
		if req.Method == "" || req.Path == "" || req.Proto == "" {
			t.Fatalf("accepted request with empty fields: %+v from %q", req, raw)
		}
		if req.Headers == nil {
			t.Fatal("accepted request with nil headers")
		}
		_ = req.KeepAlive() // must not panic for any accepted request
	})
}
