package jigsaw

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/waitgraph"
)

// The Figure 2 deadlock (killClients vs clientConnectionFinished) must
// show up as a wait-graph cycle naming the factory monitor, the csList
// monitor, and the paper's source lines — confirmed well before the
// run's stall deadline.
func TestDeadlock1ConfirmedByWaitGraph(t *testing.T) {
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{Interval: time.Millisecond})
	sup.Start()
	defer sup.Stop()

	const stallAfter = 1500 * time.Millisecond
	start := time.Now()
	resCh := make(chan appkit.Result, 1)
	go func() {
		resCh <- Run(Config{Engine: e, Bug: Deadlock1, Breakpoint: true,
			Timeout: 2 * time.Second, StallAfter: stallAfter})
	}()

	select {
	case <-sup.Confirmed():
	case <-time.After(10 * time.Second):
		t.Fatal("wait graph never confirmed the jigsaw deadlock")
	}
	confirmAt := time.Since(start)
	if confirmAt > stallAfter/2 {
		t.Fatalf("confirmation took %v, not well before the %v stall deadline", confirmAt, stallAfter)
	}

	var cycle *waitgraph.Report
	for i, r := range sup.Reports() {
		for _, l := range r.Locks {
			if l == "jigsaw.factory" {
				cycle = &sup.Reports()[i]
			}
		}
	}
	if cycle == nil {
		t.Fatalf("no report names jigsaw.factory: %v", sup.Reports())
	}
	if cycle.Kind != waitgraph.ReportDeadlock {
		t.Fatalf("kind = %s", cycle.Kind)
	}
	if len(cycle.GIDs) != 2 {
		t.Fatalf("cycle gids = %v, want 2 goroutines", cycle.GIDs)
	}
	locks := strings.Join(cycle.Locks, ",")
	if !strings.Contains(locks, "jigsaw.factory") || !strings.Contains(locks, "jigsaw.csList") {
		t.Fatalf("cycle locks = %v", cycle.Locks)
	}
	sites := strings.Join(cycle.Sites, ",")
	if !strings.Contains(sites, "SocketClientFactory.java:574") ||
		!strings.Contains(sites, "SocketClientFactory.java:872") {
		t.Fatalf("cycle sites = %v", cycle.Sites)
	}

	if res := <-resCh; res.Status != appkit.Stall {
		t.Fatalf("repro status = %v, want stall", res.Status)
	}
}
