package jigsaw

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"cbreak/internal/locks"
)

// This file gives the Jigsaw model a real protocol surface: an
// HTTP/1.0-and-1.1 request parser, response writer, and a per-connection
// serve loop over net.Pipe connections, so the harness drives the
// factory the way the paper's harness drove Jigsaw — "multiple clients
// making simultaneous web page requests and sending administrative
// commands".

// HTTPRequest is a parsed request line plus headers.
type HTTPRequest struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
}

// KeepAlive reports whether the connection should stay open after this
// request (HTTP/1.1 default, or an explicit Connection header).
func (r HTTPRequest) KeepAlive() bool {
	switch strings.ToLower(r.Headers["connection"]) {
	case "keep-alive":
		return true
	case "close":
		return false
	}
	return r.Proto == "HTTP/1.1"
}

// ParseRequest reads one request head from r.
func ParseRequest(br *bufio.Reader) (HTTPRequest, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return HTTPRequest{}, err
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) != 3 {
		return HTTPRequest{}, fmt.Errorf("malformed request line %q", strings.TrimSpace(line))
	}
	req := HTTPRequest{Method: parts[0], Path: parts[1], Proto: parts[2],
		Headers: make(map[string]string)}
	if req.Method != "GET" && req.Method != "HEAD" && req.Method != "POST" {
		return HTTPRequest{}, fmt.Errorf("unsupported method %q", req.Method)
	}
	if !strings.HasPrefix(req.Proto, "HTTP/1.") {
		return HTTPRequest{}, fmt.Errorf("unsupported protocol %q", req.Proto)
	}
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return HTTPRequest{}, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return req, nil
		}
		k, v, ok := strings.Cut(h, ":")
		if !ok {
			return HTTPRequest{}, fmt.Errorf("malformed header %q", h)
		}
		req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
}

// WriteResponse writes a status line, minimal headers, and the body.
func WriteResponse(w io.Writer, status int, body string, keepAlive bool) error {
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	_, err := fmt.Fprintf(w, "HTTP/1.1 %d %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s",
		status, statusText(status), len(body), conn, body)
	return err
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 400:
		return "Bad Request"
	default:
		return "Status"
	}
}

// ServeConn runs the per-connection loop: parse, dispatch to the
// factory, respond, repeat while keep-alive. worker tags the handling
// goroutine for the seeded races.
func (f *Factory) ServeConn(conn net.Conn, worker int) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := ParseRequest(br)
		if err != nil {
			if err != io.EOF {
				WriteResponse(conn, 400, err.Error()+"\n", false)
			}
			return
		}
		if req.Path == "/admin/killClients" {
			n := f.KillClients()
			WriteResponse(conn, 200, "killed "+strconv.Itoa(n)+"\n", req.KeepAlive())
		} else {
			resp := f.Serve(Request{Path: req.Path, Client: worker}, worker)
			f.LogAccess(Request{Path: req.Path, Client: worker})
			WriteResponse(conn, resp.Status, resp.Body, req.KeepAlive())
		}
		if !req.KeepAlive() {
			return
		}
	}
}

// HTTPClient issues requests over a connection and parses responses.
type HTTPClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// NewHTTPClient wraps a connection.
func NewHTTPClient(conn net.Conn) *HTTPClient {
	return &HTTPClient{conn: conn, br: bufio.NewReader(conn)}
}

// Get issues a GET and returns the status code and body.
func (c *HTTPClient) Get(path string, keepAlive bool) (int, string, error) {
	connHdr := "close"
	if keepAlive {
		connHdr = "keep-alive"
	}
	if _, err := fmt.Fprintf(c.conn, "GET %s HTTP/1.1\r\nHost: jigsaw\r\nConnection: %s\r\n\r\n",
		path, connHdr); err != nil {
		return 0, "", err
	}
	status := 0
	line, err := c.br.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	parts := strings.Fields(line)
	if len(parts) < 2 {
		return 0, "", fmt.Errorf("malformed status line %q", line)
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, "", err
	}
	length := -1
	for {
		h, err := c.br.ReadString('\n')
		if err != nil {
			return 0, "", err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if k, v, ok := strings.Cut(h, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			length, _ = strconv.Atoi(strings.TrimSpace(v))
		}
	}
	if length < 0 {
		return status, "", fmt.Errorf("missing Content-Length")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, "", err
	}
	return status, string(body), nil
}

// Close closes the underlying connection.
func (c *HTTPClient) Close() error { return c.conn.Close() }

// ServeHTTPLoad drives the factory with `clients` concurrent HTTP
// clients issuing `requests` keep-alive GETs each over in-memory
// connections, returning the number of 200 responses observed.
func (f *Factory) ServeHTTPLoad(clients, requests int) (int, error) {
	var ok int
	var firstErr error
	mu := locks.NewMutex("jigsaw.http.results")
	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		clientEnd, serverEnd := net.Pipe()
		go f.ServeConn(serverEnd, cid)
		wg.Add(1)
		go func(cid int, conn net.Conn) {
			defer wg.Done()
			c := NewHTTPClient(conn)
			defer c.Close()
			for i := 0; i < requests; i++ {
				status, body, err := c.Get(fmt.Sprintf("/page/%d-%d", cid, i), i < requests-1)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil && status == 200 && strings.Contains(body, "/page/") {
					ok++
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(cid, clientEnd)
	}
	wg.Wait()
	return ok, firstErr
}
