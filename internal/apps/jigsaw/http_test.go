package jigsaw

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, raw string) (HTTPRequest, error) {
	t.Helper()
	return ParseRequest(bufio.NewReader(strings.NewReader(raw)))
}

func TestParseRequestBasics(t *testing.T) {
	req, err := parse(t, "GET /index.html HTTP/1.1\r\nHost: jigsaw\r\nX-Test: 1\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["host"] != "jigsaw" || req.Headers["x-test"] != "1" {
		t.Fatalf("headers = %v", req.Headers)
	}
	if !req.KeepAlive() {
		t.Fatal("HTTP/1.1 should default to keep-alive")
	}
}

func TestParseRequestKeepAliveRules(t *testing.T) {
	r10, _ := parse(t, "GET / HTTP/1.0\r\n\r\n")
	if r10.KeepAlive() {
		t.Fatal("HTTP/1.0 default should close")
	}
	r10ka, _ := parse(t, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
	if !r10ka.KeepAlive() {
		t.Fatal("explicit keep-alive ignored")
	}
	r11c, _ := parse(t, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
	if r11c.KeepAlive() {
		t.Fatal("explicit close ignored")
	}
}

func TestParseRequestErrors(t *testing.T) {
	for _, raw := range []string{
		"GARBAGE\r\n\r\n",
		"BREW /pot HTTP/1.1\r\n\r\n",
		"GET / SPDY/3\r\n\r\n",
		"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
	} {
		if _, err := parse(t, raw); err == nil {
			t.Errorf("request %q parsed", raw)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	f := NewFactory(2, quietCfg())
	clientEnd, serverEnd := net.Pipe()
	go f.ServeConn(serverEnd, 0)
	c := NewHTTPClient(clientEnd)
	defer c.Close()

	status, body, err := c.Get("/hello", true)
	if err != nil || status != 200 || !strings.Contains(body, "/hello") {
		t.Fatalf("GET: %d %q %v", status, body, err)
	}
	// Keep-alive: a second request on the same connection.
	status, _, err = c.Get("/again", false)
	if err != nil || status != 200 {
		t.Fatalf("second GET: %d %v", status, err)
	}
	if f.requestsServed.Load("t") != 2 {
		t.Fatalf("served = %d", f.requestsServed.Load("t"))
	}
	if len(f.accessLog) != 2 {
		t.Fatalf("access log = %v", f.accessLog)
	}
}

func TestHTTPAdminKillClients(t *testing.T) {
	f := NewFactory(3, quietCfg())
	clientEnd, serverEnd := net.Pipe()
	go f.ServeConn(serverEnd, 0)
	c := NewHTTPClient(clientEnd)
	defer c.Close()
	status, body, err := c.Get("/admin/killClients", false)
	if err != nil || status != 200 || !strings.Contains(body, "killed 3") {
		t.Fatalf("admin: %d %q %v", status, body, err)
	}
}

func TestHTTPMalformedGets400(t *testing.T) {
	f := NewFactory(1, quietCfg())
	clientEnd, serverEnd := net.Pipe()
	go f.ServeConn(serverEnd, 0)
	defer clientEnd.Close()
	clientEnd.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := clientEnd.Write([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := clientEnd.Read(buf)
	if !strings.Contains(string(buf[:n]), "400") {
		t.Fatalf("response = %q", buf[:n])
	}
}

func TestServeHTTPLoad(t *testing.T) {
	f := NewFactory(4, quietCfg())
	ok, err := f.ServeHTTPLoad(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok != 15 {
		t.Fatalf("ok responses = %d, want 15", ok)
	}
	if got := f.requestsServed.Load("t"); got != 15 {
		t.Fatalf("served = %d", got)
	}
}
