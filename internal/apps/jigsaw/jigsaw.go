// Package jigsaw models W3C's Jigsaw web server as evaluated in the
// paper (Table 1 rows "jigsaw"): a connection factory managing socket
// clients, driven by a harness that simulates concurrent page requests
// and administrative commands. Five bugs are seeded, matching the
// paper's rows:
//
//   - deadlock1 — the Figure 2 deadlock: killClients holds the factory
//     monitor (line 867) and acquires csList (line 872), while
//     clientConnectionFinished holds csList (line 623) and calls
//     decrIdleCount, which needs the factory monitor (line 574).
//   - deadlock2 — the access logger's lock crosses the factory monitor
//     on the log-vs-shutdown paths.
//   - missed-notify1 — the idle-client reaper's lost wakeup (found with
//     Methodology II in the paper).
//   - race1 — the idle-count bookkeeping is a racy read-modify-write; a
//     lost decrement leaves the shutdown barrier waiting for an idle
//     count that never reaches zero: a stall.
//   - race2 — the requests-served statistic loses updates (no visible
//     error beyond a wrong count).
package jigsaw

import (
	"fmt"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPDeadlock1    = "jigsaw.deadlock1"
	BPDeadlock2    = "jigsaw.deadlock2"
	BPMissedNotify = "jigsaw.missed-notify1"
	BPRace1        = "jigsaw.race1"
	BPRace2        = "jigsaw.race2"
)

// Request is an incoming HTTP-ish request.
type Request struct {
	Path   string
	Client int
}

// Response is the server's reply.
type Response struct {
	Status int
	Body   string
}

// SocketClient is one pooled connection handler.
type SocketClient struct {
	ID   int
	idle bool
}

// ClientList is the csList of Figure 2: the factory's client registry
// with its own monitor.
type ClientList struct {
	mu      *locks.Mutex
	clients []*SocketClient
}

func newClientList() *ClientList {
	return &ClientList{mu: locks.NewMutex("jigsaw.csList")}
}

// Factory is the SocketClientFactory: the paper's deadlock participant.
type Factory struct {
	mu     *locks.Mutex // the factory monitor ("this" of Figure 2)
	csList *ClientList

	logMu     *locks.Mutex // access logger lock (deadlock2 partner)
	accessLog []string

	idleCount      *memory.Cell // race1: racy idle bookkeeping
	requestsServed *memory.Cell // race2: racy statistics

	reapCond *locks.Cond // missed-notify1: reaper wakeup
	reaped   int

	cfg *Config
}

// NewFactory returns a factory with n idle clients registered.
func NewFactory(n int, cfg *Config) *Factory {
	sp := memory.NewSpace()
	mu := locks.NewMutex("jigsaw.factory")
	f := &Factory{
		mu:             mu,
		csList:         newClientList(),
		logMu:          locks.NewMutex("jigsaw.logger"),
		idleCount:      memory.NewCell(sp, "jigsaw.idleCount", 0),
		requestsServed: memory.NewCell(sp, "jigsaw.requestsServed", 0),
		cfg:            cfg,
	}
	f.reapCond = locks.NewCond("jigsaw.reap", mu)
	for i := 0; i < n; i++ {
		f.csList.clients = append(f.csList.clients, &SocketClient{ID: i, idle: true})
	}
	//cbvet:ignore conflicts single-threaded constructor store; the racy idleCount sites are the reproduced Figure 2 bug
	f.idleCount.Store("init", int64(n))
	return f
}

// decrIdleCount (Figure 2 line 574): the factory monitor guards the
// client bookkeeping, but the counter update itself is a racy
// read-modify-write performed outside it (race1) — the unsynchronized
// statistics path of the original bug.
func (f *Factory) decrIdleCount(worker int) {
	f.mu.LockAt("SocketClientFactory.java:574")
	f.mu.Unlock()
	v := f.idleCount.Load("jigsaw.go:idle.read")
	if f.cfg.bug(Race1) {
		f.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPRace1, f.idleCount), worker == 0,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	f.idleCount.Store("jigsaw.go:idle.write", v-1)
}

// incrIdleCount restores an idle slot (same racy pattern; the second
// side of race1 when two finishing connections interleave).
func (f *Factory) incrIdleCount(worker int) {
	v := f.idleCount.Load("jigsaw.go:idle.read2")
	if f.cfg.bug(Race1) {
		f.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPRace1, f.idleCount), worker != 0,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	f.idleCount.Store("jigsaw.go:idle.write2", v+1)
}

// ClientConnectionFinished (Figure 2 line 618): csList monitor (623),
// then decrIdleCount's factory monitor (574) — one side of deadlock1.
func (f *Factory) ClientConnectionFinished(worker int) {
	f.csList.mu.LockAt("SocketClientFactory.java:623")
	defer f.csList.mu.Unlock()
	if f.cfg.bug(Deadlock1) {
		f.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock1, f.csList.mu, f.mu), true,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: deadlock1 of the paper's Jigsaw study (line 626 -> 574)
	f.decrIdleCount(worker)
}

// KillClients (Figure 2 line 867): factory monitor, then csList (872) —
// the other side of deadlock1.
func (f *Factory) KillClients() int {
	f.mu.LockAt("SocketClientFactory.java:867")
	defer f.mu.Unlock()
	if f.cfg.bug(Deadlock1) {
		f.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock1, f.mu, f.csList.mu), false,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: deadlock1 of the paper's Jigsaw study (line 867 -> 872)
	f.csList.mu.LockAt("SocketClientFactory.java:872")
	defer f.csList.mu.Unlock()
	killed := 0
	for _, c := range f.csList.clients {
		if c.idle {
			c.idle = false
			killed++
		}
	}
	return killed
}

// LogAccess records an access-log line: logger lock, then the factory
// monitor for the current count — one side of deadlock2.
func (f *Factory) LogAccess(req Request) {
	f.logMu.LockAt("CommonLogger.java:log")
	defer f.logMu.Unlock()
	if f.cfg.bug(Deadlock2) {
		f.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock2, f.logMu, f.mu), true,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: deadlock2 of the paper's Jigsaw study (logger then factory)
	f.mu.LockAt("SocketClientFactory.java:getClientCount")
	n := len(f.csList.clients)
	f.mu.Unlock()
	f.accessLog = append(f.accessLog, fmt.Sprintf("%s clients=%d", req.Path, n))
}

// Shutdown flushes the logger under the factory monitor — the other
// side of deadlock2.
func (f *Factory) Shutdown() {
	f.mu.LockAt("SocketClientFactory.java:shutdown")
	defer f.mu.Unlock()
	if f.cfg.bug(Deadlock2) {
		f.cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock2, f.mu, f.logMu), false,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore lockorder intentional: deadlock2 of the paper's Jigsaw study (factory then logger)
	f.logMu.LockAt("CommonLogger.java:flush")
	defer f.logMu.Unlock()
	f.accessLog = append(f.accessLog, "shutdown")
}

// Serve handles one request and updates the racy served counter
// (race2).
func (f *Factory) Serve(req Request, worker int) Response {
	v := f.requestsServed.Load("jigsaw.go:served.read")
	if f.cfg.bug(Race2) {
		f.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPRace2, f.requestsServed), worker == 0,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	f.requestsServed.Store("jigsaw.go:served.write", v+1)
	return Response{Status: 200, Body: "<html>" + req.Path + "</html>"}
}

// NotifyClientAvailable wakes the reaper — but outside the factory
// monitor and without setting any flag: the lossy side of
// missed-notify1.
func (f *Factory) NotifyClientAvailable() {
	notify := f.reapCond.Notify
	if f.cfg.bug(MissedNotify) {
		f.cfg.Engine.TriggerHereAnd(core.NewNotifyTrigger(BPMissedNotify, f.reapCond), true,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1}, notify)
	} else {
		notify()
	}
}

// AwaitClientAvailable is the reaper's wait: the availability test and
// the wait are separated by an unprotected window (the bug); the
// second-action breakpoint side sits in that window.
func (f *Factory) AwaitClientAvailable() {
	f.mu.Lock()
	available := f.idleCount.Load("jigsaw.go:reap.check") > 0
	f.mu.Unlock()
	if available {
		return
	}
	if f.cfg.bug(MissedNotify) {
		f.cfg.Engine.TriggerHere(core.NewNotifyTrigger(BPMissedNotify, f.reapCond), false,
			core.Options{Timeout: f.cfg.Timeout, Bound: 1})
	}
	f.mu.Lock()
	f.reapCond.Wait() // waits on the stale availability test
	f.mu.Unlock()
}

// Bug selects which seeded bug a run exercises.
type Bug int

// The jigsaw bugs of Table 1.
const (
	Deadlock1 Bug = iota
	Deadlock2
	MissedNotify
	Race1
	Race2
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	// StallAfter bounds stall detection (default 2s).
	StallAfter time.Duration
	// Requests is the simulated client load (default 40).
	Requests int
}

func (c *Config) bug(b Bug) bool {
	return c != nil && c.Breakpoint && c.Bug == b && c.Engine != nil
}

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

func (c *Config) requests() int {
	if c.Requests <= 0 {
		return 40
	}
	return c.Requests
}

func bpName(b Bug) string {
	switch b {
	case Deadlock1:
		return BPDeadlock1
	case Deadlock2:
		return BPDeadlock2
	case MissedNotify:
		return BPMissedNotify
	case Race1:
		return BPRace1
	default:
		return BPRace2
	}
}

// Run drives the server harness once: simulated clients issue page
// requests while administrative commands (killClients, shutdown) arrive
// concurrently — the paper's Jigsaw test harness in miniature.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	f := NewFactory(4, &cfg)
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		switch cfg.Bug {
		case Deadlock1:
			return runDeadlock1(f, &cfg)
		case Deadlock2:
			return runDeadlock2(f, &cfg)
		case MissedNotify:
			return runMissedNotify(f, &cfg)
		case Race1:
			return runRace1(f, &cfg)
		default:
			return runRace2(f, &cfg)
		}
	})
	res.BPHit = cfg.Engine.Stats(bpName(cfg.Bug)).Hits() > 0
	return res
}

func runDeadlock1(f *Factory, cfg *Config) appkit.Result {
	done := make(chan struct{}, 2)
	go func() { // client connections finishing
		for i := 0; i < cfg.requests()/4; i++ {
			f.ClientConnectionFinished(0)
			f.incrIdleCount(0)
		}
		done <- struct{}{}
	}()
	go func() { // admin killing idle clients
		time.Sleep(time.Millisecond)
		f.KillClients()
		done <- struct{}{}
	}()
	<-done
	<-done
	return appkit.Result{Status: appkit.OK}
}

func runDeadlock2(f *Factory, cfg *Config) appkit.Result {
	done := make(chan struct{}, 2)
	go func() {
		for i := 0; i < cfg.requests(); i++ {
			f.LogAccess(Request{Path: fmt.Sprintf("/page/%d", i)})
		}
		done <- struct{}{}
	}()
	go func() {
		time.Sleep(time.Millisecond)
		f.Shutdown()
		done <- struct{}{}
	}()
	<-done
	<-done
	return appkit.Result{Status: appkit.OK}
}

func runMissedNotify(f *Factory, cfg *Config) appkit.Result {
	f.idleCount.Store("setup", 0) // exhausted: reaper must wait
	done := make(chan struct{}, 1)
	go func() {
		f.AwaitClientAvailable()
		done <- struct{}{}
	}()
	go func() {
		time.Sleep(time.Millisecond)
		f.mu.Lock()
		f.idleCount.Store("release", 1)
		f.mu.Unlock()
		f.NotifyClientAvailable()
	}()
	<-done
	return appkit.Result{Status: appkit.OK}
}

func runRace1(f *Factory, cfg *Config) appkit.Result {
	var wg sync.WaitGroup
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer wg.Done()
			// Distinct per-worker cadences keep the two connection
			// loops out of phase, so only the breakpoint-forced
			// interleaving loses an update.
			work := time.Duration(400+300*w) * time.Microsecond
			for i := 0; i < cfg.requests()/2; i++ {
				f.decrIdleCount(w)
				time.Sleep(work) // connection work
				f.incrIdleCount(w)
				time.Sleep(work / 2) // idle gap
			}
		}(w)
	}
	wg.Wait()
	// Shutdown barrier: waits for all clients to be idle again. A lost
	// update leaves the counter off forever — the paper's race1 stall.
	// The spin is bounded so an abandoned run's goroutine terminates.
	deadline := time.Now().Add(2 * cfg.stallAfter())
	for f.idleCount.Load("barrier") != 4 {
		if time.Now().After(deadline) {
			return appkit.Result{Status: appkit.Stall, Detail: "idle-count barrier never satisfied"}
		}
		time.Sleep(time.Millisecond)
	}
	return appkit.Result{Status: appkit.OK}
}

func runRace2(f *Factory, cfg *Config) appkit.Result {
	// Drive the race through the real HTTP surface: two keep-alive
	// clients whose request handlers race on the served counter.
	total := cfg.requests()
	ok, err := f.ServeHTTPLoad(2, total/2)
	if err != nil {
		return appkit.Result{Status: appkit.TestFail, Detail: "http error: " + err.Error()}
	}
	if ok != total {
		return appkit.Result{Status: appkit.TestFail,
			Detail: fmt.Sprintf("only %d/%d responses ok", ok, total)}
	}
	if got := f.requestsServed.Load("check"); got != int64(total) {
		return appkit.Result{Status: appkit.TestFail,
			Detail: fmt.Sprintf("served counter lost updates: %d/%d", got, total)}
	}
	return appkit.Result{Status: appkit.OK}
}
