package jigsaw

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestFactorySetup(t *testing.T) {
	f := NewFactory(4, quietCfg())
	if got := f.idleCount.Load("t"); got != 4 {
		t.Fatalf("idleCount = %d", got)
	}
	if len(f.csList.clients) != 4 {
		t.Fatalf("clients = %d", len(f.csList.clients))
	}
}

func TestServe(t *testing.T) {
	f := NewFactory(2, quietCfg())
	resp := f.Serve(Request{Path: "/index"}, 0)
	if resp.Status != 200 || !strings.Contains(resp.Body, "/index") {
		t.Fatalf("resp = %+v", resp)
	}
	if f.requestsServed.Load("t") != 1 {
		t.Fatal("served counter not updated")
	}
}

func TestKillClients(t *testing.T) {
	f := NewFactory(3, quietCfg())
	if got := f.KillClients(); got != 3 {
		t.Fatalf("killed = %d", got)
	}
	if got := f.KillClients(); got != 0 {
		t.Fatalf("second kill = %d", got)
	}
}

func TestLogAccessAndShutdown(t *testing.T) {
	f := NewFactory(2, quietCfg())
	f.LogAccess(Request{Path: "/a"})
	f.Shutdown()
	if len(f.accessLog) != 2 || !strings.Contains(f.accessLog[0], "clients=2") {
		t.Fatalf("accessLog = %v", f.accessLog)
	}
}

func TestIdleCountRoundTrip(t *testing.T) {
	f := NewFactory(2, quietCfg())
	f.decrIdleCount(0)
	if f.idleCount.Load("t") != 1 {
		t.Fatal("decr broken")
	}
	f.incrIdleCount(0)
	if f.idleCount.Load("t") != 2 {
		t.Fatal("incr broken")
	}
}

func TestNotifyAwaitHappyPath(t *testing.T) {
	f := NewFactory(1, quietCfg())
	// idle > 0: await returns immediately.
	done := make(chan struct{})
	go func() { f.AwaitClientAvailable(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("await blocked despite availability")
	}
}

func reproduceStall(t *testing.T, bug Bug, runs int) (stalls, hits int) {
	t.Helper()
	for i := 0; i < runs; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: bug, Breakpoint: true,
			Timeout: 300 * time.Millisecond, StallAfter: 400 * time.Millisecond})
		if r.Status == appkit.Stall {
			stalls++
		}
		if r.BPHit {
			hits++
		}
	}
	return stalls, hits
}

func TestDeadlock1Reproduces(t *testing.T) {
	stalls, hits := reproduceStall(t, Deadlock1, 3)
	if stalls != 3 || hits != 3 {
		t.Fatalf("stalls=%d hits=%d", stalls, hits)
	}
}

func TestDeadlock2Reproduces(t *testing.T) {
	stalls, hits := reproduceStall(t, Deadlock2, 3)
	if stalls != 3 || hits != 3 {
		t.Fatalf("stalls=%d hits=%d", stalls, hits)
	}
}

func TestMissedNotifyReproduces(t *testing.T) {
	stalls, hits := reproduceStall(t, MissedNotify, 3)
	if stalls != 3 || hits != 3 {
		t.Fatalf("stalls=%d hits=%d", stalls, hits)
	}
}

func TestRace1StallReproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race1, Breakpoint: true,
			Timeout: 300 * time.Millisecond, StallAfter: 400 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestRace2Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race2, Breakpoint: true, Timeout: 300 * time.Millisecond})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointsMostlyOK(t *testing.T) {
	for _, bug := range []Bug{Deadlock1, Deadlock2, MissedNotify, Race1, Race2} {
		bugs := 0
		for i := 0; i < 5; i++ {
			e := core.NewEngine()
			e.SetEnabled(false)
			if Run(Config{Engine: e, Bug: bug, StallAfter: 500 * time.Millisecond}).Status.Buggy() {
				bugs++
			}
		}
		if bugs > 2 {
			t.Errorf("bug %v manifested %d/5 without breakpoints", bug, bugs)
		}
	}
}
