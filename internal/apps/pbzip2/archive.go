package pbzip2

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Archive container format, so the compressor produces a real artifact
// (pbzip2 writes a multi-stream bzip2 file; we write a multi-block
// DEFLATE container):
//
//	magic   [4]byte  "CBZ1"
//	count   uint32   number of blocks
//	per block:
//	  rawLen  uint32   uncompressed size
//	  compLen uint32   compressed size
//	  sum     uint32   checksum of the compressed bytes
//	  data    [compLen]byte
//
// All integers are big-endian.

// ArchiveMagic identifies the container format.
var ArchiveMagic = [4]byte{'C', 'B', 'Z', '1'}

// checksum32 is a simple rolling checksum over data (Fletcher-style).
func checksum32(data []byte) uint32 {
	var a, b uint32 = 1, 0
	for _, c := range data {
		a = (a + uint32(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// compressedBlock is one archive entry.
type compressedBlock struct {
	rawLen int
	data   []byte
}

// WriteArchive serializes the blocks (index order) to w.
func WriteArchive(w io.Writer, blocks []compressedBlock) error {
	if _, err := w.Write(ArchiveMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(blocks))); err != nil {
		return err
	}
	for i, b := range blocks {
		hdr := []uint32{uint32(b.rawLen), uint32(len(b.data)), checksum32(b.data)}
		for _, v := range hdr {
			if err := binary.Write(w, binary.BigEndian, v); err != nil {
				return fmt.Errorf("block %d header: %w", i, err)
			}
		}
		if _, err := w.Write(b.data); err != nil {
			return fmt.Errorf("block %d data: %w", i, err)
		}
	}
	return nil
}

// ReadArchive parses and checksum-verifies an archive.
func ReadArchive(r io.Reader) ([]compressedBlock, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != ArchiveMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("implausible block count %d", count)
	}
	blocks := make([]compressedBlock, 0, count)
	for i := uint32(0); i < count; i++ {
		var rawLen, compLen, sum uint32
		for _, p := range []*uint32{&rawLen, &compLen, &sum} {
			if err := binary.Read(r, binary.BigEndian, p); err != nil {
				return nil, fmt.Errorf("block %d header: %w", i, err)
			}
		}
		data := make([]byte, compLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("block %d data: %w", i, err)
		}
		if got := checksum32(data); got != sum {
			return nil, fmt.Errorf("block %d checksum mismatch: %08x != %08x", i, got, sum)
		}
		blocks = append(blocks, compressedBlock{rawLen: int(rawLen), data: data})
	}
	return blocks, nil
}

// CompressArchive runs the full (correct) parallel pipeline: split,
// compress across workers, reassemble in index order, and serialize the
// container. It is the repaired counterpart of the buggy teardown in
// Run, and what the quickstart-style use of this package looks like.
func CompressArchive(input []byte, blockSize, workers int) ([]byte, error) {
	blocks := SplitBlocks(input, blockSize)
	out := make([]compressedBlock, len(blocks))
	errCh := make(chan error, workers)
	work := make(chan Block)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				data, err := CompressBlock(b.Data)
				if err != nil {
					errCh <- err
					return
				}
				out[b.Index] = compressedBlock{rawLen: len(b.Data), data: data}
			}
		}()
	}
	for _, b := range blocks {
		work <- b
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressArchive restores the original input from an archive.
func DecompressArchive(archive []byte) ([]byte, error) {
	blocks, err := ReadArchive(bytes.NewReader(archive))
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	for i, b := range blocks {
		plain, err := DecompressBlock(b.data)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		if len(plain) != b.rawLen {
			return nil, fmt.Errorf("block %d: raw length %d != header %d", i, len(plain), b.rawLen)
		}
		out.Write(plain)
	}
	return out.Bytes(), nil
}
