package pbzip2

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestArchiveRoundTrip(t *testing.T) {
	input := makeInput(50 << 10)
	arch, err := CompressArchive(input, 8<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch) >= len(input) {
		t.Fatalf("archive did not shrink: %d -> %d", len(input), len(arch))
	}
	restored, err := DecompressArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, input) {
		t.Fatal("round trip mismatch")
	}
}

func TestArchiveBadMagic(t *testing.T) {
	arch, _ := CompressArchive(makeInput(1024), 512, 2)
	arch[0] = 'X'
	if _, err := DecompressArchive(arch); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestArchiveChecksumDetectsCorruption(t *testing.T) {
	arch, _ := CompressArchive(makeInput(4096), 1024, 2)
	// Flip a byte in the first block's payload (after magic, count, and
	// the 12-byte block header).
	arch[4+4+12+3] ^= 0xFF
	if _, err := DecompressArchive(arch); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v", err)
	}
}

func TestArchiveTruncated(t *testing.T) {
	arch, _ := CompressArchive(makeInput(4096), 1024, 2)
	if _, err := DecompressArchive(arch[:len(arch)/2]); err == nil {
		t.Fatal("truncated archive accepted")
	}
	if _, err := DecompressArchive(arch[:3]); err == nil {
		t.Fatal("tiny archive accepted")
	}
}

func TestArchiveEmptyInput(t *testing.T) {
	arch, err := CompressArchive(nil, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecompressArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %d bytes from empty input", len(restored))
	}
}

func TestChecksumProperties(t *testing.T) {
	// Deterministic and sensitive to single-byte changes.
	f := func(data []byte, idx uint16) bool {
		a := checksum32(data)
		if a != checksum32(data) {
			return false
		}
		if len(data) == 0 {
			return true
		}
		mut := append([]byte(nil), data...)
		mut[int(idx)%len(mut)] ^= 0x01
		return checksum32(mut) != a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveRoundTripProperty(t *testing.T) {
	f := func(seed uint8, size uint16) bool {
		n := int(size)%8192 + 1
		input := makeInput(n)
		arch, err := CompressArchive(input, 1024, 2)
		if err != nil {
			return false
		}
		restored, err := DecompressArchive(arch)
		return err == nil && bytes.Equal(restored, input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
