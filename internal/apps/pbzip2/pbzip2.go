// Package pbzip2 models pbzip2 0.9.4, the parallel block compressor of
// the paper's Table 2, including its crash bug: when the main thread
// decides all blocks are finished it frees the shared FIFO queue, but a
// consumer thread can still be between "counted my last block" and "loop
// around and touch the queue again" — the consumer then dereferences the
// freed (here: nil) queue and the program crashes.
//
// The compressor is real: input is split into blocks, worker goroutines
// DEFLATE each block (compress/flate), and an order-restoring writer
// reassembles the output so it decompresses to the original input.
//
// Two concurrent breakpoints reproduce the crash deterministically
// (Table 2 reports 2 CBRs for pbzip2):
//
//	cbr1 aligns the main thread's "all blocks done" check with the
//	     consumer's final block-count increment, and
//	cbr2 orders the queue free before the consumer's loop-around load.
package pbzip2

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPAlign = "pbzip2.cbr1" // completion-check vs final-increment
	BPFree  = "pbzip2.cbr2" // queue free vs loop-around load
)

// Block is one unit of compression work.
type Block struct {
	Index int
	Data  []byte
}

// Queue is the shared FIFO between the producer and the consumers.
type Queue struct {
	mu    *locks.Mutex
	items []Block
	done  bool
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{mu: locks.NewMutex("pbzip2.fifo")} }

// Push appends a block.
func (q *Queue) Push(b Block) {
	q.mu.With(func() { q.items = append(q.items, b) })
}

// Pop removes the oldest block; ok is false when the queue is empty.
func (q *Queue) Pop() (b Block, ok bool) {
	q.mu.With(func() {
		if len(q.items) > 0 {
			b = q.items[0]
			q.items = q.items[1:]
			ok = true
		}
	})
	return b, ok
}

// Close marks the producer finished.
func (q *Queue) Close() {
	q.mu.With(func() { q.done = true })
}

// Done reports whether the producer finished and the queue drained.
func (q *Queue) Done() bool {
	var d bool
	q.mu.With(func() { d = q.done && len(q.items) == 0 })
	return d
}

// CompressBlock DEFLATEs one block.
func CompressBlock(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressBlock inflates one block (used by tests to validate the
// pipeline).
func DecompressBlock(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(r)
}

// SplitBlocks cuts the input into blockSize chunks.
func SplitBlocks(input []byte, blockSize int) []Block {
	var blocks []Block
	for i := 0; len(input) > 0; i++ {
		n := blockSize
		if n > len(input) {
			n = len(input)
		}
		blocks = append(blocks, Block{Index: i, Data: input[:n]})
		input = input[n:]
	}
	return blocks
}

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Breakpoint bool
	Timeout    time.Duration
	// InputSize is the uncompressed payload size (default 64 KiB).
	InputSize int
	// BlockSize is the compression block size (default 8 KiB).
	BlockSize int
	// Workers is the consumer count (default 2).
	Workers int
}

func (c *Config) inputSize() int {
	if c.InputSize <= 0 {
		return 64 << 10
	}
	return c.InputSize
}

func (c *Config) blockSize() int {
	if c.BlockSize <= 0 {
		return 8 << 10
	}
	return c.BlockSize
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

// makeInput generates a deterministic compressible payload.
func makeInput(n int) []byte {
	out := make([]byte, n)
	seed := uint64(7)
	for i := range out {
		seed = seed*6364136223846793005 + 1442695040888963407
		out[i] = byte("abcdefgh"[seed%8])
	}
	return out
}

// Compressor is one run's pipeline state.
type Compressor struct {
	fifo      *memory.Ref[Queue] // the shared queue pointer the bug frees
	outMu     *locks.Mutex
	out       map[int][]byte
	completed *memory.Cell // blocks compressed so far
	total     int
	cfg       *Config
}

// NewCompressor builds the pipeline over the given blocks.
func NewCompressor(total int, cfg *Config) *Compressor {
	q := NewQueue()
	return &Compressor{
		fifo:      memory.NewRef(nil, "pbzip2.fifo", q),
		outMu:     locks.NewMutex("pbzip2.out"),
		out:       make(map[int][]byte),
		completed: memory.NewCell(nil, "pbzip2.completed", 0),
		total:     total,
		cfg:       cfg,
	}
}

// consumer drains the queue, compressing blocks. The loop-around load of
// the fifo pointer has no nil check — the crash site.
func (c *Compressor) consumer(id int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("worker %d crashed: %v", id, p)
		}
	}()
	// Resolve the handle once; the trigger site below runs per loop
	// iteration and skips the registry lookup.
	var bpFree *core.Breakpoint
	if c.cfg.Breakpoint {
		bpFree = c.cfg.Engine.Breakpoint(BPFree)
	}
	for {
		if c.cfg.Breakpoint {
			// cbr2 second side: the loop-around load can be ordered
			// after the main thread's free.
			bpFree.Trigger(core.NewConflictTrigger(BPFree, c.fifo), false,
				core.Options{Timeout: c.cfg.Timeout, Bound: 1,
					ExtraLocal: func() bool {
						return c.completed.Load("pbzip2:extra") >= int64(c.total)
					}})
		}
		q := c.fifo.Load("pbzip2:loop.load")
		// BUG: no nil check — after the main thread frees the queue this
		// dereference crashes (modeled as an explicit nil-deref panic,
		// matching the paper's "null pointer dereference").
		block, ok := q.Pop()
		if !ok {
			if q.Done() {
				return nil
			}
			time.Sleep(50 * time.Microsecond)
			continue
		}
		compressed, cerr := CompressBlock(block.Data)
		if cerr != nil {
			return cerr
		}
		c.outMu.Lock()
		c.out[block.Index] = compressed
		c.outMu.Unlock()
		c.countBlock(id)
	}
}

// countBlock is the consumer's final-block bookkeeping; cbr1's
// first-action side aligns the main thread's completion check right
// after the increment that completes the count.
func (c *Compressor) countBlock(id int) {
	n := c.completed.AtomicAdd("pbzip2:counted", 1)
	if c.cfg.Breakpoint && n == int64(c.total) {
		c.cfg.Engine.TriggerHere(core.NewConflictTrigger(BPAlign, c.completed), true,
			core.Options{Timeout: c.cfg.Timeout, Bound: 1})
	}
}

// Run compresses a synthetic input through the worker pipeline. When the
// breakpoints align the teardown race, a worker dereferences the freed
// queue and the run reports a crash; otherwise the output is validated
// by decompression.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	input := makeInput(cfg.inputSize())
	blocks := SplitBlocks(input, cfg.blockSize())
	comp := NewCompressor(len(blocks), &cfg)

	res := appkit.RunWithDeadline(60*time.Second, func() appkit.Result {
		errCh := make(chan error, cfg.workers())
		q := comp.fifo.Load("pbzip2:setup")
		for _, b := range blocks {
			q.Push(b)
		}
		for w := 0; w < cfg.workers(); w++ {
			go func(w int) { errCh <- comp.consumer(w) }(w)
		}

		// Main thread: wait for the block count, then tear down. cbr1's
		// second side aligns this check with the final increment; cbr2's
		// first side orders the free before a consumer's loop-around.
		for comp.completed.Load("pbzip2:main.check") < int64(comp.total) {
			time.Sleep(100 * time.Microsecond)
		}
		if cfg.Breakpoint {
			cfg.Engine.TriggerHere(core.NewConflictTrigger(BPAlign, comp.completed), false,
				core.Options{Timeout: cfg.Timeout, Bound: 1})
			cfg.Engine.TriggerHereAnd(core.NewConflictTrigger(BPFree, comp.fifo), true,
				core.Options{Timeout: cfg.Timeout, Bound: 1},
				func() { comp.fifo.Store("pbzip2:free", nil) })
		} else {
			q.Close()
			// The natural grace between shutdown and free: the crash
			// window only opens if a consumer is still looping past it.
			time.Sleep(time.Millisecond)
			comp.fifo.Store("pbzip2:free", nil)
		}

		var firstErr error
		for w := 0; w < cfg.workers(); w++ {
			if err := <-errCh; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return appkit.Result{Status: appkit.Crash, Detail: firstErr.Error()}
		}
		// Validate the pipeline end to end.
		var rebuilt bytes.Buffer
		for i := 0; i < comp.total; i++ {
			comp.outMu.Lock()
			blk := comp.out[i]
			comp.outMu.Unlock()
			plain, err := DecompressBlock(blk)
			if err != nil {
				return appkit.Result{Status: appkit.TestFail, Detail: "corrupt block " + err.Error()}
			}
			rebuilt.Write(plain)
		}
		if !bytes.Equal(rebuilt.Bytes(), input) {
			return appkit.Result{Status: appkit.TestFail, Detail: "round-trip mismatch"}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPFree).Hits() > 0 || cfg.Engine.Stats(BPAlign).Hits() > 0
	return res
}
