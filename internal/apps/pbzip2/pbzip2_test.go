package pbzip2

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestCompressRoundTrip(t *testing.T) {
	data := makeInput(10000)
	c, err := CompressBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data) {
		t.Fatalf("compressible input did not shrink: %d -> %d", len(data), len(c))
	}
	d, err := DecompressBlock(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestSplitBlocks(t *testing.T) {
	blocks := SplitBlocks(make([]byte, 100), 32)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(blocks))
	}
	if len(blocks[3].Data) != 4 {
		t.Fatalf("tail block = %d bytes", len(blocks[3].Data))
	}
	if blocks[2].Index != 2 {
		t.Fatal("indices wrong")
	}
	if SplitBlocks(nil, 32) != nil {
		t.Fatal("empty input should give no blocks")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	q.Push(Block{Index: 1})
	q.Push(Block{Index: 2})
	b, ok := q.Pop()
	if !ok || b.Index != 1 {
		t.Fatalf("pop = %+v %v", b, ok)
	}
	if q.Done() {
		t.Fatal("queue done before close")
	}
	q.Pop()
	q.Close()
	if !q.Done() {
		t.Fatal("queue not done after close+drain")
	}
}

func TestCleanRunCompresses(t *testing.T) {
	e := core.NewEngine()
	e.SetEnabled(false)
	r := Run(Config{Engine: e, InputSize: 32 << 10, BlockSize: 4 << 10})
	if r.Status != appkit.OK {
		t.Fatalf("clean run: %s", r)
	}
}

func TestCrashReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Breakpoint: true, Timeout: 500 * time.Millisecond,
			InputSize: 32 << 10, BlockSize: 4 << 10})
		if r.Status != appkit.Crash || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
		if !strings.Contains(r.Detail, "crashed") {
			t.Fatalf("run %d: detail %q", i, r.Detail)
		}
	}
}

func TestWithoutBreakpointsMostlyOK(t *testing.T) {
	crashes := 0
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, InputSize: 16 << 10, BlockSize: 4 << 10}).Status == appkit.Crash {
			crashes++
		}
	}
	if crashes > 3 {
		t.Fatalf("crashed %d/10 without breakpoints", crashes)
	}
}
