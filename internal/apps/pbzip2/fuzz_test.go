package pbzip2

import (
	"bytes"
	"testing"
)

// FuzzReadArchive hardens the container parser: arbitrary bytes must
// produce blocks or an error, never a panic or an over-allocation.
func FuzzReadArchive(f *testing.F) {
	good, _ := CompressArchive(makeInput(2048), 512, 2)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("CBZ1"))
	f.Add([]byte("XYZ9aaaaaaaa"))
	truncated := append([]byte(nil), good[:len(good)/2]...)
	f.Add(truncated)
	mutated := append([]byte(nil), good...)
	if len(mutated) > 20 {
		mutated[12] ^= 0xFF
	}
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := ReadArchive(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted archives must round-trip their own serialization.
		var buf bytes.Buffer
		if err := WriteArchive(&buf, blocks); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadArchive(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(blocks) {
			t.Fatalf("round trip changed block count: %d != %d", len(again), len(blocks))
		}
	})
}
