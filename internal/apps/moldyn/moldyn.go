// Package moldyn models the Java Grande Forum "moldyn" benchmark: a
// small Lennard-Jones molecular-dynamics simulation with velocity-Verlet
// integration, parallelized by particle range. The paper's Table 1
// reports two races (race1 with bound=4, race2 with bound=10): the
// threads accumulate their partial potential energy and virial into
// shared counters with unsynchronized read-modify-write updates, losing
// contributions under the right interleaving.
//
// Accumulations use fixed-point int64 cells, so the threaded sum over
// the same contributions is order-independent: any deviation from the
// sequential reference is a genuine lost update, not floating-point
// reassociation.
package moldyn

import (
	"fmt"
	"math"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPRace1 = "moldyn.race1" // potential-energy accumulator
	BPRace2 = "moldyn.race2" // virial accumulator
)

const fixedScale = 1 << 20 // fixed-point scale for energy accumulation

// System is a Lennard-Jones particle system in a cubic box.
type System struct {
	N          int
	Box        float64
	X, Y, Z    []float64
	VX, VY, VZ []float64
	FX, FY, FZ []float64
}

// NewSystem places n particles (rounded down to a cube number) on a
// simple cubic lattice with deterministic pseudo-random velocities.
func NewSystem(n int) *System {
	side := int(math.Cbrt(float64(n)))
	if side < 2 {
		side = 2
	}
	n = side * side * side
	s := &System{
		N: n, Box: float64(side) * 1.3,
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		FX: make([]float64, n), FY: make([]float64, n), FZ: make([]float64, n),
	}
	spacing := s.Box / float64(side)
	i := 0
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40)/float64(1<<24) - 0.5
	}
	for a := 0; a < side; a++ {
		for b := 0; b < side; b++ {
			for c := 0; c < side; c++ {
				s.X[i] = (float64(a) + 0.5) * spacing
				s.Y[i] = (float64(b) + 0.5) * spacing
				s.Z[i] = (float64(c) + 0.5) * spacing
				s.VX[i] = next() * 0.1
				s.VY[i] = next() * 0.1
				s.VZ[i] = next() * 0.1
				i++
			}
		}
	}
	return s
}

// pairForce computes the Lennard-Jones force on particle i from particle
// j under minimum-image periodic boundaries, plus the pair's potential
// energy and virial contributions.
func (s *System) pairForce(i, j int) (fx, fy, fz, epot, vir float64) {
	dx := s.X[i] - s.X[j]
	dy := s.Y[i] - s.Y[j]
	dz := s.Z[i] - s.Z[j]
	dx -= s.Box * math.Round(dx/s.Box)
	dy -= s.Box * math.Round(dy/s.Box)
	dz -= s.Box * math.Round(dz/s.Box)
	r2 := dx*dx + dy*dy + dz*dz
	const cutoff2 = 6.25 // (2.5 sigma)^2
	if r2 > cutoff2 || r2 == 0 {
		return 0, 0, 0, 0, 0
	}
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	inv12 := inv6 * inv6
	epot = 4 * (inv12 - inv6)
	f := 24 * (2*inv12 - inv6) * inv2
	return f * dx, f * dy, f * dz, epot, f * r2
}

// forceRange computes the full force on each particle in [lo, hi) by
// summing over all neighbors (each thread writes only its own range, so
// the force arrays are race-free) and streams fixed-point partial energy
// and virial contributions to the accumulators in chunks, so the shared
// accumulation site executes many times per step — as in the original
// benchmark, where the race site runs hundreds of times.
func (s *System) forceRange(lo, hi int, addEpot, addVir func(int64)) {
	const chunk = 4
	var epotAcc, virAcc float64
	count := 0
	for i := lo; i < hi; i++ {
		for j := 0; j < s.N; j++ {
			if j == i {
				continue
			}
			fx, fy, fz, e, v := s.pairForce(i, j)
			s.FX[i] += fx
			s.FY[i] += fy
			s.FZ[i] += fz
			epotAcc += e
			virAcc += v
		}
		count++
		if count == chunk {
			addEpot(int64(epotAcc * fixedScale))
			addVir(int64(virAcc * fixedScale))
			epotAcc, virAcc = 0, 0
			count = 0
		}
	}
	addEpot(int64(epotAcc * fixedScale))
	addVir(int64(virAcc * fixedScale))
}

// integrate advances positions and velocities one step (velocity
// Verlet, unit mass, dt = 0.004).
func (s *System) integrate() {
	const dt = 0.004
	for i := 0; i < s.N; i++ {
		s.VX[i] += s.FX[i] * dt
		s.VY[i] += s.FY[i] * dt
		s.VZ[i] += s.FZ[i] * dt
		s.X[i] += s.VX[i] * dt
		s.Y[i] += s.VY[i] * dt
		s.Z[i] += s.VZ[i] * dt
		s.FX[i], s.FY[i], s.FZ[i] = 0, 0, 0
	}
}

// Bug selects which racy accumulator a run exercises.
type Bug int

// The moldyn bugs of Table 1.
const (
	Race1 Bug = iota // epot accumulator, paper bound=4
	Race2            // virial accumulator, paper bound=10
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	// Bound limits breakpoint hits (paper: 4 for race1, 10 for race2).
	Bound int
	// Particles is the requested particle count (default 64).
	Particles int
	// Steps is the number of MD steps (default 4).
	Steps int
}

func (c *Config) particles() int {
	if c.Particles <= 0 {
		return 64
	}
	return c.Particles
}

func (c *Config) steps() int {
	if c.Steps <= 0 {
		return 4
	}
	return c.Steps
}

func (c *Config) bound() int {
	if c.Bound > 0 {
		return c.Bound
	}
	if c.Bug == Race1 {
		return 4
	}
	return 10
}

func bpName(b Bug) string {
	if b == Race1 {
		return BPRace1
	}
	return BPRace2
}

// Run executes the simulation twice — sequential reference, then the
// two-thread version with racy accumulators — and compares the total
// energies. A mismatch is the manifested race (test failure).
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	n := cfg.particles()

	// Sequential reference, computed over the same two ranges as the
	// parallel version so the fixed-point chunk groupings are identical
	// and any sum difference is a genuine lost update.
	ref := NewSystem(n)
	var refEpot, refVir int64
	for st := 0; st < cfg.steps(); st++ {
		mid := ref.N / 2
		ref.forceRange(0, mid, func(d int64) { refEpot += d }, func(d int64) { refVir += d })
		ref.forceRange(mid, ref.N, func(d int64) { refEpot += d }, func(d int64) { refVir += d })
		ref.integrate()
	}

	res := appkit.RunWithDeadline(120*time.Second, func() appkit.Result {
		sys := NewSystem(n)
		sp := memory.NewSpace()
		epot := memory.NewCell(sp, "moldyn.epot", 0)
		vir := memory.NewCell(sp, "moldyn.vir", 0)

		addRacy := func(cell *memory.Cell, name string, active bool, worker int) func(int64) {
			return func(d int64) {
				if d == 0 {
					return
				}
				v := cell.Load(name + ".read")
				if active {
					cfg.Engine.TriggerHere(core.NewConflictTrigger(name, cell), worker == 0,
						core.Options{Timeout: cfg.Timeout, Bound: cfg.bound()})
				}
				cell.Store(name+".write", v+d)
			}
		}

		for st := 0; st < cfg.steps(); st++ {
			var wg sync.WaitGroup
			mid := sys.N / 2
			ranges := [][2]int{{0, mid}, {mid, sys.N}}
			for w, r := range ranges {
				wg.Add(1)
				go func(w int, lo, hi int) {
					defer wg.Done()
					sys.forceRange(lo, hi,
						addRacy(epot, BPRace1, cfg.Breakpoint && cfg.Bug == Race1, w),
						addRacy(vir, BPRace2, cfg.Breakpoint && cfg.Bug == Race2, w))
				}(w, r[0], r[1])
			}
			wg.Wait()
			sys.integrate()
		}

		// Note: the two halves interact across the boundary, so the
		// force arrays are also shared; the reference uses the same
		// split ordering to keep trajectories comparable. Energy
		// accumulation order does not affect the fixed-point sums.
		if epot.Load("check") != refEpot {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("epot lost update: got %d want %d", epot.Load("check"), refEpot)}
		}
		if vir.Load("check") != refVir {
			return appkit.Result{Status: appkit.TestFail,
				Detail: fmt.Sprintf("virial lost update: got %d want %d", vir.Load("check"), refVir)}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(bpName(cfg.Bug)).Hits() > 0
	return res
}
