package moldyn

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestSystemSetup(t *testing.T) {
	s := NewSystem(64)
	if s.N != 64 {
		t.Fatalf("N = %d, want 64 (perfect cube)", s.N)
	}
	s2 := NewSystem(30)
	if s2.N != 27 {
		t.Fatalf("N = %d, want 27 (rounded to cube)", s2.N)
	}
	// Particles inside the box.
	for i := 0; i < s.N; i++ {
		if s.X[i] < 0 || s.X[i] > s.Box || s.Y[i] < 0 || s.Y[i] > s.Box {
			t.Fatalf("particle %d outside box", i)
		}
	}
}

func TestPairForceSymmetry(t *testing.T) {
	s := NewSystem(8)
	fx1, fy1, fz1, e1, v1 := s.pairForce(0, 1)
	fx2, fy2, fz2, e2, v2 := s.pairForce(1, 0)
	if fx1 != -fx2 || fy1 != -fy2 || fz1 != -fz2 {
		t.Fatal("Newton's third law violated")
	}
	if e1 != e2 || v1 != v2 {
		t.Fatal("pair energy/virial not symmetric")
	}
}

func TestPairForceCutoff(t *testing.T) {
	s := NewSystem(8)
	s.Box = 1000
	s.X[1] = s.X[0] + 100 // way past cutoff
	s.Y[1], s.Z[1] = s.Y[0], s.Z[0]
	fx, fy, fz, e, v := s.pairForce(0, 1)
	if fx != 0 || fy != 0 || fz != 0 || e != 0 || v != 0 {
		t.Fatal("cutoff not applied")
	}
}

func TestSequentialDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		s := NewSystem(27)
		var e, v int64
		for st := 0; st < 3; st++ {
			s.forceRange(0, s.N, func(d int64) { e += d }, func(d int64) { v += d })
			s.integrate()
		}
		return e, v
	}
	e1, v1 := run()
	e2, v2 := run()
	if e1 != e2 || v1 != v2 {
		t.Fatalf("sequential run not deterministic: (%d,%d) vs (%d,%d)", e1, v1, e2, v2)
	}
	if e1 == 0 {
		t.Fatal("energy identically zero — kernel not computing")
	}
}

func TestRace1Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race1, Breakpoint: true, Timeout: 200 * time.Millisecond})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestRace2Reproduces(t *testing.T) {
	for i := 0; i < 3; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Race2, Breakpoint: true, Timeout: 200 * time.Millisecond})
		if r.Status != appkit.TestFail || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestBoundLimitsHits(t *testing.T) {
	e := core.NewEngine()
	Run(Config{Engine: e, Bug: Race1, Breakpoint: true, Timeout: 50 * time.Millisecond, Bound: 4})
	if hits := e.Stats(BPRace1).Hits(); hits > 4 {
		t.Fatalf("bound=4 exceeded: %d hits", hits)
	}
}

func TestWithoutBreakpointUsuallyOK(t *testing.T) {
	// The racy accumulators can lose updates naturally, but with two
	// threads and short windows it should be rare.
	bugs := 0
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, Bug: Race1}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 3 {
		t.Fatalf("race manifested %d/5 without breakpoint", bugs)
	}
}

func TestMomentumConservation(t *testing.T) {
	// The full-neighbor force sum is antisymmetric pairwise, so the net
	// force on the system is ~zero and total momentum is conserved by
	// the integrator (up to floating-point error).
	s := NewSystem(27)
	momentum := func() (px, py, pz float64) {
		for i := 0; i < s.N; i++ {
			px += s.VX[i]
			py += s.VY[i]
			pz += s.VZ[i]
		}
		return
	}
	px0, py0, pz0 := momentum()
	for st := 0; st < 5; st++ {
		s.forceRange(0, s.N, func(int64) {}, func(int64) {})
		s.integrate()
	}
	px, py, pz := momentum()
	const tol = 1e-9
	if abs(px-px0) > tol || abs(py-py0) > tol || abs(pz-pz0) > tol {
		t.Fatalf("momentum drifted: (%g,%g,%g) -> (%g,%g,%g)", px0, py0, pz0, px, py, pz)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestForceRangeSplitEquivalence(t *testing.T) {
	// The force arrays must be identical whether computed over [0,N) or
	// the two-range split (forces depend only on positions). The
	// fixed-point energy sums match when the split boundary aligns with
	// the accumulation chunk, which is how Run arranges its reference.
	whole := NewSystem(27)
	split := NewSystem(27)
	whole.forceRange(0, whole.N, func(int64) {}, func(int64) {})
	mid := split.N / 2
	split.forceRange(0, mid, func(int64) {}, func(int64) {})
	split.forceRange(mid, split.N, func(int64) {}, func(int64) {})
	for i := 0; i < whole.N; i++ {
		if whole.FX[i] != split.FX[i] || whole.FY[i] != split.FY[i] || whole.FZ[i] != split.FZ[i] {
			t.Fatalf("force mismatch at particle %d", i)
		}
	}

	// Aligned case (64 particles, mid 32, chunk 4): energies too.
	wholeA := NewSystem(64)
	splitA := NewSystem(64)
	var eWhole, eSplit int64
	wholeA.forceRange(0, wholeA.N, func(d int64) { eWhole += d }, func(int64) {})
	midA := splitA.N / 2
	splitA.forceRange(0, midA, func(d int64) { eSplit += d }, func(int64) {})
	splitA.forceRange(midA, splitA.N, func(d int64) { eSplit += d }, func(int64) {})
	if eWhole != eSplit {
		t.Fatalf("aligned split energy %d != whole %d", eSplit, eWhole)
	}
}
