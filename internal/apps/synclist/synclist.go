// Package synclist models java.util.Collections$SynchronizedList backed
// by an ArrayList (Table 1 rows "synchronizedList"). Each method is
// individually synchronized on the wrapper's monitor, so check-then-act
// sequences across methods race:
//
//   - atomicity1: size() followed by get(size-1) interleaved with a
//     concurrent clear() throws IndexOutOfBoundsException.
//   - deadlock1: two lists cross-calling addAll acquire the two monitors
//     in opposite orders and deadlock.
//
// Both bugs carry concurrent breakpoints that make them deterministic.
package synclist

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// Breakpoint names for engine statistics.
const (
	BPAtomicity = "synclist.atomicity1"
	BPDeadlock  = "synclist.deadlock1"
)

// List is a synchronized list of int64 backed by a slice.
type List struct {
	mu    *locks.Mutex
	items []int64
}

// NewList returns an empty synchronized list.
func NewList(name string) *List { return &List{mu: locks.NewMutex(name)} }

// Add appends v (synchronized).
func (l *List) Add(v int64) {
	l.mu.With(func() { l.items = append(l.items, v) })
}

// Size returns the element count (synchronized).
func (l *List) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// Get returns element i (synchronized); panics like Java's
// IndexOutOfBoundsException when i is stale.
func (l *List) Get(i int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.items) {
		panic(fmt.Sprintf("IndexOutOfBounds: index=%d size=%d", i, len(l.items)))
	}
	return l.items[i]
}

// Remove deletes element i (synchronized).
func (l *List) Remove(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.items) {
		panic(fmt.Sprintf("IndexOutOfBounds: index=%d size=%d", i, len(l.items)))
	}
	l.items = append(l.items[:i], l.items[i+1:]...)
}

// Clear removes all elements (synchronized).
func (l *List) Clear() {
	l.mu.With(func() { l.items = l.items[:0] })
}

// Snapshot returns a copy of the contents (synchronized).
func (l *List) Snapshot() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int64(nil), l.items...)
}

// AddAll appends every element of other, holding l's monitor and then
// other's — the nested acquisition that deadlocks when two lists
// cross-call AddAll. cfg inserts the deadlock breakpoint between the two
// acquisitions.
func (l *List) AddAll(other *List, cfg *Config) {
	l.mu.LockAt("SynchronizedList.addAll:outer")
	defer l.mu.Unlock()
	if cfg != nil && cfg.Breakpoint && cfg.Bug == Deadlock {
		cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, l.mu, other.mu), cfg.first(l),
			core.Options{Timeout: cfg.Timeout})
	}
	other.mu.LockAt("SynchronizedList.addAll:inner")
	defer other.mu.Unlock()
	l.items = append(l.items, other.items...)
}

// Bug selects which seeded bug a run exercises.
type Bug int

const (
	// Atomicity is the size/get vs clear violation.
	Atomicity Bug = iota
	// Deadlock is the crossed addAll deadlock.
	Deadlock
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	// Timeout is the breakpoint pause (zero = engine default).
	Timeout time.Duration
	// StallAfter bounds deadlock detection (default 2s).
	StallAfter time.Duration

	// firstList marks which list's AddAll is the breakpoint's
	// first-action side (set by Run).
	firstList *List
}

func (c *Config) first(l *List) bool { return l == c.firstList }

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

// Run executes the selected two-thread scenario once.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	switch cfg.Bug {
	case Deadlock:
		return runDeadlock(cfg)
	default:
		return runAtomicity(cfg)
	}
}

// runAtomicity races a reader doing the non-atomic size()/get(size-1)
// sequence against a writer that periodically clears and refills the
// list. The natural window between the reader's two calls is a couple of
// instructions, so the IndexOutOfBoundsException is a genuine Heisenbug;
// the breakpoint orders a clear() into exactly that window.
func runAtomicity(cfg Config) appkit.Result {
	l := NewList("list")
	for i := int64(0); i < 16; i++ {
		l.Add(i)
	}
	opts := core.Options{Timeout: cfg.Timeout, Bound: 1}
	res := appkit.RunWithDeadline(30*time.Second, func() appkit.Result {
		errCh := make(chan any, 2)
		spawn := func(f func()) {
			go func() {
				defer func() { errCh <- recover() }()
				f()
			}()
		}
		// Resolve the handle once; the trigger sites below run per
		// iteration and skip the registry lookup.
		var bpAtom *core.Breakpoint
		if cfg.Breakpoint {
			bpAtom = cfg.Engine.Breakpoint(BPAtomicity)
		}
		// Reader: repeatedly takes the last element, check-then-act.
		spawn(func() {
			for j := 0; j < 2000; j++ {
				n := l.Size()
				if n == 0 {
					continue
				}
				if cfg.Breakpoint {
					bpAtom.Trigger(core.NewAtomicityTrigger(BPAtomicity, l), false, opts)
				}
				_ = l.Get(n - 1)
			}
		})
		// Writer: periodically clears, does unrelated work, and refills.
		// The gap between clear and refill is where the reader's stale
		// index dereference lands.
		spawn(func() {
			for j := 0; j < 50; j++ {
				clear := l.Clear
				if cfg.Breakpoint {
					bpAtom.TriggerAnd(core.NewAtomicityTrigger(BPAtomicity, l), true, opts, clear)
				} else {
					clear()
				}
				time.Sleep(time.Millisecond) // unrelated work
				for i := int64(0); i < 16; i++ {
					l.Add(i)
				}
			}
		})
		for i := 0; i < 2; i++ {
			if p := <-errCh; p != nil {
				return appkit.Result{Status: appkit.Exception, Detail: fmt.Sprint(p)}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPAtomicity).Hits() > 0
	return res
}

func runDeadlock(cfg Config) appkit.Result {
	l1 := NewList("l1")
	l2 := NewList("l2")
	for i := int64(0); i < 4; i++ {
		l1.Add(i)
		l2.Add(i + 100)
	}
	cfg.firstList = l1
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		go func() { l1.AddAll(l2, &cfg); done <- struct{}{} }()
		go func() { l2.AddAll(l1, &cfg); done <- struct{}{} }()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
