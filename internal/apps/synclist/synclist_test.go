package synclist

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestListBasics(t *testing.T) {
	l := NewList("l")
	l.Add(1)
	l.Add(2)
	l.Add(3)
	if l.Size() != 3 || l.Get(0) != 1 || l.Get(2) != 3 {
		t.Fatalf("list contents wrong: %v", l.Snapshot())
	}
	l.Remove(1)
	if l.Size() != 2 || l.Get(1) != 3 {
		t.Fatalf("Remove broken: %v", l.Snapshot())
	}
	l.Clear()
	if l.Size() != 0 {
		t.Fatal("Clear broken")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	l := NewList("l")
	defer func() {
		if p := recover(); p == nil || !strings.Contains(p.(string), "IndexOutOfBounds") {
			t.Fatalf("panic = %v", p)
		}
	}()
	l.Get(0)
}

func TestRemoveOutOfRangePanics(t *testing.T) {
	l := NewList("l")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Remove(5)
}

func TestAddAllSequential(t *testing.T) {
	a, b := NewList("a"), NewList("b")
	a.Add(1)
	b.Add(2)
	b.Add(3)
	a.AddAll(b, nil)
	if a.Size() != 3 || a.Get(2) != 3 {
		t.Fatalf("AddAll: %v", a.Snapshot())
	}
}

func TestAtomicityBreakpointReproducesException(t *testing.T) {
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Atomicity, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.Exception {
			t.Fatalf("run %d: status = %v (want exception): %s", i, r.Status, r)
		}
		if !r.BPHit {
			t.Fatalf("run %d: exception without breakpoint hit", i)
		}
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Deadlock, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall {
			t.Fatalf("run %d: status = %v (want stall): %s", i, r.Status, r)
		}
		if !r.BPHit {
			t.Fatalf("run %d: stall without breakpoint hit", i)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 20; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, Bug: Atomicity, StallAfter: 300 * time.Millisecond}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 5 {
		t.Fatalf("atomicity bug manifested %d/20 without breakpoint", bugs)
	}
}
