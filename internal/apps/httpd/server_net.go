package httpd

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/guard"
)

// This file promotes the httpd reproduction from an in-process driver
// to a real socket server: a net.Listener accept loop (via the appkit
// socket kit) with per-connection deadlines, graceful drain, and
// accept-loop shedding wired to the engine's OverloadConfig high-water
// marks. The worker identity that the log-corruption breakpoint
// choreographs comes from the connection ordinal, so two concurrent
// network clients race the same way the two in-process workers did.
//
// Protocol (one line per request):
//
//	GET <path> [big]  → 200 id=<n> OK            (serve a request)
//	RELOAD <size>     → 200 reloaded <size>       (config reload)
//	anything else     → 400 parse error
//
// Overloaded accepts answer "503 shed <reason>" and close.

// NetServer is the httpd reproduction listening on a real socket.
type NetServer struct {
	kit   *appkit.SocketServer
	srv   *Server
	cfg   *Config
	ncfg  NetConfig
	reqID atomic.Int64

	backendOK   atomic.Int64
	backendErrs atomic.Int64
}

// NetConfig parameterizes StartNet beyond the run Config.
type NetConfig struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// ConnTimeout bounds each connection read/write (default 30s).
	ConnTimeout time.Duration
	// DrainTimeout bounds graceful drain on Close (default 5s).
	DrainTimeout time.Duration
	// Backend, when set, wires httpd to a mysql server: every GET
	// derives a statement from its path ordinal (even → INSERT, odd →
	// FLUSH LOGS) and round-trips it to this address before answering,
	// so client load on httpd drives the two communicating services —
	// and, with the mysql deadlock armed, the FLUSH-vs-DML lock cycle —
	// across a real process boundary.
	Backend string
	// BackendTimeout bounds one backend dial+roundtrip (default 2s). A
	// deadlocked or partitioned backend turns into a 502 at this bound,
	// not a wedged httpd handler.
	BackendTimeout time.Duration
}

// StartNet starts the server on a loopback listener. The engine's
// OverloadConfig (when installed) doubles as the accept loop's shedding
// policy: at or above the global high-water mark new connections are
// answered "503 shed" and dropped, and each shed is recorded as an
// overload-shed guard incident.
func StartNet(cfg Config, ncfg NetConfig) (*NetServer, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("httpd: StartNet requires Config.Engine")
	}
	cfg.resolveHandles()
	if ncfg.BackendTimeout <= 0 {
		ncfg.BackendTimeout = 2 * time.Second
	}
	ns := &NetServer{cfg: &cfg, ncfg: ncfg}
	ns.srv = NewServer(ns.cfg)
	kit, err := appkit.StartSocketServer(appkit.SocketServerConfig{
		Addr:         ncfg.Addr,
		Handler:      ns.handle,
		Shed:         engineShed(ns.cfg),
		OnShed:       func(reason string) { cfg.Engine.RecordIncident(guard.KindOverloadShed, "httpd.accept", 0, reason) },
		ShedResponse: "503 shed",
		ConnTimeout:  ncfg.ConnTimeout,
		DrainTimeout: ncfg.DrainTimeout,
	})
	if err != nil {
		return nil, err
	}
	ns.kit = kit
	return ns, nil
}

// engineShed builds the accept-loop shedding policy from the engine's
// installed overload bounds: shed while the postponed population sits
// at or above the global high-water mark.
func engineShed(cfg *Config) func() (string, bool) {
	e := cfg.Engine
	return func() (string, bool) {
		ov, ok := e.Overload()
		if !ok || ov.GlobalHighWater <= 0 {
			return "", false
		}
		if pop := e.PostponedTotal(); pop >= int64(ov.GlobalHighWater) {
			return fmt.Sprintf("accept shed: postponed population %d at high water %d", pop, ov.GlobalHighWater), true
		}
		return "", false
	}
}

// Addr returns the server's listen address.
func (ns *NetServer) Addr() string { return ns.kit.Addr() }

// Server returns the underlying httpd reproduction (log inspection).
func (ns *NetServer) Server() *Server { return ns.srv }

// LogLines reports how many access-log lines are intact plus the raw
// buffer — the corruption check, exported for socket-mode harness rows.
func (ns *NetServer) LogLines() (intact int, raw string) { return ns.srv.log.Lines() }

// HandledCount returns the server-side served-requests counter (the
// denominator of the corruption check).
func (ns *NetServer) HandledCount() int64 { return ns.srv.served.Load("httpd:net.check") }

// ShedCount returns how many connections the accept loop shed.
func (ns *NetServer) ShedCount() int64 { return ns.kit.ShedCount() }

// Served returns how many request lines were answered.
func (ns *NetServer) Served() int64 { return ns.kit.Served() }

// Close drains the server gracefully.
func (ns *NetServer) Close() error { return ns.kit.Close() }

// BackendStats reports the backend round-trip counters (zero unless
// NetConfig.Backend is set).
func (ns *NetServer) BackendStats() (ok, errs int64) {
	return ns.backendOK.Load(), ns.backendErrs.Load()
}

// backendStatement derives the mysql statement a GET implies: even path
// ordinals write (DML), odd ones rotate logs (FLUSH) — the crossing
// pair that drives the FLUSH-vs-DML deadlock when the backend has it
// armed. A path without a trailing number falls back to the request id.
func backendStatement(path string, id int) string {
	ord := id
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		if n, err := strconv.Atoi(path[i+1:]); err == nil {
			ord = n
		}
	}
	if ord%2 == 0 {
		return fmt.Sprintf("INSERT INTO t1 VALUES ('page-%d')", ord)
	}
	return "FLUSH LOGS"
}

// backendExec round-trips one statement to the mysql backend on a fresh
// connection bounded by BackendTimeout. Per-request dialing keeps the
// wire simple and makes a restarted backend immediately usable — the
// self-healing supervisor relaunches workers on their original address.
func (ns *NetServer) backendExec(stmt string) (string, error) {
	deadline := time.Now().Add(ns.ncfg.BackendTimeout)
	conn, err := net.DialTimeout("tcp", ns.ncfg.Backend, ns.ncfg.BackendTimeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", stmt); err != nil {
		return "", err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(reply, "\r\n"), nil
}

// handle serves one request line. The connection ordinal's parity is
// the worker identity the breakpoints align, so any two concurrent
// connections of opposite parity can reproduce the two-worker races.
func (ns *NetServer) handle(conn, _ int, line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "400 parse error"
	}
	worker := conn % 2
	switch strings.ToUpper(fields[0]) {
	case "GET":
		if len(fields) < 2 {
			return "400 parse error"
		}
		req := Request{
			ID:   int(ns.reqID.Add(1)),
			Path: fields[1],
			Big:  len(fields) > 2 && strings.EqualFold(fields[2], "big"),
		}
		if err := ns.srv.Handle(req, worker); err != nil {
			return "500 " + err.Error()
		}
		if ns.ncfg.Backend != "" {
			reply, err := ns.backendExec(backendStatement(req.Path, req.ID))
			if err != nil {
				ns.backendErrs.Add(1)
				return fmt.Sprintf("502 id=%d db %v", req.ID, err)
			}
			ns.backendOK.Add(1)
			return fmt.Sprintf("200 id=%d OK db=%s", req.ID, reply)
		}
		return fmt.Sprintf("200 id=%d OK", req.ID)
	case "RELOAD":
		size := 1 << 10
		if len(fields) > 1 {
			if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
				size = n
			}
		}
		ns.srv.Reload(size)
		return fmt.Sprintf("200 reloaded %d", size)
	default:
		return "400 parse error"
	}
}
