package httpd

import (
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func quietCfg() *Config {
	e := core.NewEngine()
	e.SetEnabled(false)
	return &Config{Engine: e}
}

func TestHandleServesAndLogs(t *testing.T) {
	cfg := quietCfg()
	srv := NewServer(cfg)
	if err := srv.Handle(Request{ID: 1, Path: "/a"}, 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Handle(Request{ID: 2, Path: "/b"}, 1); err != nil {
		t.Fatal(err)
	}
	intact, raw := srv.log.Lines()
	if intact != 2 {
		t.Fatalf("intact lines = %d\n%s", intact, raw)
	}
	if !strings.Contains(raw, "id=1 path=/a") {
		t.Fatalf("log missing entry: %s", raw)
	}
	if srv.served.Load("t") != 2 {
		t.Fatal("served counter wrong")
	}
}

func TestReloadShrinksBuffer(t *testing.T) {
	cfg := quietCfg()
	srv := NewServer(cfg)
	srv.Reload(1 << 10)
	if got := srv.conn.capacity.Load("t"); got != 1<<10 {
		t.Fatalf("capacity = %d", got)
	}
	if got := len(*srv.conn.backing.Load("t")); got != 1<<10 {
		t.Fatalf("backing = %d", got)
	}
	// A big response after a completed reload is clipped, not a crash.
	if err := srv.Handle(Request{ID: 3, Path: "/big", Big: true}, 0); err != nil {
		t.Fatalf("post-reload big request crashed: %v", err)
	}
}

func TestLogCorruptionReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: LogCorruption, Breakpoint: true,
			Timeout: 500 * time.Millisecond})
		if r.Status != appkit.LogCorrupt || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestServerCrashReproduces(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: ServerCrash, Breakpoint: true,
			Timeout: 500 * time.Millisecond})
		if r.Status != appkit.Crash || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
		if !strings.Contains(r.Detail, "buffer overflow") {
			t.Fatalf("run %d: detail %q", i, r.Detail)
		}
	}
}

func TestWithoutBreakpointsMostlyOK(t *testing.T) {
	for _, bug := range []Bug{LogCorruption, ServerCrash} {
		bugs := 0
		for i := 0; i < 5; i++ {
			e := core.NewEngine()
			e.SetEnabled(false)
			if Run(Config{Engine: e, Bug: bug}).Status.Buggy() {
				bugs++
			}
		}
		if bugs > 2 {
			t.Errorf("bug %v manifested %d/5 without breakpoints", bug, bugs)
		}
	}
}
