package httpd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak/internal/core"
)

func netRoundTrip(t *testing.T, addr, line string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(resp, "\n")
}

func TestNetServerProtocol(t *testing.T) {
	e := core.NewEngine()
	ns, err := StartNet(Config{Engine: e, Bug: LogCorruption, Breakpoint: false, Timeout: time.Millisecond}, NetConfig{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer ns.Close()

	if resp := netRoundTrip(t, ns.Addr(), "GET /index"); !strings.HasPrefix(resp, "200 id=") {
		t.Fatalf("GET = %q, want 200", resp)
	}
	if resp := netRoundTrip(t, ns.Addr(), "RELOAD 2048"); resp != "200 reloaded 2048" {
		t.Fatalf("RELOAD = %q", resp)
	}
	if resp := netRoundTrip(t, ns.Addr(), "BOGUS"); resp != "400 parse error" {
		t.Fatalf("bogus = %q, want 400", resp)
	}
	if ns.HandledCount() == 0 {
		t.Fatalf("served counter never advanced")
	}
	if intact, _ := ns.LogLines(); intact == 0 {
		t.Fatalf("no intact log lines after clean GETs")
	}
}

// fakeBackend is a line server that records every statement it is sent
// and answers "ok 1" — the mysql wire shape without the mysql package.
func fakeBackend(t *testing.T) (addr string, stmts func() []string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	//cbvet:ignore rawsync guards test-only bookkeeping that never participates in a modeled deadlock
	var mu sync.Mutex
	var got []string
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					mu.Lock()
					got = append(got, sc.Text())
					mu.Unlock()
					fmt.Fprintf(conn, "ok 1\n")
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

// TestNetServerBackendWiring drives GETs through an httpd wired to a
// backend: even path ordinals must arrive as INSERTs, odd ones as FLUSH
// LOGS, and the httpd response must relay the backend's reply.
func TestNetServerBackendWiring(t *testing.T) {
	backend, stmts := fakeBackend(t)
	e := core.NewEngine()
	ns, err := StartNet(Config{Engine: e, Bug: LogCorruption, Breakpoint: false, Timeout: time.Millisecond},
		NetConfig{Backend: backend, BackendTimeout: time.Second})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer ns.Close()

	if resp := netRoundTrip(t, ns.Addr(), "GET /page/4"); !strings.Contains(resp, "db=ok 1") {
		t.Fatalf("GET /page/4 = %q, want relayed db=ok 1", resp)
	}
	if resp := netRoundTrip(t, ns.Addr(), "GET /page/7"); !strings.Contains(resp, "db=ok 1") {
		t.Fatalf("GET /page/7 = %q, want relayed db=ok 1", resp)
	}
	got := stmts()
	if len(got) != 2 || got[0] != "INSERT INTO t1 VALUES ('page-4')" || got[1] != "FLUSH LOGS" {
		t.Fatalf("backend received %q, want [INSERT INTO t1 VALUES ('page-4') FLUSH LOGS]", got)
	}
	if ok, errs := ns.BackendStats(); ok != 2 || errs != 0 {
		t.Fatalf("backend stats = ok %d errs %d, want 2/0", ok, errs)
	}
}

// TestNetServerBackendDown bounds the failure: a dead backend is a 502
// at the backend timeout, never a wedged httpd handler.
func TestNetServerBackendDown(t *testing.T) {
	// An address nothing listens on: reserve a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()

	e := core.NewEngine()
	ns, err := StartNet(Config{Engine: e, Bug: LogCorruption, Breakpoint: false, Timeout: time.Millisecond},
		NetConfig{Backend: dead, BackendTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer ns.Close()
	start := time.Now()
	if resp := netRoundTrip(t, ns.Addr(), "GET /page/2"); !strings.HasPrefix(resp, "502 ") {
		t.Fatalf("GET with dead backend = %q, want 502", resp)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead backend took %s, want bounded by the 500ms backend timeout", elapsed)
	}
	if ok, errs := ns.BackendStats(); ok != 0 || errs != 1 {
		t.Fatalf("backend stats = ok %d errs %d, want 0/1", ok, errs)
	}
}

func TestNetServerRequiresEngine(t *testing.T) {
	if _, err := StartNet(Config{}, NetConfig{}); err == nil {
		t.Fatalf("StartNet accepted a nil engine")
	}
}
