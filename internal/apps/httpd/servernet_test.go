package httpd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cbreak/internal/core"
)

func netRoundTrip(t *testing.T, addr, line string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(resp, "\n")
}

func TestNetServerProtocol(t *testing.T) {
	e := core.NewEngine()
	ns, err := StartNet(Config{Engine: e, Bug: LogCorruption, Breakpoint: false, Timeout: time.Millisecond}, NetConfig{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer ns.Close()

	if resp := netRoundTrip(t, ns.Addr(), "GET /index"); !strings.HasPrefix(resp, "200 id=") {
		t.Fatalf("GET = %q, want 200", resp)
	}
	if resp := netRoundTrip(t, ns.Addr(), "RELOAD 2048"); resp != "200 reloaded 2048" {
		t.Fatalf("RELOAD = %q", resp)
	}
	if resp := netRoundTrip(t, ns.Addr(), "BOGUS"); resp != "400 parse error" {
		t.Fatalf("bogus = %q, want 400", resp)
	}
	if ns.HandledCount() == 0 {
		t.Fatalf("served counter never advanced")
	}
	if intact, _ := ns.LogLines(); intact == 0 {
		t.Fatalf("no intact log lines after clean GETs")
	}
}

func TestNetServerRequiresEngine(t *testing.T) {
	if _, err := StartNet(Config{}, NetConfig{}); err == nil {
		t.Fatalf("StartNet accepted a nil engine")
	}
}
