package httpd

import (
	"strings"
	"testing"
)

func TestAccessLogLinesParsing(t *testing.T) {
	cfg := quietCfg()
	l := NewAccessLog(1024, cfg)
	l.Append("id=1 path=/a status=200 OK\n", 0)
	l.Append("id=2 path=/b status=200 OK\n", 1)
	intact, raw := l.Lines()
	if intact != 2 {
		t.Fatalf("intact = %d\n%s", intact, raw)
	}
	// A garbled line (no trailing OK) is not counted.
	l.Append("id=3 path=/c status=200 OK", 0) // missing newline: merges with next
	l.Append("junk\n", 1)
	intact, _ = l.Lines()
	if intact != 2 {
		t.Fatalf("garbled lines counted: %d", intact)
	}
}

func TestAccessLogRespectsCapacity(t *testing.T) {
	cfg := quietCfg()
	l := NewAccessLog(16, cfg)
	l.Append("id=1 path=/very-long-line status=200 OK\n", 0)
	l.Append("id=2 path=/more status=200 OK\n", 0)
	// Writes past capacity are dropped, not panicking.
	intact, raw := l.Lines()
	if len(raw) > 16 {
		t.Fatalf("log overflowed its buffer: %d bytes", len(raw))
	}
	_ = intact
}

func TestConnBufDefaults(t *testing.T) {
	cb := NewConnBuf(4096)
	if got := cb.capacity.Load("t"); got != 4096 {
		t.Fatalf("capacity = %d", got)
	}
	if got := len(*cb.backing.Load("t")); got != 4096 {
		t.Fatalf("backing = %d", got)
	}
}

func TestSmallResponsesClippedNotCrashing(t *testing.T) {
	cfg := quietCfg()
	srv := NewServer(cfg)
	// Shrink properly (capacity updated after swap, but sequentially
	// both take effect), then serve a big request: clipped, no crash.
	srv.Reload(256)
	if err := srv.Handle(Request{ID: 9, Path: "/big", Big: true}, 0); err != nil {
		t.Fatalf("sequential reload + big request crashed: %v", err)
	}
	intact, raw := srv.log.Lines()
	if intact != 1 || !strings.Contains(raw, "id=9") {
		t.Fatalf("log: %d intact, %q", intact, raw)
	}
}
