// Package httpd models Apache httpd 2.0.45 as evaluated in Table 2 of
// the paper: a multi-worker web server with two reproducible bugs.
//
//   - Log corruption (Apache bug #25520, 1 concurrent breakpoint): the
//     access log's buffered writer claims space with a racy offset
//     read-modify-write; two workers that claim the same offset write
//     their lines over each other, garbling the log.
//
//   - Server crash ("buffer overflow", 3 concurrent breakpoints): a
//     worker validates a response against the shared connection buffer's
//     capacity field while a configuration reload swaps the backing
//     buffer for a smaller one and only then updates the capacity field
//     (the inverted-order bug). The worker's write lands in the shrunken
//     buffer: an overflow that crashes the server. Three breakpoints
//     choreograph the alignment, the swap ordering, and the stale
//     capacity, matching the paper's 3-CBR count.
package httpd

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// Breakpoint names for engine statistics.
const (
	BPLogOffset = "httpd.log.cbr1"   // racy log offset claim
	BPAlign     = "httpd.crash.cbr1" // worker check vs reload entry
	BPSwap      = "httpd.crash.cbr2" // backing swap vs backing load
	BPStaleCap  = "httpd.crash.cbr3" // write vs capacity-field update
)

// Request is one incoming request.
type Request struct {
	ID   int
	Path string
	// Big requests produce large responses (the overflow payload).
	Big bool
}

// AccessLog is the buffered access log with the racy offset claim.
type AccessLog struct {
	buf  []byte
	off  *memory.Cell
	wrMu *locks.Mutex // guards the byte copy itself (the bug is the offset)
	cfg  *Config
}

// NewAccessLog returns a log buffer of the given size.
func NewAccessLog(size int, cfg *Config) *AccessLog {
	return &AccessLog{
		buf:  make([]byte, size),
		off:  memory.NewCell(nil, "httpd.log.off", 0),
		wrMu: locks.NewMutex("httpd.log.write"),
		cfg:  cfg,
	}
}

// Append claims space with a racy read-modify-write of the offset and
// copies the line in. Two workers claiming the same offset corrupt each
// other's lines.
func (l *AccessLog) Append(line string, worker int) {
	off := l.off.Load("httpd:log.off.read")
	if l.cfg.bugCorrupt() {
		l.cfg.bpLogOffset().Trigger(core.NewConflictTrigger(BPLogOffset, l.off), worker == 0,
			core.Options{Timeout: l.cfg.Timeout, Bound: 1})
	}
	//cbvet:ignore conflicts intentional httpd race: the unguarded offset advance IS the reproduced log-corruption bug
	l.off.Store("httpd:log.off.write", off+int64(len(line)))
	l.wrMu.Lock()
	if int(off)+len(line) <= len(l.buf) {
		copy(l.buf[off:], line)
	}
	l.wrMu.Unlock()
}

// Lines parses the log buffer back into lines and reports how many are
// intact (start with "id=" and end with a matching terminator).
func (l *AccessLog) Lines() (intact int, raw string) {
	l.wrMu.Lock()
	end := l.off.Load("httpd:log.scan")
	if end > int64(len(l.buf)) {
		end = int64(len(l.buf))
	}
	raw = string(l.buf[:end])
	l.wrMu.Unlock()
	for _, line := range strings.Split(raw, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "id=") && strings.HasSuffix(line, "OK") {
			intact++
		}
	}
	return intact, raw
}

// ConnBuf is the shared connection output buffer whose capacity field
// and backing array are updated in the wrong order during reloads.
type ConnBuf struct {
	capacity *memory.Cell
	backing  *memory.Ref[[]byte]
}

// NewConnBuf returns a buffer with the given capacity.
func NewConnBuf(n int) *ConnBuf {
	b := make([]byte, n)
	return &ConnBuf{
		capacity: memory.NewCell(nil, "httpd.conn.cap", int64(n)),
		backing:  memory.NewRef(nil, "httpd.conn.backing", &b),
	}
}

// Server is the worker-pool web server.
type Server struct {
	log    *AccessLog
	conn   *ConnBuf
	served *memory.Cell
	cfg    *Config
}

// NewServer returns a server with a 64 KiB log and an 8 KiB connection
// buffer.
func NewServer(cfg *Config) *Server {
	return &Server{
		log:    NewAccessLog(64<<10, cfg),
		conn:   NewConnBuf(8 << 10),
		served: memory.NewCell(nil, "httpd.served", 0),
		cfg:    cfg,
	}
}

// Handle serves one request: build the response, validate it against the
// connection buffer capacity, and write it.
func (s *Server) Handle(req Request, worker int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("worker %d: %v", worker, p)
		}
	}()
	size := 512
	if req.Big {
		size = 6 << 10
	}
	resp := strings.Repeat("x", size)

	// Capacity check against the (possibly stale) capacity field.
	capNow := s.conn.capacity.Load("httpd:cap.check")
	if s.cfg.bugCrash() && req.Big {
		s.cfg.bpAlign().Trigger(core.NewConflictTrigger(BPAlign, s.conn), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	if int64(len(resp)) > capNow {
		resp = resp[:capNow]
	}
	if s.cfg.bugCrash() && req.Big {
		// cbr2 second side: the reload's backing swap is ordered into
		// the window between the capacity check and the write.
		s.cfg.bpSwap().Trigger(core.NewConflictTrigger(BPSwap, s.conn.backing), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	backing := s.conn.backing.Load("httpd:backing.load")
	if len(resp) > len(*backing) {
		// The unchecked memcpy of the original bug: model the overflow
		// as the crash it caused.
		panic(fmt.Sprintf("buffer overflow: response %d bytes into %d-byte buffer",
			len(resp), len(*backing)))
	}
	copy(*backing, resp)
	if s.cfg.bugCrash() && req.Big {
		// cbr3: order this write before the reload's capacity-field
		// update, keeping the stale capacity in force.
		s.cfg.bpStaleCap().Trigger(core.NewConflictTrigger(BPStaleCap, s.conn.capacity), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	s.served.AtomicAdd("httpd:served", 1)
	s.log.Append(fmt.Sprintf("id=%d path=%s status=200 OK\n", req.ID, req.Path), worker)
	return nil
}

// Reload swaps the connection buffer for a smaller one and only
// afterwards updates the capacity field — the inverted order that opens
// the overflow window.
func (s *Server) Reload(newSize int) {
	if s.cfg.bugCrash() {
		s.cfg.bpAlign().Trigger(core.NewConflictTrigger(BPAlign, s.conn), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	}
	nb := make([]byte, newSize)
	swap := func() { s.conn.backing.Store("httpd:backing.swap", &nb) }
	if s.cfg.bugCrash() {
		s.cfg.bpSwap().TriggerAnd(core.NewConflictTrigger(BPSwap, s.conn.backing), true,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1}, swap)
		// cbr3 second side: the capacity update waits for the worker's
		// write.
		s.cfg.bpStaleCap().Trigger(core.NewConflictTrigger(BPStaleCap, s.conn.capacity), false,
			core.Options{Timeout: s.cfg.Timeout, Bound: 1})
	} else {
		swap()
	}
	s.conn.capacity.Store("httpd:cap.update", int64(newSize))
}

// Bug selects which Table 2 bug a run exercises.
type Bug int

// The httpd bugs of Table 2.
const (
	LogCorruption Bug = iota
	ServerCrash
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	// Requests is the client load (default 60).
	Requests int

	// bps caches the run's breakpoint handles, resolved once in Run so
	// the trigger sites skip the per-call registry lookup. Left nil when
	// a Config is built directly (tests); the accessors then resolve per
	// call rather than populating the cache lazily, because httpd's
	// workers race by design and a lazy write would add an unrelated
	// data race on the Config itself.
	bps *bpHandles
}

// bpHandles bundles one handle per httpd breakpoint.
type bpHandles struct {
	logOffset, align, swap, staleCap *core.Breakpoint
}

func (c *Config) resolveHandles() {
	c.bps = &bpHandles{
		logOffset: c.Engine.Breakpoint(BPLogOffset),
		align:     c.Engine.Breakpoint(BPAlign),
		swap:      c.Engine.Breakpoint(BPSwap),
		staleCap:  c.Engine.Breakpoint(BPStaleCap),
	}
}

func (c *Config) bpLogOffset() *core.Breakpoint {
	if h := c.bps; h != nil {
		return h.logOffset
	}
	return c.Engine.Breakpoint(BPLogOffset)
}

func (c *Config) bpAlign() *core.Breakpoint {
	if h := c.bps; h != nil {
		return h.align
	}
	return c.Engine.Breakpoint(BPAlign)
}

func (c *Config) bpSwap() *core.Breakpoint {
	if h := c.bps; h != nil {
		return h.swap
	}
	return c.Engine.Breakpoint(BPSwap)
}

func (c *Config) bpStaleCap() *core.Breakpoint {
	if h := c.bps; h != nil {
		return h.staleCap
	}
	return c.Engine.Breakpoint(BPStaleCap)
}

func (c *Config) bugCorrupt() bool {
	return c != nil && c.Breakpoint && c.Bug == LogCorruption
}

func (c *Config) bugCrash() bool {
	return c != nil && c.Breakpoint && c.Bug == ServerCrash
}

func (c *Config) requests() int {
	if c.Requests <= 0 {
		return 60
	}
	return c.Requests
}

// Run drives the server with two request workers (and, for the crash
// bug, a concurrent configuration reload) and classifies the outcome.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	cfg.resolveHandles()
	srv := NewServer(&cfg)
	res := appkit.RunWithDeadline(60*time.Second, func() appkit.Result {
		errCh := make(chan error, 2)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < cfg.requests()/2; i++ {
					req := Request{ID: w*1000 + i, Path: fmt.Sprintf("/page/%d", i),
						Big: cfg.Bug == ServerCrash && i == 5}
					if err := srv.Handle(req, w); err != nil {
						errCh <- err
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}(w)
		}
		if cfg.Bug == ServerCrash {
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Millisecond)
				srv.Reload(1 << 10)
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return appkit.Result{Status: appkit.Crash, Detail: err.Error()}
		default:
		}
		if cfg.Bug == LogCorruption {
			intact, _ := srv.log.Lines()
			if got := srv.served.Load("check"); intact < int(got) {
				return appkit.Result{Status: appkit.LogCorrupt,
					Detail: fmt.Sprintf("only %d/%d log lines intact", intact, got)}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})
	switch cfg.Bug {
	case LogCorruption:
		res.BPHit = cfg.Engine.Stats(BPLogOffset).Hits() > 0
	default:
		res.BPHit = cfg.Engine.Stats(BPSwap).Hits() > 0
	}
	return res
}
