// Package syncmap models java.util.Collections$SynchronizedMap backed by
// a LinkedHashMap (Table 1 rows "synchronizedMap"). Individual methods
// are synchronized; cross-method sequences race:
//
//   - atomicity1: containsKey(k) followed by get(k) interleaved with a
//     concurrent remove(k) returns a stale missing value — a silent
//     wrong answer (the paper's table shows no visible error for this
//     row; we classify it as a test failure).
//   - deadlock1: two maps cross-calling putAll acquire the two monitors
//     in opposite orders and deadlock.
package syncmap

import (
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// Breakpoint names for engine statistics.
const (
	BPAtomicity = "syncmap.atomicity1"
	BPDeadlock  = "syncmap.deadlock1"
)

// Map is a synchronized insertion-ordered map from string to int64
// (LinkedHashMap analog: iteration follows insertion order).
type Map struct {
	mu    *locks.Mutex
	m     map[string]int64
	order []string
}

// NewMap returns an empty synchronized map.
func NewMap(name string) *Map {
	return &Map{mu: locks.NewMutex(name), m: make(map[string]int64)}
}

// Put inserts or updates k (synchronized).
func (s *Map) Put(k string, v int64) {
	s.mu.With(func() { s.putLocked(k, v) })
}

func (s *Map) putLocked(k string, v int64) {
	if _, ok := s.m[k]; !ok {
		s.order = append(s.order, k)
	}
	s.m[k] = v
}

// Get returns the value for k and whether it was present (synchronized).
func (s *Map) Get(k string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// ContainsKey reports presence of k (synchronized).
func (s *Map) ContainsKey(k string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[k]
	return ok
}

// Remove deletes k (synchronized).
func (s *Map) Remove(k string) {
	s.mu.With(func() {
		if _, ok := s.m[k]; ok {
			delete(s.m, k)
			for i, o := range s.order {
				if o == k {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	})
}

// Size returns the entry count (synchronized).
func (s *Map) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys returns the keys in insertion order (synchronized).
func (s *Map) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// PutAll copies every entry of other into s, holding s's monitor then
// other's — the nested acquisition that deadlocks when two maps
// cross-call PutAll.
func (s *Map) PutAll(other *Map, cfg *Config) {
	s.mu.LockAt("SynchronizedMap.putAll:outer")
	defer s.mu.Unlock()
	if cfg != nil && cfg.Breakpoint && cfg.Bug == Deadlock {
		cfg.Engine.TriggerHere(
			core.NewDeadlockTrigger(BPDeadlock, s.mu, other.mu), cfg.first(s),
			core.Options{Timeout: cfg.Timeout})
	}
	other.mu.LockAt("SynchronizedMap.putAll:inner")
	defer other.mu.Unlock()
	for _, k := range other.order {
		s.putLocked(k, other.m[k])
	}
}

// Bug selects the seeded bug.
type Bug int

const (
	// Atomicity is the containsKey/get vs remove violation.
	Atomicity Bug = iota
	// Deadlock is the crossed putAll deadlock.
	Deadlock
)

// Config parameterizes a run.
type Config struct {
	Engine     *core.Engine
	Bug        Bug
	Breakpoint bool
	Timeout    time.Duration
	StallAfter time.Duration

	firstMap *Map
}

func (c *Config) first(m *Map) bool { return m == c.firstMap }

func (c *Config) stallAfter() time.Duration {
	if c.StallAfter <= 0 {
		return 2 * time.Second
	}
	return c.StallAfter
}

// Run executes the selected scenario once.
func Run(cfg Config) appkit.Result {
	if cfg.Engine == nil {
		cfg.Engine = core.NewEngine()
	}
	switch cfg.Bug {
	case Deadlock:
		return runDeadlock(cfg)
	default:
		return runAtomicity(cfg)
	}
}

// runAtomicity races a reader doing containsKey(k) then get(k) against a
// writer that periodically removes and re-inserts k. A stale read (key
// present at the check, absent at the get) is the silent wrong answer.
func runAtomicity(cfg Config) appkit.Result {
	m := NewMap("map")
	const key = "session-42"
	m.Put(key, 1)
	opts := core.Options{Timeout: cfg.Timeout, Bound: 1}
	res := appkit.RunWithDeadline(30*time.Second, func() appkit.Result {
		stale := make(chan bool, 1)
		done := make(chan struct{}, 1)
		// Resolve the handle once; the trigger sites below run per
		// iteration and skip the registry lookup.
		var bpAtom *core.Breakpoint
		if cfg.Breakpoint {
			bpAtom = cfg.Engine.Breakpoint(BPAtomicity)
		}
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 2000; j++ {
				if !m.ContainsKey(key) {
					continue
				}
				if cfg.Breakpoint {
					bpAtom.Trigger(core.NewAtomicityTrigger(BPAtomicity, m), false, opts)
				}
				if _, ok := m.Get(key); !ok {
					select {
					case stale <- true:
					default:
					}
					return
				}
			}
		}()
		go func() {
			for j := 0; j < 50; j++ {
				remove := func() { m.Remove(key) }
				if cfg.Breakpoint {
					bpAtom.TriggerAnd(core.NewAtomicityTrigger(BPAtomicity, m), true, opts, remove)
				} else {
					remove()
				}
				time.Sleep(time.Millisecond) // unrelated work
				m.Put(key, int64(j))
			}
		}()
		<-done
		select {
		case <-stale:
			return appkit.Result{Status: appkit.TestFail, Detail: "containsKey/get saw stale state"}
		default:
			return appkit.Result{Status: appkit.OK}
		}
	})
	res.BPHit = cfg.Engine.Stats(BPAtomicity).Hits() > 0
	return res
}

func runDeadlock(cfg Config) appkit.Result {
	m1 := NewMap("m1")
	m2 := NewMap("m2")
	m1.Put("a", 1)
	m2.Put("b", 2)
	cfg.firstMap = m1
	res := appkit.RunWithDeadline(cfg.stallAfter(), func() appkit.Result {
		done := make(chan struct{}, 2)
		go func() { m1.PutAll(m2, &cfg); done <- struct{}{} }()
		go func() { m2.PutAll(m1, &cfg); done <- struct{}{} }()
		<-done
		<-done
		return appkit.Result{Status: appkit.OK}
	})
	res.BPHit = cfg.Engine.Stats(BPDeadlock).Hits() > 0
	return res
}
