package syncmap

import (
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
)

func TestMapBasics(t *testing.T) {
	m := NewMap("m")
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 3) // update keeps order
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %d %v", v, ok)
	}
	if !m.ContainsKey("b") || m.ContainsKey("c") {
		t.Fatal("ContainsKey broken")
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("insertion order broken: %v", keys)
	}
	m.Remove("a")
	if m.ContainsKey("a") || m.Size() != 1 {
		t.Fatal("Remove broken")
	}
	if got := m.Keys(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("order after remove: %v", got)
	}
}

func TestPutAllSequential(t *testing.T) {
	a, b := NewMap("a"), NewMap("b")
	a.Put("x", 1)
	b.Put("y", 2)
	b.Put("z", 3)
	a.PutAll(b, nil)
	if a.Size() != 3 {
		t.Fatalf("PutAll size = %d", a.Size())
	}
	if v, _ := a.Get("z"); v != 3 {
		t.Fatalf("PutAll value = %d", v)
	}
}

func TestAtomicityBreakpointReproducesStaleRead(t *testing.T) {
	for i := 0; i < 10; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Atomicity, Breakpoint: true, Timeout: 500 * time.Millisecond})
		if r.Status != appkit.TestFail {
			t.Fatalf("run %d: status = %v (want test fail): %s", i, r.Status, r)
		}
		if !r.BPHit {
			t.Fatalf("run %d: stale read without breakpoint hit", i)
		}
	}
}

func TestDeadlockBreakpointReproducesStall(t *testing.T) {
	for i := 0; i < 5; i++ {
		e := core.NewEngine()
		r := Run(Config{Engine: e, Bug: Deadlock, Breakpoint: true,
			Timeout: 500 * time.Millisecond, StallAfter: 300 * time.Millisecond})
		if r.Status != appkit.Stall || !r.BPHit {
			t.Fatalf("run %d: %s", i, r)
		}
	}
}

func TestWithoutBreakpointMostlyOK(t *testing.T) {
	bugs := 0
	for i := 0; i < 20; i++ {
		e := core.NewEngine()
		e.SetEnabled(false)
		if Run(Config{Engine: e, Bug: Atomicity}).Status.Buggy() {
			bugs++
		}
	}
	if bugs > 5 {
		t.Fatalf("bug manifested %d/20 without breakpoint", bugs)
	}
}
