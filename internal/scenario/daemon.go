package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cbreak/internal/journal/sink"
)

// Daemon is one cbserverd process under scenario control, addressed
// exactly as an operator would: the admin HTTP listener and the chaos
// proxy socket, both parsed from the daemon's own boot banner.
type Daemon struct {
	// AdminAddr is the admin HTTP host:port.
	AdminAddr string
	// ProxyAddr is the chaos proxy host:port load clients dial.
	ProxyAddr string

	c    *Context
	cmd  *exec.Cmd
	log  *os.File
	done chan struct{}

	mu      sync.Mutex
	waitErr error
	killed  bool
}

// StartDaemon boots c.Bin with the given args plus ephemeral admin and
// proxy listeners, tees its output into <dir>/<name>.log, and waits for
// the boot banner to learn the real addresses. The daemon is killed by
// Context.Cleanup if the scenario doesn't stop it itself.
func (c *Context) StartDaemon(name string, args ...string) (*Daemon, error) {
	logPath := c.Path(name + ".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	full := append([]string{"-addr", "127.0.0.1:0", "-proxy-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(c.Bin, full...)
	cmd.Stderr = logFile
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logFile.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	c.Logf("daemon %s: pid %d (%s)", name, cmd.Process.Pid, strings.Join(full, " "))

	d := &Daemon{c: c, cmd: cmd, log: logFile, done: make(chan struct{})}
	c.daemons = append(c.daemons, d)

	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			if strings.HasPrefix(line, "cbserverd: admin http://") {
				select {
				case banner <- line:
				default:
				}
			}
		}
	}()
	go func() {
		err := cmd.Wait()
		d.mu.Lock()
		d.waitErr = err
		d.mu.Unlock()
		logFile.Sync()
		close(d.done)
	}()

	select {
	case line := <-banner:
		admin, proxy, err := parseBanner(line)
		if err != nil {
			d.Kill()
			return nil, err
		}
		d.AdminAddr, d.ProxyAddr = admin, proxy
		c.Logf("daemon %s: admin %s proxy %s", name, admin, proxy)
		return d, nil
	case <-d.done:
		return nil, fmt.Errorf("daemon %s exited before its banner (%v) — see %s", name, d.waitErrLocked(), logPath)
	case <-time.After(20 * time.Second):
		d.Kill()
		return nil, fmt.Errorf("daemon %s: no boot banner within 20s — see %s", name, logPath)
	}
}

// parseBanner extracts the admin and proxy addresses from
// "cbserverd: admin http://H:P  apps ...  proxy H:P -> H:P".
func parseBanner(line string) (admin, proxy string, err error) {
	fields := strings.Fields(line)
	for i, f := range fields {
		switch {
		case f == "admin" && i+1 < len(fields):
			admin = strings.TrimPrefix(fields[i+1], "http://")
		case f == "proxy" && i+1 < len(fields):
			proxy = fields[i+1]
		}
	}
	if admin == "" || proxy == "" {
		return "", "", fmt.Errorf("unparseable boot banner: %q", line)
	}
	return admin, proxy, nil
}

func (d *Daemon) waitErrLocked() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waitErr
}

// Pid returns the daemon's own process id.
func (d *Daemon) Pid() int { return d.cmd.Process.Pid }

// Exited reports whether the daemon process has exited.
func (d *Daemon) Exited() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// Stop drains the daemon with SIGTERM and waits for a clean exit,
// escalating to SIGKILL after the timeout.
func (d *Daemon) Stop(timeout time.Duration) error {
	if d.Exited() {
		return d.waitErrLocked()
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-d.done:
		return d.waitErrLocked()
	case <-time.After(timeout):
		d.Kill()
		return fmt.Errorf("daemon did not drain within %s (killed)", timeout)
	}
}

// Kill force-terminates the daemon (idempotent). Supervised workers die
// with it via their parent-death signal.
func (d *Daemon) Kill() {
	d.mu.Lock()
	killed := d.killed
	d.killed = true
	d.mu.Unlock()
	if killed || d.Exited() {
		return
	}
	d.cmd.Process.Kill()
	select {
	case <-d.done:
	case <-time.After(5 * time.Second):
	}
}

// Get performs one admin GET and returns the status code and body.
func (d *Daemon) Get(path string) (int, string, error) {
	resp, err := http.Get("http://" + d.AdminAddr + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

// Post performs one admin POST with form values.
func (d *Daemon) Post(path string, form url.Values) (int, string, error) {
	resp, err := http.PostForm("http://"+d.AdminAddr+path, form)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

// AppRow is one supervised app's row in GET /status.
type AppRow struct {
	Name          string `json:"name"`
	State         string `json:"state"`
	Addr          string `json:"addr"`
	Pid           int    `json:"pid"`
	Restarts      int64  `json:"restarts"`
	Crashes       int64  `json:"crashes"`
	Quarantines   int64  `json:"quarantines"`
	ProbeFailures int64  `json:"probe_failures"`
	LastExit      string `json:"last_exit"`
	Bug           string `json:"bug"`
}

// Status fetches and decodes the supervision-relevant slice of /status.
func (d *Daemon) Status() (apps []AppRow, ready bool, err error) {
	code, body, err := d.Get("/status")
	if err != nil {
		return nil, false, err
	}
	if code != http.StatusOK {
		return nil, false, fmt.Errorf("/status: HTTP %d", code)
	}
	var st struct {
		Apps  []AppRow `json:"apps"`
		Ready bool     `json:"ready"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		return nil, false, fmt.Errorf("/status: %v", err)
	}
	return st.Apps, st.Ready, nil
}

// App returns the named app's /status row.
func (d *Daemon) App(name string) (AppRow, error) {
	apps, _, err := d.Status()
	if err != nil {
		return AppRow{}, err
	}
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return AppRow{}, fmt.Errorf("/status has no app %q", name)
}

// WaitReady polls /readyz until it answers 200.
func (d *Daemon) WaitReady(timeout time.Duration) error {
	return WaitFor("readyz", timeout, func() (bool, error) {
		code, body, err := d.Get("/readyz")
		if err != nil {
			return false, err
		}
		if code != http.StatusOK {
			return false, fmt.Errorf("HTTP %d: %s", code, strings.TrimSpace(body))
		}
		return true, nil
	})
}

// MetricValue scrapes /metrics and returns the sample whose series name
// (including its label set, e.g. `cbreak_supervisor_restarts_total{app="httpd"}`)
// matches exactly.
func (d *Daemon) MetricValue(series string) (float64, error) {
	code, body, err := d.Get("/metrics")
	if err != nil {
		return 0, err
	}
	if code != http.StatusOK {
		return 0, fmt.Errorf("/metrics: HTTP %d", code)
	}
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(rest), 64)
	}
	return 0, fmt.Errorf("/metrics has no series %s", series)
}

// Roundtrip sends one request line over a fresh socket (typically the
// proxy address) and returns the one response line.
func Roundtrip(addr, line string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

// CountJournalIncidents replays the sink journal in dir and counts
// incident records carrying the given label (e.g. "deadlock-confirmed").
func CountJournalIncidents(dir, label string) (int, error) {
	n := 0
	_, err := sink.Replay(dir, func(e sink.Entry) error {
		if e.Incident != nil && e.Incident.Incident == label {
			n++
		}
		return nil
	})
	return n, err
}

// CountJournalRecords replays the sink journal in dir and returns how
// many well-formed records it holds (proving the journal survives its
// crash-recovery path end to end).
func CountJournalRecords(dir string) (int, error) {
	n := 0
	_, err := sink.Replay(dir, func(sink.Entry) error { n++; return nil })
	return n, err
}
