package scenario

// The registered chaos scenarios. Each one is a full operator story:
// boot the daemon with supervised worker processes, hurt it the way
// production hurts it, and prove recovery from the outside.

import (
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sync"
	"syscall"
	"time"

	"cbreak/internal/apps/appboot"
	"cbreak/internal/netchaos"
)

func init() {
	Register(Scenario{
		Name: "multiproc-deadlock-sigkill",
		Desc: "httpd↔mysql deadlock over live sockets survives a worker SIGKILL and a proxy partition; journal proves exactly-once confirmation",
		Run:  runMultiprocDeadlock,
	})
	Register(Scenario{
		Name: "crashloop-quarantine",
		Desc: "a crash-looping worker is quarantined instead of restarted forever, and /apps/revive lifts the quarantine",
		Run:  runCrashloopQuarantine,
	})
	Register(Scenario{
		Name: "sigstop-probe-restart",
		Desc: "a SIGSTOP-wedged worker still accepts TCP but fails health probes; the supervisor kills and replaces it",
		Run:  runSigstopProbeRestart,
	})
	Register(Scenario{
		Name: "journal-fault-restart",
		Desc: "a disk fault under a worker's durable journal kills it once; the restarted worker continues the same journal cleanly",
		Run:  runJournalFaultRestart,
	})
}

// waitAppUp waits until the named app is up with a live pid different
// from notPid, and returns its fresh /status row.
func waitAppUp(d *Daemon, name string, notPid int, timeout time.Duration) (AppRow, error) {
	var row AppRow
	err := WaitFor(name+" up", timeout, func() (bool, error) {
		r, err := d.App(name)
		if err != nil {
			return false, err
		}
		row = r
		if r.State != "up" || r.Pid <= 0 || r.Pid == notPid {
			return false, fmt.Errorf("state=%s pid=%d (was %d)", r.State, r.Pid, notPid)
		}
		return true, nil
	})
	return row, err
}

// runMultiprocDeadlock is the headline scenario: mysql:deadlock and
// httpd boot as supervised worker processes, load-driven GETs fan
// through the chaos proxy into httpd and across the process boundary
// into mysql statements whose crossing lock orders (held open by the
// concurrent breakpoint) wedge into a real two-mutex deadlock. The
// mysql worker's own wait-graph supervisor confirms it and journals the
// incident durably. The scenario then SIGKILLs the httpd worker
// mid-load and forces a proxy partition window; the supervisor restarts
// httpd on its pinned address (so its baked-in mysql backend and the
// proxy target both stay valid) and service resumes. The durable
// journal must hold the deadlock confirmation exactly once.
func runMultiprocDeadlock(c *Context) error {
	jdir := c.Path("journal")
	d, err := c.StartDaemon("daemon",
		"-apps", "mysql:deadlock,httpd", "-supervise",
		"-durable-events", jdir,
		"-pause", "40ms", "-seed", "7",
		"-probe-interval", "100ms", "-probe-timeout", "500ms", "-probe-failures", "3",
		"-restart-backoff", "50ms", "-max-restart-backoff", "400ms",
	)
	if err != nil {
		return err
	}
	if err := d.WaitReady(20 * time.Second); err != nil {
		return err
	}
	httpdRow, err := d.App("httpd")
	if err != nil {
		return err
	}
	pid0 := httpdRow.Pid

	// Background load: repeated small waves so the stream spans every
	// fault we inject. GETs alternate parity per request, so httpd fans
	// concurrent INSERTs and FLUSHes into mysql — the deadlock driver.
	gen, err := appboot.RequestGenerator("httpd")
	if err != nil {
		return err
	}
	var loadMu sync.Mutex
	var total netchaos.ClientStats
	loadStop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for wave := 0; ; wave++ {
			select {
			case <-loadStop:
				return
			default:
			}
			rep := netchaos.RunLoad(netchaos.LoadConfig{
				Addr: d.ProxyAddr, Seed: int64(100 + wave),
				Clients: 6, Requests: 3, MakeRequest: gen,
				Client: netchaos.ClientConfig{
					Attempts: 3, AttemptTimeout: 3 * time.Second,
					RequestTimeout: 8 * time.Second, Backoff: 20 * time.Millisecond,
				},
			})
			loadMu.Lock()
			total.Requests += rep.Stats.Requests
			total.OK += rep.Stats.OK
			total.Failed += rep.Stats.Failed
			total.Retries += rep.Stats.Retries
			loadMu.Unlock()
		}
	}()
	defer func() {
		select {
		case <-loadStop:
		default:
			close(loadStop)
		}
		<-loadDone
	}()

	// The deadlock is confirmed inside the mysql worker process; its
	// durable journal is the observation channel.
	mysqlJournal := c.Path("journal", "mysql")
	if err := WaitFor("deadlock confirmation in mysql journal", 25*time.Second, func() (bool, error) {
		n, err := CountJournalIncidents(mysqlJournal, "deadlock-confirmed")
		if err != nil {
			return false, err
		}
		return n >= 1, fmt.Errorf("%d confirmations", n)
	}); err != nil {
		return err
	}
	c.Logf("deadlock confirmed in %s", mysqlJournal)

	// Process fault: SIGKILL the httpd worker mid-load.
	c.Logf("SIGKILL httpd worker pid %d", pid0)
	if err := syscall.Kill(pid0, syscall.SIGKILL); err != nil {
		return fmt.Errorf("kill httpd worker: %w", err)
	}
	// Network fault: sever the proxy for a window while the supervisor
	// is restarting the worker behind it.
	code, body, err := d.Post("/chaos/partition", url.Values{"duration": {"300ms"}})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("/chaos/partition: HTTP %d %s (%v)", code, body, err)
	}

	row, err := waitAppUp(d, "httpd", pid0, 15*time.Second)
	if err != nil {
		return err
	}
	if row.Restarts < 1 || row.Crashes < 1 {
		return fmt.Errorf("httpd restarts=%d crashes=%d after SIGKILL, want >= 1", row.Restarts, row.Crashes)
	}
	c.Logf("httpd restarted: pid %d -> %d (restarts=%d)", pid0, row.Pid, row.Restarts)
	if v, err := d.MetricValue(`cbreak_supervisor_restarts_total{app="httpd"}`); err != nil || v < 1 {
		return fmt.Errorf("restart counter not exported: %v (err %v)", v, err)
	}

	// Service restored end to end: a fresh socket through the healed
	// proxy reaches the restarted worker on its pinned address. RELOAD
	// avoids the (deliberately still deadlocked) mysql backend.
	if err := WaitFor("service through proxy after restart", 10*time.Second, func() (bool, error) {
		resp, err := Roundtrip(d.ProxyAddr, "RELOAD 64", 2*time.Second)
		if err != nil {
			return false, err
		}
		if resp != "200 reloaded 64" {
			return false, fmt.Errorf("resp %q", resp)
		}
		return true, nil
	}); err != nil {
		return err
	}

	// The deadlocked mysql worker must still count as up: only two
	// statement goroutines are wedged; its accept loop and probe answers
	// don't touch the wedged locks.
	mysqlRow, err := d.App("mysql")
	if err != nil {
		return err
	}
	if mysqlRow.State != "up" || mysqlRow.Crashes != 0 {
		return fmt.Errorf("mysql worker state=%s crashes=%d, want up with 0 crashes", mysqlRow.State, mysqlRow.Crashes)
	}

	close(loadStop)
	<-loadDone
	loadMu.Lock()
	c.Logf("load: %d requests, %d ok, %d failed, %d retries", total.Requests, total.OK, total.Failed, total.Retries)
	ok := total.OK
	loadMu.Unlock()
	if ok == 0 {
		return fmt.Errorf("no load request ever succeeded")
	}

	// Graceful drain, then the durability verdict: the confirmation is
	// journaled exactly once — the wait-graph supervisor deduplicates
	// re-sightings of the same cycle, and nothing replays it on restart.
	if err := d.Stop(20 * time.Second); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	n, err := CountJournalIncidents(mysqlJournal, "deadlock-confirmed")
	if err != nil {
		return err
	}
	if n != 1 {
		return fmt.Errorf("journal holds %d deadlock confirmations, want exactly 1", n)
	}
	c.Logf("journal verdict: exactly one deadlock confirmation")
	return nil
}

// runCrashloopQuarantine SIGKILLs a worker repeatedly inside the
// crash-loop window and requires the supervisor to stop restarting it:
// the app lands in quarantine (visible in /status, /readyz, and the
// quarantine counter), stays there, and comes back on /apps/revive.
func runCrashloopQuarantine(c *Context) error {
	d, err := c.StartDaemon("daemon",
		"-apps", "httpd", "-supervise",
		"-crashloop-threshold", "3", "-crashloop-window", "30s",
		"-restart-backoff", "30ms", "-max-restart-backoff", "120ms",
		"-probe-interval", "100ms", "-seed", "3",
	)
	if err != nil {
		return err
	}
	if err := d.WaitReady(20 * time.Second); err != nil {
		return err
	}

	lastPid := 0
	for kill := 1; kill <= 3; kill++ {
		row, err := waitAppUp(d, "httpd", lastPid, 10*time.Second)
		if err != nil {
			return fmt.Errorf("before kill %d: %w", kill, err)
		}
		lastPid = row.Pid
		c.Logf("kill %d: SIGKILL pid %d", kill, lastPid)
		if err := syscall.Kill(lastPid, syscall.SIGKILL); err != nil {
			return err
		}
	}

	if err := WaitFor("httpd quarantined", 10*time.Second, func() (bool, error) {
		row, err := d.App("httpd")
		if err != nil {
			return false, err
		}
		return row.State == "quarantined", fmt.Errorf("state %s", row.State)
	}); err != nil {
		return err
	}
	if v, err := d.MetricValue(`cbreak_supervisor_quarantines_total{app="httpd"}`); err != nil || v != 1 {
		return fmt.Errorf("quarantine counter = %v, want 1 (err %v)", v, err)
	}
	if code, body, err := d.Get("/readyz"); err != nil || code != http.StatusServiceUnavailable {
		return fmt.Errorf("/readyz during quarantine: HTTP %d %s (%v)", code, body, err)
	}
	// Quarantine means *no more restarts*: the restart counter must hold
	// still while the app sits quarantined.
	restarts, err := d.MetricValue(`cbreak_supervisor_restarts_total{app="httpd"}`)
	if err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond)
	if again, err := d.MetricValue(`cbreak_supervisor_restarts_total{app="httpd"}`); err != nil || again != restarts {
		return fmt.Errorf("restarts moved %v -> %v while quarantined (err %v)", restarts, again, err)
	}

	code, body, err := d.Post("/apps/revive", url.Values{"name": {"httpd"}})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("/apps/revive: HTTP %d %s (%v)", code, body, err)
	}
	row, err := waitAppUp(d, "httpd", 0, 10*time.Second)
	if err != nil {
		return fmt.Errorf("after revive: %w", err)
	}
	c.Logf("revived: pid %d", row.Pid)
	if err := d.WaitReady(10 * time.Second); err != nil {
		return err
	}
	if resp, err := Roundtrip(d.ProxyAddr, "GET /index", 3*time.Second); err != nil || len(resp) < 3 || resp[:3] != "200" {
		return fmt.Errorf("roundtrip after revive: %q (%v)", resp, err)
	}
	return d.Stop(15 * time.Second)
}

// runSigstopProbeRestart wedges a worker with SIGSTOP: its listening
// socket still completes TCP handshakes (the kernel backlog accepts),
// so only an application-level probe can tell it is dead. The
// supervisor's line probe times out, declares the worker wedged after
// the configured consecutive failures, kills the process group, and
// relaunches on the pinned address.
func runSigstopProbeRestart(c *Context) error {
	d, err := c.StartDaemon("daemon",
		"-apps", "httpd", "-supervise",
		"-probe-interval", "100ms", "-probe-timeout", "300ms", "-probe-failures", "2",
		"-restart-backoff", "30ms", "-seed", "5",
	)
	if err != nil {
		return err
	}
	if err := d.WaitReady(20 * time.Second); err != nil {
		return err
	}
	row, err := d.App("httpd")
	if err != nil {
		return err
	}
	pid0 := row.Pid
	addr0 := row.Addr

	c.Logf("SIGSTOP httpd worker pid %d", pid0)
	if err := syscall.Kill(pid0, syscall.SIGSTOP); err != nil {
		return err
	}

	row, err = waitAppUp(d, "httpd", pid0, 15*time.Second)
	if err != nil {
		return err
	}
	if row.ProbeFailures < 2 {
		return fmt.Errorf("probe_failures = %d, want >= 2", row.ProbeFailures)
	}
	if row.Addr != addr0 {
		return fmt.Errorf("relaunch moved the app address %s -> %s, want pinned", addr0, row.Addr)
	}
	c.Logf("wedged worker replaced: pid %d -> %d after %d probe failures", pid0, row.Pid, row.ProbeFailures)
	if v, err := d.MetricValue(`cbreak_supervisor_probe_failures_total{app="httpd"}`); err != nil || v < 2 {
		return fmt.Errorf("probe-failure counter = %v, want >= 2 (err %v)", v, err)
	}

	// The stopped process must actually be gone (killed, not leaked).
	if err := WaitFor("old worker reaped", 10*time.Second, func() (bool, error) {
		return syscall.Kill(pid0, 0) != nil, nil
	}); err != nil {
		return err
	}
	if resp, err := Roundtrip(d.ProxyAddr, "GET /index", 3*time.Second); err != nil || len(resp) < 3 || resp[:3] != "200" {
		return fmt.Errorf("roundtrip after replace: %q (%v)", resp, err)
	}
	return d.Stop(15 * time.Second)
}

// runJournalFaultRestart arms a one-shot disk fault under the httpd
// worker's durable journal (-crash-app): the Nth durability operation
// kills the worker process mid-append. The supervisor restarts it; the
// armed-marker protocol makes the fault one-shot, so the relaunched
// worker reopens the same journal directory clean, recovery drops any
// torn tail, and the journal keeps growing across the process boundary.
func runJournalFaultRestart(c *Context) error {
	jdir := c.Path("journal")
	d, err := c.StartDaemon("daemon",
		"-apps", "httpd:log-corruption", "-supervise",
		"-durable-events", jdir,
		"-crash-app", "httpd", "-crash-appends", "40",
		"-pause", "5ms", "-seed", "9",
		"-probe-interval", "100ms", "-restart-backoff", "30ms",
	)
	if err != nil {
		return err
	}
	if err := d.WaitReady(20 * time.Second); err != nil {
		return err
	}
	row, err := d.App("httpd")
	if err != nil {
		return err
	}
	pid0 := row.Pid

	// Breakpointed GETs produce engine events; every event is a journal
	// append marching toward the armed crash ordinal.
	gen, err := appboot.RequestGenerator("httpd")
	if err != nil {
		return err
	}
	load := func(seed int64) netchaos.LoadReport {
		return netchaos.RunLoad(netchaos.LoadConfig{
			Addr: d.ProxyAddr, Seed: seed, Clients: 4, Requests: 20, MakeRequest: gen,
			Client: netchaos.ClientConfig{
				Attempts: 3, AttemptTimeout: 2 * time.Second,
				RequestTimeout: 6 * time.Second, Backoff: 20 * time.Millisecond,
			},
		})
	}
	rep := load(41)
	c.Logf("fault-arming load: %s", rep.String())

	row, err = waitAppUp(d, "httpd", pid0, 20*time.Second)
	if err != nil {
		return fmt.Errorf("worker did not die on the armed disk fault: %w", err)
	}
	if row.Crashes < 1 {
		return fmt.Errorf("httpd crashes = %d, want >= 1 from the disk fault", row.Crashes)
	}
	c.Logf("disk fault killed pid %d; restarted as pid %d", pid0, row.Pid)

	// One-shot proof: the marker is on disk and the restarted worker
	// survives a second full load wave over the same journal.
	if _, err := os.Stat(c.Path("journal", "httpd", "chaos-armed")); err != nil {
		return fmt.Errorf("armed marker missing: %v", err)
	}
	pid1 := row.Pid
	rep = load(42)
	c.Logf("post-restart load: %s", rep.String())
	if rep.Stats.OK == 0 {
		return fmt.Errorf("no request succeeded after the restart")
	}
	row, err = d.App("httpd")
	if err != nil {
		return err
	}
	if row.Pid != pid1 || row.State != "up" {
		return fmt.Errorf("restarted worker unstable: state=%s pid=%d (want up, pid %d)", row.State, row.Pid, pid1)
	}

	if err := d.Stop(15 * time.Second); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	// The journal must replay cleanly end to end: records from before
	// the crash (minus any torn tail) and after the restart, one
	// continuous history.
	n, err := CountJournalRecords(c.Path("journal", "httpd"))
	if err != nil {
		return fmt.Errorf("journal replay after crash+restart: %w", err)
	}
	if n == 0 {
		return fmt.Errorf("journal is empty after crash+restart")
	}
	c.Logf("journal replays clean: %d records across the crash", n)
	return nil
}
