package scenario

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

var buildOnce sync.Once
var builtBin string
var buildErr error

// BuildDaemon compiles cmd/cbserverd once per process into dir and
// returns the binary path. It must run with a working directory inside
// the module (true for `go test` and for cbscen run from the repo).
func BuildDaemon(dir string) (string, error) {
	buildOnce.Do(func() {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "cbserverd")
		cmd := exec.Command("go", "build", "-o", bin, "cbreak/cmd/cbserverd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build cbserverd: %v\n%s", err, out)
			return
		}
		builtBin = bin
	})
	return builtBin, buildErr
}
