// Package scenario is the black-box process-chaos harness: each
// scenario boots the real cbserverd binary (and its supervised app
// worker processes) on ephemeral ports, drives it over real sockets
// through the netchaos proxy, injects process-level faults — SIGKILL,
// SIGSTOP wedges, crash-loops, forced proxy partitions, disk faults
// under a worker's durable journal — and asserts on what an operator
// could observe: /metrics scrapes, /status and /readyz, and the
// workers' durable journals. Nothing here reaches into package
// internals; if a scenario can't prove its property through the
// daemon's own surfaces, the daemon's observability is the bug.
//
// Scenarios are registered at init and run either by `go test
// ./internal/scenario` or by the cmd/cbscen driver (which keeps the
// per-run artifact directories for CI upload).
package scenario

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Scenario is one registered chaos scenario.
type Scenario struct {
	// Name is the registry key (cbscen -run <name>).
	Name string
	// Desc is the one-line description (cbscen -list).
	Desc string
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// Run executes the scenario; any error fails it.
	Run func(c *Context) error
}

var registry []Scenario

// Register adds a scenario (init-time; duplicate names panic).
func Register(s Scenario) {
	if s.Timeout <= 0 {
		s.Timeout = 60 * time.Second
	}
	for _, have := range registry {
		if have.Name == s.Name {
			panic("scenario: duplicate name " + s.Name)
		}
	}
	registry = append(registry, s)
}

// All returns the registered scenarios in registration order.
func All() []Scenario { return append([]Scenario(nil), registry...) }

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Context is one scenario run's environment: the daemon binary, a
// scratch directory that doubles as the artifact bundle (daemon logs,
// journals), and a log sink for the scenario's own narration.
type Context struct {
	// Bin is the cbserverd binary under test.
	Bin string
	// Dir is the scenario's scratch/artifact directory.
	Dir string
	// Log receives scenario narration (defaults to io.Discard).
	Log io.Writer

	daemons []*Daemon
}

// NewContext builds a run context, creating dir.
func NewContext(bin, dir string, log io.Writer) (*Context, error) {
	if log == nil {
		log = io.Discard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Context{Bin: bin, Dir: dir, Log: log}, nil
}

// Logf narrates one step.
func (c *Context) Logf(format string, args ...any) {
	fmt.Fprintf(c.Log, "  "+format+"\n", args...)
}

// Path returns a path inside the scenario's artifact directory.
func (c *Context) Path(elem ...string) string {
	return filepath.Join(append([]string{c.Dir}, elem...)...)
}

// Cleanup kills every daemon the context started (idempotent; Run
// callers invoke it after the scenario returns).
func (c *Context) Cleanup() {
	for _, d := range c.daemons {
		d.Kill()
	}
}

// RunOne executes a scenario under its timeout with a fresh context and
// returns the verdict. The artifact directory is dir/<name>.
func RunOne(s Scenario, bin, dir string, log io.Writer) error {
	c, err := NewContext(bin, filepath.Join(dir, s.Name), log)
	if err != nil {
		return err
	}
	defer c.Cleanup()
	errCh := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				errCh <- fmt.Errorf("panic: %v", p)
			}
		}()
		errCh <- s.Run(c)
	}()
	select {
	case err := <-errCh:
		return err
	case <-time.After(s.Timeout):
		return fmt.Errorf("timed out after %s", s.Timeout)
	}
}

// WaitFor polls cond until it returns true, an error, or the deadline.
func WaitFor(what string, timeout time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		ok, err := cond()
		if ok {
			return nil
		}
		lastErr = err
		time.Sleep(25 * time.Millisecond)
	}
	if lastErr != nil {
		return fmt.Errorf("waiting for %s: deadline after %s (last error: %v)", what, timeout, lastErr)
	}
	return fmt.Errorf("waiting for %s: deadline after %s", what, timeout)
}
