package scenario

import (
	"strings"
	"testing"
	"time"
)

// testLog adapts t.Logf to the context's narration writer.
type testLog struct{ t *testing.T }

func (w testLog) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestScenarios runs every registered chaos scenario against a freshly
// built cbserverd binary — the repo's black-box end-to-end suite.
func TestScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("process-chaos scenarios are not -short")
	}
	bin, err := BuildDaemon(t.TempDir())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			start := time.Now()
			if err := RunOne(s, bin, t.TempDir(), testLog{t}); err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			t.Logf("%s passed in %.1fs", s.Name, time.Since(start).Seconds())
		})
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("registered %d scenarios, want 4", len(all))
	}
	if _, ok := Find("multiproc-deadlock-sigkill"); !ok {
		t.Fatal("headline scenario not registered")
	}
	if _, ok := Find("no-such"); ok {
		t.Fatal("Find invented a scenario")
	}
	for _, s := range all {
		if s.Timeout <= 0 || s.Desc == "" || s.Run == nil {
			t.Fatalf("scenario %q underspecified: %+v", s.Name, s)
		}
	}
}

func TestParseBanner(t *testing.T) {
	admin, proxy, err := parseBanner(
		"cbserverd: admin http://127.0.0.1:7070  apps mysql(deadlock)@127.0.0.1:1,httpd(none)@127.0.0.1:2  proxy 127.0.0.1:9090 -> 127.0.0.1:2")
	if err != nil {
		t.Fatal(err)
	}
	if admin != "127.0.0.1:7070" || proxy != "127.0.0.1:9090" {
		t.Fatalf("parsed admin=%q proxy=%q", admin, proxy)
	}
	if _, _, err := parseBanner("cbserverd: something else"); err == nil {
		t.Fatal("unparseable banner accepted")
	}
}
