package predict

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/memory"
)

// TriggerPlan is one compiled concurrent breakpoint: the JSON config a
// predicted race pair turns into. Arming a plan (Armer) pauses the
// first goroutine that reaches one of the sites until the other side
// arrives at the partner site — manufacturing the predicted conflict
// state on demand, exactly as a hand-written ConflictTrigger would.
type TriggerPlan struct {
	// Breakpoint is the engine breakpoint name ("predict.race.<cell>").
	Breakpoint string `json:"breakpoint"`
	// Var is the shared cell whose accesses rendezvous.
	Var string `json:"var"`
	// Site1/Site2 are the two access sites. Site1 is the first-action
	// side (it executes its access first once both sides have met).
	Site1 string `json:"site1"`
	Site2 string `json:"site2"`
	// TimeoutMS is the postponement timeout (the paper's T).
	TimeoutMS int64 `json:"timeout_ms"`
	// Bound caps how many times the breakpoint fires per run.
	Bound int `json:"bound"`
	// Observed records whether the pair already raced in the recorded
	// interleaving (false = predicted-only, the interesting case).
	Observed bool `json:"observed"`
}

// Timeout returns the plan's postponement timeout.
func (p TriggerPlan) Timeout() time.Duration { return time.Duration(p.TimeoutMS) * time.Millisecond }

// planName builds a breakpoint name from a cell name, keeping the
// usual dotted-key shape.
func planName(cell string, n int) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, cell)
	name := "predict.race." + s
	if n > 0 {
		name = fmt.Sprintf("%s.%d", name, n)
	}
	return name
}

// Compile turns predictions into trigger plans. Plans keep the
// prediction order; pairs over the same cell get numbered breakpoint
// names.
func Compile(preds []Prediction, timeout time.Duration) []TriggerPlan {
	perCell := map[string]int{}
	out := make([]TriggerPlan, 0, len(preds))
	for _, p := range preds {
		n := perCell[p.Var]
		perCell[p.Var]++
		out = append(out, TriggerPlan{
			Breakpoint: planName(p.Var, n),
			Var:        p.Var,
			Site1:      p.Site1,
			Site2:      p.Site2,
			TimeoutMS:  timeout.Milliseconds(),
			Bound:      1,
			Observed:   p.Observed,
		})
	}
	return out
}

// WritePlans stores plans as an indented JSON config file.
func WritePlans(path string, plans []TriggerPlan) error {
	data, err := json.MarshalIndent(plans, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPlans loads a config file written by WritePlans.
func ReadPlans(path string) ([]TriggerPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var plans []TriggerPlan
	if err := json.Unmarshal(data, &plans); err != nil {
		return nil, fmt.Errorf("predict: parsing %s: %w", path, err)
	}
	return plans, nil
}

// armedPlan is one plan resolved against an engine.
type armedPlan struct {
	plan TriggerPlan
	bp   *core.Breakpoint
	// flip alternates the first/second side when both sites carry the
	// same label (a line racing with itself across goroutines).
	flip atomic.Int64
}

// Armer implements memory.Tracer: attached to a workload's memory
// space, it fires the plans' ConflictTriggers when execution reaches
// the planned sites. Both sides pass the same *memory.Cell as the
// trigger object, so PredicateGlobal's identity check holds exactly
// when the two goroutines are about to touch the same cell.
type Armer struct {
	eng   *core.Engine
	byVar map[string][]*armedPlan
}

// NewArmer resolves plans against an engine.
func NewArmer(e *core.Engine, plans []TriggerPlan) *Armer {
	a := &Armer{eng: e, byVar: map[string][]*armedPlan{}}
	for _, p := range plans {
		a.byVar[p.Var] = append(a.byVar[p.Var], &armedPlan{plan: p, bp: e.Breakpoint(p.Breakpoint)})
	}
	return a
}

// OnAccess implements memory.Tracer: a site match triggers the plan's
// breakpoint before the access executes.
func (a *Armer) OnAccess(gid uint64, c *memory.Cell, op memory.Op, site string) {
	for _, ap := range a.byVar[c.Name()] {
		var first bool
		switch {
		case ap.plan.Site1 == ap.plan.Site2:
			if site != ap.plan.Site1 {
				continue
			}
			first = ap.flip.Add(1)%2 == 1
		case site == ap.plan.Site1:
			first = true
		case site == ap.plan.Site2:
			first = false
		default:
			continue
		}
		ap.bp.Trigger(core.NewConflictTrigger(ap.plan.Breakpoint, c), first,
			core.Options{Timeout: ap.plan.Timeout(), Bound: ap.plan.Bound})
	}
}

// Fired returns per-plan hit counts from the engine's statistics.
func (a *Armer) Fired() map[string]int64 {
	out := map[string]int64{}
	for _, aps := range a.byVar {
		for _, ap := range aps {
			out[ap.plan.Breakpoint] = a.eng.Stats(ap.plan.Breakpoint).Hits()
		}
	}
	return out
}

// TotalHits sums Fired over every plan.
func (a *Armer) TotalHits() int64 {
	var n int64
	for _, hits := range a.Fired() {
		n += hits
	}
	return n
}
