// Package predict implements predictive race analysis as a breakpoint
// factory: the upgrade of the paper's Methodology I/II from *observed*
// conflicts to *predicted* ones.
//
// The pipeline has four stages, mirrored by cmd/cbpredict:
//
//  1. Record: a Recorder attaches to the instrumented substrates
//     (memory.Tracer for cell accesses, locks.Observer for mutex
//     transitions, core.Engine.SetOnHit for breakpoint rendezvous) and
//     journals every event into the CRC-framed write-ahead journal of
//     internal/journal, tagged with the observing goroutine's vector
//     clock (internal/vclock).
//
//  2. Predict: a sync-aware predictor replays the trace and reports
//     conflicting access pairs that are UNORDERED once scheduling-only
//     lock orderings are discounted — races that did not occur in the
//     observed interleaving but are reachable in a reordering of it
//     (the sync-preserving prediction family of Mathur, Pavlogiannis
//     and Viswanathan; see docs/DESIGN.md §15 for the exact closure).
//
//  3. Emit: predicted pairs compile into ConflictTrigger plans — JSON
//     configs naming a breakpoint, the shared cell, and the two access
//     sites.
//
//  4. Verify: an Armer re-runs the workload with the plan's trigger
//     armed at both sites; a hit means the manufactured schedule
//     actually reached the predicted conflict state.
//
// The existing detectors in internal/detect serve as a soundness
// oracle (oracle.go): every race FastTrack observed must be predicted,
// and every predicted pair must carry the inconsistent locksets the
// Eraser lockset algorithm flags.
package predict

import (
	"encoding/json"
	"fmt"

	"cbreak/internal/journal"
	"cbreak/internal/vclock"
)

// EventKind labels one trace event.
type EventKind string

// Trace event kinds. Access and lock events carry the cell/lock name in
// Obj; fork/join carry the child goroutine in Child; rendezvous events
// carry the breakpoint name in Obj.
const (
	// EvRead and EvWrite are memory-cell accesses (memory.Tracer).
	EvRead  EventKind = "read"
	EvWrite EventKind = "write"
	// EvAcquire and EvRelease are mutex transitions (locks.Observer).
	EvAcquire EventKind = "acquire"
	EvRelease EventKind = "release"
	// EvFork and EvJoin are goroutine creation/join edges, recorded by
	// the workload via Recorder.Fork/Join.
	EvFork EventKind = "fork"
	EvJoin EventKind = "join"
	// EvRendezvous is a breakpoint hit observed through the engine's
	// OnHit callback: the arriving side of a rendezvous (core package).
	EvRendezvous EventKind = "rendezvous"
)

// Event is one journaled trace record: per-goroutine streams are
// interleaved in observed order (the journal LSN is the global order)
// and every event carries the recording-time vector clock of its
// goroutine, so the observed happens-before relation travels with the
// trace.
type Event struct {
	// Seq is the event's position in the recorded total order.
	Seq uint64 `json:"seq"`
	// Gid is the goroutine the event belongs to.
	Gid uint64 `json:"gid"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Obj names the touched object: cell name for read/write, lock
	// name for acquire/release, breakpoint name for rendezvous.
	Obj string `json:"obj,omitempty"`
	// Site is the source label of the operation ("mysql:lsn").
	Site string `json:"site,omitempty"`
	// Child is the forked/joined goroutine for fork/join events.
	Child uint64 `json:"child,omitempty"`
	// Clock is the goroutine's vector clock at the event (after the
	// event's own tick), under the full observed happens-before order.
	Clock vclock.VC `json:"clock"`
}

// Trace is a fully decoded recording.
type Trace struct {
	// Events in recorded order.
	Events []Event
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Gids returns the distinct goroutine ids appearing in the trace, in
// first-appearance order.
func (t *Trace) Gids() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, e := range t.Events {
		if !seen[e.Gid] {
			seen[e.Gid] = true
			out = append(out, e.Gid)
		}
	}
	return out
}

// Load replays a recorded trace from its journal directory. Torn tails
// (a recording killed mid-write) are truncated by the journal's
// recovery, so a crash during recording costs at most the final event.
func Load(dir string) (*Trace, error) {
	tr := &Trace{}
	_, err := journal.Replay(dir, func(lsn uint64, payload []byte) error {
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("predict: record %d: %w", lsn, err)
		}
		tr.Events = append(tr.Events, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}
