package predict

import (
	"path/filepath"
	"testing"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/journal"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// record drives f against a fresh recorder and loads the trace back.
func record(t *testing.T, f func(r *Recorder)) *Trace {
	t.Helper()
	dir := t.TempDir()
	r, err := NewRecorder(dir, RecorderOptions{Sync: journal.SyncNone})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	f(r)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return tr
}

func TestRecorderRoundTrip(t *testing.T) {
	c := memory.NewCell(nil, "x", 0)
	m := locks.NewMutex("L")
	tr := record(t, func(r *Recorder) {
		r.Fork(1, 2)
		r.AfterLock(m, 1, "s1")
		r.OnAccess(1, c, memory.Write, "s1")
		r.BeforeUnlock(m, 1, "s1")
		r.OnAccess(2, c, memory.Read, "s2")
		r.Join(1, 2)
	})
	if got := tr.Len(); got != 6 {
		t.Fatalf("trace length = %d, want 6", got)
	}
	kinds := []EventKind{EvFork, EvAcquire, EvWrite, EvRelease, EvRead, EvJoin}
	for i, ev := range tr.Events {
		if ev.Kind != kinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, kinds[i])
		}
		if len(ev.Clock) == 0 {
			t.Errorf("event %d has empty clock", i)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	if gids := tr.Gids(); len(gids) != 2 {
		t.Errorf("gids = %v, want two", gids)
	}
}

// TestPredictDropsNonConflictingLockEdge is the predictor's reason to
// exist: g1 writes x inside L's critical section, g2 enters an EMPTY
// critical section of L and then writes x lock-free. The recorded
// interleaving orders the writes through L's release→acquire edge, but
// the two critical sections share no data, so the closure drops the
// edge and predicts the race FastTrack cannot see.
func TestPredictDropsNonConflictingLockEdge(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	m := locks.NewMutex("L")
	tr := record(t, func(r *Recorder) {
		r.AfterLock(m, 1, "a1")
		r.OnAccess(1, x, memory.Write, "w1")
		r.BeforeUnlock(m, 1, "a1")
		r.AfterLock(m, 2, "a2")
		r.BeforeUnlock(m, 2, "a2")
		r.OnAccess(2, x, memory.Write, "w2")
	})
	res := Predict(tr)
	if len(res.Predictions) != 1 {
		t.Fatalf("predictions = %v, want exactly one", res.Predictions)
	}
	p := res.Predictions[0]
	if p.Var != "x" || p.Site1 != "w1" || p.Site2 != "w2" {
		t.Errorf("unexpected prediction %+v", p)
	}
	if p.Observed {
		t.Errorf("prediction marked observed; the recorded run ordered it")
	}
	if oc := CrossCheck(tr, res); !oc.Ok() {
		t.Errorf("oracle: %v", oc.Err())
	}
}

// TestPredictKeepsConflictingLockEdge: when g2's critical section reads
// x (conflicting with g1's write), the release→acquire edge stays, so
// g2's later lock-free write is ordered after g1's — nothing predicted.
func TestPredictKeepsConflictingLockEdge(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	m := locks.NewMutex("L")
	tr := record(t, func(r *Recorder) {
		r.AfterLock(m, 1, "a1")
		r.OnAccess(1, x, memory.Write, "w1")
		r.BeforeUnlock(m, 1, "a1")
		r.AfterLock(m, 2, "a2")
		r.OnAccess(2, x, memory.Read, "r2")
		r.BeforeUnlock(m, 2, "a2")
		r.OnAccess(2, x, memory.Write, "w2")
	})
	res := Predict(tr)
	if len(res.Predictions) != 0 {
		t.Fatalf("predictions = %v, want none", res.Predictions)
	}
}

// TestPredictSharedLockset: both writes hold L, so however the closure
// orders them they are never racy.
func TestPredictSharedLockset(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	m := locks.NewMutex("L")
	tr := record(t, func(r *Recorder) {
		r.AfterLock(m, 1, "a1")
		r.OnAccess(1, x, memory.Write, "w1")
		r.BeforeUnlock(m, 1, "a1")
		r.AfterLock(m, 2, "a2")
		r.OnAccess(2, x, memory.Write, "w2")
		r.BeforeUnlock(m, 2, "a2")
	})
	if res := Predict(tr); len(res.Predictions) != 0 {
		t.Fatalf("predictions = %v, want none", res.Predictions)
	}
}

// TestPredictForkJoinOrders: fork/join edges are real synchronization
// the closure must keep.
func TestPredictForkJoinOrders(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	tr := record(t, func(r *Recorder) {
		r.OnAccess(1, x, memory.Write, "w1")
		r.Fork(1, 2)
		r.OnAccess(2, x, memory.Write, "w2")
		r.Join(1, 2)
		r.OnAccess(1, x, memory.Write, "w3")
	})
	if res := Predict(tr); len(res.Predictions) != 0 {
		t.Fatalf("predictions = %v, want none", res.Predictions)
	}
}

// TestPredictObservedRace: two unsynchronized writes are unordered
// under the full observed relation too — predicted AND observed, and
// FastTrack's replayed report must match it (oracle soundness).
func TestPredictObservedRace(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	tr := record(t, func(r *Recorder) {
		r.OnAccess(1, x, memory.Write, "w1")
		r.OnAccess(2, x, memory.Write, "w2")
	})
	res := Predict(tr)
	if len(res.Predictions) != 1 || !res.Predictions[0].Observed {
		t.Fatalf("predictions = %v, want one observed race", res.Predictions)
	}
	if got := res.PredictedOnly(); len(got) != 0 {
		t.Errorf("PredictedOnly = %v, want none", got)
	}
	oc := CrossCheck(tr, res)
	if !oc.Ok() {
		t.Fatalf("oracle: %v", oc.Err())
	}
	if len(oc.ObservedRaces) == 0 {
		t.Errorf("replayed FastTrack saw no race; expected one")
	}
}

// TestPredictRendezvousOrders: rendezvous events (recorded breakpoint
// hits) are kept as synchronization, like the trigger semantics imply.
func TestPredictRendezvousOrders(t *testing.T) {
	x := memory.NewCell(nil, "x", 0)
	tr := record(t, func(r *Recorder) {
		r.OnAccess(1, x, memory.Write, "w1")
		r.rendezvous(1, "bp.sync")
		r.rendezvous(2, "bp.sync")
		r.OnAccess(2, x, memory.Write, "w2")
	})
	if res := Predict(tr); len(res.Predictions) != 0 {
		t.Fatalf("predictions = %v, want none", res.Predictions)
	}
}

func TestMySQLRacyTracePredictsLSN(t *testing.T) {
	dir := t.TempDir()
	n, err := RecordRacyMySQL(dir)
	if err != nil {
		t.Fatalf("RecordRacyMySQL: %v", err)
	}
	if n == 0 {
		t.Fatal("no events recorded")
	}
	tr, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := Predict(tr)
	var hit *Prediction
	for i := range res.Predictions {
		if res.Predictions[i].Var == "mysql.lsn" {
			hit = &res.Predictions[i]
		}
	}
	if hit == nil {
		t.Fatalf("no prediction on mysql.lsn; got:\n%s", FormatAll(res.Predictions))
	}
	if hit.Observed {
		t.Errorf("mysql.lsn race marked observed; the recorded run ordered it via the catalog lock")
	}
	if hit.Site1 != "mysql:commit.lsn" || hit.Site2 != "mysql:lsn" {
		t.Errorf("sites = %q/%q, want mysql:commit.lsn/mysql:lsn", hit.Site1, hit.Site2)
	}
	if oc := CrossCheck(tr, res); !oc.Ok() {
		t.Errorf("oracle: %v", oc.Err())
	}
}

func TestMySQLControlTracePredictsNothing(t *testing.T) {
	dir := t.TempDir()
	if _, err := RecordSyncedMySQL(dir); err != nil {
		t.Fatalf("RecordSyncedMySQL: %v", err)
	}
	tr, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := Predict(tr)
	if len(res.Predictions) != 0 {
		t.Fatalf("control trace predicted races:\n%s", FormatAll(res.Predictions))
	}
	if oc := CrossCheck(tr, res); !oc.Ok() {
		t.Errorf("oracle: %v", oc.Err())
	}
}

func TestCompileAndVerifyMySQL(t *testing.T) {
	dir := t.TempDir()
	if _, err := RecordRacyMySQL(dir); err != nil {
		t.Fatalf("RecordRacyMySQL: %v", err)
	}
	tr, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	preds := Predict(tr).PredictedOnly()
	if len(preds) == 0 {
		t.Fatal("no predicted-only races to compile")
	}
	plans := Compile(preds, 5*time.Second)
	path := filepath.Join(t.TempDir(), "plans.json")
	if err := WritePlans(path, plans); err != nil {
		t.Fatalf("WritePlans: %v", err)
	}
	loaded, err := ReadPlans(path)
	if err != nil {
		t.Fatalf("ReadPlans: %v", err)
	}
	if len(loaded) != len(plans) || loaded[0] != plans[0] {
		t.Fatalf("plan round-trip mismatch: %+v vs %+v", loaded, plans)
	}

	out := VerifyMySQL(core.NewEngine(), loaded)
	if out.Hits == 0 {
		t.Fatalf("manufactured trigger never fired: %+v", out)
	}
	if !out.Result.BPHit {
		t.Errorf("Result.BPHit = false with %d hits", out.Hits)
	}
	var snapHits int64
	for _, s := range out.Stats {
		snapHits += s.Hits
	}
	if snapHits == 0 {
		t.Errorf("engine snapshots carry no hits: %+v", out.Stats)
	}
}
