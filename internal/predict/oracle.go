package predict

import (
	"fmt"
	"sort"

	"cbreak/internal/detect"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

// OracleResult is the cross-check of a prediction run against the
// dynamic detectors of internal/detect, replayed over the same trace:
//
//   - FastTrack (full happens-before) defines which races were PRESENT
//     in the recorded interleaving. The predictor's closure is a subset
//     of the full relation, so everything FastTrack reports must also
//     be predicted; a miss is a predictor soundness bug.
//   - Eraser (lockset) defines which cells carry inconsistent locking.
//     Every predicted pair holds disjoint locksets by construction, so
//     its cell must be in Eraser's report set; an unflagged prediction
//     means the predictor invented a pair the lockset discipline rules
//     out.
type OracleResult struct {
	// ObservedRaces are FastTrack's reports over the replayed trace —
	// the races of the recorded interleaving itself.
	ObservedRaces []detect.Report
	// EraserCells are the cells the lockset detector flagged.
	EraserCells []string
	// MissedObserved are FastTrack races absent from the predictions
	// (must be empty).
	MissedObserved []detect.Report
	// Unflagged are predictions whose cell Eraser did not flag (must
	// be empty).
	Unflagged []Prediction
}

// Ok reports whether both soundness checks passed.
func (o *OracleResult) Ok() bool {
	return len(o.MissedObserved) == 0 && len(o.Unflagged) == 0
}

// Err returns a descriptive error when a check failed, nil otherwise.
func (o *OracleResult) Err() error {
	if o.Ok() {
		return nil
	}
	return fmt.Errorf("predict: oracle cross-check failed: %d observed race(s) missed, %d prediction(s) without lockset inconsistency",
		len(o.MissedObserved), len(o.Unflagged))
}

// replayDetector feeds a trace through a detect.Detector using
// synthetic cells and mutexes keyed by name, so the replay needs no
// live program state. Lock-order/contention detection (which reads the
// live lock registry) is bypassed: only OnAccess, AfterLock,
// BeforeUnlock, ForkEdge, and JoinEdge are driven.
func replayDetector(tr *Trace, d *detect.Detector) {
	cells := map[string]*memory.Cell{}
	mus := map[string]*locks.Mutex{}
	cell := func(name string) *memory.Cell {
		c, ok := cells[name]
		if !ok {
			c = memory.NewCell(nil, name, 0)
			cells[name] = c
		}
		return c
	}
	mu := func(name string) *locks.Mutex {
		m, ok := mus[name]
		if !ok {
			m = locks.NewMutex(name)
			mus[name] = m
		}
		return m
	}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvRead:
			d.OnAccess(ev.Gid, cell(ev.Obj), memory.Read, ev.Site)
		case EvWrite:
			d.OnAccess(ev.Gid, cell(ev.Obj), memory.Write, ev.Site)
		case EvAcquire:
			d.AfterLock(mu(ev.Obj), ev.Gid, ev.Site)
		case EvRelease:
			d.BeforeUnlock(mu(ev.Obj), ev.Gid, ev.Site)
		case EvFork:
			d.ForkEdge(ev.Gid, ev.Child)
		case EvJoin:
			d.JoinEdge(ev.Gid, ev.Child)
		}
	}
}

// CrossCheck replays the trace through FastTrack-only and Eraser-only
// detectors and verifies the prediction set against both.
func CrossCheck(tr *Trace, res *Result) *OracleResult {
	ft := detect.New(detect.WithEraser(false))
	replayDetector(tr, ft)
	er := detect.New(detect.WithHappensBefore(false))
	replayDetector(tr, er)

	out := &OracleResult{ObservedRaces: ft.ReportsOf(detect.KindRace)}
	eraserCells := map[string]bool{}
	for _, r := range er.ReportsOf(detect.KindRace) {
		eraserCells[r.Var] = true
	}
	for c := range eraserCells {
		out.EraserCells = append(out.EraserCells, c)
	}
	sort.Strings(out.EraserCells)

	predKeys := map[string]bool{}
	for _, p := range res.Predictions {
		predKeys[p.Key()] = true
		if !eraserCells[p.Var] {
			out.Unflagged = append(out.Unflagged, p)
		}
	}
	for _, r := range out.ObservedRaces {
		s1, s2 := r.Site1, r.Site2
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		if !predKeys[fmt.Sprintf("%s|%s|%s", r.Var, s1, s2)] {
			out.MissedObserved = append(out.MissedObserved, r)
		}
	}
	return out
}
