package predict

import (
	"fmt"
	"sort"
	"strings"

	"cbreak/internal/vclock"
)

// Prediction is one predicted racy pair: two accesses to the same cell,
// at least one a write, by different goroutines, holding disjoint
// locksets, unordered under the sync-aware closure (weakHB below).
type Prediction struct {
	// Var is the shared cell's name.
	Var string `json:"var"`
	// Site1/Site2 are the two access sites, sorted (Site1 <= Site2).
	Site1 string `json:"site1"`
	Site2 string `json:"site2"`
	// Gid1/Gid2 are the accessing goroutines, aligned with the sites.
	Gid1 uint64 `json:"gid1"`
	Gid2 uint64 `json:"gid2"`
	// Write1/Write2 say which sides are writes.
	Write1 bool `json:"write1"`
	Write2 bool `json:"write2"`
	// Locks1/Locks2 are the locks held at each access (sorted).
	Locks1 []string `json:"locks1,omitempty"`
	Locks2 []string `json:"locks2,omitempty"`
	// Observed marks pairs the full observed happens-before relation
	// ALSO leaves unordered — races present in the recorded
	// interleaving itself. Predicted-only races have Observed=false:
	// the recorded run ordered them, but only through scheduling-luck
	// lock orderings a reordering can undo.
	Observed bool `json:"observed"`
}

// Key is a canonical identity for deduplication across traces.
func (p Prediction) Key() string {
	return fmt.Sprintf("%s|%s|%s", p.Var, p.Site1, p.Site2)
}

// String renders the prediction in the detect.Report shape.
func (p Prediction) String() string {
	tag := "predicted"
	if p.Observed {
		tag = "observed"
	}
	return fmt.Sprintf("%s race on %s between %s (g%d, locks %v) and %s (g%d, locks %v)",
		tag, p.Var, p.Site1, p.Gid1, p.Locks1, p.Site2, p.Gid2, p.Locks2)
}

// maxAccessesPerVar bounds the per-cell access lists the predictor
// keeps. Recorded workloads are short by design (cmd/cbpredict records
// bounded scenarios); the cap only guards against a runaway trace, and
// Result.Truncated reports when it bites so coverage loss is never
// silent.
const maxAccessesPerVar = 4096

// Result is one prediction run's outcome.
type Result struct {
	// Predictions holds every racy pair, observed and predicted-only,
	// deterministically ordered.
	Predictions []Prediction
	// Truncated names cells whose access lists hit maxAccessesPerVar.
	Truncated []string
}

// PredictedOnly returns the predictions absent from the observed
// interleaving — the pairs worth manufacturing breakpoints for.
func (r *Result) PredictedOnly() []Prediction {
	var out []Prediction
	for _, p := range r.Predictions {
		if !p.Observed {
			out = append(out, p)
		}
	}
	return out
}

// criticalSection is one acquire..release span of a lock on one
// goroutine, with the set of cells accessed inside it.
type criticalSection struct {
	lock   string
	vars   map[string]bool // cell -> accessed
	writes map[string]bool // cell -> written
}

func (cs *criticalSection) conflicts(o *criticalSection) bool {
	for v := range cs.vars {
		if o.vars[v] && (cs.writes[v] || o.writes[v]) {
			return true
		}
	}
	return false
}

// access is one replayed cell access with its two clocks.
type access struct {
	gid   uint64
	write bool
	site  string
	locks []string
	// weak is the access's clock under the prediction closure; obs is
	// its clock under the full observed happens-before order (taken
	// from the recorded event).
	weak vclock.VC
	obs  vclock.VC
}

// orderedBy reports whether a happens-before b under clocks selected by
// pick (epoch check: a's own component is included in b's frontier).
func orderedBy(a, b *access, pick func(*access) vclock.VC) bool {
	return pick(a).Get(a.gid) <= pick(b).Get(a.gid)
}

// Predict replays the trace and returns every conflicting pair that is
// unordered under the sync-aware closure:
//
//	weakHB = program order
//	       ∪ fork/join edges
//	       ∪ rendezvous edges
//	       ∪ release→acquire edges between CONFLICTING critical
//	         sections only
//
// Dropping release→acquire edges between critical sections that share
// no data is the standard tractable weakening of sync-preserving race
// prediction (cf. WCP): if two critical sections of one lock touch
// disjoint cells, their observed order is scheduling luck — a correct
// reordering may run them the other way, so orderings that flow only
// through them cannot be relied on to separate a conflicting pair.
// Pairs that are unordered even under the FULL observed
// happens-before relation are marked Observed (FastTrack would report
// them); the rest are predicted-only.
func Predict(tr *Trace) *Result {
	// Pass 1: delimit critical sections and collect their footprints,
	// so pass 2 can decide which release→acquire edges to keep.
	open := map[uint64][]*criticalSection{} // per-gid stack of open sections
	csAt := make(map[int]*criticalSection)  // event index -> its acquire/release section
	for i, ev := range tr.Events {
		switch ev.Kind {
		case EvAcquire:
			cs := &criticalSection{lock: ev.Obj, vars: map[string]bool{}, writes: map[string]bool{}}
			open[ev.Gid] = append(open[ev.Gid], cs)
			csAt[i] = cs
		case EvRelease:
			stack := open[ev.Gid]
			for j := len(stack) - 1; j >= 0; j-- {
				if stack[j].lock == ev.Obj {
					csAt[i] = stack[j]
					open[ev.Gid] = append(stack[:j], stack[j+1:]...)
					break
				}
			}
		case EvRead, EvWrite:
			for _, cs := range open[ev.Gid] {
				cs.vars[ev.Obj] = true
				if ev.Kind == EvWrite {
					cs.writes[ev.Obj] = true
				}
			}
		}
	}

	// Pass 2: recompute clocks under the closure, collecting accesses.
	type release struct {
		clock vclock.VC
		cs    *criticalSection
	}
	clocks := map[uint64]vclock.VC{}
	forked := map[uint64]vclock.VC{}
	releases := map[string][]release{}   // lock -> prior releases
	rendezvous := map[string]vclock.VC{} // breakpoint -> last hit clock
	held := map[uint64][]string{}        // per-gid held lock names
	accesses := map[string][]*access{}   // cell -> accesses
	truncated := map[string]bool{}

	clock := func(gid uint64) vclock.VC {
		c, ok := clocks[gid]
		if !ok {
			if f, isForked := forked[gid]; isForked {
				c = f.Clone()
				delete(forked, gid)
			} else {
				c = vclock.New()
			}
			clocks[gid] = c
		}
		return c
	}

	for i, ev := range tr.Events {
		c := clock(ev.Gid)
		switch ev.Kind {
		case EvAcquire:
			cs := csAt[i]
			for _, rel := range releases[ev.Obj] {
				if cs != nil && rel.cs != nil && rel.cs.conflicts(cs) {
					c.Join(rel.clock)
				}
			}
			c.Tick(ev.Gid)
			held[ev.Gid] = append(held[ev.Gid], ev.Obj)
		case EvRelease:
			c.Tick(ev.Gid)
			releases[ev.Obj] = append(releases[ev.Obj], release{clock: c.Clone(), cs: csAt[i]})
			hs := held[ev.Gid]
			for j := len(hs) - 1; j >= 0; j-- {
				if hs[j] == ev.Obj {
					held[ev.Gid] = append(hs[:j], hs[j+1:]...)
					break
				}
			}
		case EvFork:
			c.Tick(ev.Gid)
			forked[ev.Child] = c.Clone()
		case EvJoin:
			if child, ok := clocks[ev.Child]; ok {
				c.Join(child)
			}
			c.Tick(ev.Gid)
		case EvRendezvous:
			// A rendezvous synchronizes its participants; chain hits of
			// one breakpoint like a lock the closure always keeps.
			if prev, ok := rendezvous[ev.Obj]; ok {
				c.Join(prev)
			}
			c.Tick(ev.Gid)
			rendezvous[ev.Obj] = c.Clone()
		case EvRead, EvWrite:
			c.Tick(ev.Gid)
			if len(accesses[ev.Obj]) >= maxAccessesPerVar {
				truncated[ev.Obj] = true
				continue
			}
			locks := append([]string(nil), held[ev.Gid]...)
			sort.Strings(locks)
			accesses[ev.Obj] = append(accesses[ev.Obj], &access{
				gid:   ev.Gid,
				write: ev.Kind == EvWrite,
				site:  ev.Site,
				locks: locks,
				weak:  c.Clone(),
				obs:   ev.Clock,
			})
		}
	}

	// Pairwise race check per cell.
	seen := map[string]*Prediction{}
	var order []string
	for cell, accs := range accesses {
		for i, a := range accs {
			for _, b := range accs[i+1:] {
				if a.gid == b.gid || (!a.write && !b.write) {
					continue
				}
				if shareLock(a.locks, b.locks) {
					continue
				}
				if orderedBy(a, b, weakClock) || orderedBy(b, a, weakClock) {
					continue
				}
				observed := !orderedBy(a, b, obsClock) && !orderedBy(b, a, obsClock)
				p := makePrediction(cell, a, b, observed)
				k := p.Key()
				if prev, dup := seen[k]; dup {
					// An observed occurrence of the pair outranks a
					// predicted-only one.
					prev.Observed = prev.Observed || p.Observed
					continue
				}
				seen[k] = &p
				order = append(order, k)
			}
		}
	}
	sort.Strings(order)
	res := &Result{}
	for _, k := range order {
		res.Predictions = append(res.Predictions, *seen[k])
	}
	for cell := range truncated {
		res.Truncated = append(res.Truncated, cell)
	}
	sort.Strings(res.Truncated)
	return res
}

func weakClock(a *access) vclock.VC { return a.weak }
func obsClock(a *access) vclock.VC  { return a.obs }

func shareLock(a, b []string) bool {
	for _, l := range a {
		for _, m := range b {
			if l == m {
				return true
			}
		}
	}
	return false
}

func makePrediction(cell string, a, b *access, observed bool) Prediction {
	// Normalize side order by site, then gid, for deterministic keys.
	if a.site > b.site || (a.site == b.site && a.gid > b.gid) {
		a, b = b, a
	}
	return Prediction{
		Var:      cell,
		Site1:    a.site,
		Site2:    b.site,
		Gid1:     a.gid,
		Gid2:     b.gid,
		Write1:   a.write,
		Write2:   b.write,
		Locks1:   a.locks,
		Locks2:   b.locks,
		Observed: observed,
	}
}

// FormatAll renders predictions one per line.
func FormatAll(preds []Prediction) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, "\n")
}
