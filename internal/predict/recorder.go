package predict

import (
	"encoding/json"
	"fmt"
	"sync"

	"cbreak/internal/core"
	"cbreak/internal/journal"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/vclock"
)

// RecorderOptions parameterizes a Recorder.
type RecorderOptions struct {
	// Sync is the journal fsync policy (default SyncNone: traces are
	// high-rate and a torn tail only shortens the recording).
	Sync journal.SyncPolicy
}

// Recorder journals memory, lock, and rendezvous events into a trace.
// It implements memory.Tracer and locks.Observer, so attaching is the
// same Instrument dance the dynamic detectors use:
//
//	rec, _ := predict.NewRecorder(dir, predict.RecorderOptions{})
//	sp.Trace(rec)
//	mu.Observe(rec)
//	rec.AttachEngine(eng) // optional: rendezvous events
//
// The recorder maintains full observed happens-before vector clocks at
// record time (program order, every lock release→acquire edge,
// fork/join, rendezvous), so each journaled event carries the clock of
// its goroutine under the interleaving that actually ran.
type Recorder struct {
	mu     sync.Mutex
	j      *journal.Journal
	seq    uint64
	clocks map[uint64]vclock.VC
	// rel holds the last release clock per sync object (locks and
	// rendezvous pseudo-locks), the standard vector-clock lock edge.
	rel map[string]vclock.VC
	// forked holds clocks for goroutines that were forked but have not
	// yet produced their first event.
	forked map[uint64]vclock.VC
	err    error
}

// NewRecorder opens (or creates) a trace journal in dir.
func NewRecorder(dir string, opts RecorderOptions) (*Recorder, error) {
	j, err := journal.Open(journal.Options{Dir: dir, Sync: opts.Sync})
	if err != nil {
		return nil, err
	}
	return &Recorder{
		j:      j,
		clocks: make(map[uint64]vclock.VC),
		rel:    make(map[string]vclock.VC),
		forked: make(map[uint64]vclock.VC),
	}, nil
}

// Close flushes and closes the trace journal.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.j.Close(); err != nil {
		return err
	}
	return r.err
}

// Err returns the first append error, if any (recording continues past
// errors so instrumented workloads never crash on a full disk).
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// clock returns gid's clock, initializing it from a pending fork edge
// (or fresh) on first use. Caller holds r.mu.
func (r *Recorder) clock(gid uint64) vclock.VC {
	c, ok := r.clocks[gid]
	if !ok {
		if f, forked := r.forked[gid]; forked {
			c = f.Clone()
			delete(r.forked, gid)
		} else {
			c = vclock.New()
		}
		r.clocks[gid] = c
	}
	return c
}

// emit ticks gid's clock, stamps the event, and journals it. Caller
// holds r.mu.
func (r *Recorder) emit(ev Event) {
	c := r.clock(ev.Gid)
	c.Tick(ev.Gid)
	r.seq++
	ev.Seq = r.seq
	ev.Clock = c.Clone()
	payload, err := json.Marshal(ev)
	if err == nil {
		_, err = r.j.Append(payload)
	}
	if err != nil && r.err == nil {
		r.err = fmt.Errorf("predict: recording event %d: %w", ev.Seq, err)
	}
}

// OnAccess implements memory.Tracer: one read/write event per cell
// access.
func (r *Recorder) OnAccess(gid uint64, c *memory.Cell, op memory.Op, site string) {
	kind := EvRead
	if op == memory.Write {
		kind = EvWrite
	}
	r.mu.Lock()
	r.emit(Event{Gid: gid, Kind: kind, Obj: c.Name(), Site: site})
	r.mu.Unlock()
}

// BeforeLock implements locks.Observer; acquisition requests are not
// trace events (only completed acquisitions order anything).
func (r *Recorder) BeforeLock(m *locks.Mutex, gid uint64, site string) {}

// AfterLock implements locks.Observer: the acquire joins the lock's
// last release clock (the observed release→acquire edge).
func (r *Recorder) AfterLock(m *locks.Mutex, gid uint64, site string) {
	r.mu.Lock()
	if rel, ok := r.rel[m.Name()]; ok {
		r.clock(gid).Join(rel)
	}
	r.emit(Event{Gid: gid, Kind: EvAcquire, Obj: m.Name(), Site: site})
	r.mu.Unlock()
}

// BeforeUnlock implements locks.Observer: the release publishes the
// goroutine's clock for the next acquirer.
func (r *Recorder) BeforeUnlock(m *locks.Mutex, gid uint64, site string) {
	r.mu.Lock()
	r.emit(Event{Gid: gid, Kind: EvRelease, Obj: m.Name(), Site: site})
	r.rel[m.Name()] = r.clocks[gid].Clone()
	r.mu.Unlock()
}

// Fork records that parent is about to start child: the child's first
// event inherits the parent's clock. Call it before the child runs
// (see ForkTraced for the handshake helper).
func (r *Recorder) Fork(parent, child uint64) {
	r.mu.Lock()
	r.emit(Event{Gid: parent, Kind: EvFork, Child: child})
	r.forked[child] = r.clocks[parent].Clone()
	r.mu.Unlock()
}

// Join records that parent joined child: the parent's clock absorbs
// everything the child did.
func (r *Recorder) Join(parent, child uint64) {
	r.mu.Lock()
	if c, ok := r.clocks[child]; ok {
		r.clock(parent).Join(c)
	}
	r.emit(Event{Gid: parent, Kind: EvJoin, Child: child})
	r.mu.Unlock()
}

// AttachEngine subscribes the recorder to breakpoint hits: each
// rendezvous is journaled as an EvRendezvous event on the arriving
// goroutine and treated as a synchronization point on the breakpoint's
// name (successive hits of one breakpoint chain their clocks).
func (r *Recorder) AttachEngine(e *core.Engine) {
	e.SetOnHit(func(name string, arriving, postponed core.Trigger) {
		r.rendezvous(locks.GoroutineID(), name)
	})
}

// rendezvous journals one breakpoint hit on gid, chaining successive
// hits of the same breakpoint through a "bp:"-prefixed pseudo-lock.
func (r *Recorder) rendezvous(gid uint64, name string) {
	key := "bp:" + name
	r.mu.Lock()
	if rel, ok := r.rel[key]; ok {
		r.clock(gid).Join(rel)
	}
	r.emit(Event{Gid: gid, Kind: EvRendezvous, Obj: name})
	r.rel[key] = r.clocks[gid].Clone()
	r.mu.Unlock()
}

// Instrument attaches the recorder to a memory space and a set of
// mutexes in one call, mirroring detect.Detector.Instrument.
func (r *Recorder) Instrument(sp *memory.Space, ms ...*locks.Mutex) {
	if sp != nil {
		sp.Trace(r)
	}
	for _, m := range ms {
		m.Observe(r)
	}
}

// ForkTraced starts f on a new goroutine with a recorded fork edge and
// returns a handle whose Join waits for f and records the join edge.
// The handshake guarantees the fork event lands before any event of
// the child: the child reports its gid and then blocks until the
// parent has journaled the edge.
func ForkTraced(r *Recorder, f func()) *TracedGoroutine {
	parent := locks.GoroutineID()
	gidCh := make(chan uint64)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		gidCh <- locks.GoroutineID()
		<-release
		f()
	}()
	child := <-gidCh
	r.Fork(parent, child)
	close(release)
	return &TracedGoroutine{r: r, parent: parent, child: child, done: done}
}

// TracedGoroutine is a forked goroutine whose lifetime is recorded.
type TracedGoroutine struct {
	r             *Recorder
	parent, child uint64
	done          chan struct{}
}

// Join waits for the goroutine and records the join edge.
func (t *TracedGoroutine) Join() {
	<-t.done
	t.r.Join(t.parent, t.child)
}
