package predict

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/core"
	"cbreak/internal/journal"
	"cbreak/internal/memory"
)

// This file holds the mysql recording and verification workloads the
// cbpredict pipeline drives. The racy workload exercises the server's
// inconsistent LSN locking: the locked-commit path assigns mysql.lsn
// while holding mysql.catalog, the plain INSERT path assigns it with
// no lock held. Run back to back (commit first, then insert), the
// observed interleaving orders the two writes through the catalog's
// release→acquire edge — FastTrack sees no race — but the insert's
// catalog section (the table lookup) touches no shared cell, so the
// prediction closure drops that edge and reports the pair as racy in a
// reordering. The verification workload then proves the reordering is
// real by arming the compiled trigger and rendezvousing both writes.

// RecordRacyMySQL records the locked-commit vs plain-INSERT workload
// into a trace journal at dir and returns the recorded event count.
func RecordRacyMySQL(dir string) (int, error) {
	rec, err := NewRecorder(dir, RecorderOptions{Sync: journal.SyncNone})
	if err != nil {
		return 0, err
	}
	srv := newTracedServer(rec)
	srv.CreateTable("t1")

	// The commit runs first and completes before the insert starts, but
	// the ordering handshake is an untraced channel: both goroutines are
	// forked before either runs and joined after both finish, so the only
	// recorded ordering between the two LSN writes flows through the
	// catalog lock — the edge the predictor is entitled to discount.
	ready := make(chan struct{})
	commit := ForkTraced(rec, func() {
		srv.LockedCommit("c1")
		close(ready)
	})
	insert := ForkTraced(rec, func() {
		<-ready
		srv.Exec(1, "INSERT INTO t1 VALUES ('a')")
	})
	commit.Join()
	insert.Join()

	n := int(rec.seq)
	if err := rec.Close(); err != nil {
		return n, err
	}
	return n, nil
}

// RecordSyncedMySQL records the sync-ordered control workload: both
// goroutines assign LSNs through the locked commit path, so every pair
// of critical sections over the catalog lock conflicts on mysql.lsn
// and the prediction closure keeps their ordering — no race may be
// predicted from this trace.
func RecordSyncedMySQL(dir string) (int, error) {
	rec, err := NewRecorder(dir, RecorderOptions{Sync: journal.SyncNone})
	if err != nil {
		return 0, err
	}
	srv := newTracedServer(rec)
	srv.CreateTable("t1")

	// Same untraced-channel sequencing as the racy workload, so the two
	// runs differ only in which code path assigns the second LSN.
	ready := make(chan struct{})
	first := ForkTraced(rec, func() {
		srv.LockedCommit("s1")
		close(ready)
	})
	second := ForkTraced(rec, func() {
		<-ready
		srv.LockedCommit("s2")
	})
	first.Join()
	second.Join()

	n := int(rec.seq)
	if err := rec.Close(); err != nil {
		return n, err
	}
	return n, nil
}

// newTracedServer builds a mysql server whose cells live in a traced
// space and whose catalog/binlog locks report to the recorder.
func newTracedServer(rec *Recorder) *mysql.Server {
	cfg := &mysql.Config{Space: memory.NewSpace()}
	srv := mysql.NewServer(cfg)
	rec.Instrument(cfg.Space, srv.Mutexes()...)
	return srv
}

// VerifyOutcome is one armed verification run's result.
type VerifyOutcome struct {
	// Hits is the total trigger-fired count across plans.
	Hits int64
	// Fired maps breakpoint name to hit count.
	Fired map[string]int64
	// Result classifies the run for campaign records: OK with
	// BPHit=true when a manufactured trigger fired.
	Result appkit.Result
	// Stats are the engine's per-breakpoint counters at run end (they
	// ride into campaign checkpoints).
	Stats []core.StatsSnapshot
}

// VerifyMySQL re-runs the racy workload with the plans armed on a
// fresh server: the plain INSERT goroutine starts first (so its table
// lookup clears the catalog before the commit path locks it), reaches
// its LSN write, and postpones; the locked commit then reaches its own
// LSN write and the ConflictTrigger rendezvouses — both goroutines
// paused at the predicted racy pair, trigger fired.
func VerifyMySQL(e *core.Engine, plans []TriggerPlan) VerifyOutcome {
	armer := NewArmer(e, plans)
	cfg := &mysql.Config{Engine: e, Space: memory.NewSpace()}
	srv := mysql.NewServer(cfg)
	cfg.Space.Trace(armer)
	srv.CreateTable("t1")

	deadline := 30 * time.Second
	res := appkit.RunWithDeadline(deadline, func() appkit.Result {
		done := make(chan error, 2)
		go func() {
			_, err := srv.Exec(1, "INSERT INTO t1 VALUES ('v')")
			done <- err
		}()
		go func() {
			time.Sleep(time.Millisecond)
			srv.LockedCommit("v")
			done <- nil
		}()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				return appkit.Result{Status: appkit.TestFail, Detail: err.Error()}
			}
		}
		return appkit.Result{Status: appkit.OK}
	})

	out := VerifyOutcome{Fired: armer.Fired(), Stats: e.SnapshotAll(), Result: res}
	out.Hits = armer.TotalHits()
	out.Result.BPHit = out.Hits > 0
	if out.Result.Status == appkit.OK && out.Hits > 0 {
		out.Result.Detail = fmt.Sprintf("manufactured trigger fired %d time(s)", out.Hits)
	}
	return out
}
