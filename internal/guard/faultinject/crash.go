package faultinject

import (
	"errors"
	"sync"
)

// This file adds sync-point crash injection to the fault harness. Where
// Plan injects faults into breakpoint arrivals, CrashPlan injects a
// process death into a component's durability sync points — the k-th
// file write, fsync, or rename — so crash-recovery code can be driven
// through *every* instant a real SIGKILL or power cut could strike.
//
// A component under test calls Point before each sync point; once the
// k-th point is reached the plan "kills" the process: that operation
// (and every later one) fails with ErrCrashed, and for write operations
// an optional byte budget lets only a prefix of the buffer reach disk,
// modelling a torn write. The component must treat ErrCrashed as fatal
// and stop — exactly as if the process had died — and the test then
// reopens the on-disk state and asserts the recovery invariant.
//
// Like Plan, a CrashPlan is keyed by deterministic ordinals, so a crash
// scenario replays identically run to run.

// ErrCrashed is returned by every sync point at and after the planned
// crash. Code under test must propagate it and make no further
// durability progress, simulating process death.
var ErrCrashed = errors.New("faultinject: injected crash (process died here)")

// CrashPoint describes one sync point observed by a CrashPlan, for
// asserting which operation the plan killed.
type CrashPoint struct {
	// Ordinal is the 1-based sync-point ordinal.
	Ordinal int
	// Site names the operation ("write", "sync", "rename", ...).
	Site string
	// Fatal marks the point the plan crashed on.
	Fatal bool
}

// CrashPlan kills the process model at the k-th sync point. The zero
// value (or NewCrashPlan(0)) never crashes and merely counts points,
// which is how tests discover how many sync points a workload has
// before iterating over all of them. Safe for concurrent use.
type CrashPlan struct {
	mu      sync.Mutex
	dieAt   int // 1-based ordinal to crash on; 0 = never
	partial int // bytes of the fatal write to let through (-1 = all)
	n       int
	crashed bool
	points  []CrashPoint
}

// NewCrashPlan returns a plan that crashes at the k-th sync point
// (1-based). k = 0 never crashes.
func NewCrashPlan(k int) *CrashPlan {
	return &CrashPlan{dieAt: k, partial: -1}
}

// WithPartialWrite lets only n bytes of the fatal write through before
// the crash, modelling a torn write. It has no effect when the fatal
// point is not a write. n < 0 (the default) writes the full buffer.
func (p *CrashPlan) WithPartialWrite(n int) *CrashPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partial = n
	return p
}

// Point records one sync point of `size` bytes (0 for non-write
// operations) at the named site. It returns how many bytes of the
// operation may proceed and whether the process is dead: once the plan
// has crashed, every call reports (0, ErrCrashed). The fatal write
// itself proceeds for the partial-write budget before dying.
func (p *CrashPlan) Point(site string, size int) (allow int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return 0, ErrCrashed
	}
	p.n++
	fatal := p.dieAt > 0 && p.n == p.dieAt
	p.points = append(p.points, CrashPoint{Ordinal: p.n, Site: site, Fatal: fatal})
	if !fatal {
		return size, nil
	}
	p.crashed = true
	allow = size
	if p.partial >= 0 && p.partial < size {
		allow = p.partial
	}
	return allow, ErrCrashed
}

// Crashed reports whether the planned crash has fired.
func (p *CrashPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Points returns every sync point observed so far, in order.
func (p *CrashPlan) Points() []CrashPoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]CrashPoint(nil), p.points...)
}

// Count returns how many sync points the plan has observed — run a
// workload under NewCrashPlan(0) first, then iterate k over 1..Count()
// to crash the same workload at every possible instant.
func (p *CrashPlan) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}
