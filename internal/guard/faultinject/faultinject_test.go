package faultinject

import (
	"reflect"
	"testing"
	"time"

	"cbreak/internal/guard"
)

func TestPlanMatchesSideAndOccurrence(t *testing.T) {
	p := NewPlan().
		PanicLocal("bp", FirstSide, 2).
		Drop("bp", SecondSide)

	// First-side arrivals: only the 2nd gets the panic.
	if f := p.Arrival("bp", true); !f.Zero() {
		t.Fatalf("first arrival #1 injected %+v, want nothing", f)
	}
	if f := p.Arrival("bp", true); !f.PanicLocal || f.Drop {
		t.Fatalf("first arrival #2 injected %+v, want PanicLocal only", f)
	}
	if f := p.Arrival("bp", true); !f.Zero() {
		t.Fatalf("first arrival #3 injected %+v, want nothing", f)
	}
	// Second-side rule has no occurrence list: every arrival drops.
	for i := 0; i < 3; i++ {
		if f := p.Arrival("bp", false); !f.Drop || f.PanicLocal {
			t.Fatalf("second arrival #%d injected %+v, want Drop only", i+1, f)
		}
	}
	// Other breakpoints are untouched.
	if f := p.Arrival("other", true); !f.Zero() {
		t.Fatalf("unrelated breakpoint injected %+v", f)
	}

	if got := p.Arrivals("bp", true); got != 3 {
		t.Fatalf("Arrivals(bp, first) = %d, want 3", got)
	}
	if got := p.Arrivals("bp", false); got != 3 {
		t.Fatalf("Arrivals(bp, second) = %d, want 3", got)
	}
}

func TestPlanOrdinalsArePerSide(t *testing.T) {
	p := NewPlan().PanicLocal("bp", SecondSide, 1)
	// A first-side arrival must not consume the second side's ordinal 1.
	if f := p.Arrival("bp", true); !f.Zero() {
		t.Fatalf("first side injected %+v", f)
	}
	if f := p.Arrival("bp", false); !f.PanicLocal {
		t.Fatalf("second side arrival #1 injected %+v, want PanicLocal", f)
	}
}

func TestPlanMergesOverlappingRules(t *testing.T) {
	p := NewPlan().
		PanicAction("bp", BothSides, 1).
		StallAction("bp", BothSides, 5*time.Millisecond, 1).
		StallAction("bp", FirstSide, 2*time.Millisecond, 1)
	f := p.Arrival("bp", true)
	if !f.PanicAction || f.StallAction != 5*time.Millisecond {
		t.Fatalf("merged fault %+v, want PanicAction with the max stall", f)
	}
}

// run replays a fixed arrival sequence against a freshly built plan and
// returns the injected faults and the applied-record.
func runSequence(build func() *Plan) ([]guard.Fault, []Applied) {
	p := build()
	arrivals := []struct {
		bp    string
		first bool
	}{
		{"a", true}, {"a", false}, {"b", true}, {"a", true},
		{"b", false}, {"a", false}, {"a", true}, {"b", true},
	}
	var faults []guard.Fault
	for _, ar := range arrivals {
		faults = append(faults, p.Arrival(ar.bp, ar.first))
	}
	return faults, p.Applied()
}

func TestPlanDeterminism(t *testing.T) {
	build := func() *Plan {
		return NewPlan().
			PanicLocal("a", FirstSide, 2).
			Drop("b", SecondSide).
			WedgeWait("a", SecondSide, 1).
			StallAction("b", FirstSide, time.Millisecond, 2)
	}
	f1, a1 := runSequence(build)
	f2, a2 := runSequence(build)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("same plan, same arrivals, different faults:\n%+v\n%+v", f1, f2)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same plan, same arrivals, different applied records:\n%+v\n%+v", a1, a2)
	}
	if len(a1) == 0 {
		t.Fatal("no faults applied; the sequence should trigger several")
	}
	// Spot-check the applied record identifies arrivals precisely.
	want := Applied{Breakpoint: "a", First: false, Occurrence: 1, Fault: guard.Fault{WedgeWait: true}}
	if a1[0] != want {
		t.Fatalf("first applied = %+v, want %+v", a1[0], want)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p := NewPlan().Drop("bp", BothSides)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				p.Arrival("bp", j%2 == 0)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := p.Arrivals("bp", true) + p.Arrivals("bp", false); got != 400 {
		t.Fatalf("total arrivals = %d, want 400", got)
	}
	if got := len(p.Applied()); got != 400 {
		t.Fatalf("applied = %d, want 400", got)
	}
}
