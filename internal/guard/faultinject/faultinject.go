// Package faultinject is the deterministic fault-injection harness for
// the breakpoint engine. A Plan implements guard.Injector: it matches
// trigger arrivals by breakpoint name, side, and per-(name, side)
// arrival ordinal, and injects the guard.Fault declared for them —
// predicate panics, action panics, stalled actions, dropped arrivals
// (partner no-shows), and wedged postponement timers.
//
// Because faults are keyed by arrival ordinals rather than randomness,
// a chaos run is reproducible: the same scenario with the same plan
// injects the same faults at the same call sites. The app reproductions
// under internal/apps use plans for chaos-style tests (inject faults,
// assert the engine stays consistent).
package faultinject

import (
	"sync"
	"time"

	"cbreak/internal/guard"
)

// Side selects which breakpoint side a rule applies to.
type Side int

// Rule sides.
const (
	// BothSides: the rule matches first- and second-action arrivals.
	BothSides Side = iota
	// FirstSide: only first-action (slot 0) arrivals.
	FirstSide
	// SecondSide: only second-action (slot > 0) arrivals.
	SecondSide
)

func (s Side) matches(first bool) bool {
	switch s {
	case FirstSide:
		return first
	case SecondSide:
		return !first
	default:
		return true
	}
}

// rule is one fault declaration.
type rule struct {
	breakpoint string
	side       Side
	// occurrences lists the 1-based arrival ordinals (per breakpoint
	// and matching side) the rule fires on; empty means every arrival.
	occurrences []int
	fault       guard.Fault
}

func (r rule) firesOn(n int) bool {
	if len(r.occurrences) == 0 {
		return true
	}
	for _, o := range r.occurrences {
		if o == n {
			return true
		}
	}
	return false
}

// Applied records one injected fault, for asserting determinism.
type Applied struct {
	// Breakpoint and First identify the arrival.
	Breakpoint string
	First      bool
	// Occurrence is the 1-based arrival ordinal the fault fired on.
	Occurrence int
	// Fault is what was injected.
	Fault guard.Fault
}

// Plan is a deterministic set of fault rules. Declare rules with the
// builder methods, install the plan with Engine.SetInjector, and run
// the scenario; Applied() then lists exactly which faults fired.
// A Plan is safe for concurrent use.
type Plan struct {
	mu      sync.Mutex
	rules   []rule
	arrival map[string][2]int // per-breakpoint arrival counts by side
	applied []Applied
}

// NewPlan returns an empty plan (injects nothing).
func NewPlan() *Plan { return &Plan{arrival: make(map[string][2]int)} }

// Add declares a fully custom fault rule; occurrences are 1-based
// per-(breakpoint, matching side) arrival ordinals, empty = always.
func (p *Plan) Add(breakpoint string, side Side, f guard.Fault, occurrences ...int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{breakpoint: breakpoint, side: side,
		occurrences: occurrences, fault: f})
	return p
}

// PanicLocal makes the local predicate panic on the given arrivals.
func (p *Plan) PanicLocal(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{PanicLocal: true}, occurrences...)
}

// PanicGlobal makes the joint predicate panic on the given arrivals.
func (p *Plan) PanicGlobal(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{PanicGlobal: true}, occurrences...)
}

// PanicExtra makes Options.ExtraLocal panic on the given arrivals.
func (p *Plan) PanicExtra(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{PanicExtra: true}, occurrences...)
}

// PanicAction makes the action closure panic on the given arrivals.
func (p *Plan) PanicAction(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{PanicAction: true}, occurrences...)
}

// StallAction sleeps d inside the action on the given arrivals.
func (p *Plan) StallAction(breakpoint string, side Side, d time.Duration, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{StallAction: d}, occurrences...)
}

// Drop discards the given arrivals before matching, so the partner
// experiences a no-show.
func (p *Plan) Drop(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{Drop: true}, occurrences...)
}

// WedgeWait disables the waiter's own postponement timer on the given
// arrivals, leaving release to a partner or the watchdog.
func (p *Plan) WedgeWait(breakpoint string, side Side, occurrences ...int) *Plan {
	return p.Add(breakpoint, side, guard.Fault{WedgeWait: true}, occurrences...)
}

// Arrival implements guard.Injector: it counts the arrival and merges
// every matching rule's fault into the result.
func (p *Plan) Arrival(breakpoint string, first bool) guard.Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	counts := p.arrival[breakpoint]
	idx := 0
	if first {
		idx = 1
	}
	counts[idx]++
	p.arrival[breakpoint] = counts
	n := counts[idx]

	var f guard.Fault
	for _, r := range p.rules {
		if r.breakpoint != breakpoint || !r.side.matches(first) || !r.firesOn(n) {
			continue
		}
		f = merge(f, r.fault)
	}
	if !f.Zero() {
		p.applied = append(p.applied, Applied{
			Breakpoint: breakpoint, First: first, Occurrence: n, Fault: f})
	}
	return f
}

// Applied returns the faults injected so far, in injection order.
func (p *Plan) Applied() []Applied {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Applied(nil), p.applied...)
}

// Arrivals returns how many arrivals of the breakpoint the plan has
// seen on the given side.
func (p *Plan) Arrivals(breakpoint string, first bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := 0
	if first {
		idx = 1
	}
	return p.arrival[breakpoint][idx]
}

func merge(a, b guard.Fault) guard.Fault {
	a.PanicLocal = a.PanicLocal || b.PanicLocal
	a.PanicGlobal = a.PanicGlobal || b.PanicGlobal
	a.PanicExtra = a.PanicExtra || b.PanicExtra
	a.PanicAction = a.PanicAction || b.PanicAction
	a.Drop = a.Drop || b.Drop
	a.WedgeWait = a.WedgeWait || b.WedgeWait
	if b.StallAction > a.StallAction {
		a.StallAction = b.StallAction
	}
	return a
}
