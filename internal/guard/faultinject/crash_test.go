package faultinject

import (
	"errors"
	"testing"
)

func TestCrashPlanNeverCrashesAtZero(t *testing.T) {
	p := NewCrashPlan(0)
	for i := 0; i < 10; i++ {
		allow, err := p.Point("write", 100)
		if err != nil || allow != 100 {
			t.Fatalf("point %d: allow=%d err=%v", i, allow, err)
		}
	}
	if p.Crashed() {
		t.Fatal("counting plan crashed")
	}
	if p.Count() != 10 {
		t.Fatalf("Count = %d, want 10", p.Count())
	}
}

func TestCrashPlanDiesAtKAndStaysDead(t *testing.T) {
	p := NewCrashPlan(3)
	for i := 1; i <= 2; i++ {
		if _, err := p.Point("write", 10); err != nil {
			t.Fatalf("point %d died early: %v", i, err)
		}
	}
	allow, err := p.Point("sync", 0)
	if !errors.Is(err, ErrCrashed) || allow != 0 {
		t.Fatalf("fatal point: allow=%d err=%v", allow, err)
	}
	// Dead is dead: every later point fails without advancing.
	for i := 0; i < 3; i++ {
		if _, err := p.Point("rename", 0); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-mortem point succeeded: %v", err)
		}
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (dead points don't count)", p.Count())
	}
	pts := p.Points()
	if len(pts) != 3 || !pts[2].Fatal || pts[2].Site != "sync" {
		t.Fatalf("points = %+v", pts)
	}
}

func TestCrashPlanPartialWrite(t *testing.T) {
	p := NewCrashPlan(1).WithPartialWrite(7)
	allow, err := p.Point("write", 100)
	if !errors.Is(err, ErrCrashed) || allow != 7 {
		t.Fatalf("allow=%d err=%v, want 7 bytes then crash", allow, err)
	}

	// A partial budget larger than the write lets the whole write through.
	p = NewCrashPlan(1).WithPartialWrite(500)
	allow, err = p.Point("write", 100)
	if !errors.Is(err, ErrCrashed) || allow != 100 {
		t.Fatalf("allow=%d err=%v, want full 100 then crash", allow, err)
	}
}
