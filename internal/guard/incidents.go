package guard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// IncidentKind classifies an absorbed failure or a hardening state
// change.
type IncidentKind int

// Incident kinds.
const (
	// KindPanic: a user closure (predicate or action) panicked and was
	// absorbed by the engine.
	KindPanic IncidentKind = iota
	// KindStall: an action ran longer than the handshake budget,
	// leaving its partner to proceed on the defensive timeout.
	KindStall
	// KindWatchdogRelease: the watchdog force-released a goroutine
	// postponed past its budget.
	KindWatchdogRelease
	// KindBreakerTrip: a breakpoint's circuit breaker tripped open.
	KindBreakerTrip
	// KindBreakerProbe: an open breaker admitted a half-open probe.
	KindBreakerProbe
	// KindBreakerRearm: a half-open probe succeeded and the breaker
	// closed again.
	KindBreakerRearm
	// KindCycleBreak: the wait-graph supervisor force-released a
	// postponed goroutine to break a lock cycle it participated in.
	KindCycleBreak
	// KindDeadlockConfirmed: the wait-graph supervisor confirmed an
	// application-only lock cycle (a true deadlock, no postponement
	// edge to break).
	KindDeadlockConfirmed
	// KindOverloadShed: an arrival was shed without postponement
	// because the engine's postponed population exceeded its
	// configured overload bounds.
	KindOverloadShed
	// KindNetFault: an injected network fault (chaos-proxy latency,
	// reset, truncation, half-open drop, partition, throttle, or
	// slow-loris trickle) was recorded against this run's transport.
	// These are infrastructure noise by construction — the blame
	// localization that keeps them from being mistaken for application
	// bugs depends on the kind being distinct.
	KindNetFault
)

const incidentKindCount = int(KindNetFault) + 1

// Kinds returns every incident kind, in declaration order, for
// consumers that aggregate counts across all kinds (campaign trial
// records, metrics exporters).
func Kinds() []IncidentKind {
	out := make([]IncidentKind, incidentKindCount)
	for i := range out {
		out[i] = IncidentKind(i)
	}
	return out
}

// String returns the incident-kind label.
func (k IncidentKind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindWatchdogRelease:
		return "watchdog-release"
	case KindBreakerTrip:
		return "breaker-trip"
	case KindBreakerProbe:
		return "breaker-probe"
	case KindBreakerRearm:
		return "breaker-rearm"
	case KindCycleBreak:
		return "cycle-break"
	case KindDeadlockConfirmed:
		return "deadlock-confirmed"
	case KindOverloadShed:
		return "overload-shed"
	case KindNetFault:
		return "net-fault-injected"
	default:
		return "unknown"
	}
}

// Incident is one entry of the hardening layer's incident log.
type Incident struct {
	// When is the incident timestamp.
	When time.Time
	// Kind classifies the incident.
	Kind IncidentKind
	// Breakpoint is the breakpoint involved.
	Breakpoint string
	// GID is the goroutine involved, when known (0 otherwise).
	GID uint64
	// Detail is a human-readable description (panic value, stall
	// duration, backoff, ...).
	Detail string
}

// String formats the incident for logs.
func (in Incident) String() string {
	return fmt.Sprintf("[%s] %s g%d: %s", in.Kind, in.Breakpoint, in.GID, in.Detail)
}

// IncidentLog is a bounded ring of incidents with per-kind running
// totals. The totals are monotonic even after old entries rotate out of
// the ring. The zero value is ready to use.
type IncidentLog struct {
	mu   sync.Mutex
	buf  []Incident
	next int
	full bool

	counts [incidentKindCount]atomic.Int64
}

const incidentLogCapacity = 256

// Record appends an incident to the log.
func (l *IncidentLog) Record(in Incident) {
	if in.When.IsZero() {
		in.When = time.Now()
	}
	if k := int(in.Kind); k >= 0 && k < incidentKindCount {
		l.counts[k].Add(1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		l.buf = make([]Incident, incidentLogCapacity)
	}
	l.buf[l.next] = in
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
}

// Snapshot returns the retained incidents, oldest first.
func (l *IncidentLog) Snapshot() []Incident {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		return nil
	}
	var out []Incident
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// Count returns the running total of incidents of the given kind,
// including entries that have rotated out of the ring.
func (l *IncidentLog) Count(k IncidentKind) int64 {
	if int(k) < 0 || int(k) >= incidentKindCount {
		return 0
	}
	return l.counts[k].Load()
}

// Total returns the running total across all kinds.
func (l *IncidentLog) Total() int64 {
	var n int64
	for i := range l.counts {
		n += l.counts[i].Load()
	}
	return n
}
