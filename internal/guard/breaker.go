package guard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit-breaker state of one breakpoint.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: the breakpoint operates normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the breakpoint is tripped; arrivals are shed (pass
	// straight through without postponement) until the backoff expires.
	BreakerOpen
	// BreakerHalfOpen: the backoff expired and arrivals are admitted as
	// probes. Unlike a classic request/response breaker, a rendezvous
	// probe can only succeed if its partner is admitted too, so every
	// arrival passes while half-open; the first reported outcome decides
	// between re-arming and re-opening with a doubled backoff.
	BreakerHalfOpen
)

// String returns the state label.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes per-breakpoint circuit breakers.
type BreakerConfig struct {
	// MinSamples is how many postponement outcomes (hits + timeouts)
	// must be observed before the timeout rate is judged at all.
	MinSamples int
	// Window bounds the sample history: when the sample count reaches
	// Window, both counters are halved, giving an exponentially decayed
	// recent-rate estimate.
	Window int
	// TimeoutRate is the trip threshold: the breaker opens when
	// timeouts/samples >= TimeoutRate with at least MinSamples samples.
	TimeoutRate float64
	// Backoff is the initial open duration before the first half-open
	// probe. Each failed probe doubles it, up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
}

// DefaultBreakerConfig returns the production defaults: judge after 8
// postponement outcomes over a 64-sample decay window, trip at a 90%
// timeout rate, back off 1s doubling to 30s.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		MinSamples:  8,
		Window:      64,
		TimeoutRate: 0.9,
		Backoff:     time.Second,
		MaxBackoff:  30 * time.Second,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.Window < c.MinSamples {
		c.Window = max(d.Window, c.MinSamples)
	}
	if c.TimeoutRate <= 0 || c.TimeoutRate > 1 {
		c.TimeoutRate = d.TimeoutRate
	}
	if c.Backoff <= 0 {
		c.Backoff = d.Backoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = max(d.MaxBackoff, c.Backoff)
	}
	return c
}

// Transition reports a breaker state change caused by Allow or an
// outcome report, so the caller can log the corresponding incident.
type Transition int

// Breaker transitions.
const (
	// TransitionNone: no state change.
	TransitionNone Transition = iota
	// TransitionTripped: the timeout rate crossed the threshold and the
	// breaker opened.
	TransitionTripped
	// TransitionProbe: an open breaker's backoff expired and this
	// arrival was admitted as the half-open probe.
	TransitionProbe
	// TransitionRearmed: the probe hit; the breaker closed and the
	// backoff reset.
	TransitionRearmed
	// TransitionReopened: the probe timed out; the breaker re-opened
	// with a doubled backoff.
	TransitionReopened
)

// Breaker is a per-breakpoint circuit breaker. The closed-state fast
// path of Allow is a single atomic load, so healthy breakpoints pay
// nearly nothing for the protection.
type Breaker struct {
	state atomic.Int32

	mu        sync.Mutex
	cfg       BreakerConfig
	samples   int64
	timeouts  int64
	backoff   time.Duration
	openUntil time.Time
	trips     int64
	rearms    int64
}

// NewBreaker returns a closed breaker with the given configuration
// (zero fields take the defaults of DefaultBreakerConfig).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Allow decides whether an arrival may enter the breakpoint machinery.
// admit=false means the arrival must be shed (pass through without
// postponement). The returned transition is TransitionProbe when this
// arrival was admitted as the half-open probe.
func (b *Breaker) Allow(now time.Time) (admit bool, tr Transition) {
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true, TransitionNone
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed: // raced with a re-arm
		return true, TransitionNone
	case BreakerHalfOpen:
		// Admit: a rendezvous probe needs a partner, so half-open
		// passes all arrivals until the first outcome report decides.
		return true, TransitionNone
	default: // open
		if now.Before(b.openUntil) {
			return false, TransitionNone
		}
		b.state.Store(int32(BreakerHalfOpen))
		return true, TransitionProbe
	}
}

// OnHit reports that an admitted arrival's postponement ended in a hit.
func (b *Breaker) OnHit(now time.Time) Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	if BreakerState(b.state.Load()) == BreakerHalfOpen {
		// Probe succeeded: close and reset history and backoff.
		b.state.Store(int32(BreakerClosed))
		b.samples, b.timeouts = 0, 0
		b.backoff = b.cfg.Backoff
		b.rearms++
		return TransitionRearmed
	}
	b.sample(false)
	return TransitionNone
}

// OnTimeout reports that an admitted arrival's postponement timed out.
func (b *Breaker) OnTimeout(now time.Time) Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	if BreakerState(b.state.Load()) == BreakerHalfOpen {
		// Probe failed: re-open with doubled backoff.
		b.backoff = min(2*b.backoff, b.cfg.MaxBackoff)
		b.openUntil = now.Add(b.backoff)
		b.state.Store(int32(BreakerOpen))
		b.trips++
		return TransitionReopened
	}
	b.sample(true)
	if BreakerState(b.state.Load()) == BreakerClosed &&
		b.samples >= int64(b.cfg.MinSamples) &&
		float64(b.timeouts) >= b.cfg.TimeoutRate*float64(b.samples) {
		if b.backoff <= 0 {
			b.backoff = b.cfg.Backoff
		}
		b.openUntil = now.Add(b.backoff)
		b.state.Store(int32(BreakerOpen))
		b.trips++
		return TransitionTripped
	}
	return TransitionNone
}

// sample records one postponement outcome with window decay. Called
// with b.mu held.
func (b *Breaker) sample(timedOut bool) {
	b.samples++
	if timedOut {
		b.timeouts++
	}
	if b.samples >= int64(b.cfg.Window) {
		b.samples /= 2
		b.timeouts /= 2
	}
}

// BreakerSnapshot is a point-in-time copy of a breaker's state for
// diagnostics.
type BreakerSnapshot struct {
	State     BreakerState
	Samples   int64
	Timeouts  int64
	Backoff   time.Duration
	OpenUntil time.Time
	Trips     int64
	Rearms    int64
}

// Snapshot returns a consistent copy of the breaker's counters.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:     BreakerState(b.state.Load()),
		Samples:   b.samples,
		Timeouts:  b.timeouts,
		Backoff:   b.backoff,
		OpenUntil: b.openUntil,
		Trips:     b.trips,
		Rearms:    b.rearms,
	}
}

// String formats the snapshot for logs.
func (s BreakerSnapshot) String() string {
	return fmt.Sprintf("%s samples=%d timeouts=%d backoff=%s trips=%d rearms=%d",
		s.State, s.Samples, s.Timeouts, s.Backoff, s.Trips, s.Rearms)
}
