package guard

import (
	"fmt"
	"testing"
	"time"
)

func trippedBreaker(t *testing.T, cfg BreakerConfig, now time.Time) *Breaker {
	t.Helper()
	b := NewBreaker(cfg)
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("breaker never tripped")
		}
		if tr := b.OnTimeout(now); tr == TransitionTripped {
			return b
		}
	}
}

func TestBreakerTripsAtTimeoutRate(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := BreakerConfig{MinSamples: 4, Window: 64, TimeoutRate: 0.9, Backoff: time.Second}
	b := NewBreaker(cfg)

	// Three timeouts: below MinSamples, still closed.
	for i := 0; i < 3; i++ {
		if tr := b.OnTimeout(now); tr != TransitionNone {
			t.Fatalf("timeout %d: transition %v before MinSamples", i+1, tr)
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v before MinSamples, want closed", b.State())
	}
	// Fourth timeout reaches MinSamples at 100% rate: trip.
	if tr := b.OnTimeout(now); tr != TransitionTripped {
		t.Fatalf("transition %v at MinSamples, want tripped", tr)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after trip, want open", b.State())
	}
	if admit, _ := b.Allow(now); admit {
		t.Fatal("open breaker admitted an arrival before backoff expiry")
	}
}

func TestBreakerHealthyRateStaysClosed(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{MinSamples: 4, TimeoutRate: 0.9})
	// Alternate hits and timeouts: 50% rate, far under the threshold.
	for i := 0; i < 100; i++ {
		b.OnHit(now)
		if tr := b.OnTimeout(now); tr != TransitionNone {
			t.Fatalf("round %d: transition %v at 50%% timeout rate", i, tr)
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

func TestBreakerProbeRearm(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := BreakerConfig{MinSamples: 2, TimeoutRate: 0.9, Backoff: time.Second, MaxBackoff: 8 * time.Second}
	b := trippedBreaker(t, cfg, now)

	// Before the backoff expires arrivals are shed.
	if admit, _ := b.Allow(now.Add(500 * time.Millisecond)); admit {
		t.Fatal("admitted during backoff")
	}
	// After expiry the first arrival is the probe...
	probeAt := now.Add(2 * time.Second)
	admit, tr := b.Allow(probeAt)
	if !admit || tr != TransitionProbe {
		t.Fatalf("Allow after backoff = (%v, %v), want (true, probe)", admit, tr)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe, want half-open", b.State())
	}
	// ...and later arrivals are admitted too: a rendezvous probe needs a
	// partner to have any chance of hitting.
	if admit, tr := b.Allow(probeAt); !admit || tr != TransitionNone {
		t.Fatalf("half-open Allow = (%v, %v), want (true, none)", admit, tr)
	}
	// The probe hits: breaker closes, backoff resets.
	if tr := b.OnHit(probeAt); tr != TransitionRearmed {
		t.Fatalf("probe hit transition %v, want rearmed", tr)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after re-arm, want closed", b.State())
	}
	snap := b.Snapshot()
	if snap.Backoff != time.Second || snap.Samples != 0 || snap.Rearms != 1 {
		t.Fatalf("snapshot after re-arm = %v, want reset history and backoff", snap)
	}
}

func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := BreakerConfig{MinSamples: 2, TimeoutRate: 0.9, Backoff: time.Second, MaxBackoff: 3 * time.Second}
	b := trippedBreaker(t, cfg, now)

	at := now
	wantBackoffs := []time.Duration{2 * time.Second, 3 * time.Second, 3 * time.Second} // doubled, then capped
	for i, want := range wantBackoffs {
		at = at.Add(time.Minute) // far past any backoff
		if admit, tr := b.Allow(at); !admit || tr != TransitionProbe {
			t.Fatalf("probe %d: Allow = (%v, %v)", i, admit, tr)
		}
		if tr := b.OnTimeout(at); tr != TransitionReopened {
			t.Fatalf("probe %d: timeout transition %v, want reopened", i, tr)
		}
		if got := b.Snapshot().Backoff; got != want {
			t.Fatalf("probe %d: backoff %v, want %v", i, got, want)
		}
		if admit, _ := b.Allow(at.Add(time.Millisecond)); admit {
			t.Fatalf("probe %d: admitted immediately after re-open", i)
		}
	}
}

func TestBreakerWindowDecay(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{MinSamples: 4, Window: 8, TimeoutRate: 0.99})
	for i := 0; i < 7; i++ {
		b.OnHit(now)
	}
	// The 8th sample reaches the window: both counters halve.
	b.OnHit(now)
	if snap := b.Snapshot(); snap.Samples != 4 || snap.Timeouts != 0 {
		t.Fatalf("after window: samples=%d timeouts=%d, want 4/0", snap.Samples, snap.Timeouts)
	}
}

func TestIncidentLogRingAndCounts(t *testing.T) {
	var log IncidentLog
	const n = incidentLogCapacity + 50
	for i := 0; i < n; i++ {
		log.Record(Incident{Kind: KindPanic, Breakpoint: fmt.Sprintf("bp%d", i)})
	}
	log.Record(Incident{Kind: KindStall, Breakpoint: "stall"})

	if got := log.Count(KindPanic); got != n {
		t.Fatalf("Count(KindPanic) = %d, want %d (monotonic across ring rotation)", got, n)
	}
	if got := log.Count(KindStall); got != 1 {
		t.Fatalf("Count(KindStall) = %d, want 1", got)
	}
	if got := log.Total(); got != n+1 {
		t.Fatalf("Total() = %d, want %d", got, n+1)
	}
	snap := log.Snapshot()
	if len(snap) != incidentLogCapacity {
		t.Fatalf("Snapshot len = %d, want ring capacity %d", len(snap), incidentLogCapacity)
	}
	// Oldest first; the newest retained entry is the stall.
	if last := snap[len(snap)-1]; last.Kind != KindStall {
		t.Fatalf("newest retained incident kind = %v, want stall", last.Kind)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].When.Before(snap[i-1].When) {
			t.Fatalf("snapshot not oldest-first at %d", i)
		}
	}
}

func TestIncidentKindStrings(t *testing.T) {
	kinds := []IncidentKind{KindPanic, KindStall, KindWatchdogRelease, KindBreakerTrip, KindBreakerProbe, KindBreakerRearm}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d: label %q empty or duplicated", k, s)
		}
		seen[s] = true
	}
}

func TestFaultZero(t *testing.T) {
	if !(Fault{}).Zero() {
		t.Fatal("zero Fault not Zero()")
	}
	if (Fault{Drop: true}).Zero() || (Fault{StallAction: time.Millisecond}).Zero() {
		t.Fatal("non-zero Fault reported Zero()")
	}
}
