// Package guard is the engine's production-hardening layer. The paper's
// promise is that concurrent breakpoints "can stay in code, disabled,
// like assertions" — guard makes the enabled state shippable too, by
// ensuring that no user-supplied predicate, action, or wedged handshake
// can crash or stall the host program:
//
//   - panic isolation: user closures run under recover; a panicking
//     predicate becomes an OutcomePanic with an Incident, never an
//     engine crash (see internal/core's safe-evaluation wrappers).
//   - IncidentLog: a bounded, queryable record of everything the
//     hardening layer absorbed (panics, stalls, watchdog releases,
//     breaker state changes).
//   - Breaker: a per-breakpoint circuit breaker. A breakpoint whose
//     postponements keep timing out trips open — arrivals pass straight
//     through at near-zero cost — and later re-arms via half-open
//     probes with exponential backoff.
//   - Injector/Fault: the contract the fault-injection harness
//     (internal/guard/faultinject) uses to deterministically drive the
//     engine into all of the failure modes above, so the hardening is
//     testable rather than aspirational.
//
// guard deliberately has no dependency on internal/core: core imports
// guard and threads these primitives through the trigger hot path.
package guard

import "time"

// Fault describes the faults to inject into a single TriggerHere (or
// TriggerHereMulti) arrival. The zero value injects nothing.
type Fault struct {
	// PanicLocal makes the local-predicate evaluation panic.
	PanicLocal bool
	// PanicGlobal makes the joint-predicate evaluation panic when this
	// arrival is matched against a postponed partner.
	PanicGlobal bool
	// PanicExtra makes the Options.ExtraLocal evaluation panic.
	PanicExtra bool
	// PanicAction makes the call's action closure panic (after the real
	// action, if any, has run).
	PanicAction bool
	// StallAction sleeps this long inside the action, simulating a
	// first-action side that wedges mid-handshake.
	StallAction time.Duration
	// Drop silently discards the arrival before matching: the goroutine
	// continues immediately and any partner sees a no-show.
	Drop bool
	// WedgeWait simulates a broken postponement timer: the waiter's own
	// timeout never fires, so only the watchdog's force-release (or a
	// partner) can free it.
	WedgeWait bool
}

// Zero reports whether the fault injects nothing.
func (f Fault) Zero() bool { return f == Fault{} }

// Injector decides, per arrival, which faults to apply. Implementations
// must be safe for concurrent use; the engine consults the injector on
// the trigger path. Production engines have no injector installed and
// pay only a nil check.
type Injector interface {
	// Arrival is called once per trigger arrival with the breakpoint
	// name and side (first-action side for two-way breakpoints, slot 0
	// for multi-way) and returns the faults to inject into that call.
	Arrival(breakpoint string, first bool) Fault
}

// InjectedPanic is the value thrown by injected predicate/action panics,
// so tests can distinguish synthetic faults from real ones.
type InjectedPanic struct {
	// Breakpoint is the breakpoint the fault was injected into.
	Breakpoint string
	// Site names the closure that panicked (local/global/extra/action).
	Site string
}

func (p InjectedPanic) Error() string {
	return "injected panic at " + p.Breakpoint + " (" + p.Site + ")"
}
