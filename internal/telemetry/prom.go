package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders gathered samples in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` / `# TYPE` header per metric
// family followed by its samples, histograms expanded into cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. The renderer is
// stdlib-only by constraint; the subset emitted here is what any
// Prometheus-compatible scraper parses.

// WritePrometheus gathers the registry and writes the text exposition.
// Families appear in catalog order (then first-seen order for any
// descriptor outside the catalog), samples within a family in sorted
// label order, so consecutive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()

	// Group samples by descriptor, preserving catalog order.
	order := make([]*Desc, 0, len(samples))
	rank := make(map[*Desc]int)
	for _, d := range Catalog() {
		rank[d] = len(rank)
		order = append(order, d)
	}
	byDesc := make(map[*Desc][]Sample)
	for _, s := range samples {
		if s.Desc == nil {
			continue
		}
		if _, ok := rank[s.Desc]; !ok {
			rank[s.Desc] = len(rank)
			order = append(order, s.Desc)
		}
		byDesc[s.Desc] = append(byDesc[s.Desc], s)
	}

	bw := bufio.NewWriter(w)
	for _, d := range order {
		fam := byDesc[d]
		if len(fam) == 0 {
			continue
		}
		sort.SliceStable(fam, func(i, j int) bool {
			return lessLabels(fam[i].Labels, fam[j].Labels)
		})
		bw.WriteString("# HELP ")
		bw.WriteString(d.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(d.Help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(d.Name)
		bw.WriteByte(' ')
		bw.WriteString(d.Kind.String())
		bw.WriteByte('\n')
		for _, s := range fam {
			if d.Kind == HistogramKind && s.Hist != nil {
				writeHistogram(bw, d, s)
				continue
			}
			writeSample(bw, d.Name, d.Labels, s.Labels, "", "", s.Value)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return nil
}

// writeHistogram expands one histogram sample into its cumulative
// bucket, sum, and count series.
func writeHistogram(bw *bufio.Writer, d *Desc, s Sample) {
	var cum uint64
	for i, bound := range d.Buckets {
		if i < len(s.Hist.BucketCounts) {
			cum += s.Hist.BucketCounts[i]
		}
		writeSample(bw, d.Name+"_bucket", d.Labels, s.Labels,
			"le", formatFloat(bound), float64(cum))
	}
	writeSample(bw, d.Name+"_bucket", d.Labels, s.Labels,
		"le", "+Inf", float64(s.Hist.Count))
	writeSample(bw, d.Name+"_sum", d.Labels, s.Labels, "", "", s.Hist.Sum)
	writeSample(bw, d.Name+"_count", d.Labels, s.Labels, "", "", float64(s.Hist.Count))
}

// writeSample writes one exposition line, appending an extra label pair
// (histogram le) when extraName is non-empty.
func writeSample(bw *bufio.Writer, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		bw.WriteByte('{')
		first := true
		for i, ln := range labelNames {
			lv := ""
			if i < len(labelValues) {
				lv = labelValues[i]
			}
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(ln)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(lv))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

func lessLabels(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
