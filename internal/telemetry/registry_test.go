package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cbreak/internal/guard"
)

func TestNumWaitBucketsMatches(t *testing.T) {
	if len(WaitBuckets) != NumWaitBuckets {
		t.Fatalf("NumWaitBuckets = %d, len(WaitBuckets) = %d", NumWaitBuckets, len(WaitBuckets))
	}
}

func TestCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Catalog() {
		if d.Name == "" || d.Help == "" {
			t.Errorf("descriptor %+v missing name or help", d)
		}
		if !strings.HasPrefix(d.Name, "cbreak_") {
			t.Errorf("%s: catalog names must be cbreak_-prefixed", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("duplicate catalog name %s", d.Name)
		}
		seen[d.Name] = true
		if d.Kind == Counter && !strings.HasSuffix(d.Name, "_total") {
			t.Errorf("%s: counters must end in _total", d.Name)
		}
		if d.Kind == HistogramKind && len(d.Buckets) == 0 {
			t.Errorf("%s: histogram without buckets", d.Name)
		}
		for i := 1; i < len(d.Buckets); i++ {
			if d.Buckets[i] <= d.Buckets[i-1] {
				t.Errorf("%s: buckets not ascending at %d", d.Name, i)
			}
		}
	}
}

func TestRegistryGatherAndCounterVec(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Desc: DescEngineEnabled, Value: 1})
	})
	v := NewCounterVec(DescIncidents)
	v.Add(3, "panic")
	v.Add(1, "stall")
	v.Add(2, "panic")
	r.RegisterCollector(v.Collect)

	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(samples))
	}
	byLabel := map[string]float64{}
	for _, s := range samples[1:] {
		byLabel[s.Labels[0]] = s.Value
	}
	if byLabel["panic"] != 5 || byLabel["stall"] != 1 {
		t.Fatalf("counter vec wrong: %v", byLabel)
	}
}

func TestWireBusCountsRecords(t *testing.T) {
	r := NewRegistry()
	b := NewBus()
	h := r.WireBus("engine", b)
	defer h.Detach()

	b.Publish(Record{Kind: RecordEvent})
	b.Publish(Record{Kind: RecordEvent})
	b.Publish(Record{Kind: RecordIncident})
	b.Publish(Record{Kind: RecordReport, Report: Report{Kind: "deadlock"}})
	b.Publish(Record{Kind: RecordTrial,
		Trial: Trial{Table: "tab2", Variant: "base", Status: "ok"}})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cbreak_bus_records_total{kind="engine-event"} 2`,
		`cbreak_bus_records_total{kind="guard-incident"} 1`,
		`cbreak_bus_records_total{kind="waitgraph-report"} 1`,
		`cbreak_bus_records_total{kind="trial-outcome"} 1`,
		`cbreak_waitgraph_reports_total{kind="deadlock"} 1`,
		`cbreak_trials_total{table="tab2",variant="base",status="ok"} 1`,
		`cbreak_bus_dropped_total{bus="engine"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		counts := make([]uint64, len(WaitBuckets))
		counts[0] = 2 // two obs ≤ 0.0001
		counts[3] = 1 // one obs ≤ 0.001
		emit(Sample{Desc: DescBPWait, Labels: []string{"bp"},
			Hist: &HistSample{BucketCounts: counts, Sum: 0.0012, Count: 4}})
		// Count 4 > bucketed 3: one observation above the top bound.
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cbreak_bp_wait_seconds histogram",
		`cbreak_bp_wait_seconds_bucket{breakpoint="bp",le="0.0001"} 2`,
		`cbreak_bp_wait_seconds_bucket{breakpoint="bp",le="0.001"} 3`,
		`cbreak_bp_wait_seconds_bucket{breakpoint="bp",le="+Inf"} 4`,
		`cbreak_bp_wait_seconds_sum{breakpoint="bp"} 0.0012`,
		`cbreak_bp_wait_seconds_count{breakpoint="bp"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing left to right.
	if strings.Index(out, `le="0.0001"} 2`) > strings.Index(out, `le="+Inf"}`) {
		t.Error("bucket order wrong")
	}
}

func TestWritePrometheusOrderingAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Desc: DescBPHits, Labels: []string{"z.bp"}, Value: 1})
		emit(Sample{Desc: DescBPHits, Labels: []string{`a"bp`}, Value: 2})
		emit(Sample{Desc: DescEngineEnabled, Value: 1})
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Catalog order: engine_enabled before bp_hits even though collected
	// after.
	if strings.Index(out, "cbreak_engine_enabled") > strings.Index(out, "cbreak_bp_hits_total") {
		t.Error("families not in catalog order")
	}
	// Samples within a family sorted by label value; quote escaped.
	if !strings.Contains(out, `cbreak_bp_hits_total{breakpoint="a\"bp"} 2`) {
		t.Errorf("escaped label missing:\n%s", out)
	}
	if strings.Index(out, `a\"bp`) > strings.Index(out, "z.bp") {
		t.Error("samples not label-sorted within family")
	}
	// Exactly one HELP/TYPE header per family.
	if n := strings.Count(out, "# TYPE cbreak_bp_hits_total"); n != 1 {
		t.Errorf("TYPE header count = %d, want 1", n)
	}
}

func TestNDJSONShapes(t *testing.T) {
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	evLine, err := MarshalNDJSON(Record{Kind: RecordEvent, Event: Event{
		Seq: 9, When: when, Kind: EventHit, Breakpoint: "bp", GID: 42, First: true}})
	if err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal(evLine, &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "engine-event" || ev["event"] != "hit" ||
		ev["breakpoint"] != "bp" || ev["seq"] != float64(9) || ev["first"] != true {
		t.Fatalf("event shape wrong: %s", evLine)
	}

	inLine, err := MarshalNDJSON(Record{Kind: RecordIncident, Incident: guard.Incident{
		When: when, Kind: guard.KindOverloadShed, Breakpoint: "bp", GID: 7, Detail: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	var in map[string]any
	if err := json.Unmarshal(inLine, &in); err != nil {
		t.Fatal(err)
	}
	if in["kind"] != "guard-incident" || in["incident"] != "overload-shed" || in["detail"] != "d" {
		t.Fatalf("incident shape wrong: %s", inLine)
	}

	rpLine, err := MarshalNDJSON(Record{Kind: RecordReport, Report: Report{
		When: when, Kind: "deadlock", Desc: "cycle", GIDs: []uint64{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	var rp map[string]any
	if err := json.Unmarshal(rpLine, &rp); err != nil {
		t.Fatal(err)
	}
	if rp["kind"] != "waitgraph-report" || rp["report"] != "deadlock" {
		t.Fatalf("report shape wrong: %s", rpLine)
	}

	trLine, err := MarshalNDJSON(Record{Kind: RecordTrial, Trial: Trial{
		When: when, Table: "tab2", Row: 1, Variant: "base", Status: "ok",
		Attempts: 2, Elapsed: time.Second, Wait: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	var tr map[string]any
	if err := json.Unmarshal(trLine, &tr); err != nil {
		t.Fatal(err)
	}
	if tr["kind"] != "trial-outcome" || tr["status"] != "ok" ||
		tr["elapsed_ns"] != float64(time.Second) || tr["wait_ns"] != float64(time.Millisecond) {
		t.Fatalf("trial shape wrong: %s", trLine)
	}
}
