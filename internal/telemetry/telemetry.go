// Package telemetry is the typed observability core of the breakpoint
// engine: one metric catalog declared once (counter/gauge/histogram
// descriptors with stable names, labels, and help text), one
// subscription bus every emission path publishes into, and one registry
// that binds the catalog to live lock-free collection.
//
// Before this package the engine's introspection was smeared across
// five ad-hoc surfaces — BPStats snapshots, per-shard event rings,
// the guard incident log, wait-graph supervisor reports, and the
// durable journal sinks — each with its own bespoke fan-out. Now there
// is exactly one flow:
//
//	emitters                     bus                    consumers
//	engine events       ─┐                        ┌─ durable journal sink (tap)
//	guard incidents     ─┼─▶  telemetry.Bus  ────┼─ NDJSON stream (subscription)
//	wait-graph reports  ─┤                        └─ registry counters (tap)
//	campaign trials     ─┘
//
//	sharded engine state ──▶ registry collectors ──▶ /metrics text
//
// The split matters: *streams* (events, incidents, reports, trials) go
// through the bus as they happen; *metrics* are pulled at scrape time
// by collectors that read the engine's existing atomic counters, so the
// trigger hot path acquires no new lock and pays one atomic pointer
// load when nobody is listening — the same price the old durable-sink
// check cost.
//
// Layering: this package imports only internal/guard and the standard
// library. internal/core imports it (Event and EventKind live here and
// are aliased back into core), so core, waitgraph, harness, and
// campaign can all publish without an import cycle. cmd/cbserverd
// serves the registry and the bus over HTTP.
package telemetry

import (
	"fmt"
	"time"

	"cbreak/internal/guard"
)

// EventKind classifies an engine event.
type EventKind int

// Engine event kinds.
const (
	// EventArrived: a goroutine called TriggerHere.
	EventArrived EventKind = iota
	// EventPostponed: the goroutine entered the postponed set.
	EventPostponed
	// EventHit: a breakpoint rendezvoused.
	EventHit
	// EventTimeout: a postponement expired without a partner.
	EventTimeout
)

// NumEventKinds is the number of engine event kinds, for consumers that
// aggregate counts across all kinds in fixed-size (lock-free) storage.
const NumEventKinds = int(EventTimeout) + 1

// String returns the event-kind label.
func (k EventKind) String() string {
	switch k {
	case EventArrived:
		return "arrived"
	case EventPostponed:
		return "postponed"
	case EventHit:
		return "hit"
	case EventTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Event is one entry of the engine's event log. It is the canonical
// engine-event shape: internal/core aliases it (core.Event) and every
// bus consumer — the durable journal sink, the NDJSON stream, the
// registry's stream counters — sees the same value the shard ring
// retained.
type Event struct {
	// Seq is the engine-wide event sequence number; it totally orders
	// events across breakpoints (When has only clock resolution).
	Seq uint64
	// When is the event timestamp.
	When time.Time
	// Kind classifies the event.
	Kind EventKind
	// Breakpoint is the breakpoint name.
	Breakpoint string
	// GID is the goroutine involved.
	GID uint64
	// First reports the breakpoint side.
	First bool
}

// String formats the event for logs.
func (ev Event) String() string {
	side := "second"
	if ev.First {
		side = "first"
	}
	return fmt.Sprintf("%s %s g%d (%s side)", ev.Breakpoint, ev.Kind, ev.GID, side)
}

// Report is the bus shape of one confirmed wait-graph finding. It is a
// deliberately flattened copy of waitgraph.Report (this package sits
// below waitgraph in the import graph), carrying what stream consumers
// and verdict counters need.
type Report struct {
	// When is the confirmation timestamp.
	When time.Time
	// Kind is the waitgraph verdict label ("deadlock" or
	// "postpone-stall").
	Kind string
	// Desc is the human-readable rendering of the finding.
	Desc string
	// Breakpoints are the breakpoint names involved (the postponement
	// edges); empty for an application-only deadlock.
	Breakpoints []string
	// GIDs are the goroutines involved.
	GIDs []uint64
	// Victim is the postponed goroutine a cycle break released (0 for
	// deadlock confirmations).
	Victim uint64
}

// Trial is the bus shape of one executed campaign/harness trial
// outcome.
type Trial struct {
	// When is the trial completion timestamp.
	When time.Time
	// Table, Row, Variant address the trial's measurement configuration
	// (harness.TrialKey).
	Table   string
	Row     int
	Variant string
	// Status is the appkit result-status label ("ok", "stall", "trial
	// timeout", ...).
	Status string
	// Attempts is how many dispatch attempts the trial cost (0 when the
	// executing layer does not track retries).
	Attempts int
	// Elapsed is the trial wall-clock time.
	Elapsed time.Duration
	// Wait is the trial's total breakpoint postponement time.
	Wait time.Duration
}

// RecordKind discriminates bus records.
type RecordKind uint8

// Bus record kinds.
const (
	// RecordEvent: an engine event (Record.Event is valid).
	RecordEvent RecordKind = iota
	// RecordIncident: a guard incident (Record.Incident is valid).
	RecordIncident
	// RecordReport: a confirmed wait-graph finding (Record.Report).
	RecordReport
	// RecordTrial: a finished campaign/harness trial (Record.Trial).
	RecordTrial
)

// NumRecordKinds is the number of bus record kinds.
const NumRecordKinds = int(RecordTrial) + 1

// String returns the record-kind label, which doubles as the "kind"
// discriminator of the NDJSON encoding (matching the durable sink's
// on-disk record kinds for events and incidents).
func (k RecordKind) String() string {
	switch k {
	case RecordEvent:
		return "engine-event"
	case RecordIncident:
		return "guard-incident"
	case RecordReport:
		return "waitgraph-report"
	case RecordTrial:
		return "trial-outcome"
	default:
		return "unknown"
	}
}

// Record is one telemetry bus message. Exactly one payload field is
// meaningful, selected by Kind; payloads are values, not pointers, so
// publishing allocates nothing.
type Record struct {
	Kind     RecordKind
	Event    Event
	Incident guard.Incident
	Report   Report
	Trial    Trial
}

// defaultBus carries process-scoped records — campaign/harness trial
// outcomes, which outlive any single trial engine. Engine-scoped
// records (events, incidents, reports) go through each engine's own
// bus.
var defaultBus = NewBus()

// Default returns the process-wide bus for records that are not tied to
// one engine (trial outcomes). Engine streams live on Engine.Bus().
func Default() *Bus { return defaultBus }
