package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/guard"
)

func TestBusPublishNoListeners(t *testing.T) {
	b := NewBus()
	// Must be a no-op, not a panic, and must not count drops.
	b.Publish(Record{Kind: RecordEvent})
	if b.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", b.Dropped())
	}
}

func TestBusTapSynchronousDelivery(t *testing.T) {
	b := NewBus()
	var got []Record
	h := b.AttachTap(tapFunc(func(r Record) { got = append(got, r) }))
	b.Publish(Record{Kind: RecordEvent, Event: Event{Seq: 1, Breakpoint: "bp"}})
	b.Publish(Record{Kind: RecordIncident, Incident: guard.Incident{Kind: guard.KindPanic}})
	if len(got) != 2 {
		t.Fatalf("tap saw %d records, want 2", len(got))
	}
	if got[0].Event.Seq != 1 || got[1].Incident.Kind != guard.KindPanic {
		t.Fatalf("tap saw wrong records: %+v", got)
	}
	h.Detach()
	b.Publish(Record{Kind: RecordEvent})
	if len(got) != 2 {
		t.Fatalf("detached tap still receiving: %d records", len(got))
	}
	h.Detach() // idempotent
}

type tapFunc func(Record)

func (f tapFunc) Deliver(r Record) { f(r) }

func TestBusSubscriptionDeliveryAndCancel(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	b.Publish(Record{Kind: RecordEvent, Event: Event{Seq: 7}})
	select {
	case r := <-s.C():
		if r.Event.Seq != 7 {
			t.Fatalf("got seq %d, want 7", r.Event.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("subscription never received the record")
	}
	s.Cancel()
	select {
	case <-s.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after Cancel")
	}
	s.Cancel() // idempotent
	b.Publish(Record{Kind: RecordEvent})
	select {
	case <-s.C():
		t.Fatal("cancelled subscription received a record")
	default:
	}
}

func TestBusSubscriptionDropsWhenFull(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(1)
	defer s.Cancel()
	b.Publish(Record{Kind: RecordEvent, Event: Event{Seq: 1}})
	b.Publish(Record{Kind: RecordEvent, Event: Event{Seq: 2}}) // buffer full → dropped
	if s.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", s.Drops())
	}
	if b.Dropped() != 1 {
		t.Fatalf("bus Dropped = %d, want 1", b.Dropped())
	}
	// The buffered record is intact — drops lose the newest, not the
	// oldest.
	r := <-s.C()
	if r.Event.Seq != 1 {
		t.Fatalf("buffered seq = %d, want 1", r.Event.Seq)
	}
}

func TestBusSubscribeMinimumBuffer(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Cancel()
	b.Publish(Record{Kind: RecordEvent})
	select {
	case <-s.C():
	default:
		t.Fatal("Subscribe(0) should still buffer one record")
	}
}

func TestBusConcurrentPublishAndChurn(t *testing.T) {
	b := NewBus()
	var tapCount atomic.Int64
	const publishers, perPublisher = 8, 500

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() { // constantly attach/detach listeners during publishing
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := b.AttachTap(tapFunc(func(Record) { tapCount.Add(1) }))
			s := b.Subscribe(2)
			h.Detach()
			s.Cancel()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(Record{Kind: RecordEvent})
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// Durability tap attached for the whole run must see every record.
	var total atomic.Int64
	h := b.AttachTap(tapFunc(func(Record) { total.Add(1) }))
	var wg2 sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(Record{Kind: RecordEvent})
			}
		}()
	}
	wg2.Wait()
	h.Detach()
	if got := total.Load(); got != publishers*perPublisher {
		t.Fatalf("stable tap saw %d records, want %d", got, publishers*perPublisher)
	}
}

func TestRecordKindLabels(t *testing.T) {
	// The NDJSON "kind" discriminators must match the durable sink's
	// on-disk record kinds for the shared kinds, and stay stable for the
	// stream-only ones.
	want := map[RecordKind]string{
		RecordEvent:    "engine-event",
		RecordIncident: "guard-incident",
		RecordReport:   "waitgraph-report",
		RecordTrial:    "trial-outcome",
	}
	for k, label := range want {
		if k.String() != label {
			t.Errorf("RecordKind(%d).String() = %q, want %q", k, k.String(), label)
		}
	}
	if NumRecordKinds != len(want) {
		t.Errorf("NumRecordKinds = %d, want %d", NumRecordKinds, len(want))
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventArrived:   "arrived",
		EventPostponed: "postponed",
		EventHit:       "hit",
		EventTimeout:   "timeout",
	}
	for k, label := range want {
		if k.String() != label {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), label)
		}
	}
	if NumEventKinds != len(want) {
		t.Errorf("NumEventKinds = %d, want %d", NumEventKinds, len(want))
	}
}
