package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the registry: the binding between the metric catalog and
// live values. Metrics are *pulled* — a collector is a closure that
// reads existing engine state (atomic counters on shards, gauge loads)
// at scrape time and emits samples, so registering telemetry costs the
// trigger hot path nothing. The only push-shaped metrics are the
// stream counters a wired bus tap maintains (records by kind, wait-graph
// verdicts, trial outcomes), and those touch one atomic or — for the
// rare record kinds — one small mutex-guarded map per record.

// Sample is one collected metric value.
type Sample struct {
	// Desc is the catalog descriptor this sample instantiates.
	Desc *Desc
	// Labels are the label values, parallel to Desc.Labels.
	Labels []string
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// Hist is the histogram payload (nil for counters and gauges).
	Hist *HistSample
}

// HistSample is one collected histogram.
type HistSample struct {
	// BucketCounts are per-bucket (non-cumulative) observation counts,
	// parallel to Desc.Buckets; observations above the last bound are in
	// Count but no bucket.
	BucketCounts []uint64
	// Sum is the sum of all observations.
	Sum float64
	// Count is the total observation count.
	Count uint64
}

// Collector emits zero or more samples when the registry gathers. It
// must be safe for concurrent use and must not block on engine locks —
// read atomics and snapshots, never arrival paths.
type Collector func(emit func(Sample))

// Registry gathers samples from registered collectors and renders them.
// The zero value is not usable; create registries with NewRegistry. All
// methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterCollector adds a collector. Collectors run in registration
// order at every Gather.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Gather runs every collector and returns the combined samples.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	var out []Sample
	for _, c := range cs {
		c(func(s Sample) { out = append(out, s) })
	}
	return out
}

// CounterVec is a labeled counter family for *rare* increments
// (wait-graph verdicts, trial outcomes): a mutex-guarded map keyed by
// the joined label values. It is not for hot-path counting — hot counts
// live in the engine's own atomics and are collected at scrape time.
type CounterVec struct {
	desc *Desc
	mu   sync.Mutex
	m    map[string]*vecEntry
}

type vecEntry struct {
	labels []string
	n      int64
}

// NewCounterVec returns an empty counter family for desc.
func NewCounterVec(desc *Desc) *CounterVec {
	return &CounterVec{desc: desc, m: make(map[string]*vecEntry)}
}

// Add increments the series addressed by the label values (which must
// match desc.Labels in number and order).
func (v *CounterVec) Add(delta int64, labelValues ...string) {
	key := joinKey(labelValues)
	v.mu.Lock()
	e := v.m[key]
	if e == nil {
		e = &vecEntry{labels: append([]string(nil), labelValues...)}
		v.m[key] = e
	}
	e.n += delta
	v.mu.Unlock()
}

// Collect emits one sample per series, in stable (sorted-key) order.
func (v *CounterVec) Collect(emit func(Sample)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	samples := make([]Sample, 0, len(keys))
	for _, k := range keys {
		e := v.m[k]
		samples = append(samples, Sample{Desc: v.desc, Labels: e.labels, Value: float64(e.n)})
	}
	v.mu.Unlock()
	for _, s := range samples {
		emit(s)
	}
}

// joinKey builds a collision-free map key from label values (0x1f does
// not occur in the engine's label vocabulary, and a collision would only
// merge two counter series anyway).
func joinKey(vals []string) string {
	switch len(vals) {
	case 0:
		return ""
	case 1:
		return vals[0]
	}
	n := len(vals) - 1
	for _, v := range vals {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range vals {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// busTap is the counting tap WireBus attaches: per-kind record totals in
// a fixed atomic array (events and incidents arrive at engine rate), and
// label-fanned families for the rare kinds.
type busTap struct {
	counts  [NumRecordKinds]atomic.Int64
	reports *CounterVec
	trials  *CounterVec
}

// Deliver implements Tap.
func (t *busTap) Deliver(rec Record) {
	if k := int(rec.Kind); k >= 0 && k < NumRecordKinds {
		t.counts[k].Add(1)
	}
	switch rec.Kind {
	case RecordReport:
		t.reports.Add(1, rec.Report.Kind)
	case RecordTrial:
		t.trials.Add(1, rec.Trial.Table, rec.Trial.Variant, rec.Trial.Status)
	}
}

// WireBus attaches a counting tap to the bus and registers the
// stream-derived collectors on the registry: records by kind
// (cbreak_bus_records_total), wait-graph verdicts
// (cbreak_waitgraph_reports_total), trial outcomes (cbreak_trials_total),
// and the bus's drop counter labeled with name
// (cbreak_bus_dropped_total). It returns the tap handle so a consumer
// that outlives the bus can detach.
func (r *Registry) WireBus(name string, bus *Bus) *TapHandle {
	t := &busTap{
		reports: NewCounterVec(DescWaitgraphReports),
		trials:  NewCounterVec(DescTrials),
	}
	h := bus.AttachTap(t)
	r.RegisterCollector(func(emit func(Sample)) {
		for k := 0; k < NumRecordKinds; k++ {
			emit(Sample{Desc: DescBusRecords,
				Labels: []string{RecordKind(k).String()},
				Value:  float64(t.counts[k].Load())})
		}
		t.reports.Collect(emit)
		t.trials.Collect(emit)
		emit(Sample{Desc: DescBusDropped, Labels: []string{name},
			Value: float64(bus.Dropped())})
	})
	return h
}
