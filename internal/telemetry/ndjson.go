package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// This file is the NDJSON wire encoding of bus records: one JSON object
// per line, discriminated by "kind". For events and incidents the
// object shape is byte-compatible with internal/journal/sink's journaled
// EventRecord/IncidentRecord (same kinds, same field names), so a
// consumer of the live stream and a consumer of a replayed post-mortem
// journal parse the same records. The shapes are duplicated rather than
// imported because sink sits above core (and therefore above this
// package) in the import graph; sink's tests pin the compatibility.

// EventJSON is the NDJSON shape of an engine-event record.
type EventJSON struct {
	Kind       string    `json:"kind"` // "engine-event"
	Seq        uint64    `json:"seq"`
	When       time.Time `json:"when"`
	Event      string    `json:"event"` // arrived|postponed|hit|timeout
	Breakpoint string    `json:"breakpoint"`
	GID        uint64    `json:"gid"`
	First      bool      `json:"first"`
}

// IncidentJSON is the NDJSON shape of a guard-incident record.
type IncidentJSON struct {
	Kind       string    `json:"kind"` // "guard-incident"
	When       time.Time `json:"when"`
	Incident   string    `json:"incident"` // guard.IncidentKind label
	Breakpoint string    `json:"breakpoint"`
	GID        uint64    `json:"gid"`
	Detail     string    `json:"detail,omitempty"`
}

// ReportJSON is the NDJSON shape of a wait-graph-report record.
type ReportJSON struct {
	Kind        string    `json:"kind"` // "waitgraph-report"
	When        time.Time `json:"when"`
	Report      string    `json:"report"` // deadlock|postpone-stall
	Desc        string    `json:"desc"`
	Breakpoints []string  `json:"breakpoints,omitempty"`
	GIDs        []uint64  `json:"gids,omitempty"`
	Victim      uint64    `json:"victim,omitempty"`
}

// TrialJSON is the NDJSON shape of a trial-outcome record.
type TrialJSON struct {
	Kind      string    `json:"kind"` // "trial-outcome"
	When      time.Time `json:"when"`
	Table     string    `json:"table"`
	Row       int       `json:"row"`
	Variant   string    `json:"variant"`
	Status    string    `json:"status"`
	Attempts  int       `json:"attempts,omitempty"`
	ElapsedNS int64     `json:"elapsed_ns"`
	WaitNS    int64     `json:"wait_ns"`
}

// MarshalNDJSON returns the record's NDJSON object (no trailing
// newline).
func MarshalNDJSON(rec Record) ([]byte, error) {
	var v any
	switch rec.Kind {
	case RecordEvent:
		ev := rec.Event
		v = EventJSON{
			Kind: rec.Kind.String(), Seq: ev.Seq, When: ev.When,
			Event: ev.Kind.String(), Breakpoint: ev.Breakpoint,
			GID: ev.GID, First: ev.First,
		}
	case RecordIncident:
		in := rec.Incident
		v = IncidentJSON{
			Kind: rec.Kind.String(), When: in.When, Incident: in.Kind.String(),
			Breakpoint: in.Breakpoint, GID: in.GID, Detail: in.Detail,
		}
	case RecordReport:
		rp := rec.Report
		v = ReportJSON{
			Kind: rec.Kind.String(), When: rp.When, Report: rp.Kind,
			Desc: rp.Desc, Breakpoints: rp.Breakpoints, GIDs: rp.GIDs,
			Victim: rp.Victim,
		}
	case RecordTrial:
		tr := rec.Trial
		v = TrialJSON{
			Kind: rec.Kind.String(), When: tr.When, Table: tr.Table,
			Row: tr.Row, Variant: tr.Variant, Status: tr.Status,
			Attempts: tr.Attempts, ElapsedNS: int64(tr.Elapsed),
			WaitNS: int64(tr.Wait),
		}
	default:
		v = struct {
			Kind string `json:"kind"`
		}{Kind: rec.Kind.String()}
	}
	return json.Marshal(v)
}

// WriteNDJSON writes the record as one NDJSON line (object plus
// newline).
func WriteNDJSON(w io.Writer, rec Record) error {
	b, err := MarshalNDJSON(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
