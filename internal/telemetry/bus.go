package telemetry

import (
	"sync"
	"sync/atomic"
)

// This file is the subscription bus: the single fan-out every telemetry
// emission path publishes into. It replaces three bespoke fan-outs that
// had accreted on the engine (the durable-sink atomic pointer, the
// incident log's direct tee, the wait-graph supervisor's OnReport-only
// reporting) with one primitive offering two delivery modes:
//
//   - Taps are synchronous: Deliver runs on the publishing goroutine,
//     exactly like the old DurableSink contract, so a crash-safe
//     journal tap loses nothing a crash would not have lost anyway.
//     Taps must be fast and must never call back into the publisher.
//   - Subscriptions are asynchronous: a bounded channel the publisher
//     never blocks on. A full subscriber drops the record and the drop
//     is counted — a slow NDJSON client can never stall a breakpoint
//     arrival.
//
// Publish with no listeners is one atomic load and a nil check, which
// is what keeps the bus on the trigger hot path: it costs exactly what
// the old "is a durable sink installed" check cost.

// Tap receives records synchronously on the publishing goroutine.
type Tap interface {
	Deliver(Record)
}

// listenerSet is the immutable listener snapshot Publish iterates.
// Attach/Subscribe/detach build a new set and swap it in (copy on
// write), so Publish never takes the mutex.
type listenerSet struct {
	taps []tapEntry
	subs []*Subscription
}

type tapEntry struct {
	id  uint64
	tap Tap
}

// Bus is a lock-free-publish, copy-on-write-subscribe fan-out of
// telemetry records. The zero value is not usable; create buses with
// NewBus. All methods are safe for concurrent use.
type Bus struct {
	set     atomic.Pointer[listenerSet]
	mu      sync.Mutex // serializes listener-set rewrites only
	nextID  atomic.Uint64
	dropped atomic.Int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Publish delivers rec to every attached tap (synchronously) and every
// subscription (non-blocking; a full subscriber drops the record). With
// no listeners it is a single atomic load.
func (b *Bus) Publish(rec Record) {
	set := b.set.Load()
	if set == nil {
		return
	}
	for _, t := range set.taps {
		t.tap.Deliver(rec)
	}
	for _, s := range set.subs {
		select {
		case s.ch <- rec:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Dropped returns how many records were dropped across all of the bus's
// subscriptions (monotonic; taps never drop).
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// rewrite swaps in a listener set derived from the current one. Caller
// must hold b.mu.
func (b *Bus) rewriteLocked(f func(old *listenerSet) *listenerSet) {
	old := b.set.Load()
	if old == nil {
		old = &listenerSet{}
	}
	next := f(old)
	if len(next.taps) == 0 && len(next.subs) == 0 {
		b.set.Store(nil)
		return
	}
	b.set.Store(next)
}

// TapHandle identifies one attached tap for detachment.
type TapHandle struct {
	b  *Bus
	id uint64
}

// AttachTap attaches a synchronous tap and returns its handle. The tap
// runs on every publishing goroutine; it must be fast and must never
// call back into the publisher.
func (b *Bus) AttachTap(t Tap) *TapHandle {
	h := &TapHandle{b: b, id: b.nextID.Add(1)}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rewriteLocked(func(old *listenerSet) *listenerSet {
		next := &listenerSet{subs: old.subs}
		next.taps = append(append([]tapEntry(nil), old.taps...), tapEntry{id: h.id, tap: t})
		return next
	})
	return h
}

// Detach removes the tap. Idempotent; records being published
// concurrently with the detach may still be delivered once more.
func (h *TapHandle) Detach() {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	h.b.rewriteLocked(func(old *listenerSet) *listenerSet {
		next := &listenerSet{subs: old.subs}
		for _, t := range old.taps {
			if t.id != h.id {
				next.taps = append(next.taps, t)
			}
		}
		return next
	})
}

// Subscription is one asynchronous bus listener: a bounded channel of
// records plus a drop counter. Consume from C, checking Done to observe
// cancellation; the record channel is never closed (a publisher racing
// a Cancel may still complete a buffered send), so ranging over C alone
// would never terminate.
type Subscription struct {
	b     *Bus
	id    uint64
	ch    chan Record
	done  chan struct{}
	once  sync.Once
	drops atomic.Int64
}

// Subscribe attaches an asynchronous listener with the given channel
// capacity (minimum 1). Cancel it to detach.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{b: b, id: b.nextID.Add(1),
		ch: make(chan Record, buf), done: make(chan struct{})}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rewriteLocked(func(old *listenerSet) *listenerSet {
		next := &listenerSet{taps: old.taps}
		next.subs = append(append([]*Subscription(nil), old.subs...), s)
		return next
	})
	return s
}

// C returns the record channel. It is never closed; select against
// Done.
func (s *Subscription) C() <-chan Record { return s.ch }

// Done returns a channel closed when the subscription is cancelled.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Drops returns how many records this subscription missed because its
// channel was full.
func (s *Subscription) Drops() int64 { return s.drops.Load() }

// Cancel detaches the subscription. Idempotent. Records already
// buffered remain readable from C.
func (s *Subscription) Cancel() {
	s.once.Do(func() { close(s.done) })
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	s.b.rewriteLocked(func(old *listenerSet) *listenerSet {
		next := &listenerSet{taps: old.taps}
		for _, sub := range old.subs {
			if sub != s {
				next.subs = append(next.subs, sub)
			}
		}
		return next
	})
}
