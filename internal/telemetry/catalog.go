package telemetry

// This file is the metric catalog: every metric the system exports,
// declared exactly once as a typed descriptor — stable name, kind
// (counter/gauge/histogram), label names, help text, and (for
// histograms) bucket bounds. The shape follows the ops-agent mysql
// receiver's typed metric declarations (SNIPPETS §2): consumers — the
// Prometheus renderer, the docs catalog table, scrape assertions in CI
// — all derive from these descriptors, so a metric cannot drift between
// its producer, its exporter, and its documentation.
//
// Naming: everything is prefixed cbreak_. Per-breakpoint series carry a
// "breakpoint" label rather than a name suffix, so one descriptor
// covers every shard.

// MetricKind is a metric's type.
type MetricKind uint8

// Metric kinds.
const (
	// Counter is a monotonically increasing cumulative count.
	Counter MetricKind = iota
	// Gauge is a point-in-time value that can go up and down.
	Gauge
	// HistogramKind is a bucketed distribution with a sum and count.
	HistogramKind
)

// String returns the Prometheus TYPE label for the kind.
func (k MetricKind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramKind:
		return "histogram"
	default:
		return "untyped"
	}
}

// Desc is one typed metric declaration.
type Desc struct {
	// Name is the stable exported metric name (Prometheus conventions:
	// snake_case, _total suffix on counters, base units in the name).
	Name string
	// Help is the one-line help text.
	Help string
	// Kind is the metric type.
	Kind MetricKind
	// Labels are the label names every sample of this metric carries,
	// in order.
	Labels []string
	// Buckets are the histogram upper bounds in ascending order
	// (exclusive of the implicit +Inf bucket); nil for non-histograms.
	Buckets []float64
}

// WaitBuckets are the postponement-wait histogram bounds in seconds:
// exponential-ish from 100µs (a short OrderWindow-scale wait) to 2.5s
// (far past any sane pause time T), chosen so the paper's default
// T=100ms lands mid-range.
var WaitBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// NumWaitBuckets is len(WaitBuckets) as a constant, so producers (the
// engine's per-breakpoint stats) can count observations in fixed-size
// atomic arrays. A test pins the two in sync.
const NumWaitBuckets = 14

// The catalog. Declared once; collected by internal/core's engine
// collectors, the wait-graph supervisor, and the registry's bus-fed
// stream counters; rendered by Registry.WritePrometheus.
var (
	// Engine-wide state.

	DescEngineEnabled = &Desc{
		Name: "cbreak_engine_enabled", Kind: Gauge,
		Help: "Whether the breakpoint engine is enabled (1) or disabled (0).",
	}
	DescPostponedWaiters = &Desc{
		Name: "cbreak_postponed_waiters", Kind: Gauge,
		Help: "Goroutines currently postponed across all breakpoints (two-way and multi-way).",
	}
	DescOverloadHighWater = &Desc{
		Name: "cbreak_overload_global_high_water", Kind: Gauge,
		Help: "Configured global postponed-population high-water mark above which arrivals are shed (0 = unbounded).",
	}
	DescOverloadSoftWater = &Desc{
		Name: "cbreak_overload_soft_water", Kind: Gauge,
		Help: "Configured postponed population where adaptive budget shrinking begins (0 = high water / 2).",
	}
	DescOverloadMaxPerShard = &Desc{
		Name: "cbreak_overload_max_per_shard", Kind: Gauge,
		Help: "Configured per-breakpoint postponed-population cap (0 = unbounded).",
	}

	// Per-breakpoint series (BPStats).

	DescBPEnabled = &Desc{
		Name: "cbreak_bp_enabled", Kind: Gauge, Labels: []string{"breakpoint"},
		Help: "Whether the breakpoint is individually enabled (1) or administratively disabled (0).",
	}
	DescBPArrivals = &Desc{
		Name: "cbreak_bp_arrivals_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "TriggerHere arrivals on both sides of the breakpoint.",
	}
	DescBPLocalFalses = &Desc{
		Name: "cbreak_bp_local_falses_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Arrivals rejected by the local predicate (or its refinements).",
	}
	DescBPPostpones = &Desc{
		Name: "cbreak_bp_postpones_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Arrivals postponed into the waiting set.",
	}
	DescBPTimeouts = &Desc{
		Name: "cbreak_bp_timeouts_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Postponements that expired without a partner.",
	}
	DescBPHits = &Desc{
		Name: "cbreak_bp_hits_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Breakpoint hits (both sides arrived, predicates held, ordering enforced).",
	}
	DescBPPanics = &Desc{
		Name: "cbreak_bp_panics_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "User-closure panics absorbed by the hardening layer at this breakpoint.",
	}
	DescBPSheds = &Desc{
		Name: "cbreak_bp_sheds_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Arrivals passed straight through by an open circuit breaker or the overload layer.",
	}
	DescBPBreakerTrips = &Desc{
		Name: "cbreak_bp_breaker_trips_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Circuit-breaker opens at this breakpoint (initial trips and failed-probe re-opens).",
	}
	DescBPBreakerRearms = &Desc{
		Name: "cbreak_bp_breaker_rearms_total", Kind: Counter, Labels: []string{"breakpoint"},
		Help: "Successful half-open probes that closed the breaker again.",
	}
	DescBPBreakerState = &Desc{
		Name: "cbreak_bp_breaker_state", Kind: Gauge, Labels: []string{"breakpoint"},
		Help: "Circuit-breaker state: 0 closed, 1 open, 2 half-open. Absent when breakers are disabled.",
	}
	DescBPWait = &Desc{
		Name: "cbreak_bp_wait_seconds", Kind: HistogramKind, Labels: []string{"breakpoint"},
		Help:    "Distribution of time goroutines spent postponed at this breakpoint (the paper's runtime-overhead contribution).",
		Buckets: WaitBuckets,
	}
	DescBPMaxWait = &Desc{
		Name: "cbreak_bp_max_wait_seconds", Kind: Gauge, Labels: []string{"breakpoint"},
		Help: "Longest single postponement observed at this breakpoint.",
	}
	DescBPLastHit = &Desc{
		Name: "cbreak_bp_last_hit_timestamp_seconds", Kind: Gauge, Labels: []string{"breakpoint"},
		Help: "Unix time of the breakpoint's most recent hit (absent until first hit).",
	}

	// Hardening and supervision.

	DescIncidents = &Desc{
		Name: "cbreak_incidents_total", Kind: Counter, Labels: []string{"kind"},
		Help: "Guard incidents by kind (panic, stall, watchdog-release, breaker transitions, cycle-break, deadlock-confirmed, overload-shed, net-fault-injected); monotonic even after the retained ring wraps.",
	}
	DescWaitgraphReports = &Desc{
		Name: "cbreak_waitgraph_reports_total", Kind: Counter, Labels: []string{"kind"},
		Help: "Confirmed wait-graph findings by verdict kind (deadlock, postpone-stall), counted off the telemetry bus.",
	}
	DescWaitgraphScans = &Desc{
		Name: "cbreak_waitgraph_scans_total", Kind: Counter,
		Help: "Wait-graph supervisor scans executed.",
	}

	// Self-healing app supervision (appboot hosted servers).

	DescAppState = &Desc{
		Name: "cbreak_supervisor_app_state", Kind: Gauge, Labels: []string{"app"},
		Help: "Hosted app supervisor state: 0 up, 1 restarting, 2 quarantined, 3 stopped.",
	}
	DescAppRestarts = &Desc{
		Name: "cbreak_supervisor_restarts_total", Kind: Counter, Labels: []string{"app"},
		Help: "Times the supervisor relaunched a hosted app after a crash or failed health probes.",
	}
	DescAppCrashes = &Desc{
		Name: "cbreak_supervisor_crashes_total", Kind: Counter, Labels: []string{"app"},
		Help: "Hosted app instance deaths observed by the supervisor (process exits and probe-declared wedges).",
	}
	DescAppQuarantines = &Desc{
		Name: "cbreak_supervisor_quarantines_total", Kind: Counter, Labels: []string{"app"},
		Help: "Crash-looping hosted apps degraded to the quarantined state instead of being restarted again.",
	}
	DescAppProbeFailures = &Desc{
		Name: "cbreak_supervisor_probe_failures_total", Kind: Counter, Labels: []string{"app"},
		Help: "Failed health probes against hosted apps (timeouts and refused dials).",
	}

	// Campaign trials and the bus itself.

	DescTrials = &Desc{
		Name: "cbreak_trials_total", Kind: Counter, Labels: []string{"table", "variant", "status"},
		Help: "Campaign/harness trial outcomes by measurement table, variant, and result status, counted off the telemetry bus.",
	}
	DescBusRecords = &Desc{
		Name: "cbreak_bus_records_total", Kind: Counter, Labels: []string{"kind"},
		Help: "Records observed on wired telemetry buses by record kind, since the registry attached.",
	}
	DescBusDropped = &Desc{
		Name: "cbreak_bus_dropped_total", Kind: Counter, Labels: []string{"bus"},
		Help: "Records dropped by slow asynchronous bus subscribers (taps never drop).",
	}
)

// Catalog returns every metric descriptor, in the stable documentation
// and rendering order.
func Catalog() []*Desc {
	return []*Desc{
		DescEngineEnabled, DescPostponedWaiters,
		DescOverloadHighWater, DescOverloadSoftWater, DescOverloadMaxPerShard,
		DescBPEnabled, DescBPArrivals, DescBPLocalFalses, DescBPPostpones,
		DescBPTimeouts, DescBPHits, DescBPPanics, DescBPSheds,
		DescBPBreakerTrips, DescBPBreakerRearms, DescBPBreakerState,
		DescBPWait, DescBPMaxWait, DescBPLastHit,
		DescIncidents, DescWaitgraphReports, DescWaitgraphScans,
		DescAppState, DescAppRestarts, DescAppCrashes,
		DescAppQuarantines, DescAppProbeFailures,
		DescTrials, DescBusRecords, DescBusDropped,
	}
}
