package netchaos

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/apps/appkit"
)

// ClientConfig parameterizes a load-generator client. The timeout
// hierarchy is AttemptTimeout ≤ RequestTimeout: each attempt (dial +
// write + read) is bounded, the request including retries and backoff
// is bounded above it, and the caller typically runs the whole load
// under the trial deadline bounding everything.
type ClientConfig struct {
	// Addr is the server (or chaos proxy) address to dial.
	Addr string
	// Seed drives the retry backoff jitter; derive per-client seeds
	// with appkit.DeriveSeed so a seeded load replays its retry timing.
	Seed int64
	// Attempts is the per-request attempt cap (default 4: one try plus
	// three retries).
	Attempts int
	// RetryBudget caps retries across the client's lifetime; once
	// exhausted, requests fail fast on their first error instead of
	// amplifying an outage with retry storms. 0 = unlimited.
	RetryBudget int
	// AttemptTimeout bounds one dial+roundtrip (default 1s).
	AttemptTimeout time.Duration
	// RequestTimeout bounds one request including retries and backoff
	// (default 10s).
	RequestTimeout time.Duration
	// Backoff is the base retry delay, doubled per attempt and jittered
	// to [d/2, d] from the seeded stream (default 5ms).
	Backoff time.Duration
	// MaxBackoff caps backoff growth (default 250ms).
	MaxBackoff time.Duration
}

func (cfg *ClientConfig) defaults() {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 250 * time.Millisecond
	}
}

// ClientStats are a client's monotonic counters.
type ClientStats struct {
	// Requests is how many requests Do was asked to perform.
	Requests int64
	// OK counts requests that received a response line.
	OK int64
	// Retries counts re-attempts after transport errors.
	Retries int64
	// Failed counts requests that exhausted attempts, budget, or the
	// request timeout without a response.
	Failed int64
	// BudgetDenied counts retries suppressed by an exhausted budget.
	BudgetDenied int64
}

// Client is a line-protocol load client with seeded jittered
// exponential-backoff retries. Safe for concurrent use; concurrent
// requests draw from one jitter stream and one retry budget.
type Client struct {
	cfg    ClientConfig
	stream *appkit.Stream
	budget atomic.Int64

	requests, ok, retries, failed, denied atomic.Int64
}

// NewClient returns a client for cfg.
func NewClient(cfg ClientConfig) *Client {
	cfg.defaults()
	c := &Client{cfg: cfg, stream: appkit.NewStream(cfg.Seed)}
	if cfg.RetryBudget > 0 {
		c.budget.Store(int64(cfg.RetryBudget))
	} else {
		c.budget.Store(int64(^uint64(0) >> 2)) // effectively unlimited
	}
	return c
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:     c.requests.Load(),
		OK:           c.ok.Load(),
		Retries:      c.retries.Load(),
		Failed:       c.failed.Load(),
		BudgetDenied: c.denied.Load(),
	}
}

// Do sends one request line and returns the one response line, retrying
// transport failures with jittered exponential backoff inside the
// request timeout and the client's retry budget. An error means the
// transport never delivered a response — infrastructure, not an
// application verdict.
func (c *Client) Do(line string) (string, error) {
	c.requests.Add(1)
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt - 1)
			if time.Now().Add(delay).After(deadline) {
				lastErr = fmt.Errorf("request timeout during backoff: %w", lastErr)
				break
			}
			time.Sleep(delay)
		}
		resp, err := c.roundTrip(line, deadline)
		if err == nil {
			c.ok.Add(1)
			return resp, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			break
		}
		if attempt+1 < c.cfg.Attempts {
			// Spend one unit of retry budget; when the budget is dry the
			// client degrades gracefully: fail fast, no retry storm.
			if c.budget.Add(-1) < 0 {
				c.budget.Add(1)
				c.denied.Add(1)
				break
			}
			c.retries.Add(1)
		}
	}
	c.failed.Add(1)
	return "", fmt.Errorf("netchaos client: request failed: %w", lastErr)
}

// roundTrip performs one attempt: dial, send the line, read one line.
func (c *Client) roundTrip(line string, reqDeadline time.Time) (string, error) {
	attemptDeadline := time.Now().Add(c.cfg.AttemptTimeout)
	if attemptDeadline.After(reqDeadline) {
		attemptDeadline = reqDeadline
	}
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, time.Until(attemptDeadline))
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetDeadline(attemptDeadline); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

// backoff returns the jittered exponential delay for the given 0-based
// retry ordinal, drawn from the client's seeded stream.
func (c *Client) backoff(retry int) time.Duration {
	d := c.cfg.Backoff << uint(retry)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	return half + c.stream.Duration(half+1)
}

// LoadConfig parameterizes RunLoad: Clients concurrent clients, each
// performing Requests sequential requests built by MakeRequest.
type LoadConfig struct {
	// Addr is the address every client dials (typically a chaos proxy).
	Addr string
	// Seed derives each client's retry-jitter seed (appkit.DeriveSeed).
	Seed int64
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// Requests is the number of sequential requests per client
	// (default 4).
	Requests int
	// MakeRequest builds the request line for (client, request)
	// ordinals; nil sends "ping c r".
	MakeRequest func(client, request int) string
	// OnResponse, when non-nil, observes every successful response.
	OnResponse func(client int, resp string)
	// Client is the per-client configuration template (Addr and Seed
	// are overridden per client).
	Client ClientConfig
}

// LoadReport aggregates one RunLoad execution.
type LoadReport struct {
	// Clients and Requests echo the effective load shape.
	Clients, Requests int
	// Stats sums every client's counters.
	Stats ClientStats
	// Elapsed is the wall-clock span of the whole load.
	Elapsed time.Duration
}

// Degraded reports whether any request failed permanently — the load
// survived only by shedding work (graceful degradation) rather than
// completing it.
func (r LoadReport) Degraded() bool { return r.Stats.Failed > 0 }

// String formats the report for driver output.
func (r LoadReport) String() string {
	return fmt.Sprintf("%d clients × %d requests: ok=%d failed=%d retries=%d budget-denied=%d (%.2fs)",
		r.Clients, r.Requests, r.Stats.OK, r.Stats.Failed, r.Stats.Retries, r.Stats.BudgetDenied,
		r.Elapsed.Seconds())
}

// RunLoad drives Clients concurrent clients through Addr and aggregates
// their counters. Each client's retry jitter descends from
// DeriveSeed(Seed, client), so a seeded load replays its retry timing
// client-for-client.
func RunLoad(cfg LoadConfig) LoadReport {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 4
	}
	if cfg.MakeRequest == nil {
		cfg.MakeRequest = func(client, request int) string {
			return fmt.Sprintf("ping %d %d", client, request)
		}
	}
	start := time.Now()
	clients := make([]*Client, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		ccfg := cfg.Client
		ccfg.Addr = cfg.Addr
		ccfg.Seed = appkit.DeriveSeed(cfg.Seed, int64(i))
		clients[i] = NewClient(ccfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < cfg.Requests; r++ {
				resp, err := clients[i].Do(cfg.MakeRequest(i, r))
				if err == nil && cfg.OnResponse != nil {
					cfg.OnResponse(i, resp)
				}
			}
		}(i)
	}
	wg.Wait()
	rep := LoadReport{Clients: cfg.Clients, Requests: cfg.Requests, Elapsed: time.Since(start)}
	for _, c := range clients {
		st := c.Stats()
		rep.Stats.Requests += st.Requests
		rep.Stats.OK += st.OK
		rep.Stats.Retries += st.Retries
		rep.Stats.Failed += st.Failed
		rep.Stats.BudgetDenied += st.BudgetDenied
	}
	return rep
}
