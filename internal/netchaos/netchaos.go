// Package netchaos is the network chaos layer: a deterministic,
// seed-driven fault-injecting TCP proxy (proxy.go) and a load-generator
// client library with jittered exponential-backoff retries (client.go).
//
// The paper's guarantee is that concurrent breakpoints make Heisenbugs
// reproducible without ever deadlocking the program under test. That
// guarantee has to survive transports that are actively hostile: real
// deployments see latency spikes, connection resets, truncated writes,
// half-open drops, partitions, throttled links, and slow-loris clients.
// This package produces exactly those faults — but on a schedule that is
// a pure function of a seed, so a chaos run replays byte-identically
// under the same -seed and a fault observed once can be observed again.
//
// Determinism model: the schedule assigns every proxied connection an
// ordinal in accept order, and the ordinal's fault plan (Schedule.
// PlanFor) is derived from appkit.DeriveSeed(seed, ordinal) with a fixed
// draw order. Which goroutine's connection receives which ordinal still
// depends on scheduling — that is the nondeterminism under test — but
// the schedule itself (what faults ordinal N suffers, at which byte
// offsets, with which delays) is identical run-to-run. The determinism
// test pins Schedule.Describe to be byte-identical across instances
// built from the same seed.
//
// Blame localization: every injected fault is reported through
// Config.OnFault; integrations record it as a guard incident of kind
// net-fault-injected (guard.KindNetFault), keeping infrastructure noise
// cleanly separated from the application outcomes the campaign tables
// report — a transport reset must classify as infra-and-retry, never as
// the bug under reproduction.
package netchaos

import (
	"fmt"
	"strings"
	"time"

	"cbreak/internal/apps/appkit"
)

// FaultKind enumerates the injected network fault families.
type FaultKind int

// The fault families, in the order the schedule draws them.
const (
	// FaultLatency: fixed-plus-jittered delay before forwarded chunks.
	FaultLatency FaultKind = iota
	// FaultReset: the connection is closed abruptly (RST via zero
	// linger) after a scheduled number of forwarded bytes.
	FaultReset
	// FaultTruncate: the in-flight chunk is cut at a scheduled byte
	// offset and the connection closed cleanly — the peer sees a short,
	// syntactically torn message.
	FaultTruncate
	// FaultHalfOpen: the client→server direction silently stops
	// forwarding after a scheduled offset while both sockets stay open,
	// so the peer waits on a connection that will never deliver.
	FaultHalfOpen
	// FaultPartition: a full partition window — existing connections
	// are dropped and connections whose ordinals fall inside the window
	// are severed immediately after accept.
	FaultPartition
	// FaultThrottle: a bandwidth cap (bytes/second) on forwarded data.
	FaultThrottle
	// FaultSlowLoris: the connection trickles — tiny chunks with a
	// per-chunk delay — modelling a slow-loris peer.
	FaultSlowLoris

	faultKindCount
)

// String returns the fault-kind label used in incident details.
func (k FaultKind) String() string {
	switch k {
	case FaultLatency:
		return "latency"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultHalfOpen:
		return "half-open"
	case FaultPartition:
		return "partition"
	case FaultThrottle:
		return "throttle"
	case FaultSlowLoris:
		return "slow-loris"
	default:
		return "unknown"
	}
}

// Kinds returns every fault kind, in schedule draw order.
func Kinds() []FaultKind {
	out := make([]FaultKind, faultKindCount)
	for i := range out {
		out[i] = FaultKind(i)
	}
	return out
}

// Faults selects which fault families a schedule draws from and how
// often. Rates are per-connection selection probabilities in [0, 1],
// resolved deterministically from the seed; zero-valued fields disable
// their family.
type Faults struct {
	// Latency is the base delay injected before each forwarded chunk of
	// every connection (0 disables latency injection).
	Latency time.Duration
	// LatencyJitter bounds the extra per-connection delay drawn on top
	// of Latency (defaults to Latency when latency injection is on).
	LatencyJitter time.Duration

	// ResetRate selects connections that are abruptly reset mid-stream.
	ResetRate float64
	// TruncateRate selects connections whose stream is cut mid-chunk.
	TruncateRate float64
	// HalfOpenRate selects connections that go half-open: the
	// client→server direction silently stops delivering.
	HalfOpenRate float64
	// ThrottleRate selects connections that are bandwidth-capped.
	ThrottleRate float64
	// ThrottleBps is the cap for throttled connections in bytes/second
	// (default 2048).
	ThrottleBps int
	// SlowLorisRate selects connections that trickle tiny chunks.
	SlowLorisRate float64

	// PartitionAt begins a full partition at that 1-based connection
	// ordinal (0 = never): all live connections are dropped and the
	// next PartitionFor ordinals are severed on accept.
	PartitionAt int
	// PartitionFor is the width of the partition window in connection
	// ordinals (default 8 when PartitionAt > 0).
	PartitionFor int
}

// partitionWidth returns the effective partition window width.
func (f Faults) partitionWidth() int {
	if f.PartitionAt <= 0 {
		return 0
	}
	if f.PartitionFor <= 0 {
		return 8
	}
	return f.PartitionFor
}

// throttleBps returns the effective throttle cap.
func (f Faults) throttleBps() int {
	if f.ThrottleBps <= 0 {
		return 2048
	}
	return f.ThrottleBps
}

// ConnPlan is the resolved fault plan of one proxied connection: a pure
// function of (schedule seed, connection ordinal). Byte offsets count
// forwarded payload bytes across both directions.
type ConnPlan struct {
	// Conn is the 1-based connection ordinal in accept order.
	Conn int
	// Latency is the per-chunk injected delay (0 = none).
	Latency time.Duration
	// ResetAfter is the forwarded-byte offset at which the connection
	// is reset (-1 = never).
	ResetAfter int64
	// TruncateAfter is the forwarded-byte offset at which the stream is
	// cut (-1 = never).
	TruncateAfter int64
	// HalfOpenAfter is the forwarded-byte offset after which the
	// client→server direction silently drops (-1 = never).
	HalfOpenAfter int64
	// ThrottleBps caps forwarding bandwidth (0 = unlimited).
	ThrottleBps int
	// SlowChunk bounds bytes per forwarded write (0 = unlimited) and
	// SlowDelay is the pause between those trickled writes.
	SlowChunk int
	SlowDelay time.Duration
	// Partitioned marks an ordinal inside the partition window: the
	// connection is severed immediately after accept.
	Partitioned bool
}

// Faulty reports whether the plan injects any fault at all.
func (pl ConnPlan) Faulty() bool {
	return pl.Latency > 0 || pl.ResetAfter >= 0 || pl.TruncateAfter >= 0 ||
		pl.HalfOpenAfter >= 0 || pl.ThrottleBps > 0 || pl.SlowChunk > 0 || pl.Partitioned
}

// String renders the plan compactly (the unit of Schedule.Describe).
func (pl ConnPlan) String() string {
	var parts []string
	if pl.Partitioned {
		parts = append(parts, "partitioned")
	}
	if pl.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s", pl.Latency))
	}
	if pl.ResetAfter >= 0 {
		parts = append(parts, fmt.Sprintf("reset@%d", pl.ResetAfter))
	}
	if pl.TruncateAfter >= 0 {
		parts = append(parts, fmt.Sprintf("truncate@%d", pl.TruncateAfter))
	}
	if pl.HalfOpenAfter >= 0 {
		parts = append(parts, fmt.Sprintf("half-open@%d", pl.HalfOpenAfter))
	}
	if pl.ThrottleBps > 0 {
		parts = append(parts, fmt.Sprintf("throttle=%dBps", pl.ThrottleBps))
	}
	if pl.SlowChunk > 0 {
		parts = append(parts, fmt.Sprintf("slow-loris=%dB/%s", pl.SlowChunk, pl.SlowDelay))
	}
	if len(parts) == 0 {
		parts = append(parts, "clean")
	}
	return fmt.Sprintf("conn %d: %s", pl.Conn, strings.Join(parts, " "))
}

// Schedule derives per-connection fault plans from a seed. Two
// schedules built from the same (seed, faults) produce identical plans
// for every ordinal; that is the replayability contract the chaos tests
// pin.
type Schedule struct {
	seed   int64
	faults Faults
}

// NewSchedule returns the deterministic schedule for (seed, faults).
func NewSchedule(seed int64, f Faults) *Schedule {
	return &Schedule{seed: seed, faults: f}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

// PlanFor resolves the fault plan of the conn-th connection (1-based,
// accept order). Pure: safe to call concurrently and repeatedly, and
// every draw happens in a fixed order so plans never depend on which
// faults other connections suffered.
func (s *Schedule) PlanFor(conn int) ConnPlan {
	r := appkit.DeriveStream(s.seed, int64(conn))
	pl := ConnPlan{Conn: conn, ResetAfter: -1, TruncateAfter: -1, HalfOpenAfter: -1}
	f := s.faults
	if w := f.partitionWidth(); w > 0 && conn >= f.PartitionAt && conn < f.PartitionAt+w {
		pl.Partitioned = true
	}
	// Fixed draw order — one draw pair per family, taken even when the
	// family loses the selection roll, so each field's value depends
	// only on (seed, conn, field), never on the other fields' rates.
	if latency, jitter := f.Latency, f.LatencyJitter; latency > 0 {
		if jitter <= 0 {
			jitter = latency
		}
		pl.Latency = latency + r.Duration(jitter)
	} else {
		r.Next()
	}
	// Byte offsets are drawn in [0, 64): the servers speak short line
	// protocols, so a trigger offset must land within a connection's
	// first few dozen payload bytes to ever fire.
	if roll, off := r.Float64(), r.Next()%64; roll < f.ResetRate {
		pl.ResetAfter = int64(off)
	}
	if roll, off := r.Float64(), r.Next()%64; roll < f.TruncateRate {
		pl.TruncateAfter = int64(off)
	}
	if roll, off := r.Float64(), r.Next()%64; roll < f.HalfOpenRate {
		pl.HalfOpenAfter = int64(off)
	}
	if roll := r.Float64(); roll < f.ThrottleRate {
		pl.ThrottleBps = f.throttleBps()
	}
	if roll, chunk, delay := r.Float64(), 1+r.Intn(4), time.Millisecond+r.Duration(4*time.Millisecond); roll < f.SlowLorisRate {
		pl.SlowChunk = chunk
		pl.SlowDelay = delay
	}
	return pl
}

// Describe renders the plans of the first n connections, one per line —
// the replayability fingerprint the determinism tests compare.
func (s *Schedule) Describe(n int) string {
	var b strings.Builder
	for conn := 1; conn <= n; conn++ {
		fmt.Fprintln(&b, s.PlanFor(conn).String())
	}
	return b.String()
}

// FaultEvent reports one injected fault to Config.OnFault.
type FaultEvent struct {
	// Conn is the connection ordinal the fault hit (0 for faults not
	// tied to one connection).
	Conn int
	// Kind is the fault family.
	Kind FaultKind
	// Detail is a human-readable elaboration.
	Detail string
}

// String formats the event the way incident logs record it.
func (ev FaultEvent) String() string {
	return fmt.Sprintf("conn %d: %s (%s)", ev.Conn, ev.Kind, ev.Detail)
}
