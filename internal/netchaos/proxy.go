package netchaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Proxy.
type Config struct {
	// ListenAddr is the proxy's listen address (default "127.0.0.1:0").
	ListenAddr string
	// Seed drives the fault schedule; derive it from the appkit jitter
	// stream (appkit.JitterSeed) so chaos replays under the trial seed.
	Seed int64
	// Faults selects the fault families and rates.
	Faults Faults
	// OnFault, when non-nil, receives every injected fault as it
	// happens. Integrations forward these to the engine's incident log
	// as guard.KindNetFault records. Called from proxy goroutines; must
	// be safe for concurrent use.
	OnFault func(FaultEvent)
	// DialTimeout bounds the upstream dial (default 5s).
	DialTimeout time.Duration
}

// Proxy is the fault-injecting TCP proxy: it listens on a loopback
// address, forwards every accepted connection to the upstream address,
// and applies the seed-derived fault plan of the connection's accept
// ordinal to the forwarded traffic.
type Proxy struct {
	cfg      Config
	sched    *Schedule
	upstream string
	ln       net.Listener

	ordinal atomic.Int64
	counts  [faultKindCount]atomic.Int64

	mu     sync.Mutex
	active map[*chaosConn]struct{}
	closed bool

	// partitioned latches the moment the partition window opened and
	// the live connection set was dropped.
	partitioned atomic.Bool

	// forcedUntil, when in the future (unix nanos), rejects every new
	// connection — the operator/scenario-driven partition window, as
	// opposed to the seed-scheduled ordinal window.
	forcedUntil atomic.Int64

	wg sync.WaitGroup
}

// Start listens on cfg.ListenAddr (default 127.0.0.1:0) and proxies to
// upstream under cfg.
func Start(upstream string, cfg Config) (*Proxy, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen: %w", err)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	p := &Proxy{
		cfg:      cfg,
		sched:    NewSchedule(cfg.Seed, cfg.Faults),
		upstream: upstream,
		ln:       ln,
		active:   make(map[*chaosConn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (what clients dial).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Schedule returns the proxy's deterministic fault schedule.
func (p *Proxy) Schedule() *Schedule { return p.sched }

// Connections returns how many connections the proxy has accepted.
func (p *Proxy) Connections() int64 { return p.ordinal.Load() }

// FaultCount returns how many faults of one kind were injected.
func (p *Proxy) FaultCount(k FaultKind) int64 {
	if k < 0 || k >= faultKindCount {
		return 0
	}
	return p.counts[k].Load()
}

// TotalFaults returns the total injected fault count across all kinds.
func (p *Proxy) TotalFaults() int64 {
	var n int64
	for i := range p.counts {
		n += p.counts[i].Load()
	}
	return n
}

// ForcePartition opens a partition window for the next d: every live
// connection is severed abortively right now and every connection
// accepted before the window closes is severed on accept. Unlike the
// seed-scheduled ordinal window (Faults.PartitionAt), this one is
// driven at runtime — cbserverd's admin API and the scenario harness
// use it to cut the network mid-run without restarting the proxy.
// Returns how many live connections were dropped.
func (p *Proxy) ForcePartition(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	p.forcedUntil.Store(time.Now().Add(d).UnixNano())
	p.mu.Lock()
	conns := make([]*chaosConn, 0, len(p.active))
	for c := range p.active {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.close(true)
	}
	p.fault(0, FaultPartition,
		fmt.Sprintf("forced partition begins for %s: dropped %d live connection(s)", d, len(conns)))
	return len(conns)
}

// forcedPartition reports whether a forced partition window is open.
func (p *Proxy) forcedPartition() bool {
	until := p.forcedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// Close stops accepting, severs every live connection, and waits for
// the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	conns := make([]*chaosConn, 0, len(p.active))
	for c := range p.active {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.close(false)
	}
	p.wg.Wait()
	return err
}

// fault counts and reports one injected fault.
func (p *Proxy) fault(conn int, k FaultKind, detail string) {
	if k >= 0 && k < faultKindCount {
		p.counts[k].Add(1)
	}
	if p.cfg.OnFault != nil {
		p.cfg.OnFault(FaultEvent{Conn: conn, Kind: k, Detail: detail})
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ord := int(p.ordinal.Add(1))
		if p.forcedPartition() {
			p.fault(ord, FaultPartition, "connection severed inside forced partition window")
			abortiveClose(client)
			continue
		}
		plan := p.sched.PlanFor(ord)
		if plan.Partitioned {
			p.enterPartition(ord)
			p.fault(ord, FaultPartition, "connection severed inside partition window")
			abortiveClose(client)
			continue
		}
		p.wg.Add(1)
		go p.serve(client, plan)
	}
}

// enterPartition drops every live connection the first time an ordinal
// inside the partition window arrives — a full partition severs
// established flows, not just new ones.
func (p *Proxy) enterPartition(ord int) {
	if !p.partitioned.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	conns := make([]*chaosConn, 0, len(p.active))
	for c := range p.active {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.close(true)
	}
	p.fault(ord, FaultPartition, fmt.Sprintf("partition begins: dropped %d live connection(s)", len(conns)))
}

// serve dials upstream and pumps both directions under the plan.
func (p *Proxy) serve(client net.Conn, plan ConnPlan) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.upstream, p.cfg.DialTimeout)
	if err != nil {
		abortiveClose(client)
		return
	}
	c := &chaosConn{p: p, plan: plan, client: client, server: server}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.close(false)
		return
	}
	p.active[c] = struct{}{}
	p.mu.Unlock()

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); c.pump(client, server, true) }()
	go func() { defer pumps.Done(); c.pump(server, client, false) }()
	pumps.Wait()

	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
}

// chaosConn is one proxied connection with its fault plan and the
// shared forwarded-byte counter the plan's offsets address.
type chaosConn struct {
	p      *Proxy
	plan   ConnPlan
	client net.Conn
	server net.Conn

	transferred atomic.Int64
	fired       [faultKindCount]atomic.Bool
	closeOnce   sync.Once
}

// faultOnce reports a fault the first time it fires on this connection.
func (c *chaosConn) faultOnce(k FaultKind, detail string) {
	if c.fired[k].CompareAndSwap(false, true) {
		c.p.fault(c.plan.Conn, k, detail)
	}
}

// close severs both sides; abortive forces an RST-style teardown.
func (c *chaosConn) close(abortive bool) {
	c.closeOnce.Do(func() {
		if abortive {
			abortiveClose(c.client)
			abortiveClose(c.server)
			return
		}
		c.client.Close()
		c.server.Close()
	})
}

// abortiveClose closes a TCP connection with zero linger, so the peer
// sees a hard RST instead of an orderly FIN — the shape of a real
// mid-flight connection reset.
func abortiveClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// pump forwards src→dst under the plan. c2s marks the client→server
// direction (the only one a half-open drop silences). Offsets address
// the connection's cumulative forwarded bytes across both directions,
// so a plan behaves the same whether the protocol is chatty or bulky.
func (c *chaosConn) pump(src, dst net.Conn, c2s bool) {
	buf := make([]byte, 16<<10)
	halfOpen := false
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			base := c.transferred.Add(int64(n)) - int64(n)
			if halfOpen {
				// Silently discard: the direction is dropped but both
				// sockets stay open, so the peer just waits.
				continue
			}
			if c.plan.Latency > 0 {
				c.faultOnce(FaultLatency, fmt.Sprintf("+%s per chunk", c.plan.Latency))
				time.Sleep(c.plan.Latency)
			}
			if off := c.plan.ResetAfter; off >= 0 && base+int64(n) > off {
				keep := off - base
				if keep > 0 {
					c.writeChunk(dst, chunk[:keep])
				}
				c.faultOnce(FaultReset, fmt.Sprintf("abortive reset after %d forwarded bytes", off))
				c.close(true)
				return
			}
			if off := c.plan.TruncateAfter; off >= 0 && base+int64(n) > off {
				keep := off - base
				if keep > 0 {
					c.writeChunk(dst, chunk[:keep])
				}
				c.faultOnce(FaultTruncate, fmt.Sprintf("stream cut mid-chunk at byte %d", off))
				c.close(false)
				return
			}
			if c2s && c.plan.HalfOpenAfter >= 0 && base+int64(n) > c.plan.HalfOpenAfter {
				keep := c.plan.HalfOpenAfter - base
				if keep > 0 {
					c.writeChunk(dst, chunk[:keep])
				}
				c.faultOnce(FaultHalfOpen, fmt.Sprintf("client→server drops silently after byte %d", c.plan.HalfOpenAfter))
				halfOpen = true
				continue
			}
			if err2 := c.writeChunk(dst, chunk); err2 != nil {
				c.close(false)
				return
			}
		}
		if err != nil {
			if halfOpen && isClosedErr(err) {
				return
			}
			c.close(false)
			return
		}
	}
}

// writeChunk forwards one chunk, applying slow-loris trickling and
// bandwidth throttling.
func (c *chaosConn) writeChunk(dst net.Conn, chunk []byte) error {
	if c.plan.SlowChunk > 0 {
		c.faultOnce(FaultSlowLoris, fmt.Sprintf("trickling %dB chunks every %s", c.plan.SlowChunk, c.plan.SlowDelay))
		for len(chunk) > 0 {
			n := c.plan.SlowChunk
			if n > len(chunk) {
				n = len(chunk)
			}
			if _, err := dst.Write(chunk[:n]); err != nil {
				return err
			}
			chunk = chunk[n:]
			if len(chunk) > 0 {
				time.Sleep(c.plan.SlowDelay)
			}
		}
		return nil
	}
	if bps := c.plan.ThrottleBps; bps > 0 {
		// Pace before delivering: the bytes themselves arrive at the
		// capped rate, so even a single roundtrip feels the cap.
		c.faultOnce(FaultThrottle, fmt.Sprintf("bandwidth capped at %d bytes/s", bps))
		time.Sleep(time.Duration(len(chunk)) * time.Second / time.Duration(bps))
	}
	_, err := dst.Write(chunk)
	return err
}

// isClosedErr reports whether err is the "use of closed network
// connection" shape a deliberate local close produces.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
