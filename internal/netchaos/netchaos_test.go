package netchaos

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoUpstream is the reference server the proxy tests forward to: it
// answers every received line with the same line.
func echoUpstream(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					if _, err := fmt.Fprintf(conn, "%s\n", sc.Text()); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// roundTrip dials addr, sends one line, and reads one line back.
func roundTrip(addr, line string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\n"), nil
}

func TestScheduleDeterminism(t *testing.T) {
	f := Faults{
		Latency: time.Millisecond, ResetRate: 0.3, TruncateRate: 0.3,
		HalfOpenRate: 0.2, ThrottleRate: 0.2, SlowLorisRate: 0.2,
		PartitionAt: 10, PartitionFor: 3,
	}
	a := NewSchedule(42, f).Describe(64)
	b := NewSchedule(42, f).Describe(64)
	if a != b {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if c := NewSchedule(43, f).Describe(64); c == a {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestPlanPureAndConcurrent(t *testing.T) {
	s := NewSchedule(7, Faults{ResetRate: 0.5, TruncateRate: 0.5, Latency: time.Millisecond})
	want := s.PlanFor(3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := s.PlanFor(3); got != want {
				t.Errorf("PlanFor(3) = %v, want %v", got, want)
			}
		}()
	}
	wg.Wait()
}

// TestPlanFieldIndependence pins the fixed draw order: a field's value
// depends only on (seed, conn, field), never on which other families
// are enabled.
func TestPlanFieldIndependence(t *testing.T) {
	all := Faults{
		Latency: time.Millisecond, ResetRate: 1, TruncateRate: 1,
		HalfOpenRate: 1, ThrottleRate: 1, SlowLorisRate: 1,
	}
	only := Faults{TruncateRate: 1}
	for conn := 1; conn <= 32; conn++ {
		a := NewSchedule(99, all).PlanFor(conn)
		b := NewSchedule(99, only).PlanFor(conn)
		if a.TruncateAfter != b.TruncateAfter {
			t.Fatalf("conn %d: TruncateAfter drifted when other families toggled: %d vs %d",
				conn, a.TruncateAfter, b.TruncateAfter)
		}
	}
}

func startProxy(t *testing.T, upstream string, f Faults, seed int64) *Proxy {
	t.Helper()
	px, err := Start(upstream, Config{Seed: seed, Faults: f})
	if err != nil {
		t.Fatalf("proxy start: %v", err)
	}
	t.Cleanup(func() { px.Close() })
	return px
}

func TestProxyCleanPassThrough(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{}, 1)
	resp, err := roundTrip(px.Addr(), "hello", 2*time.Second)
	if err != nil || resp != "hello" {
		t.Fatalf("roundTrip = %q, %v; want echo", resp, err)
	}
	if n := px.TotalFaults(); n != 0 {
		t.Fatalf("clean proxy injected %d fault(s)", n)
	}
}

func TestProxyLatency(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{Latency: 30 * time.Millisecond}, 1)
	start := time.Now()
	if _, err := roundTrip(px.Addr(), "ping", 3*time.Second); err != nil {
		t.Fatalf("roundTrip: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not injected: roundtrip took %s", elapsed)
	}
	if px.FaultCount(FaultLatency) == 0 {
		t.Fatalf("no latency fault recorded")
	}
}

func TestProxyReset(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{ResetRate: 1}, 1)
	// 128 payload bytes guarantee the [0, 64) reset offset is crossed.
	line := strings.Repeat("x", 128)
	if resp, err := roundTrip(px.Addr(), line, 2*time.Second); err == nil {
		t.Fatalf("reset connection returned %q; want transport error", resp)
	}
	if px.FaultCount(FaultReset) != 1 {
		t.Fatalf("reset fault count = %d, want 1", px.FaultCount(FaultReset))
	}
}

func TestProxyTruncate(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{TruncateRate: 1}, 1)
	line := strings.Repeat("y", 128)
	if resp, err := roundTrip(px.Addr(), line, 2*time.Second); err == nil {
		t.Fatalf("truncated connection returned %q; want transport error", resp)
	}
	if px.FaultCount(FaultTruncate) != 1 {
		t.Fatalf("truncate fault count = %d, want 1", px.FaultCount(FaultTruncate))
	}
}

func TestProxyHalfOpen(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{HalfOpenRate: 1}, 1)
	conn, err := net.DialTimeout("tcp", px.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	line := strings.Repeat("z", 128)
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatalf("half-open connection delivered a response")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("half-open read failed with %v; want timeout (sockets stay open)", err)
	}
	if px.FaultCount(FaultHalfOpen) != 1 {
		t.Fatalf("half-open fault count = %d, want 1", px.FaultCount(FaultHalfOpen))
	}
}

func TestProxyThrottle(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{ThrottleRate: 1, ThrottleBps: 256}, 1)
	start := time.Now()
	line := strings.Repeat("t", 63)
	if resp, err := roundTrip(px.Addr(), line, 5*time.Second); err != nil || resp != line {
		t.Fatalf("roundTrip = %q, %v; want echo", resp, err)
	}
	// 64 bytes each way at 256 B/s paces every chunk to ~250ms.
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("throttle not applied: roundtrip took %s", elapsed)
	}
	if px.FaultCount(FaultThrottle) == 0 {
		t.Fatalf("no throttle fault recorded")
	}
}

func TestProxySlowLoris(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{SlowLorisRate: 1}, 1)
	start := time.Now()
	line := strings.Repeat("s", 32)
	if resp, err := roundTrip(px.Addr(), line, 5*time.Second); err != nil || resp != line {
		t.Fatalf("roundTrip = %q, %v; want echo", resp, err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("slow-loris not applied: roundtrip took %s", elapsed)
	}
	if px.FaultCount(FaultSlowLoris) == 0 {
		t.Fatalf("no slow-loris fault recorded")
	}
}

func TestProxyPartition(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{PartitionAt: 2, PartitionFor: 2}, 1)

	// Ordinal 1 predates the partition and works; keep it open so the
	// partition has a live connection to drop.
	pre, err := net.DialTimeout("tcp", px.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer pre.Close()
	pre.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(pre, "pre\n")
	if resp, err := bufio.NewReader(pre).ReadString('\n'); err != nil || resp != "pre\n" {
		t.Fatalf("pre-partition roundtrip = %q, %v", resp, err)
	}

	// Ordinals 2 and 3 land inside the window and are severed.
	for ord := 2; ord <= 3; ord++ {
		if resp, err := roundTrip(px.Addr(), "in-window", time.Second); err == nil {
			t.Fatalf("ordinal %d inside partition answered %q", ord, resp)
		}
	}
	// The established connection was dropped when the partition began.
	pre.SetReadDeadline(time.Now().Add(time.Second))
	fmt.Fprintf(pre, "post\n")
	if _, err := bufio.NewReader(pre).ReadString('\n'); err == nil {
		t.Fatalf("pre-partition connection survived the partition")
	}
	// Ordinal 4 is past the window: service restored.
	if resp, err := roundTrip(px.Addr(), "after", 2*time.Second); err != nil || resp != "after" {
		t.Fatalf("post-partition roundtrip = %q, %v; want restored service", resp, err)
	}
	if px.FaultCount(FaultPartition) == 0 {
		t.Fatalf("no partition fault recorded")
	}
}

// TestProxyForcePartition drives the runtime-triggered partition: live
// connections are severed immediately, new ones are rejected until the
// window elapses, and service restores afterwards.
func TestProxyForcePartition(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{}, 1)

	pre, err := net.DialTimeout("tcp", px.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer pre.Close()
	pre.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(pre, "pre\n")
	if resp, err := bufio.NewReader(pre).ReadString('\n'); err != nil || resp != "pre\n" {
		t.Fatalf("pre-partition roundtrip = %q, %v", resp, err)
	}

	if dropped := px.ForcePartition(300 * time.Millisecond); dropped != 1 {
		t.Fatalf("ForcePartition dropped %d connections, want 1", dropped)
	}
	// The established connection died with the window's opening.
	pre.SetReadDeadline(time.Now().Add(time.Second))
	fmt.Fprintf(pre, "post\n")
	if _, err := bufio.NewReader(pre).ReadString('\n'); err == nil {
		t.Fatalf("live connection survived the forced partition")
	}
	// New connections inside the window are severed on accept.
	if resp, err := roundTrip(px.Addr(), "in-window", time.Second); err == nil {
		t.Fatalf("connection inside forced partition answered %q", resp)
	}
	before := px.FaultCount(FaultPartition)
	if before < 2 {
		t.Fatalf("partition fault count = %d, want >= 2 (window open + severed accept)", before)
	}
	// Past the window: service restored.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := roundTrip(px.Addr(), "after", time.Second); err == nil && resp == "after" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not restore after the forced partition window")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClientRetriesThroughReset picks a seed whose first connection is
// reset but whose second is clean, and shows one request surviving via
// a retry.
func TestClientRetriesThroughReset(t *testing.T) {
	f := Faults{ResetRate: 0.5}
	seed := int64(-1)
	for s := int64(1); s < 4096; s++ {
		sched := NewSchedule(s, f)
		if sched.PlanFor(1).ResetAfter >= 0 && sched.PlanFor(2).ResetAfter < 0 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatalf("no seed with reset-then-clean plan in range")
	}
	px := startProxy(t, echoUpstream(t), f, seed)
	c := NewClient(ClientConfig{
		Addr: px.Addr(), Seed: 7, Attempts: 3,
		AttemptTimeout: time.Second, RequestTimeout: 5 * time.Second,
		Backoff: time.Millisecond,
	})
	line := strings.Repeat("r", 128)
	resp, err := c.Do(line)
	if err != nil || resp != line {
		t.Fatalf("Do = %q, %v; want retried echo", resp, err)
	}
	st := c.Stats()
	if st.Retries == 0 || st.OK != 1 {
		t.Fatalf("stats = %+v; want ≥1 retry and 1 ok", st)
	}
}

func TestClientRetryBudgetFailsFast(t *testing.T) {
	// A listener that is already closed refuses every attempt.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := NewClient(ClientConfig{
		Addr: addr, Seed: 7, Attempts: 4, RetryBudget: 1,
		AttemptTimeout: 200 * time.Millisecond, RequestTimeout: 2 * time.Second,
		Backoff: time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Do("ping"); err == nil {
			t.Fatalf("request %d succeeded against a dead address", i)
		}
	}
	st := c.Stats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want exactly the budget (1)", st.Retries)
	}
	if st.BudgetDenied == 0 {
		t.Fatalf("budget exhaustion never denied a retry: %+v", st)
	}
	if st.Failed != 3 {
		t.Fatalf("failed = %d, want 3", st.Failed)
	}
}

func TestClientBackoffWindowAndDeterminism(t *testing.T) {
	cfg := ClientConfig{Addr: "127.0.0.1:1", Seed: 42, Backoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond}
	a := NewClient(cfg)
	b := NewClient(cfg)
	for retry := 0; retry < 12; retry++ {
		d := cfg.Backoff << uint(retry)
		if d <= 0 || d > cfg.MaxBackoff {
			d = cfg.MaxBackoff
		}
		ad, bd := a.backoff(retry), b.backoff(retry)
		if ad != bd {
			t.Fatalf("retry %d: same seed gave %s vs %s", retry, ad, bd)
		}
		if ad < d/2 || ad > d {
			t.Fatalf("retry %d: backoff %s outside [%s, %s]", retry, ad, d/2, d)
		}
	}
}

func TestRunLoadAggregates(t *testing.T) {
	px := startProxy(t, echoUpstream(t), Faults{}, 1)
	rep := RunLoad(LoadConfig{
		Addr: px.Addr(), Seed: 7, Clients: 4, Requests: 3,
		Client: ClientConfig{AttemptTimeout: time.Second, RequestTimeout: 3 * time.Second},
	})
	if rep.Stats.OK != 12 || rep.Stats.Failed != 0 {
		t.Fatalf("load stats = %+v; want 12 ok, 0 failed", rep.Stats)
	}
	if rep.Degraded() {
		t.Fatalf("clean load reported degraded")
	}
}
