//go:build linux

package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestWorkerTreeReapedOnDeadlineKill pins the satellite guarantee that
// killing a worker reaps its whole process tree: the worker here forks
// a long-lived grandchild, the supervisor's deadline kill fires, and
// the grandchild must die with the worker (process-group kill), not
// linger as an orphan the way a direct Process.Kill would leave it.
func TestWorkerTreeReapedOnDeadlineKill(t *testing.T) {
	dir := t.TempDir()
	pidFile := filepath.Join(dir, "grandchild.pid")
	// The worker: background a sleep (the grandchild), record its pid,
	// then block. It never answers the trial protocol — the deadline
	// kill is the only way out.
	script := "sleep 300 & echo $! > " + pidFile + "; wait"
	exec := SubprocessExecutor("/bin/sh", "-c", script)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := exec(ctx, WorkerRequest{})
		done <- err
	}()

	// Wait for the grandchild to exist.
	var gpid int
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, err := os.ReadFile(pidFile); err == nil && len(data) > 0 {
			gpid, err = strconv.Atoi(strings.TrimSpace(string(data)))
			if err == nil && gpid > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("grandchild never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel() // the supervisor's deadline kill
	if err := <-done; err == nil {
		t.Fatal("killed worker reported success")
	}

	// The grandchild must be gone (or a moment from it): signal 0
	// probes existence without touching anything.
	deadline = time.Now().Add(5 * time.Second)
	for {
		err := syscall.Kill(gpid, 0)
		if err == syscall.ESRCH {
			return // reaped
		}
		if time.Now().After(deadline) {
			syscall.Kill(gpid, syscall.SIGKILL) // don't leak it from the test either
			t.Fatalf("grandchild %d still alive after worker kill (err=%v)", gpid, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
