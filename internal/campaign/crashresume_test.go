package campaign

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"cbreak/internal/harness"
)

// The kill-anywhere campaign harness re-execs this test binary as a
// throwaway campaign process (TestMain diverts into killHelperMain when
// the env var is set), SIGKILLs it mid-flight via ChaosKillDispatch,
// and resumes from its checkpoint in the test process.
const (
	killHelperEnvDir  = "CB_CAMPAIGN_KILL_HELPER_DIR"
	killHelperEnvAt   = "CB_CAMPAIGN_KILL_HELPER_AT"
	killHelperEnvSeed = "CB_CAMPAIGN_KILL_HELPER_SEED"
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(killHelperEnvDir); dir != "" {
		killHelperMain(dir)
		return
	}
	os.Exit(m.Run())
}

// killSpecs is the fixed mini-campaign the crash harness runs: two
// configurations, four trials each, eight dispatches total.
func killSpecs() []harness.TrialSpec {
	return []harness.TrialSpec{
		{Key: harness.TrialKey{Table: "t2", Row: 0, Variant: "with"}, Runs: 4},
		{Key: harness.TrialKey{Table: "t2", Row: 1, Variant: "with"}, Runs: 4},
	}
}

// runKillCampaign runs the mini-campaign (fresh or resumed) with the
// synthetic executor and returns one Measurement per spec. counting, if
// non-nil, receives the number of trials actually executed.
func runKillCampaign(cpPath string, seed int64, resume bool, killAt int, counting *int) ([]harness.Measurement, error) {
	cp, err := Open(cpPath, seed, resume)
	if err != nil {
		return nil, err
	}
	defer cp.Close()
	exec := SyntheticExecutor()
	var mu sync.Mutex
	counted := func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		mu.Lock()
		if counting != nil {
			*counting++
		}
		mu.Unlock()
		return exec(ctx, req)
	}
	sup, err := New(Config{
		Execute:           counted,
		Checkpoint:        cp,
		Seed:              seed,
		ChaosKillDispatch: killAt,
		sleep:             func(time.Duration) {},
	})
	if err != nil {
		return nil, err
	}
	runner := sup.Runner()
	var ms []harness.Measurement
	for _, spec := range killSpecs() {
		ms = append(ms, runner(spec))
	}
	return ms, nil
}

// killHelperMain is the child-process body: run the campaign and let
// ChaosKillDispatch SIGKILL us somewhere in the middle.
func killHelperMain(dir string) {
	killAt, _ := strconv.Atoi(os.Getenv(killHelperEnvAt))
	seed, _ := strconv.ParseInt(os.Getenv(killHelperEnvSeed), 10, 64)
	if _, err := runKillCampaign(dir, seed, false, killAt, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestCampaignKillAnywhereResume is the campaign half of the issue's
// recovery invariant: SIGKILL the campaign process at EVERY dispatch
// ordinal, resume from the checkpoint journal, and require (a) the
// resumed campaign re-runs only the trials the crash lost, and (b) the
// final measurements are identical to an uncrashed control run.
func TestCampaignKillAnywhereResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary per dispatch ordinal")
	}
	const seed = 424242
	const totalTrials = 8

	controlDir := t.TempDir() + "/control"
	control, err := runKillCampaign(controlDir, seed, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	for killAt := 1; killAt <= totalTrials; killAt++ {
		t.Run(fmt.Sprintf("kill-at-dispatch-%d", killAt), func(t *testing.T) {
			dir := t.TempDir() + "/cp"
			cmd := exec.Command(os.Args[0], "-test.run=TestMain")
			cmd.Env = append(os.Environ(),
				killHelperEnvDir+"="+dir,
				killHelperEnvAt+"="+strconv.Itoa(killAt),
				killHelperEnvSeed+"="+strconv.FormatInt(seed, 10),
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("helper survived its own SIGKILL (output: %s)", out)
			}
			if cmd.ProcessState == nil || cmd.ProcessState.ExitCode() == 1 {
				t.Fatalf("helper failed before the kill: %v: %s", err, out)
			}

			// The kill fires before dispatch killAt executes, so exactly
			// killAt-1 trials are journaled; resume runs the rest.
			ran := 0
			resumed, err := runKillCampaign(dir, seed, true, 0, &ran)
			if err != nil {
				t.Fatalf("resume after kill at %d: %v", killAt, err)
			}
			if want := totalTrials - (killAt - 1); ran != want {
				t.Fatalf("resume ran %d trials, want %d (crash lost only in-flight work)", ran, want)
			}
			if !reflect.DeepEqual(resumed, control) {
				t.Fatalf("resumed measurements diverge from uncrashed control:\n got %+v\nwant %+v", resumed, control)
			}
		})
	}
}
