// Package campaign supervises experiment campaigns: long sequences of
// harness trials over intentionally buggy concurrent programs. The
// engine (internal/core) is hardened against misbehaving breakpoints;
// this package hardens the layer that drives it, because the paper's
// evaluation tables only mean something when every scheduled trial is
// accounted for:
//
//   - worker isolation: each trial runs in a child process (re-exec of
//     the current binary in -trial-worker mode), so a crashing
//     reproduction cannot take the campaign down with it.
//   - deadlines: a hard per-trial wall-clock budget, enforced by
//     killing the worker — the deadlock benchmarks *exist to
//     deadlock*, and must not wedge the run.
//   - classification: "bug manifested" (any application verdict,
//     including OK) is distinguished from "worker crashed/hung"
//     (appkit.TrialTimeout / appkit.WorkerCrash); only the latter are
//     infrastructure failures.
//   - retries: infrastructure failures retry with jittered exponential
//     backoff; application verdicts never do — re-rolling the dice on
//     a probabilistic reproduction would bias the tables.
//   - checkpoint/resume: completed trials are journaled to JSONL as
//     they finish, so an interrupted campaign resumes exactly where it
//     left off and, with the same seed, renders byte-identical rows.
//   - quarantine: after K consecutive infrastructure failures a
//     configuration is abandoned and its row rendered with an explicit
//     partial-data marker, instead of aborting the whole campaign.
package campaign

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/harness"
)

// Config parameterizes a Supervisor. Zero fields take the defaults
// noted on each.
type Config struct {
	// Context cancels the whole campaign (SIGINT plumbs in here).
	// Trials interrupted by cancellation are NOT journaled, so a resume
	// re-runs them.
	Context context.Context
	// Execute runs one trial attempt (required).
	Execute Executor
	// Checkpoint, when non-nil, journals completed trials and supplies
	// already-completed ones on resume.
	Checkpoint *Checkpoint
	// Seed derives every per-trial seed and the retry jitter.
	Seed int64
	// Deadline is the per-trial wall-clock budget (default 30s).
	Deadline time.Duration
	// Retries is how many times one trial is re-attempted after an
	// infrastructure failure (default 2; application verdicts are
	// final on the first attempt).
	Retries int
	// Backoff is the base retry delay, doubled per attempt with
	// deterministic jitter (default 100ms, capped at MaxBackoff).
	Backoff time.Duration
	// MaxBackoff caps the backoff growth (default 5s).
	MaxBackoff time.Duration
	// QuarantineAfter is K: consecutive infrastructure failures (after
	// retries) before a configuration is quarantined (default 3).
	QuarantineAfter int
	// Parallel bounds concurrently running trials (default 1).
	Parallel int
	// ChaosCrashDispatch, when > 0, injects a crash into that global
	// dispatch ordinal's attempt (1-based) — the CI smoke campaign uses
	// it to prove a crashing trial cannot sink a run.
	ChaosCrashDispatch int
	// ChaosKillDispatch, when > 0, SIGKILLs the supervisor's OWN
	// process at that global dispatch ordinal (1-based) — no deferred
	// cleanup, no checkpoint close, nothing. The crash-recovery harness
	// uses it to prove the kill-anywhere invariant: a campaign killed
	// at any dispatch resumes from its checkpoint journal and renders
	// byte-identical results.
	ChaosKillDispatch int
	// Log receives human-readable progress and incident lines (nil =
	// silent).
	Log io.Writer

	// sleep is the backoff clock, overridable in tests.
	sleep func(time.Duration)
}

// Supervisor drives trials through the Executor under the Config's
// policies and exposes a harness.Runner for the table generators.
type Supervisor struct {
	cfg Config
	ctx context.Context
	sem chan struct{}

	mu          sync.Mutex
	dispatched  int // global attempt ordinal, for chaos injection
	quarantined []harness.TrialKey
}

// New validates cfg, applies defaults, and returns a Supervisor.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Execute == nil {
		return nil, fmt.Errorf("campaign: Config.Execute is required")
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return &Supervisor{cfg: cfg, ctx: cfg.Context, sem: make(chan struct{}, cfg.Parallel)}, nil
}

// Quarantined returns the configurations this supervisor abandoned
// after K consecutive worker failures, in quarantine order.
func (s *Supervisor) Quarantined() []harness.TrialKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]harness.TrialKey(nil), s.quarantined...)
}

// Interrupted reports whether the campaign's context was cancelled.
func (s *Supervisor) Interrupted() bool { return s.ctx.Err() != nil }

// Runner returns the harness.Runner the table generators should use:
// each measurement configuration's trials run through the supervisor's
// pool, deadline, retry, journal, and quarantine machinery.
func (s *Supervisor) Runner() harness.Runner { return s.measure }

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// measure runs all of spec.Runs trials of one configuration.
func (s *Supervisor) measure(spec harness.TrialSpec) harness.Measurement {
	type slot struct {
		out harness.TrialOutcome
		ran bool
	}
	slots := make([]slot, spec.Runs)
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		consecFails int
		quarantined bool
	)
	// noteOutcome updates the consecutive-failure counter; trials
	// resolve in completion order, which is what "consecutive" means
	// under a parallel pool.
	noteOutcome := func(out harness.TrialOutcome) {
		if out.Result.Status.Infrastructure() {
			consecFails++
			if !quarantined && consecFails >= s.cfg.QuarantineAfter {
				quarantined = true
				s.mu.Lock()
				s.quarantined = append(s.quarantined, spec.Key)
				s.mu.Unlock()
				s.logf("campaign: quarantining %s (%s) after %d consecutive worker failures",
					spec.Key, spec.Label, consecFails)
			}
		} else {
			consecFails = 0
		}
	}
	for i := 0; i < spec.Runs; i++ {
		if s.ctx.Err() != nil {
			break
		}
		mu.Lock()
		stop := quarantined
		mu.Unlock()
		if stop {
			break
		}
		if rec, ok := s.cfg.Checkpoint.Lookup(spec.Key, i); ok {
			mu.Lock()
			slots[i] = slot{rec.Outcome, true}
			noteOutcome(rec.Outcome)
			mu.Unlock()
			continue
		}
		acquired := false
		select {
		case s.sem <- struct{}{}:
			acquired = true
		case <-s.ctx.Done():
		}
		if !acquired {
			break
		}
		// Quarantine may have triggered while this trial waited for a
		// slot; re-check so nothing is dispatched past the cutoff.
		mu.Lock()
		stop = quarantined
		mu.Unlock()
		if stop {
			<-s.sem
			break
		}
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			defer func() { <-s.sem }()
			out, attempts, aborted := s.runTrial(spec, trial)
			if aborted {
				return // cancelled: leave unjournaled so resume re-runs it
			}
			mu.Lock()
			slots[trial] = slot{out, true}
			noteOutcome(out)
			mu.Unlock()
			// Publish on the supervisor's process-wide telemetry bus with
			// the real retry count; the worker's own harness-level publish
			// happened in the subprocess, on a different bus.
			harness.PublishOutcome(spec.Key, out, attempts)
			rec := Record{Key: spec.Key, Trial: trial,
				Seed: harness.TrialSeed(s.cfg.Seed, spec.Key, trial), Attempts: attempts, Outcome: out}
			if err := s.cfg.Checkpoint.Append(rec); err != nil {
				s.logf("campaign: checkpoint write failed for %s#%d: %v", spec.Key, trial, err)
			}
		}(i)
	}
	wg.Wait()
	outs := make([]harness.TrialOutcome, 0, spec.Runs)
	for _, sl := range slots {
		if sl.ran {
			outs = append(outs, sl.out)
		}
	}
	m := harness.Aggregate(outs)
	m.Runs = spec.Runs
	m.Quarantined = quarantined
	return m
}

// runTrial executes one trial with the retry policy: infrastructure
// failures (deadline kills, worker crashes) are retried with jittered
// exponential backoff up to Retries times; an application verdict —
// buggy or OK — is final immediately. aborted means the campaign was
// cancelled mid-trial and nothing should be recorded.
func (s *Supervisor) runTrial(spec harness.TrialSpec, trial int) (out harness.TrialOutcome, attempts int, aborted bool) {
	seed := harness.TrialSeed(s.cfg.Seed, spec.Key, trial)
	req := WorkerRequest{Key: spec.Key, Trial: trial, Seed: seed}
	for attempt := 0; ; attempt++ {
		attempts++
		if s.ctx.Err() != nil {
			return out, attempts, true
		}
		req.Chaos = ""
		n := s.nextDispatch()
		if s.cfg.ChaosCrashDispatch > 0 && n == s.cfg.ChaosCrashDispatch {
			req.Chaos = ChaosCrash
			s.logf("campaign: injecting %s chaos into %s#%d (dispatch %d)", ChaosCrash, spec.Key, trial, n)
		}
		if s.cfg.ChaosKillDispatch > 0 && n == s.cfg.ChaosKillDispatch {
			s.logf("campaign: SIGKILLing self at dispatch %d (%s#%d)", n, spec.Key, trial)
			killSelf()
		}
		tctx, cancel := context.WithTimeout(s.ctx, s.cfg.Deadline)
		got, err := s.cfg.Execute(tctx, req)
		deadlineHit := tctx.Err() == context.DeadlineExceeded
		cancel()
		if s.ctx.Err() != nil {
			return out, attempts, true
		}
		switch {
		case err == nil && !got.Result.Status.Infrastructure():
			return got, attempts, false
		case err == nil:
			// The executor itself classified the failure (in-process
			// deadline abandonment reports TrialTimeout).
			out = got
		case deadlineHit:
			out = harness.TrialOutcome{Result: appkit.Result{
				Status:  appkit.TrialTimeout,
				Detail:  fmt.Sprintf("worker killed at %s deadline", s.cfg.Deadline),
				Elapsed: s.cfg.Deadline,
			}}
		default:
			out = harness.TrialOutcome{Result: appkit.Result{
				Status: appkit.WorkerCrash,
				Detail: err.Error(),
			}}
		}
		if attempt >= s.cfg.Retries {
			s.logf("campaign: %s#%d failed permanently after %d attempts: %s",
				spec.Key, trial, attempts, out.Result.Detail)
			return out, attempts, false
		}
		delay := s.backoff(seed, attempt)
		s.logf("campaign: %s#%d attempt %d failed (%s); retrying in %s",
			spec.Key, trial, attempts, out.Result.Status, delay)
		s.cfg.sleep(delay)
	}
}

// nextDispatch increments and returns the global 1-based attempt
// ordinal, the coordinate chaos injection addresses.
func (s *Supervisor) nextDispatch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dispatched++
	return s.dispatched
}

// backoff returns the jittered exponential delay for the given retry
// attempt (0-based): base<<attempt capped at MaxBackoff, jittered to
// [d/2, d] by the appkit stream derived from (trial seed, attempt).
// The same splitmix64 stream that seeds trial workloads seeds the
// retry timing, so a -resume of a seeded campaign replays identical
// backoff delays — pure in (seed, attempt), no process-global RNG.
func (s *Supervisor) backoff(trialSeed int64, attempt int) time.Duration {
	d := s.cfg.Backoff << uint(attempt)
	if d <= 0 || d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	half := d / 2
	return half + appkit.DeriveStream(trialSeed, int64(attempt)).Duration(half+1)
}
