package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"cbreak/internal/harness"
)

// checkpointVersion is bumped on incompatible record-schema changes;
// resume refuses mismatched versions rather than misreading records.
const checkpointVersion = 1

// Header is the first line of a checkpoint file. The seed is recorded
// so -resume can refuse a checkpoint written under a different -seed:
// mixing journaled trials from one seed with fresh trials from another
// would silently corrupt the campaign's reproducibility.
type Header struct {
	Kind    string `json:"kind"` // always "campaign-checkpoint"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
}

// Record is one journaled trial: its address, per-trial seed, how many
// attempts it took (1 = no retries), and the full outcome including the
// engine's guard incident counters and per-breakpoint stats snapshots.
// One Record per line makes the journal greppable — e.g.
// `grep '"panic"' campaign.jsonl` surfaces hardening regressions.
type Record struct {
	Key      harness.TrialKey     `json:"key"`
	Trial    int                  `json:"trial"`
	Seed     int64                `json:"seed"`
	Attempts int                  `json:"attempts"`
	Outcome  harness.TrialOutcome `json:"outcome"`
}

type recordKey struct {
	key   harness.TrialKey
	trial int
}

// Checkpoint is an append-only JSONL journal of completed trials.
// Records are written (and reach the kernel) as each trial completes,
// so a SIGINT or crash loses at most the trials still in flight; a
// resumed campaign replays the journal and re-runs only what is
// missing. Safe for concurrent use by pool workers.
type Checkpoint struct {
	mu     sync.Mutex
	f      *os.File
	header Header
	done   map[recordKey]Record
}

// ErrSeedMismatch is returned when resuming a checkpoint written under
// a different seed.
var ErrSeedMismatch = errors.New("campaign: checkpoint seed does not match -seed")

// Open creates (resume=false) or resumes (resume=true) the checkpoint
// at path. Resuming a file that does not exist starts a fresh journal;
// resuming one whose header seed differs from seed fails with
// ErrSeedMismatch. Without resume an existing file is truncated.
func Open(path string, seed int64, resume bool) (*Checkpoint, error) {
	cp := &Checkpoint{
		header: Header{Kind: "campaign-checkpoint", Version: checkpointVersion, Seed: seed},
		done:   make(map[recordKey]Record),
	}
	if resume {
		if err := cp.load(path, seed); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	cp.f = f
	if !resume || len(cp.done) == 0 && cp.fileEmpty() {
		if err := cp.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cp, nil
}

func (c *Checkpoint) fileEmpty() bool {
	info, err := c.f.Stat()
	return err == nil && info.Size() == 0
}

func (c *Checkpoint) writeHeader() error {
	line, err := json.Marshal(c.header)
	if err != nil {
		return err
	}
	_, err = c.f.Write(append(line, '\n'))
	return err
}

// load replays an existing journal into the done index. A corrupt
// trailing line (torn final write from a crash) is tolerated and
// dropped; corruption anywhere else is an error.
func (c *Checkpoint) load(path string, seed int64) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: resume checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		if lineNo == 1 {
			var h Header
			if err := json.Unmarshal(line, &h); err != nil || h.Kind != "campaign-checkpoint" {
				return fmt.Errorf("campaign: %s is not a campaign checkpoint", path)
			}
			if h.Version != checkpointVersion {
				return fmt.Errorf("campaign: checkpoint %s has version %d, this binary writes %d", path, h.Version, checkpointVersion)
			}
			if h.Seed != seed {
				return fmt.Errorf("%w: checkpoint %s was written with seed %d, got -seed %d; re-run with -seed %d or start a fresh checkpoint",
					ErrSeedMismatch, path, h.Seed, seed, h.Seed)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line means the process died mid-write; that
			// trial simply re-runs. Anything earlier is real corruption.
			if !sc.Scan() {
				break
			}
			return fmt.Errorf("campaign: corrupt checkpoint %s at line %d: %v", path, lineNo, err)
		}
		c.done[recordKey{rec.Key, rec.Trial}] = rec
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return fmt.Errorf("campaign: reading checkpoint %s: %w", path, err)
	}
	return nil
}

// Lookup returns the journaled record for (key, trial), if any.
func (c *Checkpoint) Lookup(key harness.TrialKey, trial int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.done[recordKey{key, trial}]
	return rec, ok
}

// Append journals a completed trial. The line hits the file descriptor
// before Append returns, so an interrupt after this point cannot lose
// the trial.
func (c *Checkpoint) Append(rec Record) error {
	if c == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[recordKey{rec.Key, rec.Trial}] = rec
	_, err = c.f.Write(append(line, '\n'))
	return err
}

// Len returns how many trials the journal holds.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Close syncs and closes the journal file.
func (c *Checkpoint) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}
