package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"cbreak/internal/harness"
	"cbreak/internal/journal"
)

// checkpointVersion is bumped on incompatible record-schema changes;
// resume refuses mismatched versions rather than misreading records.
const checkpointVersion = 1

// Header is the first record of a checkpoint journal. The seed is
// recorded so -resume can refuse a checkpoint written under a different
// -seed: mixing journaled trials from one seed with fresh trials from
// another would silently corrupt the campaign's reproducibility.
type Header struct {
	Kind    string `json:"kind"` // always "campaign-checkpoint"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
}

// Record is one journaled trial: its address, per-trial seed, how many
// attempts it took (1 = no retries), and the full outcome including the
// engine's guard incident counters and per-breakpoint stats snapshots.
// Payloads are JSON, one per journal record, so the checkpoint stays
// greppable — e.g. `grep -a '"panic"' <dir>/seg-*.wal` surfaces
// hardening regressions.
type Record struct {
	Key      harness.TrialKey     `json:"key"`
	Trial    int                  `json:"trial"`
	Seed     int64                `json:"seed"`
	Attempts int                  `json:"attempts"`
	Outcome  harness.TrialOutcome `json:"outcome"`
}

type recordKey struct {
	key   harness.TrialKey
	trial int
}

// Checkpoint journals completed trials into a crash-safe write-ahead
// journal (internal/journal): CRC-framed records in rotated segments,
// so a SIGKILL or power cut at ANY instant — including mid-write —
// costs at most the record being written; reopening truncates the torn
// tail and a resumed campaign re-runs only what is missing. Safe for
// concurrent use by pool workers.
type Checkpoint struct {
	mu     sync.Mutex
	j      *journal.Journal
	header Header
	done   map[recordKey]Record

	recovery journal.RecoveryInfo
	migrated string // legacy JSONL backup path, when one was converted
}

// ErrSeedMismatch is returned when resuming a checkpoint written under
// a different seed.
var ErrSeedMismatch = errors.New("campaign: checkpoint seed does not match -seed")

// Open creates (resume=false) or resumes (resume=true) the checkpoint
// journal at path with per-record fsync. See OpenOptions.
func Open(path string, seed int64, resume bool) (*Checkpoint, error) {
	return OpenOptions(path, seed, resume, journal.SyncEachRecord)
}

// OpenOptions creates or resumes the checkpoint journal at path (a
// directory). Resuming a path that does not exist starts a fresh
// journal; resuming one whose header seed differs from seed fails with
// ErrSeedMismatch. Without resume, existing contents are discarded.
//
// Resuming a pre-journal checkpoint — a plain JSONL *file* at path —
// migrates it: the records are read tolerantly (a torn trailing line
// from a crash mid-write is dropped, so that trial simply re-runs), the
// file is kept as path+".legacy", and a journal directory takes its
// place.
func OpenOptions(path string, seed int64, resume bool, sync journal.SyncPolicy) (*Checkpoint, error) {
	cp := &Checkpoint{
		header: Header{Kind: "campaign-checkpoint", Version: checkpointVersion, Seed: seed},
		done:   make(map[recordKey]Record),
	}
	var legacy []Record
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		if !resume {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("campaign: replace old checkpoint file: %w", err)
			}
		} else {
			legacy, err = loadLegacy(path, seed)
			if err != nil {
				return nil, err
			}
			backup := path + ".legacy"
			if err := os.Rename(path, backup); err != nil {
				return nil, fmt.Errorf("campaign: back up legacy checkpoint: %w", err)
			}
			cp.migrated = backup
		}
	} else if err == nil && !resume {
		// A fresh (non-resume) campaign truncates: yesterday's journal
		// must not leak stale trials into today's tables.
		if err := os.RemoveAll(path); err != nil {
			return nil, fmt.Errorf("campaign: clear old checkpoint: %w", err)
		}
	} else if err == nil && resume {
		// Existing journal directory: replayed below.
	}

	j, err := journal.Open(journal.Options{Dir: path, Sync: sync})
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint journal: %w", err)
	}
	cp.j = j
	cp.recovery = j.Recovery()

	if resume && cp.migrated == "" {
		if err := cp.replay(path, seed); err != nil {
			j.Close()
			return nil, err
		}
	}
	if cp.j.Len() == 0 {
		if err := cp.appendJSON(cp.header); err != nil {
			j.Close()
			return nil, err
		}
	}
	// Re-journal migrated legacy records so the journal is the one
	// authoritative artifact going forward.
	for _, rec := range legacy {
		if err := cp.Append(rec); err != nil {
			j.Close()
			return nil, err
		}
	}
	return cp, nil
}

// replay loads an existing checkpoint journal into the done index. The
// journal layer has already verified checksums and truncated any torn
// tail, so every payload here is a complete record; a payload that
// still fails to parse means a schema break, which is an error.
func (c *Checkpoint) replay(path string, seed int64) error {
	_, err := journal.Replay(path, func(lsn uint64, payload []byte) error {
		if lsn == 1 {
			var h Header
			if err := json.Unmarshal(payload, &h); err != nil || h.Kind != "campaign-checkpoint" {
				return fmt.Errorf("campaign: %s is not a campaign checkpoint", path)
			}
			if h.Version != checkpointVersion {
				return fmt.Errorf("campaign: checkpoint %s has version %d, this binary writes %d", path, h.Version, checkpointVersion)
			}
			if h.Seed != seed {
				return fmt.Errorf("%w: checkpoint %s was written with seed %d, got -seed %d; re-run with -seed %d or start a fresh checkpoint",
					ErrSeedMismatch, path, h.Seed, seed, h.Seed)
			}
			return nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("campaign: checkpoint %s record %d does not parse: %v", path, lsn, err)
		}
		c.done[recordKey{rec.Key, rec.Trial}] = rec
		return nil
	})
	return err
}

// Lookup returns the journaled record for (key, trial), if any.
func (c *Checkpoint) Lookup(key harness.TrialKey, trial int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.done[recordKey{key, trial}]
	return rec, ok
}

// Append journals a completed trial. With the default per-record fsync
// policy the record is durable before Append returns, so not even a
// SIGKILL immediately after can lose the trial.
func (c *Checkpoint) Append(rec Record) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := c.j.Append(line); err != nil {
		return err
	}
	c.done[recordKey{rec.Key, rec.Trial}] = rec
	return nil
}

func (c *Checkpoint) appendJSON(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = c.j.Append(line)
	return err
}

// Len returns how many trials the journal holds.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Recovery reports what the journal layer found on open: records
// recovered, segments read, and the torn tail (if any) it truncated.
func (c *Checkpoint) Recovery() journal.RecoveryInfo {
	if c == nil {
		return journal.RecoveryInfo{}
	}
	return c.recovery
}

// Migrated returns the backup path of the legacy JSONL checkpoint this
// open converted, or "" when the checkpoint was already a journal.
func (c *Checkpoint) Migrated() string {
	if c == nil {
		return ""
	}
	return c.migrated
}

// Close syncs and closes the journal.
func (c *Checkpoint) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.j == nil {
		return nil
	}
	err := c.j.Close()
	c.j = nil
	return err
}
