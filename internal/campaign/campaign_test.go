package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/guard/faultinject"
	"cbreak/internal/harness"
)

// wedgedSpec returns a spec whose trial deadlocks deterministically:
// fault injection wedges the breakpoint's postponement timer
// (guard.Fault.WedgeWait), so the arrival never returns on its own and
// only the supervisor's deadline can end the trial.
func wedgedSpec(key harness.TrialKey, runs int) harness.TrialSpec {
	return harness.TrialSpec{
		Key: key, Label: "wedged", Runs: runs, Breakpoint: true, Timeout: 5 * time.Millisecond,
		Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			e.SetInjector(faultinject.NewPlan().WedgeWait("wedge.bp", faultinject.BothSides))
			e.Breakpoint("wedge.bp").Trigger(core.NewConflictTrigger("wedge.bp", &struct{}{}), true, core.Options{Timeout: to})
			return appkit.Result{Status: appkit.OK}
		},
	}
}

func resolverFor(spec harness.TrialSpec) Resolver {
	return func(k harness.TrialKey) (harness.TrialSpec, bool) { return spec, k == spec.Key }
}

func TestDeadlockedTrialKilledRetriedAndQuarantined(t *testing.T) {
	key := harness.TrialKey{Table: "test", Row: 0, Variant: "with"}
	spec := wedgedSpec(key, 5)
	var mu sync.Mutex
	var delays []time.Duration
	sup, err := New(Config{
		Execute:         InProcessExecutor(resolverFor(spec)),
		Seed:            42,
		Deadline:        40 * time.Millisecond,
		Retries:         1,
		Backoff:         80 * time.Millisecond,
		QuarantineAfter: 2,
		sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sup.Runner()(spec)

	if !m.Quarantined || !m.Partial() {
		t.Fatalf("expected quarantined partial measurement, got %+v", m)
	}
	// Quarantine after 2 consecutive failed trials: exactly 2 trials ran
	// (each killed at the deadline on both attempts), 3 never dispatched.
	if m.Runs != 5 || m.Completed != 0 || m.InfraFailures != 2 {
		t.Fatalf("runs/completed/infra = %d/%d/%d, want 5/0/2", m.Runs, m.Completed, m.InfraFailures)
	}
	if m.Statuses[appkit.TrialTimeout] != 2 {
		t.Fatalf("statuses = %v, want 2 trial timeouts", m.Statuses)
	}
	// One retry per trial, each with jittered backoff in [base/2, base].
	if len(delays) != 2 {
		t.Fatalf("backoff delays = %v, want 2", delays)
	}
	for _, d := range delays {
		if d < 40*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("backoff %v outside jitter window [40ms, 80ms]", d)
		}
	}
	if q := sup.Quarantined(); len(q) != 1 || q[0] != key {
		t.Fatalf("Quarantined() = %v", q)
	}
}

func TestCrashRetriedThenSucceeds(t *testing.T) {
	key := harness.TrialKey{Table: "test", Row: 1, Variant: "with"}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := Open(path, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := map[int]int{}
	exec := func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		mu.Lock()
		calls[req.Trial]++
		n := calls[req.Trial]
		mu.Unlock()
		if n == 1 {
			return harness.TrialOutcome{}, errors.New("injected worker crash")
		}
		return harness.TrialOutcome{Result: appkit.Result{
			Status: appkit.TestFail, Elapsed: time.Millisecond, BPHit: true}}, nil
	}
	sup, err := New(Config{Execute: exec, Checkpoint: cp, Seed: 1,
		Retries: 2, QuarantineAfter: 3, sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	m := sup.Runner()(harness.TrialSpec{Key: key, Runs: 3})
	if m.Completed != 3 || m.Buggy != 3 || m.Quarantined || m.Partial() {
		t.Fatalf("measurement = %+v", m)
	}
	// Every trial crashed once and succeeded on retry: the journal must
	// say attempts=2, and per-attempt failures must not feed quarantine.
	for i := 0; i < 3; i++ {
		rec, ok := cp.Lookup(key, i)
		if !ok || rec.Attempts != 2 {
			t.Fatalf("trial %d record = %+v ok=%v, want attempts=2", i, rec, ok)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
}

// deterministicExecutor derives every outcome purely from the per-trial
// seed, so two campaigns with the same seed produce identical results —
// the property checkpoint/resume must preserve.
func deterministicExecutor(invocations *int, mu *sync.Mutex, cancelAfter int, cancel context.CancelFunc) Executor {
	return func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		mu.Lock()
		*invocations++
		n := *invocations
		mu.Unlock()
		if cancelAfter > 0 && n > cancelAfter {
			cancel()
			return harness.TrialOutcome{}, ctx.Err()
		}
		st := appkit.OK
		if req.Seed%3 == 0 {
			st = appkit.TestFail
		}
		return harness.TrialOutcome{
			Result: appkit.Result{Status: st, BPHit: st != appkit.OK,
				Elapsed: time.Duration(uint64(req.Seed)%1000) * time.Microsecond},
			BPWait: time.Duration(uint64(req.Seed) % 500),
		}, nil
	}
}

func TestCheckpointResumeSkipsCompletedAndMatchesUninterrupted(t *testing.T) {
	key := harness.TrialKey{Table: "test", Row: 2, Variant: "with"}
	spec := harness.TrialSpec{Key: key, Runs: 8}
	const seed = 99
	var mu sync.Mutex

	runCampaign := func(path string, resume bool, cancelAfter int) (harness.Measurement, int, int) {
		cp, err := Open(path, seed, resume)
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		invocations := 0
		sup, err := New(Config{Context: ctx, Checkpoint: cp, Seed: seed,
			Execute: deterministicExecutor(&invocations, &mu, cancelAfter, cancel),
			sleep:   func(time.Duration) {}})
		if err != nil {
			t.Fatal(err)
		}
		m := sup.Runner()(spec)
		return m, invocations, cp.Len()
	}

	// Reference: one uninterrupted campaign.
	full, fullCalls, _ := runCampaign(filepath.Join(t.TempDir(), "full.jsonl"), false, 0)
	if fullCalls != 8 || full.Completed != 8 {
		t.Fatalf("uninterrupted: calls=%d m=%+v", fullCalls, full)
	}

	// Interrupted run: campaign cancelled during trial 4. The three
	// completed trials are journaled; the in-flight one must not be.
	interrupted := filepath.Join(t.TempDir(), "interrupted.jsonl")
	_, calls1, journaled := runCampaign(interrupted, false, 3)
	if calls1 != 4 || journaled != 3 {
		t.Fatalf("interrupted: calls=%d journaled=%d, want 4 and 3", calls1, journaled)
	}

	// Resume: only the 5 missing trials run, and the aggregate is
	// identical to the uninterrupted campaign's.
	resumed, calls2, journaled2 := runCampaign(interrupted, true, 0)
	if calls2 != 5 {
		t.Fatalf("resume re-ran %d trials, want 5", calls2)
	}
	if journaled2 != 8 {
		t.Fatalf("resumed journal has %d records, want 8", journaled2)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed measurement differs from uninterrupted:\nfull:    %+v\nresumed: %+v", full, resumed)
	}
	if fmt.Sprintf("%+v", full) != fmt.Sprintf("%+v", resumed) {
		t.Fatal("rendered aggregates differ")
	}
}

func TestChaosCrashDispatchInjectsExactlyOnce(t *testing.T) {
	key := harness.TrialKey{Table: "test", Row: 3, Variant: "with"}
	var mu sync.Mutex
	var chaosSeen int
	exec := func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		if req.Chaos == ChaosCrash {
			mu.Lock()
			chaosSeen++
			mu.Unlock()
			return harness.TrialOutcome{}, errors.New("chaos crash")
		}
		return harness.TrialOutcome{Result: appkit.Result{Status: appkit.OK, Elapsed: time.Millisecond}}, nil
	}
	sup, err := New(Config{Execute: exec, Seed: 5, ChaosCrashDispatch: 2,
		Retries: 2, sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	m := sup.Runner()(harness.TrialSpec{Key: key, Runs: 4})
	if chaosSeen != 1 {
		t.Fatalf("chaos injected %d times, want 1", chaosSeen)
	}
	// The crashed dispatch was retried: the campaign still completes.
	if m.Completed != 4 || m.Quarantined {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	sup, err := New(Config{Execute: InProcessExecutor(nil), Seed: 1,
		Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sup.backoff(7, 0), sup.backoff(7, 0); a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
	for attempt := 0; attempt < 10; attempt++ {
		d := sup.backoff(7, attempt)
		if d < 5*time.Millisecond || d > 40*time.Millisecond {
			t.Fatalf("attempt %d backoff %v outside [5ms, 40ms]", attempt, d)
		}
	}
}
