package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/harness"
)

// WorkerRequest is the supervisor → worker message: the address of one
// trial plus its deterministic seed. It travels as a single JSON object
// on the worker's stdin; the worker answers with one JSON-encoded
// harness.TrialOutcome line on stdout and exit code 0. Any other exit,
// or an unparsable reply, is classified as a worker crash.
type WorkerRequest struct {
	Key   harness.TrialKey `json:"key"`
	Trial int              `json:"trial"`
	Seed  int64            `json:"seed"`
	// Chaos, when non-empty, asks the worker to misbehave for the
	// supervisor's own failure-path testing ("crash" = exit immediately
	// without reporting). Subprocess workers receive it via ChaosEnv.
	Chaos string `json:"chaos,omitempty"`
}

// ChaosEnv is the environment variable carrying WorkerRequest.Chaos to
// subprocess workers; cmd/cbtables' worker mode honours it before
// running the trial.
const ChaosEnv = "CB_CAMPAIGN_CHAOS"

// ChaosCrash makes the worker exit(3) before reporting.
const ChaosCrash = "crash"

// serveResolve resolves keys for ServeTrial; a package variable so the
// protocol round-trip is testable with synthetic (race-clean) specs.
var serveResolve Resolver = harness.ResolveSpec

// ServeTrial is the worker-process side of the protocol: decode one
// WorkerRequest from r, resolve and execute the trial in this process,
// and encode the TrialOutcome to w. The per-trial deadline is NOT
// enforced here — the supervisor owns it and enforces it by killing
// the process, which is the whole point of subprocess isolation.
func ServeTrial(r io.Reader, w io.Writer) error {
	var req WorkerRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return fmt.Errorf("campaign worker: decode request: %w", err)
	}
	spec, ok := serveResolve(req.Key)
	if !ok {
		return fmt.Errorf("campaign worker: unknown trial key %s", req.Key)
	}
	appkit.SeedJitter(req.Seed)
	out := harness.RunTrial(spec)
	return json.NewEncoder(w).Encode(out)
}

// Executor runs one trial attempt to completion. The supervisor
// enforces the per-trial deadline by cancelling ctx; implementations
// must return promptly once ctx is done (the subprocess executor kills
// the child). A non-nil error, or an Infrastructure() outcome, is an
// infrastructure failure eligible for retry.
type Executor func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error)

// SubprocessExecutor returns an Executor that runs each trial in a
// child process: `bin args...` (typically the current binary re-exec'd
// with -trial-worker). The request goes to the child's stdin, the
// reply is the last line of its stdout, and ctx cancellation kills the
// child — a deadlocked trial dies at the deadline instead of wedging
// the campaign.
func SubprocessExecutor(bin string, args ...string) Executor {
	return func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		reqJSON, err := json.Marshal(req)
		if err != nil {
			return harness.TrialOutcome{}, err
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stdin = bytes.NewReader(reqJSON)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		// Reap the whole worker tree, always: the worker runs in its own
		// process group and the deadline kill targets the group, so
		// grandchildren die with it; on Linux the parent-death signal
		// additionally reaps workers whose supervisor was SIGKILLed and
		// never ran this cancel at all (see procattr_linux.go).
		cmd.SysProcAttr = workerSysProcAttr()
		cmd.Cancel = func() error { return killWorkerTree(cmd) }
		cmd.Env = os.Environ()
		if req.Chaos != "" {
			cmd.Env = append(cmd.Env, ChaosEnv+"="+req.Chaos)
		}
		// If the child ignores the kill long enough to matter, give up
		// on collecting its output rather than blocking the pool slot.
		cmd.WaitDelay = 2 * time.Second
		if err := cmd.Run(); err != nil {
			detail := stderr.String()
			if len(detail) > 256 {
				detail = detail[:256] + "..."
			}
			return harness.TrialOutcome{}, fmt.Errorf("worker %s: %w: %s", req.Key, err, detail)
		}
		line := lastLine(stdout.Bytes())
		var out harness.TrialOutcome
		if err := json.Unmarshal(line, &out); err != nil {
			return harness.TrialOutcome{}, fmt.Errorf("worker %s: unparsable report %q: %w", req.Key, line, err)
		}
		return out, nil
	}
}

// lastLine returns the final non-empty line of b, so a worker that
// incidentally writes to stdout before its report still parses.
func lastLine(b []byte) []byte {
	b = bytes.TrimRight(b, "\n")
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		return b[i+1:]
	}
	return b
}

// Resolver maps a trial key to its runnable spec; tests substitute
// synthetic specs, production uses harness.ResolveSpec.
type Resolver func(key harness.TrialKey) (harness.TrialSpec, bool)

// InProcessExecutor returns an Executor that runs trials in this
// process (no isolation: a crashing trial takes the supervisor with
// it). It honours ctx via goroutine abandonment, so deadlines still
// hold for deadlocked — if not crashing — trials. A nil resolver uses
// harness.ResolveSpec. Chaos "crash" becomes a synthetic error.
func InProcessExecutor(resolve Resolver) Executor {
	if resolve == nil {
		resolve = harness.ResolveSpec
	}
	return func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		if req.Chaos == ChaosCrash {
			return harness.TrialOutcome{}, fmt.Errorf("worker %s: injected crash", req.Key)
		}
		spec, ok := resolve(req.Key)
		if !ok {
			return harness.TrialOutcome{}, fmt.Errorf("unknown trial key %s", req.Key)
		}
		appkit.SeedJitter(req.Seed)
		return harness.RunTrialCtx(ctx, 0, spec), nil
	}
}
