//go:build !linux

package campaign

import (
	"os/exec"
	"syscall"
)

// workerSysProcAttr: no process-group/parent-death support wired on
// this platform; workers are killed individually.
func workerSysProcAttr() *syscall.SysProcAttr { return nil }

// killWorkerTree kills the worker process directly.
func killWorkerTree(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	return cmd.Process.Kill()
}
