package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// loadLegacy reads a pre-journal JSONL checkpoint file for migration.
//
// The legacy writer appended "line\n" with a plain write, so a crash
// mid-write leaves a torn final line (no trailing newline, or a
// truncated JSON document). That trial was never acknowledged durable,
// so the torn line is simply dropped and the trial re-runs — it must
// NOT fail the whole resume. Corruption anywhere *before* the final
// line is a different story: records were lost in the middle, the file
// cannot be trusted, and resume refuses it.
func loadLegacy(path string, seed int64) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read legacy checkpoint: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends with "\n", so the final split element is
	// empty; anything else is the torn tail of an interrupted write.
	last := len(lines) - 1
	torn := len(lines[last]) != 0
	lines = lines[:last]

	if len(lines) == 0 {
		if torn {
			return nil, nil // the header itself was torn; nothing to keep
		}
		return nil, fmt.Errorf("campaign: legacy checkpoint %s is empty", path)
	}
	var h Header
	if err := json.Unmarshal(lines[0], &h); err != nil || h.Kind != "campaign-checkpoint" {
		return nil, fmt.Errorf("campaign: %s is not a campaign checkpoint", path)
	}
	if h.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, this binary writes %d", path, h.Version, checkpointVersion)
	}
	if h.Seed != seed {
		return nil, fmt.Errorf("%w: checkpoint %s was written with seed %d, got -seed %d; re-run with -seed %d or start a fresh checkpoint",
			ErrSeedMismatch, path, h.Seed, seed, h.Seed)
	}
	var out []Record
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("campaign: legacy checkpoint %s line %d does not parse: %v", path, i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
