package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/harness"
	"cbreak/internal/journal"
)

func testRecord(row, trial int) Record {
	return Record{
		Key:      harness.TrialKey{Table: "test", Row: row, Variant: "with"},
		Trial:    trial,
		Seed:     int64(row*100 + trial),
		Attempts: 1,
		Outcome: harness.TrialOutcome{
			Result: appkit.Result{Status: appkit.Stall, Detail: "lost wakeup", Elapsed: 3 * time.Millisecond, BPHit: true},
			BPWait: time.Millisecond,
			Incidents: map[string]int64{
				"watchdog": 1,
			},
		},
	}
}

// writeLegacyCheckpoint builds a pre-journal JSONL checkpoint file, the
// format old campaigns left behind.
func writeLegacyCheckpoint(t *testing.T, path string, seed int64, recs ...Record) {
	t.Helper()
	var b strings.Builder
	hdr, _ := json.Marshal(Header{Kind: "campaign-checkpoint", Version: checkpointVersion, Seed: seed})
	b.Write(hdr)
	b.WriteByte('\n')
	for _, rec := range recs {
		line, _ := json.Marshal(rec)
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord(0, 2)
	if err := cp.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want 1", re.Len())
	}
	got, ok := re.Lookup(want.Key, want.Trial)
	if !ok {
		t.Fatal("record not found after resume")
	}
	if got.Seed != want.Seed || got.Attempts != want.Attempts ||
		got.Outcome.Result != want.Outcome.Result ||
		got.Outcome.BPWait != want.Outcome.BPWait ||
		got.Outcome.Incidents["watchdog"] != 1 {
		t.Fatalf("resumed record = %+v, want %+v", got, want)
	}
}

func TestCheckpointSeedMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(testRecord(0, 0))
	cp.Close()

	_, err = Open(path, 8, true)
	if !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("resume with wrong seed: err = %v, want ErrSeedMismatch", err)
	}
	if !strings.Contains(err.Error(), "seed 7") {
		t.Fatalf("mismatch error should name the original seed: %v", err)
	}
}

// TestCheckpointTornJournalTailTolerated is the journal-era version of
// the crash-mid-write scenario: SIGKILL while a record frame is half
// written. Resume must truncate the torn frame and keep every record
// before it.
func TestCheckpointTornJournalTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(testRecord(0, 0))
	cp.Append(testRecord(0, 1))
	cp.Close()
	// Tear the tail of the (single) segment: chop 5 bytes off the last
	// frame, as a crash mid-write would.
	segs, err := filepath.Glob(filepath.Join(path, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v err=%v", segs, err)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("torn journal tail should be tolerated: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want the 1 intact record", re.Len())
	}
	if re.Recovery().TruncatedBytes == 0 {
		t.Fatal("recovery info does not report the truncated tail")
	}
	if _, ok := re.Lookup(testRecord(0, 0).Key, 0); !ok {
		t.Fatal("intact record lost with the torn one")
	}
	if _, ok := re.Lookup(testRecord(0, 1).Key, 1); ok {
		t.Fatal("torn record surfaced as complete")
	}
}

// TestCheckpointLegacyMigration: resuming a pre-journal JSONL file
// migrates its records into a journal directory and keeps the original
// as a .legacy backup.
func TestCheckpointLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	writeLegacyCheckpoint(t, path, 7, testRecord(0, 0), testRecord(1, 0))

	cp, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("legacy resume: %v", err)
	}
	if cp.Migrated() != path+".legacy" {
		t.Fatalf("Migrated() = %q", cp.Migrated())
	}
	if cp.Len() != 2 {
		t.Fatalf("Len = %d after migration", cp.Len())
	}
	cp.Append(testRecord(2, 0))
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".legacy"); err != nil {
		t.Fatalf("legacy backup missing: %v", err)
	}

	// A second resume reads the journal, not the legacy file.
	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Migrated() != "" {
		t.Fatal("second resume re-migrated")
	}
	if re.Len() != 3 {
		t.Fatalf("Len = %d after second resume", re.Len())
	}
}

// TestCheckpointLegacyTornFinalLineTolerated is satellite coverage: the
// legacy writer could die mid-write, leaving a truncated final JSON
// line. Migration must drop that line (the trial re-runs) instead of
// failing the resume.
func TestCheckpointLegacyTornFinalLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	writeLegacyCheckpoint(t, path, 7, testRecord(0, 0), testRecord(0, 1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":{"table":"test","row":0,"varia`)
	f.Close()

	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records", re.Len())
	}
}

func TestCheckpointLegacyMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	writeLegacyCheckpoint(t, path, 7, testRecord(0, 0))
	// Garbage with a valid record AFTER it: corruption mid-file, not a
	// torn final write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"key":{"table":"test","row":0,"variant":"with"},"trial":1,"seed":1,"attempts":1,"outcome":{"result":{"status":"ok","elapsed_ns":0,"bp_hit":false},"bp_wait_ns":0}}` + "\n")
	f.Close()

	if _, err := Open(path, 7, true); err == nil {
		t.Fatal("mid-file corruption should be rejected, not silently skipped")
	}
	// The refused file must remain in place, untouched.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("refused legacy file was moved: %v", err)
	}
}

func TestCheckpointResumeMissingPathStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written")
	cp, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("resuming a missing checkpoint should start fresh: %v", err)
	}
	defer cp.Close()
	if cp.Len() != 0 {
		t.Fatalf("Len = %d, want 0", cp.Len())
	}
	// The fresh journal must still carry a header so a later resume
	// validates the seed.
	var first []byte
	_, err = journal.Replay(path, func(lsn uint64, p []byte) error {
		if lsn == 1 {
			first = append([]byte(nil), p...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), `"campaign-checkpoint"`) {
		t.Fatalf("fresh journal missing header: %q", first)
	}
}

func TestNilCheckpointIsSafe(t *testing.T) {
	var cp *Checkpoint
	if _, ok := cp.Lookup(harness.TrialKey{}, 0); ok {
		t.Fatal("nil Lookup returned ok")
	}
	if err := cp.Append(Record{}); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 || cp.Close() != nil {
		t.Fatal("nil Len/Close misbehaved")
	}
	if cp.Migrated() != "" || cp.Recovery().Records != 0 {
		t.Fatal("nil Migrated/Recovery misbehaved")
	}
}
