package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/harness"
)

func testRecord(row, trial int) Record {
	return Record{
		Key:      harness.TrialKey{Table: "test", Row: row, Variant: "with"},
		Trial:    trial,
		Seed:     int64(row*100 + trial),
		Attempts: 1,
		Outcome: harness.TrialOutcome{
			Result: appkit.Result{Status: appkit.Stall, Detail: "lost wakeup", Elapsed: 3 * time.Millisecond, BPHit: true},
			BPWait: time.Millisecond,
			Incidents: map[string]int64{
				"watchdog": 1,
			},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord(0, 2)
	if err := cp.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want 1", re.Len())
	}
	got, ok := re.Lookup(want.Key, want.Trial)
	if !ok {
		t.Fatal("record not found after resume")
	}
	if got.Seed != want.Seed || got.Attempts != want.Attempts ||
		got.Outcome.Result != want.Outcome.Result ||
		got.Outcome.BPWait != want.Outcome.BPWait ||
		got.Outcome.Incidents["watchdog"] != 1 {
		t.Fatalf("resumed record = %+v, want %+v", got, want)
	}
}

func TestCheckpointSeedMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(testRecord(0, 0))
	cp.Close()

	_, err = Open(path, 8, true)
	if !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("resume with wrong seed: err = %v, want ErrSeedMismatch", err)
	}
	if !strings.Contains(err.Error(), "seed 7") {
		t.Fatalf("mismatch error should name the original seed: %v", err)
	}
}

func TestCheckpointTornFinalLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(testRecord(0, 0))
	cp.Append(testRecord(0, 1))
	cp.Close()
	// Simulate a crash mid-write: a truncated record on the final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":{"table":"test","row":0,"varia`)
	f.Close()

	re, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("torn final line should be tolerated: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records", re.Len())
	}
}

func TestCheckpointMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := Open(path, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(testRecord(0, 0))
	cp.Close()
	// Garbage with a valid record AFTER it: corruption mid-file, not a
	// torn final write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"key":{"table":"test","row":0,"variant":"with"},"trial":1,"seed":1,"attempts":1,"outcome":{"result":{"status":"ok","elapsed_ns":0,"bp_hit":false},"bp_wait_ns":0}}` + "\n")
	f.Close()

	if _, err := Open(path, 7, true); err == nil {
		t.Fatal("mid-file corruption should be rejected, not silently skipped")
	}
}

func TestCheckpointResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.jsonl")
	cp, err := Open(path, 7, true)
	if err != nil {
		t.Fatalf("resuming a missing checkpoint should start fresh: %v", err)
	}
	defer cp.Close()
	if cp.Len() != 0 {
		t.Fatalf("Len = %d, want 0", cp.Len())
	}
	// The fresh file must still carry a header so a later resume works.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"campaign-checkpoint"`) {
		t.Fatalf("fresh resume file missing header: %q", data)
	}
}

func TestNilCheckpointIsSafe(t *testing.T) {
	var cp *Checkpoint
	if _, ok := cp.Lookup(harness.TrialKey{}, 0); ok {
		t.Fatal("nil Lookup returned ok")
	}
	if err := cp.Append(Record{}); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 || cp.Close() != nil {
		t.Fatal("nil Len/Close misbehaved")
	}
}
