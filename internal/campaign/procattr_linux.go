//go:build linux

package campaign

import (
	"os/exec"
	"syscall"
)

// workerSysProcAttr places each trial worker in its own process group
// and arms the parent-death signal, the belt-and-braces answer to
// orphaned reproductions (issue: workers must be reaped even when the
// supervisor dies without running its own cleanup):
//
//   - Setpgid: the worker and everything it forks share a process
//     group, so the supervisor's kill reaches grandchildren too — a
//     deadlock reproduction that shells out cannot leave a straggler.
//   - Pdeathsig: the kernel SIGKILLs the worker the moment its parent
//     thread dies, so even `kill -9` of the supervisor (which runs no
//     deferred cleanup at all) reaps the tree.
func workerSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Setpgid: true, Pdeathsig: syscall.SIGKILL}
}

// killWorkerTree kills the worker's whole process group (negative pid),
// falling back to a direct kill if the group is already gone.
func killWorkerTree(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err == nil {
		return nil
	}
	return cmd.Process.Kill()
}
