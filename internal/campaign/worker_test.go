package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/core"
	"cbreak/internal/harness"
)

// TestServeTrialRoundTrip exercises the worker side of the protocol
// end to end with a synthetic (race-clean) spec: request JSON in,
// outcome JSON out.
func TestServeTrialRoundTrip(t *testing.T) {
	old := serveResolve
	defer func() { serveResolve = old }()
	key := harness.TrialKey{Table: "test", Row: 0, Variant: "base"}
	serveResolve = func(k harness.TrialKey) (harness.TrialSpec, bool) {
		if k != key {
			return harness.TrialSpec{}, false
		}
		return harness.TrialSpec{
			Key: k, Breakpoint: true,
			Run: func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				// Arm one breakpoint (single arrival, times out) so the
				// outcome carries real engine stats.
				e.Breakpoint("rt.bp").Trigger(core.NewConflictTrigger("rt.bp", &struct{}{}), true,
					core.Options{Timeout: time.Millisecond})
				return appkit.Result{Status: appkit.TestFail, Detail: "assert", Elapsed: 5 * time.Millisecond, BPHit: bp}
			},
		}, true
	}

	req, err := json.Marshal(WorkerRequest{Key: key, Trial: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ServeTrial(bytes.NewReader(req), &out); err != nil {
		t.Fatal(err)
	}
	var got harness.TrialOutcome
	if err := json.Unmarshal(lastLine(out.Bytes()), &got); err != nil {
		t.Fatalf("worker report unparsable: %v\n%s", err, out.String())
	}
	if got.Result.Status != appkit.TestFail || got.Result.Detail != "assert" {
		t.Fatalf("round-tripped outcome = %+v", got.Result)
	}
	// The worker snapshots the fresh engine it ran the trial on.
	if len(got.Stats) == 0 {
		t.Fatalf("outcome missing engine stats snapshots: %+v", got)
	}
}

func TestServeTrialUnknownKey(t *testing.T) {
	old := serveResolve
	defer func() { serveResolve = old }()
	serveResolve = func(harness.TrialKey) (harness.TrialSpec, bool) { return harness.TrialSpec{}, false }
	req, _ := json.Marshal(WorkerRequest{Key: harness.TrialKey{Table: "nope"}})
	err := ServeTrial(bytes.NewReader(req), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown trial key") {
		t.Fatalf("err = %v, want unknown trial key", err)
	}
}

func TestLastLine(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"one", "one"},
		{"one\n", "one"},
		{"noise\nreport", "report"},
		{"noise\nreport\n\n", "report"},
	}
	for _, c := range cases {
		if got := string(lastLine([]byte(c.in))); got != c.want {
			t.Fatalf("lastLine(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// The subprocess executor tests fake the worker with /bin/sh so they
// stay race-clean and independent of the cbtables binary.

func TestSubprocessExecutorParsesLastReportLine(t *testing.T) {
	want := harness.TrialOutcome{
		Result: appkit.Result{Status: appkit.Stall, Detail: "lost wakeup", Elapsed: time.Millisecond, BPHit: true},
		BPWait: 42,
	}
	report, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	ex := SubprocessExecutor("/bin/sh", "-c",
		"cat >/dev/null; echo 'incidental stdout noise'; echo '"+string(report)+"'")
	got, err := ex(context.Background(), WorkerRequest{Key: harness.TrialKey{Table: "test"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result != want.Result || got.BPWait != want.BPWait {
		t.Fatalf("parsed outcome = %+v, want %+v", got, want)
	}
}

func TestSubprocessExecutorCrashIsError(t *testing.T) {
	ex := SubprocessExecutor("/bin/sh", "-c", "echo doomed >&2; exit 3")
	_, err := ex(context.Background(), WorkerRequest{Key: harness.TrialKey{Table: "test"}})
	if err == nil {
		t.Fatal("crashing worker should be an error")
	}
	if !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("error should carry worker stderr: %v", err)
	}
}

func TestSubprocessExecutorKilledAtDeadline(t *testing.T) {
	ex := SubprocessExecutor("/bin/sh", "-c", "sleep 30")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ex(ctx, WorkerRequest{Key: harness.TrialKey{Table: "test"}})
	if err == nil {
		t.Fatal("hung worker should be an error after the deadline kill")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("kill took %v; the deadline did not terminate the worker", elapsed)
	}
}

func TestInProcessExecutorChaosCrash(t *testing.T) {
	ex := InProcessExecutor(func(harness.TrialKey) (harness.TrialSpec, bool) {
		t.Fatal("chaos crash must not reach the resolver")
		return harness.TrialSpec{}, false
	})
	_, err := ex(context.Background(), WorkerRequest{Chaos: ChaosCrash})
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("err = %v", err)
	}
}
