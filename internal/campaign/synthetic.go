package campaign

import (
	"context"
	"fmt"
	"os"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/harness"
)

// SyntheticOutcome derives a trial outcome purely from the trial's
// deterministic seed: same request, same outcome, in any process, at
// any wall-clock time. Synthetic campaigns exist to test the campaign
// machinery itself — crash/resume equivalence in particular. The CI
// crash-recovery smoke SIGKILLs a synthetic campaign at a random
// dispatch, resumes it, and diffs the rendered tables byte-for-byte
// against an uncrashed control: only deterministic outcomes (including
// the Elapsed fields that become the tables' MTTE column) make
// "byte-identical" a meaningful assertion.
func SyntheticOutcome(req WorkerRequest) harness.TrialOutcome {
	u := uint64(req.Seed)
	st := appkit.OK
	detail := ""
	if u%3 == 0 {
		st = appkit.Stall
		detail = "synthetic stall"
	}
	return harness.TrialOutcome{
		Result: appkit.Result{
			Status: st, Detail: detail, BPHit: st != appkit.OK,
			Elapsed: time.Duration(u%1000) * time.Microsecond,
		},
		BPWait: time.Duration(u % 500),
	}
}

// SyntheticExecutor returns an in-process Executor producing
// SyntheticOutcome for every request. It honours crash chaos (so the
// supervisor's failure paths stay exercised) and never blocks.
func SyntheticExecutor() Executor {
	return func(ctx context.Context, req WorkerRequest) (harness.TrialOutcome, error) {
		if req.Chaos == ChaosCrash {
			return harness.TrialOutcome{}, fmt.Errorf("worker %s: injected crash", req.Key)
		}
		return SyntheticOutcome(req), nil
	}
}

// killSelf terminates this process immediately and without cleanup —
// SIGKILL on Unix — modelling an operator `kill -9`, an OOM kill, or a
// power cut for the crash-recovery harness. It does not return.
func killSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
		// Kill is asynchronous on some platforms; never execute past it.
		select {}
	}
	os.Exit(137)
}
