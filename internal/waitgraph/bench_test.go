package waitgraph

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/core"
)

// These benchmarks measure the supervisor's steady-state tax on the
// engine's contended arrival path: the same workload as core's
// BenchmarkEngineContention (G goroutines hammering K breakpoints
// through handles on the hot rejection path), with and without a
// supervisor scanning in the background. The scan locks one shard at a
// time and the arrival path itself is untouched, so the two series
// should be within noise of each other — CI captures both in
// BENCH_engine.json so the comparison is part of the artifact.

var benchSink atomic.Uint64

func benchContention(b *testing.B, supervised bool) {
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			e := core.NewEngine()
			e.OrderWindow = 0
			if supervised {
				sup := New(e, Config{Interval: 5 * time.Millisecond})
				sup.Start()
				defer sup.Stop()
			}
			handles := make([]*core.Breakpoint, k)
			for i := range handles {
				handles[i] = e.Breakpoint(fmt.Sprintf("bench.wg%d", i))
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				h := handles[int(next.Add(1))%k]
				t := core.NewPredTrigger(h.Name(), nil, func() bool { return false }, nil)
				n := uint64(0)
				for pb.Next() {
					if h.Trigger(t, true, core.Options{}) {
						n++
					}
				}
				benchSink.Add(n)
			})
		})
	}
}

func BenchmarkEngineContentionSupervisorOff(b *testing.B) { benchContention(b, false) }

func BenchmarkEngineContentionSupervisorOn(b *testing.B) { benchContention(b, true) }
