// Package waitgraph assembles a live wait-for graph of the program
// under test and runs cycle and stall detection over it. It is the
// reproduction's self-healing layer: the paper's safety argument is
// that a breakpoint "never postpones a thread forever" because of the
// timeout, but inside deliberately-deadlocking programs (mysql, jigsaw)
// a postponed goroutine holding a locks.Mutex wedges its partners for
// the full timeout on every trial — and an application-only lock cycle
// wedges them until the trial deadline. The wait graph turns both
// pathologies into structured diagnoses in milliseconds:
//
//   - an application-only lock cycle is reported as a confirmed
//     deadlock (ReportDeadlock), naming the exact goroutines, locks,
//     classes, and wait sites in the cycle;
//   - a postponed goroutine whose held locks (transitively) block other
//     goroutines is reported as a postponement stall
//     (ReportPostponeStall), and the supervisor breaks the cycle by
//     force-releasing the postponed goroutine early — safe by the
//     paper's own timeout argument, since early release is
//     indistinguishable from an expired budget.
//
// Edges come from three sources: the locks registry's waiter map
// (goroutine → mutex → owners, with RWMutex ownership widened to the
// reader set), the engine's postponed sets (goroutine → breakpoint
// shard, two-way waiters), and the engine's multi/rendezvous waiters
// (same enumeration, arity > 2). Snapshots are assembled lock-free or
// one shard/registry at a time — capturing a graph never stops the
// world, so a snapshot is a sample, not a transaction; the supervisor
// compensates by requiring a finding to persist across consecutive
// scans before acting on it.
package waitgraph

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/locks"
)

// Graph is one snapshot of the live wait-for graph.
type Graph struct {
	// When is the snapshot timestamp.
	When time.Time
	// LockEdges are the lock-wait edges: one per goroutine currently
	// blocked inside an instrumented lock acquisition.
	LockEdges []locks.WaitEdge
	// Postponed are the engine's currently-postponed goroutines
	// (two-way and multi-way waiters).
	Postponed []core.PostponedWaiter
	// Held maps each goroutine to its held-lock stack, for tracing
	// which blocked goroutines a postponed goroutine is wedging.
	Held map[uint64][]*locks.Mutex
}

// Capture snapshots the wait-for graph of the locks registry and the
// given engine's postponed sets.
func Capture(e *core.Engine) Graph {
	return Graph{
		When:      time.Now(),
		LockEdges: locks.WaitEdges(),
		Postponed: e.PostponedWaiters(),
		Held:      locks.HeldAll(),
	}
}

// ReportKind classifies a wait-graph finding.
type ReportKind string

// Report kinds.
const (
	// ReportDeadlock: an application-only lock cycle — a true deadlock
	// with no postponement edge to break.
	ReportDeadlock ReportKind = "deadlock"
	// ReportPostponeStall: a postponed goroutine's held locks
	// (transitively) block other goroutines; breaking the postponement
	// un-wedges them.
	ReportPostponeStall ReportKind = "postpone-stall"
)

// Report is one structured wait-graph finding. All fields are exported
// and JSON-friendly so campaign journals can embed reports verbatim.
type Report struct {
	// Kind classifies the finding.
	Kind ReportKind `json:"kind"`
	// GIDs are the goroutines involved: for a deadlock, the cycle in
	// order; for a postponement stall, the postponed victim followed by
	// the goroutines it wedges.
	GIDs []uint64 `json:"gids"`
	// Locks are the contested lock names along the cycle or chain,
	// aligned with the waiting goroutine in GIDs where applicable.
	Locks []string `json:"locks,omitempty"`
	// Classes are the lock class names aligned with Locks ("" for
	// untagged locks).
	Classes []string `json:"classes,omitempty"`
	// Sites are the source-site labels of the blocked acquisitions,
	// aligned with Locks.
	Sites []string `json:"sites,omitempty"`
	// Breakpoints are the breakpoint names involved (the postponement
	// edges); empty for an application-only deadlock.
	Breakpoints []string `json:"breakpoints,omitempty"`
	// Victim is the postponed goroutine a cycle break would release (0
	// for deadlock reports).
	Victim uint64 `json:"victim,omitempty"`
	// Desc is the human-readable rendering of the finding.
	Desc string `json:"desc"`
}

// String returns the report's description.
func (r Report) String() string { return string(r.Kind) + ": " + r.Desc }

// signature canonically identifies a finding across scans: kind plus
// the sorted participant set. Rotations of the same cycle and repeated
// sightings of the same stall collapse to one signature.
func (r Report) signature() string {
	gids := append([]uint64(nil), r.GIDs...)
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	var b strings.Builder
	b.WriteString(string(r.Kind))
	for _, g := range gids {
		fmt.Fprintf(&b, "/g%d", g)
	}
	locksSorted := append([]string(nil), r.Locks...)
	sort.Strings(locksSorted)
	for _, l := range locksSorted {
		b.WriteString("/" + l)
	}
	for _, bp := range r.Breakpoints {
		b.WriteString("/bp:" + bp)
	}
	return b.String()
}

// Analyze runs cycle and stall detection over the snapshot and returns
// every finding: application-only lock cycles first, then postponement
// stalls. Deterministic for a given snapshot.
func (g Graph) Analyze() []Report {
	out := g.deadlockCycles()
	return append(out, g.postponeStalls()...)
}

// deadlockCycles finds every cycle in the lock-wait digraph (waiter →
// owner, with RWMutex edges fanning out to every reader). Self-edges —
// a goroutine blocked on a lock it already owns, the re-entrant
// acquisition case — are 1-cycles. A cycle of lock edges contains no
// postponed goroutine (a postponed goroutine is parked in the engine,
// not blocked in an acquisition), so every cycle found here is an
// application-only deadlock.
func (g Graph) deadlockCycles() []Report {
	edgeBy := make(map[uint64]locks.WaitEdge, len(g.LockEdges))
	for _, e := range g.LockEdges {
		edgeBy[e.Waiter] = e
	}
	starts := make([]uint64, 0, len(edgeBy))
	for gid := range edgeBy {
		starts = append(starts, gid)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	seen := map[string]bool{}
	var out []Report
	for _, start := range starts {
		var path []uint64
		onPath := map[uint64]int{}
		var dfs func(gid uint64)
		dfs = func(gid uint64) {
			if at, ok := onPath[gid]; ok {
				r := g.cycleReport(path[at:], edgeBy)
				if sig := r.signature(); !seen[sig] {
					seen[sig] = true
					out = append(out, r)
				}
				return
			}
			e, blocked := edgeBy[gid]
			if !blocked {
				return
			}
			onPath[gid] = len(path)
			path = append(path, gid)
			for _, o := range e.Owners {
				dfs(o)
			}
			path = path[:len(path)-1]
			delete(onPath, gid)
		}
		dfs(start)
	}
	return out
}

// cycleReport renders one lock cycle as a deadlock report.
func (g Graph) cycleReport(cycle []uint64, edgeBy map[uint64]locks.WaitEdge) Report {
	r := Report{Kind: ReportDeadlock, GIDs: append([]uint64(nil), cycle...)}
	var parts []string
	for _, gid := range cycle {
		e := edgeBy[gid]
		r.Locks = append(r.Locks, e.Lock)
		r.Classes = append(r.Classes, e.Class)
		r.Sites = append(r.Sites, e.Site)
		parts = append(parts, waitDesc(gid, e))
	}
	r.Desc = strings.Join(parts, " -> ")
	return r
}

// waitDesc renders one lock-wait edge for report descriptions.
func waitDesc(gid uint64, e locks.WaitEdge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "g%d waits %s", gid, e.Lock)
	if e.Class != "" {
		fmt.Fprintf(&b, " [%s]", e.Class)
	}
	if e.Site != "" {
		fmt.Fprintf(&b, " at %s", e.Site)
	}
	if len(e.Owners) > 0 {
		owners := make([]string, len(e.Owners))
		for i, o := range e.Owners {
			owners[i] = fmt.Sprintf("g%d", o)
		}
		fmt.Fprintf(&b, " (held by %s)", strings.Join(owners, ","))
	}
	return b.String()
}

// postponeStalls finds every postponed goroutine whose held locks block
// other goroutines, directly or transitively: the postponement edge
// (victim → breakpoint) closes a cycle through the application's locks,
// and releasing the victim early breaks it.
func (g Graph) postponeStalls() []Report {
	if len(g.Postponed) == 0 {
		return nil
	}
	blockedOn := make(map[*locks.Mutex][]locks.WaitEdge, len(g.LockEdges))
	for _, e := range g.LockEdges {
		if m := e.Mutex(); m != nil {
			blockedOn[m] = append(blockedOn[m], e)
		}
	}
	if len(blockedOn) == 0 {
		return nil
	}
	var out []Report
	for _, p := range g.Postponed {
		held := g.Held[p.GID]
		if len(held) == 0 {
			continue
		}
		// BFS over the wedged closure: goroutines blocked on the
		// victim's held locks, plus goroutines blocked on locks THOSE
		// goroutines hold, and so on.
		frontier := append([]*locks.Mutex(nil), held...)
		visited := map[*locks.Mutex]bool{}
		wedgedSet := map[uint64]bool{}
		var wedged []locks.WaitEdge
		for len(frontier) > 0 {
			m := frontier[0]
			frontier = frontier[1:]
			if visited[m] {
				continue
			}
			visited[m] = true
			for _, e := range blockedOn[m] {
				if e.Waiter == p.GID || wedgedSet[e.Waiter] {
					continue
				}
				wedgedSet[e.Waiter] = true
				wedged = append(wedged, e)
				frontier = append(frontier, g.Held[e.Waiter]...)
			}
		}
		if len(wedged) == 0 {
			continue
		}
		sort.Slice(wedged, func(i, j int) bool { return wedged[i].Waiter < wedged[j].Waiter })
		r := Report{Kind: ReportPostponeStall, Victim: p.GID,
			GIDs: []uint64{p.GID}, Breakpoints: []string{p.Breakpoint}}
		parts := []string{fmt.Sprintf("g%d postponed on %s (slot %d/%d) holding %s",
			p.GID, p.Breakpoint, p.Slot, p.Arity, lockNames(held))}
		for _, e := range wedged {
			r.GIDs = append(r.GIDs, e.Waiter)
			r.Locks = append(r.Locks, e.Lock)
			r.Classes = append(r.Classes, e.Class)
			r.Sites = append(r.Sites, e.Site)
			parts = append(parts, waitDesc(e.Waiter, e))
		}
		r.Desc = strings.Join(parts, "; ")
		out = append(out, r)
	}
	return out
}

// lockNames renders a held-lock stack for descriptions.
func lockNames(ms []*locks.Mutex) string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return strings.Join(names, ",")
}
