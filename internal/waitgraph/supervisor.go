package waitgraph

import (
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/telemetry"
)

// Config tunes a Supervisor. The zero value is usable: 5ms scans,
// findings confirmed after 2 consecutive sightings, recovery enabled.
type Config struct {
	// Interval is the scan period. 0 defaults to 5ms.
	Interval time.Duration
	// ConfirmAfter is how many consecutive scans must observe a finding
	// before the supervisor acts on it — the debounce against acting on
	// a torn snapshot (capture is a sample, not a transaction). 0
	// defaults to 2.
	ConfirmAfter int
	// DisableRecovery turns off cycle breaking: stalls are still
	// detected and reported, but no postponed goroutine is
	// force-released. Deadlock confirmation is unaffected.
	DisableRecovery bool
	// OnReport, when set, is invoked (on the scan goroutine) for every
	// confirmed finding, after recovery has been attempted.
	OnReport func(Report)
}

// Supervisor runs the wait-graph scan loop against one engine: every
// interval it captures the graph, analyzes it, and acts on findings
// that persist across ConfirmAfter consecutive scans. A confirmed
// postponement stall is broken by force-releasing the postponed victim
// through the engine's shared release path (recorded as a cycle-break
// incident); a confirmed application-only cycle is latched as a
// deadlock confirmation (incident + Confirmed channel) so a harness can
// classify the trial immediately instead of waiting out its deadline.
//
// Goroutines already blocked when the supervisor starts are baselined
// and ignored: sequential in-process trials deliberately leak
// deadlocked goroutines, and a supervisor must not keep re-confirming
// a previous trial's corpse.
type Supervisor struct {
	e   *core.Engine
	cfg Config

	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{}
	reports  []Report
	pending  map[string]*sighting
	acted    map[string]bool
	baseline map[uint64]bool

	confirmed     chan struct{}
	confirmedOnce sync.Once

	scans atomic.Int64
}

// sighting tracks how many consecutive scans observed one finding.
type sighting struct {
	report   Report
	streak   int
	lastScan int64
}

// New returns a supervisor for the engine. Start it with Start.
func New(e *core.Engine, cfg Config) *Supervisor {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.ConfirmAfter <= 0 {
		cfg.ConfirmAfter = 2
	}
	return &Supervisor{
		e:         e,
		cfg:       cfg,
		pending:   map[string]*sighting{},
		acted:     map[string]bool{},
		confirmed: make(chan struct{}),
	}
}

// Start baselines the currently-blocked goroutines and launches the
// scan loop. Idempotent while running; stop with Stop.
func (s *Supervisor) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.baseline = map[uint64]bool{}
	for _, e := range Capture(s.e).LockEdges {
		s.baseline[e.Waiter] = true
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.Scan()
			}
		}
	}()
}

// Stop halts the scan loop and waits for it to exit. No-op when not
// running.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Confirmed returns a channel closed on the first confirmed deadlock
// (application-only cycle). Harnesses select on it against the trial's
// own completion to classify deadlocks in milliseconds.
func (s *Supervisor) Confirmed() <-chan struct{} { return s.confirmed }

// Reports returns every confirmed finding so far, in confirmation
// order.
func (s *Supervisor) Reports() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Report(nil), s.reports...)
}

// Scans returns how many scans have run; tests use it to wait for the
// loop to have looked at least once.
func (s *Supervisor) Scans() int64 { return s.scans.Load() }

// Scan captures and analyzes the wait graph once, acting on findings
// confirmed by consecutive sightings. It is the loop body, exported so
// tests (and one-shot classifiers) can drive it synchronously.
func (s *Supervisor) Scan() {
	g := Capture(s.e)
	found := g.Analyze()
	scan := s.scans.Add(1)

	s.mu.Lock()
	var confirmed []Report
	for _, r := range found {
		if s.baselined(r) {
			continue
		}
		sig := r.signature()
		if s.acted[sig] {
			continue
		}
		sg := s.pending[sig]
		if sg == nil || sg.lastScan != scan-1 {
			sg = &sighting{}
			s.pending[sig] = sg
		}
		sg.report = r
		sg.streak++
		sg.lastScan = scan
		if sg.streak >= s.cfg.ConfirmAfter {
			s.acted[sig] = true
			delete(s.pending, sig)
			confirmed = append(confirmed, r)
		}
	}
	// Drop stale sightings so the pending map cannot grow without
	// bound across a long campaign.
	for sig, sg := range s.pending {
		if sg.lastScan != scan {
			delete(s.pending, sig)
		}
	}
	s.reports = append(s.reports, confirmed...)
	s.mu.Unlock()

	for _, r := range confirmed {
		s.act(r)
	}
}

// baselined reports whether every lock-blocked goroutine of the finding
// predates the supervisor — a leaked cycle from a previous trial. A
// postponement stall's victim is, by construction, currently postponed
// on the live engine, so stalls are only baselined when all their
// wedged waiters are stale.
func (s *Supervisor) baselined(r Report) bool {
	if len(s.baseline) == 0 {
		return false
	}
	for _, gid := range r.GIDs {
		if gid == r.Victim {
			continue
		}
		if !s.baseline[gid] {
			return false
		}
	}
	return true
}

// act performs the confirmed finding's recovery/diagnosis. Called off
// the supervisor mutex so OnReport callbacks may call back into the
// supervisor.
func (s *Supervisor) act(r Report) {
	switch r.Kind {
	case ReportPostponeStall:
		if !s.cfg.DisableRecovery {
			// The shared forced-release path makes this idempotent
			// against the watchdog, Reset, and a natural timeout: if
			// the victim is already gone there is nothing to break and
			// no incident is recorded by the release itself.
			s.e.ForceRelease(r.Breakpoints[0], r.Victim, guard.KindCycleBreak,
				"wait-graph cycle broken: "+r.Desc)
		}
	case ReportDeadlock:
		s.e.RecordIncident(guard.KindDeadlockConfirmed, "", r.GIDs[0],
			"wait-graph deadlock confirmed: "+r.Desc)
		s.confirmedOnce.Do(func() { close(s.confirmed) })
	}
	// Publish the finding on the engine's telemetry bus — the same
	// fan-out the durable sink and live streams consume, replacing the
	// OnReport-only reporting path (OnReport stays as an in-process
	// hook). The bus shape is the flattened telemetry.Report; the full
	// structured finding remains available from Reports().
	s.e.Bus().Publish(telemetry.Record{Kind: telemetry.RecordReport,
		Report: r.telemetryReport()})
	if s.cfg.OnReport != nil {
		s.cfg.OnReport(r)
	}
}

// telemetryReport flattens the finding into the bus shape
// (telemetry.Report sits below this package in the import graph).
func (r Report) telemetryReport() telemetry.Report {
	return telemetry.Report{
		When:        time.Now(),
		Kind:        string(r.Kind),
		Desc:        r.Desc,
		Breakpoints: append([]string(nil), r.Breakpoints...),
		GIDs:        append([]uint64(nil), r.GIDs...),
		Victim:      r.Victim,
	}
}

// RegisterMetrics registers the supervisor's catalog collector on reg:
// the scan counter (confirmed-finding totals are counted off the bus by
// telemetry.Registry.WireBus, which sees every act()).
func (s *Supervisor) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Desc: telemetry.DescWaitgraphScans,
			Value: float64(s.Scans())})
	})
}
