package waitgraph

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/locks"
)

// The locks registry is process-global and several tests here
// deliberately leak blocked goroutines (that is the condition under
// test), so every assertion scopes to the test's own lock names and
// every supervisor is started before its test creates trouble —
// pre-existing wreckage is baselined away.

func testSupervisor(e *core.Engine, cfg Config) *Supervisor {
	if cfg.Interval == 0 {
		cfg.Interval = time.Millisecond
	}
	return New(e, cfg)
}

func reportsMentioning(rs []Report, lock string) []Report {
	var out []Report
	for _, r := range rs {
		for _, l := range r.Locks {
			if l == lock {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

func TestSupervisorConfirmsDeadlock(t *testing.T) {
	e := core.NewEngine()
	sup := testSupervisor(e, Config{})
	sup.Start()
	defer sup.Stop()

	cls := locks.NewClass("WGDeadlock")
	a := locks.NewClassMutex("wg-dl-A", cls)
	b := locks.NewClassMutex("wg-dl-B", cls)
	gids := make(chan uint64, 2)
	acquired := make(chan struct{}, 2)
	// Cross-acquisition deadlock, deliberately leaked.
	go func() {
		gids <- locks.GoroutineID()
		a.LockAt("siteA")
		acquired <- struct{}{}
		time.Sleep(20 * time.Millisecond)
		// Blocks forever.
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the supervisor must confirm
		b.LockAt("siteA2")
	}()
	go func() {
		gids <- locks.GoroutineID()
		b.LockAt("siteB")
		acquired <- struct{}{}
		time.Sleep(20 * time.Millisecond)
		// Blocks forever.
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the supervisor must confirm
		a.LockAt("siteB2")
	}()
	want := map[uint64]bool{<-gids: true, <-gids: true}
	<-acquired
	<-acquired

	select {
	case <-sup.Confirmed():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor never confirmed the deadlock")
	}
	rs := reportsMentioning(sup.Reports(), "wg-dl-A")
	if len(rs) == 0 {
		t.Fatalf("no report names wg-dl-A: %v", sup.Reports())
	}
	r := rs[0]
	if r.Kind != ReportDeadlock {
		t.Fatalf("kind = %s", r.Kind)
	}
	if len(r.GIDs) != 2 || !want[r.GIDs[0]] || !want[r.GIDs[1]] {
		t.Fatalf("cycle gids = %v, want the two lockers %v", r.GIDs, want)
	}
	joined := strings.Join(r.Locks, ",")
	if !strings.Contains(joined, "wg-dl-A") || !strings.Contains(joined, "wg-dl-B") {
		t.Fatalf("cycle locks = %v", r.Locks)
	}
	for _, c := range r.Classes {
		if c != "WGDeadlock" {
			t.Fatalf("classes = %v", r.Classes)
		}
	}
	sites := strings.Join(r.Sites, ",")
	if !strings.Contains(sites, "siteA2") || !strings.Contains(sites, "siteB2") {
		t.Fatalf("sites = %v", r.Sites)
	}
	if n := e.IncidentCount(guard.KindDeadlockConfirmed); n < 1 {
		t.Fatalf("deadlock-confirmed incidents = %d", n)
	}
	if !strings.Contains(r.Desc, "held by") {
		t.Fatalf("desc lacks ownership: %q", r.Desc)
	}
}

// Satellite edge case: a re-entrant acquisition under a trigger action
// is a self-edge — a 1-cycle in the wait graph.
func TestAnalyzeSelfEdgeFromReentrantTriggerAction(t *testing.T) {
	e := core.NewEngine()
	l := locks.NewMutex("wg-self")
	gidCh := make(chan uint64, 1)
	go func() {
		gidCh <- locks.GoroutineID()
		l.LockAt("outer")
		// The trigger never matches; on release its action re-acquires
		// the lock the goroutine already holds. Leaks by design.
		e.TriggerHereAnd(core.NewConflictTrigger("wg.self.bp", new(int)), true,
			core.Options{Timeout: time.Millisecond}, func() {
				l.LockAt("reentrant")
			})
	}()
	gid := <-gidCh

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Key on the goroutine id, not just the lock name: under -count>1
		// the previous iteration's leaked goroutine still shows a
		// self-edge on an identically-named lock.
		for _, r := range reportsMentioning(Capture(e).Analyze(), "wg-self") {
			if len(r.GIDs) != 1 || r.GIDs[0] != gid {
				continue
			}
			if r.Kind != ReportDeadlock {
				t.Fatalf("kind = %s", r.Kind)
			}
			if r.Sites[0] != "reentrant" {
				t.Fatalf("site = %q", r.Sites[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("self-edge never detected")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorBreaksPostponeStall(t *testing.T) {
	e := core.NewEngine()
	sup := testSupervisor(e, Config{})
	sup.Start()
	defer sup.Stop()

	l := locks.NewMutex("wg-stall-L")
	victimGID := make(chan uint64, 1)
	victimOut := make(chan core.Outcome, 1)
	go func() {
		victimGID <- locks.GoroutineID()
		l.LockAt("victim-site")
		defer l.Unlock()
		// 30s budget: only a cycle break can return this quickly.
		victimOut <- e.TriggerOutcome(core.NewConflictTrigger("wg.stall.bp", new(int)),
			true, core.Options{Timeout: 30 * time.Second})
	}()
	vg := <-victimGID
	waitPostponed(t, e, "wg.stall.bp") // victim holds the lock and is parked
	blockedElapsed := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		l.LockAt("wedged-site")
		l.Unlock()
		blockedElapsed <- time.Since(start)
	}()

	start := time.Now()
	select {
	case out := <-victimOut:
		if out != core.OutcomeTimeout {
			t.Fatalf("victim outcome = %v, want OutcomeTimeout", out)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("victim never force-released")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cycle break took %v", elapsed)
	}
	if elapsed := <-blockedElapsed; elapsed > 10*time.Second {
		t.Fatalf("wedged goroutine blocked for %v", elapsed)
	}

	rs := reportsMentioning(sup.Reports(), "wg-stall-L")
	if len(rs) == 0 {
		t.Fatalf("no stall report names wg-stall-L: %v", sup.Reports())
	}
	r := rs[0]
	if r.Kind != ReportPostponeStall {
		t.Fatalf("kind = %s", r.Kind)
	}
	if r.Victim != vg {
		t.Fatalf("victim = g%d, want g%d", r.Victim, vg)
	}
	if len(r.Breakpoints) != 1 || r.Breakpoints[0] != "wg.stall.bp" {
		t.Fatalf("breakpoints = %v", r.Breakpoints)
	}
	if r.Sites[0] != "wedged-site" {
		t.Fatalf("sites = %v", r.Sites)
	}
	if n := e.IncidentCount(guard.KindCycleBreak); n != 1 {
		t.Fatalf("cycle-break incidents = %d, want 1", n)
	}
	if !strings.Contains(r.Desc, "wg.stall.bp") || !strings.Contains(r.Desc, "wg-stall-L") {
		t.Fatalf("desc = %q", r.Desc)
	}
}

// Satellite edge case: a 3-party chain — the postponed victim wedges
// one goroutine directly and a second transitively — with a second
// breakpoint's stall confirmed in the same run. The supervisor is
// driven synchronously with Scan so the full topology is assembled
// before any cycle break can fire.
func TestThreePartyChainAcrossTwoBreakpoints(t *testing.T) {
	e := core.NewEngine()
	sup := testSupervisor(e, Config{})

	la := locks.NewMutex("wg-3p-LA")
	lb := locks.NewMutex("wg-3p-LB")
	lc := locks.NewMutex("wg-3p-LC")
	var done sync.WaitGroup

	// Victim 1: holds LA, postponed on B1 with a huge budget.
	v1GID := make(chan uint64, 1)
	done.Add(1)
	go func() {
		defer done.Done()
		v1GID <- locks.GoroutineID()
		la.Lock()
		defer la.Unlock()
		e.TriggerOutcome(core.NewConflictTrigger("wg.3p.b1", new(int)), true,
			core.Options{Timeout: 30 * time.Second})
	}()
	vg1 := <-v1GID
	waitPostponed(t, e, "wg.3p.b1") // victim 1 holds LA and is parked
	// Party 2: holds LB, blocks on LA (wedged directly by victim 1).
	g2GID := make(chan uint64, 1)
	done.Add(1)
	go func() {
		defer done.Done()
		g2GID <- locks.GoroutineID()
		lb.Lock()
		defer lb.Unlock()
		la.Lock()
		la.Unlock()
	}()
	gg2 := <-g2GID
	waitBlocked(t, "wg-3p-LA")
	// Party 3: blocks on LB (wedged transitively through party 2).
	g3GID := make(chan uint64, 1)
	done.Add(1)
	go func() {
		defer done.Done()
		g3GID <- locks.GoroutineID()
		lb.Lock()
		lb.Unlock()
	}()
	gg3 := <-g3GID
	waitBlocked(t, "wg-3p-LB")
	// Victim 2: a second breakpoint's stall, wedging one goroutine on LC.
	done.Add(1)
	go func() {
		defer done.Done()
		lc.Lock()
		defer lc.Unlock()
		e.TriggerOutcome(core.NewConflictTrigger("wg.3p.b2", new(int)), true,
			core.Options{Timeout: 30 * time.Second})
	}()
	waitPostponed(t, e, "wg.3p.b2") // victim 2 holds LC and is parked
	done.Add(1)
	go func() {
		defer done.Done()
		lc.Lock()
		lc.Unlock()
	}()
	waitBlocked(t, "wg-3p-LC")

	// Two synchronous scans: sight, confirm, break both cycles.
	sup.Scan()
	sup.Scan()

	finished := make(chan struct{})
	go func() { done.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(20 * time.Second):
		t.Fatal("cycle breaks never released the parties")
	}

	var chain, second *Report
	rs := sup.Reports()
	for i, r := range rs {
		if r.Kind != ReportPostponeStall {
			continue
		}
		switch r.Breakpoints[0] {
		case "wg.3p.b1":
			if len(r.GIDs) == 3 {
				chain = &rs[i]
			}
		case "wg.3p.b2":
			second = &rs[i]
		}
	}
	if chain == nil {
		t.Fatalf("no 3-party stall report for wg.3p.b1: %v", sup.Reports())
	}
	if chain.Victim != vg1 {
		t.Fatalf("chain victim = g%d, want g%d", chain.Victim, vg1)
	}
	got := map[uint64]bool{}
	for _, g := range chain.GIDs {
		got[g] = true
	}
	if !got[vg1] || !got[gg2] || !got[gg3] {
		t.Fatalf("chain gids = %v, want {%d,%d,%d}", chain.GIDs, vg1, gg2, gg3)
	}
	joined := strings.Join(chain.Locks, ",")
	if !strings.Contains(joined, "wg-3p-LA") || !strings.Contains(joined, "wg-3p-LB") {
		t.Fatalf("chain locks = %v", chain.Locks)
	}
	if second == nil {
		t.Fatalf("no stall report for the second breakpoint: %v", sup.Reports())
	}
}

// waitPostponed waits until a goroutine is postponed on the named
// breakpoint.
func waitPostponed(t *testing.T, e *core.Engine, bp string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.PostponedCount(bp) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("nobody ever postponed on %s", bp)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitBlocked waits until some goroutine shows a wait edge on the named
// lock.
func waitBlocked(t *testing.T, lock string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, e := range locks.WaitEdges() {
			if e.Lock == lock {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("nobody ever blocked on %s", lock)
		}
		time.Sleep(time.Millisecond)
	}
}

// Satellite edge case: scanning must tolerate Reset swapping the shard
// registry underneath it. Run with -race.
func TestScanRacesReset(t *testing.T) {
	e := core.NewEngine()
	sup := testSupervisor(e, Config{Interval: 200 * time.Microsecond})
	sup.Start()
	defer sup.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names := []string{"wg.race.a", "wg.race.b"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.TriggerHere(core.NewConflictTrigger(names[i%2], new(int)), i%2 == 0,
					core.Options{Timeout: 2 * time.Millisecond})
			}
		}(i)
	}
	for j := 0; j < 50; j++ {
		e.Reset()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	e.Reset()
	// The counter must balance once everything has drained.
	deadline := time.Now().Add(5 * time.Second)
	for e.PostponedTotal() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("PostponedTotal = %d after drain, want 0", e.PostponedTotal())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorBaselinesPreexistingCycles(t *testing.T) {
	// Leak a deadlock BEFORE the supervisor starts.
	a := locks.NewMutex("wg-base-A")
	b := locks.NewMutex("wg-base-B")
	gids := make(chan uint64, 2)
	acquired := make(chan struct{}, 2)
	go func() {
		gids <- locks.GoroutineID()
		a.Lock()
		acquired <- struct{}{}
		time.Sleep(10 * time.Millisecond)
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the supervisor must confirm
		b.Lock()
	}()
	go func() {
		gids <- locks.GoroutineID()
		b.Lock()
		acquired <- struct{}{}
		time.Sleep(10 * time.Millisecond)
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the supervisor must confirm
		a.Lock()
	}()
	leaked := map[uint64]bool{<-gids: true, <-gids: true}
	<-acquired
	<-acquired
	// Wait for THIS iteration's goroutines to block (by gid — under
	// -count>1 a previous iteration's leaked cycle shares the lock names
	// and would satisfy a name-based wait before these block).
	deadline := time.Now().Add(5 * time.Second)
	for blocked := 0; blocked < 2; {
		blocked = 0
		for _, e := range locks.WaitEdges() {
			if leaked[e.Waiter] {
				blocked++
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("leaked cycle never formed")
		}
		time.Sleep(time.Millisecond)
	}

	e := core.NewEngine()
	sup := testSupervisor(e, Config{})
	sup.Start()
	defer sup.Stop()
	waitScans(t, sup, 10)
	for _, r := range sup.Reports() {
		for _, g := range r.GIDs {
			if leaked[g] {
				t.Fatalf("supervisor confirmed a pre-existing cycle: %v", r)
			}
		}
	}
	select {
	case <-sup.Confirmed():
		t.Fatal("Confirmed closed for a baselined cycle")
	default:
	}
}

func waitScans(t *testing.T, sup *Supervisor, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sup.Scans() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d scans ran", sup.Scans())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReportSignatureCanonical(t *testing.T) {
	r1 := Report{Kind: ReportDeadlock, GIDs: []uint64{7, 9}, Locks: []string{"A", "B"}}
	r2 := Report{Kind: ReportDeadlock, GIDs: []uint64{9, 7}, Locks: []string{"B", "A"}}
	if r1.signature() != r2.signature() {
		t.Fatalf("rotated cycle signatures differ: %q vs %q", r1.signature(), r2.signature())
	}
	r3 := Report{Kind: ReportPostponeStall, GIDs: []uint64{7, 9}, Locks: []string{"A", "B"}}
	if r1.signature() == r3.signature() {
		t.Fatal("different kinds share a signature")
	}
}

func TestSupervisorStartStopIdempotent(t *testing.T) {
	sup := testSupervisor(core.NewEngine(), Config{})
	sup.Stop() // no-op before start
	sup.Start()
	sup.Start() // idempotent
	waitScans(t, sup, 1)
	sup.Stop()
	sup.Stop() // no-op after stop
}
