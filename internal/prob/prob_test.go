package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactBaseSmallCases(t *testing.T) {
	// N=2, m=1: both threads pick 1 of 2 steps; collision prob = 1/2.
	if got := ExactBase(2, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ExactBase(2,1) = %v, want 0.5", got)
	}
	// N=3, m=1: 1/3.
	if got := ExactBase(3, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("ExactBase(3,1) = %v, want 1/3", got)
	}
	// 2m > N forces a collision.
	if got := ExactBase(3, 2); got != 1 {
		t.Fatalf("ExactBase(3,2) = %v, want 1", got)
	}
	if ExactBase(10, 0) != 0 || ExactBase(0, 1) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestExactBaseMonotonicInM(t *testing.T) {
	prev := 0.0
	for m := 1; m <= 20; m++ {
		p := ExactBase(1000, m)
		if p < prev-1e-12 {
			t.Fatalf("ExactBase not monotone at m=%d: %v < %v", m, p, prev)
		}
		prev = p
	}
}

func TestApproxMatchesExactForSmallM(t *testing.T) {
	// For m << N the approximation should be within a few percent.
	for _, n := range []int{10000, 100000} {
		for _, m := range []int{1, 2, 5} {
			exact := ExactBase(n, m)
			approx := ApproxBase(n, m)
			if exact == 0 {
				continue
			}
			if rel := math.Abs(exact-approx) / exact; rel > 0.05 {
				t.Errorf("N=%d m=%d: exact=%v approx=%v rel=%.3f", n, m, exact, approx, rel)
			}
		}
	}
}

func TestTriggerLBExceedsBase(t *testing.T) {
	for _, tc := range []struct{ n, M, m, T int }{
		{100000, 10, 2, 100},
		{1000000, 50, 5, 1000},
		{10000, 5, 1, 10},
	} {
		base := ExactBase(tc.n, tc.m)
		trig := ExactTriggerLB(tc.n, tc.M, tc.m, tc.T)
		if trig <= base {
			t.Errorf("trigger LB %v not above base %v for %+v", trig, base, tc)
		}
	}
}

func TestTriggerMonotoneInT(t *testing.T) {
	prev := 0.0
	for _, T := range []int{1, 10, 100, 1000, 10000} {
		p := ExactTriggerLB(1000000, 20, 3, T)
		if p < prev-1e-12 {
			t.Fatalf("trigger prob not monotone in T at T=%d", T)
		}
		prev = p
	}
}

func TestPrecisionLowersOverheadRaisesProbability(t *testing.T) {
	// Lowering M (more precise predicate) with m fixed raises the
	// trigger probability — the formal basis of section 6.3.
	loose := ExactTriggerLB(1000000, 1000, 3, 100)
	tight := ExactTriggerLB(1000000, 10, 3, 100)
	if tight <= loose {
		t.Fatalf("precision did not help: tight=%v loose=%v", tight, loose)
	}
}

func TestImprovementFactorShape(t *testing.T) {
	// Grows with T...
	if ImprovementFactor(100000, 10, 2, 1000) <= ImprovementFactor(100000, 10, 2, 10) {
		t.Fatal("improvement not increasing in T")
	}
	// ...and shrinks with M.
	if ImprovementFactor(100000, 1000, 2, 100) >= ImprovementFactor(100000, 10, 2, 100) {
		t.Fatal("improvement not decreasing in M")
	}
	if !math.IsInf(ImprovementFactor(0, 0, 1, 0), 1) && ImprovementFactor(0, 0, 1, 0) <= 0 {
		t.Fatal("degenerate improvement should be +inf or positive")
	}
}

func TestMonteCarloMatchesExactBase(t *testing.T) {
	const runs = 20000
	for _, tc := range []struct{ n, m int }{{100, 3}, {1000, 5}, {50, 2}} {
		exact := ExactBase(tc.n, tc.m)
		mc := MonteCarloBase(tc.n, tc.m, runs, 12345)
		// Binomial std dev.
		sd := math.Sqrt(exact * (1 - exact) / runs)
		if math.Abs(mc-exact) > 5*sd+0.005 {
			t.Errorf("N=%d m=%d: mc=%v exact=%v (5sd=%v)", tc.n, tc.m, mc, exact, 5*sd)
		}
	}
}

func TestMonteCarloTriggerTracksLB(t *testing.T) {
	// The simulated trigger probability should be at least the closed
	// form lower bound (up to sampling noise) and far above base.
	const runs = 5000
	n, M, m, T := 100000, 10, 2, 1000
	lb := ExactTriggerLB(n, M, m, T)
	mc := MonteCarloTrigger(n, M, m, T, runs, 999)
	if mc < lb-0.05 {
		t.Fatalf("simulated %v below lower bound %v", mc, lb)
	}
	base := ExactBase(n, m)
	if mc < 10*base {
		t.Fatalf("simulation shows no amplification: mc=%v base=%v", mc, base)
	}
}

func TestSampleStepsProperties(t *testing.T) {
	f := func(seed int64, n16, k16 uint16) bool {
		n := int(n16%500) + 1
		k := int(k16) % (n + 1)
		rng := newRNG(seed)
		out := sampleSteps(rng, n, k, nil)
		if len(out) != k {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range out {
			if v < 0 || v >= n || seen[v] || v < prev {
				return false
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAndPointString(t *testing.T) {
	pts := Sweep(100000, 10, 2, []int{10, 100, 1000})
	if len(pts) != 3 {
		t.Fatalf("Sweep rows = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Trigger < pts[i-1].Trigger {
			t.Fatal("sweep not monotone in T")
		}
	}
	if pts[0].String() == "" {
		t.Fatal("empty Point.String")
	}
}

func TestWindowsOverlap(t *testing.T) {
	a := []window{{0, 10}}
	if !windowsOverlap(a, []window{{5, 15}}) {
		t.Fatal("overlapping windows not detected")
	}
	if windowsOverlap(a, []window{{10, 20}}) {
		t.Fatal("touching windows (half-open) should not overlap")
	}
	if windowsOverlap(nil, a) {
		t.Fatal("empty set overlaps")
	}
}

func TestRuntimeFactor(t *testing.T) {
	if got := RuntimeFactor(1000, 10, 100); got != 2 {
		t.Fatalf("RuntimeFactor = %v, want 2", got)
	}
	if got := RuntimeFactor(0, 10, 100); got != 1 {
		t.Fatalf("degenerate RuntimeFactor = %v", got)
	}
	// Precision (smaller M) cuts cost at fixed T.
	if RuntimeFactor(100000, 1000, 100) <= RuntimeFactor(100000, 10, 100) {
		t.Fatal("runtime factor not increasing in M")
	}
	// Cost grows with T.
	if RuntimeFactor(100000, 10, 1000) <= RuntimeFactor(100000, 10, 10) {
		t.Fatal("runtime factor not increasing in T")
	}
}
