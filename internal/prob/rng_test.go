package prob

import "math/rand"

// newRNG is a test helper giving property tests a seeded source.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
