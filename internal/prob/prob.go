// Package prob implements the probabilistic analysis of section 3 of the
// paper: the chance that two independently-executing threads reach a
// concurrent breakpoint with and without the BTrigger pausing mechanism,
// plus Monte Carlo simulations that validate the closed forms.
//
// Model: each of two threads executes N uniform steps. A thread visits a
// state satisfying its local predicate phi_t at M steps chosen uniformly
// at random, m of which (m <= M) satisfy the full breakpoint predicate.
//
//   - Without BTrigger, the breakpoint is hit only if the two threads'
//     breakpoint states coincide in time:
//     P = 1 - C(N-m, m)/C(N, m)  ~=  m^2/(N-m+1).
//   - With BTrigger, a thread pauses T time units at every phi_t state,
//     stretching its execution to N + M*T steps and widening each
//     breakpoint state into a window of length T:
//     P >= 1 - C(N'-m*T, m)/C(N', m), N' = N + M*T - M
//     ~=  m^2*T / (N + M*T - M).
//   - The improvement factor is therefore at least
//     T*(N - m + 1) / (N + M*T - M),
//     which grows with T and shrinks as M grows relative to m — the
//     formal justification for the paper's two tuning knobs: longer
//     pauses (section 6.2) and more precise predicates, which lower M
//     (section 6.3).
package prob

import (
	"fmt"
	"math"
	"math/rand"
)

// lnChoose returns ln(C(n, k)) using the log-gamma function; it is exact
// enough for ratios of binomials with n up to ~1e15.
func lnChoose(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(n + 1)
	ln2, _ := math.Lgamma(k + 1)
	ln3, _ := math.Lgamma(n - k + 1)
	return ln1 - ln2 - ln3
}

// ExactBase returns the exact model probability that two threads hit the
// breakpoint without BTrigger: 1 - C(N-m, m)/C(N, m).
func ExactBase(n, m int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	if 2*m > n {
		return 1 // the m-subsets cannot avoid each other
	}
	return 1 - math.Exp(lnChoose(float64(n-m), float64(m))-lnChoose(float64(n), float64(m)))
}

// ApproxBase returns the paper's small-m approximation m^2/(N-m+1).
func ApproxBase(n, m int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	return math.Min(1, float64(m)*float64(m)/float64(n-m+1))
}

// UpperBase returns the paper's upper bound m/(N-m+1) on the probability
// of a single placement colliding, scaled as in the text: the hit
// probability is upper bounded by m * m/(N-m+1) which coincides with
// ApproxBase; the per-state bound m/(N-m+1) is exposed for completeness.
func UpperBase(n, m int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	return math.Min(1, float64(m)/float64(n-m+1))
}

// ExactTriggerLB returns the model lower bound with BTrigger pausing T
// units at each of the M phi_t states: 1 - C(N'-mT, m)/C(N', m) with
// N' = N + M*T - M.
func ExactTriggerLB(n, mBig, m, t int) float64 {
	if m <= 0 || n <= 0 || t <= 0 {
		return ExactBase(n, m)
	}
	nPrime := n + mBig*t - mBig
	if nPrime <= 0 {
		return 1
	}
	if m*t >= nPrime {
		return 1
	}
	return 1 - math.Exp(lnChoose(float64(nPrime-m*t), float64(m))-lnChoose(float64(nPrime), float64(m)))
}

// ApproxTrigger returns the paper's approximation m^2*T/(N + M*T - M).
func ApproxTrigger(n, mBig, m, t int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	den := float64(n + mBig*t - mBig)
	if den <= 0 {
		return 1
	}
	return math.Min(1, float64(m)*float64(m)*float64(t)/den)
}

// ImprovementFactor returns the paper's lower bound on the probability
// amplification BTrigger provides: T*(N-m+1)/(N + M*T - M).
func ImprovementFactor(n, mBig, m, t int) float64 {
	den := float64(n + mBig*t - mBig)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(t) * float64(n-m+1) / den
}

// RuntimeFactor returns the model's execution-time cost of BTrigger: a
// thread that pauses T units at each of its M phi states takes N + M*T
// steps instead of N, a factor of (N + M*T)/N. This is the overhead side
// of the section 3 trade-off: raising T amplifies the hit probability
// but stretches the run (the section 6.2 rows where overhead reached
// 12x), while lowering M via predicate precision reduces cost without
// reducing the amplification per hit (section 6.3).
func RuntimeFactor(n, mBig, t int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n+mBig*t) / float64(n)
}

// MonteCarloBase estimates the no-trigger hit probability by simulation:
// both threads place m breakpoint states uniformly at random among N
// steps; a hit is a common time step. It validates ExactBase.
func MonteCarloBase(n, m, runs int, seed int64) float64 {
	if m <= 0 || n <= 0 || runs <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	stepsA := make([]int, 0, m)
	occupied := make(map[int]bool, m)
	for r := 0; r < runs; r++ {
		stepsA = sampleSteps(rng, n, m, stepsA[:0])
		clear(occupied)
		for _, s := range stepsA {
			occupied[s] = true
		}
		hit := false
		for _, s := range sampleSteps(rng, n, m, nil) {
			if occupied[s] {
				hit = true
				break
			}
		}
		if hit {
			hits++
		}
	}
	return float64(hits) / float64(runs)
}

// MonteCarloTrigger estimates the with-trigger hit probability: each
// thread pauses T units at each of its M phi states (m of them are
// breakpoint states), so the k-th state, placed at step s_k, occupies the
// wall-clock window [s_k + k*T, s_k + (k+1)*T). A hit is an overlap
// between a breakpoint window of thread 1 and one of thread 2 — one
// thread postponed while the other arrives, which is exactly BTrigger's
// rendezvous.
func MonteCarloTrigger(n, mBig, m, t, runs int, seed int64) float64 {
	if m <= 0 || n <= 0 || runs <= 0 || mBig < m {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for r := 0; r < runs; r++ {
		w1 := triggerWindows(rng, n, mBig, m, t)
		w2 := triggerWindows(rng, n, mBig, m, t)
		if windowsOverlap(w1, w2) {
			hits++
		}
	}
	return float64(hits) / float64(runs)
}

type window struct{ lo, hi float64 }

// triggerWindows returns the wall-clock windows of the m breakpoint
// states among M paused states placed uniformly in N steps.
func triggerWindows(rng *rand.Rand, n, mBig, m, t int) []window {
	steps := sampleSteps(rng, n, mBig, nil) // sorted
	// Choose which m of the M phi states are breakpoint states.
	idx := rng.Perm(mBig)[:m]
	out := make([]window, 0, m)
	for _, k := range idx {
		// k pauses of length t happen before this state's own pause.
		lo := float64(steps[k] + k*t)
		out = append(out, window{lo: lo, hi: lo + float64(t)})
	}
	return out
}

func windowsOverlap(a, b []window) bool {
	for _, x := range a {
		for _, y := range b {
			if x.lo < y.hi && y.lo < x.hi {
				return true
			}
		}
	}
	return false
}

// sampleSteps draws k distinct steps from [0, n) and returns them sorted
// ascending (Floyd's algorithm plus insertion into a slice).
func sampleSteps(rng *rand.Rand, n, k int, buf []int) []int {
	chosen := make(map[int]bool, k)
	out := buf[:0]
	for j := n - k; j < n; j++ {
		v := rng.Intn(j + 1)
		if chosen[v] {
			v = j
		}
		chosen[v] = true
		out = append(out, v)
	}
	// insertion sort: k is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Point is one row of a model sweep.
type Point struct {
	N, M, MSmall, T int
	Base            float64 // exact, no trigger
	Trigger         float64 // exact lower bound with trigger
	Improvement     float64
}

// Sweep evaluates the closed forms over a grid of T values for fixed N,
// M, m — the data behind the paper's argument that raising T or lowering
// M raises hit probability.
func Sweep(n, mBig, m int, ts []int) []Point {
	out := make([]Point, 0, len(ts))
	for _, t := range ts {
		out = append(out, Point{
			N: n, M: mBig, MSmall: m, T: t,
			Base:        ExactBase(n, m),
			Trigger:     ExactTriggerLB(n, mBig, m, t),
			Improvement: ImprovementFactor(n, mBig, m, t),
		})
	}
	return out
}

// String formats a point as a table row.
func (p Point) String() string {
	return fmt.Sprintf("N=%-8d M=%-5d m=%-3d T=%-6d base=%.6f trigger=%.6f gain=%.1fx",
		p.N, p.M, p.MSmall, p.T, p.Base, p.Trigger, p.Improvement)
}
