// Package vclock implements vector clocks over goroutine ids, the
// happens-before substrate for the dynamic race detector in
// internal/detect. Clocks are sparse maps because goroutine ids are not
// dense small integers.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// VC is a vector clock: a map from thread (goroutine) id to the last
// known logical time of that thread. The zero value is an empty clock.
type VC map[uint64]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Clone returns a deep copy of the clock.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	for k, t := range v {
		c[k] = t
	}
	return c
}

// Get returns the component for thread id (zero if absent).
func (v VC) Get(id uint64) uint64 { return v[id] }

// Set assigns the component for thread id.
func (v VC) Set(id, t uint64) { v[id] = t }

// Tick increments thread id's own component and returns the new value.
func (v VC) Tick(id uint64) uint64 {
	v[id]++
	return v[id]
}

// Join sets v to the component-wise maximum of v and o (the effect of
// receiving a message or acquiring a lock whose release clock is o).
func (v VC) Join(o VC) {
	for k, t := range o {
		if t > v[k] {
			v[k] = t
		}
	}
}

// HappensBefore reports whether v <= o component-wise and v != o, i.e.
// every event summarized by v is ordered before o's frontier.
func (v VC) HappensBefore(o VC) bool {
	le := true
	strictly := false
	for k, t := range v {
		ot := o[k]
		if t > ot {
			le = false
			break
		}
		if t < ot {
			strictly = true
		}
	}
	if !le {
		return false
	}
	if strictly {
		return true
	}
	// v <= o on v's support; check o has some component beyond v.
	for k, ot := range o {
		if ot > v[k] {
			return true
		}
	}
	return false
}

// Concurrent reports whether neither clock happens-before the other and
// they are not equal.
func (v VC) Concurrent(o VC) bool {
	return !v.HappensBefore(o) && !o.HappensBefore(v) && !v.Equal(o)
}

// Equal reports component-wise equality (absent components are zero).
func (v VC) Equal(o VC) bool {
	for k, t := range v {
		if o[k] != t {
			return false
		}
	}
	for k, t := range o {
		if v[k] != t {
			return false
		}
	}
	return true
}

// LEq reports v <= o component-wise (including equality).
func (v VC) LEq(o VC) bool {
	for k, t := range v {
		if t > o[k] {
			return false
		}
	}
	return true
}

// String renders the clock deterministically for diagnostics.
func (v VC) String() string {
	ids := make([]uint64, 0, len(v))
	for k := range v {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", id, v[id])
	}
	b.WriteByte('}')
	return b.String()
}

// Epoch is a compact clock for the common FastTrack case where all prior
// accesses to a variable are totally ordered: a single (thread, time)
// pair.
type Epoch struct {
	// ID is the thread the epoch belongs to.
	ID uint64
	// T is the thread's logical time at the access.
	T uint64
}

// Zero reports whether the epoch is the zero epoch (no access yet).
func (e Epoch) Zero() bool { return e.ID == 0 && e.T == 0 }

// LEqVC reports whether the epoch's event happens-before-or-equals the
// frontier vc (FastTrack's e <= V check: T <= vc[ID]).
func (e Epoch) LEqVC(vc VC) bool { return e.T <= vc[e.ID] }

// String renders the epoch.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.T, e.ID) }
