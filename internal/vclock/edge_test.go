package vclock

import "testing"

// Empty clocks are the identity of the join lattice and the bottom of
// the happens-before order; every operation must treat absent
// components as zero without special-casing.
func TestEmptyClockSemantics(t *testing.T) {
	empty := New()
	other := New()
	empty.Join(other)
	if len(empty) != 0 || !empty.Equal(New()) {
		t.Fatalf("empty.Join(empty) = %v, want empty", empty)
	}

	v := vcFrom(2, 0, 1)
	joined := New()
	joined.Join(v)
	if !joined.Equal(v) {
		t.Fatalf("empty.Join(v) = %v, want %v (empty is the join identity)", joined, v)
	}

	if !New().HappensBefore(v) {
		t.Fatal("empty clock must happen-before any non-empty clock")
	}
	if v.HappensBefore(New()) {
		t.Fatal("non-empty clock cannot happen-before empty")
	}
	if New().HappensBefore(New()) {
		t.Fatal("HappensBefore is irreflexive: empty vs empty")
	}
	if New().Concurrent(v) || v.Concurrent(New()) {
		t.Fatal("empty is ordered before everything, never concurrent")
	}
	if !New().LEq(v) || !New().LEq(New()) {
		t.Fatal("empty must be <= every clock")
	}
	if !New().Equal(New()) {
		t.Fatal("two empty clocks must be equal")
	}

	// A clock whose components are all explicit zeros is the same point
	// of the lattice as the empty clock.
	zeroed := New()
	zeroed.Set(1, 0)
	zeroed.Set(9, 0)
	if !zeroed.Equal(New()) || !New().Equal(zeroed) {
		t.Fatalf("explicit-zero clock %v must equal empty", zeroed)
	}
	if zeroed.HappensBefore(New()) || New().HappensBefore(zeroed) {
		t.Fatal("explicit-zero clock is the same lattice point as empty")
	}
}

// Join is idempotent: v ⊔ v = v, including through a clone, and the
// clone must not alias the original's storage.
func TestSelfJoinIdempotent(t *testing.T) {
	v := vcFrom(4, 7, 2)
	want := v.Clone()
	v.Join(v)
	if !v.Equal(want) {
		t.Fatalf("v.Join(v) changed the clock: %v, want %v", v, want)
	}
	c := v.Clone()
	v.Join(c)
	if !v.Equal(want) {
		t.Fatalf("v.Join(clone) changed the clock: %v, want %v", v, want)
	}
	c.Tick(1)
	if !v.Equal(want) {
		t.Fatal("Clone shares storage with the original")
	}
}

// Wide clocks: many components, exercising the iteration-heavy paths
// (Join as component max, LEq/HappensBefore when exactly one component
// lags, String building over a large support).
func TestWideClocks(t *testing.T) {
	const width = 1500
	a, b := New(), New()
	for id := uint64(1); id <= width; id++ {
		a.Set(id, id%17)
		b.Set(id, (id+9)%23)
	}
	j := a.Clone()
	j.Join(b)
	for id := uint64(1); id <= width; id++ {
		want := a.Get(id)
		if bt := b.Get(id); bt > want {
			want = bt
		}
		if j.Get(id) != want {
			t.Fatalf("join[%d] = %d, want %d", id, j.Get(id), want)
		}
	}

	const lag = width / 2
	if j.Get(lag) == 0 {
		t.Fatalf("test setup: component %d of the join is zero", lag)
	}
	lo := j.Clone()
	lo.Set(lag, lo.Get(lag)-1)
	if !lo.HappensBefore(j) {
		t.Fatal("clock lagging in one component must happen-before the join")
	}
	if !lo.LEq(j) || j.LEq(lo) {
		t.Fatal("LEq wrong for a one-component lag")
	}
	if lo.Concurrent(j) {
		t.Fatal("ordered wide clocks reported concurrent")
	}

	// Two wide clocks that each lead in a different component are
	// concurrent no matter how many components agree.
	x, y := j.Clone(), j.Clone()
	x.Tick(1)
	y.Tick(2)
	if !x.Concurrent(y) || !y.Concurrent(x) {
		t.Fatal("wide clocks leading in different components must be concurrent")
	}

	if s := j.String(); len(s) < width {
		t.Fatalf("String over %d components suspiciously short: %d bytes", width, len(s))
	}
}
