package vclock

import (
	"testing"
	"testing/quick"
)

func vcFrom(a, b, c uint64) VC {
	v := New()
	if a > 0 {
		v.Set(1, a)
	}
	if b > 0 {
		v.Set(2, b)
	}
	if c > 0 {
		v.Set(3, c)
	}
	return v
}

func TestTickAndGet(t *testing.T) {
	v := New()
	if v.Get(7) != 0 {
		t.Fatal("fresh clock not zero")
	}
	if v.Tick(7) != 1 || v.Tick(7) != 2 {
		t.Fatal("Tick not incrementing")
	}
	if v.Get(7) != 2 {
		t.Fatal("Get after Tick wrong")
	}
}

func TestJoinIsComponentMax(t *testing.T) {
	a := vcFrom(1, 5, 0)
	b := vcFrom(3, 2, 4)
	a.Join(b)
	if a.Get(1) != 3 || a.Get(2) != 5 || a.Get(3) != 4 {
		t.Fatalf("Join wrong: %v", a)
	}
}

func TestHappensBeforeBasics(t *testing.T) {
	a := vcFrom(1, 0, 0)
	b := vcFrom(2, 1, 0)
	if !a.HappensBefore(b) {
		t.Error("a should happen before b")
	}
	if b.HappensBefore(a) {
		t.Error("b must not happen before a")
	}
	if a.HappensBefore(a.Clone()) {
		t.Error("clock must not happen before itself")
	}
	c := vcFrom(0, 0, 9)
	if !a.Concurrent(c) {
		t.Error("disjoint clocks should be concurrent")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := vcFrom(1, 2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Tick(1)
	if a.Equal(b) {
		t.Fatal("modified clone still equal")
	}
	// Absent components are zero.
	x := vcFrom(1, 0, 0)
	y := New()
	y.Set(1, 1)
	y.Set(2, 0)
	if !x.Equal(y) {
		t.Fatal("explicit zero component broke equality")
	}
}

func TestStringDeterministic(t *testing.T) {
	v := vcFrom(1, 2, 3)
	if v.String() != "{1:1 2:2 3:3}" {
		t.Fatalf("String = %q", v.String())
	}
	if New().String() != "{}" {
		t.Fatalf("empty String = %q", New().String())
	}
}

func TestEpoch(t *testing.T) {
	var z Epoch
	if !z.Zero() {
		t.Fatal("zero epoch not Zero")
	}
	e := Epoch{ID: 4, T: 9}
	if e.Zero() {
		t.Fatal("nonzero epoch is Zero")
	}
	vc := New()
	vc.Set(4, 9)
	if !e.LEqVC(vc) {
		t.Fatal("epoch should be <= its own frontier")
	}
	vc.Set(4, 8)
	if e.LEqVC(vc) {
		t.Fatal("epoch beyond frontier reported <=")
	}
	if e.String() != "9@4" {
		t.Fatalf("String = %q", e.String())
	}
}

// Property: happens-before is a strict partial order on clocks.
func TestHappensBeforePartialOrderProperty(t *testing.T) {
	gen := func(a, b, c uint8) VC { return vcFrom(uint64(a%4), uint64(b%4), uint64(c%4)) }
	irreflexive := func(a, b, c uint8) bool {
		v := gen(a, b, c)
		return !v.HappensBefore(v)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Errorf("irreflexivity: %v", err)
	}
	antisymmetric := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := gen(a1, b1, c1), gen(a2, b2, c2)
		return !(x.HappensBefore(y) && y.HappensBefore(x))
	}
	if err := quick.Check(antisymmetric, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	transitive := func(a1, b1, c1, a2, b2, c2, a3, b3, c3 uint8) bool {
		x, y, z := gen(a1, b1, c1), gen(a2, b2, c2), gen(a3, b3, c3)
		if x.HappensBefore(y) && y.HappensBefore(z) {
			return x.HappensBefore(z)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// Property: Join is the least upper bound w.r.t. LEq.
func TestJoinLUBProperty(t *testing.T) {
	gen := func(a, b, c uint8) VC { return vcFrom(uint64(a%5), uint64(b%5), uint64(c%5)) }
	f := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := gen(a1, b1, c1), gen(a2, b2, c2)
		j := x.Clone()
		j.Join(y)
		return x.LEq(j) && y.LEq(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: exactly one of {x HB y, y HB x, concurrent, equal} holds.
func TestHBTrichotomyProperty(t *testing.T) {
	gen := func(a, b, c uint8) VC { return vcFrom(uint64(a%3), uint64(b%3), uint64(c%3)) }
	f := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := gen(a1, b1, c1), gen(a2, b2, c2)
		n := 0
		if x.HappensBefore(y) {
			n++
		}
		if y.HappensBefore(x) {
			n++
		}
		if x.Concurrent(y) {
			n++
		}
		if x.Equal(y) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
